module plinger

go 1.24
