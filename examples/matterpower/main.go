// matterpower computes the linear matter transfer function and power
// spectrum — the second science product of LINGER ("useful both for
// calculations of the CMB anisotropy and the linear power spectrum of
// matter fluctuations") — and the COBE-normalized sigma_8 for standard CDM
// and a mixed dark matter variant, showing the massive-neutrino
// free-streaming suppression.
package main

import (
	"fmt"
	"log"

	"plinger"
)

func main() {
	log.SetFlags(0)

	run := func(name string, cfg plinger.Config) *plinger.MatterPowerResult {
		m, err := plinger.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		// COBE normalization via a low-l spectrum.
		spec, err := m.ComputeSpectrum(plinger.SpectrumOptions{
			LMaxCl: 20, NK: 60, Ls: []int{2, 4, 8, 16},
		})
		if err != nil {
			log.Fatal(err)
		}
		amp, err := spec.NormalizeCOBE(18)
		if err != nil {
			log.Fatal(err)
		}
		mp, err := m.MatterPower(plinger.MatterPowerOptions{
			KMin: 3e-4, KMax: 1.0, NK: 36, Amp: amp,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: sigma8 (COBE-normalized) = %.2f\n", name, mp.Sigma8)
		return mp
	}

	scdm := run("standard CDM (h=0.5, Omega_b=0.05)", plinger.SCDM())
	mdm := run("mixed dark matter (m_nu = 4 eV)", plinger.MDM(4.0))

	fmt.Println("\n  k [Mpc^-1]    T_SCDM(k)    T_MDM(k)    P_SCDM [Mpc^3]  MDM/SCDM")
	for i := range scdm.K {
		if i%3 != 0 {
			continue
		}
		ratio := 0.0
		if scdm.P[i] > 0 {
			ratio = mdm.P[i] / scdm.P[i] * (scdm.P[0] / mdm.P[0]) // large-scale normalized
		}
		fmt.Printf("  %.4e   %.4e  %.4e  %.4e   %.3f\n",
			scdm.K[i], scdm.T[i], mdm.T[i], scdm.P[i], ratio)
	}
	fmt.Println("\nthe MDM/SCDM column shows the massive-neutrino free-streaming")
	fmt.Println("suppression of small-scale power (the Section 2 physics: the full")
	fmt.Println("momentum-dependent phase-space hierarchy, no approximation)")
}
