// cmbspectrum reproduces the content of the paper's Figure 2: the CMB
// anisotropy power spectrum of COBE-normalized standard CDM, printed as a
// band-power table next to the era's experimental measurements (the COSAPP
// compilation points), plus a crude ASCII rendering of the plot.
package main

import (
	"fmt"
	"log"
	"math"
	"strings"
	"time"

	"plinger"
)

func main() {
	log.SetFlags(0)

	m, err := plinger.New(plinger.SCDM())
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	spec, err := m.ComputeSpectrum(plinger.SpectrumOptions{LMaxCl: 350, NK: 300})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := spec.NormalizeCOBE(18); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SCDM spectrum to l=350 in %.1fs (normalized to COBE Q_rms-PS = 18 uK)\n\n",
		time.Since(start).Seconds())

	fmt.Println("theory curve: l, dT_l = T0 sqrt(l(l+1)C_l/2pi) [uK]")
	var peakL int
	var peakDT float64
	for i, l := range spec.L {
		dt := spec.BandPower(i)
		if dt > peakDT {
			peakDT, peakL = dt, l
		}
		if i%4 == 0 || l == 2 {
			fmt.Printf("  l=%4d  dT = %6.1f uK\n", l, dt)
		}
	}
	fmt.Printf("\nfirst acoustic peak: l ~ %d at %.0f uK (SCDM predicts l ~ 220)\n\n", peakL, peakDT)

	fmt.Println("experimental points (Figure 2):")
	fmt.Printf("  %-18s %6s %9s\n", "experiment", "l_eff", "dT [uK]")
	for _, p := range plinger.ExperimentPoints() {
		fmt.Printf("  %-18s %6.0f %6.1f +%.1f -%.1f\n",
			p.Experiment, p.LEff, p.DT, p.ErrUp, p.ErrDown)
	}

	// ASCII plot: x = log10(l) from 2..350, y = dT 0..80 uK.
	fmt.Println("\n  dT[uK]  (*) theory   (o) experiment")
	const rows, cols = 16, 64
	var canvas [rows][cols]byte
	for i := range canvas {
		for j := range canvas[i] {
			canvas[i][j] = ' '
		}
	}
	xOf := func(l float64) int {
		return int(float64(cols-1) * (math.Log10(l) - math.Log10(2)) / (math.Log10(350) - math.Log10(2)))
	}
	yOf := func(dt float64) int {
		y := rows - 1 - int(float64(rows-1)*dt/80.0)
		if y < 0 {
			y = 0
		}
		if y >= rows {
			y = rows - 1
		}
		return y
	}
	for i, l := range spec.L {
		x := xOf(float64(l))
		if x >= 0 && x < cols {
			canvas[yOf(spec.BandPower(i))][x] = '*'
		}
	}
	for _, p := range plinger.ExperimentPoints() {
		x := xOf(p.LEff)
		if x >= 0 && x < cols {
			canvas[yOf(p.DT)][x] = 'o'
		}
	}
	for i, row := range canvas {
		label := "  "
		if i == 0 {
			label = "80"
		}
		if i == rows-1 {
			label = " 0"
		}
		fmt.Printf("%s |%s|\n", label, strings.TrimRight(string(row[:]), " ")+
			strings.Repeat(" ", 0))
	}
	fmt.Printf("    l = 2 %s l = 350 (log scale)\n", strings.Repeat(" ", cols-16))
}
