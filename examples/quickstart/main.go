// Quickstart: build the standard Cold Dark Matter model of the paper,
// evolve a single Fourier mode through the linearized Einstein-Boltzmann
// system, and print the quantities a LINGER user looks at first.
package main

import (
	"fmt"
	"log"

	"plinger"
)

func main() {
	log.SetFlags(0)

	// The model of the paper's Figure 2: Omega = 1, h = 0.5,
	// Omega_b = 0.05, three massless neutrinos, n = 1.
	m, err := plinger.New(plinger.SCDM())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("conformal age tau0 = %.0f Mpc, recombination at tau = %.0f Mpc\n\n",
		m.Tau0(), m.TauRecombination())

	// Evolve one mode in each gauge; temperature multipoles with l >= 2
	// are gauge-invariant, so the two runs cross-check each other.
	k := 0.05
	sync, err := m.EvolveMode(plinger.ModeOptions{K: k, LMax: 24})
	if err != nil {
		log.Fatal(err)
	}
	newt, err := m.EvolveMode(plinger.ModeOptions{K: k, LMax: 24, Gauge: plinger.ConformalNewtonian})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("mode k = %g Mpc^-1 evolved to the present:\n", k)
	fmt.Printf("  synchronous:  delta_c = %10.3f  delta_b = %10.3f  eta = %7.4f\n",
		sync.DeltaC, sync.DeltaB, sync.Eta)
	fmt.Printf("  newtonian:    delta_c = %10.3f  delta_b = %10.3f  phi = %7.4f  psi = %7.4f\n",
		newt.DeltaC, newt.DeltaB, newt.Phi, newt.Psi)
	fmt.Printf("  gauge cross-check (Theta_l, l = 2..6):\n")
	for l := 2; l <= 6; l++ {
		fmt.Printf("    l=%d  %+.6e (sync)  %+.6e (newt)\n", l, sync.ThetaL[l], newt.ThetaL[l])
	}
	fmt.Printf("  integrator: %d steps, %d evaluations, %.1f Mflop, %.0f ms\n",
		sync.Steps, sync.Evals, sync.Flops/1e6, 1000*sync.Seconds)
	fmt.Printf("  worst Einstein constraint residual: %.2e\n\n", sync.ConstraintResidual)

	// A small parallel run: the PLINGER master/worker algorithm over
	// in-process workers, largest k handed out first.
	run, err := m.RunParallel(plinger.ParallelOptions{
		KValues: []float64{0.002, 0.01, 0.03, 0.05, 0.08},
		Workers: 2, LMax: 30,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parallel run over %d modes with 2 workers:\n", len(run.Results))
	fmt.Printf("  wallclock %.2fs, total CPU %.2fs, efficiency %.0f%%, %.1f Mflop/s\n",
		run.Wallclock, run.TotalCPU, 100*run.Efficiency, run.FlopRate/1e6)
	fmt.Printf("  message payload moved: %.1f kB\n", float64(run.BytesMoved)/1e3)
}
