// scalingdemo is Figure 1 at example scale: the same fixed workload run
// with 1, 2 and 4 PLINGER workers, showing near-ideal scaling because each
// k mode is an independent integration whose cost dwarfs its ~kilobyte of
// messages.
package main

import (
	"fmt"
	"log"

	"plinger"
)

func main() {
	log.SetFlags(0)

	m, err := plinger.New(plinger.SCDM())
	if err != nil {
		log.Fatal(err)
	}
	// A fixed workload: 16 modes up to k = 0.03.
	var ks []float64
	for i := 0; i < 16; i++ {
		ks = append(ks, 0.002+0.0018*float64(i))
	}

	fmt.Println("Figure 1 (example scale): fixed workload, growing worker pool")
	fmt.Printf("%8s %12s %12s %12s %12s\n", "workers", "wall [s]", "CPU [s]", "eff [%]", "Mflop/s")
	var t1 float64
	for _, np := range []int{1, 2, 4} {
		run, err := m.RunParallel(plinger.ParallelOptions{
			KValues: ks, Workers: np, LMax: 60,
		})
		if err != nil {
			log.Fatal(err)
		}
		if t1 == 0 {
			t1 = run.Wallclock
		}
		fmt.Printf("%8d %12.3f %12.3f %12.1f %12.1f\n",
			np, run.Wallclock, run.TotalCPU, 100*run.Efficiency, run.FlopRate/1e6)
	}
	fmt.Println("\nnote: on a machine with few cores the wallclock stops improving once")
	fmt.Println("workers exceed physical CPUs, but efficiency accounting still shows the")
	fmt.Println("idle-tail behaviour the paper describes (largest k is handed out first)")
}
