// gaugecompare runs the same physical mode through the two independent
// equation sets of the original LINGER — the synchronous gauge and the
// conformal Newtonian gauge — and prints the gauge-invariant observables
// side by side. Agreement across every multipole is the strongest
// correctness check in the repository: the two gauges share no metric
// variables and differ in every fluid equation.
package main

import (
	"fmt"
	"log"
	"math"

	"plinger"
)

func main() {
	log.SetFlags(0)

	m, err := plinger.New(plinger.SCDM())
	if err != nil {
		log.Fatal(err)
	}
	for _, k := range []float64{0.005, 0.02, 0.06} {
		s, err := m.EvolveMode(plinger.ModeOptions{K: k, LMax: 20})
		if err != nil {
			log.Fatal(err)
		}
		n, err := m.EvolveMode(plinger.ModeOptions{K: k, LMax: 20, Gauge: plinger.ConformalNewtonian})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("k = %g Mpc^-1 (constraint residuals: %.1e sync, %.1e newt)\n",
			k, s.ConstraintResidual, n.ConstraintResidual)
		fmt.Printf("  %3s %14s %14s %10s\n", "l", "Theta_l sync", "Theta_l newt", "rel diff")
		worst := 0.0
		for l := 2; l <= 10; l += 2 {
			d := relDiff(s.ThetaL[l], n.ThetaL[l])
			if d > worst {
				worst = d
			}
			fmt.Printf("  %3d %14.6e %14.6e %9.2e\n", l, s.ThetaL[l], n.ThetaL[l], d)
		}
		fmt.Printf("  worst relative difference: %.2e\n\n", worst)
	}
	fmt.Println("temperature multipoles with l >= 2 are gauge-invariant, so the two")
	fmt.Println("columns must agree to integration accuracy — and they do")
}

func relDiff(a, b float64) float64 {
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}
