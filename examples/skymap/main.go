// skymap reproduces Figure 3 at example scale: a Gaussian realization of
// the COBE-normalized SCDM sky, both as a COBE-like full-sky map and as the
// paper's half-degree flat patch, rendered as ASCII art and PGM files.
package main

import (
	"fmt"
	"log"
	"os"

	"plinger"
)

func main() {
	log.SetFlags(0)

	m, err := plinger.New(plinger.SCDM())
	if err != nil {
		log.Fatal(err)
	}
	spec, err := m.ComputeSpectrum(plinger.SpectrumOptions{LMaxCl: 250, NK: 220})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := spec.NormalizeCOBE(18); err != nil {
		log.Fatal(err)
	}

	full, err := plinger.MakeSkyMap(spec, 2.726, plinger.SkyMapOptions{
		N: 20, LMaxSynthesis: 30, Seed: 1995,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full sky (COBE-like, lmax=30): min %.0f uK, max %.0f uK, rms %.0f uK\n",
		full.Min, full.Max, full.RMS)
	ascii(full)

	patch, err := plinger.MakeSkyMap(spec, 2.726, plinger.SkyMapOptions{
		Flat: true, N: 64, SizeDeg: 32, Seed: 1995,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nflat patch 32x32 deg (half-degree pixels): min %.0f uK, max %.0f uK, rms %.0f uK\n",
		patch.Min, patch.Max, patch.RMS)
	fmt.Println("(the paper quotes +/- 200 uK extremes at this resolution)")

	for name, mp := range map[string]*plinger.SkyMapResult{"skymap_full.pgm": full, "skymap_patch.pgm": patch} {
		f, err := os.Create(name)
		if err != nil {
			log.Fatal(err)
		}
		if err := mp.WritePGM(f, 0); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("wrote %s\n", name)
	}
}

// ascii renders the map with a coarse gray ramp.
func ascii(mp *plinger.SkyMapResult) {
	ramp := []byte(" .:-=+*#%@")
	span := mp.Max - mp.Min
	for _, row := range mp.Pix {
		line := make([]byte, len(row))
		for i, v := range row {
			idx := int(float64(len(ramp)-1) * (v - mp.Min) / span)
			line[i] = ramp[idx]
		}
		fmt.Printf("  %s\n", line)
	}
}
