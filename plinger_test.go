package plinger

import (
	"bytes"
	"math"
	"sync"
	"testing"
)

var (
	scdmOnce sync.Once
	scdmMdl  *Model
)

func scdmModel(t *testing.T) *Model {
	t.Helper()
	scdmOnce.Do(func() {
		m, err := New(SCDM())
		if err != nil {
			t.Fatal(err)
		}
		scdmMdl = m
	})
	return scdmMdl
}

func TestNewValidatesConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
	cfg := SCDM()
	cfg.OmegaC = 0.1 // not flat
	if _, err := New(cfg); err == nil {
		t.Fatal("open model accepted without Flatten")
	}
	cfg.Flatten = true
	if _, err := New(cfg); err != nil {
		t.Fatalf("Flatten failed: %v", err)
	}
}

func TestModelBasics(t *testing.T) {
	m := scdmModel(t)
	if m.Tau0() < 11000 || m.Tau0() > 12100 {
		t.Fatalf("tau0 = %g", m.Tau0())
	}
	if m.TauRecombination() < 200 || m.TauRecombination() > 320 {
		t.Fatalf("tau_rec = %g", m.TauRecombination())
	}
}

func TestEvolveModeThroughFacade(t *testing.T) {
	m := scdmModel(t)
	res, err := m.EvolveMode(ModeOptions{K: 0.04, LMax: 16})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.A-1) > 1e-3 || res.Steps == 0 || res.Flops <= 0 {
		t.Fatalf("bad result: %+v", res)
	}
	if res.ConstraintResidual > 0.02 {
		t.Fatalf("constraint residual %g", res.ConstraintResidual)
	}
	if _, err := m.EvolveMode(ModeOptions{K: 0.04, Gauge: "bogus"}); err == nil {
		t.Fatal("bogus gauge accepted")
	}
	newt, err := m.EvolveMode(ModeOptions{K: 0.04, LMax: 16, Gauge: ConformalNewtonian})
	if err != nil {
		t.Fatal(err)
	}
	if newt.Phi == 0 || newt.Psi == 0 {
		t.Fatal("Newtonian potentials missing")
	}
}

func TestSpectrumEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spectrum sweep is expensive")
	}
	m := scdmModel(t)
	spec, err := m.ComputeSpectrum(SpectrumOptions{
		LMaxCl: 40, NK: 80, Ls: []int{2, 5, 10, 20, 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range spec.Cl {
		if c <= 0 {
			t.Fatalf("C_%d = %g", spec.L[i], c)
		}
	}
	amp, err := spec.NormalizeCOBE(18)
	if err != nil {
		t.Fatal(err)
	}
	if amp <= 0 {
		t.Fatalf("amplitude %g", amp)
	}
	bp := spec.BandPower(1) // l=5
	if bp < 20 || bp > 40 {
		t.Fatalf("band power at l=5: %g uK", bp)
	}
	if _, err := m.ComputeSpectrum(SpectrumOptions{Method: "nope"}); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestPolarizationThroughFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("brute-force sweep is expensive")
	}
	m := scdmModel(t)
	opts := SpectrumOptions{LMaxCl: 20, NK: 50, Method: "brute", Ls: []int{5, 10, 20}}
	temp, err := m.ComputeSpectrum(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Polarization = true
	pol, err := m.ComputeSpectrum(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range temp.Cl {
		if pol.Cl[i] < 0 || pol.Cl[i] >= temp.Cl[i] {
			t.Fatalf("polarization %g vs temperature %g at l=%d", pol.Cl[i], temp.Cl[i], temp.L[i])
		}
	}
	// The LOS engine does not provide polarization.
	if _, err := m.ComputeSpectrum(SpectrumOptions{Polarization: true}); err == nil {
		t.Fatal("LOS polarization should be rejected")
	}
}

// The dispatcher choice is invisible in the physics: a C_l spectrum
// computed end-to-end over a PLINGER master/worker run (sources shipped
// back over the wire) must equal the shared-memory pool's bitwise, under
// any schedule.
func TestSpectrumTransportEquivalence(t *testing.T) {
	m := scdmModel(t)
	opts := SpectrumOptions{LMaxCl: 12, NK: 24, Ls: []int{2, 4, 8, 12}}
	ref, err := m.ComputeSpectrum(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range []SpectrumOptions{
		{Transport: "chan", Workers: 3},
		{Transport: "fifo", Workers: 2},
		{Transport: "chan", Workers: 2, Schedule: "smallest-first"},
	} {
		o.LMaxCl, o.NK, o.Ls = opts.LMaxCl, opts.NK, opts.Ls
		got, err := m.ComputeSpectrum(o)
		if err != nil {
			t.Fatalf("%s/%s: %v", o.Transport, o.Schedule, err)
		}
		for i := range ref.Cl {
			if got.Cl[i] != ref.Cl[i] {
				t.Fatalf("%s/%s: C_%d = %g, pool %g", o.Transport, o.Schedule,
					ref.L[i], got.Cl[i], ref.Cl[i])
			}
		}
	}
	if _, err := m.ComputeSpectrum(SpectrumOptions{LMaxCl: 12, Transport: "telegraph"}); err == nil {
		t.Fatal("unknown transport accepted")
	}
	if _, err := m.ComputeSpectrum(SpectrumOptions{LMaxCl: 12, Schedule: "alphabetical"}); err == nil {
		t.Fatal("unknown schedule accepted")
	}
}

// TestFastSpectrumMatchesReference is the facade-level acceptance check of
// the fast C_l engine: the full fast path — fast evolution engine,
// table-driven projection, coarse-to-fine k refinement — must track the
// exact reference pipeline to < 1e-3 relative at every requested
// multipole, at equal LMaxCl/NK settings. The partial combination without
// FastEvolve is held to the same bound.
func TestFastSpectrumMatchesReference(t *testing.T) {
	m := scdmModel(t)
	opts := SpectrumOptions{LMaxCl: 60, NK: 60}
	if !testing.Short() {
		opts = SpectrumOptions{LMaxCl: 150, NK: 130} // the benchmark settings
	}
	ref, err := m.ComputeSpectrum(opts)
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, fast SpectrumOptions) {
		got, err := m.ComputeSpectrum(fast)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Cl) != len(ref.Cl) {
			t.Fatalf("%s: multipole sets differ: %d vs %d", name, len(got.Cl), len(ref.Cl))
		}
		worst := 0.0
		for i := range ref.Cl {
			rel := math.Abs(got.Cl[i]-ref.Cl[i]) / ref.Cl[i]
			if rel > worst {
				worst = rel
			}
			if rel > 1e-3 {
				t.Errorf("%s: C_%d: fast %g vs reference %g (rel %g)", name, ref.L[i], got.Cl[i], ref.Cl[i], rel)
			}
		}
		t.Logf("%s: worst relative C_l deviation: %.3g", name, worst)
	}
	fast := opts
	fast.FastLOS = true
	fast.KRefine = 10
	check("fastlos+krefine", fast)
	fast.FastEvolve = true
	check("full fast path", fast)
}

func TestMatterPowerThroughFacade(t *testing.T) {
	m := scdmModel(t)
	res, err := m.MatterPower(MatterPowerOptions{KMin: 3e-4, KMax: 0.3, NK: 18})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.K) != 18 || res.Sigma8 <= 0 {
		t.Fatalf("bad matter power: %+v", res)
	}
	if math.Abs(res.T[0]-1) > 1e-9 {
		t.Fatalf("T(kmin) = %g", res.T[0])
	}
}

func TestRunParallelFacade(t *testing.T) {
	m := scdmModel(t)
	var ascii, bin bytes.Buffer
	run, err := m.RunParallel(ParallelOptions{
		KValues:  []float64{0.01, 0.03, 0.05, 0.02},
		Workers:  3,
		LMax:     10,
		ASCIIOut: &ascii, BinaryOut: &bin,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Results) != 4 {
		t.Fatalf("results %d", len(run.Results))
	}
	for i, k := range []float64{0.01, 0.03, 0.05, 0.02} {
		if run.Results[i].K != k {
			t.Fatalf("order broken at %d", i)
		}
	}
	if run.Efficiency <= 0 || run.FlopRate <= 0 || run.BytesMoved == 0 {
		t.Fatalf("stats: %+v", run)
	}
	if ascii.Len() == 0 || bin.Len() == 0 {
		t.Fatal("output files empty")
	}
	if _, err := m.RunParallel(ParallelOptions{}); err == nil {
		t.Fatal("empty k list accepted")
	}
	if _, err := m.RunParallel(ParallelOptions{KValues: []float64{0.1}, Schedule: "??"}); err == nil {
		t.Fatal("bad schedule accepted")
	}
}

func TestSkyMapFacade(t *testing.T) {
	// Synthetic flat spectrum.
	var ls []int
	var cl []float64
	for l := 2; l <= 128; l += 2 {
		ls = append(ls, l)
		cl = append(cl, 1e-10/float64(l*(l+1)))
	}
	spec := &Spectrum{L: ls, Cl: cl, inner: nil}
	mp, err := MakeSkyMap(spec, 2.726, SkyMapOptions{Flat: true, N: 64, SizeDeg: 16, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if mp.NX != 64 || mp.Min >= mp.Max || mp.RMS <= 0 {
		t.Fatalf("map: %+v", mp)
	}
	var buf bytes.Buffer
	if err := mp.WritePGM(&buf, 0); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty PGM")
	}
	full, err := MakeSkyMap(spec, 2.726, SkyMapOptions{N: 24, LMaxSynthesis: 30, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if full.NY != 24 || full.NX != 48 {
		t.Fatalf("full sky dims %dx%d", full.NX, full.NY)
	}
}

func TestExperimentPoints(t *testing.T) {
	pts := ExperimentPoints()
	if len(pts) < 10 {
		t.Fatalf("%d points", len(pts))
	}
	if pts[0].Experiment[:4] != "COBE" {
		t.Fatal("COBE anchors the compilation")
	}
}

func TestMDMConfig(t *testing.T) {
	m, err := New(MDM(2.0))
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.EvolveMode(ModeOptions{K: 0.03, LMax: 12})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeltaHNu == 0 {
		t.Fatal("massive neutrino transfer missing")
	}
}
