package plinger

// Integration tests that exercise the repository the way a user would:
// building and running the actual command-line binaries, including a
// genuine multi-OS-process PLINGER run over the TCP transport (the paper's
// cluster deployment mode, with the hub playing the PVM daemon).

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildTool compiles one of the cmd/ binaries into a temp dir.
func buildTool(t *testing.T, name string) string {
	t.Helper()
	dir := t.TempDir()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Dir = "."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func TestMultiProcessTCPRun(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	bin := buildTool(t, "plinger")
	addr := freePort(t)
	dir := t.TempDir()
	unit1 := filepath.Join(dir, "unit1.txt")
	unit2 := filepath.Join(dir, "unit2.dat")

	args := []string{"-transport", "tcp", "-addr", addr, "-nk", "6",
		"-kmin", "0.005", "-kmax", "0.05", "-lmax", "12"}

	master := exec.Command(bin, append([]string{"-role", "master", "-np", "2",
		"-unit1", unit1, "-unit2", unit2}, args...)...)
	masterOut := &strings.Builder{}
	master.Stdout = masterOut
	master.Stderr = masterOut
	if err := master.Start(); err != nil {
		t.Fatal(err)
	}

	// Give the hub a moment to listen, then start two workers.
	time.Sleep(300 * time.Millisecond)
	var workers []*exec.Cmd
	for w := 0; w < 2; w++ {
		wk := exec.Command(bin, append([]string{"-role", "worker"}, args...)...)
		wkOut := &strings.Builder{}
		wk.Stdout = wkOut
		wk.Stderr = wkOut
		if err := wk.Start(); err != nil {
			t.Fatal(err)
		}
		workers = append(workers, wk)
	}

	done := make(chan error, 1)
	go func() { done <- master.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("master failed: %v\n%s", err, masterOut.String())
		}
	case <-time.After(180 * time.Second):
		master.Process.Kill()
		t.Fatalf("master timed out\n%s", masterOut.String())
	}
	for _, wk := range workers {
		wk.Wait()
	}

	if !strings.Contains(masterOut.String(), "modes: 6") {
		t.Fatalf("master output missing results:\n%s", masterOut.String())
	}
	// The unit_1 file must hold one 20-field line per mode, unit_2 six
	// binary records.
	ascii, err := os.ReadFile(unit1)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(ascii)), "\n")
	if len(lines) != 6 {
		t.Fatalf("unit1 has %d lines, want 6", len(lines))
	}
	for _, ln := range lines {
		if len(strings.Fields(ln)) != 20 {
			t.Fatalf("unit1 record: %q", ln)
		}
	}
	bin2, err := os.ReadFile(unit2)
	if err != nil {
		t.Fatal(err)
	}
	if len(bin2) == 0 {
		t.Fatal("unit2 empty")
	}
}

func TestLingerCLIProducesTransferTable(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	bin := buildTool(t, "linger")
	dir := t.TempDir()
	out := filepath.Join(dir, "linger.out")
	cmd := exec.Command(bin, "-nk", "8", "-kmin", "0.001", "-kmax", "0.1", "-out", out)
	cmd.Dir = dir
	txt, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, txt)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	// Header + 8 rows.
	if len(lines) != 9 {
		t.Fatalf("output lines %d, want 9:\n%s", len(lines), data)
	}
	var k, tk, pk float64
	if _, err := fmt.Sscanf(lines[1], "%g %g %g", &k, &tk, &pk); err != nil {
		t.Fatalf("parse %q: %v", lines[1], err)
	}
	if tk != 1.0 {
		t.Fatalf("first transfer value %g, want 1 (normalization)", tk)
	}
}

func TestPsiMovieCLIWritesFrames(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	bin := buildTool(t, "psimovie")
	dir := t.TempDir()
	cmd := exec.Command(bin, "-n", "32", "-frames", "4", "-dir", dir)
	txt, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, txt)
	}
	for f := 0; f < 4; f++ {
		name := filepath.Join(dir, fmt.Sprintf("psi_%03d.pgm", f))
		st, err := os.Stat(name)
		if err != nil {
			t.Fatalf("frame %d missing: %v", f, err)
		}
		if st.Size() < 32*32 {
			t.Fatalf("frame %d truncated", f)
		}
	}
}
