GO ?= go

.PHONY: check fmt-check vet build test-short test test-race bench bench-json

check: fmt-check vet build test-short

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test-short:
	$(GO) test -short ./...

test:
	$(GO) test ./...

# test-race runs the concurrency-sensitive packages (and everything else in
# short mode) under the race detector: the serving layer, the dispatcher
# backends, and the facade's parallel-request contract test.
test-race:
	$(GO) test -race -short ./internal/serve/... ./...

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# bench-json regenerates BENCH_PR3.json: the fast-vs-reference C_l pipeline
# speedup, the projection/kernel microbenchmarks, the measured accuracy of
# the fast path, and the spectrum service's serving numbers (cache-hit and
# cold-miss latency, sustained req/s at 32 concurrent clients).
bench-json:
	$(GO) run ./cmd/benchjson -out BENCH_PR3.json
