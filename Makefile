GO ?= go

.PHONY: check fmt-check vet build test-short test bench bench-json

check: fmt-check vet build test-short

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test-short:
	$(GO) test -short ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# bench-json regenerates BENCH_PR2.json: the fast-vs-reference C_l pipeline
# speedup, the projection/kernel microbenchmarks, and the measured accuracy
# of the fast path.
bench-json:
	$(GO) run ./cmd/benchjson -out BENCH_PR2.json
