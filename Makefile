GO ?= go

.PHONY: check fmt-check vet build test-short test bench

check: fmt-check vet build test-short

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test-short:
	$(GO) test -short ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...
