GO ?= go

.PHONY: check fmt-check vet staticcheck build test-short test test-race test-faults test-farm test-cluster bench bench-json bench-smoke

check: fmt-check vet staticcheck build test-short

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# staticcheck runs when the binary is on PATH and is skipped (with a note)
# when it is not, so `make check` works on boxes without it while CI and
# developer machines that have it get the full lint.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

build:
	$(GO) build ./...

test-short:
	$(GO) test -short ./...

test:
	$(GO) test ./...

# test-race runs the concurrency-sensitive packages (and everything else in
# short mode) under the race detector: the serving layer, the dispatcher
# backends, and the facade's parallel-request contract test.
test-race:
	$(GO) test -race -short ./internal/serve/... ./...

# test-faults runs the fault-injection and recovery suite under the race
# detector: the faultmp transport wrapper, the chaos matrix (scripted
# kill/hang/drop across the chan/fifo/tcp transports, all-but-one and
# all-workers-lost kills, batched-block reassignment), the connect
# retry/timeout paths, worker panic recovery, and the serving layer's
# deadline/stale degradation.
test-faults:
	$(GO) test -race ./internal/mp/faultmp/
	$(GO) test -race -run 'Chaos|ConnectAll|Panic|Deadline|Stale' ./internal/dispatch/ ./internal/serve/

# test-farm runs the multi-process worker-farm suite under the race
# detector: the in-process supervisor contract tests (bitwise equality with
# the pool, heartbeat kills, rejoin accounting, drain, zero-worker
# degradation), the tcpmp rendezvous/typed-error hardening, the serve and
# facade farm routing, and the process-spawning chaos tests that SIGKILL
# real plingerw workers mid-sweep and between sweeps.
test-farm:
	$(GO) test -race ./internal/farm/ ./internal/mp/tcpmp/
	$(GO) test -race -run 'Farm' ./internal/serve/ .

# test-cluster runs the sharded-cache fleet suite under the race detector:
# the peering substrate (rendezvous ring, per-peer breakers, heartbeat
# membership death/rejoin, retry/backoff, the deterministic fault-injection
# transport) and the serving-layer chaos matrix — owner killed, hung,
# erroring 5xx, and partitioned, each required to degrade to a 200 that is
# bitwise identical to a no-cluster reference — plus the cross-node hit,
# stale short-circuit, hedged-slow-peer, back-fill, and derived Retry-After
# contracts.
test-cluster:
	$(GO) test -race ./internal/cluster/
	$(GO) test -race -run 'Cluster|RetryAfter|KeyExcludesRouting' ./internal/serve/

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# bench-json regenerates BENCH_PR10.json: the fast-vs-reference C_l pipeline
# and single-mode evolution speedups, the PR 6 ablation grid on the dense
# multipole request (lspline on/off x kbatch 1/4/8 plus each fast
# ingredient individually toggled off, with per-column wall/speedup and
# accuracy), the GOMAXPROCS scaling sweep of the fast pipeline
# (wallclock/speedup/parallel efficiency per processor count, spectra
# bitwise-checked across counts), the projection/kernel microbenchmarks
# with their allocs/op columns, the measured accuracy of the full fast
# path, the PR 7 fault-recovery column (wall time with one injected worker
# kill vs clean, recovered spectra bitwise-checked), and the spectrum
# service's serving numbers (cache-hit and cold-miss latency with
# histogram-backed p50/p95/p99/max quantiles, sustained req/s at 32
# concurrent clients), the PR 9 farm-procs column (cold-sweep wall
# clock vs plingerw worker-process count, spectra bitwise-checked against
# the in-process pool), and the PR 10 cluster-nodes column (hot-key
# serving throughput of a sharded cache fleet at 1/2/4 in-process
# daemons, with the whole fleet required to pay exactly one sweep for
# the key).
bench-json:
	$(GO) run ./cmd/benchjson -out BENCH_PR10.json

# bench-smoke runs the whole benchjson path at tiny settings (small
# LMaxCl/NK, short service runs) and writes outside the repo — the CI guard
# that keeps the report pipeline from rotting between real bench-json runs.
# That path includes the PR 6 ablation grid, so every LSpline/KBatch
# combination is exercised end-to-end on each CI run. It also runs the
# scaling sweep at GOMAXPROCS 1 and 2 and, on multi-core hosts, fails
# unless the 2-processor run beats the 1-processor run.
bench-smoke:
	$(GO) run ./cmd/benchjson -smoke -out /tmp/bench-smoke.json
