GO ?= go

.PHONY: check fmt-check vet build test-short test test-race bench bench-json bench-smoke

check: fmt-check vet build test-short

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test-short:
	$(GO) test -short ./...

test:
	$(GO) test ./...

# test-race runs the concurrency-sensitive packages (and everything else in
# short mode) under the race detector: the serving layer, the dispatcher
# backends, and the facade's parallel-request contract test.
test-race:
	$(GO) test -race -short ./internal/serve/... ./...

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# bench-json regenerates BENCH_PR5.json: the fast-vs-reference C_l pipeline
# and single-mode evolution speedups, the GOMAXPROCS scaling sweep of the
# fast pipeline (wallclock/speedup/parallel efficiency per processor count,
# spectra bitwise-checked across counts), the projection/kernel
# microbenchmarks with their allocs/op columns, the measured accuracy of
# the full fast path, and the spectrum service's serving numbers (cache-hit
# and cold-miss latency, sustained req/s at 32 concurrent clients).
bench-json:
	$(GO) run ./cmd/benchjson -out BENCH_PR5.json

# bench-smoke runs the whole benchjson path at tiny settings (small
# LMaxCl/NK, short service runs) and writes outside the repo — the CI guard
# that keeps the report pipeline from rotting between real bench-json runs.
# It also runs the scaling sweep at GOMAXPROCS 1 and 2 and, on multi-core
# hosts, fails unless the 2-processor run beats the 1-processor run.
bench-smoke:
	$(GO) run ./cmd/benchjson -smoke -out /tmp/bench-smoke.json
