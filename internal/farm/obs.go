package farm

import "plinger/internal/obs"

// Farm metric series on the default registry. Gauges are settable (not
// GaugeFunc closures) so tests that run several supervisors in one process
// never pin a retired supervisor's roster into the exposition; every
// roster change re-publishes the current truth.
var (
	obsWorkersAlive = obs.Default.Gauge("plinger_farm_workers_alive", "",
		"registered farm workers currently attached and heartbeating")
	obsWorkersTarget = obs.Default.Gauge("plinger_farm_workers_target", "",
		"configured spawned-local worker count the supervisor reconciles toward")
	obsRestarts = obs.Default.Counter("plinger_farm_restarts_total", "",
		"spawned worker processes restarted after an exit")
	obsReconnects = obs.Default.Counter("plinger_farm_reconnects_total", "",
		"worker registrations that were reconnections of a previously attached process")
	obsRejoins = obs.Default.Counter("plinger_farm_rejoins_total", "",
		"reconnections of workers previously declared failed (capacity self-healed)")
	obsHeartbeatMisses = obs.Default.Counter("plinger_farm_heartbeat_misses_total", "",
		"heartbeat windows that elapsed without a pong (or any traffic) from a worker")
	obsHeartbeatKills = obs.Default.Counter("plinger_farm_heartbeat_kills_total", "",
		"workers declared dead after exhausting the heartbeat miss budget")
	obsRestartsDenied = obs.Default.Counter("plinger_farm_restarts_denied_total", "",
		"worker restarts withheld because the rate-limited restart budget was exhausted")
	obsSweeps = obs.Default.Counter("plinger_farm_sweeps_total", "",
		"sweeps served through the farm backend")
)
