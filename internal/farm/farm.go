package farm

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net"
	"os/exec"
	"sync"
	"sync/atomic"
	"time"

	"plinger/internal/core"
	"plinger/internal/dispatch"
	"plinger/internal/mp"
	runner "plinger/internal/plinger"
)

// Options configures a Supervisor.
type Options struct {
	// Addr is the TCP listen address workers dial ("127.0.0.1:0" default;
	// use ":9041"-style addresses to accept workers from other hosts).
	Addr string
	// Workers is the spawned-local fleet target: the supervisor launches
	// this many WorkerBin processes and keeps that many running (restarts
	// under the budget). Zero means remote-only: the roster is whatever
	// dials in.
	Workers int
	// WorkerBin is the plingerw binary to spawn (required when Workers > 0).
	WorkerBin string
	// WorkerArgs are extra arguments passed to every spawned worker (the
	// supervisor always appends -master <addr>).
	WorkerArgs []string
	// Heartbeat is the idle-channel ping interval (default 1s).
	Heartbeat time.Duration
	// HeartbeatMisses is how many consecutive unanswered ping windows a
	// worker survives before being declared dead (default 3).
	HeartbeatMisses int
	// AssignDeadline arms the fault-tolerant master for every farm sweep;
	// it bounds each assignment round trip (default 30s). It cannot be
	// disabled: a farm without failure detection would hang on the first
	// lost worker.
	AssignDeadline time.Duration
	// MinWorkers is how many attached idle workers a sweep waits for
	// before starting (default: 1 when Workers > 0, else 0). With fewer —
	// including zero — after WaitWorkers, the sweep runs anyway and the
	// master computes the shortfall itself.
	MinWorkers int
	// WaitWorkers bounds that wait (default 10s).
	WaitWorkers time.Duration
	// RestartMax restarts are allowed per RestartWindow across the fleet
	// (defaults 5 per minute); beyond that a crash-looping worker stays
	// down until the window drains.
	RestartMax    int
	RestartWindow time.Duration
	// Logf receives supervision events (nil: silent).
	Logf func(format string, args ...any)
}

func (o *Options) withDefaults() Options {
	opt := *o
	if opt.Addr == "" {
		opt.Addr = "127.0.0.1:0"
	}
	if opt.Heartbeat <= 0 {
		opt.Heartbeat = time.Second
	}
	if opt.HeartbeatMisses <= 0 {
		opt.HeartbeatMisses = 3
	}
	if opt.AssignDeadline <= 0 {
		opt.AssignDeadline = 30 * time.Second
	}
	if opt.MinWorkers == 0 && opt.Workers > 0 {
		opt.MinWorkers = 1
	}
	if opt.MinWorkers < 0 {
		opt.MinWorkers = 0
	}
	if opt.WaitWorkers <= 0 {
		opt.WaitWorkers = 10 * time.Second
	}
	if opt.RestartMax <= 0 {
		opt.RestartMax = 5
	}
	if opt.RestartWindow <= 0 {
		opt.RestartWindow = time.Minute
	}
	if opt.Logf == nil {
		opt.Logf = func(string, ...any) {}
	}
	return opt
}

// sweepAttach binds one worker connection into one in-flight sweep.
type sweepAttach struct {
	rank int
	q    *mp.Queue  // the master's inbound mailbox for this sweep
	down chan<- int // out-of-band death reports to the running master
}

// workerConn is one registered worker on the roster.
type workerConn struct {
	id    int
	conn  net.Conn
	wmu   sync.Mutex
	hello Hello

	// pingPending counts heartbeat windows since the last inbound frame
	// of any kind; the reader zeroes it on every frame.
	pingPending atomic.Int32
	// sweep is non-nil while this worker is a member of an in-flight
	// sweep; the reader routes its data frames through it and clears it
	// when the worker's SweepDone arrives.
	sweep   atomic.Pointer[sweepAttach]
	removed atomic.Bool

	// Aggregates for Status, guarded by the supervisor mutex.
	sweeps, modes, misses int64
	busySeconds           float64
	joinedAt              time.Time
}

// workerProc is one spawned-local worker process under supervision.
type workerProc struct {
	cmd *exec.Cmd
	pid int
}

// Supervisor owns the fleet: the listener workers register on, the spawned
// local processes and their restart budget, the heartbeat loop, and the
// sweep path that drives the roster through the Appendix-A master. One
// Supervisor serves any number of models — sweeps carry their ModelSpec
// and workers cache models per spec — so one fleet backs a whole daemon.
type Supervisor struct {
	opt Options
	ln  net.Listener

	mu       sync.Mutex
	workers  map[int]*workerConn
	nextID   int
	known    map[string]bool // worker UIDs that have ever registered
	retired  map[string]bool // UIDs the farm itself dropped (fail/heartbeat)
	procs    map[int]*workerProc
	restarts []time.Time
	draining bool

	sweepMu sync.Mutex // sweeps are serialized over the shared fleet
	closed  chan struct{}

	// Counters for Status (the obs series are process-global).
	nRestarts, nReconnects, nRejoins, nHBKills, nDenied, nSweeps atomic.Int64
}

// New starts a supervisor: listen, spawn the local fleet, begin
// heartbeating. Callers must Close (or Drain) it.
func New(opt Options) (*Supervisor, error) {
	o := opt.withDefaults()
	if o.Workers > 0 && o.WorkerBin == "" {
		return nil, fmt.Errorf("farm: %d local workers requested but no WorkerBin to spawn", o.Workers)
	}
	ln, err := net.Listen("tcp", o.Addr)
	if err != nil {
		return nil, fmt.Errorf("farm: listen: %w", err)
	}
	s := &Supervisor{
		opt:     o,
		ln:      ln,
		workers: make(map[int]*workerConn),
		known:   make(map[string]bool),
		retired: make(map[string]bool),
		procs:   make(map[int]*workerProc),
		closed:  make(chan struct{}),
	}
	obsWorkersTarget.Set(float64(o.Workers))
	go s.acceptLoop()
	go s.heartbeatLoop()
	for i := 0; i < o.Workers; i++ {
		if err := s.spawn(); err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

// Addr is the address workers dial (for remote quickstarts and tests).
func (s *Supervisor) Addr() string { return s.ln.Addr().String() }

// --- registration & roster ---

func (s *Supervisor) acceptLoop() {
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed: drain/Close
		}
		go s.register(c)
	}
}

// register admits one dialing worker: magic, Hello, version check,
// Welcome. The whole handshake is deadline-bounded so a half-open dial
// can never wedge the roster.
func (s *Supervisor) register(c net.Conn) {
	c.SetDeadline(time.Now().Add(helloTimeout))
	var m uint32
	if err := binary.Read(c, binary.LittleEndian, &m); err != nil || m != farmMagic {
		c.Close()
		return
	}
	f, err := readFrame(c)
	if err != nil || f.kind != kindHello {
		c.Close()
		return
	}
	var hello Hello
	if err := json.Unmarshal(f.payload, &hello); err != nil {
		c.Close()
		return
	}
	if hello.Version != protocolVersion {
		s.opt.Logf("farm: rejecting worker %s/%d: protocol version %d (want %d)",
			hello.Host, hello.PID, hello.Version, protocolVersion)
		c.Close()
		return
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		c.Close()
		return
	}
	s.nextID++
	wc := &workerConn{id: s.nextID, conn: c, hello: hello, joinedAt: time.Now()}
	if hello.Rejoins > 0 || s.known[hello.UID] {
		obsReconnects.Inc()
		s.nReconnects.Add(1)
	}
	if s.retired[hello.UID] {
		// A worker the farm itself dropped — failed mid-sweep or
		// heartbeat-killed — came back: PR 7 lost it for one sweep, the
		// farm re-admits it for the next. This is the self-healing rejoin.
		obsRejoins.Inc()
		s.nRejoins.Add(1)
		delete(s.retired, hello.UID)
	}
	s.known[hello.UID] = true
	s.workers[wc.id] = wc
	alive := len(s.workers)
	s.mu.Unlock()
	obsWorkersAlive.Set(float64(alive))

	welcome := Welcome{ID: wc.id, HeartbeatMS: int(s.opt.Heartbeat / time.Millisecond)}
	if err := writeJSON(c, &wc.wmu, kindWelcome, welcome); err != nil {
		s.dropConn(wc, err)
		return
	}
	c.SetDeadline(time.Time{})
	s.opt.Logf("farm: worker %d joined (host=%s pid=%d procs=%d rejoins=%d), %d alive",
		wc.id, hello.Host, hello.PID, hello.Procs, hello.Rejoins, alive)
	go s.readLoop(wc)
}

// readLoop owns one worker connection's inbound side for its lifetime.
func (s *Supervisor) readLoop(wc *workerConn) {
	for {
		f, err := readFrame(wc.conn)
		if err != nil {
			s.dropConn(wc, err)
			return
		}
		wc.pingPending.Store(0) // any traffic is liveness
		switch f.kind {
		case kindPong:
			// liveness only
		case kindData:
			if at := wc.sweep.Load(); at != nil {
				data, err := decodeFloats(f.payload)
				if err != nil {
					s.dropConn(wc, err)
					return
				}
				// A push after the master finished (a straggler's duplicate)
				// hits the closed per-sweep queue and is discarded — the
				// wire form of the master's first-wins rule.
				_ = at.q.Push(mp.Message{Tag: int(f.tag), Source: at.rank, Data: data})
			}
		case kindSweepDone:
			var done sweepDone
			_ = json.Unmarshal(f.payload, &done)
			wc.sweep.Store(nil)
			s.mu.Lock()
			wc.sweeps++
			s.mu.Unlock()
			if !done.OK {
				s.opt.Logf("farm: worker %d reported sweep error: %s", wc.id, done.Err)
			}
		default:
			s.dropConn(wc, fmt.Errorf("farm: protocol violation: frame kind %d from worker", f.kind))
			return
		}
	}
}

// dropConn removes a worker from the roster (idempotent) and, when it was
// inside a sweep, reports its rank to the running master so the block is
// orphaned immediately instead of waiting out the deadline.
func (s *Supervisor) dropConn(wc *workerConn, cause error) {
	if wc.removed.Swap(true) {
		return
	}
	wc.conn.Close()
	if at := wc.sweep.Swap(nil); at != nil {
		select {
		case at.down <- at.rank:
		default:
		}
	}
	s.mu.Lock()
	delete(s.workers, wc.id)
	alive := len(s.workers)
	draining := s.draining
	s.mu.Unlock()
	obsWorkersAlive.Set(float64(alive))
	if !draining {
		s.opt.Logf("farm: worker %d (host=%s pid=%d) detached: %v — %d alive",
			wc.id, wc.hello.Host, wc.hello.PID, cause, alive)
	}
}

// retire drops a worker the master declared failed and remembers its PID:
// when the same process dials back in, that registration counts as a
// rejoin. Closing the connection is also what UNSTICKS a zombie — a
// worker failed for slowness that is still alive and probing — forcing it
// back through reconnect instead of leaving it wedged on a dead sweep.
func (s *Supervisor) retireConn(wc *workerConn, cause string) {
	s.mu.Lock()
	s.retired[wc.hello.UID] = true
	s.mu.Unlock()
	s.dropConn(wc, fmt.Errorf("farm: retired: %s", cause))
}

// --- heartbeats ---

func (s *Supervisor) heartbeatLoop() {
	t := time.NewTicker(s.opt.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-s.closed:
			return
		case <-t.C:
		}
		s.mu.Lock()
		conns := make([]*workerConn, 0, len(s.workers))
		for _, wc := range s.workers {
			conns = append(conns, wc)
		}
		s.mu.Unlock()
		for _, wc := range conns {
			missed := int(wc.pingPending.Add(1)) - 1
			if missed >= 1 {
				obsHeartbeatMisses.Inc()
			}
			if missed >= s.opt.HeartbeatMisses {
				obsHeartbeatKills.Inc()
				s.nHBKills.Add(1)
				s.killProcOf(wc)
				s.retireConn(wc, fmt.Sprintf("%d heartbeat misses", missed))
				continue
			}
			// Send off the ticker goroutine: a wedged connection must not
			// stall everyone else's heartbeat.
			go func(wc *workerConn) {
				if err := writeFrame(wc.conn, &wc.wmu, kindPing, 0, nil); err != nil {
					s.dropConn(wc, err)
				}
			}(wc)
		}
	}
}

// killProcOf kills the spawned process behind a heartbeat-dead worker, if
// it is one of ours: the connection may be wedged while the process spins,
// and only killing it lets the reconciler put a healthy one back.
func (s *Supervisor) killProcOf(wc *workerConn) {
	s.mu.Lock()
	wp := s.procs[wc.hello.PID]
	s.mu.Unlock()
	if wp != nil && wp.cmd.Process != nil {
		_ = wp.cmd.Process.Kill()
	}
}

// --- spawned-local fleet & restart budget ---

func (s *Supervisor) spawn() error {
	args := append(append([]string{}, s.opt.WorkerArgs...), "-master", s.Addr())
	cmd := exec.Command(s.opt.WorkerBin, args...)
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("farm: spawn worker: %w", err)
	}
	wp := &workerProc{cmd: cmd, pid: cmd.Process.Pid}
	s.mu.Lock()
	if s.draining {
		// Lost the race against Drain: this process would outlive the
		// farm's own kill pass, so put it down here.
		s.mu.Unlock()
		_ = cmd.Process.Kill()
		go cmd.Wait()
		return nil
	}
	s.procs[wp.pid] = wp
	s.mu.Unlock()
	go s.monitor(wp)
	return nil
}

func (s *Supervisor) monitor(wp *workerProc) {
	err := wp.cmd.Wait()
	s.mu.Lock()
	delete(s.procs, wp.pid)
	draining := s.draining
	s.mu.Unlock()
	if draining {
		return
	}
	s.opt.Logf("farm: worker process %d exited: %v", wp.pid, err)
	if !s.allowRestart() {
		obsRestartsDenied.Inc()
		s.nDenied.Add(1)
		s.opt.Logf("farm: restart budget exhausted (%d per %v); worker %d stays down",
			s.opt.RestartMax, s.opt.RestartWindow, wp.pid)
		return
	}
	obsRestarts.Inc()
	s.nRestarts.Add(1)
	time.Sleep(50 * time.Millisecond) // crash-loop breather
	s.mu.Lock()
	stillUp := !s.draining
	s.mu.Unlock()
	if !stillUp {
		return
	}
	if err := s.spawn(); err != nil {
		s.opt.Logf("farm: respawn failed: %v", err)
	}
}

// allowRestart enforces the token-bucket restart budget: at most
// RestartMax restarts within any sliding RestartWindow.
func (s *Supervisor) allowRestart() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Now()
	keep := s.restarts[:0]
	for _, t := range s.restarts {
		if now.Sub(t) < s.opt.RestartWindow {
			keep = append(keep, t)
		}
	}
	s.restarts = keep
	if len(s.restarts) >= s.opt.RestartMax {
		return false
	}
	s.restarts = append(s.restarts, now)
	return true
}

// --- the sweep path ---

// masterEndpoint adapts the roster slice claimed for one sweep to
// mp.Endpoint for runner.Master. Rank 0 is the in-process master; rank r
// (1-based) is peers[r].
type masterEndpoint struct {
	q     *mp.Queue
	peers map[int]*workerConn
	size  int
}

func (e *masterEndpoint) Rank() int   { return 0 }
func (e *masterEndpoint) Size() int   { return e.size }
func (e *masterEndpoint) Master() int { return 0 }

func (e *masterEndpoint) Send(dst, tag int, data []float64) error {
	wc := e.peers[dst]
	if wc == nil {
		return fmt.Errorf("farm: no worker holds rank %d", dst)
	}
	return writeFrame(wc.conn, &wc.wmu, kindData, int32(tag), encodeFloats(data))
}

func (e *masterEndpoint) Bcast(tag int, data []float64) error {
	var first error
	for rank := 1; rank < e.size; rank++ {
		if err := e.Send(rank, tag, data); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (e *masterEndpoint) Probe(tag, source int) (int, int, error) {
	return e.q.Probe(tag, source)
}

func (e *masterEndpoint) ProbeTimeout(tag, source int, d time.Duration) (int, int, bool, error) {
	return e.q.ProbeTimeout(tag, source, d)
}

func (e *masterEndpoint) Recv(tag, source int) (mp.Message, error) {
	return e.q.Recv(tag, source)
}

func (e *masterEndpoint) Close() error {
	e.q.Close()
	return nil
}

// claimWorkers waits (bounded) for MinWorkers idle workers, then marks
// every idle worker as a member of the new sweep and hands back the
// rank->conn table. An empty table is a legal outcome: the master then
// computes the whole sweep itself through PR 7's degradation path.
func (s *Supervisor) claimWorkers(ctx context.Context, q *mp.Queue, down chan<- int) map[int]*workerConn {
	deadline := time.Now().Add(s.opt.WaitWorkers)
	for {
		s.mu.Lock()
		idle := make([]*workerConn, 0, len(s.workers))
		for _, wc := range s.workers {
			if wc.sweep.Load() == nil {
				idle = append(idle, wc)
			}
		}
		if len(idle) >= s.opt.MinWorkers || time.Now().After(deadline) || ctx.Err() != nil {
			// Deterministic rank order (by join id) for readable stats;
			// results are rank-agnostic by the determinism contract.
			for i := 1; i < len(idle); i++ {
				for j := i; j > 0 && idle[j].id < idle[j-1].id; j-- {
					idle[j], idle[j-1] = idle[j-1], idle[j]
				}
			}
			peers := make(map[int]*workerConn, len(idle))
			for i, wc := range idle {
				rank := i + 1
				wc.sweep.Store(&sweepAttach{rank: rank, q: q, down: down})
				peers[rank] = wc
			}
			s.mu.Unlock()
			return peers
		}
		s.mu.Unlock()
		select {
		case <-ctx.Done():
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// Sweep runs one k-grid sweep for the given model over the fleet,
// returning dispatch-shaped results and stats. Sweeps are serialized: the
// fleet is one shared resource and interleaving two masters over one
// mailbox per worker would need per-sweep multiplexing the wire does not
// carry. The fault-tolerant master is always armed; lost workers cost
// reassignments (or master-local recompute at the limit), never the sweep.
func (s *Supervisor) Sweep(ctx context.Context, spec ModelSpec, model *core.Model, ks []float64, mode core.Params, sched dispatch.Schedule, adaptLMax bool) (*dispatch.Sweep, *dispatch.RunStats, error) {
	if model == nil {
		return nil, nil, fmt.Errorf("farm: sweep has no master-side model")
	}
	if len(ks) == 0 {
		return nil, nil, fmt.Errorf("farm: empty wavenumber grid")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	s.sweepMu.Lock()
	defer s.sweepMu.Unlock()
	select {
	case <-s.closed:
		return nil, nil, fmt.Errorf("farm: supervisor closed")
	default:
	}

	tau0 := dispatch.SweepTau0(model, mode)
	q := mp.NewQueue()
	down := make(chan int, 64)
	peers := s.claimWorkers(ctx, q, down)
	world := len(peers) + 1
	ep := &masterEndpoint{q: q, peers: peers, size: world}

	// Membership: each claimed worker learns its rank, the world size, the
	// model, the grid, and the mode — then the Appendix-A protocol takes
	// over on the same connection. A worker unreachable right here is
	// reported down at once; its start-up deadline would catch it anyway.
	wspec := specFromParams(mode)
	wspec.Model = spec
	wspec.World = world
	wspec.Ks = ks
	for rank, wc := range peers {
		wspec.Rank = rank
		if err := writeJSON(wc.conn, &wc.wmu, kindSweepBegin, wspec); err != nil {
			s.dropConn(wc, err)
		}
	}

	// Deadline propagation mirrors dispatch.MP: the tighter of the farm's
	// own assignment deadline and the caller's context budget.
	assignDL := s.opt.AssignDeadline
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); rem > 0 && rem < assignDL {
			assignDL = rem
		}
	}
	cfg := runner.Config{
		KValues:        ks,
		Mode:           mode,
		Order:          dispatch.HandOutOrder(sched, ks, mode.KBatch),
		PerKLMax:       dispatch.PerKLMaxTable(ks, tau0, mode.LMax, adaptLMax),
		AssignDeadline: assignDL,
		WorkerDown:     down,
	}

	dispatch.PrebuildEvalTables(model, mode)

	// Cancellation: the master's probes watch no context, so closing its
	// mailbox is the abort path (every pending probe returns mp.ErrClosed).
	runDone := make(chan struct{})
	defer close(runDone)
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				q.Close()
			case <-runDone:
			}
		}()
	}

	res, err := runner.Master(ep, model, cfg)
	if err != nil {
		// Workers may be blocked waiting for an assignment that will never
		// come; a stop on the wire releases each of them back to idle. A
		// stop landing after a worker already left the sweep falls into its
		// retired mailbox and is ignored.
		for rank := range peers {
			_ = ep.Send(rank, runner.TagStop, []float64{0})
		}
		if ctx.Err() != nil {
			return nil, nil, ctx.Err()
		}
		return nil, nil, err
	}

	// Casualties: the master dropped these ranks for THIS sweep; retiring
	// their connections forces the processes (if still alive) back through
	// reconnect, and the roster re-admits them for the NEXT sweep.
	for _, rank := range res.FailedRanks {
		if wc := peers[rank]; wc != nil {
			s.retireConn(wc, fmt.Sprintf("failed by master (rank %d)", rank))
		}
	}

	obsSweeps.Inc()
	s.nSweeps.Add(1)
	st := &dispatch.RunStats{
		Backend:        "farm",
		Schedule:       sched,
		NProc:          res.NProc,
		NWorkers:       res.NProc - 1,
		Wallclock:      res.Wallclock,
		BytesMoved:     res.BytesReceived,
		WorkerFailures: res.WorkerFailures,
		Reassignments:  res.Reassignments,
		DeadlineMisses: res.DeadlineMisses,
		LocalModes:     res.LocalModes,
	}
	if st.NWorkers < 1 {
		st.NWorkers = 1
	}
	s.mu.Lock()
	for _, w := range res.Workers {
		st.Workers = append(st.Workers, dispatch.WorkerTiming(w))
		if wc := peers[w.Rank]; wc != nil {
			wc.modes += int64(w.Modes)
			wc.busySeconds += w.Seconds
			wc.misses += int64(w.DeadlineMisses)
		}
	}
	s.mu.Unlock()
	dispatch.FinishRunStats(st)
	sw := &dispatch.Sweep{
		KValues: append([]float64(nil), ks...),
		Results: res.Mode,
		Tau0:    tau0,
	}
	return sw, st, nil
}

// --- status & shutdown ---

// WorkerStatus is one roster entry in Status (exposed via /v1/stats).
type WorkerStatus struct {
	ID             int     `json:"id"`
	Host           string  `json:"host"`
	PID            int     `json:"pid"`
	Procs          int     `json:"procs"`
	Rejoins        int     `json:"rejoins"`
	State          string  `json:"state"` // "idle" or "sweeping"
	Sweeps         int64   `json:"sweeps"`
	Modes          int64   `json:"modes"`
	BusySeconds    float64 `json:"busy_seconds"`
	DeadlineMisses int64   `json:"deadline_misses"`
}

// Status is the supervisor's self-description for /v1/stats.
type Status struct {
	Addr           string         `json:"addr"`
	TargetWorkers  int            `json:"target_workers"`
	Alive          int            `json:"alive"`
	Sweeps         int64          `json:"sweeps"`
	Restarts       int64          `json:"restarts"`
	RestartsDenied int64          `json:"restarts_denied,omitempty"`
	Reconnects     int64          `json:"reconnects"`
	Rejoins        int64          `json:"rejoins"`
	HeartbeatKills int64          `json:"heartbeat_kills"`
	Workers        []WorkerStatus `json:"workers,omitempty"`
}

// Status snapshots the roster and supervision counters.
func (s *Supervisor) Status() Status {
	st := Status{
		Addr:           s.Addr(),
		TargetWorkers:  s.opt.Workers,
		Sweeps:         s.nSweeps.Load(),
		Restarts:       s.nRestarts.Load(),
		RestartsDenied: s.nDenied.Load(),
		Reconnects:     s.nReconnects.Load(),
		Rejoins:        s.nRejoins.Load(),
		HeartbeatKills: s.nHBKills.Load(),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st.Alive = len(s.workers)
	for _, wc := range s.workers {
		ws := WorkerStatus{
			ID: wc.id, Host: wc.hello.Host, PID: wc.hello.PID,
			Procs: wc.hello.Procs, Rejoins: wc.hello.Rejoins,
			State:  "idle",
			Sweeps: wc.sweeps, Modes: wc.modes,
			BusySeconds: wc.busySeconds, DeadlineMisses: wc.misses,
		}
		if wc.sweep.Load() != nil {
			ws.State = "sweeping"
		}
		st.Workers = append(st.Workers, ws)
	}
	for i := 1; i < len(st.Workers); i++ {
		for j := i; j > 0 && st.Workers[j].ID < st.Workers[j-1].ID; j-- {
			st.Workers[j], st.Workers[j-1] = st.Workers[j-1], st.Workers[j]
		}
	}
	return st
}

// Alive reports the current roster size (for tests and readiness checks).
func (s *Supervisor) Alive() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.workers)
}

// Drain shuts the farm down gracefully: stop admitting workers, wait for
// the in-flight sweep (bounded by ctx), tell every worker to exit cleanly,
// and wait for spawned processes to leave (bounded by ctx; stragglers are
// killed). Always returns with the farm fully stopped.
func (s *Supervisor) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		<-s.closed
		return nil
	}
	s.draining = true
	s.mu.Unlock()
	s.ln.Close()

	// Wait out the in-flight sweep, bounded by the caller's budget; an
	// expired budget forces shutdown under the running sweep (it will fail
	// its transport, which is the caller's explicit choice).
	acquired := make(chan struct{})
	go func() {
		s.sweepMu.Lock()
		close(acquired)
	}()
	graceful := true
	select {
	case <-acquired:
		defer s.sweepMu.Unlock()
	case <-ctx.Done():
		graceful = false
	}

	close(s.closed)
	s.mu.Lock()
	conns := make([]*workerConn, 0, len(s.workers))
	for _, wc := range s.workers {
		conns = append(conns, wc)
	}
	procs := make([]*workerProc, 0, len(s.procs))
	for _, wp := range s.procs {
		procs = append(procs, wp)
	}
	s.mu.Unlock()
	for _, wc := range conns {
		_ = writeFrame(wc.conn, &wc.wmu, kindDrain, 0, nil)
	}
	// Give drained workers until the budget (or a short grace) to leave on
	// their own — a clean exit closes the connection, which empties the
	// roster — before force-killing stragglers. A worker may still be
	// flushing its final SweepDone when the drain order lands; closing its
	// connection under that write would turn a graceful exit into an error.
	deadline := time.Now().Add(2 * time.Second)
	if dl, ok := ctx.Deadline(); ok && dl.Before(deadline) {
		deadline = dl
	}
	for time.Now().Before(deadline) {
		s.mu.Lock()
		left := len(s.procs) + len(s.workers)
		s.mu.Unlock()
		if left == 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, wp := range procs {
		if wp.cmd.Process != nil {
			_ = wp.cmd.Process.Kill()
		}
	}
	for _, wc := range conns {
		wc.conn.Close()
	}
	obsWorkersAlive.Set(0)
	if !graceful {
		return fmt.Errorf("farm: drain budget expired with a sweep in flight")
	}
	return nil
}

// Close force-drains with a short budget; for callers without a context.
func (s *Supervisor) Close() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = s.Drain(ctx)
}
