package farm

// Process-level chaos: these tests spawn real plingerw worker processes
// under the supervisor and kill them — mid-sweep and between sweeps —
// while asserting every sweep stays bitwise-identical to the in-process
// pool and the fleet heals back to its configured size on its own.

import (
	"context"
	"fmt"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"plinger/internal/dispatch"
)

// workerBin is the plingerw binary TestMain builds once for the package.
var workerBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "plingerw-chaos")
	if err == nil {
		bin := filepath.Join(dir, "plingerw")
		cmd := exec.Command("go", "build", "-o", bin, "plinger/cmd/plingerw")
		if out, err := cmd.CombinedOutput(); err == nil {
			workerBin = bin
		} else {
			fmt.Fprintf(os.Stderr, "chaos: cannot build plingerw (tests will skip): %v\n%s\n", err, out)
		}
	}
	code := m.Run()
	if dir != "" {
		os.RemoveAll(dir)
	}
	os.Exit(code)
}

func chaosSupervisor(t *testing.T, workers int) *Supervisor {
	t.Helper()
	if workerBin == "" {
		t.Skip("plingerw binary unavailable")
	}
	s, err := New(Options{
		Workers:         workers,
		WorkerBin:       workerBin,
		WorkerArgs:      []string{"-quiet"},
		Heartbeat:       100 * time.Millisecond,
		HeartbeatMisses: 5,
		AssignDeadline:  3 * time.Second,
		MinWorkers:      workers,
		WaitWorkers:     15 * time.Second,
		RestartMax:      20,
		RestartWindow:   time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// chaosKs is a grid long enough that a sweep takes real wall time, so a
// kill launched alongside it lands mid-sweep.
func chaosKs() []float64 {
	ks := make([]float64, 24)
	for i := range ks {
		ks[i] = 0.002 * math.Pow(0.12/0.002, float64(i)/float64(len(ks)-1))
	}
	return ks
}

// killWorkerPID SIGKILLs one registered worker process not yet in
// exclude, returning its PID (0 if none could be found in time). Safe to
// call off the test goroutine.
func killWorkerPID(s *Supervisor, exclude map[int]bool) int {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for _, w := range s.Status().Workers {
			if w.PID > 0 && !exclude[w.PID] {
				if err := syscall.Kill(w.PID, syscall.SIGKILL); err == nil {
					return w.PID
				}
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	return 0
}

// TestChaosKillMidSweepAndBetweenSweeps is the PR's acceptance scenario:
// under sustained sweep load, one plingerw is SIGKILLed mid-sweep and
// another between sweeps. Every sweep's spectra stay bitwise-correct, the
// killed workers are restarted and rejoin, and the roster returns to the
// configured size without operator action.
func TestChaosKillMidSweepAndBetweenSweeps(t *testing.T) {
	const fleet = 3
	s := chaosSupervisor(t, fleet)
	waitAlive(t, s, fleet)

	ks := chaosKs()
	mode := smallMode()
	ref := poolReference(t, ks, mode)
	check := func(label string, sw *dispatch.Sweep) {
		t.Helper()
		for i := range ref.Results {
			sameResult(t, fmt.Sprintf("%s mode %d", label, i), sw.Results[i], ref.Results[i])
		}
	}
	runSweep := func(label string) *dispatch.Sweep {
		t.Helper()
		sw, _, err := s.Sweep(context.Background(), scdmSpec(), testModel(t), ks, mode, dispatch.LargestFirst, false)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		return sw
	}

	killed := map[int]bool{}

	// Sustained load: sweep 0 is calm, sweep 1 loses a worker mid-flight,
	// sweep 2 follows a between-sweeps kill, sweeps 3-4 ride the healed
	// fleet.
	check("calm", runSweep("calm"))

	midKill := make(chan int, 1)
	go func() {
		time.Sleep(5 * time.Millisecond) // let the sweep start handing out work
		midKill <- killWorkerPID(s, killed)
	}()
	check("mid-sweep kill", runSweep("mid-sweep kill"))
	if pid := <-midKill; pid != 0 {
		killed[pid] = true
	} else {
		t.Fatal("mid-sweep kill found no worker process")
	}

	if pid := killWorkerPID(s, killed); pid != 0 { // between sweeps
		killed[pid] = true
	} else {
		t.Fatal("between-sweeps kill found no worker process")
	}
	check("after between-sweeps kill", runSweep("after between-sweeps kill"))

	check("steady 1", runSweep("steady 1"))
	check("steady 2", runSweep("steady 2"))

	// Self-healing: the monitor restarts the killed processes, they dial
	// back in, and the roster recovers to the configured level.
	waitAlive(t, s, fleet)
	st := s.Status()
	if st.Restarts < 2 {
		t.Fatalf("expected >=2 supervised restarts, got %+v", st)
	}
	if st.Alive != fleet {
		t.Fatalf("fleet did not heal: %+v", st)
	}
}

// TestChaosSpawnedFleetDrain verifies a spawned fleet exits cleanly on
// Drain: processes leave on the drain order, none are force-killed into
// restart loops, and the restart budget is untouched.
func TestChaosSpawnedFleetDrain(t *testing.T) {
	s := chaosSupervisor(t, 2)
	waitAlive(t, s, 2)
	if _, _, err := s.Sweep(context.Background(), scdmSpec(), testModel(t), testKs(), smallMode(), dispatch.LargestFirst, false); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if got := s.Status(); got.Alive != 0 || got.Restarts != 0 {
		t.Fatalf("drain left the fleet dirty: %+v", got)
	}
}

// TestChaosRestartBudgetDeniesCrashLoop pins the rate limit: a fleet
// whose binary dies instantly burns its restart budget and then stays
// down instead of forking forever.
func TestChaosRestartBudgetDeniesCrashLoop(t *testing.T) {
	if workerBin == "" {
		t.Skip("plingerw binary unavailable")
	}
	s, err := New(Options{
		Workers:       1,
		WorkerBin:     workerBin,
		WorkerArgs:    []string{"-quiet"},
		RestartMax:    2,
		RestartWindow: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	// Keep SIGKILLing whatever worker registers: the first two deaths are
	// restarted under the budget, the third is denied and the fleet stays
	// down — forking forever is the failure mode this rate limit exists for.
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		st := s.Status()
		if st.RestartsDenied >= 1 {
			if st.Restarts != 2 {
				t.Fatalf("budget allowed %d restarts, want 2: %+v", st.Restarts, st)
			}
			return
		}
		for _, w := range st.Workers {
			if w.PID > 0 {
				_ = syscall.Kill(w.PID, syscall.SIGKILL)
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("restart budget never hit denial")
}
