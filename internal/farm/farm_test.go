package farm

import (
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"plinger/internal/core"
	"plinger/internal/cosmology"
	"plinger/internal/dispatch"
)

func scdmSpec() ModelSpec {
	p := cosmology.SCDM()
	return ModelSpec{
		H: p.H, OmegaC: p.OmegaC, OmegaB: p.OmegaB, OmegaLambda: p.OmegaLambda,
		TCMB: p.TCMB, YHe: p.YHe, NNuMassless: p.NNuMassless,
		SpectralIndex: p.SpectralIndex,
	}
}

var (
	testCache   = NewModelCache()
	testModelMu sync.Mutex
)

func testModel(t *testing.T) *core.Model {
	t.Helper()
	testModelMu.Lock()
	defer testModelMu.Unlock()
	m, err := testCache.Get(scdmSpec())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func testKs() []float64 { return []float64{0.002, 0.012, 0.03, 0.05, 0.075, 0.02, 0.008} }

func smallMode() core.Params {
	return core.Params{LMax: 10, Gauge: core.Synchronous, TauEnd: 300}
}

// sameResult asserts bitwise equality of every deterministic field; only
// wallclock timing may differ between backends (dispatch's contract).
func sameResult(t *testing.T, label string, a, b *core.Result) {
	t.Helper()
	if a == nil || b == nil {
		t.Fatalf("%s: missing result", label)
	}
	if a.K != b.K || a.Tau != b.Tau || a.A != b.A || a.Gauge != b.Gauge || a.LMax != b.LMax {
		t.Fatalf("%s: header differs", label)
	}
	if a.DeltaC != b.DeltaC || a.DeltaB != b.DeltaB || a.DeltaG != b.DeltaG ||
		a.DeltaNu != b.DeltaNu || a.DeltaHNu != b.DeltaHNu ||
		a.ThetaC != b.ThetaC || a.ThetaB != b.ThetaB {
		t.Fatalf("%s: fluid perturbations differ", label)
	}
	if a.Phi != b.Phi || a.Psi != b.Psi || a.Eta != b.Eta || a.HDot != b.HDot {
		t.Fatalf("%s: metric perturbations differ", label)
	}
	if a.MaxConstraintResidual != b.MaxConstraintResidual || a.Flops != b.Flops {
		t.Fatalf("%s: diagnostics differ", label)
	}
	if a.Stats.Steps != b.Stats.Steps || a.Stats.Evals != b.Stats.Evals {
		t.Fatalf("%s: integrator stats differ", label)
	}
	if !reflect.DeepEqual(a.ThetaL, b.ThetaL) || !reflect.DeepEqual(a.ThetaPL, b.ThetaPL) {
		t.Fatalf("%s: multipoles differ", label)
	}
}

func poolReference(t *testing.T, ks []float64, mode core.Params) *dispatch.Sweep {
	t.Helper()
	p := &dispatch.Pool{Model: testModel(t), Workers: 2}
	sw, _, err := p.Run(context.Background(), ks, mode)
	if err != nil {
		t.Fatal(err)
	}
	return sw
}

func testSupervisor(t *testing.T, opt Options) *Supervisor {
	t.Helper()
	if opt.Heartbeat == 0 {
		opt.Heartbeat = 50 * time.Millisecond
	}
	if opt.AssignDeadline == 0 {
		opt.AssignDeadline = 5 * time.Second
	}
	if opt.WaitWorkers == 0 {
		opt.WaitWorkers = 5 * time.Second
	}
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// testWorker is an in-process stand-in for one plingerw process: it dials
// the supervisor and serves sweeps on a goroutine, optionally through a
// failing connection.
type testWorker struct {
	conn net.Conn
	done chan error
}

func startTestWorker(t *testing.T, s *Supervisor, uid string, rejoins int, wrap func(net.Conn) net.Conn) *testWorker {
	t.Helper()
	c, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if wrap != nil {
		c = wrap(c)
	}
	w := &testWorker{conn: c, done: make(chan error, 1)}
	go func() {
		w.done <- ServeWorker(c, WorkerOptions{UID: uid, Rejoins: rejoins, Models: testCache, Scratch: core.NewScratch()})
		c.Close()
	}()
	t.Cleanup(func() { c.Close() })
	return w
}

func waitAlive(t *testing.T, s *Supervisor, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.Alive() == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("roster never reached %d workers (at %d)", want, s.Alive())
}

// The farm's core contract: a sweep over out-of-process workers is
// bitwise-identical to the in-process pool, cold and warm, scalar and
// batched.
func TestFarmSweepMatchesPool(t *testing.T) {
	s := testSupervisor(t, Options{MinWorkers: 2})
	startTestWorker(t, s, "w1", 0, nil)
	startTestWorker(t, s, "w2", 0, nil)
	waitAlive(t, s, 2)

	model := testModel(t)
	for _, tc := range []struct {
		label string
		mode  core.Params
	}{
		{"scalar", smallMode()},
		{"kbatch", func() core.Params { m := smallMode(); m.KBatch = 3; return m }()},
	} {
		ref := poolReference(t, testKs(), tc.mode)
		for pass := 0; pass < 2; pass++ { // cold then warm
			sw, st, err := s.Sweep(context.Background(), scdmSpec(), model, testKs(), tc.mode, dispatch.LargestFirst, false)
			if err != nil {
				t.Fatalf("%s pass %d: %v", tc.label, pass, err)
			}
			for i := range ref.Results {
				sameResult(t, fmt.Sprintf("%s pass %d mode %d", tc.label, pass, i), sw.Results[i], ref.Results[i])
			}
			if st.Backend != "farm" || st.NWorkers != 2 || st.WorkerFailures != 0 {
				t.Fatalf("%s pass %d: unexpected stats %+v", tc.label, pass, st)
			}
			if sw.Tau0 != ref.Tau0 {
				t.Fatalf("%s: tau0 differs", tc.label)
			}
		}
	}
	if got := s.Status(); got.Sweeps != 4 || got.Alive != 2 {
		t.Fatalf("status: %+v", got)
	}
}

// failAfterWrites fails the connection permanently after n successful
// writes — a deterministic stand-in for a worker crashing mid-protocol.
type failAfterWrites struct {
	net.Conn
	left atomic.Int32
}

func (f *failAfterWrites) Write(p []byte) (int, error) {
	if f.left.Add(-1) < 0 {
		f.Conn.Close()
		return 0, fmt.Errorf("injected: worker died")
	}
	return f.Conn.Write(p)
}

// A worker lost mid-sweep costs reassignments, never correctness; its
// reconnection (same UID) is re-admitted for the following sweep.
func TestFarmWorkerLossMidSweepRecoversBitwise(t *testing.T) {
	s := testSupervisor(t, Options{MinWorkers: 2, AssignDeadline: 2 * time.Second})
	startTestWorker(t, s, "stable", 0, nil)
	// Enough writes to get through magic+hello and the first result
	// frames, then death in the middle of the sweep.
	flaky := startTestWorker(t, s, "flaky", 0, func(c net.Conn) net.Conn {
		f := &failAfterWrites{Conn: c}
		f.left.Store(8)
		return f
	})
	waitAlive(t, s, 2)

	mode := smallMode()
	ref := poolReference(t, testKs(), mode)
	sw, st, err := s.Sweep(context.Background(), scdmSpec(), testModel(t), testKs(), mode, dispatch.LargestFirst, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Results {
		sameResult(t, fmt.Sprintf("mode %d", i), sw.Results[i], ref.Results[i])
	}
	if st.WorkerFailures < 1 {
		t.Fatalf("expected at least one worker failure, got %+v", st)
	}
	<-flaky.done // the injected death also ends the worker session
	waitAlive(t, s, 1)

	// The casualty comes back under its UID: next sweep runs on two again.
	startTestWorker(t, s, "flaky", 1, nil)
	waitAlive(t, s, 2)
	sw2, st2, err := s.Sweep(context.Background(), scdmSpec(), testModel(t), testKs(), mode, dispatch.LargestFirst, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Results {
		sameResult(t, fmt.Sprintf("rejoined mode %d", i), sw2.Results[i], ref.Results[i])
	}
	if st2.NWorkers != 2 || st2.WorkerFailures != 0 {
		t.Fatalf("rejoined sweep stats: %+v", st2)
	}
	if got := s.Status(); got.Reconnects < 1 {
		t.Fatalf("reconnect not counted: %+v", got)
	}
}

// With no workers at all the farm degrades exactly like PR 7's
// all-workers-lost path: the master computes the sweep itself.
func TestFarmZeroWorkersComputesLocally(t *testing.T) {
	s := testSupervisor(t, Options{MinWorkers: 0, WaitWorkers: 50 * time.Millisecond})
	mode := smallMode()
	ref := poolReference(t, testKs(), mode)
	sw, st, err := s.Sweep(context.Background(), scdmSpec(), testModel(t), testKs(), mode, dispatch.LargestFirst, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Results {
		sameResult(t, fmt.Sprintf("mode %d", i), sw.Results[i], ref.Results[i])
	}
	if st.LocalModes != len(testKs()) {
		t.Fatalf("expected all %d modes local, got %+v", len(testKs()), st)
	}
}

// silentWorker registers properly and then never answers anything: the
// heartbeat loop must retire it within the miss budget, and its UID's
// return must count as a rejoin.
func TestFarmHeartbeatKillsSilentWorkerAndCountsRejoin(t *testing.T) {
	s := testSupervisor(t, Options{Heartbeat: 20 * time.Millisecond, HeartbeatMisses: 2})
	c, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wmu sync.Mutex
	if err := binary.Write(c, binary.LittleEndian, uint32(farmMagic)); err != nil {
		t.Fatal(err)
	}
	if err := writeJSON(c, &wmu, kindHello, Hello{Version: protocolVersion, Host: "test", PID: 1, UID: "mute"}); err != nil {
		t.Fatal(err)
	}
	waitAlive(t, s, 1)
	waitAlive(t, s, 0) // heartbeat budget expires, worker retired
	if got := s.Status(); got.HeartbeatKills != 1 {
		t.Fatalf("heartbeat kill not counted: %+v", got)
	}

	startTestWorker(t, s, "mute", 1, nil)
	waitAlive(t, s, 1)
	if got := s.Status(); got.Rejoins != 1 {
		t.Fatalf("rejoin not counted: %+v", got)
	}
}

// Drain lets in-flight work finish, tells every worker to exit cleanly
// (ServeWorker returns nil), and leaves the roster empty.
func TestFarmDrain(t *testing.T) {
	s := testSupervisor(t, Options{MinWorkers: 1})
	w := startTestWorker(t, s, "w", 0, nil)
	waitAlive(t, s, 1)
	if _, _, err := s.Sweep(context.Background(), scdmSpec(), testModel(t), testKs(), smallMode(), dispatch.LargestFirst, false); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-w.done:
		if err != nil {
			t.Fatalf("worker exit on drain: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("worker did not exit on drain")
	}
	if s.Alive() != 0 {
		t.Fatalf("%d workers alive after drain", s.Alive())
	}
	if _, _, err := s.Sweep(context.Background(), scdmSpec(), testModel(t), testKs(), smallMode(), dispatch.LargestFirst, false); err == nil {
		t.Fatal("sweep after drain should fail")
	}
}

// Concurrent Sweep calls serialize over the shared fleet and both come
// back bitwise-correct.
func TestFarmConcurrentSweepsSerialize(t *testing.T) {
	s := testSupervisor(t, Options{MinWorkers: 2})
	startTestWorker(t, s, "w1", 0, nil)
	startTestWorker(t, s, "w2", 0, nil)
	waitAlive(t, s, 2)
	mode := smallMode()
	ref := poolReference(t, testKs(), mode)

	var wg sync.WaitGroup
	errs := make([]error, 2)
	sweeps := make([]*dispatch.Sweep, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sweeps[i], _, errs[i] = s.Sweep(context.Background(), scdmSpec(), testModel(t), testKs(), mode, dispatch.LargestFirst, false)
		}(i)
	}
	wg.Wait()
	for i := 0; i < 2; i++ {
		if errs[i] != nil {
			t.Fatalf("sweep %d: %v", i, errs[i])
		}
		for j := range ref.Results {
			sameResult(t, fmt.Sprintf("sweep %d mode %d", i, j), sweeps[i].Results[j], ref.Results[j])
		}
	}
}

// A canceled context aborts the sweep promptly and releases the workers
// back to idle for the next sweep.
func TestFarmSweepContextCancel(t *testing.T) {
	s := testSupervisor(t, Options{MinWorkers: 1})
	startTestWorker(t, s, "w", 0, nil)
	waitAlive(t, s, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := s.Sweep(ctx, scdmSpec(), testModel(t), testKs(), smallMode(), dispatch.LargestFirst, false); err == nil {
		t.Fatal("expected context error")
	}
	// The fleet must still be usable afterwards.
	sw, _, err := s.Sweep(context.Background(), scdmSpec(), testModel(t), testKs(), smallMode(), dispatch.LargestFirst, false)
	if err != nil {
		t.Fatal(err)
	}
	ref := poolReference(t, testKs(), smallMode())
	for i := range ref.Results {
		sameResult(t, fmt.Sprintf("mode %d", i), sw.Results[i], ref.Results[i])
	}
}
