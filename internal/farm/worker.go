package farm

import (
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"plinger/internal/core"
	"plinger/internal/cosmology"
	"plinger/internal/dispatch"
	"plinger/internal/mp"
	runner "plinger/internal/plinger"
	"plinger/internal/recomb"
	"plinger/internal/thermo"
)

// helloTimeout bounds the registration handshake on both sides.
var helloTimeout = 10 * time.Second

// NewWorkerUID mints a random stable worker identity (see Hello.UID).
func NewWorkerUID() string {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		// Degraded but still usable: identity collapses to the process.
		return fmt.Sprintf("pid-%d", os.Getpid())
	}
	return hex.EncodeToString(b[:])
}

// WorkerOptions configures one worker session (one connection's lifetime).
type WorkerOptions struct {
	// UID is this worker's stable identity across reconnects (empty: a
	// fresh random one, making every session a distinct worker). A
	// reconnecting caller MUST pass the same UID it registered with, or
	// its return will not count as a rejoin.
	UID string
	// Rejoins is how many times this process has reconnected before this
	// session; it rides in the Hello so the supervisor can count rejoins.
	Rejoins int
	// BuildTag optionally labels the worker build in the Hello.
	BuildTag string
	// Logf receives progress lines (nil: silent).
	Logf func(format string, args ...any)
	// Models is the warm model cache shared across sessions of one
	// process, so a reconnect does not recompute background/thermo tables.
	// nil: the session allocates a private one.
	Models *ModelCache
	// Scratch is the evolution arena kept warm across sweeps and sessions.
	// nil: the session allocates a private one.
	Scratch *core.Scratch
}

// ModelCache builds and retains worker-side models keyed by ModelSpec:
// the expensive background/thermodynamics/EvalTables survive across
// sweeps AND across reconnects of the same process.
type ModelCache struct {
	mu     sync.Mutex
	models map[ModelSpec]*core.Model
}

// NewModelCache returns an empty warm-model cache.
func NewModelCache() *ModelCache {
	return &ModelCache{models: make(map[ModelSpec]*core.Model)}
}

// Get returns the cached model for spec, building it on first use exactly
// as the facade does — same constructors, same defaults — so a worker-side
// evolution is bitwise the master's.
func (c *ModelCache) Get(spec ModelSpec) (*core.Model, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if m, ok := c.models[spec]; ok {
		return m, nil
	}
	p := cosmology.Params{
		H: spec.H, OmegaC: spec.OmegaC, OmegaB: spec.OmegaB,
		OmegaLambda: spec.OmegaLambda, TCMB: spec.TCMB, YHe: spec.YHe,
		NNuMassless: spec.NNuMassless, NNuMassive: spec.NNuMassive,
		MNuEV: spec.MNuEV, SpectralIndex: spec.SpectralIndex,
	}
	var bg *cosmology.Background
	var err error
	if spec.Flatten {
		bg, err = cosmology.NewFlattened(p)
	} else {
		bg, err = cosmology.New(p)
	}
	if err != nil {
		return nil, fmt.Errorf("farm: worker model background: %w", err)
	}
	th, err := thermo.New(bg, recomb.Options{})
	if err != nil {
		return nil, fmt.Errorf("farm: worker model thermodynamics: %w", err)
	}
	m := core.NewModel(bg, th)
	c.models[spec] = m
	return m, nil
}

// Len reports the number of cached models.
func (c *ModelCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.models)
}

// workerEndpoint adapts one farm connection to mp.Endpoint for the
// duration of one sweep on the worker side. Sends become data frames to
// the master; receives drain the queue the session reader fills from the
// master's data frames.
type workerEndpoint struct {
	conn net.Conn
	wmu  *sync.Mutex
	rank int
	size int
	q    *mp.Queue
}

func (e *workerEndpoint) Rank() int   { return e.rank }
func (e *workerEndpoint) Size() int   { return e.size }
func (e *workerEndpoint) Master() int { return 0 }

func (e *workerEndpoint) Send(dst, tag int, data []float64) error {
	// The Appendix-A protocol is strictly worker<->master; dst is always
	// the master and rides only in the frame for symmetry with tcpmp.
	return writeFrame(e.conn, e.wmu, kindData, int32(tag), encodeFloats(data))
}

func (e *workerEndpoint) Bcast(tag int, data []float64) error {
	return e.Send(0, tag, data)
}

func (e *workerEndpoint) Probe(tag, source int) (int, int, error) {
	return e.q.Probe(tag, source)
}

func (e *workerEndpoint) ProbeTimeout(tag, source int, d time.Duration) (int, int, bool, error) {
	return e.q.ProbeTimeout(tag, source, d)
}

func (e *workerEndpoint) Recv(tag, source int) (mp.Message, error) {
	return e.q.Recv(tag, source)
}

func (e *workerEndpoint) Close() error {
	e.q.Close()
	return nil
}

// ctrlEvent is one control-plane event the session reader hands the sweep
// loop: a sweep to serve, a drain order, or the connection's death.
type ctrlEvent struct {
	spec  *sweepSpec
	q     *mp.Queue // inbound data plane for that sweep, fed by the reader
	drain bool
	err   error
}

// ServeWorker runs one worker session over an established connection:
// register (Hello/Welcome), then serve sweeps until the supervisor drains
// us (returns nil) or the connection dies (returns the cause, and the
// caller reconnects). Heartbeats are answered concurrently even while an
// evolution is grinding, so a busy worker never looks dead.
func ServeWorker(conn net.Conn, opt WorkerOptions) error {
	logf := opt.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	models := opt.Models
	if models == nil {
		models = NewModelCache()
	}
	scratch := opt.Scratch
	if scratch == nil {
		scratch = core.NewScratch()
	}
	var wmu sync.Mutex

	host, _ := os.Hostname()
	uid := opt.UID
	if uid == "" {
		uid = NewWorkerUID()
	}
	hello := Hello{
		Version: protocolVersion,
		Host:    host,
		PID:     os.Getpid(),
		Procs:   runtime.GOMAXPROCS(0),
		Rejoins: opt.Rejoins,
		UID:     uid,
	}
	hello.BuildTag = opt.BuildTag
	conn.SetDeadline(time.Now().Add(helloTimeout))
	if err := binary.Write(conn, binary.LittleEndian, uint32(farmMagic)); err != nil {
		return fmt.Errorf("farm: worker magic: %w", err)
	}
	if err := writeJSON(conn, &wmu, kindHello, hello); err != nil {
		return fmt.Errorf("farm: worker hello: %w", err)
	}
	f, err := readFrame(conn)
	if err != nil {
		return fmt.Errorf("farm: worker welcome: %w", err)
	}
	if f.kind != kindWelcome {
		return fmt.Errorf("farm: worker expected welcome, got frame kind %d", f.kind)
	}
	var welcome Welcome
	if err := json.Unmarshal(f.payload, &welcome); err != nil {
		return fmt.Errorf("farm: worker welcome: %w", err)
	}
	conn.SetDeadline(time.Time{})
	logf("farm worker %d registered (host=%s pid=%d rejoins=%d)",
		welcome.ID, hello.Host, hello.PID, hello.Rejoins)

	// The reader owns the socket's inbound side for the whole session. It
	// answers pings in place, creates each sweep's inbound queue BEFORE
	// announcing the sweep (so data frames racing in behind the SweepBegin
	// always find their mailbox), and routes data frames to the current
	// sweep. Stray data between sweeps — a stop for an assignment the
	// master already reassigned — lands in the retired queue and is never
	// read, which is exactly the first-wins discard.
	ctrl := make(chan ctrlEvent, 4)
	var currentQ atomic.Pointer[mp.Queue]
	go func() {
		defer func() {
			if q := currentQ.Load(); q != nil {
				q.Close()
			}
		}()
		for {
			f, err := readFrame(conn)
			if err != nil {
				ctrl <- ctrlEvent{err: err}
				return
			}
			switch f.kind {
			case kindPing:
				if err := writeFrame(conn, &wmu, kindPong, 0, nil); err != nil {
					ctrl <- ctrlEvent{err: err}
					return
				}
			case kindSweepBegin:
				spec := new(sweepSpec)
				if err := json.Unmarshal(f.payload, spec); err != nil {
					ctrl <- ctrlEvent{err: fmt.Errorf("farm: worker sweep spec: %w", err)}
					return
				}
				q := mp.NewQueue()
				currentQ.Store(q)
				ctrl <- ctrlEvent{spec: spec, q: q}
			case kindData:
				data, err := decodeFloats(f.payload)
				if err != nil {
					ctrl <- ctrlEvent{err: err}
					return
				}
				if q := currentQ.Load(); q != nil {
					_ = q.Push(mp.Message{Tag: int(f.tag), Source: 0, Data: data})
				}
			case kindDrain:
				ctrl <- ctrlEvent{drain: true}
				return
			default:
				ctrl <- ctrlEvent{err: fmt.Errorf("farm: worker got unexpected frame kind %d", f.kind)}
				return
			}
		}
	}()

	for ev := range ctrl {
		switch {
		case ev.err != nil:
			return ev.err
		case ev.drain:
			logf("farm worker %d drained", welcome.ID)
			return nil
		default:
			sp := ev.spec
			done := sweepDone{OK: true}
			if err := serveSweep(conn, &wmu, sp, ev.q, models, scratch); err != nil {
				done.OK = false
				done.Err = err.Error()
				logf("farm worker %d sweep failed: %v", welcome.ID, err)
			}
			// The sweep's mailbox is retired before SweepDone goes out, so
			// anything the master sends after seeing the done frame can only
			// belong to the next sweep's queue.
			currentQ.Store(nil)
			if err := writeJSON(conn, &wmu, kindSweepDone, done); err != nil {
				return fmt.Errorf("farm: worker sweep done: %w", err)
			}
		}
	}
	return nil
}

// serveSweep runs one Appendix-A worker pass, panics contained: a model
// that blows up on this host must read as a failed sweep (the master
// reassigns), not a dead process.
func serveSweep(conn net.Conn, wmu *sync.Mutex, sp *sweepSpec, q *mp.Queue, models *ModelCache, scratch *core.Scratch) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("farm: worker sweep panicked: %v", r)
		}
	}()
	model, err := models.Get(sp.Model)
	if err != nil {
		return err
	}
	mode := sp.params()
	if mode.FastEvolve {
		// Warm the shared evaluation tables across all local cores before
		// entering the per-mode loop, exactly as the in-process backends do.
		dispatch.PrebuildEvalTables(model, mode)
	}
	ep := &workerEndpoint{conn: conn, wmu: wmu, rank: sp.Rank, size: sp.World, q: q}
	return runner.WorkerWith(ep, model, sp.Ks, mode, scratch)
}
