// Package farm is the multi-host worker fleet: a Supervisor that owns a
// roster of out-of-process plingerw workers (spawned locally or connected
// from other hosts), keeps them alive with heartbeats and supervised
// restarts, and serves sweeps over them through the paper's Appendix-A
// master protocol (internal/plinger) with PR 7's fault tolerance armed.
//
// Where the tcpmp Hub is a fixed-size rendezvous — the world is sized up
// front and one run consumes it — the farm is a long-lived dynamic world:
// workers join and leave between sweeps, a worker lost mid-sweep is failed
// by the master and REJOINS for the next sweep when its process reconnects,
// and spawned workers that crash are restarted under a rate-limited budget.
// Capacity self-heals instead of ratcheting down.
package farm

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"time"

	"plinger/internal/core"
)

// farmMagic opens every farm connection ("PLFM"), distinguishing the farm
// protocol from the tcpmp hub protocol ("PLNG") on the wire.
const farmMagic = 0x504c464d

// protocolVersion is bumped on any incompatible frame-format change; the
// supervisor rejects a Hello with a different version during registration.
const protocolVersion = 1

// Frame kinds. One persistent connection per worker multiplexes the
// control plane (JSON payloads) and the sweep data plane (float64
// payloads, carrying the Appendix-A tags) — TCP's per-connection ordering
// is what guarantees a sweep's TagStop precedes the next SweepBegin.
const (
	kindHello      = int32(1) // worker -> master: registration (JSON Hello)
	kindWelcome    = int32(2) // master -> worker: admission (JSON Welcome)
	kindPing       = int32(3) // master -> worker: liveness probe
	kindPong       = int32(4) // worker -> master: liveness answer
	kindSweepBegin = int32(5) // master -> worker: sweep membership (JSON sweepSpec)
	kindSweepDone  = int32(6) // worker -> master: sweep finished (JSON sweepDone)
	kindData       = int32(7) // both ways: Appendix-A message (tag + float64s)
	kindDrain      = int32(8) // master -> worker: finish and exit cleanly
)

// maxFramePayload bounds one frame's payload (matches tcpmp's 16 Mi
// doubles); a larger header is a protocol violation, not an allocation.
const maxFramePayload = 128 << 20

// Hello is the worker's registration: who is joining and with what
// capacity. Rejoins counts reconnections this process has made before the
// current one, letting the supervisor tell a fresh worker from a returning
// casualty.
type Hello struct {
	Version int    `json:"version"`
	Host    string `json:"host"`
	PID     int    `json:"pid"`
	Procs   int    `json:"procs"` // GOMAXPROCS: the worker's arena capacity
	Rejoins int    `json:"rejoins"`
	// UID is the worker's stable identity across reconnects: the
	// supervisor recognizes a returning casualty by it. A PID cannot play
	// this role — two in-process workers share one, and a recycled PID
	// would alias two unrelated processes.
	UID      string `json:"uid"`
	BuildTag string `json:"build,omitempty"`
}

// Welcome is the supervisor's admission reply.
type Welcome struct {
	ID          int `json:"id"`
	HeartbeatMS int `json:"heartbeat_ms"`
}

// ModelSpec is the wire form of a cosmological model: the exact facade
// Config fields, comparable so the worker can key its warm-model cache on
// it. Two sweeps with equal specs hit the same cached background/thermo/
// EvalTables on the worker.
type ModelSpec struct {
	H             float64 `json:"h"`
	OmegaC        float64 `json:"omega_c"`
	OmegaB        float64 `json:"omega_b"`
	OmegaLambda   float64 `json:"omega_lambda"`
	TCMB          float64 `json:"tcmb"`
	YHe           float64 `json:"yhe"`
	NNuMassless   float64 `json:"nnu_massless"`
	NNuMassive    int     `json:"nnu_massive"`
	MNuEV         float64 `json:"mnu_ev"`
	SpectralIndex float64 `json:"ns"`
	Flatten       bool    `json:"flatten"`
}

// sweepSpec tells one worker its place in a sweep. The Appendix-A TagInit
// broadcast still carries the protocol's own init block (tauEnd, lmax, nk,
// gauge, rtol, keep); the spec ships the fields TagInit does not cover —
// the model, the grid, and the evolution knobs that must match the master
// bit for bit (KBatch, FastEvolve, tolerances).
type sweepSpec struct {
	Rank  int       `json:"rank"`
	World int       `json:"world"`
	Model ModelSpec `json:"model"`
	Ks    []float64 `json:"ks"`

	LMax       int     `json:"lmax"`
	LMaxNu     int     `json:"lmax_nu,omitempty"`
	Gauge      int     `json:"gauge,omitempty"`
	RTol       float64 `json:"rtol,omitempty"`
	ATol       float64 `json:"atol,omitempty"`
	TauEnd     float64 `json:"tau_end,omitempty"`
	KTauStart  float64 `json:"ktau_start,omitempty"`
	TCAFactor  float64 `json:"tca_factor,omitempty"`
	NoTCA      bool    `json:"no_tca,omitempty"`
	KeepSrc    bool    `json:"keep_sources,omitempty"`
	KBatch     int     `json:"kbatch,omitempty"`
	FastEvolve bool    `json:"fast_evolve,omitempty"`
}

// params reconstructs the worker-side core.Params (K is assigned per
// block by the wire protocol; Integrator cannot cross a process boundary
// and stays the default).
func (sp *sweepSpec) params() core.Params {
	return core.Params{
		LMax:                 sp.LMax,
		LMaxNu:               sp.LMaxNu,
		Gauge:                core.Gauge(sp.Gauge),
		RTol:                 sp.RTol,
		ATol:                 sp.ATol,
		TauEnd:               sp.TauEnd,
		KTauStart:            sp.KTauStart,
		TCAFactor:            sp.TCAFactor,
		DisableTightCoupling: sp.NoTCA,
		KeepSources:          sp.KeepSrc,
		KBatch:               sp.KBatch,
		FastEvolve:           sp.FastEvolve,
	}
}

// specFromParams is the master-side inverse of params.
func specFromParams(mode core.Params) sweepSpec {
	return sweepSpec{
		LMax:       mode.LMax,
		LMaxNu:     mode.LMaxNu,
		Gauge:      int(mode.Gauge),
		RTol:       mode.RTol,
		ATol:       mode.ATol,
		TauEnd:     mode.TauEnd,
		KTauStart:  mode.KTauStart,
		TCAFactor:  mode.TCAFactor,
		NoTCA:      mode.DisableTightCoupling,
		KeepSrc:    mode.KeepSources,
		KBatch:     mode.KBatch,
		FastEvolve: mode.FastEvolve,
	}
}

// sweepDone closes a worker's participation in one sweep.
type sweepDone struct {
	OK  bool   `json:"ok"`
	Err string `json:"err,omitempty"`
}

// frame is one decoded wire frame.
type frame struct {
	kind    int32
	tag     int32
	payload []byte
}

// writeTimeout bounds every frame write: a peer whose TCP buffer stopped
// draining (a wedged process, a dead link before the RST) must cost the
// writer an error, never a stuck sweep. It is far above any healthy
// flush time, so expiry is a liveness verdict.
var writeTimeout = 30 * time.Second

// writeFrame sends one frame under the connection's write lock (the
// control plane and an in-flight sweep's data plane share the socket).
func writeFrame(conn net.Conn, wmu *sync.Mutex, kind, tag int32, payload []byte) error {
	if len(payload) > maxFramePayload {
		return fmt.Errorf("farm: frame payload %d bytes exceeds limit", len(payload))
	}
	wmu.Lock()
	defer wmu.Unlock()
	conn.SetWriteDeadline(time.Now().Add(writeTimeout))
	hdr := [3]int32{kind, tag, int32(len(payload))}
	if err := binary.Write(conn, binary.LittleEndian, hdr[:]); err != nil {
		return err
	}
	_, err := conn.Write(payload)
	return err
}

// writeJSON sends a control frame.
func writeJSON(conn net.Conn, wmu *sync.Mutex, kind int32, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return writeFrame(conn, wmu, kind, 0, payload)
}

// readFrame reads one frame; io deadlines are the caller's business.
func readFrame(conn net.Conn) (frame, error) {
	var hdr [3]int32
	if err := binary.Read(conn, binary.LittleEndian, hdr[:]); err != nil {
		return frame{}, err
	}
	n := int(hdr[2])
	if n < 0 || n > maxFramePayload {
		return frame{}, fmt.Errorf("farm: protocol violation: frame of %d payload bytes", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(conn, payload); err != nil {
		return frame{}, err
	}
	return frame{kind: hdr[0], tag: hdr[1], payload: payload}, nil
}

// encodeFloats/decodeFloats carry Appendix-A message payloads bit-exactly
// (Float64bits round-trips NaNs and signed zeros unchanged).
func encodeFloats(data []float64) []byte {
	buf := make([]byte, 8*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	return buf
}

func decodeFloats(payload []byte) ([]float64, error) {
	if len(payload)%8 != 0 {
		return nil, fmt.Errorf("farm: data frame of %d bytes is not a float64 array", len(payload))
	}
	data := make([]float64, len(payload)/8)
	for i := range data {
		data[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
	}
	return data, nil
}
