package recomb

import (
	"math"
	"testing"

	"plinger/internal/cosmology"
)

func history(t *testing.T) (*cosmology.Background, *History) {
	t.Helper()
	bg, err := cosmology.New(cosmology.SCDM())
	if err != nil {
		t.Fatal(err)
	}
	h, err := Compute(bg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return bg, h
}

func xeAtZ(h *History, z float64) float64 { return h.XeAt(1.0 / (1.0 + z)) }

func TestFullyIonizedEarly(t *testing.T) {
	_, h := history(t)
	// At z = 10^5 everything is ionized: x_e = 1 + 2 f_He.
	want := 1.0 + 2.0*h.FHe
	got := xeAtZ(h, 1e5)
	if math.Abs(got-want) > 1e-3*want {
		t.Fatalf("x_e(z=1e5) = %g, want %g", got, want)
	}
}

func TestHeliumRecombinesBeforeHydrogen(t *testing.T) {
	_, h := history(t)
	// HeIII -> HeII around z ~ 6000-8000; by z=3500 only single He+
	// at most, and by z=2200 helium is mostly neutral while H is ionized.
	if got := xeAtZ(h, 3500); got > 1.0+1.05*h.FHe {
		t.Fatalf("x_e(z=3500) = %g: HeIII should be gone", got)
	}
	got := xeAtZ(h, 2200)
	if got > 1.05 || got < 0.95 {
		t.Fatalf("x_e(z=2200) = %g, want ~1 (H ionized, He neutral)", got)
	}
}

func TestRecombinationEpoch(t *testing.T) {
	_, h := history(t)
	// x_e drops through 0.5 near z ~ 1200-1400 for SCDM-era parameters.
	zHalf := 0.0
	for z := 2000.0; z > 500; z -= 1 {
		if xeAtZ(h, z) < 0.5 {
			zHalf = z
			break
		}
	}
	if zHalf < 1150 || zHalf > 1450 {
		t.Fatalf("x_e=0.5 at z=%g, want ~1200-1400", zHalf)
	}
}

func TestFreezeOutResidualIonization(t *testing.T) {
	_, h := history(t)
	// The Peebles freeze-out leaves x_e ~ a few times 1e-4 for
	// Omega_b h^2 = 0.0125 (no reionization in the 1995 treatment).
	got := xeAtZ(h, 100)
	if got < 5e-5 || got > 2e-3 {
		t.Fatalf("x_e(z=100) = %g, want ~1e-4-1e-3", got)
	}
	// And it freezes: z=50 within a factor ~1.5 of z=100.
	r := xeAtZ(h, 50) / got
	if r < 0.5 || r > 1.1 {
		t.Fatalf("x_e not frozen: ratio %g", r)
	}
}

func TestXeMonotoneDecreasing(t *testing.T) {
	// x_e decreases monotonically apart from a sub-0.1% uptick allowed at
	// the Saha -> Peebles hand-off (the Peebles quasi-equilibrium sits a
	// hair above Saha because of the Ly-alpha escape factor).
	_, h := history(t)
	prev := math.Inf(1)
	for i := range h.Xe {
		if h.Xe[i] > prev*(1.0+1e-3) {
			t.Fatalf("x_e increased at lnA=%g: %g -> %g", h.LnA[i], prev, h.Xe[i])
		}
		prev = math.Min(prev, h.Xe[i])
	}
}

func TestSahaAgreesWithPeeblesAtHandOff(t *testing.T) {
	// Near the switch point the ODE solution should track Saha closely:
	// scan for the largest jump between adjacent x_p samples around
	// x_p ~ 0.9, which would reveal a bad hand-off.
	_, h := history(t)
	for i := 1; i < len(h.Xp); i++ {
		if h.Xp[i] < 0.995 && h.Xp[i] > 0.5 {
			jump := math.Abs(h.Xp[i]-h.Xp[i-1]) / h.Xp[i-1]
			if jump > 0.02 {
				t.Fatalf("x_p jump %g at index %d (x_p=%g)", jump, i, h.Xp[i])
			}
		}
	}
}

func TestBaryonTemperatureCoupledThenCools(t *testing.T) {
	_, h := history(t)
	// Before decoupling T_b = T_gamma.
	n := len(h.LnA)
	for i := 0; i < n; i++ {
		a := math.Exp(h.LnA[i])
		if a < 1e-4 {
			if math.Abs(h.TBaryon[i]-h.TGamma[i]) > 1e-6*h.TGamma[i] {
				t.Fatalf("T_b != T_gamma at a=%g", a)
			}
		}
	}
	// Today the baryons are much colder than the photons (adiabatic
	// cooling T_b ~ a^-2 after thermal decoupling at z ~ 150).
	if h.TBaryon[n-1] >= h.TGamma[n-1] {
		t.Fatalf("T_b(today)=%g not below T_gamma=%g", h.TBaryon[n-1], h.TGamma[n-1])
	}
	if h.TBaryon[n-1] > 0.5*h.TGamma[n-1] {
		t.Fatalf("T_b(today)=%g: expected strong adiabatic cooling", h.TBaryon[n-1])
	}
	if h.TBaryon[n-1] <= 0 {
		t.Fatal("T_b went non-positive")
	}
}

func TestSahaFactorMatchesHandComputation(t *testing.T) {
	// At T = 5000 K, chi = 13.6 eV: the exponential is e^-31.57... and the
	// prefactor (2 pi m k T/h^2)^1.5 ~ 4.1e20 m^-3 * T^1.5...
	// Cross-check against an independently coded formula.
	tK := 5000.0
	nH := 1.0e8 // m^-3
	got := sahaFactor(tK, nH, chiH)
	kt := 1.380649e-23 * tK
	pre := math.Pow(2.0*math.Pi*9.1093837015e-31*kt/(6.62607015e-34*6.62607015e-34), 1.5)
	want := pre * math.Exp(-chiH*1.602176634e-19/kt) / nH
	if math.Abs(got-want) > 1e-7*want {
		t.Fatalf("sahaFactor = %g, want %g", got, want)
	}
}

func TestOptionsValidation(t *testing.T) {
	bg, err := cosmology.New(cosmology.SCDM())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compute(bg, Options{AStart: 2}); err == nil {
		t.Fatal("want error for AStart >= 1")
	}
}

func TestHigherBaryonDensityRecombinesEarlier(t *testing.T) {
	p1 := cosmology.SCDM()
	p2 := cosmology.SCDM()
	p2.OmegaB = 0.10
	p2.OmegaC = 1.0 - p2.OmegaB - p2.OmegaGamma() - p2.OmegaNuMassless()
	find := func(p cosmology.Params) float64 {
		bg, err := cosmology.New(p)
		if err != nil {
			t.Fatal(err)
		}
		h, err := Compute(bg, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for z := 2000.0; z > 500; z -= 1 {
			if xeAtZ(h, z) < 0.5 {
				return z
			}
		}
		return 0
	}
	z1, z2 := find(p1), find(p2)
	if z2 <= z1 {
		t.Fatalf("more baryons should recombine earlier: z(Ob=0.05)=%g z(Ob=0.10)=%g", z1, z2)
	}
}

func TestAlphaBMagnitude(t *testing.T) {
	// alpha_B(10^4 K) ~ 2.6e-13 cm^3/s x fudge.
	got := alphaB(1e4) * 1e6 // cm^3/s
	if got < 2e-13 || got > 4e-13 {
		t.Fatalf("alpha_B(1e4 K) = %g cm^3/s", got)
	}
}
