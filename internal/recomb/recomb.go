// Package recomb computes the ionization history of the universe: Saha
// equilibrium for hydrogen and both helium stages at early times, matched
// onto the Peebles effective three-level atom for hydrogen through
// recombination, together with the baryon temperature evolution including
// Compton coupling to the radiation. The paper lists "accurate treatments
// of hydrogen and helium recombination" and the "decoupling of photons and
// baryons" among the physics modeled; this package is that substrate.
//
// All microphysics here is evaluated in SI units and the results are
// returned as dimensionless fractions and kelvin on a logarithmic grid in
// the scale factor.
package recomb

import (
	"fmt"
	"math"

	"plinger/internal/constants"
	"plinger/internal/cosmology"
)

// Ionization energies in eV.
const (
	chiH    = 13.605698
	chiHeI  = 24.587387
	chiHeII = 54.417760
)

// Atomic constants for the Peebles three-level atom.
const (
	lambda2s1s   = 8.2245809   // 2s->1s two-photon rate, s^-1
	lambdaLyAlph = 121.5682e-9 // Lyman-alpha wavelength, m
	e2sEV        = chiH / 4.0  // binding energy of n=2, eV
	eLyAlphaEV   = chiH * 0.75 // Ly-alpha transition energy, eV
	alphaFudge   = 1.14        // case-B fudge factor (RECFAST convention)
	sahaSwitchXp = 0.985       // hand-off from Saha to the Peebles ODE
)

// History tabulates the ionization state on a grid uniform in ln a.
type History struct {
	// LnA is the grid in ln(a), increasing.
	LnA []float64
	// Xe is n_e/n_H (can exceed 1 thanks to helium).
	Xe []float64
	// Xp is the ionized hydrogen fraction n_p/n_H.
	Xp []float64
	// TBaryon is the baryon (matter) temperature in kelvin.
	TBaryon []float64
	// TGamma is the photon temperature in kelvin.
	TGamma []float64

	// FHe is the helium-to-hydrogen number ratio Y/(4(1-Y)).
	FHe float64
	// NH0 is the comoving hydrogen number density, Mpc^-3.
	NH0 float64
}

// Options tunes the integration grid.
type Options struct {
	// AStart is the initial scale factor (default 1e-8).
	AStart float64
	// N is the number of grid points (default 6000).
	N int
}

// Compute integrates the ionization history for the given background.
func Compute(bg *cosmology.Background, opt Options) (*History, error) {
	if opt.AStart <= 0 {
		opt.AStart = 1e-8
	}
	if opt.N <= 1 {
		opt.N = 6000
	}
	if opt.AStart >= 1 {
		return nil, fmt.Errorf("recomb: AStart = %g must be < 1", opt.AStart)
	}
	p := bg.P
	h := &History{
		LnA:     make([]float64, opt.N),
		Xe:      make([]float64, opt.N),
		Xp:      make([]float64, opt.N),
		TBaryon: make([]float64, opt.N),
		TGamma:  make([]float64, opt.N),
		FHe:     p.YHe / (4.0 * (1.0 - p.YHe)),
		NH0:     constants.NHydrogenToday(p.OmegaB*p.H*p.H, p.YHe),
	}
	lnA0 := math.Log(opt.AStart)
	dln := -lnA0 / float64(opt.N-1)

	// nH in m^-3 at scale factor a.
	nH0SI := h.NH0 / (constants.MpcMeter * constants.MpcMeter * constants.MpcMeter)
	nH := func(a float64) float64 { return nH0SI / (a * a * a) }
	// Physical Hubble rate in s^-1.
	hubbleSI := func(a float64) float64 {
		return bg.HConf(a) / a / constants.MpcSecond
	}

	usePeebles := false
	xp := 1.0
	tb := p.TCMB / opt.AStart

	for i := 0; i < opt.N; i++ {
		lnA := lnA0 + float64(i)*dln
		a := math.Exp(lnA)
		tg := p.TCMB / a
		h.LnA[i] = lnA
		h.TGamma[i] = tg

		if !usePeebles {
			// Full Saha equilibrium (H + He) with T = T_gamma.
			xpS, xe := sahaSolve(tg, nH(a), h.FHe)
			xp = xpS
			h.Xp[i] = xp
			h.Xe[i] = xe
			if xp < sahaSwitchXp {
				usePeebles = true
			}
		} else {
			// Advance the Peebles ODE for hydrogen across one grid step.
			// Immediately after the Saha hand-off the equation is stiff
			// (the net rate relaxes x_p to quasi-equilibrium much faster
			// than a Hubble time), so an exponential (linearized-implicit)
			// Euler step is used: x += f * (e^{J h} - 1)/J, which tracks
			// the equilibrium exactly in the stiff limit and reduces to
			// explicit Euler when the rates are slow. Helium follows Saha.
			const nSub = 8
			hSub := dln / nSub
			for s := 0; s < nSub; s++ {
				lnAs := lnA - dln + float64(s)*hSub
				as := math.Exp(lnAs + 0.5*hSub) // midpoint scale factor
				// The substep-local background quantities are shared by the
				// rate evaluation and both Jacobian probes.
				tgs, nHs, hubS := p.TCMB/as, nH(as), hubbleSI(as)
				rHe1 := 4.0 * sahaFactor(tgs, nHs, chiHeI)
				rHe2 := sahaFactor(tgs, nHs, chiHeII)
				f := func(x float64) float64 {
					xeS := math.Max(x, 1e-12)
					u1 := rHe1 / xeS
					u2 := u1 * rHe2 / xeS
					xe := x + h.FHe*(u1+2.0*u2)/(1.0+u1+u2)
					return dxpDlnA(as, x, xe, tgs, tb, nHs, hubS)
				}
				fx := f(xp)
				delta := 1e-6 + 1e-4*xp
				jac := (f(xp+delta) - f(xp-delta)) / (2.0 * delta)
				z := jac * hSub
				var phi float64
				if math.Abs(z) > 1e-6 {
					phi = math.Expm1(z) / z
				} else {
					phi = 1.0 + 0.5*z
				}
				xp += fx * phi * hSub
				if xp < 0 {
					xp = 0
				}
				if xp > 1 {
					xp = 1
				}
			}
			h.Xp[i] = xp
			h.Xe[i] = xp + heliumSaha(tg, nH(a), h.FHe, math.Max(xp, 1e-12))
		}

		// Baryon temperature: locked to T_gamma while the Compton rate
		// dominates, explicit midpoint step afterwards.
		rate := comptonRate(h.Xe[i], h.FHe, a, p.TCMB)
		if rate > 300.0*hubbleSI(a) {
			tb = tg
		} else if i > 0 {
			aPrev := math.Exp(lnA - dln)
			d := func(aa, T float64) float64 {
				r := comptonRate(h.Xe[i], h.FHe, aa, p.TCMB)
				return -2.0*T + r/hubbleSI(aa)*(p.TCMB/aa-T)
			}
			k1 := d(aPrev, tb)
			k2 := d(math.Exp(lnA-0.5*dln), tb+0.5*dln*k1)
			tb += dln * k2
		}
		h.TBaryon[i] = tb
	}
	return h, nil
}

// sahaFactor returns (2 pi m_e k T / h_planck^2)^(3/2) exp(-chi/kT) / nH,
// the dimensionless right-hand side of the Saha equation per ion state.
func sahaFactor(tK, nHm3, chiEV float64) float64 {
	kt := constants.KBoltzmann * tK
	hPlanck := 2.0 * math.Pi * constants.HBar
	pref := math.Pow(2.0*math.Pi*constants.ElectronMassKg*kt/(hPlanck*hPlanck), 1.5)
	arg := chiEV * constants.EVJoule / kt
	if arg > 650 {
		return 0
	}
	return pref * math.Exp(-arg) / nHm3
}

// heliumSaha returns x_HeII + 2 x_HeIII (per hydrogen nucleus) in Saha
// equilibrium at photon temperature tK given the current electron fraction.
func heliumSaha(tK, nHm3, fHe, xe float64) float64 {
	r1 := 4.0 * sahaFactor(tK, nHm3, chiHeI)
	r2 := sahaFactor(tK, nHm3, chiHeII)
	u1 := r1 / xe
	u2 := u1 * r2 / xe
	den := 1.0 + u1 + u2
	return fHe * (u1 + 2.0*u2) / den
}

// sahaSolve returns (x_p, x_e) from the coupled H + He Saha system by
// damped fixed-point iteration. The three Saha factors depend only on
// (tK, nHm3), so they are computed once and the iteration itself is pure
// algebra — the exponentials stay out of the convergence loop.
func sahaSolve(tK, nHm3, fHe float64) (xp, xe float64) {
	sH := sahaFactor(tK, nHm3, chiH)
	r1 := 4.0 * sahaFactor(tK, nHm3, chiHeI)
	r2 := sahaFactor(tK, nHm3, chiHeII)
	helium := func(xe float64) float64 {
		u1 := r1 / xe
		u2 := u1 * r2 / xe
		den := 1.0 + u1 + u2
		return fHe * (u1 + 2.0*u2) / den
	}
	xe = 1.0 + 2.0*fHe // fully ionized guess
	for iter := 0; iter < 200; iter++ {
		xeSafe := math.Max(xe, 1e-12)
		// x_p x_e/(1-x_p) = sH  =>  x_p = sH/(sH + x_e).
		xp = sH / (sH + xeSafe)
		xeNew := xp + helium(xeSafe)
		if math.Abs(xeNew-xe) < 1e-13*(1.0+xeNew) {
			xe = xeNew
			break
		}
		xe = 0.5*xe + 0.5*xeNew
	}
	xp = sH / (sH + math.Max(xe, 1e-12))
	return xp, xe
}

// alphaB returns the case-B recombination coefficient in m^3/s
// (Pequignot, Petitjean & Boisson 1991 fit with the standard fudge).
func alphaB(tK float64) float64 {
	t4 := tK / 1e4
	cm3 := alphaFudge * 1e-13 * 4.309 * math.Pow(t4, -0.6166) /
		(1.0 + 0.6703*math.Pow(t4, 0.5300))
	return cm3 * 1e-6
}

// dxpDlnA is the Peebles three-level-atom rate dx_p/dln a.
func dxpDlnA(a, xp, xe, tg, tb, nHm3, hubble float64) float64 {
	if tb <= 0 {
		tb = tg
	}
	kTb := constants.KBoltzmann * tb
	alpha := alphaB(tb)
	// Detailed-balance photoionization rate from the n=2 level.
	hPlanck := 2.0 * math.Pi * constants.HBar
	pre := math.Pow(2.0*math.Pi*constants.ElectronMassKg*kTb/(hPlanck*hPlanck), 1.5)
	beta := alpha * pre * math.Exp(-e2sEV*constants.EVJoule/kTb)
	// Ly-alpha escape (Peebles C factor).
	n1s := (1.0 - xp) * nHm3
	if n1s < 0 {
		n1s = 0
	}
	kLy := lambdaLyAlph * lambdaLyAlph * lambdaLyAlph / (8.0 * math.Pi * hubble)
	c := (1.0 + kLy*lambda2s1s*n1s) / (1.0 + kLy*(lambda2s1s+beta)*n1s)
	// Boltzmann factor for the net 2->1 source uses the Ly-alpha energy.
	arg := eLyAlphaEV * constants.EVJoule / kTb
	var up float64
	if arg < 650 {
		up = beta * (1.0 - xp) * math.Exp(-arg)
	}
	down := alpha * xp * xe * nHm3
	return c * (up - down) / hubble
}

// comptonRate returns the Compton heating rate coefficient
// (8/3) sigma_T a_r T_gamma^4 x_e / (m_e c (1 + f_He + x_e)) in s^-1.
func comptonRate(xe, fHe, a, tcmb float64) float64 {
	tg := tcmb / a
	// Radiation energy density u = a_r T^4 with
	// a_r = pi^2 k^4/(15 hbar^3 c^3).
	kt := constants.KBoltzmann * tg
	u := math.Pi * math.Pi / 15.0 * kt * kt * kt * kt /
		(constants.HBar * constants.HBar * constants.HBar *
			constants.CLight * constants.CLight * constants.CLight)
	return 8.0 / 3.0 * constants.SigmaThomsonM2 * u /
		(constants.ElectronMassKg * constants.CLight) *
		xe / (1.0 + fHe + xe)
}

// XeAt interpolates x_e at scale factor a (linear in ln a; the table is
// dense enough that this is sub-0.1%).
func (h *History) XeAt(a float64) float64 {
	return interp(h.LnA, h.Xe, math.Log(a))
}

// TBaryonAt interpolates the baryon temperature at scale factor a.
func (h *History) TBaryonAt(a float64) float64 {
	return interp(h.LnA, h.TBaryon, math.Log(a))
}

func interp(xs, ys []float64, x float64) float64 {
	n := len(xs)
	if x <= xs[0] {
		return ys[0]
	}
	if x >= xs[n-1] {
		return ys[n-1]
	}
	// Uniform grid: direct index.
	dx := (xs[n-1] - xs[0]) / float64(n-1)
	i := int((x - xs[0]) / dx)
	if i > n-2 {
		i = n - 2
	}
	f := (x - xs[i]) / (xs[i+1] - xs[i])
	return ys[i]*(1.0-f) + ys[i+1]*f
}
