// Package spline implements natural cubic spline interpolation on
// monotonically increasing abscissae. The background cosmology and the
// thermodynamic history are tabulated once and then interpolated millions of
// times from the per-k integrators, so evaluation is kept allocation-free
// and O(log n).
package spline

import (
	"errors"
	"fmt"
	"sort"
)

// Spline is a natural cubic spline y(x) through a fixed set of knots.
type Spline struct {
	x, y, y2 []float64
}

// New constructs a natural cubic spline through the points (x[i], y[i]).
// x must be strictly increasing and len(x) == len(y) >= 2.
func New(x, y []float64) (*Spline, error) {
	n := len(x)
	if n < 2 {
		return nil, errors.New("spline: need at least two knots")
	}
	if len(y) != n {
		return nil, fmt.Errorf("spline: len(x)=%d != len(y)=%d", n, len(y))
	}
	for i := 1; i < n; i++ {
		if x[i] <= x[i-1] {
			return nil, fmt.Errorf("spline: x not strictly increasing at index %d (%g <= %g)", i, x[i], x[i-1])
		}
	}
	s := &Spline{
		x:  append([]float64(nil), x...),
		y:  append([]float64(nil), y...),
		y2: make([]float64, n),
	}
	// Solve the tridiagonal system for second derivatives with natural
	// boundary conditions y2[0] = y2[n-1] = 0.
	u := make([]float64, n)
	for i := 1; i < n-1; i++ {
		sig := (x[i] - x[i-1]) / (x[i+1] - x[i-1])
		p := sig*s.y2[i-1] + 2.0
		s.y2[i] = (sig - 1.0) / p
		u[i] = (y[i+1]-y[i])/(x[i+1]-x[i]) - (y[i]-y[i-1])/(x[i]-x[i-1])
		u[i] = (6.0*u[i]/(x[i+1]-x[i-1]) - sig*u[i-1]) / p
	}
	for i := n - 2; i >= 0; i-- {
		s.y2[i] = s.y2[i]*s.y2[i+1] + u[i]
	}
	return s, nil
}

// MustNew is New but panics on error; for static tables known to be valid.
func MustNew(x, y []float64) *Spline {
	s, err := New(x, y)
	if err != nil {
		panic(err)
	}
	return s
}

// locate returns the index i such that x[i] <= v < x[i+1], clamped to the
// valid interior range.
func (s *Spline) locate(v float64) int {
	i := sort.SearchFloat64s(s.x, v) - 1
	if i < 0 {
		i = 0
	}
	if i > len(s.x)-2 {
		i = len(s.x) - 2
	}
	return i
}

// Eval evaluates the spline at v. Values outside the knot range are
// extrapolated with the boundary cubic.
func (s *Spline) Eval(v float64) float64 {
	i := s.locate(v)
	h := s.x[i+1] - s.x[i]
	a := (s.x[i+1] - v) / h
	b := (v - s.x[i]) / h
	return a*s.y[i] + b*s.y[i+1] +
		((a*a*a-a)*s.y2[i]+(b*b*b-b)*s.y2[i+1])*(h*h)/6.0
}

// Deriv evaluates dy/dx at v.
func (s *Spline) Deriv(v float64) float64 {
	i := s.locate(v)
	h := s.x[i+1] - s.x[i]
	a := (s.x[i+1] - v) / h
	b := (v - s.x[i]) / h
	return (s.y[i+1]-s.y[i])/h +
		((3.0*b*b-1.0)*s.y2[i+1]-(3.0*a*a-1.0)*s.y2[i])*h/6.0
}

// Xmin returns the smallest knot abscissa.
func (s *Spline) Xmin() float64 { return s.x[0] }

// Xmax returns the largest knot abscissa.
func (s *Spline) Xmax() float64 { return s.x[len(s.x)-1] }

// Len returns the number of knots.
func (s *Spline) Len() int { return len(s.x) }
