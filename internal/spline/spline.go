// Package spline implements natural cubic spline interpolation on
// monotonically increasing abscissae. The background cosmology and the
// thermodynamic history are tabulated once and then interpolated millions of
// times from the per-k integrators, so evaluation is kept allocation-free
// and O(log n).
package spline

import (
	"errors"
	"fmt"
	"sort"
)

// Spline is a natural cubic spline y(x) through a fixed set of knots.
type Spline struct {
	x, y, y2 []float64
	u        []float64 // tridiagonal-solve scratch, kept for Fit reuse
}

// New constructs a natural cubic spline through the points (x[i], y[i]).
// x must be strictly increasing and len(x) == len(y) >= 2.
func New(x, y []float64) (*Spline, error) {
	s := &Spline{}
	if err := s.Fit(x, y); err != nil {
		return nil, err
	}
	return s, nil
}

// Fit refits the spline through new knots, reusing the receiver's storage.
// Hot loops that build many short-lived splines (the fast C_l engine refits
// one per source component per time sample when interpolating across k)
// call Fit on a scratch Spline instead of paying New's allocations.
func (s *Spline) Fit(x, y []float64) error {
	n := len(x)
	if n < 2 {
		return errors.New("spline: need at least two knots")
	}
	if len(y) != n {
		return fmt.Errorf("spline: len(x)=%d != len(y)=%d", n, len(y))
	}
	for i := 1; i < n; i++ {
		if x[i] <= x[i-1] {
			return fmt.Errorf("spline: x not strictly increasing at index %d (%g <= %g)", i, x[i], x[i-1])
		}
	}
	s.x = append(s.x[:0], x...)
	s.y = append(s.y[:0], y...)
	s.y2 = growTo(s.y2, n)
	s.u = growTo(s.u, n)
	// Solve the tridiagonal system for second derivatives with natural
	// boundary conditions y2[0] = y2[n-1] = 0.
	u := s.u
	s.y2[0], u[0] = 0, 0
	s.y2[n-1] = 0
	for i := 1; i < n-1; i++ {
		sig := (x[i] - x[i-1]) / (x[i+1] - x[i-1])
		p := sig*s.y2[i-1] + 2.0
		s.y2[i] = (sig - 1.0) / p
		u[i] = (y[i+1]-y[i])/(x[i+1]-x[i]) - (y[i]-y[i-1])/(x[i]-x[i-1])
		u[i] = (6.0*u[i]/(x[i+1]-x[i-1]) - sig*u[i-1]) / p
	}
	for i := n - 2; i >= 0; i-- {
		s.y2[i] = s.y2[i]*s.y2[i+1] + u[i]
	}
	return nil
}

// growTo returns s resized to length n, reallocating only when capacity is
// short.
func growTo(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// MustNew is New but panics on error; for static tables known to be valid.
func MustNew(x, y []float64) *Spline {
	s, err := New(x, y)
	if err != nil {
		panic(err)
	}
	return s
}

// locate returns the index i such that x[i] <= v < x[i+1], clamped to the
// valid interior range.
func (s *Spline) locate(v float64) int {
	i := sort.SearchFloat64s(s.x, v) - 1
	if i < 0 {
		i = 0
	}
	if i > len(s.x)-2 {
		i = len(s.x) - 2
	}
	return i
}

// locateHint is locate with a cached interval: when *hint already brackets
// v the binary search is skipped entirely, and a miss by one interval (the
// common case for monotone argument streams) costs a single step. The
// returned index is written back to *hint. A nil hint falls back to locate.
// Hints are caller-owned state, so one Spline may serve concurrent readers
// as long as each holds its own hint.
func (s *Spline) locateHint(v float64, hint *int) int {
	if hint == nil {
		return s.locate(v)
	}
	return locateIn(s.x, v, hint)
}

// locateIn is the hint-cached interval lookup shared by Spline.locateHint
// and Multi.EvalHint: bracket hits are free, a miss by one interval costs
// a single step, anything else falls back to binary search; the result is
// clamped to the valid interior range and written back to *hint.
func locateIn(x []float64, v float64, hint *int) int {
	bisect := func() int {
		i := sort.SearchFloat64s(x, v) - 1
		if i < 0 {
			i = 0
		}
		if i > len(x)-2 {
			i = len(x) - 2
		}
		return i
	}
	i := *hint
	if i < 0 || i > len(x)-2 {
		i = bisect()
	} else if v < x[i] {
		if i == 0 || v >= x[i-1] {
			if i > 0 {
				i--
			}
		} else {
			i = bisect()
		}
	} else if v >= x[i+1] {
		if i+2 > len(x)-2 || v < x[i+2] {
			if i+1 <= len(x)-2 {
				i++
			}
		} else {
			i = bisect()
		}
	}
	*hint = i
	return i
}

// Eval evaluates the spline at v. Values outside the knot range are
// extrapolated with the boundary cubic.
func (s *Spline) Eval(v float64) float64 {
	i := s.locate(v)
	h := s.x[i+1] - s.x[i]
	a := (s.x[i+1] - v) / h
	b := (v - s.x[i]) / h
	return a*s.y[i] + b*s.y[i+1] +
		((a*a*a-a)*s.y2[i]+(b*b*b-b)*s.y2[i+1])*(h*h)/6.0
}

// EvalHint is Eval with a caller-owned interval cache: pass the same *hint
// across a monotone (or nearly monotone) argument stream and the O(log n)
// locate collapses to O(1). Start with *hint = 0; any stale value is safe.
func (s *Spline) EvalHint(v float64, hint *int) float64 {
	i := s.locateHint(v, hint)
	h := s.x[i+1] - s.x[i]
	a := (s.x[i+1] - v) / h
	b := (v - s.x[i]) / h
	return a*s.y[i] + b*s.y[i+1] +
		((a*a*a-a)*s.y2[i]+(b*b*b-b)*s.y2[i+1])*(h*h)/6.0
}

// Multi is a bundle of natural cubic splines sharing one abscissa grid,
// stored knot-major: values[i*NF+f] is field f at knot i. Fitting solves
// the shared tridiagonal decomposition once for all fields (its
// coefficients depend only on the abscissae), and evaluation applies one
// bracket and one weight set to NF contiguous values — the k-refinement
// engine splines seven source fields over the same coarse wavenumber grid
// at every time sample, and the per-field slice walks of separate Spline
// objects were its single largest cost.
type Multi struct {
	nf    int
	x     []float64
	y, y2 []float64 // knot-major, len n*nf
	u     []float64 // tridiagonal scratch, len n*nf
	sig   []float64
}

// NewMulti returns a Multi for nf fields per knot.
func NewMulti(nf int) *Multi { return &Multi{nf: nf} }

// Fit refits the bundle through knots x with knot-major values y
// (len(x)*nf entries), reusing the receiver's storage. x and y are
// retained, not copied.
func (m *Multi) Fit(x, y []float64) error {
	n := len(x)
	nf := m.nf
	if n < 2 {
		return errors.New("spline: need at least two knots")
	}
	if len(y) != n*nf {
		return fmt.Errorf("spline: len(y)=%d, want %d knots x %d fields", len(y), n, nf)
	}
	for i := 1; i < n; i++ {
		if x[i] <= x[i-1] {
			return fmt.Errorf("spline: x not strictly increasing at index %d (%g <= %g)", i, x[i], x[i-1])
		}
	}
	m.x = x
	m.y = y
	m.y2 = growTo(m.y2, n*nf)
	m.u = growTo(m.u, n*nf)
	m.sig = growTo(m.sig, n)
	y2, u := m.y2, m.u
	for f := 0; f < nf; f++ {
		y2[f], u[f] = 0, 0
		y2[(n-1)*nf+f] = 0
	}
	for i := 1; i < n-1; i++ {
		sig := (x[i] - x[i-1]) / (x[i+1] - x[i-1])
		invH1 := 1.0 / (x[i+1] - x[i])
		invH0 := 1.0 / (x[i] - x[i-1])
		inv01 := 6.0 / (x[i+1] - x[i-1])
		row, prev, next := i*nf, (i-1)*nf, (i+1)*nf
		for f := 0; f < nf; f++ {
			p := sig*y2[prev+f] + 2.0
			y2[row+f] = (sig - 1.0) / p
			d := (y[next+f]-y[row+f])*invH1 - (y[row+f]-y[prev+f])*invH0
			u[row+f] = (d*inv01 - sig*u[prev+f]) / p
		}
	}
	for i := n - 2; i >= 0; i-- {
		row, next := i*nf, (i+1)*nf
		for f := 0; f < nf; f++ {
			y2[row+f] = y2[row+f]*y2[next+f] + u[row+f]
		}
	}
	return nil
}

// EvalHint evaluates every field at v into out (len nf), sharing one
// interval lookup and one cubic weight set. The hint contract matches
// Spline.EvalHint.
func (m *Multi) EvalHint(v float64, hint *int, out []float64) {
	i := locateIn(m.x, v, hint)
	h := m.x[i+1] - m.x[i]
	a := (m.x[i+1] - v) / h
	b := (v - m.x[i]) / h
	w2a := (a*a*a - a) * (h * h) / 6.0
	w2b := (b*b*b - b) * (h * h) / 6.0
	nf := m.nf
	y0 := m.y[i*nf : (i+1)*nf]
	y1 := m.y[(i+1)*nf : (i+2)*nf]
	z0 := m.y2[i*nf : (i+1)*nf]
	z1 := m.y2[(i+1)*nf : (i+2)*nf]
	out = out[:nf]
	for f := range out {
		out[f] = a*y0[f] + b*y1[f] + w2a*z0[f] + w2b*z1[f]
	}
}

// Deriv evaluates dy/dx at v.
func (s *Spline) Deriv(v float64) float64 {
	i := s.locate(v)
	h := s.x[i+1] - s.x[i]
	a := (s.x[i+1] - v) / h
	b := (v - s.x[i]) / h
	return (s.y[i+1]-s.y[i])/h +
		((3.0*b*b-1.0)*s.y2[i+1]-(3.0*a*a-1.0)*s.y2[i])*h/6.0
}

// Xmin returns the smallest knot abscissa.
func (s *Spline) Xmin() float64 { return s.x[0] }

// Xmax returns the largest knot abscissa.
func (s *Spline) Xmax() float64 { return s.x[len(s.x)-1] }

// Len returns the number of knots.
func (s *Spline) Len() int { return len(s.x) }
