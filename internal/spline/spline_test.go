package spline

import (
	"math"
	"testing"
	"testing/quick"
)

func TestInterpolatesKnotsExactly(t *testing.T) {
	x := []float64{0, 1, 2.5, 3, 4.5}
	y := []float64{1, -1, 0.5, 2, -3}
	s := MustNew(x, y)
	for i := range x {
		if got := s.Eval(x[i]); math.Abs(got-y[i]) > 1e-12 {
			t.Errorf("Eval(%g) = %g, want %g", x[i], got, y[i])
		}
	}
}

func TestLinearDataIsReproducedExactly(t *testing.T) {
	// A natural cubic spline through samples of a straight line is the line.
	x := make([]float64, 11)
	y := make([]float64, 11)
	for i := range x {
		x[i] = float64(i) * 0.4
		y[i] = 3.0*x[i] - 2.0
	}
	s := MustNew(x, y)
	for v := 0.05; v < 4.0; v += 0.173 {
		if got, want := s.Eval(v), 3.0*v-2.0; math.Abs(got-want) > 1e-10 {
			t.Fatalf("Eval(%g) = %g, want %g", v, got, want)
		}
		if got := s.Deriv(v); math.Abs(got-3.0) > 1e-10 {
			t.Fatalf("Deriv(%g) = %g, want 3", v, got)
		}
	}
}

func TestSmoothFunctionAccuracy(t *testing.T) {
	n := 200
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i) / float64(n-1) * 2 * math.Pi
		y[i] = math.Sin(x[i])
	}
	s := MustNew(x, y)
	for v := 0.01; v < 2*math.Pi-0.01; v += 0.0137 {
		if err := math.Abs(s.Eval(v) - math.Sin(v)); err > 1e-7 {
			t.Fatalf("sin interpolation error %g at %g", err, v)
		}
		if err := math.Abs(s.Deriv(v) - math.Cos(v)); err > 1e-5 {
			t.Fatalf("cos derivative error %g at %g", err, v)
		}
	}
}

func TestErrors(t *testing.T) {
	if _, err := New([]float64{1}, []float64{1}); err == nil {
		t.Error("want error for single knot")
	}
	if _, err := New([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("want error for length mismatch")
	}
	if _, err := New([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Error("want error for non-increasing x")
	}
	if _, err := New([]float64{2, 1}, []float64{1, 2}); err == nil {
		t.Error("want error for decreasing x")
	}
}

func TestRangeAccessors(t *testing.T) {
	s := MustNew([]float64{-1, 0, 2}, []float64{1, 2, 3})
	if s.Xmin() != -1 || s.Xmax() != 2 || s.Len() != 3 {
		t.Fatalf("accessors: got (%g,%g,%d)", s.Xmin(), s.Xmax(), s.Len())
	}
}

// Property: spline evaluation between two adjacent knots is bounded when the
// data is monotone-ish; more fundamentally, Eval at any knot returns the knot
// value regardless of the (sorted, deduplicated) input data.
func TestQuickKnotReproduction(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 4 {
			return true
		}
		if len(raw) > 40 {
			raw = raw[:40]
		}
		// Build strictly increasing x from |raw| increments and bounded y.
		x := make([]float64, len(raw))
		y := make([]float64, len(raw))
		acc := 0.0
		for i, r := range raw {
			if math.IsNaN(r) || math.IsInf(r, 0) {
				return true
			}
			step := math.Mod(math.Abs(r), 10.0) + 1e-3
			acc += step
			x[i] = acc
			y[i] = math.Mod(r, 100.0)
		}
		s, err := New(x, y)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(s.Eval(x[i])-y[i]) > 1e-6*(1+math.Abs(y[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestEvalHint: the cached-interval lookup must agree with Eval exactly for
// monotone sweeps (the hot-loop pattern), repeated values, reversals and a
// stale or out-of-range hint.
func TestEvalHint(t *testing.T) {
	x := []float64{0, 0.5, 1.3, 2.0, 4.5, 4.6, 9.0, 12.0}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = math.Sin(v) + 0.1*v*v
	}
	s, err := New(x, y)
	if err != nil {
		t.Fatal(err)
	}
	hint := 0
	for v := -1.0; v < 14.0; v += 0.0137 {
		if got, want := s.EvalHint(v, &hint), s.Eval(v); got != want {
			t.Fatalf("monotone EvalHint(%g) = %g, want %g", v, got, want)
		}
	}
	// Reversed sweep with the hint left at the top.
	for v := 14.0; v > -1.0; v -= 0.0213 {
		if got, want := s.EvalHint(v, &hint), s.Eval(v); got != want {
			t.Fatalf("reverse EvalHint(%g) = %g, want %g", v, got, want)
		}
	}
	// Stale and out-of-range hints.
	for _, h := range []int{-5, 0, 3, 99} {
		hint = h
		for _, v := range []float64{-2, 0, 0.5, 2.2, 4.55, 11.9, 13} {
			if got, want := s.EvalHint(v, &hint), s.Eval(v); got != want {
				t.Fatalf("hint %d: EvalHint(%g) = %g, want %g", h, v, got, want)
			}
		}
	}
	// Nil hint falls back to the plain lookup.
	if got, want := s.EvalHint(3.3, nil), s.Eval(3.3); got != want {
		t.Fatalf("nil hint: %g vs %g", got, want)
	}
}

// TestFitReuse: refitting a scratch spline must match a fresh New and leave
// no trace of the previous knots.
func TestFitReuse(t *testing.T) {
	var s Spline
	if err := s.Fit([]float64{0, 1, 2, 3, 4, 5, 6, 7}, []float64{5, 3, 8, 1, 9, 2, 7, 4}); err != nil {
		t.Fatal(err)
	}
	x := []float64{0, 2, 3.5, 7}
	y := []float64{1, -4, 2, 0.5}
	if err := s.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	fresh, err := New(x, y)
	if err != nil {
		t.Fatal(err)
	}
	for v := -0.5; v < 7.5; v += 0.09 {
		if got, want := s.Eval(v), fresh.Eval(v); got != want {
			t.Fatalf("Fit-reused Eval(%g) = %g, fresh %g", v, got, want)
		}
	}
	if err := s.Fit([]float64{1, 0}, []float64{1, 2}); err == nil {
		t.Fatal("non-increasing x accepted")
	}
	if err := s.Fit([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single knot accepted")
	}
}
