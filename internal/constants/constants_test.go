package constants

import (
	"math"
	"testing"
)

func close(a, b, rel float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= rel*math.Max(math.Abs(a), math.Abs(b))
}

func TestRadiationDensity(t *testing.T) {
	// The standard value for T = 2.726 K is Omega_gamma h^2 ~= 2.47e-5.
	got := RadiationDensity(TCMBDefault)
	if !close(got, 2.47e-5, 0.01) {
		t.Fatalf("Omega_gamma h^2 = %g, want ~2.47e-5", got)
	}
}

func TestRadiationDensityScalesAsT4(t *testing.T) {
	r1 := RadiationDensity(2.0)
	r2 := RadiationDensity(4.0)
	if !close(r2/r1, 16.0, 1e-12) {
		t.Fatalf("radiation density ratio %g, want 16", r2/r1)
	}
}

func TestRhoCrit(t *testing.T) {
	// rho_crit/h^2 ~= 1.878e-26 kg/m^3.
	got := RhoCritH2()
	if !close(got, 1.878e-26, 0.001) {
		t.Fatalf("rho_crit = %g kg/m^3, want ~1.878e-26", got)
	}
}

func TestHubbleInvMpc(t *testing.T) {
	// H0 = 100 km/s/Mpc corresponds to 1/2997.92458 Mpc^-1.
	got := HubbleInvMpc(1.0)
	if !close(got, 1.0/2997.92458, 1e-9) {
		t.Fatalf("H0 = %g Mpc^-1, want %g", got, 1.0/2997.92458)
	}
}

func TestNeutrinoTemperature(t *testing.T) {
	tnu := TNuKelvin(TCMBDefault)
	if !close(tnu, 1.9457, 0.001) {
		t.Fatalf("T_nu = %g K, want ~1.9457", tnu)
	}
}

func TestNuPerGammaConstant(t *testing.T) {
	want := 7.0 / 8.0 * math.Pow(4.0/11.0, 4.0/3.0)
	if !close(NuPerGamma, want, 1e-12) {
		t.Fatalf("NuPerGamma = %v, want %v", NuPerGamma, want)
	}
	want = math.Pow(4.0/11.0, 1.0/3.0)
	if !close(TNuPerTGamma, want, 1e-12) {
		t.Fatalf("TNuPerTGamma = %v, want %v", TNuPerTGamma, want)
	}
}

func TestNHydrogenToday(t *testing.T) {
	// For Omega_b h^2 = 0.0125, Y = 0.24: n_H ~ 8.0 m^-3 * (Mpc/m)^3... the
	// physical number is n_H ~= 1.878e-26*0.0125*0.76/1.6736e-27 = 0.1066 m^-3.
	nH := NHydrogenToday(0.0125, 0.24)
	perM3 := nH / (MpcMeter * MpcMeter * MpcMeter)
	if !close(perM3, 0.1066, 0.01) {
		t.Fatalf("n_H = %g m^-3, want ~0.1066", perM3)
	}
}

func TestNeutrinoMassToQ(t *testing.T) {
	// kT_nu0 ~= 1.6766e-4 eV, so 1 eV => q ~ 5965.
	q := NeutrinoMassToQ(1.0, TCMBDefault)
	if !close(q, 5965, 0.01) {
		t.Fatalf("m/T = %g, want ~5965", q)
	}
}
