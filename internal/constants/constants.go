// Package constants collects the physical constants used throughout the
// LINGER/PLINGER reproduction, expressed in the code's natural unit system:
// c = 1, lengths in Mpc, conformal time in Mpc, wavenumbers in Mpc^-1.
//
// The conventions follow Ma & Bertschinger (1995), the companion paper of
// the SC'95 text: the background is parameterized by density parameters
// Omega_i today with the scale factor normalized to a = 1 at the present.
package constants

import "math"

// SI and CGS-derived base constants.
const (
	// CLight is the speed of light in m/s.
	CLight = 2.99792458e8
	// GNewton is Newton's constant in m^3 kg^-1 s^-2.
	GNewton = 6.67430e-11
	// KBoltzmann is Boltzmann's constant in J/K.
	KBoltzmann = 1.380649e-23
	// HBar is the reduced Planck constant in J s.
	HBar = 1.054571817e-34
	// ElectronMassKg is the electron mass in kg.
	ElectronMassKg = 9.1093837015e-31
	// ProtonMassKg is the proton mass in kg.
	ProtonMassKg = 1.67262192369e-27
	// HydrogenMassKg is the mass of a hydrogen atom in kg.
	HydrogenMassKg = 1.6735575e-27
	// SigmaThomsonM2 is the Thomson cross-section in m^2.
	SigmaThomsonM2 = 6.6524587321e-29
	// EVJoule is one electron-volt in joules.
	EVJoule = 1.602176634e-19
)

// Unit conversions.
const (
	// MpcMeter is one megaparsec in meters.
	MpcMeter = 3.085677581491367e22
	// MpcSecond is the light-travel time of one Mpc in seconds (Mpc/c).
	MpcSecond = MpcMeter / CLight
	// KmSMpcToInvMpc converts a Hubble constant in km/s/Mpc to Mpc^-1
	// (H0[Mpc^-1] = H0[km/s/Mpc] * KmSMpcToInvMpc).
	KmSMpcToInvMpc = 1.0e3 / CLight
)

// Radiation and cosmology constants.
const (
	// TCMBDefault is the FIRAS CMB temperature in K used by the paper.
	TCMBDefault = 2.726
	// YHeDefault is the primordial helium mass fraction.
	YHeDefault = 0.24
	// TNuPerTGamma is the neutrino-to-photon temperature ratio (4/11)^(1/3)
	// after e+e- annihilation.
	TNuPerTGamma = 0.7137658555036082 // (4/11)^(1/3)
	// NuPerGamma is the energy density of one massless two-component
	// neutrino species relative to the photons: (7/8)(4/11)^(4/3).
	NuPerGamma = 0.22710731766023898
	// QrmsPSDefault is the COBE Q_rms-PS normalization in microkelvin used
	// for Figure 2 of the paper.
	QrmsPSDefault = 18.0
)

// RadiationDensity returns the photon energy-density parameter times h^2,
// Omega_gamma h^2, for a blackbody of temperature tcmb (kelvin). It is
// computed from first principles: rho_gamma = (pi^2/15) (kT)^4/(hbar c)^3 c^-2.
func RadiationDensity(tcmb float64) float64 {
	kt := KBoltzmann * tcmb
	// Energy density in J/m^3.
	u := math.Pi * math.Pi / 15.0 * kt * kt * kt * kt /
		(HBar * HBar * HBar * CLight * CLight * CLight)
	rho := u / (CLight * CLight) // kg/m^3
	return rho / RhoCritH2()
}

// RhoCritH2 returns the critical density divided by h^2 in kg/m^3:
// rho_crit = 3 H0^2 / (8 pi G) with H0 = 100 km/s/Mpc.
func RhoCritH2() float64 {
	h0 := 100.0 * 1.0e3 / MpcMeter // s^-1
	return 3.0 * h0 * h0 / (8.0 * math.Pi * GNewton)
}

// SigmaThomsonMpc2 is the Thomson cross section in Mpc^2.
var SigmaThomsonMpc2 = SigmaThomsonM2 / (MpcMeter * MpcMeter)

// HubbleInvMpc converts little-h to H0 in Mpc^-1 (units where c=1).
func HubbleInvMpc(h float64) float64 { return h * 100.0 * KmSMpcToInvMpc }

// NHydrogenToday returns the comoving hydrogen number density in Mpc^-3 for
// a baryon density Omega_b h^2 = obh2 and helium mass fraction yhe.
func NHydrogenToday(obh2, yhe float64) float64 {
	rhoB := obh2 * RhoCritH2() // kg/m^3
	nH := rhoB * (1.0 - yhe) / HydrogenMassKg
	return nH * MpcMeter * MpcMeter * MpcMeter
}

// TNuKelvin returns the relic neutrino temperature today for a given CMB
// temperature.
func TNuKelvin(tcmb float64) float64 { return tcmb * TNuPerTGamma }

// NeutrinoMassToQ converts a neutrino mass in eV to the dimensionless
// combination m_nu c^2 / (k T_nu0): the momentum grid used for massive
// neutrinos is expressed in units of k T_nu0.
func NeutrinoMassToQ(massEV, tcmb float64) float64 {
	ktnu := KBoltzmann * TNuKelvin(tcmb) / EVJoule // eV
	return massEV / ktnu
}
