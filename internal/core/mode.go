package core

import (
	"fmt"
	"math"
	"time"

	"plinger/internal/cosmology"
	"plinger/internal/ode"
)

// mode is the in-flight state of one k evolution.
type mode struct {
	Model
	p  Params
	k  float64
	k2 float64

	// state layout
	nvar int
	ia   int // scale factor
	idc  int // delta_c
	itc  int // theta_c (Newtonian only; -1 in synchronous)
	idb  int // delta_b
	itb  int // theta_b
	iphi int // phi (Newtonian; -1 otherwise)
	ieta int // eta (synchronous; -1 otherwise)
	ih   int // h
	ihd  int // h-dot
	ifg  int // photon temperature F_l, l = 0..lmax
	igg  int // photon polarization G_l
	ifn  int // massless neutrino F_l
	ipsn int // massive neutrino Psi(q, l), q-major

	nq  int
	lnu int

	tca bool // current right-hand-side regime

	maxResidual float64
	sources     []Sample

	scratch cosmology.Grho
}

// Evolve integrates one k mode to completion.
func (mdl *Model) Evolve(p Params) (*Result, error) {
	p.setDefaults()
	if p.K <= 0 {
		return nil, fmt.Errorf("core: k = %g must be positive", p.K)
	}
	if p.TauEnd <= 0 {
		p.TauEnd = mdl.BG.Tau0()
	}
	if p.TauEnd > mdl.BG.Tau0()*1.0000001 {
		return nil, fmt.Errorf("core: TauEnd = %g beyond the present %g", p.TauEnd, mdl.BG.Tau0())
	}

	m := &mode{Model: *mdl, p: p, k: p.K, k2: p.K * p.K}
	m.layout()

	tauStart := m.startTime()
	if tauStart >= p.TauEnd {
		return nil, fmt.Errorf("core: start time %g is not before end time %g (k=%g)", tauStart, p.TauEnd, p.K)
	}
	y := make([]float64, m.nvar)
	m.initialConditions(tauStart, y)

	integ := p.Integrator
	if integ == nil {
		dv := ode.NewDVERK(p.RTol, p.ATol)
		dv.InitialStep = tauStart * 1e-3
		integ = dv
	}
	if ad, ok := integ.(*ode.Adaptive); ok && p.KeepSources {
		ad.OnStep = func(t float64, yy []float64) { m.record(t, yy) }
	} else if ad, ok := integ.(*ode.Adaptive); ok {
		// Still monitor the constraint without storing samples.
		ad.OnStep = func(t float64, yy []float64) { m.monitor(t, yy) }
	}

	res := &Result{K: p.K, Gauge: p.Gauge, LMax: p.LMax}
	start := time.Now()

	var stats ode.Stats

	// Phase 1: tight coupling, if applicable.
	m.tca = !p.DisableTightCoupling && m.tcaHolds(m.BG.AofTau(tauStart))
	tau := tauStart
	if m.tca {
		tauSwitch := m.findTCASwitch(tauStart, p.TauEnd)
		if tauSwitch > tauStart {
			st, err := integ.Integrate(m.rhs, tau, tauSwitch, y)
			stats.Add(st)
			if err != nil {
				return nil, fmt.Errorf("core: tight-coupling phase (k=%g): %w", p.K, err)
			}
			tau = tauSwitch
			res.TauSwitch = tauSwitch
		}
		m.releaseTightCoupling(tau, y)
		m.tca = false
	}

	// Phase 2: full equations to the end.
	st, err := integ.Integrate(m.rhs, tau, p.TauEnd, y)
	stats.Add(st)
	if err != nil {
		return nil, fmt.Errorf("core: full phase (k=%g): %w", p.K, err)
	}

	res.Seconds = time.Since(start).Seconds()
	res.Stats = stats
	res.Flops = float64(stats.Evals) * FlopsPerRHS(p.LMax, m.lnu, m.nq, p.Gauge)
	m.pack(p.TauEnd, y, res)
	res.MaxConstraintResidual = m.maxResidual
	res.Sources = m.sources
	return res, nil
}

// layout assigns state-vector indices.
func (m *mode) layout() {
	if m.BG.P.NNuMassive > 0 {
		m.nq = len(m.BG.Q)
		m.lnu = m.p.LMaxNu
	}
	L := m.p.LMax + 1
	i := 0
	alloc := func(n int) int { j := i; i += n; return j }
	m.ia = alloc(1)
	m.idc = alloc(1)
	if m.p.Gauge == ConformalNewtonian {
		m.itc = alloc(1)
	} else {
		m.itc = -1
	}
	m.idb = alloc(1)
	m.itb = alloc(1)
	if m.p.Gauge == ConformalNewtonian {
		m.iphi = alloc(1)
		m.ieta, m.ih, m.ihd = -1, -1, -1
	} else {
		m.iphi = -1
		m.ieta = alloc(1)
		m.ih = alloc(1)
		m.ihd = alloc(1)
	}
	m.ifg = alloc(L)
	m.igg = alloc(L)
	m.ifn = alloc(L)
	m.ipsn = alloc(m.nq * (m.lnu + 1))
	m.nvar = i
}

// startTime picks the initial conformal time: superhorizon (k tau small),
// deep enough in the radiation era, inside the thermodynamic table, and —
// when massive neutrinos are present — while they are still relativistic.
func (m *mode) startTime() float64 {
	aCap := 1e-5
	if m.BG.P.NNuMassive > 0 {
		if amax := 1e-3 / m.BG.MassQ; amax < aCap {
			aCap = amax
		}
	}
	tau := m.p.KTauStart / m.k
	if tCap := m.BG.Tau(aCap); tau > tCap {
		tau = tCap
	}
	if tMin := m.BG.Tau(2e-8); tau < tMin {
		tau = tMin
	}
	return tau
}

// rnuFraction returns R_nu = rho_nu/(rho_gamma + rho_nu) at scale factor a
// counting all (still relativistic) neutrinos.
func (m *mode) rnuFraction(a float64) float64 {
	g := &m.scratch
	m.BG.Eval(a, g)
	return (g.Nu + g.HNu) / (g.G + g.Nu + g.HNu)
}

// initialConditions sets the adiabatic growing mode of MB95 eq. (96) with
// normalization C = 1. The conformal Newtonian state is obtained by an
// exact gauge transformation of the synchronous series using the true
// background expansion rate: the transformation absorbs the small matter
// contamination at the start time, which a pure radiation-era Newtonian
// series (MB95 eq. 98) would miss; unlike the synchronous variables, the
// Newtonian potential is O(1) on super-horizon scales, so such errors
// would persist instead of decaying.
func (m *mode) initialConditions(tau float64, y []float64) {
	a := m.BG.AofTau(tau)
	rnu := m.rnuFraction(a)
	k, kt := m.k, m.k*tau
	kt2 := kt * kt
	const c = 1.0

	y[m.ia] = a

	// Synchronous adiabatic series (MB95 eq. 96).
	h := c * kt2
	eta := 2.0*c - c*(5.0+4.0*rnu)/(6.0*(15.0+4.0*rnu))*kt2
	hdot := 2.0 * c * k * kt
	etadot := -c * (5.0 + 4.0*rnu) / (3.0 * (15.0 + 4.0*rnu)) * m.k2 * tau
	deltaG := -2.0 / 3.0 * c * kt2
	deltaNu := deltaG
	deltaC := 0.75 * deltaG
	deltaB := deltaC
	thetaG := -c / 18.0 * kt2 * kt * k
	thetaB := thetaG
	thetaC := 0.0
	thetaNu := thetaG * (23.0 + 4.0*rnu) / (15.0 + 4.0*rnu)
	sigmaNu := 4.0 * c / (3.0 * (15.0 + 4.0*rnu)) * kt2

	if m.p.Gauge == Synchronous {
		y[m.ieta] = eta
		y[m.ih] = h
		y[m.ihd] = hdot
	} else {
		// Gauge shift alpha = (h-dot + 6 eta-dot)/(2 k^2); transform with
		// the tabulated (not pure-radiation) conformal Hubble rate.
		hc := m.BG.HConf(a)
		alpha := (hdot + 6.0*etadot) / (2.0 * m.k2)
		y[m.iphi] = eta - hc*alpha
		deltaG -= 4.0 * hc * alpha
		deltaNu -= 4.0 * hc * alpha
		deltaC -= 3.0 * hc * alpha
		deltaB -= 3.0 * hc * alpha
		thetaG += m.k2 * alpha
		thetaB += m.k2 * alpha
		thetaNu += m.k2 * alpha
		thetaC += m.k2 * alpha
		y[m.itc] = thetaC
	}

	y[m.idc] = deltaC
	y[m.idb] = deltaB
	y[m.itb] = thetaB

	// Photons: monopole and dipole only (higher moments are Thomson
	// suppressed; polarization vanishes in tight coupling).
	y[m.ifg] = deltaG
	y[m.ifg+1] = 4.0 / (3.0 * k) * thetaG

	// Massless neutrinos.
	y[m.ifn] = deltaNu
	y[m.ifn+1] = 4.0 / (3.0 * k) * thetaNu
	y[m.ifn+2] = 2.0 * sigmaNu

	// Massive neutrinos: Psi_l from the fluid moments via dln f0/dln q.
	for iq := 0; iq < m.nq; iq++ {
		q := m.BG.Q[iq]
		df := m.BG.DlnF0DlnQ[iq]
		am := a * m.BG.MassQ
		eps := math.Sqrt(q*q + am*am)
		base := m.ipsn + iq*(m.lnu+1)
		y[base] = -0.25 * deltaNu * df
		y[base+1] = -eps / (3.0 * q * k) * thetaNu * df
		y[base+2] = -0.5 * sigmaNu * df
	}
}

// tcaHolds reports whether the tight-coupling regime criteria hold at a.
func (m *mode) tcaHolds(a float64) bool {
	kd := m.TH.Opacity(a)
	if kd < m.p.TCAFactor*m.k {
		return false
	}
	if kd < m.p.TCAFactor*m.BG.HConf(a) {
		return false
	}
	// Safety: stay well before last scattering.
	return m.TH.OpticalDepth(a) > 20.0
}

// findTCASwitch bisects for the conformal time at which tight coupling
// first fails.
func (m *mode) findTCASwitch(tauStart, tauEnd float64) float64 {
	lo, hi := tauStart, tauEnd
	if m.tcaHolds(m.BG.AofTau(hi)) {
		return hi // never fails (cannot happen in practice: opacity dies)
	}
	for iter := 0; iter < 200 && hi-lo > 1e-10*hi; iter++ {
		mid := 0.5 * (lo + hi)
		if m.tcaHolds(m.BG.AofTau(mid)) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// releaseTightCoupling performs the hand-off state surgery: the quadrupole
// and polarization moments take their first-order tight-coupling values.
func (m *mode) releaseTightCoupling(tau float64, y []float64) {
	a := y[m.ia]
	kd := m.TH.Opacity(a)
	if kd <= 0 {
		return
	}
	tc := 1.0 / kd
	thetaG := 0.75 * m.k * y[m.ifg+1]
	shearSource := thetaG
	if m.p.Gauge == Synchronous {
		// s = (h-dot + 6 eta-dot)/2 enters the l=2 source in this gauge.
		etaDot := m.etaDotAt(tau, y)
		shearSource += 0.5*y[m.ihd] + 3.0*etaDot
	}
	fg2 := 32.0 / 45.0 * tc * shearSource
	y[m.ifg+2] = fg2
	y[m.igg] = 1.25 * fg2
	y[m.igg+2] = 0.25 * fg2
}

// etaDotAt evaluates eta-dot = g_theta/(2 k^2) from the current state.
func (m *mode) etaDotAt(tau float64, y []float64) float64 {
	var s sums
	m.gatherSums(tau, y, &s)
	return 0.5 * s.gtheta / m.k2
}

// pack fills the Result from the final state.
func (m *mode) pack(tau float64, y []float64, res *Result) {
	L := m.p.LMax + 1
	res.Tau = tau
	res.A = y[m.ia]
	res.ThetaL = make([]float64, L)
	res.ThetaPL = make([]float64, L)
	for l := 0; l < L; l++ {
		res.ThetaL[l] = 0.25 * y[m.ifg+l]
		res.ThetaPL[l] = 0.25 * y[m.igg+l]
	}
	res.DeltaC = y[m.idc]
	res.DeltaB = y[m.idb]
	res.DeltaG = y[m.ifg]
	res.DeltaNu = y[m.ifn]
	res.ThetaB = y[m.itb]
	if m.p.Gauge == ConformalNewtonian {
		res.ThetaC = y[m.itc]
		var s sums
		m.gatherSums(tau, y, &s)
		res.Phi = y[m.iphi]
		res.Psi = y[m.iphi] - 1.5*s.gshear/m.k2
	} else {
		res.Eta = y[m.ieta]
		res.HDot = y[m.ihd]
	}
	if m.nq > 0 {
		// Massive neutrino density contrast from the Psi_0 integral.
		var num, den float64
		am := y[m.ia] * m.BG.MassQ
		for iq := 0; iq < m.nq; iq++ {
			q := m.BG.Q[iq]
			eps := math.Sqrt(q*q + am*am)
			num += m.BG.W[iq] * eps * y[m.ipsn+iq*(m.lnu+1)]
			den += m.BG.W[iq] * eps
		}
		if den != 0 {
			res.DeltaHNu = num / den
		}
	}
}
