package core

import (
	"fmt"
	"math"
	"time"

	"plinger/internal/cosmology"
	"plinger/internal/ode"
)

// mode is the in-flight state of one k evolution.
type mode struct {
	*Model
	p  Params
	k  float64
	k2 float64

	// lmax is the active photon/polarization/massless-neutrino hierarchy
	// cutoff. The reference path fixes it at p.LMax; the fast engine
	// starts it small and grows it with k*tau (see growHierarchy).
	lmax int
	// grow marks growth as enabled and not yet complete.
	grow bool
	// shrinkAt, when positive, is the conformal time at which the
	// hierarchies collapse to shrinkLMax (see shrinkHierarchy).
	shrinkAt float64
	// tab, when non-nil, replaces the spline lookups in gatherSums with
	// the model's flattened evaluation tables; tt receives the
	// thermodynamic fields of the latest lookup.
	tab *EvalTables
	tt  tabThermo
	// bgCache, when non-nil, is the lockstep batch's shared background
	// point: gatherSums uses it instead of its own lookup whenever the
	// cached scale factor matches the state's bitwise (see batch.fillBG).
	bgCache *bgPoint

	// state layout
	nvar int
	ia   int // scale factor
	idc  int // delta_c
	itc  int // theta_c (Newtonian only; -1 in synchronous)
	idb  int // delta_b
	itb  int // theta_b
	iphi int // phi (Newtonian; -1 otherwise)
	ieta int // eta (synchronous; -1 otherwise)
	ih   int // h
	ihd  int // h-dot
	ifg  int // photon temperature F_l, l = 0..lmax
	igg  int // photon polarization G_l
	ifn  int // massless neutrino F_l
	ipsn int // massive neutrino Psi(q, l), q-major

	nq  int
	lnu int

	// rA[l] = l/(2l+1), rB[l] = (l+1)/(2l+1): the free-streaming
	// recurrence ratios, precomputed so the hierarchy loops run without
	// per-moment divisions.
	rA, rB []float64

	// srcCap, when h > 0, caps the integrator step inside [lo, hi] — the
	// visibility window of a source-recording run (see Evolve); base is
	// the integrator's own MaxStep, restored outside the window.
	srcCap struct{ lo, hi, h, base float64 }
	// ad is the adaptive integrator when one is driving the run (the step
	// cap needs to adjust its MaxStep across segments).
	ad *ode.Adaptive

	tca bool // current right-hand-side regime

	// flops accumulates the operation-count model per integration segment,
	// so a growing/shrinking run is billed for the hierarchy it actually
	// carried (see FlopsPerRHS).
	flops float64

	maxResidual float64
	sources     []Sample

	scratch cosmology.Grho

	// sc is the owning evolution arena: the state vector, resize buffers
	// and ratio tables are borrowed from it (Evolve makes a private one
	// when the caller supplies none).
	sc *Scratch
}

// Growth schedule of the fast engine's hierarchy truncation. Moments above
// l ~ k*tau carry no power yet (the free-streaming solution is j_l(k*tau),
// negligible until its turning point), so the active cutoff tracks k*tau
// with a safety margin: growRate sets the slope, growBuffer how many
// moments beyond the causally filled ones stay active (absorbing the
// truncation-closure reflection before it reaches the sourced low l), and
// growFloor the smallest hierarchy ever evolved. Growth happens in chunks
// (growHierarchy) so a mode pays O(log LMax) re-layouts, not O(LMax).
const (
	growRate   = 1.4
	growBuffer = 10
	growFloor  = 8
)

// Late-time hierarchy shrink (fast engine, source-recording runs only).
// Once the photon + massless-neutrino share of the background drops below
// radShrinkEps, the radiation hierarchies can only move the metric — and
// hence the surviving ISW source — at that fractional level times their
// own truncation error, far below the 1e-3 engine budget; shrinkLMax
// moments under the free-streaming closure keep the low moments (which
// feed the Einstein sums) to the accuracy that still matters.
const (
	radShrinkEps = 1e-2
	shrinkLMax   = 6
)

// Source-recording step cap. The line-of-sight sources are linearly
// interpolated from the accepted steps, and through the narrow visibility
// peak the error controller would happily take steps far wider than the
// peak itself: on slow superhorizon modes the recorded g(tau)-weighted
// sources then carry percent-level resampling error, several orders above
// the integrator tolerance, and any change of step policy moves C_l at low
// l by that amount. A KeepSources run therefore caps the step inside the
// visibility window (matching the dense segment of the LOS quadrature
// grid) so the sampling density is set by the physics, not the controller.
const (
	srcCapBefore = 120.0 // window start: tauRec - srcCapBefore
	srcCapAfter  = 180.0 // window end: tauRec + srcCapAfter
	srcCapStep   = 3.0   // max step inside the window (Mpc)
	// srcCapLate bounds the step over the free-streaming/ISW era as a
	// fraction of the remaining range, keeping the slowly varying late
	// sources resolved without affecting oscillation-limited modes.
	srcCapLate = 1.0 / 40.0
)

// Evolve integrates one k mode to completion with a private arena; sweep
// workers that evolve many modes should hold a Scratch and call EvolveWith
// instead, which reuses every per-mode buffer across calls.
func (mdl *Model) Evolve(p Params) (*Result, error) {
	return mdl.EvolveWith(p, nil)
}

// EvolveWith integrates one k mode to completion using the caller's arena
// (nil: a private one). Results are bitwise-independent of the scratch —
// a reused arena produces exactly the trajectory a fresh one does — and
// never alias it, so they stay valid after the arena's next mode. The
// scratch must not be used concurrently.
func (mdl *Model) EvolveWith(p Params, sc *Scratch) (*Result, error) {
	p.setDefaults()
	if p.K <= 0 {
		return nil, fmt.Errorf("core: k = %g must be positive", p.K)
	}
	if p.TauEnd <= 0 {
		p.TauEnd = mdl.BG.Tau0()
	}
	if p.TauEnd > mdl.BG.Tau0()*1.0000001 {
		return nil, fmt.Errorf("core: TauEnd = %g beyond the present %g", p.TauEnd, mdl.BG.Tau0())
	}
	if sc == nil {
		sc = &Scratch{}
	}

	m := &sc.m
	*m = mode{Model: mdl, p: p, k: p.K, k2: p.K * p.K, sc: sc, rA: sc.rA, rB: sc.rB}
	if sc.rhsf == nil {
		sc.rhsf = m.rhs
		sc.onRecord = m.record
		sc.onMonitor = m.monitor
	}
	if p.FastEvolve && !p.noTables {
		// Shared per-model tables; sweeps prebuild them in parallel via
		// the dispatcher, a cold single mode builds serially here.
		m.tab = mdl.EnsureEvalTables(nil)
	}

	tauStart := m.startTime()
	if tauStart >= p.TauEnd {
		return nil, fmt.Errorf("core: start time %g is not before end time %g (k=%g)", tauStart, p.TauEnd, p.K)
	}
	m.lmax = p.LMax
	if p.FastEvolve && !p.noGrowLMax {
		m.grow = true
		m.lmax = m.initialLMax(tauStart)
	}
	m.layout()
	y := sc.stateBuf(m.nvar, m.maxNvar())
	m.initialConditions(tauStart, y)
	if p.KeepSources {
		// A typical source-recording run accepts several hundred steps;
		// start the slice large enough that append doubles at most once.
		// The samples are the mode's product — they outlive the arena's
		// next mode, so they are allocated fresh rather than pooled.
		m.sources = make([]Sample, 0, 1024)
	}

	integ := p.Integrator
	if integ == nil {
		dv := sc.integrator(p.RTol, p.ATol)
		dv.InitialStep = tauStart * 1e-3
		// The driver integrates in segments (tight-coupling switch,
		// visibility window, hierarchy growth); carrying the controller
		// step across them avoids a fresh ramp-up from the tiny initial
		// step at every boundary.
		dv.CarryStep = true
		if p.FastEvolve && !p.noPI {
			dv.PI = true
		}
		integ = dv
	}
	if p.KeepSources {
		// Source fidelity: cap the step through the visibility window (and
		// loosely beyond it) so the recorded samples resolve the peak. The
		// integrator's own MaxStep is restored on every exit path — a
		// caller-supplied Adaptive must not come back polluted with the
		// window cap.
		if ad, ok := integ.(*ode.Adaptive); ok {
			m.ad = ad
			tauRec := mdl.TH.TauRec()
			m.srcCap.lo = tauRec - srcCapBefore
			m.srcCap.hi = tauRec + srcCapAfter
			m.srcCap.h = srcCapStep
			m.srcCap.base = ad.MaxStep
			defer func() { ad.MaxStep = m.srcCap.base }()
		}
	}
	if p.FastEvolve && p.KeepSources && !p.noGrowLMax {
		// Late-time collapse: a source-recording run stops carrying the
		// full hierarchies once radiation is dynamically negligible. A
		// brute run (no KeepSources) keeps them — its product IS the
		// final-time moments.
		if t := m.shrinkTime(); t < p.TauEnd {
			m.shrinkAt = t
		}
	}
	if obs, ok := integ.(ode.StepObserver); ok {
		if p.KeepSources {
			obs.SetOnStep(sc.onRecord)
		} else {
			// Still monitor the constraint without storing samples.
			obs.SetOnStep(sc.onMonitor)
		}
	} else if p.KeepSources {
		// Without the observer the sources would silently stay empty.
		return nil, fmt.Errorf("core: KeepSources requires an integrator implementing ode.StepObserver (%s does not)", integ.Name())
	}

	res := &Result{K: p.K, Gauge: p.Gauge, LMax: p.LMax}
	start := time.Now()

	var stats ode.Stats
	var err error

	// Phase 1: tight coupling, if applicable.
	m.tca = !p.DisableTightCoupling && m.tcaHolds(m.BG.AofTau(tauStart))
	tau := tauStart
	if m.tca {
		tauSwitch := m.findTCASwitch(tauStart, p.TauEnd)
		if tauSwitch > tauStart {
			tau, y, err = m.integrateSpan(integ, tau, tauSwitch, y, &stats)
			if err != nil {
				return nil, fmt.Errorf("core: tight-coupling phase (k=%g): %w", p.K, err)
			}
			res.TauSwitch = tauSwitch
		}
		m.releaseTightCoupling(tau, y)
		m.tca = false
	}

	// Phase 2: full equations to the end.
	_, y, err = m.integrateSpan(integ, tau, p.TauEnd, y, &stats)
	if err != nil {
		return nil, fmt.Errorf("core: full phase (k=%g): %w", p.K, err)
	}

	res.Seconds = time.Since(start).Seconds()
	res.Stats = stats
	// Billed per segment at the active hierarchy size, so the fast
	// engine's growing/shrinking runs report the work they actually did.
	res.Flops = m.flops
	m.pack(p.TauEnd, y, res)
	res.MaxConstraintResidual = m.maxResidual
	res.Sources = m.sources
	return res, nil
}

// integrateSpan advances the state from tau to tEnd, stopping at every
// planned hierarchy-resize time (growth with k*tau; the late-time shrink)
// to re-layout the state vector, and at the visibility-window edges to
// switch the source-sampling step cap. With resizing and source capping
// disabled it is a single Integrate call.
func (m *mode) integrateSpan(integ ode.Integrator, tau, tEnd float64, y []float64, stats *ode.Stats) (float64, []float64, error) {
	const (
		actNone = iota
		actGrow
		actShrink
	)
	for {
		next := tEnd
		action := actNone
		if m.grow {
			if tg := m.nextGrowTau(); tg < next {
				if tg < tau {
					tg = tau
				}
				next = tg
				action = actGrow
			}
		}
		if m.shrinkAt > 0 && tau < m.shrinkAt && m.shrinkAt < next {
			next = m.shrinkAt
			action = actShrink
		}
		if m.srcCap.h > 0 {
			cap := func(h float64) float64 {
				if m.srcCap.base > 0 && m.srcCap.base < h {
					return m.srcCap.base
				}
				return h
			}
			switch {
			case tau < m.srcCap.lo:
				m.ad.MaxStep = m.srcCap.base
				if m.srcCap.lo < next {
					next = m.srcCap.lo
					action = actNone
				}
			case tau < m.srcCap.hi:
				m.ad.MaxStep = cap(m.srcCap.h)
				if m.srcCap.hi < next {
					next = m.srcCap.hi
					action = actNone
				}
			default:
				m.ad.MaxStep = cap((m.p.TauEnd - m.srcCap.hi) * srcCapLate)
			}
		}
		st, err := integ.Integrate(m.sc.rhsf, tau, next, y)
		stats.Add(st)
		m.flops += float64(st.Evals) * FlopsPerRHS(m.lmax, m.lnu, m.nq, m.p.Gauge)
		if err != nil {
			return tau, y, err
		}
		tau = next
		if tau >= tEnd {
			return tau, y, nil
		}
		switch action {
		case actGrow:
			y = m.growHierarchy(tau, y)
		case actShrink:
			y = m.shrinkHierarchy(y)
		}
	}
}

// neededLMax is the smallest safe active cutoff at conformal time tau.
func (m *mode) neededLMax(tau float64) int {
	n := int(growRate*m.k*tau) + growBuffer
	if n > m.p.LMax {
		n = m.p.LMax
	}
	return n
}

// initialLMax picks the starting hierarchy size of a growing run.
func (m *mode) initialLMax(tau float64) int {
	l := m.neededLMax(tau)
	if l < growFloor {
		l = growFloor
	}
	if l > m.p.LMax {
		l = m.p.LMax
	}
	return l
}

// nextGrowTau returns the conformal time at which the active cutoff stops
// being safe (+Inf effectively once growth has completed).
func (m *mode) nextGrowTau() float64 {
	if m.lmax >= m.p.LMax {
		m.grow = false
		return math.Inf(1)
	}
	return float64(m.lmax-growBuffer+1) / (growRate * m.k)
}

// growHierarchy re-layouts the state vector for a larger active cutoff:
// evolved moments are copied over, newly activated moments seeded at zero
// (they carry no power yet — that is the premise of the truncation), and
// the truncation-boundary closure continues at the new last moment.
func (m *mode) growHierarchy(tau float64, y []float64) []float64 {
	lNew := m.neededLMax(tau) + max(8, m.lmax/3)
	if lNew > m.p.LMax {
		lNew = m.p.LMax
	}
	if lNew <= m.lmax {
		lNew = m.lmax + 1 // cannot happen: growth times precede need
	}
	return m.resize(lNew, y)
}

// shrinkHierarchy is the late-time counterpart of growHierarchy: once
// radiation is dynamically negligible and the visibility window is over,
// a source-recording run only needs the metric (for the integrated
// Sachs-Wolfe term), which the radiation hierarchies influence at the
// level of the tiny radiation fraction itself. The hierarchies collapse to
// shrinkLMax moments under the usual free-streaming closure — exact for
// the post-recombination streaming solution — so the bulk of the state
// vector disappears from every remaining step. The moments above the cut
// are dropped for good (growth stays off); pack zero-fills them, which
// only a KeepSources consumer never reads.
func (m *mode) shrinkHierarchy(y []float64) []float64 {
	m.shrinkAt = 0
	m.grow = false
	if m.lmax <= shrinkLMax {
		return y
	}
	return m.resize(shrinkLMax, y)
}

// maxNvar is the state-vector size the mode would have at the full
// hierarchy cutoff p.LMax — the capacity hint that lets the arena reserve
// one buffer covering every future growth event.
func (m *mode) maxNvar() int {
	return m.nvar + 3*(m.p.LMax-m.lmax)
}

// resize re-layouts the state vector for a new active cutoff, copying the
// surviving moments (growth seeds new moments at zero; shrinking drops the
// tail). The target buffer comes from the arena's alternate slot, so the
// old state stays readable during the copy-over and no resize allocates
// once the arena is warm.
func (m *mode) resize(lNew int, y []float64) []float64 {
	keep := min(lNew, m.lmax) + 1
	oldIfg, oldIgg, oldIfn, oldIpsn := m.ifg, m.igg, m.ifn, m.ipsn
	m.lmax = lNew
	m.layout()
	ny := m.sc.resizeBuf(m.nvar, m.maxNvar())
	copy(ny[:oldIfg], y[:oldIfg]) // fluid + metric block: indices unchanged
	copy(ny[m.ifg:m.ifg+keep], y[oldIfg:oldIfg+keep])
	copy(ny[m.igg:m.igg+keep], y[oldIgg:oldIgg+keep])
	copy(ny[m.ifn:m.ifn+keep], y[oldIfn:oldIfn+keep])
	copy(ny[m.ipsn:m.ipsn+m.nq*(m.lnu+1)], y[oldIpsn:oldIpsn+m.nq*(m.lnu+1)])
	return ny
}

// shrinkTime returns the conformal time after which the hierarchies may
// collapse: the photon + massless-neutrino share of the background falls
// below radShrinkEps (bisected on the tabulated background), and the
// visibility window of a recording run is over.
func (m *mode) shrinkTime() float64 {
	var g cosmology.Grho
	frac := func(a float64) float64 {
		m.BG.Eval(a, &g)
		return (g.G + g.Nu) / g.Total
	}
	if frac(1.0) > radShrinkEps {
		return math.Inf(1) // radiation never negligible (toy cosmologies)
	}
	lo, hi := 1e-6, 1.0
	for i := 0; i < 60 && hi-lo > 1e-9; i++ {
		mid := math.Sqrt(lo * hi)
		if frac(mid) > radShrinkEps {
			lo = mid
		} else {
			hi = mid
		}
	}
	t := m.BG.Tau(hi)
	if m.srcCap.h > 0 && t < m.srcCap.hi {
		t = m.srcCap.hi
	}
	return t
}

// layout assigns state-vector indices for the active cutoff m.lmax.
func (m *mode) layout() {
	if m.BG.P.NNuMassive > 0 {
		m.nq = len(m.BG.Q)
		m.lnu = m.p.LMaxNu
	}
	L := m.lmax + 1
	i := 0
	alloc := func(n int) int { j := i; i += n; return j }
	m.ia = alloc(1)
	m.idc = alloc(1)
	if m.p.Gauge == ConformalNewtonian {
		m.itc = alloc(1)
	} else {
		m.itc = -1
	}
	m.idb = alloc(1)
	m.itb = alloc(1)
	if m.p.Gauge == ConformalNewtonian {
		m.iphi = alloc(1)
		m.ieta, m.ih, m.ihd = -1, -1, -1
	} else {
		m.iphi = -1
		m.ieta = alloc(1)
		m.ih = alloc(1)
		m.ihd = alloc(1)
	}
	m.ifg = alloc(L)
	m.igg = alloc(L)
	m.ifn = alloc(L)
	m.ipsn = alloc(m.nq * (m.lnu + 1))
	m.nvar = i

	nr := m.lmax + 1
	if m.lnu+1 > nr {
		nr = m.lnu + 1
	}
	if len(m.rA) < nr {
		m.rA = make([]float64, nr)
		m.rB = make([]float64, nr)
		for l := 0; l < nr; l++ {
			fl := float64(l)
			m.rA[l] = fl / (2.0*fl + 1.0)
			m.rB[l] = (fl + 1.0) / (2.0*fl + 1.0)
		}
		// The ratios depend only on l: hand the grown tables back to the
		// arena so every later mode (and growth event) reuses them.
		m.sc.rA, m.sc.rB = m.rA, m.rB
	}
}

// startTime picks the initial conformal time: superhorizon (k tau small),
// deep enough in the radiation era, inside the thermodynamic table, and —
// when massive neutrinos are present — while they are still relativistic.
func (m *mode) startTime() float64 {
	aCap := 1e-5
	if m.BG.P.NNuMassive > 0 {
		if amax := 1e-3 / m.BG.MassQ; amax < aCap {
			aCap = amax
		}
	}
	tau := m.p.KTauStart / m.k
	if tCap := m.BG.Tau(aCap); tau > tCap {
		tau = tCap
	}
	if tMin := m.BG.Tau(2e-8); tau < tMin {
		tau = tMin
	}
	return tau
}

// rnuFraction returns R_nu = rho_nu/(rho_gamma + rho_nu) at scale factor a
// counting all (still relativistic) neutrinos.
func (m *mode) rnuFraction(a float64) float64 {
	g := &m.scratch
	m.BG.Eval(a, g)
	return (g.Nu + g.HNu) / (g.G + g.Nu + g.HNu)
}

// initialConditions sets the adiabatic growing mode of MB95 eq. (96) with
// normalization C = 1. The conformal Newtonian state is obtained by an
// exact gauge transformation of the synchronous series using the true
// background expansion rate: the transformation absorbs the small matter
// contamination at the start time, which a pure radiation-era Newtonian
// series (MB95 eq. 98) would miss; unlike the synchronous variables, the
// Newtonian potential is O(1) on super-horizon scales, so such errors
// would persist instead of decaying.
func (m *mode) initialConditions(tau float64, y []float64) {
	a := m.BG.AofTau(tau)
	rnu := m.rnuFraction(a)
	k, kt := m.k, m.k*tau
	kt2 := kt * kt
	const c = 1.0

	y[m.ia] = a

	// Synchronous adiabatic series (MB95 eq. 96).
	h := c * kt2
	eta := 2.0*c - c*(5.0+4.0*rnu)/(6.0*(15.0+4.0*rnu))*kt2
	hdot := 2.0 * c * k * kt
	etadot := -c * (5.0 + 4.0*rnu) / (3.0 * (15.0 + 4.0*rnu)) * m.k2 * tau
	deltaG := -2.0 / 3.0 * c * kt2
	deltaNu := deltaG
	deltaC := 0.75 * deltaG
	deltaB := deltaC
	thetaG := -c / 18.0 * kt2 * kt * k
	thetaB := thetaG
	thetaC := 0.0
	thetaNu := thetaG * (23.0 + 4.0*rnu) / (15.0 + 4.0*rnu)
	sigmaNu := 4.0 * c / (3.0 * (15.0 + 4.0*rnu)) * kt2

	if m.p.Gauge == Synchronous {
		y[m.ieta] = eta
		y[m.ih] = h
		y[m.ihd] = hdot
	} else {
		// Gauge shift alpha = (h-dot + 6 eta-dot)/(2 k^2); transform with
		// the tabulated (not pure-radiation) conformal Hubble rate.
		hc := m.BG.HConf(a)
		alpha := (hdot + 6.0*etadot) / (2.0 * m.k2)
		y[m.iphi] = eta - hc*alpha
		deltaG -= 4.0 * hc * alpha
		deltaNu -= 4.0 * hc * alpha
		deltaC -= 3.0 * hc * alpha
		deltaB -= 3.0 * hc * alpha
		thetaG += m.k2 * alpha
		thetaB += m.k2 * alpha
		thetaNu += m.k2 * alpha
		thetaC += m.k2 * alpha
		y[m.itc] = thetaC
	}

	y[m.idc] = deltaC
	y[m.idb] = deltaB
	y[m.itb] = thetaB

	// Photons: monopole and dipole only (higher moments are Thomson
	// suppressed; polarization vanishes in tight coupling).
	y[m.ifg] = deltaG
	y[m.ifg+1] = 4.0 / (3.0 * k) * thetaG

	// Massless neutrinos.
	y[m.ifn] = deltaNu
	y[m.ifn+1] = 4.0 / (3.0 * k) * thetaNu
	y[m.ifn+2] = 2.0 * sigmaNu

	// Massive neutrinos: Psi_l from the fluid moments via dln f0/dln q.
	for iq := 0; iq < m.nq; iq++ {
		q := m.BG.Q[iq]
		df := m.BG.DlnF0DlnQ[iq]
		am := a * m.BG.MassQ
		eps := math.Sqrt(q*q + am*am)
		base := m.ipsn + iq*(m.lnu+1)
		y[base] = -0.25 * deltaNu * df
		y[base+1] = -eps / (3.0 * q * k) * thetaNu * df
		y[base+2] = -0.5 * sigmaNu * df
	}
}

// tcaHolds reports whether the tight-coupling regime criteria hold at a.
func (m *mode) tcaHolds(a float64) bool {
	kd := m.TH.Opacity(a)
	if kd < m.p.TCAFactor*m.k {
		return false
	}
	if kd < m.p.TCAFactor*m.BG.HConf(a) {
		return false
	}
	// Safety: stay well before last scattering.
	return m.TH.OpticalDepth(a) > 20.0
}

// findTCASwitch bisects for the conformal time at which tight coupling
// first fails.
func (m *mode) findTCASwitch(tauStart, tauEnd float64) float64 {
	lo, hi := tauStart, tauEnd
	if m.tcaHolds(m.BG.AofTau(hi)) {
		return hi // never fails (cannot happen in practice: opacity dies)
	}
	for iter := 0; iter < 200 && hi-lo > 1e-10*hi; iter++ {
		mid := 0.5 * (lo + hi)
		if m.tcaHolds(m.BG.AofTau(mid)) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// releaseTightCoupling performs the hand-off state surgery: the quadrupole
// and polarization moments take their first-order tight-coupling values.
func (m *mode) releaseTightCoupling(tau float64, y []float64) {
	a := y[m.ia]
	kd := m.TH.Opacity(a)
	if kd <= 0 {
		return
	}
	tc := 1.0 / kd
	thetaG := 0.75 * m.k * y[m.ifg+1]
	shearSource := thetaG
	if m.p.Gauge == Synchronous {
		// s = (h-dot + 6 eta-dot)/2 enters the l=2 source in this gauge.
		etaDot := m.etaDotAt(tau, y)
		shearSource += 0.5*y[m.ihd] + 3.0*etaDot
	}
	fg2 := 32.0 / 45.0 * tc * shearSource
	y[m.ifg+2] = fg2
	y[m.igg] = 1.25 * fg2
	y[m.igg+2] = 0.25 * fg2
}

// etaDotAt evaluates eta-dot = g_theta/(2 k^2) from the current state.
func (m *mode) etaDotAt(tau float64, y []float64) float64 {
	var s sums
	m.gatherSums(tau, y, &s)
	return 0.5 * s.gtheta / m.k2
}

// pack fills the Result from the final state.
func (m *mode) pack(tau float64, y []float64, res *Result) {
	L := m.p.LMax + 1
	res.Tau = tau
	res.A = y[m.ia]
	res.ThetaL = make([]float64, L)
	res.ThetaPL = make([]float64, L)
	// A growing run may finish with m.lmax < p.LMax when k tau0 never
	// reached the requested cutoff; the moments beyond the active cutoff
	// are exactly the ones with no power, and stay zero.
	for l := 0; l <= m.lmax; l++ {
		res.ThetaL[l] = 0.25 * y[m.ifg+l]
		res.ThetaPL[l] = 0.25 * y[m.igg+l]
	}
	res.DeltaC = y[m.idc]
	res.DeltaB = y[m.idb]
	res.DeltaG = y[m.ifg]
	res.DeltaNu = y[m.ifn]
	res.ThetaB = y[m.itb]
	if m.p.Gauge == ConformalNewtonian {
		res.ThetaC = y[m.itc]
		var s sums
		m.gatherSums(tau, y, &s)
		res.Phi = y[m.iphi]
		res.Psi = y[m.iphi] - 1.5*s.gshear/m.k2
	} else {
		res.Eta = y[m.ieta]
		res.HDot = y[m.ihd]
	}
	if m.nq > 0 {
		// Massive neutrino density contrast from the Psi_0 integral.
		var num, den float64
		am := y[m.ia] * m.BG.MassQ
		for iq := 0; iq < m.nq; iq++ {
			q := m.BG.Q[iq]
			eps := math.Sqrt(q*q + am*am)
			num += m.BG.W[iq] * eps * y[m.ipsn+iq*(m.lnu+1)]
			den += m.BG.W[iq] * eps
		}
		if den != 0 {
			res.DeltaHNu = num / den
		}
	}
}
