package core

// Property tests of the fast evolution engine: growth hand-off integrity,
// bitwise equivalence of the driver when every fast ingredient is switched
// off, accuracy of the full engine against the reference path, and the
// work ablation at equal tolerance.

import (
	"math"
	"testing"

	"plinger/internal/cosmology"
	"plinger/internal/ode"
	"plinger/internal/recomb"
	"plinger/internal/thermo"
)

// TestFastEvolveDisabledBitwise: with growth, tables and PI all switched
// off, the fast-engine flag must be a pure no-op — the segmented driver
// takes exactly the reference path, bitwise.
func TestFastEvolveDisabledBitwise(t *testing.T) {
	m := model(t)
	for _, gauge := range []Gauge{Synchronous, ConformalNewtonian} {
		ref := Params{K: 0.04, LMax: 16, Gauge: gauge, KeepSources: true}
		off := ref
		off.FastEvolve = true
		off.noGrowLMax, off.noTables, off.noPI = true, true, true
		a, err := m.Evolve(ref)
		if err != nil {
			t.Fatal(err)
		}
		b, err := m.Evolve(off)
		if err != nil {
			t.Fatal(err)
		}
		if a.Stats != b.Stats {
			t.Fatalf("%v: stats differ: %+v vs %+v", gauge, a.Stats, b.Stats)
		}
		for l := range a.ThetaL {
			if a.ThetaL[l] != b.ThetaL[l] || a.ThetaPL[l] != b.ThetaPL[l] {
				t.Fatalf("%v: moment l=%d differs bitwise: %g vs %g", gauge, l, a.ThetaL[l], b.ThetaL[l])
			}
		}
		if a.DeltaC != b.DeltaC || a.DeltaB != b.DeltaB || a.Eta != b.Eta || a.Phi != b.Phi {
			t.Fatalf("%v: fluid/metric state differs bitwise", gauge)
		}
		if len(a.Sources) != len(b.Sources) {
			t.Fatalf("%v: %d vs %d source samples", gauge, len(a.Sources), len(b.Sources))
		}
		for i := range a.Sources {
			if a.Sources[i] != b.Sources[i] {
				t.Fatalf("%v: source sample %d differs bitwise", gauge, i)
			}
		}
	}
}

// TestGrowHierarchyHandOff exercises the state-vector re-layout directly:
// every evolved moment must land at its new index unchanged, newly
// activated moments must be zero, and the pre-hierarchy block must be
// untouched.
func TestGrowHierarchyHandOff(t *testing.T) {
	mdl := model(t)
	p := Params{K: 0.1, LMax: 24, Gauge: Synchronous}
	p.setDefaults()
	m := &mode{Model: mdl, p: p, k: p.K, k2: p.K * p.K, sc: NewScratch()}
	m.lmax = 8
	m.layout()
	y := make([]float64, m.nvar)
	for i := range y {
		y[i] = float64(i + 1) // distinct, nonzero
	}
	oldIfg, oldIgg, oldIfn := m.ifg, m.igg, m.ifn
	old := append([]float64(nil), y...)

	ny := m.resize(13, y)
	if m.lmax != 13 {
		t.Fatalf("lmax = %d after resize, want 13", m.lmax)
	}
	if m.nvar != len(ny) {
		t.Fatalf("nvar %d != len %d", m.nvar, len(ny))
	}
	for i := 0; i < oldIfg; i++ {
		if ny[i] != old[i] {
			t.Fatalf("fluid/metric entry %d changed: %g vs %g", i, ny[i], old[i])
		}
	}
	blocks := [][2]int{{oldIfg, m.ifg}, {oldIgg, m.igg}, {oldIfn, m.ifn}}
	for b, idx := range blocks {
		for l := 0; l <= 8; l++ {
			if ny[idx[1]+l] != old[idx[0]+l] {
				t.Fatalf("block %d moment l=%d not copied", b, l)
			}
		}
		for l := 9; l <= 13; l++ {
			if ny[idx[1]+l] != 0 {
				t.Fatalf("block %d new moment l=%d = %g, want 0", b, l, ny[idx[1]+l])
			}
		}
	}

	// Shrinking back must keep the surviving moments and the fluid block.
	sy := m.resize(shrinkLMax, ny)
	for i := 0; i < oldIfg; i++ {
		if sy[i] != old[i] {
			t.Fatalf("fluid/metric entry %d changed by shrink", i)
		}
	}
	for l := 0; l <= shrinkLMax; l++ {
		if sy[m.ifg+l] != old[oldIfg+l] {
			t.Fatalf("shrunk moment l=%d not preserved", l)
		}
	}
}

// TestFastEvolveMatchesReference: the full fast engine must track the
// reference path closely on the quantities the spectra consume — the
// final-time multipoles of a brute-style run and the matter perturbations
// — at equal tolerance.
func TestFastEvolveMatchesReference(t *testing.T) {
	m := model(t)
	for _, tc := range []struct {
		k    float64
		lmax int
	}{{0.02, 24}, {0.08, 60}} {
		ref := Params{K: tc.k, LMax: tc.lmax, Gauge: Synchronous}
		fast := ref
		fast.FastEvolve = true
		a, err := m.Evolve(ref)
		if err != nil {
			t.Fatal(err)
		}
		b, err := m.Evolve(fast)
		if err != nil {
			t.Fatal(err)
		}
		scale := 0.0
		for _, v := range a.ThetaL {
			if x := math.Abs(v); x > scale {
				scale = x
			}
		}
		for l := range a.ThetaL {
			if d := math.Abs(a.ThetaL[l] - b.ThetaL[l]); d > 1e-4*scale {
				t.Fatalf("k=%g l=%d: fast %g vs ref %g (scale %g)", tc.k, l, b.ThetaL[l], a.ThetaL[l], scale)
			}
		}
		if d := math.Abs(a.DeltaC-b.DeltaC) / math.Abs(a.DeltaC); d > 1e-4 {
			t.Fatalf("k=%g: DeltaC rel diff %g", tc.k, d)
		}
	}
}

// TestFastEvolveWorkAblation: at equal tolerance the fast engine must do
// materially less right-hand-side work than the fixed-hierarchy run. The
// raw evaluation count stays comparable (steps are limited by the
// free-streaming oscillation, not the state width), so the honest metrics
// are the modeled flop count — billed per segment at the active hierarchy
// size — and the rejected-step fraction the PI controller is there to cut.
func TestFastEvolveWorkAblation(t *testing.T) {
	m := model(t)
	ref := Params{K: 0.08, LMax: 60, Gauge: ConformalNewtonian, KeepSources: true}
	fast := ref
	fast.FastEvolve = true
	a, err := m.Evolve(ref)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Evolve(fast)
	if err != nil {
		t.Fatal(err)
	}
	if b.Flops >= 0.6*a.Flops {
		t.Fatalf("fast engine flops %g not below 0.6x reference %g", b.Flops, a.Flops)
	}
	if a.Stats.Rejected > 10 && b.Stats.Rejected > a.Stats.Rejected/2 {
		t.Fatalf("PI controller rejected %d of %d steps, reference %d of %d",
			b.Stats.Rejected, b.Stats.Steps, a.Stats.Rejected, a.Stats.Steps)
	}
}

// TestFastEvolveMDM: the fast engine composes with massive neutrinos (the
// momentum-dependent hierarchy stays at full resolution; tables carry the
// massive-neutrino background factors).
func TestFastEvolveMDM(t *testing.T) {
	if testing.Short() {
		t.Skip("MDM substrate build is slow")
	}
	bg, err := cosmology.NewFlattened(cosmology.MDM(4.0))
	if err != nil {
		t.Fatal(err)
	}
	th, err := thermo.New(bg, recomb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel(bg, th)
	ref := Params{K: 0.03, LMax: 20, Gauge: Synchronous}
	fast := ref
	fast.FastEvolve = true
	a, err := m.Evolve(ref)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Evolve(fast)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(a.DeltaHNu-b.DeltaHNu) / math.Abs(a.DeltaHNu); d > 1e-3 {
		t.Fatalf("massive-neutrino density contrast rel diff %g", d)
	}
	if d := math.Abs(a.DeltaC-b.DeltaC) / math.Abs(a.DeltaC); d > 1e-4 {
		t.Fatalf("DeltaC rel diff %g", d)
	}
}

// TestKeepSourcesRequiresObserver: an integrator that cannot report steps
// must be rejected when sources are requested (it would silently record
// nothing), and accepted otherwise.
func TestKeepSourcesRequiresObserver(t *testing.T) {
	m := model(t)
	p := Params{K: 0.05, LMax: 8, KeepSources: true, Integrator: blindIntegrator{}}
	if _, err := m.Evolve(p); err == nil {
		t.Fatal("KeepSources with a non-observing integrator must error")
	}
	// RK4 implements StepObserver, so sources flow even from the
	// fixed-step comparator.
	p.Integrator = ode.NewRK4(400)
	r, err := m.Evolve(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Sources) == 0 {
		t.Fatal("RK4 run recorded no sources")
	}
}

// TestSourceCapRestoresMaxStep: the visibility-window step cap must not
// leak into a caller-supplied integrator after the run.
func TestSourceCapRestoresMaxStep(t *testing.T) {
	m := model(t)
	ad := ode.NewDVERK(1e-6, 1e-12)
	ad.MaxStep = 777.0
	_, err := m.Evolve(Params{K: 0.05, LMax: 8, Gauge: ConformalNewtonian, KeepSources: true, Integrator: ad})
	if err != nil {
		t.Fatal(err)
	}
	if ad.MaxStep != 777.0 {
		t.Fatalf("caller MaxStep polluted: %g", ad.MaxStep)
	}
}

// blindIntegrator satisfies ode.Integrator but not ode.StepObserver.
type blindIntegrator struct{}

func (blindIntegrator) Integrate(f ode.Func, t0, t1 float64, y []float64) (ode.Stats, error) {
	return ode.Stats{}, nil
}
func (blindIntegrator) Name() string { return "blind" }
