package core

import (
	"math"
	"reflect"
	"testing"
)

// batchKs is an unsorted block, like the grid-index blocks the dispatchers
// hand to EvolveBatchWith (sweep grids arrive in caller order).
var batchKs = []float64{0.012, 0.004, 0.03, 0.018}

// TestBatchAgreesWithScalar pins the accuracy contract of the lockstep
// batch: the shared step controller couples the members numerically, so
// the batched trajectory tracks the per-mode one to (a modest multiple of)
// the integrator tolerance, far inside the fast engine's 1e-3 C_l budget.
func TestBatchAgreesWithScalar(t *testing.T) {
	mdl := model(t)
	p := Params{LMax: 30, Gauge: ConformalNewtonian, TauEnd: 600,
		KeepSources: true, FastEvolve: true}

	batch, err := mdl.EvolveBatchWith(batchKs, p, nil, NewScratch())
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range batchKs {
		pm := p
		pm.K = k
		ref, err := mdl.EvolveWith(pm, nil)
		if err != nil {
			t.Fatal(err)
		}
		got := batch[i]
		if got.K != k {
			t.Fatalf("member %d: K = %g, want %g", i, got.K, k)
		}
		if got.LMax != p.LMax {
			t.Fatalf("member %d: LMax = %d, want unified %d", i, got.LMax, p.LMax)
		}
		if len(got.Sources) == 0 {
			t.Fatalf("member %d: no sources recorded", i)
		}
		// Scale mixed relative/absolute per mode: the high moments pass
		// through zero, so a pure relative comparison is meaningless there.
		var scale float64
		for _, v := range ref.ThetaL {
			if a := math.Abs(v); a > scale {
				scale = a
			}
		}
		for l := range ref.ThetaL {
			if d := math.Abs(got.ThetaL[l] - ref.ThetaL[l]); d > 2e-4*scale {
				t.Errorf("k=%g l=%d: ThetaL %g vs scalar %g (|d|=%.3g, scale %.3g)",
					k, l, got.ThetaL[l], ref.ThetaL[l], d, scale)
			}
		}
		for _, c := range [][2]float64{{got.DeltaC, ref.DeltaC}, {got.DeltaB, ref.DeltaB}, {got.Phi, ref.Phi}} {
			if rel := math.Abs(c[0]-c[1]) / math.Abs(c[1]); rel > 1e-4 {
				t.Errorf("k=%g: fluid/metric relative deviation %.3g", k, rel)
			}
		}
		if got.MaxConstraintResidual > 0.05 {
			t.Errorf("k=%g: constraint residual %g", k, got.MaxConstraintResidual)
		}
	}
}

// TestBatchDeterministic pins that a reused arena reproduces a fresh one
// bitwise — the property the dispatch equivalence tests lean on.
func TestBatchDeterministic(t *testing.T) {
	mdl := model(t)
	p := Params{LMax: 24, Gauge: ConformalNewtonian, TauEnd: 500,
		KeepSources: true, FastEvolve: true}
	sc := NewScratch()
	a, err := mdl.EvolveBatchWith(batchKs, p, nil, sc)
	if err != nil {
		t.Fatal(err)
	}
	// Run an unrelated batch in between to dirty every arena buffer.
	if _, err := mdl.EvolveBatchWith([]float64{0.05, 0.07}, p, nil, sc); err != nil {
		t.Fatal(err)
	}
	bres, err := mdl.EvolveBatchWith(batchKs, p, nil, sc)
	if err != nil {
		t.Fatal(err)
	}
	c, err := mdl.EvolveBatchWith(batchKs, p, nil, NewScratch())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		a[i].Seconds, bres[i].Seconds, c[i].Seconds = 0, 0, 0
		if !reflect.DeepEqual(a[i], bres[i]) || !reflect.DeepEqual(a[i], c[i]) {
			t.Fatalf("member %d: batch results differ across arenas/reuse", i)
		}
	}
}

// TestBatchOfOneBitwiseScalar pins the delegation contract: a batch of one
// (and any batch with a caller-supplied integrator) is the scalar path.
func TestBatchOfOneBitwiseScalar(t *testing.T) {
	mdl := model(t)
	p := Params{K: 0.02, LMax: 24, Gauge: ConformalNewtonian, TauEnd: 500,
		KeepSources: true, FastEvolve: true}
	ref, err := mdl.EvolveWith(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := mdl.EvolveBatchWith([]float64{0.02}, p, nil, NewScratch())
	if err != nil {
		t.Fatal(err)
	}
	ref.Seconds, got[0].Seconds = 0, 0
	if !reflect.DeepEqual(ref, got[0]) {
		t.Fatal("batch of one is not bitwise the scalar path")
	}
}

// TestBatchPerKLMax checks the unified-cutoff semantics: the batch runs at
// the largest per-k cutoff and reports it on every member.
func TestBatchPerKLMax(t *testing.T) {
	mdl := model(t)
	p := Params{LMax: 40, Gauge: ConformalNewtonian, TauEnd: 500, FastEvolve: true}
	perk := []int{12, 0, 30, 18}
	res, err := mdl.EvolveBatchWith(batchKs, p, perk, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.LMax != 40 { // perk entry 0 means p.LMax = 40
			t.Fatalf("member %d: LMax = %d, want 40", i, r.LMax)
		}
		if len(r.ThetaL) != 41 {
			t.Fatalf("member %d: len(ThetaL) = %d", i, len(r.ThetaL))
		}
	}
}

// TestBatchErrors covers the argument contract.
func TestBatchErrors(t *testing.T) {
	mdl := model(t)
	p := Params{LMax: 16, Gauge: ConformalNewtonian}
	if _, err := mdl.EvolveBatch(nil, p); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, err := mdl.EvolveBatchWith([]float64{0.01, 0.02}, p, []int{8}, nil); err == nil {
		t.Fatal("mismatched per-k cutoffs accepted")
	}
	if _, err := mdl.EvolveBatch([]float64{0.01, -0.02}, p); err == nil {
		t.Fatal("negative k accepted")
	}
}
