package core

import "plinger/internal/ode"

// Scratch is a per-worker evolution arena: every buffer a mode evolution
// needs — the in-flight mode state, the ODE state vector and its
// hierarchy-resize ping-pong partner, the free-streaming ratio tables and
// the default integrator with its Runge-Kutta stage buffers — allocated
// once at the largest layout a worker has seen and re-sliced per mode.
// A dispatch worker that owns one Scratch and threads it through
// Model.EvolveWith runs the steady-state per-mode hot path without heap
// allocation beyond the Result it hands back (which must outlive the next
// mode), so a multi-core sweep stops feeding the garbage collector exactly
// where the paper's scaling curves need the cores to stay busy.
//
// A Scratch is NOT safe for concurrent use: it belongs to one worker
// goroutine at a time. Results returned by EvolveWith never alias the
// scratch, so they may be retained after the scratch moves on to the next
// mode. The zero value is ready to use.
type Scratch struct {
	m mode

	// state holds the ODE state vector; resize events ping-pong between
	// the two slots so the copy-over reads one while writing the other.
	state [2][]float64
	cur   int

	// rA/rB back the mode's free-streaming recurrence ratio tables; the
	// values depend only on l, so once grown they serve every mode.
	rA, rB []float64

	// dverk is the reused default integrator (built on first use).
	dverk *ode.Adaptive

	// Bound-method closures over &sc.m, created once per arena: a method
	// value like m.rhs allocates at every use site, and the right-hand
	// side is handed to the integrator once per integration segment. The
	// receiver is always the arena's own mode slot, so the closures stay
	// valid as the slot is reused mode after mode.
	rhsf      ode.Func
	onRecord  func(t float64, y []float64)
	onMonitor func(t float64, y []float64)

	// bat is the lockstep multi-k driver of EvolveBatchWith; its member
	// mode slots and closures live here for the same reuse reasons as the
	// scalar slot above. The state ping-pong, the ratio tables and the
	// pooled integrator are shared with the scalar path — an arena runs
	// either one mode or one batch at a time, never both.
	bat        batch
	brhsf      ode.Func
	bOnRecord  func(t float64, y []float64)
	bOnMonitor func(t float64, y []float64)
}

// NewScratch returns an empty arena; buffers grow on first use.
func NewScratch() *Scratch { return &Scratch{} }

// stateBuf returns the zeroed initial state vector of a new mode: n live
// entries, with capacity reserved up front for the largest layout the mode
// can grow to (capHint), so hierarchy growth re-slices instead of
// reallocating.
func (sc *Scratch) stateBuf(n, capHint int) []float64 {
	sc.cur = 0
	return sc.slot(0, n, capHint)
}

// resizeBuf returns the zeroed target buffer of a hierarchy-resize event,
// alternating slots so the previous state stays readable during copy-over.
func (sc *Scratch) resizeBuf(n, capHint int) []float64 {
	sc.cur ^= 1
	return sc.slot(sc.cur, n, capHint)
}

func (sc *Scratch) slot(i, n, capHint int) []float64 {
	if capHint < n {
		capHint = n
	}
	b := sc.state[i]
	if cap(b) < n {
		b = make([]float64, n, capHint)
		sc.state[i] = b
	}
	b = b[:n]
	clear(b)
	return b
}

// integrator returns the arena's default integrator, Reset to the state a
// fresh ode.NewDVERK would have (so reuse is bitwise-invisible).
func (sc *Scratch) integrator(rtol, atol float64) *ode.Adaptive {
	if sc.dverk == nil {
		sc.dverk = ode.NewDVERK(rtol, atol)
		return sc.dverk
	}
	sc.dverk.Reset()
	sc.dverk.RTol, sc.dverk.ATol = rtol, atol
	return sc.dverk
}
