// Package core implements the paper's central computation: for a single
// comoving wavenumber k it integrates the coupled, linearized Einstein,
// Boltzmann and fluid equations from deep in the radiation era to the
// present, following Ma & Bertschinger (1995), the companion paper of the
// SC'95 text. Photons carry a full temperature and polarization multipole
// hierarchy with Thomson scattering (including the angular and polarization
// dependence of the cross-section), massless neutrinos a collisionless
// hierarchy, and massive neutrinos the full momentum-dependent phase-space
// hierarchy with no free-streaming approximation. Baryons and cold dark
// matter evolve as fluids, with the baryons Thomson-coupled to the photons.
//
// Both gauges of the original LINGER code are provided: the synchronous
// gauge (h, eta) and the conformal Newtonian gauge (phi, psi). Temperature
// multipoles with l >= 2 are gauge-invariant, which the tests exploit as a
// strong cross-validation.
//
// Each mode is an independent initial-value problem, which is precisely the
// property the paper's master/worker parallelization exploits.
package core

import (
	"fmt"

	"plinger/internal/cosmology"
	"plinger/internal/ode"
	"plinger/internal/thermo"
)

// Gauge selects the coordinate gauge of the perturbation equations.
type Gauge int

const (
	// Synchronous is the (h, eta) gauge of MB95 section 4 — the primary
	// gauge of the original LINGER code.
	Synchronous Gauge = iota
	// ConformalNewtonian is the (phi, psi) longitudinal gauge.
	ConformalNewtonian
)

// String implements fmt.Stringer.
func (g Gauge) String() string {
	switch g {
	case Synchronous:
		return "synchronous"
	case ConformalNewtonian:
		return "conformal-newtonian"
	default:
		return fmt.Sprintf("Gauge(%d)", int(g))
	}
}

// Params configures the evolution of one k mode.
type Params struct {
	// K is the comoving wavenumber in Mpc^-1.
	K float64
	// LMax is the photon and massless-neutrino hierarchy cutoff; moments
	// l = 0..LMax are carried. The paper's production runs use up to
	// 10000; reproduce at whatever scale the machine affords.
	LMax int
	// LMaxNu is the massive-neutrino hierarchy cutoff (default 12).
	LMaxNu int
	// Gauge selects synchronous or conformal Newtonian equations.
	Gauge Gauge
	// RTol/ATol are the DVERK error tolerances (defaults 1e-6, 1e-12).
	RTol, ATol float64
	// TauEnd is the final conformal time (default: today).
	TauEnd float64
	// KTauStart sets the initial time through k*tau = KTauStart
	// (default 0.05); initial conditions are the adiabatic superhorizon
	// series of MB95 eq. (96)/(98), valid for k*tau << 1.
	KTauStart float64
	// DisableTightCoupling turns off the first-order photon-baryon
	// tight-coupling approximation at early times (it is on by default).
	// Without it the Thomson terms make the system arbitrarily stiff as
	// a -> 0, which is only useful for the ablation benchmarks.
	DisableTightCoupling bool
	// TCAFactor is the dominance factor required of the opacity:
	// tight coupling holds while kappa-dot > TCAFactor * max(k, aH)
	// (default 100).
	TCAFactor float64
	// KeepSources records the line-of-sight source samples at every
	// accepted step (used by the CMBFAST-style comparator and the psi
	// movie). It requires an integrator implementing ode.StepObserver.
	KeepSources bool
	// Integrator overrides the time integrator (default: DVERK).
	Integrator ode.Integrator
	// KBatch, when > 1, asks sweep dispatchers to evolve blocks of KBatch
	// neighbouring k modes in lockstep through EvolveBatchWith, amortizing
	// the shared background/thermodynamics lookups of every right-hand-side
	// evaluation across the block. The field is dispatch-level routing
	// state: EvolveWith itself ignores it (one mode is one mode), and a
	// value <= 1 means the ordinary per-mode path everywhere.
	KBatch int
	// FastEvolve enables the fast evolution engine: the photon,
	// polarization and massless-neutrino hierarchies start at a few
	// moments and grow with k*tau (moments are copied across each growth
	// event, newly activated ones seeded at zero, with the usual
	// last-moment free-streaming closure at the moving boundary); the
	// background and thermodynamic history come from the model's flattened
	// uniform-in-ln-a tables instead of per-call spline searches; and the
	// integrator runs PI step-size control (the controller step is carried
	// across segment boundaries on every default-integrator run). Default
	// off: the exact path is the reference. The fast path tracks it to
	// well below the 1e-3 relative C_l engine budget (see the golden
	// tests).
	FastEvolve bool

	// Ablation switches for the fast engine, used by the property tests to
	// exercise one ingredient at a time (all false: the full fast engine).
	noGrowLMax bool // fixed full-size hierarchy from the start
	noTables   bool // exact spline lookups instead of flattened tables
	noPI       bool // elementary step controller instead of PI
}

func (p *Params) setDefaults() {
	if p.LMax <= 2 {
		p.LMax = 8
	}
	if p.LMaxNu <= 2 {
		p.LMaxNu = 12
	}
	if p.RTol <= 0 {
		p.RTol = 1e-6
	}
	if p.ATol <= 0 {
		p.ATol = 1e-12
	}
	if p.KTauStart <= 0 {
		p.KTauStart = 0.05
	}
	if p.TCAFactor <= 0 {
		p.TCAFactor = 100.0
	}
}

// Sample is one recorded line-of-sight source point.
type Sample struct {
	Tau, A float64
	// Theta0 is the photon temperature monopole F_gamma0/4.
	Theta0 float64
	// Psi and Phi are the conformal Newtonian potentials (zero when the
	// run uses the synchronous gauge; Eta/HDot are then filled instead).
	Psi, Phi, PhiDot float64
	// Eta and HDot are the synchronous metric variables; EtaDot and Alpha
	// ((h-dot + 6 eta-dot)/2k^2, the gauge shift to conformal Newtonian)
	// accompany them.
	Eta, HDot, EtaDot, Alpha float64
	// VB is the baryon velocity theta_b / k.
	VB float64
	// Pi is the polarization source F_gamma2 + G_gamma0 + G_gamma2.
	Pi float64
	// Kdot is the Thomson opacity a n_e sigma_T, Kappa the optical depth
	// from Tau to today.
	Kdot, Kappa float64
	// DeltaC and DeltaB are the matter density contrasts.
	DeltaC, DeltaB float64
	// Residual is the relative Einstein-constraint violation at this step.
	Residual float64
}

// Result is the outcome of evolving one k mode — the payload the PLINGER
// worker ships back to the master.
type Result struct {
	K      float64
	Tau, A float64
	Gauge  Gauge
	LMax   int

	// ThetaL[l] = F_gamma,l / 4: the photon temperature multipole transfer
	// function (per unit MB95 normalization constant C).
	ThetaL []float64
	// ThetaPL[l] = G_gamma,l / 4: the polarization multipoles.
	ThetaPL []float64

	// Matter and radiation perturbations at TauEnd (gauge-dependent).
	DeltaC, DeltaB, DeltaG, DeltaNu, DeltaHNu float64
	ThetaC, ThetaB                            float64

	// Metric perturbations at TauEnd: (Phi, Psi) for conformal Newtonian,
	// (Eta, HDot) for synchronous.
	Phi, Psi, Eta, HDot float64

	// MaxConstraintResidual is the largest relative violation of the
	// unused Einstein constraint equation seen over the integration; it is
	// the paper's accuracy monitor.
	MaxConstraintResidual float64

	// TauSwitch is the conformal time at which tight coupling was released
	// (zero if the approximation was never used).
	TauSwitch float64

	Stats ode.Stats
	// Flops is the model operation count (see FlopsPerRHS).
	Flops float64
	// Seconds is the wallclock time of the evolution.
	Seconds float64

	// Sources holds the recorded line-of-sight samples when requested.
	Sources []Sample
}

// Model bundles the precomputed substrate shared by all k modes: the
// background cosmology, the thermodynamic history, and (built lazily on
// first fast-engine use) the flattened evaluation tables. It is read-only
// during evolution and safe for concurrent use by many workers.
type Model struct {
	BG *cosmology.Background
	TH *thermo.Thermo

	// tables caches the flattened evaluation tables (see EnsureEvalTables).
	tables *tablesState
}

// NewModel builds the shared substrate for a cosmology.
func NewModel(bg *cosmology.Background, th *thermo.Thermo) *Model {
	return &Model{BG: bg, TH: th, tables: &tablesState{}}
}

// FlopsPerRHS is the operation-count model for one right-hand-side
// evaluation. The paper quotes machine flop rates measured on the C90 and
// transfers them to other machines by comparing operation counts; this
// model plays the same role for the Gflop tables of Section 5.
func FlopsPerRHS(lmax, lmaxNu, nq int, gauge Gauge) float64 {
	l1 := float64(lmax + 1)
	base := 260.0 // background, thermodynamics, Einstein sums
	photonsT := 10.0 * l1
	photonsP := 10.0 * l1
	masslessNu := 8.0 * l1
	massive := float64(nq) * (15.0*float64(lmaxNu+1) + 12.0)
	if gauge == Synchronous {
		base += 30.0
	}
	return base + photonsT + photonsP + masslessNu + massive
}
