package core

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"plinger/internal/cosmology"
	"plinger/internal/obs"
)

// Table builds are rare (once per cached model) but expensive enough to show
// up as a cold-request latency cliff, so they get their own series.
var (
	obsTableBuilds = obs.Default.Counter("plinger_core_tablebuilds_total", "",
		"evaluation-table builds (one per model, on first use)")
	obsTableBuildSeconds = obs.Default.Histogram("plinger_core_tablebuild_seconds", "",
		"wall time of one evaluation-table build", obs.DefBuckets(), 1)
)

// The flattened evaluation tables of the fast evolution engine. Every
// right-hand-side evaluation of the reference path pays two natural logs,
// two spline binary searches and two exponentials just to look up the
// background densities, the Thomson opacity and the baryon sound speed at
// the current scale factor. The fast engine precomputes all of them — plus
// the optical depth and visibility — on one shared uniform-in-ln-a grid per
// model, so the hot loop does a single log, one direct index computation
// and one set of fused cubic interpolation weights applied to one
// cache-line-sized row (the same direct-indexing design as
// specfunc.BesselTable).
const (
	// tabLnAMin matches the tau table's deepest scale factor (a = 1e-10);
	// evolutions never start below a = 2e-8, so lookups clamp well inside.
	tabLnAMin = -23.025850929940457
	tabLnAMax = 0.0
	// tabN sets the resolution: d(ln a) ~ 5.6e-3, which keeps the cubic
	// interpolation error of even the steepest tabulated quantity (the
	// log-opacity through recombination) around 1e-6 relative — far below
	// the 1e-3 fast-engine budget — while the hot rows stay small enough
	// to live in cache next to the state vectors.
	tabN = 4096
)

// hotRow holds the quantities every right-hand-side evaluation consumes at
// one ln-a knot — exactly one 64-byte cache line, so a lookup touches four
// consecutive lines. The opacity is stored in log space: through
// recombination it falls by many e-folds across a few grid cells, and
// interpolating it linearly would lose ~1e-2 of relative accuracy exactly
// where the visibility sources peak (the reference spline works in log
// space for the same reason).
type hotRow struct {
	hconf float64
	c     float64 // 8 pi G a^2 rho per species, as cosmology.Grho
	b     float64
	g     float64
	nu    float64
	hnu   float64
	lnKd  float64 // ln Thomson opacity
	cs2   float64 // baryon sound speed squared
}

// auxRow holds the per-accepted-step quantities (the source recorder reads
// them once per step, not once per evaluation), in log space like lnKd.
type auxRow struct {
	lnKappa float64 // ln optical depth to the present
	lnVis   float64 // ln visibility: lnKd - kappa
}

// tabThermo carries the thermodynamic outputs of one hot lookup.
type tabThermo struct {
	Kd, Cs2 float64
}

// EvalTables is the flattened background + thermodynamics lookup for one
// model. Immutable after construction and safe for concurrent readers.
type EvalTables struct {
	lnAMin float64
	inv    float64 // knots per unit ln a
	hot    []hotRow
	aux    []auxRow
}

// buildEvalTables fills the table from the exact splines. pfor runs the
// knot loop (signature dispatch.ParallelFor); nil builds serially.
func buildEvalTables(m *Model, pfor func(workers, n int, body func(i int))) *EvalTables {
	t := &EvalTables{
		lnAMin: tabLnAMin,
		inv:    float64(tabN-1) / (tabLnAMax - tabLnAMin),
		hot:    make([]hotRow, tabN),
		aux:    make([]auxRow, tabN),
	}
	dl := (tabLnAMax - tabLnAMin) / float64(tabN-1)
	if pfor == nil {
		pfor = func(_, n int, body func(int)) {
			for i := 0; i < n; i++ {
				body(i)
			}
		}
	}
	pfor(0, tabN, func(i int) {
		lnA := tabLnAMin + float64(i)*dl
		a := math.Exp(lnA)
		var g cosmology.Grho
		m.BG.Eval(a, &g)
		kd, cs2, kappa, _ := m.TH.AtLnA(lnA)
		lnKd := math.Log(kd)
		t.hot[i] = hotRow{
			hconf: g.HConf, c: g.C, b: g.B, g: g.G, nu: g.Nu, hnu: g.HNu,
			lnKd: lnKd, cs2: cs2,
		}
		t.aux[i] = auxRow{lnKappa: math.Log(kappa), lnVis: lnKd - kappa}
	})
	return t
}

// stencil returns the clamped 4-point index stencil and the uniform cubic
// Lagrange weights (knots {-1, 0, 1, 2}) for scale factor a. The stencil
// shifts inward at the edges by index clamping (C0 there, which only
// affects a <= 1e-10 and a = 1).
func (t *EvalTables) stencil(a float64) (im, i, i1, i2 int, wm, w0, w1, w2 float64) {
	u := (math.Log(a) - t.lnAMin) * t.inv
	n := len(t.hot)
	if u < 0 {
		u = 0
	}
	if u > float64(n-1) {
		u = float64(n - 1)
	}
	i = int(u)
	if i > n-2 {
		i = n - 2
	}
	f := u - float64(i)
	im, i2 = i-1, i+2
	if im < 0 {
		im = 0
	}
	if i2 > n-1 {
		i2 = n - 1
	}
	f1 := f - 1.0
	f2 := f - 2.0
	fp := f + 1.0
	wm = -f * f1 * f2 / 6.0
	w0 = fp * f1 * f2 / 2.0
	w1 = -fp * f * f2 / 2.0
	w2 = fp * f * f1 / 6.0
	return im, i, i + 1, i2, wm, w0, w1, w2
}

// Eval fills g and th at scale factor a: one log, one index, one weight
// set shared by all hot fields. It fills only the fields the evolution
// consumes — Total, Lambda and PHNu3 stay zero (their effect is already
// inside the tabulated HConf; the aux accessors cover the rest).
func (t *EvalTables) Eval(a float64, g *cosmology.Grho, th *tabThermo) {
	im, i0, i1, i2, wm, w0, w1, w2 := t.stencil(a)
	rm, r0, r1, r2 := &t.hot[im], &t.hot[i0], &t.hot[i1], &t.hot[i2]

	g.A = a
	g.HConf = wm*rm.hconf + w0*r0.hconf + w1*r1.hconf + w2*r2.hconf
	g.C = wm*rm.c + w0*r0.c + w1*r1.c + w2*r2.c
	g.B = wm*rm.b + w0*r0.b + w1*r1.b + w2*r2.b
	g.G = wm*rm.g + w0*r0.g + w1*r1.g + w2*r2.g
	g.Nu = wm*rm.nu + w0*r0.nu + w1*r1.nu + w2*r2.nu
	g.HNu = wm*rm.hnu + w0*r0.hnu + w1*r1.hnu + w2*r2.hnu
	g.Total, g.Lambda, g.PHNu3 = 0, 0, 0
	th.Kd = math.Exp(wm*rm.lnKd + w0*r0.lnKd + w1*r1.lnKd + w2*r2.lnKd)
	th.Cs2 = wm*rm.cs2 + w0*r0.cs2 + w1*r1.cs2 + w2*r2.cs2
}

// OpticalDepth interpolates the optical depth at scale factor a from the
// aux rows (one lookup + one exponential; consumed once per accepted step
// by the source recorder).
func (t *EvalTables) OpticalDepth(a float64) float64 {
	im, i0, i1, i2, wm, w0, w1, w2 := t.stencil(a)
	return math.Exp(wm*t.aux[im].lnKappa + w0*t.aux[i0].lnKappa +
		w1*t.aux[i1].lnKappa + w2*t.aux[i2].lnKappa)
}

// Visibility interpolates g(a) = kappa-dot e^-kappa from the aux rows.
func (t *EvalTables) Visibility(a float64) float64 {
	im, i0, i1, i2, wm, w0, w1, w2 := t.stencil(a)
	return math.Exp(wm*t.aux[im].lnVis + w0*t.aux[i0].lnVis +
		w1*t.aux[i1].lnVis + w2*t.aux[i2].lnVis)
}

// tablesState is the lazily built per-model table cache. It lives behind a
// pointer in Model so that Model values stay free of locks.
type tablesState struct {
	mu  sync.Mutex
	tab atomic.Pointer[EvalTables]
}

// EnsureEvalTables returns the model's flattened evaluation tables,
// building them on first use. pfor, when non-nil, runs the build loop in
// parallel (pass dispatch.ParallelFor; core cannot import dispatch). Safe
// for concurrent callers; all of them share one build.
func (mdl *Model) EnsureEvalTables(pfor func(workers, n int, body func(i int))) *EvalTables {
	ts := mdl.tables
	if t := ts.tab.Load(); t != nil {
		return t
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if t := ts.tab.Load(); t != nil {
		return t
	}
	start := time.Now()
	t := buildEvalTables(mdl, pfor)
	obsTableBuilds.Inc()
	obsTableBuildSeconds.Observe(time.Since(start).Seconds())
	ts.tab.Store(t)
	return t
}
