package core

import (
	"math"
	"testing"

	"plinger/internal/cosmology"
	"plinger/internal/recomb"
	"plinger/internal/thermo"
)

// sharedModel builds the SCDM substrate once for the whole test package.
var sharedModel *Model

func model(t *testing.T) *Model {
	t.Helper()
	if sharedModel != nil {
		return sharedModel
	}
	bg, err := cosmology.New(cosmology.SCDM())
	if err != nil {
		t.Fatal(err)
	}
	th, err := thermo.New(bg, recomb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sharedModel = NewModel(bg, th)
	return sharedModel
}

func evolve(t *testing.T, p Params) *Result {
	t.Helper()
	res, err := model(t).Evolve(p)
	if err != nil {
		t.Fatalf("Evolve(k=%g, %v): %v", p.K, p.Gauge, err)
	}
	return res
}

func TestEvolveCompletesBothGauges(t *testing.T) {
	for _, g := range []Gauge{Synchronous, ConformalNewtonian} {
		res := evolve(t, Params{K: 0.05, LMax: 16, Gauge: g})
		if math.Abs(res.A-1.0) > 1e-3 {
			t.Fatalf("%v: final a = %g, want 1", g, res.A)
		}
		if res.Stats.Steps == 0 {
			t.Fatalf("%v: no steps taken", g)
		}
		if res.Flops <= 0 || res.Seconds < 0 {
			t.Fatalf("%v: bad accounting %g flops %g s", g, res.Flops, res.Seconds)
		}
	}
}

func TestEinsteinConstraintSmall(t *testing.T) {
	// The unused Einstein equation is the paper's accuracy monitor. The
	// residual peaks at the start time, where the adiabatic series is
	// truncated at relative order (k tau_i)^2 ~ 2.5e-3, and decays from
	// there; anything beyond the percent level indicates an equation bug.
	for _, g := range []Gauge{Synchronous, ConformalNewtonian} {
		res := evolve(t, Params{K: 0.08, LMax: 20, Gauge: g})
		if res.MaxConstraintResidual > 2e-2 {
			t.Fatalf("%v: constraint residual %g", g, res.MaxConstraintResidual)
		}
	}
}

func TestConstraintResidualShrinksWithEarlierStart(t *testing.T) {
	// Starting further outside the horizon improves the series accuracy,
	// so the peak residual must drop roughly as (k tau_i)^2.
	coarse := evolve(t, Params{K: 0.08, LMax: 12, Gauge: Synchronous, KTauStart: 0.1, TauEnd: 300})
	fine := evolve(t, Params{K: 0.08, LMax: 12, Gauge: Synchronous, KTauStart: 0.02, TauEnd: 300})
	if fine.MaxConstraintResidual >= coarse.MaxConstraintResidual {
		t.Fatalf("residual did not shrink: %g -> %g",
			coarse.MaxConstraintResidual, fine.MaxConstraintResidual)
	}
}

func TestTightCouplingUsedAndReleased(t *testing.T) {
	res := evolve(t, Params{K: 0.05, LMax: 12, Gauge: Synchronous})
	if res.TauSwitch <= 0 {
		t.Fatal("tight coupling was never engaged")
	}
	th := model(t).TH
	if res.TauSwitch >= th.TauRec() {
		t.Fatalf("tight coupling released at tau=%g, after recombination %g", res.TauSwitch, th.TauRec())
	}
}

func TestTCAAgreesWithStiffIntegration(t *testing.T) {
	// Validate the tight-coupling approximation against the exact (stiff)
	// Thomson terms. A small k starts late enough that DVERK can resolve
	// the opacity directly; the TCA run must agree while being far
	// cheaper. This is the integrator-level ablation of Section 2.
	if testing.Short() {
		t.Skip("the stiff ablation run is expensive")
	}
	a := evolve(t, Params{K: 0.002, LMax: 8, Gauge: Synchronous, TauEnd: 60})
	b := evolve(t, Params{K: 0.002, LMax: 8, Gauge: Synchronous, TauEnd: 60, DisableTightCoupling: true})
	if b.Stats.Evals < 2*a.Stats.Evals {
		t.Fatalf("stiff run suspiciously cheap: %d vs %d evals", b.Stats.Evals, a.Stats.Evals)
	}
	if math.Abs(a.DeltaG-b.DeltaG) > 1e-3*math.Abs(a.DeltaG) {
		t.Fatalf("TCA and stiff runs disagree: delta_g %g vs %g", a.DeltaG, b.DeltaG)
	}
	if math.Abs(a.DeltaC-b.DeltaC) > 1e-3*math.Abs(a.DeltaC) {
		t.Fatalf("TCA and stiff runs disagree: delta_c %g vs %g", a.DeltaC, b.DeltaC)
	}
}

func TestAdiabaticRelationEarly(t *testing.T) {
	// While the mode is still superhorizon (k tau = 0.2 here) the
	// adiabatic relation delta_b = delta_c = (3/4) delta_gamma holds.
	res := evolve(t, Params{K: 0.01, LMax: 12, Gauge: Synchronous, TauEnd: 20})
	if math.Abs(res.DeltaB-res.DeltaC) > 1e-2*math.Abs(res.DeltaC) {
		t.Fatalf("delta_b %g != delta_c %g", res.DeltaB, res.DeltaC)
	}
	if math.Abs(res.DeltaB-0.75*res.DeltaG) > 1e-2*math.Abs(res.DeltaB) {
		t.Fatalf("delta_b %g != 3/4 delta_g %g", res.DeltaB, 0.75*res.DeltaG)
	}
}

func TestMatterGrowsLinearlyInMatterEra(t *testing.T) {
	// delta_c grows as a in the matter era: compare a=0.2 and a=0.8
	// (tau ratio 2 => growth ratio 4 in EdS, delta ~ a ~ tau^2).
	bg := model(t).BG
	r1 := evolve(t, Params{K: 0.05, LMax: 12, Gauge: Synchronous, TauEnd: bg.Tau(0.2)})
	r2 := evolve(t, Params{K: 0.05, LMax: 12, Gauge: Synchronous, TauEnd: bg.Tau(0.8)})
	growth := r2.DeltaC / r1.DeltaC
	if math.Abs(growth-4.0) > 0.15 {
		t.Fatalf("matter growth factor %g, want ~4 (delta ~ a)", growth)
	}
}

func TestSuperhorizonModeFrozen(t *testing.T) {
	// A mode far outside the horizon today: the Newtonian potential phi is
	// constant in the matter era and delta_c barely evolves relative to
	// subhorizon growth.
	bg := model(t).BG
	rEarly := evolve(t, Params{K: 2e-4, LMax: 8, Gauge: ConformalNewtonian, TauEnd: bg.Tau(0.3)})
	rLate := evolve(t, Params{K: 2e-4, LMax: 8, Gauge: ConformalNewtonian, TauEnd: bg.Tau(0.9)})
	if math.Abs(rLate.Phi/rEarly.Phi-1.0) > 0.02 {
		t.Fatalf("superhorizon phi not frozen in matter era: %g -> %g", rEarly.Phi, rLate.Phi)
	}
}

func TestPotentialDropsThroughEquality(t *testing.T) {
	// Through the radiation-to-matter transition the superhorizon potential
	// falls by the classic factor 9/10.
	bg := model(t).BG
	rRad := evolve(t, Params{K: 1e-3, LMax: 8, Gauge: ConformalNewtonian, TauEnd: bg.Tau(3e-5)})
	rMat := evolve(t, Params{K: 1e-3, LMax: 8, Gauge: ConformalNewtonian, TauEnd: bg.Tau(0.2)})
	ratio := rMat.Phi / rRad.Phi
	if ratio < 0.83 || ratio > 0.95 {
		t.Fatalf("phi(matter)/phi(radiation) = %g, want ~0.9", ratio)
	}
}

func TestGaugeInvarianceOfHighMultipoles(t *testing.T) {
	// Theta_l for l >= 2 is gauge-invariant: the synchronous and conformal
	// Newtonian runs must agree. This is the strongest end-to-end
	// cross-check of the full equation set (it exercises every hierarchy,
	// the Einstein equations and the initial conditions in both gauges).
	k := 0.06
	lmax := 24
	a := evolve(t, Params{K: k, LMax: lmax, Gauge: Synchronous})
	b := evolve(t, Params{K: k, LMax: lmax, Gauge: ConformalNewtonian})
	// RMS amplitude for scale.
	var scale float64
	for l := 2; l <= 10; l++ {
		scale += a.ThetaL[l] * a.ThetaL[l]
	}
	scale = math.Sqrt(scale / 9.0)
	for l := 2; l <= 10; l++ {
		diff := math.Abs(a.ThetaL[l] - b.ThetaL[l])
		if diff > 2e-3*scale {
			t.Fatalf("Theta_%d differs between gauges: %g vs %g (scale %g)",
				l, a.ThetaL[l], b.ThetaL[l], scale)
		}
	}
	// Polarization is gauge-invariant at every l.
	for l := 0; l <= 10; l++ {
		diff := math.Abs(a.ThetaPL[l] - b.ThetaPL[l])
		if diff > 2e-3*scale {
			t.Fatalf("ThetaP_%d differs between gauges: %g vs %g", l, a.ThetaPL[l], b.ThetaPL[l])
		}
	}
}

func TestPhotonMonopoleOscillates(t *testing.T) {
	// Before recombination the photon-baryon fluid undergoes acoustic
	// oscillation: the effective monopole at recombination alternates in
	// sign as a function of k. Scan a few k and count sign changes.
	th := model(t).TH
	tauRec := th.TauRec()
	signChanges := 0
	var prev float64
	for _, k := range []float64{0.02, 0.05, 0.08, 0.11, 0.14, 0.17, 0.20} {
		res := evolve(t, Params{K: k, LMax: 10, Gauge: Synchronous, TauEnd: tauRec})
		v := res.DeltaG
		if prev != 0 && v*prev < 0 {
			signChanges++
		}
		prev = v
	}
	if signChanges < 2 {
		t.Fatalf("expected acoustic sign changes across k, got %d", signChanges)
	}
}

func TestNeutrinoFreeStreamingDampsMonopole(t *testing.T) {
	// Massless neutrinos free-stream: inside the horizon their density
	// contrast is strongly suppressed relative to the coupled photons
	// before recombination.
	res := evolve(t, Params{K: 0.2, LMax: 16, Gauge: Synchronous, TauEnd: 150})
	if math.Abs(res.DeltaNu) > math.Abs(res.DeltaG) {
		t.Fatalf("neutrino contrast %g should be damped below photon %g",
			res.DeltaNu, res.DeltaG)
	}
}

func TestMassiveNeutrinoRun(t *testing.T) {
	bg, err := cosmology.NewFlattened(cosmology.MDM(1.0))
	if err != nil {
		t.Fatal(err)
	}
	th, err := thermo.New(bg, recomb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mdl := NewModel(bg, th)
	res, err := mdl.Evolve(Params{K: 0.05, LMax: 12, LMaxNu: 8, Gauge: Synchronous})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeltaHNu == 0 {
		t.Fatal("massive neutrino density contrast not computed")
	}
	if res.MaxConstraintResidual > 5e-3 {
		t.Fatalf("constraint residual %g with massive neutrinos", res.MaxConstraintResidual)
	}
	// Early on the massive species is relativistic and adiabatic with the
	// massless one.
	early, err := mdl.Evolve(Params{K: 0.05, LMax: 12, LMaxNu: 8, Gauge: Synchronous, TauEnd: 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(early.DeltaHNu-early.DeltaNu) > 0.05*math.Abs(early.DeltaNu) {
		t.Fatalf("relativistic massive nu contrast %g != massless %g", early.DeltaHNu, early.DeltaNu)
	}
}

func TestSourcesRecorded(t *testing.T) {
	res := evolve(t, Params{K: 0.05, LMax: 12, Gauge: ConformalNewtonian, KeepSources: true})
	if len(res.Sources) < 100 {
		t.Fatalf("only %d source samples", len(res.Sources))
	}
	prevTau := 0.0
	for _, s := range res.Sources {
		if s.Tau <= prevTau {
			t.Fatal("source times not increasing")
		}
		prevTau = s.Tau
	}
	last := res.Sources[len(res.Sources)-1]
	if last.Kappa > 1e-3 {
		t.Fatalf("final optical depth %g, want ~0", last.Kappa)
	}
	first := res.Sources[0]
	if first.Kappa < 10 {
		t.Fatalf("initial optical depth %g, want >> 1", first.Kappa)
	}
}

func TestInvalidParamsRejected(t *testing.T) {
	mdl := model(t)
	if _, err := mdl.Evolve(Params{K: 0}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := mdl.Evolve(Params{K: -1}); err == nil {
		t.Error("negative k accepted")
	}
	if _, err := mdl.Evolve(Params{K: 0.1, TauEnd: 1e9}); err == nil {
		t.Error("TauEnd beyond present accepted")
	}
}

func TestThetaLOutputShape(t *testing.T) {
	res := evolve(t, Params{K: 0.05, LMax: 16, Gauge: Synchronous})
	if len(res.ThetaL) != 17 || len(res.ThetaPL) != 17 {
		t.Fatalf("moment slices %d/%d, want 17", len(res.ThetaL), len(res.ThetaPL))
	}
	// The transfer must be non-trivial.
	var sum float64
	for _, v := range res.ThetaL {
		sum += v * v
	}
	if sum == 0 {
		t.Fatal("all temperature moments zero")
	}
}

func TestFlopsPerRHSModel(t *testing.T) {
	base := FlopsPerRHS(100, 12, 0, Synchronous)
	larger := FlopsPerRHS(200, 12, 0, Synchronous)
	if larger <= base {
		t.Fatal("flop model must grow with lmax")
	}
	withNu := FlopsPerRHS(100, 12, 16, Synchronous)
	if withNu <= base {
		t.Fatal("flop model must grow with massive neutrinos")
	}
	// Roughly linear in lmax.
	ratio := (larger - base) / base
	if ratio < 0.5 || ratio > 1.2 {
		t.Fatalf("lmax scaling ratio %g", ratio)
	}
}

func TestGaugeString(t *testing.T) {
	if Synchronous.String() != "synchronous" || ConformalNewtonian.String() != "conformal-newtonian" {
		t.Fatal("gauge names")
	}
	if Gauge(9).String() == "" {
		t.Fatal("unknown gauge should still print")
	}
}
