package core

import "math"

// sums collects the perturbed stress-energy sources of the Einstein
// equations, all in 8 pi G a^2 units (Mpc^-2):
//
//	gdrho  = 8 pi G a^2 delta rho
//	gtheta = 8 pi G a^2 (rho+P) theta
//	gshear = 8 pi G a^2 (rho+P) sigma
//	gdp3   = 3 * 8 pi G a^2 delta P
type sums struct {
	a      float64
	hconf  float64
	kd     float64 // Thomson opacity
	cs2    float64 // baryon sound speed squared
	gdrho  float64
	gtheta float64
	gshear float64
	gdp3   float64

	deltaG, thetaG, sigmaG float64
	deltaNu, thetaNu       float64
}

// gatherSums evaluates background quantities and the stress-energy sums for
// the current state. The fast engine resolves the background and
// thermodynamics through the model's flattened tables (one log + one fused
// direct-indexed interpolation); the reference path keeps the exact spline
// lookups.
func (m *mode) gatherSums(tau float64, y []float64, s *sums) {
	g := &m.scratch
	a := y[m.ia]
	if c := m.bgCache; c != nil && c.a == a {
		// Lockstep batch: the scale factor obeys the same k-independent
		// ODE in every member, so the members' a trajectories are bitwise
		// identical and one background/thermodynamics lookup per
		// right-hand-side call serves the whole batch. The equality guard
		// makes a stale cache merely a miss, never an error.
		*g = c.g
		s.kd = c.kd
		s.cs2 = c.cs2
	} else if m.tab != nil {
		m.tab.Eval(a, g, &m.tt)
		s.kd = m.tt.Kd
		s.cs2 = m.tt.Cs2
	} else {
		m.BG.Eval(a, g)
		s.kd = m.TH.Opacity(a)
		s.cs2 = m.TH.Cs2(a)
	}
	s.a = a
	s.hconf = g.HConf

	k := m.k
	dc, db := y[m.idc], y[m.idb]
	tb := y[m.itb]
	var tc float64
	if m.itc >= 0 {
		tc = y[m.itc]
	}

	s.deltaG = y[m.ifg]
	s.thetaG = 0.75 * k * y[m.ifg+1]
	if m.tca {
		// Algebraic first-order tight-coupling shear. The synchronous
		// metric contribution is added by the caller (it needs eta-dot,
		// which itself needs gtheta — the shear term there is O(tau_c)
		// and may be evaluated with the photon velocity alone).
		s.sigmaG = 16.0 / 45.0 / s.kd * s.thetaG
	} else {
		s.sigmaG = 0.5 * y[m.ifg+2]
	}
	s.deltaNu = y[m.ifn]
	s.thetaNu = 0.75 * k * y[m.ifn+1]
	sigmaNu := 0.5 * y[m.ifn+2]

	s.gdrho = g.C*dc + g.B*db + g.G*s.deltaG + g.Nu*s.deltaNu
	s.gtheta = g.C*tc + g.B*tb + 4.0/3.0*(g.G*s.thetaG+g.Nu*s.thetaNu)
	s.gshear = 4.0 / 3.0 * (g.G*s.sigmaG + g.Nu*sigmaNu)
	s.gdp3 = g.G*s.deltaG + g.Nu*s.deltaNu + 3.0*s.cs2*g.B*db

	if m.nq > 0 {
		am := a * m.BG.MassQ
		var r0, r1, r2, rp float64
		for iq := 0; iq < m.nq; iq++ {
			q := m.BG.Q[iq]
			w := m.BG.W[iq]
			eps := math.Sqrt(q*q + am*am)
			base := m.ipsn + iq*(m.lnu+1)
			r0 += w * eps * y[base]
			r1 += w * q * y[base+1]
			r2 += w * q * q / eps * y[base+2]
			rp += w * q * q / eps * y[base]
		}
		// Normalize against the massless integral Int q^3 f0 dq so the
		// prefactor is the single-species radiation coefficient.
		nrm := 0.0
		for iq := 0; iq < m.nq; iq++ {
			nrm += m.BG.W[iq] * m.BG.Q[iq]
		}
		pref := m.BG.Grhor1 * float64(m.BG.P.NNuMassive) / (a * a) / nrm
		s.gdrho += pref * r0
		s.gtheta += pref * k * r1
		s.gshear += pref * 2.0 / 3.0 * r2
		s.gdp3 += pref * rp
	}
}

// rhs is the complete right-hand side of the coupled system; it dispatches
// on gauge and the tight-coupling regime.
func (m *mode) rhs(tau float64, y, dy []float64) {
	var s sums
	m.gatherSums(tau, y, &s)
	k, k2 := m.k, m.k2
	a, hc, kd := s.a, s.hconf, s.kd
	lmax := m.lmax

	dy[m.ia] = a * hc

	// Metric sources.
	var (
		psi, phiDot float64 // conformal Newtonian
		hdot, eDot  float64 // synchronous
		src0        float64 // radiation monopole source: 4 phi-dot | -(2/3) h-dot
		src1        float64 // radiation dipole source: (4/3) k psi | 0
		src2        float64 // l=2 source: 0 | (8/15) s2
	)
	if m.p.Gauge == ConformalNewtonian {
		phi := y[m.iphi]
		psi = phi - 1.5*s.gshear/k2
		phiDot = 0.5*s.gtheta/k2 - hc*psi
		dy[m.iphi] = phiDot
		src0 = 4.0 * phiDot
		src1 = 4.0 / 3.0 * k * psi
		src2 = 0
	} else {
		eta := y[m.ieta]
		hdot = y[m.ihd]
		eDot = 0.5 * s.gtheta / k2
		dy[m.ieta] = eDot
		dy[m.ih] = hdot
		// MB95 (21c): h-ddot + 2 aH h-dot - 2 k^2 eta = -8 pi G a^2 (3 dP).
		dy[m.ihd] = -2.0*hc*hdot + 2.0*k2*eta - s.gdp3
		s2 := 0.5*hdot + 3.0*eDot
		src0 = -2.0 / 3.0 * hdot
		src1 = 0
		src2 = 8.0 / 15.0 * s2
		if m.tca {
			// Add the metric part of the tight-coupling shear.
			s.sigmaG += 16.0 / 45.0 / kd * s2
		}
	}

	// Cold dark matter.
	if m.p.Gauge == ConformalNewtonian {
		tc := y[m.itc]
		dy[m.idc] = -tc + 3.0*phiDot
		dy[m.itc] = -hc*tc + k2*psi
	} else {
		dy[m.idc] = -0.5 * hdot
	}

	// Baryons and the photon monopole/dipole.
	db, tb := y[m.idb], y[m.itb]
	if m.p.Gauge == ConformalNewtonian {
		dy[m.idb] = -tb + 3.0*phiDot
	} else {
		dy[m.idb] = -tb - 0.5*hdot
	}
	dy[m.ifg] = -k*y[m.ifg+1] + src0

	// Photon-baryon momentum exchange. m.scratch still holds the
	// background densities filled by gatherSums.
	gb := &m.scratch
	r := 4.0 / 3.0 * gb.G / gb.B
	photonAccel := k2 * (0.25*s.deltaG - s.sigmaG)
	var kpsi float64
	if m.p.Gauge == ConformalNewtonian {
		kpsi = k2 * psi
	}

	if m.tca {
		// First-order tight coupling: eliminate the stiff Thomson terms.
		// Slip N = k^2(delta_g/4 - sigma_g) + aH theta_b - cs^2 k^2 delta_b
		// with theta_g - theta_b = tau_c N/(1+R).
		n := photonAccel + hc*tb - s.cs2*k2*db
		dy[m.itb] = -hc*tb + s.cs2*k2*db + kpsi + r/(1.0+r)*n
		thetaGDot := photonAccel + kpsi - n/(1.0+r)
		dy[m.ifg+1] = 4.0 / (3.0 * k) * thetaGDot
		// Higher photon moments and polarization are algebraically slaved;
		// hold their stored values frozen (they remain ~0 until release).
		clear(dy[m.ifg+2 : m.ifg+lmax+1])
		clear(dy[m.igg : m.igg+lmax+1])
	} else {
		// The free-streaming hierarchies run on subslice views with the
		// l/(2l+1) ratios precomputed (see mode.rA/rB): per-moment index
		// arithmetic and divisions stay out of the hottest loops.
		fg := y[m.ifg : m.ifg+lmax+1]
		dfg := dy[m.ifg : m.ifg+lmax+1]
		gg := y[m.igg : m.igg+lmax+1]
		dgg := dy[m.igg : m.igg+lmax+1]
		rA, rB := m.rA, m.rB
		trunc := (float64(lmax) + 1.0) / tau

		dy[m.itb] = -hc*tb + s.cs2*k2*db + kpsi + r*kd*(s.thetaG-tb)
		thetaGDot := photonAccel + kpsi + kd*(tb-s.thetaG)
		dfg[1] = 4.0 / (3.0 * k) * thetaGDot

		pi := fg[2] + gg[0] + gg[2]
		// Temperature quadrupole and higher. MB95 eq. (63): the Thomson
		// term is -kd [ (9/10) F_2 - (1/10)(G_0 + G_2) ], equivalently
		// -kd (F_2 - Pi/10) with Pi = F_2 + G_0 + G_2.
		dfg[2] = k/5.0*(2.0*fg[1]-3.0*fg[3]) + src2 - kd*(fg[2]-0.1*pi)
		for l := 3; l < lmax; l++ {
			dfg[l] = k*(rA[l]*fg[l-1]-rB[l]*fg[l+1]) - kd*fg[l]
		}
		// Free-streaming truncation (MB95 eq. 65).
		dfg[lmax] = k*fg[lmax-1] - trunc*fg[lmax] - kd*fg[lmax]

		// Polarization hierarchy.
		dgg[0] = -k*gg[1] + kd*(0.5*pi-gg[0])
		dgg[1] = k/3.0*(gg[0]-2.0*gg[2]) - kd*gg[1]
		if lmax >= 3 {
			dgg[2] = k/5.0*(2.0*gg[1]-3.0*gg[3]) + kd*(0.1*pi-gg[2])
		} else {
			dgg[2] = k/5.0*(2.0*gg[1]) + kd*(0.1*pi-gg[2])
		}
		for l := 3; l < lmax; l++ {
			dgg[l] = k*(rA[l]*gg[l-1]-rB[l]*gg[l+1]) - kd*gg[l]
		}
		dgg[lmax] = k*gg[lmax-1] - trunc*gg[lmax] - kd*gg[lmax]
	}

	// Massless neutrinos.
	fn := y[m.ifn : m.ifn+lmax+1]
	dfn := dy[m.ifn : m.ifn+lmax+1]
	dfn[0] = -k*fn[1] + src0
	dfn[1] = k/3.0*(fn[0]-2.0*fn[2]) + src1
	if lmax >= 3 {
		dfn[2] = k/5.0*(2.0*fn[1]-3.0*fn[3]) + src2
	} else {
		dfn[2] = k / 5.0 * (2.0 * fn[1])
	}
	{
		rA, rB := m.rA, m.rB
		for l := 3; l < lmax; l++ {
			dfn[l] = k * (rA[l]*fn[l-1] - rB[l]*fn[l+1])
		}
	}
	dfn[lmax] = k*fn[lmax-1] - (float64(lmax)+1.0)/tau*fn[lmax]

	// Massive neutrinos: full momentum dependence.
	if m.nq > 0 {
		am := a * m.BG.MassQ
		rA, rB := m.rA, m.rB
		for iq := 0; iq < m.nq; iq++ {
			q := m.BG.Q[iq]
			df := m.BG.DlnF0DlnQ[iq]
			eps := math.Sqrt(q*q + am*am)
			qke := q * k / eps
			base := m.ipsn + iq*(m.lnu+1)
			ps := y[base : base+m.lnu+1]
			dps := dy[base : base+m.lnu+1]
			var s0, s1, s2nu float64
			if m.p.Gauge == ConformalNewtonian {
				s0 = -phiDot * df
				s1 = -eps * k / (3.0 * q) * psi * df
			} else {
				s0 = hdot / 6.0 * df
				s2nu = -2.0 / 15.0 * (0.5*hdot + 3.0*eDot) * df
			}
			dps[0] = -qke*ps[1] + s0
			dps[1] = qke/3.0*(ps[0]-2.0*ps[2]) + s1
			if m.lnu >= 3 {
				dps[2] = qke/5.0*(2.0*ps[1]-3.0*ps[3]) + s2nu
			} else {
				dps[2] = qke/5.0*(2.0*ps[1]) + s2nu
			}
			for l := 3; l < m.lnu; l++ {
				dps[l] = qke * (rA[l]*ps[l-1] - rB[l]*ps[l+1])
			}
			dps[m.lnu] = qke*ps[m.lnu-1] - (float64(m.lnu)+1.0)/tau*ps[m.lnu]
		}
	}
}

// constraintResidual evaluates the unused Einstein equation as a relative
// error — the accuracy monitor of the original LINGER code.
func (m *mode) constraintResidual(tau float64, y []float64) float64 {
	var s sums
	m.gatherSums(tau, y, &s)
	return m.residualFrom(y, &s)
}

// residualFrom is constraintResidual on sums already gathered for this
// state, so callers that need both the sums and the residual (record) pay
// one gatherSums instead of two.
func (m *mode) residualFrom(y []float64, s *sums) float64 {
	k2 := m.k2
	if m.p.Gauge == ConformalNewtonian {
		phi := y[m.iphi]
		psi := phi - 1.5*s.gshear/k2
		phiDot := 0.5*s.gtheta/k2 - s.hconf*psi
		lhs := k2*phi + 3.0*s.hconf*(phiDot+s.hconf*psi)
		rhs := -0.5 * s.gdrho
		scale := math.Max(math.Abs(k2*phi), math.Max(math.Abs(rhs), 3.0*s.hconf*s.hconf*math.Abs(psi)))
		if scale == 0 {
			return 0
		}
		return math.Abs(lhs-rhs) / scale
	}
	eta := y[m.ieta]
	hdot := y[m.ihd]
	lhs := k2*eta - 0.5*s.hconf*hdot
	rhs := -0.5 * s.gdrho
	scale := math.Max(math.Abs(k2*eta), math.Max(math.Abs(rhs), 0.5*s.hconf*math.Abs(hdot)))
	if scale == 0 {
		return 0
	}
	return math.Abs(lhs-rhs) / scale
}

// monitor tracks the worst constraint violation.
func (m *mode) monitor(tau float64, y []float64) {
	if r := m.constraintResidual(tau, y); r > m.maxResidual {
		m.maxResidual = r
	}
}

// record stores a line-of-sight source sample (and monitors constraints).
// The sums are gathered once and shared between the constraint residual
// and the sample fields.
func (m *mode) record(tau float64, y []float64) {
	var s sums
	m.gatherSums(tau, y, &s)
	resid := m.residualFrom(y, &s)
	if resid > m.maxResidual {
		m.maxResidual = resid
	}
	kappa := 0.0
	if c := m.bgCache; c != nil && c.kapOK && c.a == s.a {
		kappa = c.kappa
	} else if m.tab != nil {
		kappa = m.tab.OpticalDepth(s.a)
	} else {
		kappa = m.TH.OpticalDepth(s.a)
	}
	smp := Sample{
		Residual: resid,
		Tau:      tau,
		A:        s.a,
		Theta0:   0.25 * y[m.ifg],
		VB:       y[m.itb] / m.k,
		Kdot:     s.kd,
		Kappa:    kappa,
		DeltaC:   y[m.idc],
		DeltaB:   y[m.idb],
	}
	if m.tca {
		smp.Pi = 2.5 * 2.0 * s.sigmaG // Pi = (5/2) F_2 = 5 sigma_g
	} else {
		smp.Pi = y[m.ifg+2] + y[m.igg] + y[m.igg+2]
	}
	if m.p.Gauge == ConformalNewtonian {
		phi := y[m.iphi]
		psi := phi - 1.5*s.gshear/m.k2
		smp.Phi = phi
		smp.Psi = psi
		smp.PhiDot = 0.5*s.gtheta/m.k2 - s.hconf*psi
	} else {
		smp.Eta = y[m.ieta]
		smp.HDot = y[m.ihd]
		smp.EtaDot = 0.5 * s.gtheta / m.k2
		smp.Alpha = (smp.HDot + 6.0*smp.EtaDot) / (2.0 * m.k2)
	}
	m.sources = append(m.sources, smp)
}
