package core

import (
	"fmt"
	"math"
	"time"

	"plinger/internal/cosmology"
	"plinger/internal/ode"
)

// bgPoint is one shared background/thermodynamics evaluation, cached per
// right-hand-side call of a lockstep batch. Validity is keyed on the exact
// scale factor: a member whose state carries a different a simply misses
// and performs its own lookup (see gatherSums).
type bgPoint struct {
	a       float64
	g       cosmology.Grho
	kd, cs2 float64
	// kappa is the optical depth, filled only by the per-step recorder
	// (kapOK marks it live): right-hand-side evaluations never need it.
	kappa float64
	kapOK bool
}

// batch is the in-flight state of one lockstep multi-k evolution: the
// member modes share a single concatenated state vector (member i occupies
// y[i*nvar:(i+1)*nvar], every member at the same hierarchy cutoff), one
// adaptive controller, and one background evaluation per right-hand-side
// call. The member layout keeps each mode's hierarchy loops contiguous —
// the amortized work is the background/thermodynamics lookup and the step
// machinery, which are k-independent and therefore identical across the
// batch.
type batch struct {
	ms   []mode
	nvar int // per-member state size at the current cutoff
	ref  int // index of the largest-k member: drives TCA, growth, shrink
	bg   bgPoint
	sc   *Scratch
}

// EvolveBatch is EvolveBatchWith with a private arena.
func (mdl *Model) EvolveBatch(ks []float64, p Params) ([]*Result, error) {
	return mdl.EvolveBatchWith(ks, p, nil, nil)
}

// EvolveBatchWith integrates the k modes ks in lockstep as one ODE system
// using the caller's arena (nil: a private one): every member takes the
// same accepted steps, so the background and thermodynamics lookups — and
// the controller overhead — are paid once per step for the whole batch
// instead of once per mode. perkLMax, when non-nil, carries the per-mode
// hierarchy cutoffs (entries <= 0 meaning p.LMax); the batch runs at the
// largest cutoff among its members, and every Result reports that unified
// cutoff. The shared step control couples the members numerically: a batch
// trajectory agrees with the per-mode one to the integrator tolerance, not
// bitwise — callers needing the exact scalar trajectory use KBatch = 1.
//
// Tight coupling is driven by the largest-k member (its criterion
// kappa-dot > TCAFactor*k is the strictest in the batch), so smaller
// members release early — always physically valid, the exact equations
// merely cost more steps. Hierarchy growth and the late-time shrink follow
// the largest-k member for the same reason. A batch of one, or a run with
// a caller-supplied Integrator, delegates to EvolveWith per mode and is
// bitwise identical to the scalar path.
func (mdl *Model) EvolveBatchWith(ks []float64, p Params, perkLMax []int, sc *Scratch) ([]*Result, error) {
	nb := len(ks)
	if nb == 0 {
		return nil, fmt.Errorf("core: empty k batch")
	}
	if perkLMax != nil && len(perkLMax) != nb {
		return nil, fmt.Errorf("core: %d k values but %d per-k cutoffs", nb, len(perkLMax))
	}
	if nb == 1 || p.Integrator != nil {
		out := make([]*Result, nb)
		for i, k := range ks {
			pm := p
			pm.K = k
			if perkLMax != nil && perkLMax[i] > 0 {
				pm.LMax = perkLMax[i]
			}
			r, err := mdl.EvolveWith(pm, sc)
			if err != nil {
				return nil, err
			}
			out[i] = r
		}
		return out, nil
	}

	p.setDefaults()
	for _, k := range ks {
		if k <= 0 {
			return nil, fmt.Errorf("core: k = %g must be positive", k)
		}
	}
	if p.TauEnd <= 0 {
		p.TauEnd = mdl.BG.Tau0()
	}
	if p.TauEnd > mdl.BG.Tau0()*1.0000001 {
		return nil, fmt.Errorf("core: TauEnd = %g beyond the present %g", p.TauEnd, mdl.BG.Tau0())
	}
	// Unified hierarchy cutoff: the largest member cap covers the batch.
	lcap := p.LMax
	if perkLMax != nil {
		lcap = 0
		for _, l := range perkLMax {
			if l <= 0 {
				l = p.LMax
			}
			if l > lcap {
				lcap = l
			}
		}
	}
	if sc == nil {
		sc = &Scratch{}
	}
	b := &sc.bat
	b.sc = sc
	if cap(b.ms) < nb {
		b.ms = make([]mode, nb)
	}
	b.ms = b.ms[:nb]
	if sc.brhsf == nil {
		sc.brhsf = b.rhs
		sc.bOnRecord = b.record
		sc.bOnMonitor = b.monitor
	}
	var tab *EvalTables
	if p.FastEvolve && !p.noTables {
		tab = mdl.EnsureEvalTables(nil)
	}

	b.ref = 0
	tauStart := math.Inf(1)
	for i := range b.ms {
		m := &b.ms[i]
		pm := p
		pm.K = ks[i]
		pm.LMax = lcap
		*m = mode{Model: mdl, p: pm, k: ks[i], k2: ks[i] * ks[i], sc: sc, tab: tab, bgCache: &b.bg}
		if ks[i] > ks[b.ref] {
			b.ref = i
		}
		if t := m.startTime(); t < tauStart {
			tauStart = t
		}
	}
	if tauStart >= p.TauEnd {
		return nil, fmt.Errorf("core: start time %g is not before end time %g (batch k=%g..%g)", tauStart, p.TauEnd, ks[0], ks[nb-1])
	}
	ref := &b.ms[b.ref]
	lmax0 := lcap
	if p.FastEvolve && !p.noGrowLMax {
		ref.grow = true
		lmax0 = ref.initialLMax(tauStart)
	}
	for i := range b.ms {
		m := &b.ms[i]
		m.lmax = lmax0
		// Refresh after every layout: the first member may grow the
		// arena's shared ratio tables.
		m.rA, m.rB = sc.rA, sc.rB
		m.layout()
	}
	b.nvar = ref.nvar
	y := sc.stateBuf(nb*b.nvar, nb*ref.maxNvar())
	for i := range b.ms {
		b.ms[i].initialConditions(tauStart, y[i*b.nvar:(i+1)*b.nvar])
		if p.KeepSources {
			b.ms[i].sources = make([]Sample, 0, 1024)
		}
	}

	dv := sc.integrator(p.RTol, p.ATol)
	dv.InitialStep = tauStart * 1e-3
	dv.CarryStep = true
	if p.FastEvolve && !p.noPI {
		dv.PI = true
	}
	if p.KeepSources {
		ref.ad = dv
		tauRec := mdl.TH.TauRec()
		ref.srcCap.lo = tauRec - srcCapBefore
		ref.srcCap.hi = tauRec + srcCapAfter
		ref.srcCap.h = srcCapStep
		ref.srcCap.base = dv.MaxStep
		defer func() { dv.MaxStep = ref.srcCap.base }()
	}
	if p.FastEvolve && p.KeepSources && !p.noGrowLMax {
		if t := ref.shrinkTime(); t < p.TauEnd {
			ref.shrinkAt = t
		}
	}
	if p.KeepSources {
		dv.SetOnStep(sc.bOnRecord)
	} else {
		dv.SetOnStep(sc.bOnMonitor)
	}

	results := make([]*Result, nb)
	for i := range results {
		results[i] = &Result{K: ks[i], Gauge: p.Gauge, LMax: lcap}
	}
	start := time.Now()

	var stats ode.Stats
	var err error

	// Phase 1: tight coupling while it holds for the strictest member.
	tca := !p.DisableTightCoupling && ref.tcaHolds(mdl.BG.AofTau(tauStart))
	tau := tauStart
	if tca {
		for i := range b.ms {
			b.ms[i].tca = true
		}
		tauSwitch := ref.findTCASwitch(tauStart, p.TauEnd)
		if tauSwitch > tauStart {
			tau, y, err = b.integrateSpan(dv, tau, tauSwitch, y, &stats)
			if err != nil {
				return nil, fmt.Errorf("core: tight-coupling phase (batch k=%g..%g): %w", ks[0], ks[nb-1], err)
			}
			for i := range results {
				results[i].TauSwitch = tauSwitch
			}
		}
		for i := range b.ms {
			m := &b.ms[i]
			m.releaseTightCoupling(tau, y[i*b.nvar:(i+1)*b.nvar])
			m.tca = false
		}
	}

	// Phase 2: full equations to the end.
	_, y, err = b.integrateSpan(dv, tau, p.TauEnd, y, &stats)
	if err != nil {
		return nil, fmt.Errorf("core: full phase (batch k=%g..%g): %w", ks[0], ks[nb-1], err)
	}

	sec := time.Since(start).Seconds() / float64(nb)
	for i := range b.ms {
		m := &b.ms[i]
		res := results[i]
		res.Seconds = sec
		res.Stats = stats
		res.Flops = m.flops
		m.pack(p.TauEnd, y[i*b.nvar:(i+1)*b.nvar], res)
		res.MaxConstraintResidual = m.maxResidual
		res.Sources = m.sources
	}
	return results, nil
}

// integrateSpan is mode.integrateSpan for the concatenated batch system:
// the reference member owns the growth/shrink schedule and the visibility
// step cap, and every segment bills each member for the hierarchy it
// carried.
func (b *batch) integrateSpan(integ ode.Integrator, tau, tEnd float64, y []float64, stats *ode.Stats) (float64, []float64, error) {
	const (
		actNone = iota
		actGrow
		actShrink
	)
	ref := &b.ms[b.ref]
	for {
		next := tEnd
		action := actNone
		if ref.grow {
			if tg := ref.nextGrowTau(); tg < next {
				if tg < tau {
					tg = tau
				}
				next = tg
				action = actGrow
			}
		}
		if ref.shrinkAt > 0 && tau < ref.shrinkAt && ref.shrinkAt < next {
			next = ref.shrinkAt
			action = actShrink
		}
		if ref.srcCap.h > 0 {
			cap := func(h float64) float64 {
				if ref.srcCap.base > 0 && ref.srcCap.base < h {
					return ref.srcCap.base
				}
				return h
			}
			switch {
			case tau < ref.srcCap.lo:
				ref.ad.MaxStep = ref.srcCap.base
				if ref.srcCap.lo < next {
					next = ref.srcCap.lo
					action = actNone
				}
			case tau < ref.srcCap.hi:
				ref.ad.MaxStep = cap(ref.srcCap.h)
				if ref.srcCap.hi < next {
					next = ref.srcCap.hi
					action = actNone
				}
			default:
				ref.ad.MaxStep = cap((ref.p.TauEnd - ref.srcCap.hi) * srcCapLate)
			}
		}
		st, err := integ.Integrate(b.sc.brhsf, tau, next, y)
		stats.Add(st)
		for i := range b.ms {
			m := &b.ms[i]
			m.flops += float64(st.Evals) * FlopsPerRHS(m.lmax, m.lnu, m.nq, m.p.Gauge)
		}
		if err != nil {
			return tau, y, err
		}
		tau = next
		if tau >= tEnd {
			return tau, y, nil
		}
		switch action {
		case actGrow:
			lNew := ref.neededLMax(tau) + max(8, ref.lmax/3)
			if lNew > ref.p.LMax {
				lNew = ref.p.LMax
			}
			if lNew <= ref.lmax {
				lNew = ref.lmax + 1 // cannot happen: growth times precede need
			}
			y = b.resize(lNew, y)
		case actShrink:
			ref.shrinkAt = 0
			ref.grow = false
			if ref.lmax > shrinkLMax {
				y = b.resize(shrinkLMax, y)
			}
		}
	}
}

// resize re-layouts every member for the new shared cutoff, copying the
// surviving moments block by block (the members' index maps are identical,
// so one snapshot of the old layout serves all of them).
func (b *batch) resize(lNew int, y []float64) []float64 {
	m0 := &b.ms[0]
	keep := min(lNew, m0.lmax) + 1
	oldNvar := b.nvar
	oldIfg, oldIgg, oldIfn, oldIpsn := m0.ifg, m0.igg, m0.ifn, m0.ipsn
	for i := range b.ms {
		m := &b.ms[i]
		m.lmax = lNew
		m.rA, m.rB = b.sc.rA, b.sc.rB
		m.layout()
	}
	b.nvar = m0.nvar
	nb := len(b.ms)
	ny := b.sc.resizeBuf(nb*b.nvar, nb*m0.maxNvar())
	for i := range b.ms {
		m := &b.ms[i]
		src := y[i*oldNvar : (i+1)*oldNvar]
		dst := ny[i*b.nvar : (i+1)*b.nvar]
		copy(dst[:oldIfg], src[:oldIfg]) // fluid + metric block: indices unchanged
		copy(dst[m.ifg:m.ifg+keep], src[oldIfg:oldIfg+keep])
		copy(dst[m.igg:m.igg+keep], src[oldIgg:oldIgg+keep])
		copy(dst[m.ifn:m.ifn+keep], src[oldIfn:oldIfn+keep])
		copy(dst[m.ipsn:m.ipsn+m.nq*(m.lnu+1)], src[oldIpsn:oldIpsn+m.nq*(m.lnu+1)])
	}
	return ny
}

// fillBG performs the one shared background/thermodynamics evaluation of a
// right-hand-side call, through the same path (flattened tables or exact
// splines) the members themselves would take.
func (b *batch) fillBG(a float64) {
	m := &b.ms[0]
	b.bg.kapOK = false
	if m.tab != nil {
		m.tab.Eval(a, &b.bg.g, &m.tt)
		b.bg.kd = m.tt.Kd
		b.bg.cs2 = m.tt.Cs2
	} else {
		m.BG.Eval(a, &b.bg.g)
		b.bg.kd = m.TH.Opacity(a)
		b.bg.cs2 = m.TH.Cs2(a)
	}
	b.bg.a = a
}

// rhs is the batched right-hand side: one shared background fill, then the
// scalar right-hand side per member block.
func (b *batch) rhs(tau float64, y, dy []float64) {
	n := b.nvar
	b.fillBG(y[b.ms[0].ia])
	for i := range b.ms {
		b.ms[i].rhs(tau, y[i*n:(i+1)*n], dy[i*n:(i+1)*n])
	}
}

// record is the batched per-step source recorder: the shared background
// point (including the per-step optical depth) is refreshed once, then
// each member records its own sample.
func (b *batch) record(tau float64, y []float64) {
	n := b.nvar
	m0 := &b.ms[0]
	a := y[m0.ia]
	b.fillBG(a)
	if m0.tab != nil {
		b.bg.kappa = m0.tab.OpticalDepth(a)
	} else {
		b.bg.kappa = m0.TH.OpticalDepth(a)
	}
	b.bg.kapOK = true
	for i := range b.ms {
		b.ms[i].record(tau, y[i*n:(i+1)*n])
	}
}

// monitor is the batched constraint monitor.
func (b *batch) monitor(tau float64, y []float64) {
	n := b.nvar
	b.fillBG(y[b.ms[0].ia])
	for i := range b.ms {
		b.ms[i].monitor(tau, y[i*n:(i+1)*n])
	}
}
