package core

import "testing"

// The steady-state allocation budgets of the evolve hot path. A dispatch
// worker holds one Scratch arena and threads it through EvolveWith, so
// once the arena is warm the only allocations a mode may make are its
// product: the Result header, the two multipole transfer slices, and (for
// source-recording runs) the sample backing array — everything else (state
// vector, resize buffers, ratio tables, Runge-Kutta stages) is re-sliced
// from the arena. The reference path before the arena refactor allocated
// 54/op and the fast engine 198/op (resize buffers and integrator stages
// made fresh per segment); these budgets pin both far below that so the
// regression cannot creep back.
const (
	// budgetBrute covers Result + ThetaL + ThetaPL (3) with headroom 2.
	budgetBrute = 5
	// budgetLOS adds the recorded-source backing array (may double once).
	budgetLOS = 7
)

func allocsWarm(t *testing.T, m *Model, p Params) float64 {
	t.Helper()
	sc := NewScratch()
	if _, err := m.EvolveWith(p, sc); err != nil {
		t.Fatal(err)
	}
	return testing.AllocsPerRun(5, func() {
		if _, err := m.EvolveWith(p, sc); err != nil {
			t.Fatal(err)
		}
	})
}

// TestEvolveAllocBudget guards the per-mode steady-state allocation count
// of every engine/workload combination a sweep worker runs.
func TestEvolveAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation budgets need full evolutions")
	}
	m := model(t)
	brute := Params{K: 0.02, LMax: 167, Gauge: Synchronous}
	los := Params{K: 0.02, LMax: 24, Gauge: ConformalNewtonian, KeepSources: true}
	cases := []struct {
		name   string
		p      Params
		fast   bool
		budget float64
	}{
		{"brute_reference", brute, false, budgetBrute},
		{"brute_fast", brute, true, budgetBrute},
		{"los_reference", los, false, budgetLOS},
		{"los_fast", los, true, budgetLOS},
	}
	for _, c := range cases {
		p := c.p
		p.FastEvolve = c.fast
		if got := allocsWarm(t, m, p); got > c.budget {
			t.Errorf("%s: %.0f allocs/op with a warm arena, budget %.0f", c.name, got, c.budget)
		}
	}
}

// TestScratchReuseBitwise: a warm arena must be invisible in the results —
// the same mode through a fresh private arena and through a scratch that
// just evolved two very different modes (forcing buffer growth, integrator
// carry-state, closure reuse) must agree bitwise, sources included.
func TestScratchReuseBitwise(t *testing.T) {
	m := model(t)
	for _, p := range []Params{
		{K: 0.03, LMax: 40, Gauge: Synchronous, TauEnd: 400, FastEvolve: true},
		{K: 0.03, LMax: 14, Gauge: ConformalNewtonian, TauEnd: 400, KeepSources: true, FastEvolve: true},
		{K: 0.03, LMax: 14, Gauge: ConformalNewtonian, TauEnd: 400, KeepSources: true},
	} {
		ref, err := m.Evolve(p)
		if err != nil {
			t.Fatal(err)
		}
		sc := NewScratch()
		if _, err := m.EvolveWith(Params{K: 0.09, LMax: 120, Gauge: Synchronous, TauEnd: 350, FastEvolve: true}, sc); err != nil {
			t.Fatal(err)
		}
		if _, err := m.EvolveWith(Params{K: 0.005, LMax: 8, Gauge: ConformalNewtonian, TauEnd: 350, KeepSources: true}, sc); err != nil {
			t.Fatal(err)
		}
		got, err := m.EvolveWith(p, sc)
		if err != nil {
			t.Fatal(err)
		}
		if ref.Stats != got.Stats || ref.Flops != got.Flops {
			t.Fatalf("k=%g %v: integrator work differs with a warm arena: %+v vs %+v",
				p.K, p.Gauge, ref.Stats, got.Stats)
		}
		for l := range ref.ThetaL {
			if ref.ThetaL[l] != got.ThetaL[l] || ref.ThetaPL[l] != got.ThetaPL[l] {
				t.Fatalf("k=%g %v: moment l=%d differs bitwise", p.K, p.Gauge, l)
			}
		}
		if ref.DeltaC != got.DeltaC || ref.Phi != got.Phi || ref.Eta != got.Eta ||
			ref.MaxConstraintResidual != got.MaxConstraintResidual {
			t.Fatalf("k=%g %v: state differs bitwise with a warm arena", p.K, p.Gauge)
		}
		if len(ref.Sources) != len(got.Sources) {
			t.Fatalf("k=%g: %d vs %d source samples", p.K, len(ref.Sources), len(got.Sources))
		}
		for i := range ref.Sources {
			if ref.Sources[i] != got.Sources[i] {
				t.Fatalf("k=%g: source sample %d differs bitwise", p.K, i)
			}
		}
	}
}

// TestResultsOutliveScratch: results are the product a sweep accumulates
// while the arena moves on — they must never alias scratch storage.
func TestResultsOutliveScratch(t *testing.T) {
	m := model(t)
	p := Params{K: 0.03, LMax: 12, Gauge: ConformalNewtonian, TauEnd: 400, KeepSources: true}
	sc := NewScratch()
	first, err := m.EvolveWith(p, sc)
	if err != nil {
		t.Fatal(err)
	}
	theta := append([]float64(nil), first.ThetaL...)
	src0 := first.Sources[0]
	// Clobber the arena with a different mode.
	if _, err := m.EvolveWith(Params{K: 0.08, LMax: 30, Gauge: ConformalNewtonian, TauEnd: 400, KeepSources: true, FastEvolve: true}, sc); err != nil {
		t.Fatal(err)
	}
	for l := range theta {
		if first.ThetaL[l] != theta[l] {
			t.Fatalf("ThetaL[%d] changed after the arena's next mode", l)
		}
	}
	if first.Sources[0] != src0 {
		t.Fatal("recorded sources changed after the arena's next mode")
	}
}
