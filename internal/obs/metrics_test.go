package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "", "help")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	// Get-or-create returns the same series.
	if r.Counter("test_total", "", "other help") != c {
		t.Fatal("second Counter call returned a different instance")
	}
	// A different label set is a different series under the same family.
	c2 := r.Counter("test_total", `kind="b"`, "help")
	if c2 == c {
		t.Fatal("labelled series aliased the unlabelled one")
	}
	g := r.Gauge("test_gauge", "", "help")
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %g", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram("h", "", []float64{1, 2, 4}, 1)
	for _, v := range []float64{0.5, 1.0, 1.5, 3, 8, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// 0.5 and 1.0 land in le=1 (upper bound inclusive), 1.5 in le=2, 3 in
	// le=4, 8 and 100 overflow.
	want := []uint64{2, 1, 1, 2}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 6 {
		t.Fatalf("count = %d", s.Count)
	}
	if math.Abs(s.Sum-114) > 1e-12 {
		t.Fatalf("sum = %g", s.Sum)
	}
	if s.Max != 100 {
		t.Fatalf("max = %g", s.Max)
	}
	if m := s.Mean(); math.Abs(m-19) > 1e-12 {
		t.Fatalf("mean = %g", m)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram("h", "", DefBuckets(), 4)
	// 1000 observations uniform on (0, 1s]: quantiles should land within
	// bucket resolution of the true values.
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) / 1000)
	}
	s := h.Snapshot()
	if q := s.Quantile(0.5); q < 0.25 || q > 0.75 {
		t.Fatalf("p50 = %g, want ~0.5 within bucket resolution", q)
	}
	if q := s.Quantile(0.99); q < 0.9 || q > 1.0 {
		t.Fatalf("p99 = %g", q)
	}
	if q := s.Quantile(1.0); q != s.Max {
		// p100 must resolve to the tracked maximum exactly.
		t.Fatalf("p100 = %g, max = %g", q, s.Max)
	}
	if (&HistSnapshot{}).Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
}

// TestHistogramConcurrentShards is the -race merge-correctness check:
// hammering every shard from concurrent writers must lose no observation
// and must keep sum/count consistent after the writers quiesce.
func TestHistogramConcurrentShards(t *testing.T) {
	h := NewHistogram("h", "", DefBuckets(), 8)
	const (
		workers = 16
		perW    = 5000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				h.ObserveShard(w, 0.001*float64(i%37+1))
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*perW {
		t.Fatalf("count = %d, want %d", s.Count, workers*perW)
	}
	var bucketSum uint64
	for _, c := range s.Counts {
		bucketSum += c
	}
	if bucketSum != s.Count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, s.Count)
	}
	if s.Max != 0.037 {
		t.Fatalf("max = %g, want 0.037", s.Max)
	}
}

// TestPrometheusRoundTrip pins the exposition format: write a registry out,
// parse it back, and check every series and histogram bucket survives.
func TestPrometheusRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("rt_requests_total", `endpoint="cl"`, "requests")
	c.Add(7)
	g := r.Gauge("rt_queue_depth", "", "depth")
	g.Set(3)
	r.GaugeFunc("rt_uptime_seconds", "", "uptime", func() float64 { return 12.5 })
	h := r.Histogram("rt_latency_seconds", `endpoint="cl"`, "latency", []float64{0.1, 1}, 2)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE rt_requests_total counter",
		"# TYPE rt_latency_seconds histogram",
		`rt_requests_total{endpoint="cl"} 7`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}

	samples, err := ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatalf("parse back: %v\n%s", err, text)
	}
	if s := FindSample(samples, "rt_requests_total", map[string]string{"endpoint": "cl"}); s == nil || s.Value != 7 {
		t.Fatalf("counter sample: %+v", s)
	}
	if s := FindSample(samples, "rt_queue_depth", nil); s == nil || s.Value != 3 {
		t.Fatalf("gauge sample: %+v", s)
	}
	if s := FindSample(samples, "rt_uptime_seconds", nil); s == nil || s.Value != 12.5 {
		t.Fatalf("gauge func sample: %+v", s)
	}
	// Histogram expansion: cumulative buckets, sum, count.
	if s := FindSample(samples, "rt_latency_seconds_bucket", map[string]string{"le": "0.1"}); s == nil || s.Value != 1 {
		t.Fatalf("le=0.1 bucket: %+v", s)
	}
	if s := FindSample(samples, "rt_latency_seconds_bucket", map[string]string{"le": "1"}); s == nil || s.Value != 2 {
		t.Fatalf("le=1 bucket: %+v", s)
	}
	if s := FindSample(samples, "rt_latency_seconds_bucket", map[string]string{"le": "+Inf"}); s == nil || s.Value != 3 {
		t.Fatalf("le=+Inf bucket: %+v", s)
	}
	if s := FindSample(samples, "rt_latency_seconds_count", nil); s == nil || s.Value != 3 {
		t.Fatalf("count: %+v", s)
	}
	if s := FindSample(samples, "rt_latency_seconds_sum", nil); s == nil || math.Abs(s.Value-5.55) > 1e-9 {
		t.Fatalf("sum: %+v", s)
	}
}

func TestParsePrometheusRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"no_value",
		`broken{le="0.1" 3`,
		`x{a=b} 1`,
		"name notanumber",
	} {
		if _, err := ParsePrometheus(strings.NewReader(bad)); err == nil {
			t.Fatalf("ParsePrometheus(%q) accepted garbage", bad)
		}
	}
}

// TestObserveAllocFree pins the hot-path budget: histogram observations and
// counter increments are pure atomic work.
func TestObserveAllocFree(t *testing.T) {
	h := NewHistogram("h", "", DefBuckets(), 4)
	c := NewRegistry().Counter("c_total", "", "")
	if n := testing.AllocsPerRun(100, func() {
		h.ObserveShard(1, 0.002)
		h.Observe(0.004)
		c.Inc()
	}); n > 0 {
		t.Fatalf("observe path allocates %.0f per op, want 0", n)
	}
}
