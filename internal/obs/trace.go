package obs

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one named phase of a sweep trace, with its offset from the trace
// start and its duration, both in milliseconds.
type Span struct {
	Name    string  `json:"name"`
	StartMS float64 `json:"start_ms"`
	DurMS   float64 `json:"dur_ms"`
}

// Trace records the per-phase timing of one request's computation: the
// queue wait, the model acquisition, the evolution sweep, the source
// spline, the projection. A nil *Trace is the no-op sink — every method is
// nil-safe and the Start/End pair on a nil trace performs no allocation and
// reads no clock, so instrumented code paths carry tracing unconditionally.
//
// Spans may be recorded concurrently (the Bessel prewarm runs alongside the
// sweep); they appear in completion order.
type Trace struct {
	id    string
	label string
	start time.Time

	mu      sync.Mutex
	spans   []Span
	totalMS float64
}

var traceSeq atomic.Uint64

// NewTrace starts a trace. label names the request kind (e.g. "cl").
func NewTrace(label string) *Trace {
	return &Trace{
		id:    fmt.Sprintf("sw-%06d", traceSeq.Add(1)),
		label: label,
		start: time.Now(),
		spans: make([]Span, 0, 16),
	}
}

// ID returns the trace identifier ("" for a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// SpanTimer is an in-flight span handle; call End exactly once.
type SpanTimer struct {
	t    *Trace
	name string
	t0   time.Time
}

// Start opens a span. On a nil trace it returns the zero handle without
// touching the clock.
func (t *Trace) Start(name string) SpanTimer {
	if t == nil {
		return SpanTimer{}
	}
	return SpanTimer{t: t, name: name, t0: time.Now()}
}

// End closes the span and appends it to the trace (no-op for the zero
// handle).
func (s SpanTimer) End() {
	if s.t == nil {
		return
	}
	now := time.Now()
	sp := Span{
		Name:    s.name,
		StartMS: float64(s.t0.Sub(s.t.start).Nanoseconds()) / 1e6,
		DurMS:   float64(now.Sub(s.t0).Nanoseconds()) / 1e6,
	}
	s.t.mu.Lock()
	s.t.spans = append(s.t.spans, sp)
	s.t.mu.Unlock()
}

// Finish stamps the trace's total wall time. Idempotent; later spans may
// still be appended (the concurrent prewarm can outlive the request).
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	total := float64(time.Since(t.start).Nanoseconds()) / 1e6
	t.mu.Lock()
	t.totalMS = total
	t.mu.Unlock()
}

// TraceSnapshot is the wire form of a trace, served by /v1/trace.
type TraceSnapshot struct {
	ID      string    `json:"id"`
	Label   string    `json:"label"`
	Started time.Time `json:"started"`
	TotalMS float64   `json:"total_ms"`
	Spans   []Span    `json:"spans"`
}

// Snapshot copies the trace (nil-safe; a nil trace yields the zero value).
func (t *Trace) Snapshot() TraceSnapshot {
	if t == nil {
		return TraceSnapshot{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return TraceSnapshot{
		ID:      t.id,
		Label:   t.label,
		Started: t.start,
		TotalMS: t.totalMS,
		Spans:   append([]Span(nil), t.spans...),
	}
}

// SpanMS returns the summed duration of the named span (nil-safe).
func (t *Trace) SpanMS(name string) float64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var ms float64
	for _, sp := range t.spans {
		if sp.Name == name {
			ms += sp.DurMS
		}
	}
	return ms
}

// TraceLog is a bounded ring buffer of recent traces, newest first on read.
type TraceLog struct {
	mu   sync.Mutex
	buf  []*Trace
	next int
	n    int
}

// NewTraceLog returns a ring holding the last `capacity` traces (min 1).
func NewTraceLog(capacity int) *TraceLog {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceLog{buf: make([]*Trace, capacity)}
}

// Add appends a finished (or finishing) trace, evicting the oldest.
func (l *TraceLog) Add(t *Trace) {
	if t == nil {
		return
	}
	l.mu.Lock()
	l.buf[l.next] = t
	l.next = (l.next + 1) % len(l.buf)
	if l.n < len(l.buf) {
		l.n++
	}
	l.mu.Unlock()
}

// Len returns the number of traces held.
func (l *TraceLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Last returns up to n traces, newest first.
func (l *TraceLog) Last(n int) []TraceSnapshot {
	l.mu.Lock()
	traces := make([]*Trace, 0, n)
	for i := 0; i < l.n && i < n; i++ {
		idx := (l.next - 1 - i + 2*len(l.buf)) % len(l.buf)
		traces = append(traces, l.buf[idx])
	}
	l.mu.Unlock()
	out := make([]TraceSnapshot, len(traces))
	for i, t := range traces {
		out[i] = t.Snapshot()
	}
	return out
}

// ctxKey carries a *Trace through context, the channel by which the serving
// layer threads a request's trace down through spectra into the dispatch
// backends.
type ctxKey struct{}

// ContextWithTrace attaches t to ctx (returns ctx unchanged for nil t).
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// TraceFrom extracts the trace from ctx, or nil. Alloc-free.
func TraceFrom(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}
