package obs

import (
	"runtime"
	"sync"
	"time"
)

// memCache caches one runtime.ReadMemStats per scrape burst: the gauges
// below are evaluated independently, and ReadMemStats briefly stops the
// world, so consecutive reads within 100 ms share a snapshot.
type memCache struct {
	mu sync.Mutex
	at time.Time
	ms runtime.MemStats
}

func (c *memCache) get() runtime.MemStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	if time.Since(c.at) > 100*time.Millisecond {
		runtime.ReadMemStats(&c.ms)
		c.at = time.Now()
	}
	return c.ms
}

// RegisterRuntimeMetrics adds the Go runtime gauges — goroutine count, heap
// occupancy, GC cycles and cumulative GC pause — to the registry. Values
// are read at scrape time. Idempotent per registry.
func RegisterRuntimeMetrics(r *Registry) {
	var mc memCache
	r.GaugeFunc("plinger_go_goroutines", "", "current number of goroutines",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("plinger_go_heap_alloc_bytes", "", "bytes of allocated heap objects",
		func() float64 { return float64(mc.get().HeapAlloc) })
	r.GaugeFunc("plinger_go_heap_objects", "", "number of allocated heap objects",
		func() float64 { return float64(mc.get().HeapObjects) })
	r.GaugeFunc("plinger_go_gc_runs", "", "completed GC cycles",
		func() float64 { return float64(mc.get().NumGC) })
	r.GaugeFunc("plinger_go_gc_pause_seconds", "", "cumulative GC stop-the-world pause",
		func() float64 { return float64(mc.get().PauseTotalNs) / 1e9 })
	r.GaugeFunc("plinger_go_maxprocs", "", "GOMAXPROCS at scrape time",
		func() float64 { return float64(runtime.GOMAXPROCS(0)) })
}
