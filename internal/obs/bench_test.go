package obs

import (
	"context"
	"testing"
)

// BenchmarkHistogramObserve measures the rank-sharded hot path a dispatch
// worker pays per mode. Expect low-double-digit ns and 0 allocs.
func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram("bench_seconds", "", DefBuckets(), 8)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			h.ObserveShard(i, 0.003)
			i++
		}
	})
}

// BenchmarkCounterInc measures the bare counter increment.
func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkNoopSpan measures the disabled-tracing path: a nil *Trace
// Start/End pair plus the context lookup. This is what every instrumented
// call site pays when no trace is attached.
func BenchmarkNoopSpan(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := TraceFrom(ctx)
		sp := tr.Start("evolve")
		sp.End()
	}
}

// BenchmarkLiveSpan measures the enabled path for contrast (two clock reads
// plus a mutex-guarded append into the preallocated span slice).
func BenchmarkLiveSpan(b *testing.B) {
	tr := NewTrace("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("evolve")
		sp.End()
		if i&1023 == 0 {
			// Keep the span slice from growing unboundedly.
			tr.mu.Lock()
			tr.spans = tr.spans[:0]
			tr.mu.Unlock()
		}
	}
}
