package obs

import (
	"math"
	"sync/atomic"
)

// DefBuckets returns the default latency bucket bounds in seconds: a
// quasi-exponential ladder from 100 microseconds (a cache hit) to a minute
// (a pathological cold sweep). Callers may pass their own ascending bounds
// instead; an implicit +Inf overflow bucket always follows the last bound.
func DefBuckets() []float64 {
	return []float64{
		1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
		0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
		1, 2.5, 5, 10, 30, 60,
	}
}

// ModeBuckets returns bucket bounds for per-mode evolution times: the same
// ladder as DefBuckets with a finer low end (10 microseconds), because a
// single arena-backed mode evolution on a coarse test grid runs far below
// the latency of a whole request.
func ModeBuckets() []float64 {
	return []float64{
		1e-5, 2.5e-5, 5e-5,
		1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
		0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
		1, 2.5, 5, 10,
	}
}

// histShard is one worker's private slice of a histogram. The hot words
// (count, sum, max) live in the shard struct and the bucket counters in a
// per-shard backing array, with padding spreading adjacent shards across
// cache lines — the same false-sharing defence as dispatch's paddedTiming,
// so a worker's per-mode observations never invalidate its neighbours'
// lines.
type histShard struct {
	count   atomic.Uint64
	sumBits atomic.Uint64
	maxBits atomic.Uint64
	counts  []atomic.Uint64
	_       [80]byte
}

// Histogram is a fixed-bucket histogram with lock-free sharded writes.
// Hot paths that know their worker rank call ObserveShard(rank, v) and pay
// only a handful of uncontended atomic operations; casual callers use
// Observe, which round-robins across the shards. Reads (Snapshot, the
// exposition) merge the shards.
type Histogram struct {
	name, labels string
	bounds       []float64
	shards       []histShard
	mask         uint32
	rr           atomic.Uint32
}

// NewHistogram builds a standalone histogram (Registry.Histogram wraps
// this). bounds must be ascending upper bounds; shards is rounded up to a
// power of two in [1, 64].
func NewHistogram(name, labels string, bounds []float64, shards int) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	n := 1
	for n < shards && n < 64 {
		n <<= 1
	}
	h := &Histogram{
		name:   name,
		labels: labels,
		bounds: append([]float64(nil), bounds...),
		shards: make([]histShard, n),
		mask:   uint32(n - 1),
	}
	for i := range h.shards {
		h.shards[i].counts = make([]atomic.Uint64, len(bounds)+1)
	}
	return h
}

// bucketOf returns the index of the bucket v falls into (len(bounds) is the
// overflow bucket). Binary search over the fixed bounds; no allocation.
func (h *Histogram) bucketOf(v float64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// ObserveShard records v into the given shard (taken modulo the shard
// count). Workers that own a rank call this so their observations stay
// core-local; it performs no allocation and takes no lock.
func (h *Histogram) ObserveShard(shard int, v float64) {
	s := &h.shards[uint32(shard)&h.mask]
	s.counts[h.bucketOf(v)].Add(1)
	s.count.Add(1)
	atomicAddFloat(&s.sumBits, v)
	atomicMaxFloat(&s.maxBits, v)
}

// Observe records v into a round-robin shard — the path for callers without
// a natural rank (HTTP handlers, the load generator's aggregate view).
func (h *Histogram) Observe(v float64) {
	h.ObserveShard(int(h.rr.Add(1)), v)
}

// atomicAddFloat adds delta to the float64 stored as bits in p.
func atomicAddFloat(p *atomic.Uint64, delta float64) {
	for {
		old := p.Load()
		if p.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// atomicMaxFloat raises the float64 stored as bits in p to at least v.
func atomicMaxFloat(p *atomic.Uint64, v float64) {
	for {
		old := p.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if p.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// HistSnapshot is a merged, point-in-time view of a histogram.
type HistSnapshot struct {
	Bounds []float64 // ascending upper bounds; Counts has one extra overflow slot
	Counts []uint64  // per-bucket counts (not cumulative)
	Count  uint64
	Sum    float64
	Max    float64
}

// Snapshot merges the shards. Concurrent writers may land between the
// per-shard reads, so the snapshot is approximate while under load — the
// usual scrape semantics — but exact once writers quiesce.
func (h *Histogram) Snapshot() *HistSnapshot {
	s := &HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.bounds)+1),
	}
	for i := range h.shards {
		sh := &h.shards[i]
		for b := range sh.counts {
			s.Counts[b] += sh.counts[b].Load()
		}
		s.Count += sh.count.Load()
		s.Sum += math.Float64frombits(sh.sumBits.Load())
		if m := math.Float64frombits(sh.maxBits.Load()); m > s.Max {
			s.Max = m
		}
	}
	return s
}

// Mean returns the average observation (0 when empty).
func (s *HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// within the bucket holding the target rank; observations in the overflow
// bucket resolve to the tracked maximum. Resolution is bounded by the
// bucket width, which is the usual histogram trade: cheap lock-free writes
// against ~bucket-granular quantiles.
func (s *HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	target := q * float64(s.Count)
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if float64(cum) >= target && c > 0 {
			if i == len(s.Bounds) {
				return s.Max
			}
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := s.Bounds[i]
			frac := (target - float64(cum-c)) / float64(c)
			v := lo + (hi-lo)*frac
			// The tracked max is a tighter cap than the bucket's upper bound.
			if v > s.Max && s.Max > 0 {
				v = s.Max
			}
			return v
		}
	}
	return s.Max
}
