package obs

import (
	"context"
	"testing"
	"time"
)

func TestTraceSpans(t *testing.T) {
	tr := NewTrace("cl")
	if tr.ID() == "" {
		t.Fatal("empty trace id")
	}
	sp := tr.Start("evolve")
	time.Sleep(2 * time.Millisecond)
	sp.End()
	tr.Start("project").End()
	tr.Finish()

	snap := tr.Snapshot()
	if snap.Label != "cl" || snap.ID != tr.ID() {
		t.Fatalf("snapshot identity: %+v", snap)
	}
	if len(snap.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(snap.Spans))
	}
	if snap.Spans[0].Name != "evolve" || snap.Spans[0].DurMS < 1 {
		t.Fatalf("evolve span: %+v", snap.Spans[0])
	}
	if snap.TotalMS < snap.Spans[0].DurMS {
		t.Fatalf("total %.3f < evolve %.3f", snap.TotalMS, snap.Spans[0].DurMS)
	}
	if ms := tr.SpanMS("evolve"); ms != snap.Spans[0].DurMS {
		t.Fatalf("SpanMS = %g, want %g", ms, snap.Spans[0].DurMS)
	}
	// Snapshot must be a copy: later spans don't retroactively appear.
	tr.Start("late").End()
	if len(snap.Spans) != 2 {
		t.Fatal("snapshot aliases live span slice")
	}
}

func TestTraceNilNoop(t *testing.T) {
	var tr *Trace
	if tr.ID() != "" {
		t.Fatal("nil trace has an id")
	}
	tr.Start("x").End() // must not panic
	tr.Finish()
	if s := tr.Snapshot(); s.ID != "" || len(s.Spans) != 0 {
		t.Fatalf("nil snapshot: %+v", s)
	}
	if tr.SpanMS("x") != 0 {
		t.Fatal("nil SpanMS != 0")
	}
	// The acceptance budget: the no-op sink allocates nothing.
	if n := testing.AllocsPerRun(100, func() {
		sp := tr.Start("evolve")
		sp.End()
	}); n > 0 {
		t.Fatalf("nil trace span allocates %.0f per op, want 0", n)
	}
}

func TestContextThreading(t *testing.T) {
	if TraceFrom(context.Background()) != nil {
		t.Fatal("empty context yielded a trace")
	}
	tr := NewTrace("pk")
	ctx := ContextWithTrace(context.Background(), tr)
	if TraceFrom(ctx) != tr {
		t.Fatal("trace lost in context round-trip")
	}
	// nil trace attaches nothing.
	if ctx2 := ContextWithTrace(context.Background(), nil); TraceFrom(ctx2) != nil {
		t.Fatal("nil trace produced a context value")
	}
}

func TestTraceLogRing(t *testing.T) {
	l := NewTraceLog(3)
	if l.Len() != 0 {
		t.Fatal("fresh ring not empty")
	}
	l.Add(nil) // ignored
	if l.Len() != 0 {
		t.Fatal("nil trace counted")
	}
	var ids []string
	for i := 0; i < 5; i++ {
		tr := NewTrace("cl")
		tr.Finish()
		l.Add(tr)
		ids = append(ids, tr.ID())
	}
	if l.Len() != 3 {
		t.Fatalf("len = %d, want 3 (capacity)", l.Len())
	}
	// Newest first; the two oldest were evicted.
	got := l.Last(10)
	if len(got) != 3 {
		t.Fatalf("Last(10) = %d traces", len(got))
	}
	want := []string{ids[4], ids[3], ids[2]}
	for i, w := range want {
		if got[i].ID != w {
			t.Fatalf("Last order: got[%d]=%s, want %s", i, got[i].ID, w)
		}
	}
	if got := l.Last(1); len(got) != 1 || got[0].ID != ids[4] {
		t.Fatalf("Last(1): %+v", got)
	}
}

func TestConcurrentSpans(t *testing.T) {
	// The Bessel prewarm records its span from a goroutine concurrent with
	// the sweep's spans; all must land.
	tr := NewTrace("cl")
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 100; j++ {
				tr.Start("worker").End()
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	tr.Finish()
	if n := len(tr.Snapshot().Spans); n != 800 {
		t.Fatalf("spans = %d, want 800", n)
	}
}
