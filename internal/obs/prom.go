package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered metric in Prometheus text
// exposition format (version 0.0.4): families in registration order, each
// with one # HELP and # TYPE line, series sorted by label set, histograms
// expanded into cumulative _bucket{le=...} lines plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names, fams := r.snapshotLocked()
	help := make(map[string]string, len(names))
	kinds := make(map[string]string, len(names))
	for _, n := range names {
		help[n] = r.help[n]
		kinds[n] = r.seenKinds[n]
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, name := range names {
		if h := help[name]; h != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", name, h)
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", name, kinds[name])
		for _, s := range fams[name] {
			if s.hist != nil {
				writeHistSeries(bw, name, s.labels, s.hist)
				continue
			}
			if s.isCount {
				fmt.Fprintf(bw, "%s %s\n", seriesName(name, s.labels), strconv.FormatUint(uint64(s.value), 10))
			} else {
				fmt.Fprintf(bw, "%s %s\n", seriesName(name, s.labels), formatValue(s.value))
			}
		}
	}
	return bw.Flush()
}

// seriesName renders name{labels} (or bare name for an empty label body).
func seriesName(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

// withLE appends the le label to an existing label body.
func withLE(labels, le string) string {
	if labels == "" {
		return `le="` + le + `"`
	}
	return labels + `,le="` + le + `"`
}

func formatValue(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// writeHistSeries expands one histogram into the cumulative bucket lines.
func writeHistSeries(w io.Writer, name, labels string, s *HistSnapshot) {
	var cum uint64
	for i, bound := range s.Bounds {
		cum += s.Counts[i]
		fmt.Fprintf(w, "%s %d\n", seriesName(name+"_bucket", withLE(labels, formatValue(bound))), cum)
	}
	cum += s.Counts[len(s.Bounds)]
	fmt.Fprintf(w, "%s %d\n", seriesName(name+"_bucket", withLE(labels, "+Inf")), cum)
	fmt.Fprintf(w, "%s %s\n", seriesName(name+"_sum", labels), formatValue(s.Sum))
	fmt.Fprintf(w, "%s %d\n", seriesName(name+"_count", labels), s.Count)
}

// Sample is one parsed exposition line.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParsePrometheus reads text exposition format back into samples — the
// round-trip check for WritePrometheus and the assertion helper the serving
// tests scrape /metrics with. It accepts the subset this package emits
// (label values without escaped quotes) and rejects malformed lines.
func ParsePrometheus(r io.Reader) ([]Sample, error) {
	var out []Sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		s.Name = rest[:i]
		j := strings.IndexByte(rest, '}')
		if j < i {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		body := rest[i+1 : j]
		rest = strings.TrimSpace(rest[j+1:])
		for _, pair := range strings.Split(body, ",") {
			if pair == "" {
				continue
			}
			eq := strings.IndexByte(pair, '=')
			if eq < 0 {
				return s, fmt.Errorf("bad label pair %q", pair)
			}
			k := strings.TrimSpace(pair[:eq])
			v := strings.TrimSpace(pair[eq+1:])
			v, ok := strings.CutPrefix(v, `"`)
			if !ok {
				return s, fmt.Errorf("unquoted label value in %q", pair)
			}
			v, ok = strings.CutSuffix(v, `"`)
			if !ok {
				return s, fmt.Errorf("unterminated label value in %q", pair)
			}
			s.Labels[k] = v
		}
	} else {
		i := strings.IndexByte(rest, ' ')
		if i < 0 {
			return s, fmt.Errorf("no value in %q", line)
		}
		s.Name = rest[:i]
		rest = strings.TrimSpace(rest[i:])
	}
	if s.Name == "" {
		return s, fmt.Errorf("empty metric name in %q", line)
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %v", line, err)
	}
	s.Value = v
	return s, nil
}

// FindSample returns the first sample matching name and the given label
// subset (nil matches any labels), or nil.
func FindSample(samples []Sample, name string, labels map[string]string) *Sample {
	for i := range samples {
		s := &samples[i]
		if s.Name != name {
			continue
		}
		ok := true
		for k, v := range labels {
			if s.Labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			return s
		}
	}
	return nil
}

// SampleNames returns the sorted distinct metric names in samples.
func SampleNames(samples []Sample) []string {
	set := map[string]bool{}
	for _, s := range samples {
		set[s.Name] = true
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
