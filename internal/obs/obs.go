// Package obs is the observability layer: a small, dependency-free metrics
// registry (counters, gauges, fixed-bucket histograms with padded per-worker
// shards), Prometheus text exposition, and a sweep tracer recording per-phase
// spans into a bounded ring buffer.
//
// The design constraints come from the compute pipeline it instruments:
//
//   - the hot path must stay allocation-free — counters and histogram
//     observations are plain atomic operations on preallocated arrays, and
//     a nil *Trace is a no-op sink whose Start/End pair compiles down to a
//     nil check (budget-tested at 0 allocs);
//   - concurrent sweep workers must not contend — histograms expose
//     ObserveShard so each worker rank owns a padded shard (the
//     dispatch.paddedTiming trick), merged only at scrape time;
//   - everything is stdlib-only, so core/dispatch/serve can all import it.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is unusable;
// create counters through Registry.Counter.
type Counter struct {
	v            atomic.Uint64
	name, labels string
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable instantaneous value.
type Gauge struct {
	bits         atomic.Uint64
	name, labels string
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// gaugeFunc is a scrape-time gauge: the function runs on every exposition.
type gaugeFunc struct {
	name, labels string
	fn           func() float64
}

// Registry holds a set of named metrics and renders them in Prometheus text
// exposition format. Lookups are get-or-create: asking for an existing
// (name, labels) pair returns the same metric, so package-level init code
// and tests can share series without coordination. Safe for concurrent use.
type Registry struct {
	mu        sync.Mutex
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	gaugeFns  map[string]*gaugeFunc
	hists     map[string]*Histogram
	help      map[string]string // by family name
	order     []string          // family names in registration order
	seenKinds map[string]string // family name -> kind, guards mismatched reuse
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:  make(map[string]*Counter),
		gauges:    make(map[string]*Gauge),
		gaugeFns:  make(map[string]*gaugeFunc),
		hists:     make(map[string]*Histogram),
		help:      make(map[string]string),
		seenKinds: make(map[string]string),
	}
}

// Default is the process-wide registry. Long-lived subsystems without a
// natural owner (dispatch backends, the core table builder, the Go runtime
// gauges) register here; the daemon's /metrics endpoint scrapes it alongside
// the service's own registry.
var Default = NewRegistry()

// seriesKey joins name and labels into the unique series identity.
func seriesKey(name, labels string) string { return name + "\xff" + labels }

// registerFamily books the family's help text and kind on first sight.
func (r *Registry) registerFamily(name, kind, help string) {
	if _, ok := r.seenKinds[name]; !ok {
		r.seenKinds[name] = kind
		r.help[name] = help
		r.order = append(r.order, name)
	}
}

// Counter returns the counter for (name, labels), creating it on first use.
// labels is a raw Prometheus label body such as `endpoint="cl"` (empty for
// an unlabelled series).
func (r *Registry) Counter(name, labels, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := seriesKey(name, labels)
	if c, ok := r.counters[key]; ok {
		return c
	}
	r.registerFamily(name, "counter", help)
	c := &Counter{name: name, labels: labels}
	r.counters[key] = c
	return c
}

// Gauge returns the settable gauge for (name, labels), creating it on first
// use.
func (r *Registry) Gauge(name, labels, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := seriesKey(name, labels)
	if g, ok := r.gauges[key]; ok {
		return g
	}
	r.registerFamily(name, "gauge", help)
	g := &Gauge{name: name, labels: labels}
	r.gauges[key] = g
	return g
}

// GaugeFunc registers a scrape-time gauge backed by fn. A second
// registration for the same (name, labels) keeps the first function.
func (r *Registry) GaugeFunc(name, labels, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := seriesKey(name, labels)
	if _, ok := r.gaugeFns[key]; ok {
		return
	}
	r.registerFamily(name, "gauge", help)
	r.gaugeFns[key] = &gaugeFunc{name: name, labels: labels, fn: fn}
}

// Histogram returns the histogram for (name, labels), creating it with the
// given bucket bounds and shard count on first use (see NewHistogram).
func (r *Registry) Histogram(name, labels, help string, bounds []float64, shards int) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := seriesKey(name, labels)
	if h, ok := r.hists[key]; ok {
		return h
	}
	r.registerFamily(name, "histogram", help)
	h := NewHistogram(name, labels, bounds, shards)
	r.hists[key] = h
	return h
}

// families returns the family names in registration order and a snapshot of
// each family's series, for exposition.
func (r *Registry) snapshotLocked() ([]string, map[string][]series) {
	fams := make(map[string][]series)
	add := func(name string, s series) { fams[name] = append(fams[name], s) }
	for _, c := range r.counters {
		add(c.name, series{labels: c.labels, value: float64(c.Value()), isCount: true})
	}
	for _, g := range r.gauges {
		add(g.name, series{labels: g.labels, value: g.Value()})
	}
	for _, gf := range r.gaugeFns {
		add(gf.name, series{labels: gf.labels, value: gf.fn()})
	}
	for _, h := range r.hists {
		add(h.name, series{labels: h.labels, hist: h.Snapshot()})
	}
	names := append([]string(nil), r.order...)
	for _, ss := range fams {
		sort.Slice(ss, func(a, b int) bool { return ss[a].labels < ss[b].labels })
	}
	return names, fams
}

// series is one exposition line (or, for histograms, one bucket family).
type series struct {
	labels  string
	value   float64
	isCount bool
	hist    *HistSnapshot
}
