package serve

import (
	"context"
	"fmt"
	"time"
)

// WarmReport summarizes a warm-up sweep.
type WarmReport struct {
	Requests int           `json:"requests"`
	Sweeps   uint64        `json:"sweeps"`
	Elapsed  time.Duration `json:"-"`
	ElapsedS float64       `json:"elapsed_seconds"`
}

// Warm precomputes the given C_l and P(k) requests so they are cache hits
// when traffic arrives, sequentially (warm-up shares the admission queue
// with live traffic, and the sweeps inside already use the dispatch pool).
func (s *Service) Warm(ctx context.Context, cls []ClRequest, pks []PkRequest) (WarmReport, error) {
	start := time.Now()
	before := s.Sweeps()
	rep := WarmReport{}
	for i, r := range cls {
		if _, _, err := s.ComputeCl(ctx, r); err != nil {
			return rep, fmt.Errorf("serve: warm cl request %d: %w", i, err)
		}
		rep.Requests++
	}
	for i, r := range pks {
		if _, _, err := s.ComputePk(ctx, r); err != nil {
			return rep, fmt.Errorf("serve: warm pk request %d: %w", i, err)
		}
		rep.Requests++
	}
	rep.Sweeps = s.Sweeps() - before
	rep.Elapsed = time.Since(start)
	rep.ElapsedS = rep.Elapsed.Seconds()
	return rep, nil
}

// DefaultWarmGrid is the stock precompute set: the default C_l product
// (raw and COBE-normalized — same sweep cost, two cache entries), the
// default P(k), and a coarse half-resolution C_l for preview traffic. One
// model build, one warm Bessel table, four hot keys.
func DefaultWarmGrid(d Defaults) ([]ClRequest, []PkRequest) {
	cls := []ClRequest{
		{},                // the default product
		{QCOBEMicroK: 18}, // Figure 2 normalization
	}
	// The half-resolution preview entry only when it is still a valid
	// product (a tiny configured default would halve below the quadrature
	// minimum and abort startup).
	if d.LMaxCl/2 >= 2 && d.NK/2 >= 3 {
		cls = append(cls, ClRequest{LMaxCl: d.LMaxCl / 2, NK: d.NK / 2})
	}
	pks := []PkRequest{{}}
	return cls, pks
}
