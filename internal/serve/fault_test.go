package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// A cold request whose deadline expires before the sweep finishes gets 504
// semantics (ErrDeadline), but the computation keeps running and fills the
// cache for the next caller — a timed-out request warms the key.
func TestDeadlineColdRequest(t *testing.T) {
	s := testService()
	defer s.Close()
	ctx := context.Background()

	_, meta, err := s.ComputeCl(ctx, ClRequest{DeadlineMS: 1})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("1ms deadline on a cold sweep: err = %v (meta %+v)", err, meta)
	}
	// The sweep continues in the background; wait for it to land.
	deadline := time.Now().Add(30 * time.Second)
	for s.Sweeps() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background sweep never completed after the timeout")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// deadline_ms is an execution knob, not physics: the same request without
	// it shares the key and is now a cache hit.
	_, meta, err = s.ComputeCl(ctx, ClRequest{})
	if err != nil || meta.Source != SourceCache {
		t.Fatalf("request after timed-out warm-up: source %s err %v", meta.Source, err)
	}
	st := s.Stats()
	if st.Timeouts != 1 {
		t.Fatalf("timeouts counter %d, want 1", st.Timeouts)
	}
	if st.Sweeps != 1 {
		t.Fatalf("sweeps %d, want 1 (the timed-out computation must not rerun)", st.Sweeps)
	}
}

// When the primary LRU has evicted a key but the stale cache still holds the
// last good response, a deadline expiry serves stale instead of 504.
func TestDeadlineServesStale(t *testing.T) {
	s := New(Options{Defaults: testDefaults(), Workers: 1, CacheSize: 1, ModelCacheSize: 2, MaxConcurrent: 2, MaxQueue: 32})
	defer s.Close()
	ctx := context.Background()

	want, _, err := s.ComputeCl(ctx, ClRequest{})
	if err != nil {
		t.Fatal(err)
	}
	// A second key through the 1-entry primary cache evicts the first; the
	// stale cache (4x) keeps both.
	if _, _, err := s.ComputeCl(ctx, ClRequest{LMaxCl: 30}); err != nil {
		t.Fatal(err)
	}
	got, meta, err := s.ComputeCl(ctx, ClRequest{DeadlineMS: 1})
	if err != nil {
		t.Fatalf("stale-backed timeout returned error: %v", err)
	}
	if meta.Source != SourceStale {
		t.Fatalf("source %s, want %s", meta.Source, SourceStale)
	}
	if len(got.Cl) != len(want.Cl) {
		t.Fatalf("stale payload shape differs: %d vs %d", len(got.Cl), len(want.Cl))
	}
	for i := range want.Cl {
		if got.Cl[i] != want.Cl[i] {
			t.Fatalf("stale C_l[%d] = %g, want the previously computed %g", i, got.Cl[i], want.Cl[i])
		}
	}
	st := s.Stats()
	if st.Timeouts != 1 || st.StaleServed != 1 {
		t.Fatalf("counters: timeouts %d stale %d, want 1 and 1", st.Timeouts, st.StaleServed)
	}
	if st.Stale.Size < 2 {
		t.Fatalf("stale cache holds %d entries, want both keys", st.Stale.Size)
	}
}

// ErrBusy with a stale response on hand degrades to stale too: overload
// answers with the last known good spectrum rather than a 503.
func TestBusyServesStale(t *testing.T) {
	s := New(Options{Defaults: testDefaults(), Workers: 1, CacheSize: 1, ModelCacheSize: 2, MaxConcurrent: 1, MaxQueue: -1})
	defer s.Close()
	ctx := context.Background()

	if _, _, err := s.ComputeCl(ctx, ClRequest{}); err != nil {
		t.Fatal(err)
	}
	// Evict the default key from the primary cache.
	if _, _, err := s.ComputeCl(ctx, ClRequest{LMaxCl: 30}); err != nil {
		t.Fatal(err)
	}
	// Occupy the only compute slot with a third, distinct key.
	slowDone := make(chan error, 1)
	go func() {
		_, _, err := s.ComputeCl(ctx, ClRequest{LMaxCl: 36})
		slowDone <- err
	}()
	for s.adm.Stats().Computing == 0 {
		select {
		case err := <-slowDone:
			t.Fatalf("slow request finished early: %v", err)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	_, meta, err := s.ComputeCl(ctx, ClRequest{})
	if err != nil {
		t.Fatalf("busy service with stale on hand errored: %v", err)
	}
	if meta.Source != SourceStale {
		t.Fatalf("source %s, want %s", meta.Source, SourceStale)
	}
	if err := <-slowDone; err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Rejected != 1 || st.StaleServed != 1 {
		t.Fatalf("counters: rejected %d stale %d, want 1 and 1", st.Rejected, st.StaleServed)
	}
}

func TestDeadlineValidation(t *testing.T) {
	s := testService()
	defer s.Close()
	if err := (ClRequest{DeadlineMS: -1}).Validate(); err == nil {
		t.Fatal("negative cl deadline_ms accepted")
	}
	if err := (PkRequest{DeadlineMS: -1}).Validate(); err == nil {
		t.Fatal("negative pk deadline_ms accepted")
	}
	if _, _, err := s.ComputeCl(context.Background(), ClRequest{DeadlineMS: -5}); err == nil {
		t.Fatal("service accepted a negative deadline")
	}
	if s.Sweeps() != 0 {
		t.Fatal("invalid deadline ran a sweep")
	}
	// deadline_ms never enters the cache key: two spellings, one key.
	d := testDefaults()
	with := ClRequest{DeadlineMS: 250}
	if with.Key(d) != (ClRequest{}).Key(d) {
		t.Fatal("deadline_ms leaked into the cache key")
	}
	if (PkRequest{DeadlineMS: 250}).Key(d) != (PkRequest{}).Key(d) {
		t.Fatal("pk deadline_ms leaked into the cache key")
	}
}

// The HTTP layer: an expired deadline with no stale fallback is 504 with
// Retry-After (the sweep is filling the cache); a negative deadline is 400;
// the fault counters surface in /v1/stats.
func TestHTTPDeadline(t *testing.T) {
	s := testService()
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	client := srv.Client()

	resp, _ := postJSON(t, client, srv.URL+"/v1/cl", `{"deadline_ms": 1}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("cold deadline: status %d, want 504", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("504 without Retry-After")
	}
	resp, _ = postJSON(t, client, srv.URL+"/v1/cl", `{"deadline_ms": -1}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative deadline: status %d, want 400", resp.StatusCode)
	}

	// The timed-out sweep still completes and warms the cache: the same
	// physics with a deadline now answers 200 from cache within it.
	deadline := time.Now().Add(30 * time.Second)
	for s.Sweeps() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background sweep never completed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, env := postJSON(t, client, srv.URL+"/v1/cl", `{"deadline_ms": 1000}`)
	if resp.StatusCode != http.StatusOK || env.Source != SourceCache {
		t.Fatalf("warmed request: status %d source %s", resp.StatusCode, env.Source)
	}

	sresp, err := client.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if st.Timeouts != 1 {
		t.Fatalf("stats timeouts %d, want 1", st.Timeouts)
	}
}
