package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

type wireEnvelope struct {
	Key       string          `json:"key"`
	Source    Source          `json:"source"`
	ElapsedMS float64         `json:"elapsed_ms"`
	Result    json.RawMessage `json:"result"`
}

func postJSON(t *testing.T, client *http.Client, url, body string) (*http.Response, wireEnvelope) {
	t.Helper()
	resp, err := client.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env wireEnvelope
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatal(err)
		}
	}
	return resp, env
}

// TestHTTPEndToEnd drives the daemon's handler the way a client would:
// cold /v1/cl miss, then a hot repeat that must be a sub-10ms cache hit,
// /v1/pk, /v1/stats, and the error paths.
func TestHTTPEndToEnd(t *testing.T) {
	s := testService()
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	client := srv.Client()

	// Cold request: computed.
	resp, env := postJSON(t, client, srv.URL+"/v1/cl", `{}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold cl: status %d", resp.StatusCode)
	}
	if env.Source != SourceCompute {
		t.Fatalf("cold cl source %q", env.Source)
	}
	var cl ClResponse
	if err := json.Unmarshal(env.Result, &cl); err != nil {
		t.Fatal(err)
	}
	if len(cl.L) == 0 || len(cl.Cl) != len(cl.L) {
		t.Fatalf("bad payload: %+v", cl)
	}

	// Hot repeat: cache hit, served fast. Take the best of a few tries so
	// a scheduler hiccup cannot flake the bound; the acceptance criterion
	// is < 10 ms.
	best := time.Hour
	for i := 0; i < 5; i++ {
		start := time.Now()
		resp, env = postJSON(t, client, srv.URL+"/v1/cl", `{}`)
		if el := time.Since(start); el < best {
			best = el
		}
		if resp.StatusCode != http.StatusOK || env.Source != SourceCache {
			t.Fatalf("hot cl: status %d source %q", resp.StatusCode, env.Source)
		}
	}
	if best >= 10*time.Millisecond {
		t.Fatalf("cache hit took %v, want < 10ms", best)
	}
	if resp.Header.Get("X-Plinger-Source") != string(SourceCache) {
		t.Fatal("missing X-Plinger-Source header")
	}

	// Equal physics spelled differently: same key, still a hit.
	_, env2 := postJSON(t, client, srv.URL+"/v1/cl", `{"lmax_cl": 24, "nk": 36, "krefine": 4}`)
	if env2.Key != env.Key || env2.Source != SourceCache {
		t.Fatalf("explicit-defaults request missed: key %s vs %s, source %s", env2.Key, env.Key, env2.Source)
	}

	// P(k).
	resp, env = postJSON(t, client, srv.URL+"/v1/pk", `{"nk": 8}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pk: status %d", resp.StatusCode)
	}
	var pk PkResponse
	if err := json.Unmarshal(env.Result, &pk); err != nil {
		t.Fatal(err)
	}
	if pk.Sigma8 <= 0 {
		t.Fatalf("pk payload: %+v", pk)
	}

	// Stats.
	sresp, err := client.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if st.Requests < 8 || st.Hits < 6 || st.Sweeps != 2 {
		t.Fatalf("stats: %+v", st)
	}

	// Error paths: bad JSON, bad option values, wrong method.
	resp, _ = postJSON(t, client, srv.URL+"/v1/cl", `{"lmax_cl": `)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated JSON: status %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, client, srv.URL+"/v1/cl", `{"nk": 2}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad NK: status %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, client, srv.URL+"/v1/pk", `{"kmin": 0.5, "kmax": 0.1}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("inverted range: status %d", resp.StatusCode)
	}
	getResp, err := client.Get(srv.URL + "/v1/cl")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/cl: status %d", getResp.StatusCode)
	}
	hresp, err := client.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", hresp.StatusCode)
	}
}

// TestHTTPConcurrentIdenticalRequests is the end-to-end coalescing check:
// concurrent identical cold HTTP requests produce one sweep.
func TestHTTPConcurrentIdenticalRequests(t *testing.T) {
	s := testService()
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	const n = 8
	start := make(chan struct{})
	var wg sync.WaitGroup
	status := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			resp, _ := postJSON(t, srv.Client(), srv.URL+"/v1/cl", `{}`)
			status[i] = resp.StatusCode
		}(i)
	}
	close(start)
	wg.Wait()
	for i, code := range status {
		if code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, code)
		}
	}
	if got := s.Sweeps(); got != 1 {
		t.Fatalf("%d concurrent identical requests ran %d sweeps", n, got)
	}
}

func TestWarm(t *testing.T) {
	s := testService()
	defer s.Close()
	d := s.Defaults()
	cls, pks := DefaultWarmGrid(d)
	rep, err := s.Warm(context.Background(), cls, pks)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != len(cls)+len(pks) {
		t.Fatalf("warm report %+v", rep)
	}
	// The raw and COBE-normalized defaults share a sweep only in spirit
	// (separate cache keys, separate sweeps); what matters is that the
	// default request is now a sub-10ms hit.
	_, meta, err := s.ComputeCl(context.Background(), ClRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if meta.Source != SourceCache {
		t.Fatalf("default request after warm: source %s", meta.Source)
	}
	if _, meta, _ = s.ComputePk(context.Background(), PkRequest{}); meta.Source != SourceCache {
		t.Fatalf("default pk after warm: source %s", meta.Source)
	}
}
