package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"plinger"
)

// clCfg is SCDM with a different Hubble constant (Flatten absorbs the
// radiation-density shift that comes with changing H).
func clCfg(h float64) plinger.Config {
	cfg := plinger.SCDM()
	cfg.H = h
	cfg.Flatten = true
	return cfg
}

// clOptsTiny is the cheapest real spectrum computation.
func clOptsTiny() plinger.SpectrumOptions {
	return plinger.SpectrumOptions{LMaxCl: 12, NK: 24, FastLOS: true}
}

func TestLRU(t *testing.T) {
	c := newLRU(2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	c.Add("a", 1)
	c.Add("b", 2)
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Fatal("a missing")
	}
	c.Add("c", 3) // evicts b (a was just used)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c missing")
	}
	st := c.Stats()
	if st.Size != 2 || st.Evictions != 1 {
		t.Fatalf("stats %+v", st)
	}
	c.Add("c", 33) // refresh in place
	if v, _ := c.Get("c"); v.(int) != 33 {
		t.Fatal("refresh lost")
	}
}

// TestFlightGroupCoalesces is the unit-level coalescing guarantee: the
// leader's fn runs exactly once no matter how many goroutines pile onto
// the key, and every follower receives the leader's value.
func TestFlightGroupCoalesces(t *testing.T) {
	var g flightGroup
	const n = 16
	started := make(chan struct{})
	release := make(chan struct{})
	calls := 0

	var wg sync.WaitGroup
	vals := make([]any, n)
	coal := make([]bool, n)
	wg.Add(1)
	go func() {
		defer wg.Done()
		vals[0], _, coal[0] = g.Do("k", func() (any, error) {
			close(started)
			<-release
			calls++
			return 42, nil
		})
	}()
	<-started // leader inside fn; everyone else must coalesce
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vals[i], _, coal[i] = g.Do("k", func() (any, error) {
				calls++
				return -1, nil
			})
		}(i)
	}
	// Wait until all followers are registered on the call before releasing.
	for {
		g.mu.Lock()
		d := g.m["k"].dups
		g.mu.Unlock()
		if d == n-1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if calls != 1 {
		t.Fatalf("fn ran %d times", calls)
	}
	for i := 0; i < n; i++ {
		if vals[i].(int) != 42 {
			t.Fatalf("goroutine %d got %v", i, vals[i])
		}
		if (i == 0) == coal[i] {
			t.Fatalf("goroutine %d coalesced=%v", i, coal[i])
		}
	}
	if g.InFlight() != 0 {
		t.Fatal("flight leaked")
	}
}

func TestFlightGroupPropagatesError(t *testing.T) {
	var g flightGroup
	wantErr := errors.New("boom")
	_, err, _ := g.Do("k", func() (any, error) { return nil, wantErr })
	if err != wantErr {
		t.Fatalf("err = %v", err)
	}
	// The key must be reusable after a failure.
	v, err, _ := g.Do("k", func() (any, error) { return 7, nil })
	if err != nil || v.(int) != 7 {
		t.Fatalf("retry failed: %v %v", v, err)
	}
}

func TestAdmissionBounds(t *testing.T) {
	a := newAdmission(1, 1)
	if err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Slot taken; one waiter allowed, second waiter rejected.
	waiterIn := make(chan error, 1)
	go func() {
		err := a.acquire(context.Background())
		waiterIn <- err
	}()
	// Give the waiter time to enter the line.
	for a.Stats().Waiting == 0 {
		time.Sleep(time.Millisecond)
	}
	if err := a.acquire(context.Background()); !errors.Is(err, ErrBusy) {
		t.Fatalf("overflow acquire: %v", err)
	}
	a.release()
	if err := <-waiterIn; err != nil {
		t.Fatalf("waiter: %v", err)
	}
	a.release()

	// Context cancellation frees a waiter.
	if err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- a.acquire(ctx) }()
	for a.Stats().Waiting == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter: %v", err)
	}
	a.release()
}

// testDefaults keeps service tests fast: a coarse spectrum still exercises
// the full path (model build, sweep, fast projection).
func testDefaults() Defaults {
	return Defaults{LMaxCl: 24, NK: 36, KRefine: 4, PkNK: 8}
}

func testService() *Service {
	return New(Options{Defaults: testDefaults(), Workers: 1, CacheSize: 8, ModelCacheSize: 2, MaxConcurrent: 2, MaxQueue: 32})
}

// TestServiceCoalescesColdRequests is the acceptance-criterion test:
// concurrent identical cold requests trigger exactly one sweep.
func TestServiceCoalescesColdRequests(t *testing.T) {
	s := testService()
	defer s.Close()
	const n = 8
	start := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, n)
	metas := make([]Meta, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			_, metas[i], errs[i] = s.ComputeCl(context.Background(), ClRequest{})
		}(i)
	}
	close(start)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if got := s.Sweeps(); got != 1 {
		t.Fatalf("%d concurrent identical cold requests ran %d sweeps, want exactly 1", n, got)
	}
	computed, coalesced := 0, 0
	for _, m := range metas {
		switch m.Source {
		case SourceCompute:
			computed++
		case SourceCoalesced:
			coalesced++
		}
	}
	if computed != 1 || coalesced != n-1 {
		t.Fatalf("sources: %d computed, %d coalesced", computed, coalesced)
	}

	// And the key is now hot: a repeat is a cache hit with no new sweep.
	_, meta, err := s.ComputeCl(context.Background(), ClRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if meta.Source != SourceCache || s.Sweeps() != 1 {
		t.Fatalf("repeat request: source %s, sweeps %d", meta.Source, s.Sweeps())
	}
}

func TestServiceServesDistinctProducts(t *testing.T) {
	s := testService()
	defer s.Close()
	ctx := context.Background()

	cl, meta, err := s.ComputeCl(ctx, ClRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if meta.Source != SourceCompute || len(cl.L) == 0 || len(cl.Cl) != len(cl.L) || len(cl.BandPowerUK) != len(cl.L) {
		t.Fatalf("bad cl response: %+v meta %+v", cl, meta)
	}
	for i, v := range cl.Cl {
		if v <= 0 {
			t.Fatalf("C_l[%d] = %g not positive", i, v)
		}
	}

	// COBE-normalized variant: separate key, rescaled payload.
	norm, meta2, err := s.ComputeCl(ctx, ClRequest{QCOBEMicroK: 18})
	if err != nil {
		t.Fatal(err)
	}
	if meta2.Key == meta.Key {
		t.Fatal("normalized request shares the raw key")
	}
	if norm.AmpScale <= 0 {
		t.Fatal("normalized response missing AmpScale")
	}

	pk, _, err := s.ComputePk(ctx, PkRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pk.K) == 0 || len(pk.P) != len(pk.K) || pk.Sigma8 <= 0 {
		t.Fatalf("bad pk response: %+v", pk)
	}

	st := s.Stats()
	if st.Sweeps != 3 || st.Misses != 3 {
		t.Fatalf("stats after three products: %+v", st)
	}
	if st.Models.Builds != 1 {
		t.Fatalf("one cosmology built %d models", st.Models.Builds)
	}
}

func TestServiceRejectsBadRequests(t *testing.T) {
	s := testService()
	defer s.Close()
	ctx := context.Background()
	if _, _, err := s.ComputeCl(ctx, ClRequest{NK: 2}); err == nil {
		t.Fatal("NK=2 accepted")
	}
	if _, _, err := s.ComputePk(ctx, PkRequest{KMin: 0.5, KMax: 0.1}); err == nil {
		t.Fatal("inverted range accepted")
	}
	// Negative wire values must be rejected, not resolved to defaults
	// (the facade never sees them; resolve treats only zero as default).
	for name, err := range map[string]error{
		"cl nk":      func() error { _, _, err := s.ComputeCl(ctx, ClRequest{NK: -5}); return err }(),
		"cl lmax":    func() error { _, _, err := s.ComputeCl(ctx, ClRequest{LMaxCl: -1}); return err }(),
		"cl krefine": func() error { _, _, err := s.ComputeCl(ctx, ClRequest{KRefine: -2}); return err }(),
		"cl qcobe":   func() error { _, _, err := s.ComputeCl(ctx, ClRequest{QCOBEMicroK: -18}); return err }(),
		"cl qcobe~0": func() error { _, _, err := s.ComputeCl(ctx, ClRequest{QCOBEMicroK: 1e-9}); return err }(),
		"pk nk":      func() error { _, _, err := s.ComputePk(ctx, PkRequest{NK: -1}); return err }(),
		"pk kmin":    func() error { _, _, err := s.ComputePk(ctx, PkRequest{KMin: -1}); return err }(),
		"pk amp":     func() error { _, _, err := s.ComputePk(ctx, PkRequest{Amp: -1}); return err }(),
	} {
		if err == nil {
			t.Errorf("%s: negative/degenerate wire value accepted", name)
		}
	}
	if s.Sweeps() != 0 {
		t.Fatal("bad requests ran sweeps")
	}
	// Errors are not cached: a correct request after a bad one succeeds.
	if _, _, err := s.ComputeCl(ctx, ClRequest{}); err != nil {
		t.Fatal(err)
	}
}

// TestServiceLeaderSurvivesCancelledClient pins the coalescing contract
// under client churn: the flight leader's own request context must not
// abort the shared computation.
func TestServiceLeaderSurvivesCancelledClient(t *testing.T) {
	s := testService()
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the "leader" client is already gone when compute starts
	if _, _, err := s.ComputeCl(ctx, ClRequest{}); err != nil {
		t.Fatalf("cancelled leader failed the shared computation: %v", err)
	}
	// The value computed on its behalf is cached for everyone else.
	_, meta, err := s.ComputeCl(context.Background(), ClRequest{})
	if err != nil || meta.Source != SourceCache {
		t.Fatalf("follow-up: source %s err %v", meta.Source, err)
	}
}

func TestServiceBusy(t *testing.T) {
	// One slot, zero waiters: a second distinct cold request while the
	// first computes must be rejected with ErrBusy.
	s := New(Options{Defaults: testDefaults(), Workers: 1, CacheSize: 8, ModelCacheSize: 2, MaxConcurrent: 1, MaxQueue: -1})
	defer s.Close()
	ctx := context.Background()

	firstDone := make(chan error, 1)
	go func() {
		_, _, err := s.ComputeCl(ctx, ClRequest{})
		firstDone <- err
	}()
	// Wait for the first request to occupy the compute slot.
	for s.adm.Stats().Computing == 0 {
		select {
		case err := <-firstDone:
			t.Fatalf("first request finished early: %v", err)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	_, _, err := s.ComputeCl(ctx, ClRequest{LMaxCl: 30}) // distinct key
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("overload request: %v", err)
	}
	if err := <-firstDone; err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Rejected != 1 {
		t.Fatalf("rejected count %d", st.Rejected)
	}
}

func TestModelCacheEvictionRefcounted(t *testing.T) {
	mc := newModelCache(1, 1, nil)
	cfgA := clCfg(0.5)
	cfgB := clCfg(0.55)

	mA, releaseA, err := mc.acquire(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	// Evict A while it is in use; it must keep working until released.
	_, releaseB, err := mc.acquire(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mA.ComputeSpectrum(clOptsTiny()); err != nil {
		t.Fatalf("evicted-but-referenced model broken: %v", err)
	}
	releaseA()
	releaseB()
	st := mc.Stats()
	if st.Builds != 2 || st.Evictions != 1 || st.Size != 1 {
		t.Fatalf("stats %+v", st)
	}
	mc.close()
}
