package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"plinger/internal/cluster"
)

// fleetNode is one in-process daemon of a test fleet.
type fleetNode struct {
	svc     *Service
	peering *cluster.Peering
	srv     *httptest.Server
	url     string
}

// newFleet builds n in-process daemons peered into one sharded-cache
// fleet. Listeners are created first (unstarted) so every node knows the
// full address list before its peering is built. mutateC / mutateS adjust
// a node's cluster and service options by index (nil: defaults). Default
// cluster settings are test-fast and deterministic: static membership (no
// heartbeats), millisecond backoff, hedging disabled — each test opts
// into exactly the paths it probes.
func newFleet(t *testing.T, n int, mutateC func(i int, o *cluster.Options), mutateS func(i int, o *Options)) []*fleetNode {
	t.Helper()
	nodes := make([]*fleetNode, n)
	urls := make([]string, n)
	for i := range nodes {
		srv := httptest.NewUnstartedServer(nil)
		nodes[i] = &fleetNode{srv: srv, url: "http://" + srv.Listener.Addr().String()}
		urls[i] = nodes[i].url
	}
	for i, nd := range nodes {
		co := cluster.Options{
			Self:         nd.url,
			Peers:        urls,
			HopTimeout:   2 * time.Second,
			Backoff:      time.Millisecond,
			HedgeAfter:   -1,
			PingInterval: -1,
		}
		if mutateC != nil {
			mutateC(i, &co)
		}
		p, err := cluster.New(co)
		if err != nil {
			t.Fatal(err)
		}
		so := Options{Defaults: testDefaults(), Workers: 1, CacheSize: 8, ModelCacheSize: 2,
			MaxConcurrent: 2, MaxQueue: 32, Cluster: p}
		if mutateS != nil {
			mutateS(i, &so)
		}
		nd.peering = p
		nd.svc = New(so)
		nd.srv.Config.Handler = nd.svc.Handler()
		nd.srv.Start()
		t.Cleanup(func() { nd.srv.Close(); nd.svc.Close(); p.Close() })
	}
	return nodes
}

// fleetSweeps sums spectrum computations across the fleet — the witness
// that a cross-node hit cost one sweep, not one per replica.
func fleetSweeps(nodes []*fleetNode) uint64 {
	var n uint64
	for _, nd := range nodes {
		n += nd.svc.Sweeps()
	}
	return n
}

// remoteOwnedBody finds a /v1/cl body whose key the node `from` does NOT
// own (rendezvous splits keys about evenly, so a few lmax values in, one
// must hash to the other side). skip lists keys already claimed by the
// test.
func remoteOwnedBody(t *testing.T, from *fleetNode, skip map[string]bool) (body, key string) {
	t.Helper()
	for lmax := 24; lmax < 64; lmax++ {
		k := ClRequest{LMaxCl: lmax}.Key(testDefaults())
		if skip[k] {
			continue
		}
		if _, remote := from.peering.Owner(k); remote {
			return fmt.Sprintf(`{"lmax_cl": %d}`, lmax), k
		}
	}
	t.Fatal("no remote-owned key among 40 candidates — rendezvous balance is broken")
	return "", ""
}

// canonResult normalizes a response payload for bitwise comparison:
// envelope formatting aside, two equal spectra must re-marshal to
// identical bytes (Go's float64 JSON encoding is shortest-round-trip
// exact, so this is a bitwise check on every coefficient).
func canonResult(t *testing.T, raw json.RawMessage) string {
	t.Helper()
	var v ClResponse
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// referenceResult computes the same body on a cluster-free single node —
// the chaos matrix's ground truth.
func referenceResult(t *testing.T, ref *Service, body string) string {
	t.Helper()
	var req ClRequest
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatal(err)
	}
	v, _, err := ref.ComputeCl(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestClusterCrossNodeHit is the acceptance criterion: a miss on node A
// for a key node B owns is served via one forward — the owner computes
// once for the whole fleet — bitwise identical to a single-node
// reference, and the repeat on A is an ordinary local cache hit.
func TestClusterCrossNodeHit(t *testing.T) {
	nodes := newFleet(t, 2, nil, nil)
	a := nodes[0]
	body, key := remoteOwnedBody(t, a, nil)
	owner, _ := a.peering.Owner(key)

	ref := testService()
	defer ref.Close()
	want := referenceResult(t, ref, body)

	// Cold request on the non-owner: forwarded, owner computes.
	resp, env := postJSON(t, a.srv.Client(), a.url+"/v1/cl", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded request: status %d", resp.StatusCode)
	}
	if env.Source != SourcePeer {
		t.Fatalf("source %q, want %q", env.Source, SourcePeer)
	}
	if got := resp.Header.Get("X-Plinger-Peer"); got != owner {
		t.Fatalf("X-Plinger-Peer %q, want %q", got, owner)
	}
	if got := canonResult(t, env.Result); got != want {
		t.Fatal("peer-forwarded response differs bitwise from the single-node reference")
	}
	if n := fleetSweeps(nodes); n != 1 {
		t.Fatalf("fleet ran %d sweeps for one key, want 1", n)
	}

	// The forward left a local copy: the repeat is a zero-hop cache hit.
	_, env = postJSON(t, a.srv.Client(), a.url+"/v1/cl", body)
	if env.Source != SourceCache {
		t.Fatalf("repeat source %q, want %q", env.Source, SourceCache)
	}
	if got := canonResult(t, env.Result); got != want {
		t.Fatal("cached copy differs from the reference")
	}
	if n := fleetSweeps(nodes); n != 1 {
		t.Fatalf("repeat cost a sweep (fleet total %d)", n)
	}

	st := a.svc.Stats()
	if st.Cluster == nil || st.Cluster.PeerServed != 1 || st.Cluster.PeerRequests != 1 {
		t.Fatalf("cluster stats %+v", st.Cluster)
	}
}

// TestClusterChaosMatrix drives the degradation contract through every
// scripted failure mode — owner killed, hung, erroring 5xx, partitioned —
// and requires each response to stay 200 with a payload bitwise identical
// to a no-cluster single-node reference, inside the degraded wall bound
// (per-hop timeout x attempts + one local cold compute).
func TestClusterChaosMatrix(t *testing.T) {
	const hop = 150 * time.Millisecond
	scenarios := []struct {
		name  string
		fault cluster.FaultOptions // injected into node 0's transport
		kill  bool                 // close the owner's listener instead
	}{
		{name: "kill", kill: true},
		{name: "hang", fault: cluster.FaultOptions{Hang: true}},
		{name: "err5xx", fault: cluster.FaultOptions{Seed: 42, Err5xx: 1.0}},
		{name: "partition", fault: cluster.FaultOptions{Partition: func(string) bool { return true }}},
	}
	ref := testService()
	defer ref.Close()
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			fault := sc.fault
			// Fault only the forward paths: back-fill offers and heartbeats
			// stay clean so the scenario isolates one failure mode.
			fault.Match = func(req *http.Request) bool {
				return strings.HasPrefix(req.URL.Path, "/v1/peer/cl") ||
					strings.HasPrefix(req.URL.Path, "/v1/peer/pk")
			}
			nodes := newFleet(t, 2,
				func(i int, o *cluster.Options) {
					o.HopTimeout = hop
					if i == 0 {
						o.Transport = cluster.NewFaultTransport(nil, fault)
					}
				}, nil)
			a, b := nodes[0], nodes[1]
			if sc.kill {
				b.srv.Close()
			}
			body, _ := remoteOwnedBody(t, a, nil)
			want := referenceResult(t, ref, body)

			start := time.Now()
			resp, env := postJSON(t, a.srv.Client(), a.url+"/v1/cl", body)
			elapsed := time.Since(start)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("degraded request: status %d", resp.StatusCode)
			}
			if env.Source != SourceCompute {
				t.Fatalf("degraded source %q, want %q (local compute)", env.Source, SourceCompute)
			}
			if got := canonResult(t, env.Result); got != want {
				t.Fatal("degraded response differs bitwise from the single-node reference")
			}
			// Wall bound: two hop attempts + backoff + one cold local sweep,
			// with CI margin. A blown bound means degrade-to-local waited on
			// something it must not wait on.
			if wall := 2*hop + 2*time.Second; elapsed > wall {
				t.Fatalf("degraded request took %s, wall bound %s", elapsed, wall)
			}
			st := a.svc.Stats()
			if st.Cluster == nil || st.Cluster.LocalFallback == 0 {
				t.Fatalf("degrade not recorded: %+v", st.Cluster)
			}
		})
	}
}

// TestClusterOwnerDeadServesStale pins the stale short-circuit: when the
// owner is unreachable (open breaker after a hang) and a stale copy is on
// hand, the node answers from it immediately — it must NOT wait out the
// peer timeout, and must not pay a recompute either.
func TestClusterOwnerDeadServesStale(t *testing.T) {
	// Generous hop so the warm-up forward survives a race-detector-slowed
	// cold compute on the owner; the stale serve must still beat it by
	// orders of magnitude (an open breaker fails the fetch in microseconds).
	const hop = 2 * time.Second
	var hangOn atomic.Bool
	nodes := newFleet(t, 2,
		func(i int, o *cluster.Options) {
			o.HopTimeout = hop
			o.Retries = -1         // one attempt per fetch
			o.BreakerThreshold = 1 // first failure opens the circuit
			o.BreakerCooldown = time.Hour
			if i == 0 {
				o.Transport = cluster.NewFaultTransport(nil, cluster.FaultOptions{
					Hang: true,
					Match: func(req *http.Request) bool {
						return hangOn.Load() && strings.HasPrefix(req.URL.Path, "/v1/peer/")
					},
				})
			}
		},
		func(i int, o *Options) {
			o.CacheSize = 1 // tiny primary so the stale LRU (4x) outlives it
		})
	a := nodes[0]

	// Warm: a forwarded request leaves copies in A's primary and stale
	// caches; a second key then evicts the first from the one-entry
	// primary while the stale LRU keeps both.
	body1, key1 := remoteOwnedBody(t, a, nil)
	_, env := postJSON(t, a.srv.Client(), a.url+"/v1/cl", body1)
	if env.Source != SourcePeer {
		t.Fatalf("warm source %q, want peer", env.Source)
	}
	want := canonResult(t, env.Result)
	body2, key2 := remoteOwnedBody(t, a, map[string]bool{key1: true})
	postJSON(t, a.srv.Client(), a.url+"/v1/cl", body2)

	// The owner wedges. Open the breaker with one more cold key: its
	// fetch hangs for one full hop timeout, degrades to local compute,
	// and trips the threshold-1 breaker.
	hangOn.Store(true)
	body3, _ := remoteOwnedBody(t, a, map[string]bool{key1: true, key2: true})
	_, env = postJSON(t, a.srv.Client(), a.url+"/v1/cl", body2)
	if env.Source != SourceCache {
		// body2 is still in the one-entry primary: a plain hit, proving
		// the wedged owner never touches cached keys.
		t.Fatalf("cached key source %q under a wedged owner", env.Source)
	}
	_, env = postJSON(t, a.srv.Client(), a.url+"/v1/cl", body3)
	if env.Source != SourceCompute {
		t.Fatalf("breaker-opening request source %q, want compute", env.Source)
	}
	if st := a.svc.Stats(); st.Cluster.LocalFallback == 0 {
		t.Fatal("hang did not degrade to local")
	}

	// The satellite assertion: key1 is primary-evicted but stale-held,
	// its owner's breaker is open — the answer must come back instantly
	// as source "stale", far inside the peer timeout.
	start := time.Now()
	resp, env := postJSON(t, a.srv.Client(), a.url+"/v1/cl", body1)
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stale path status %d", resp.StatusCode)
	}
	if env.Source != SourceStale {
		t.Fatalf("source %q, want %q", env.Source, SourceStale)
	}
	if got := canonResult(t, env.Result); got != want {
		t.Fatal("stale response differs from the original")
	}
	if elapsed >= hop {
		t.Fatalf("stale serve took %s — waited out the %s peer timeout", elapsed, hop)
	}
}

// TestClusterBackfill: a degraded local compute back-fills the owner, so
// the ring's canonical copy lands where future requests look for it and
// the fleet still pays exactly one sweep for the key.
func TestClusterBackfill(t *testing.T) {
	nodes := newFleet(t, 2,
		func(i int, o *cluster.Options) {
			o.HopTimeout = 300 * time.Millisecond
			if i == 0 {
				// Forwards always 503; offers and pings stay clean.
				o.Transport = cluster.NewFaultTransport(nil, cluster.FaultOptions{
					Seed:   1,
					Err5xx: 1.0,
					Match: func(req *http.Request) bool {
						return strings.HasPrefix(req.URL.Path, "/v1/peer/cl") ||
							strings.HasPrefix(req.URL.Path, "/v1/peer/pk")
					},
				})
			}
		}, nil)
	a, b := nodes[0], nodes[1]
	body, _ := remoteOwnedBody(t, a, nil)

	_, env := postJSON(t, a.srv.Client(), a.url+"/v1/cl", body)
	if env.Source != SourceCompute {
		t.Fatalf("degraded source %q, want compute", env.Source)
	}
	want := canonResult(t, env.Result)

	// The offer is asynchronous: wait for the owner to accept it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := b.svc.Stats(); st.Cluster != nil && st.Cluster.OffersAccepted >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("owner never received the back-fill offer")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The owner now serves the key from cache without ever having swept it.
	_, env = postJSON(t, b.srv.Client(), b.url+"/v1/cl", body)
	if env.Source != SourceCache {
		t.Fatalf("owner source %q after back-fill, want cache", env.Source)
	}
	if got := canonResult(t, env.Result); got != want {
		t.Fatal("back-filled copy differs from the degraded compute")
	}
	if n := fleetSweeps(nodes); n != 1 {
		t.Fatalf("fleet ran %d sweeps, want 1 (degrade + back-fill)", n)
	}
}

// TestClusterHedgedSlowPeer: a slow (not dead) owner is raced against a
// local compute after the hedge delay; the caller gets an answer far
// inside the hop timeout and the hedge is counted.
func TestClusterHedgedSlowPeer(t *testing.T) {
	const hop = 10 * time.Second // deliberately huge: the hedge must win, not the timeout
	nodes := newFleet(t, 2,
		func(i int, o *cluster.Options) {
			o.HopTimeout = hop
			o.Retries = -1
			o.HedgeAfter = 50 * time.Millisecond
			if i == 0 {
				o.Transport = cluster.NewFaultTransport(nil, cluster.FaultOptions{
					Hang: true,
					Match: func(req *http.Request) bool {
						return strings.HasPrefix(req.URL.Path, "/v1/peer/cl")
					},
				})
			}
		}, nil)
	a := nodes[0]
	body, _ := remoteOwnedBody(t, a, nil)

	start := time.Now()
	resp, env := postJSON(t, a.srv.Client(), a.url+"/v1/cl", body)
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hedged request status %d", resp.StatusCode)
	}
	if env.Source != SourceCompute {
		t.Fatalf("hedged source %q, want compute (local won the race)", env.Source)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("hedged request took %s — waited on the wedged owner instead of racing it", elapsed)
	}
	if st := a.svc.Stats(); st.Cluster.Hedged == 0 {
		t.Fatal("hedge not counted")
	}
}

// TestRetryAfterDerived pins the satellite behaviour: the Retry-After
// hint on 503/504 is derived from queue depth and observed sweep cost
// (seconds, clamped [1,30]) instead of a bare constant.
func TestRetryAfterDerived(t *testing.T) {
	s := testService()
	defer s.Close()
	if got := s.retryAfter(); got != "1" {
		t.Fatalf("idle retryAfter %q, want \"1\"", got)
	}
	// Pretend history: 4s average sweep, 3 waiting on 2 slots -> the
	// retrier is ~2.5 batches out -> ceil(2.5 * 4) = 10s.
	s.misses.Inc()
	s.missNs.Store(4e9)
	for i := 0; i < 2; i++ {
		if err := s.adm.acquire(context.Background()); err != nil {
			t.Fatal(err)
		}
		defer s.adm.release()
	}
	release := make(chan struct{})
	for i := 0; i < 3; i++ {
		go func() {
			if s.adm.acquire(context.Background()) == nil {
				<-release
				s.adm.release()
			}
		}()
	}
	defer close(release)
	deadline := time.Now().Add(2 * time.Second)
	for s.adm.Stats().Waiting < 3 {
		if time.Now().After(deadline) {
			t.Fatal("waiters never queued")
		}
		time.Sleep(time.Millisecond)
	}
	if got := s.retryAfter(); got != "10" {
		t.Fatalf("retryAfter %q with 3 waiting x 4s sweeps on 2 slots, want \"10\"", got)
	}
	// Clamp: absurd sweep cost must not push clients out past 30s.
	s.missNs.Store(1e12)
	if got := s.retryAfter(); got != "30" {
		t.Fatalf("retryAfter %q, want clamped \"30\"", got)
	}
}
