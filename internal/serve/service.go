package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sync/atomic"
	"time"

	"plinger"
	"plinger/internal/cluster"
	"plinger/internal/farm"
	"plinger/internal/obs"
	"plinger/internal/specfunc"
)

// Defaults are the per-request fallbacks the daemon resolves zero-valued
// request fields against. They are part of key resolution: a request
// spelled with zeros and one spelled with the explicit defaults share a
// cache entry.
type Defaults struct {
	// LMaxCl, NK and KRefine configure the default C_l product.
	LMaxCl  int `json:"lmax_cl"`
	NK      int `json:"nk"`
	KRefine int `json:"krefine"`
	// PkNK is the default matter-power grid size.
	PkNK int `json:"pk_nk"`
	// LSpline and KBatch are the fast engine's projection and evolution
	// batching knobs, applied to non-exact requests only. Both stay
	// inside the engine's 1e-3 relative C_l contract, so — like workers
	// and transport — they are execution configuration and never enter
	// cache keys: toggling them re-serves cached spectra.
	LSpline bool `json:"lspline"`
	KBatch  int  `json:"kbatch"`
}

// DefaultDefaults is the daemon's stock configuration: the PR 2 benchmark
// resolution served by the full fast engine, spline-in-l projection and
// lockstep mode batching included.
func DefaultDefaults() Defaults {
	return Defaults{LMaxCl: 150, NK: 130, KRefine: 6, PkNK: 40, LSpline: true, KBatch: 4}
}

// Options configures a Service.
type Options struct {
	// Defaults resolves zero-valued request fields (zero: DefaultDefaults).
	Defaults Defaults
	// Workers sizes each model's shared dispatch pool (<= 0: GOMAXPROCS).
	Workers int
	// Farm, when non-nil, routes every model's sweeps across the multi-host
	// worker fleet instead of a per-model shared pool. The supervisor is
	// attached, not owned: the service never closes it (the daemon that
	// started the farm drains it on shutdown), and one supervisor serves
	// every model in the registry — workers cache models per specification.
	Farm *farm.Supervisor
	// Cluster, when non-nil, shards the response cache across a replica
	// fleet: every cache key has one owner in the peer ring, a miss whose
	// key another member owns is fetched over the peer protocol, and any
	// peer failure degrades to stale-or-local serving (see internal/cluster
	// and peer.go). Attached, not owned: the daemon that built the peering
	// closes it.
	Cluster *cluster.Peering
	// CacheSize bounds the response LRU in entries (<= 0: 256).
	CacheSize int
	// ModelCacheSize bounds the model registry (<= 0: 4).
	ModelCacheSize int
	// MaxConcurrent bounds simultaneously computing sweeps (<= 0: 2).
	MaxConcurrent int
	// MaxQueue bounds requests waiting for a compute slot; beyond it the
	// service answers ErrBusy/503 (< 0: 0; 0 picks 64).
	MaxQueue int
	// StaleCacheSize bounds the stale-response LRU (<= 0: 4x CacheSize).
	// The stale cache is a larger, second-chance copy of every computed
	// response: when a recompute fails or blows a request deadline and the
	// primary LRU has already evicted the entry, the service can still
	// answer with the last known good response instead of an error.
	StaleCacheSize int
	// Logger receives structured serving logs (one line per HTTP request,
	// slow-request warnings). Nil disables logging.
	Logger *slog.Logger
	// SlowRequest is the latency above which a request is logged at WARN
	// with its sweep trace id (<= 0: 2s).
	SlowRequest time.Duration
	// TraceBuffer bounds the /v1/trace ring of recent sweep traces
	// (<= 0: 64).
	TraceBuffer int
}

func (o Options) withDefaults() Options {
	if o.Defaults == (Defaults{}) {
		o.Defaults = DefaultDefaults()
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.CacheSize <= 0 {
		o.CacheSize = 256
	}
	if o.ModelCacheSize <= 0 {
		o.ModelCacheSize = 4
	}
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = 2
	}
	if o.MaxQueue == 0 {
		o.MaxQueue = 64
	}
	if o.StaleCacheSize <= 0 {
		o.StaleCacheSize = 4 * o.CacheSize
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.DiscardHandler)
	}
	if o.SlowRequest <= 0 {
		o.SlowRequest = 2 * time.Second
	}
	if o.TraceBuffer <= 0 {
		o.TraceBuffer = 64
	}
	return o
}

// ErrDeadline is returned when a request's compute deadline expires before
// the sweep finishes and no stale response is available. The computation
// itself keeps running and fills the cache for the next caller; handlers
// map the error to 504.
var ErrDeadline = errors.New("serve: compute deadline exceeded")

// Service is the spectrum server: cached, coalesced, admission-bounded
// C_l and P(k) computation over long-lived models and dispatch pools.
// Safe for concurrent use; create with New and Close when done.
type Service struct {
	opts    Options
	cache   *lru
	stale   *lru
	models  *modelCache
	flights flightGroup
	adm     *admission
	cluster *cluster.Peering
	started time.Time

	// reg is the service's own metrics registry. Counters are per Service
	// (not process-wide) so tests and multiple services never share counts;
	// the /metrics endpoint scrapes it together with obs.Default, where the
	// engine-level series (sweeps, fault ledger, runtime) live.
	reg    *obs.Registry
	traces *obs.TraceLog
	logger *slog.Logger
	reqSeq atomic.Uint64

	requests  *obs.Counter
	hits      *obs.Counter
	misses    *obs.Counter
	coalesced *obs.Counter
	rejected  *obs.Counter
	errCount  *obs.Counter
	sweeps    *obs.Counter

	timeouts    *obs.Counter
	staleServed *obs.Counter

	// Fleet-side counters (see peer.go); registered even without a
	// cluster so the metric names are stable across deployments.
	peerRequests   *obs.Counter
	peerServed     *obs.Counter
	hedged         *obs.Counter
	localFallback  *obs.Counter
	offersAccepted *obs.Counter

	latCl     *obs.Histogram
	latPk     *obs.Histogram
	queueWait *obs.Histogram

	hitNs  atomic.Int64
	missNs atomic.Int64
}

// New builds a Service.
func New(opts Options) *Service {
	o := opts.withDefaults()
	s := &Service{
		opts:    o,
		cache:   newLRU(o.CacheSize),
		stale:   newLRU(o.StaleCacheSize),
		models:  newModelCache(o.ModelCacheSize, o.Workers, o.Farm),
		adm:     newAdmission(o.MaxConcurrent, o.MaxQueue),
		cluster: o.Cluster,
		started: time.Now(),
		reg:     obs.NewRegistry(),
		traces:  obs.NewTraceLog(o.TraceBuffer),
		logger:  o.Logger,
	}
	r := s.reg
	s.requests = r.Counter("plinger_serve_requests_total", "", "requests accepted by the compute API")
	s.hits = r.Counter("plinger_serve_cache_hits_total", "", "requests answered from the response cache")
	s.misses = r.Counter("plinger_serve_cache_misses_total", "", "requests that computed a fresh response")
	s.coalesced = r.Counter("plinger_serve_coalesced_total", "", "requests attached to another request's sweep")
	s.rejected = r.Counter("plinger_serve_rejected_total", "", "requests rejected by the admission queue")
	s.errCount = r.Counter("plinger_serve_errors_total", "", "failed requests (validation and compute)")
	s.sweeps = r.Counter("plinger_serve_sweeps_total", "", "spectrum computations completed")
	s.timeouts = r.Counter("plinger_serve_timeouts_total", "", "requests whose deadline expired before the sweep finished")
	s.staleServed = r.Counter("plinger_serve_stale_served_total", "", "responses answered from the stale cache")
	s.peerRequests = r.Counter("plinger_cluster_peer_requests_total", "", "cache misses whose key a remote peer owns")
	s.peerServed = r.Counter("plinger_cluster_peer_served_total", "", "requests answered by a peer forward")
	s.hedged = r.Counter("plinger_cluster_hedged_total", "", "slow peer forwards raced against a local compute")
	s.localFallback = r.Counter("plinger_cluster_local_fallback_total", "", "peer failures degraded to stale or local serving")
	s.offersAccepted = r.Counter("plinger_cluster_offers_accepted_total", "", "peer back-fill offers cached on this node")
	const latHelp = "request latency by endpoint (cache hits included)"
	s.latCl = r.Histogram("plinger_serve_request_seconds", `endpoint="cl"`, latHelp, obs.DefBuckets(), 4)
	s.latPk = r.Histogram("plinger_serve_request_seconds", `endpoint="pk"`, latHelp, obs.DefBuckets(), 4)
	s.queueWait = r.Histogram("plinger_serve_queue_wait_seconds", "", "time a flight leader waited for a compute slot", obs.DefBuckets(), 4)
	r.GaugeFunc("plinger_serve_uptime_seconds", "", "seconds since the service started",
		func() float64 { return time.Since(s.started).Seconds() })
	r.GaugeFunc("plinger_serve_cache_entries", `cache="primary"`, "entries in the response LRU",
		func() float64 { return float64(s.cache.Stats().Size) })
	r.GaugeFunc("plinger_serve_cache_entries", `cache="stale"`, "entries in the stale LRU",
		func() float64 { return float64(s.stale.Stats().Size) })
	r.GaugeFunc("plinger_serve_queue_computing", "", "sweeps currently holding a compute slot",
		func() float64 { return float64(s.adm.Stats().Computing) })
	r.GaugeFunc("plinger_serve_queue_waiting", "", "requests waiting for a compute slot",
		func() float64 { return float64(s.adm.Stats().Waiting) })
	r.GaugeFunc("plinger_serve_models", "", "models in the refcounted registry",
		func() float64 { return float64(s.models.Stats().Size) })
	r.GaugeFunc("plinger_serve_inflight_keys", "", "distinct keys currently computing",
		func() float64 { return float64(s.flights.InFlight()) })
	r.GaugeFunc("plinger_serve_bessel_tables", "", "entries in the process-wide Bessel kernel cache",
		func() float64 { return float64(specfunc.BesselCacheLen()) })
	// The Go runtime gauges live on the process-wide registry next to the
	// engine series; registration is idempotent, so every Service may ask.
	obs.RegisterRuntimeMetrics(obs.Default)
	return s
}

// Close releases the model registry and its dispatch pools.
func (s *Service) Close() { s.models.close() }

// Defaults returns the resolved request fallbacks.
func (s *Service) Defaults() Defaults { return s.opts.Defaults }

// Source describes how a response was produced.
type Source string

const (
	SourceCache     Source = "cache"     // LRU hit, no computation
	SourceCompute   Source = "compute"   // this request ran the sweep
	SourceCoalesced Source = "coalesced" // attached to another request's sweep
	SourceStale     Source = "stale"     // last known good response, after a failed or timed-out recompute
	SourcePeer      Source = "peer"      // fetched from the key's owning fleet peer
)

// Meta is the per-request serving telemetry.
type Meta struct {
	Key     string        `json:"key"`
	Source  Source        `json:"source"`
	Elapsed time.Duration `json:"-"`
	// Trace is the sweep trace id when this request led the computation
	// (empty for cache hits and coalesced followers); the full trace is
	// retrievable from /v1/trace while it remains in the ring.
	Trace string `json:"-"`
	// Peer is the owning member's address when Source is SourcePeer.
	Peer string `json:"-"`
}

// ClResponse is the cached C_l product. Immutable once computed.
type ClResponse struct {
	L           []int     `json:"l"`
	Cl          []float64 `json:"cl"`
	BandPowerUK []float64 `json:"band_power_uk"`
	// AmpScale is the primordial amplitude applied by COBE normalization
	// (0 when the request did not normalize).
	AmpScale float64 `json:"amp_scale,omitempty"`
}

// PkResponse is the cached P(k) product. Immutable once computed.
type PkResponse struct {
	K      []float64 `json:"k"`
	T      []float64 `json:"t"`
	P      []float64 `json:"p"`
	Sigma8 float64   `json:"sigma8"`
}

// flightOut is one caller's view of a flight: the shared value and error,
// plus leader-only routing facts (trace id, peer/stale short-circuits).
// Coalesced followers see only v/err — the leader's closure writes the
// rest into its own runFlight frame.
type flightOut struct {
	v              any
	err            error
	coalesced      bool
	leaderCacheHit bool
	traceID        string
	src            Source // leader override: SourcePeer or SourceStale
	peer           string // owning member when src is SourcePeer
}

// lookup is the shared serve path: cache, then coalesced + admitted compute.
// A positive deadline bounds only this request's WAIT: the sweep itself runs
// to completion in the background and fills the cache, so a timed-out
// request warms the next one. On a timeout — or a failed recompute — the
// stale LRU answers with the last known good response when it has one.
//
// A non-nil fwd engages the sharded fleet (peer.go): a miss whose key a
// remote peer owns is fetched from the owner instead of swept locally,
// degrading to stale-or-local on any peer failure.
func (s *Service) lookup(ctx context.Context, label, key string, deadline time.Duration, fwd *peerForward, compute func(tr *obs.Trace) (any, error)) (any, Meta, error) {
	s.requests.Inc()
	start := time.Now()
	meta := Meta{Key: key}
	if v, ok := s.cache.Get(key); ok {
		s.hits.Inc()
		meta.Source = SourceCache
		meta.Elapsed = time.Since(start)
		s.hitNs.Add(meta.Elapsed.Nanoseconds())
		return v, meta, nil
	}
	runFlight := func() flightOut {
		var out flightOut
		out.v, out.err, out.coalesced = s.flights.Do(key, func() (any, error) {
			// The flight leader re-checks the cache: an earlier flight for the
			// same key may have completed between our miss and this call.
			if v, ok := s.cache.Get(key); ok {
				out.leaderCacheHit = true
				return v, nil
			}
			// runLocal is one admitted local compute. It returns its trace id
			// instead of writing out.traceID directly because a hedged run
			// (peer.go) may settle after the flight has already returned the
			// peer's answer — the leader adopts the id only when it adopts
			// the result.
			runLocal := func() localRes {
				// Only flight leaders that actually compute carry a trace: cache
				// hits and coalesced followers stay on the untraced (and
				// allocation-free) path, and the ring holds one trace per sweep.
				tr := obs.NewTrace(label)
				s.traces.Add(tr)
				defer tr.Finish()
				// The leader computes on behalf of every follower that coalesces
				// onto this flight, so its own request's cancellation must not
				// abort the shared work (one disconnecting client would fail N
				// healthy ones). Only the values of ctx are kept; the admission
				// queue and the sweep run to completion regardless.
				sp := tr.Start("queue_wait")
				if err := s.adm.acquire(context.WithoutCancel(ctx)); err != nil {
					sp.End()
					return localRes{err: err, trace: tr.ID()}
				}
				sp.End()
				s.queueWait.Observe(tr.SpanMS("queue_wait") / 1e3)
				defer s.adm.release()
				v, err := compute(tr)
				if err != nil {
					return localRes{err: err, trace: tr.ID()}
				}
				s.sweeps.Inc()
				s.cache.Add(key, v)
				s.stale.Add(key, v)
				return localRes{v: v, trace: tr.ID()}
			}
			if fwd != nil {
				if v, err, handled := s.peerServe(ctx, key, fwd, runLocal, &out); handled {
					return v, err
				}
			}
			lr := runLocal()
			out.traceID = lr.trace
			return lr.v, lr.err
		})
		return out
	}
	var out flightOut
	if deadline > 0 {
		ch := make(chan flightOut, 1)
		go func() { ch <- runFlight() }()
		timer := time.NewTimer(deadline)
		defer timer.Stop()
		select {
		case out = <-ch:
		case <-timer.C:
			meta.Elapsed = time.Since(start)
			s.timeouts.Inc()
			if v, ok := s.stale.Get(key); ok {
				s.staleServed.Inc()
				meta.Source = SourceStale
				return v, meta, nil
			}
			meta.Source = SourceCompute
			return nil, meta, ErrDeadline
		}
	} else {
		out = runFlight()
	}
	v, err := out.v, out.err
	meta.Elapsed = time.Since(start)
	meta.Trace = out.traceID
	switch {
	case err == ErrBusy:
		s.rejected.Inc()
		meta.Source = SourceCompute
	case err != nil:
		s.errCount.Inc()
		meta.Source = SourceCompute
	case out.src != "":
		// Peer forward or degraded stale short-circuit: the leader already
		// counted it (peer.go); hit/miss timing stays local-only.
		meta.Source = out.src
		meta.Peer = out.peer
	case out.coalesced:
		s.coalesced.Inc()
		meta.Source = SourceCoalesced
	case out.leaderCacheHit:
		s.hits.Inc()
		meta.Source = SourceCache
		s.hitNs.Add(meta.Elapsed.Nanoseconds())
	default:
		s.misses.Inc()
		meta.Source = SourceCompute
		s.missNs.Add(meta.Elapsed.Nanoseconds())
	}
	if err != nil {
		// Failed recompute with a last known good response on hand: serve
		// stale rather than erroring (the failure is still counted above).
		if sv, ok := s.stale.Get(key); ok {
			s.staleServed.Inc()
			meta.Source = SourceStale
			return sv, meta, nil
		}
	}
	return v, meta, err
}

// ComputeCl serves one C_l request.
func (s *Service) ComputeCl(ctx context.Context, req ClRequest) (*ClResponse, Meta, error) {
	// Wire-level validation first: negatives must 400, not resolve to
	// defaults (resolve treats only zero as "use the default").
	if err := req.Validate(); err != nil {
		s.requests.Inc()
		s.errCount.Inc()
		return nil, Meta{Source: SourceCompute}, err
	}
	d := s.opts.Defaults
	rr := req.resolve(d)
	opts := plinger.SpectrumOptions{
		LMaxCl:     rr.LMaxCl,
		NK:         rr.NK,
		FastLOS:    !rr.Exact,
		FastEvolve: !rr.Exact,
		KRefine:    rr.KRefine,
		LSpline:    !rr.Exact && d.LSpline,
	}
	if !rr.Exact {
		opts.KBatch = d.KBatch
	}
	key := req.Key(d)
	// Fast-fail before the request touches the flight group or the
	// admission queue: garbage must not occupy compute slots.
	if err := opts.Validate(); err != nil {
		s.requests.Inc()
		s.errCount.Inc()
		return nil, Meta{Key: key, Source: SourceCompute}, err
	}
	// A forward carries the fully resolved request (defaults filled in,
	// deadline zeroed, hop marked) so the owner derives the identical key
	// even when its own configured defaults differ. Peer-originated
	// requests never build one: a forward travels at most one hop.
	var fwd *peerForward
	if s.cluster != nil && req.PeerHop == 0 {
		wire := rr
		wire.DeadlineMS = 0
		wire.PeerHop = 1
		if body, merr := json.Marshal(wire); merr == nil {
			fwd = &peerForward{endpoint: "/v1/peer/cl", kind: "cl", body: body, decode: decodeClResult}
		}
	}
	v, meta, err := s.lookup(ctx, "cl", key, req.deadline(), fwd, func(tr *obs.Trace) (any, error) {
		sp := tr.Start("model_acquire")
		m, release, err := s.models.acquire(*rr.Config)
		sp.End()
		if err != nil {
			return nil, err
		}
		defer release()
		opts.Trace = tr
		spec, err := m.ComputeSpectrum(opts)
		if err != nil {
			return nil, err
		}
		sp = tr.Start("assemble")
		defer sp.End()
		out := &ClResponse{L: spec.L, Cl: spec.Cl}
		if rr.QCOBEMicroK > 0 {
			scale, err := spec.NormalizeCOBE(rr.QCOBEMicroK)
			if err != nil {
				return nil, err
			}
			out.Cl = spec.Cl
			out.AmpScale = scale
		}
		out.BandPowerUK = make([]float64, len(spec.L))
		for i := range spec.L {
			out.BandPowerUK[i] = spec.BandPower(i)
		}
		return out, nil
	})
	s.latCl.Observe(meta.Elapsed.Seconds())
	if err != nil {
		return nil, meta, err
	}
	return v.(*ClResponse), meta, nil
}

// ComputePk serves one P(k) request.
func (s *Service) ComputePk(ctx context.Context, req PkRequest) (*PkResponse, Meta, error) {
	if err := req.Validate(); err != nil {
		s.requests.Inc()
		s.errCount.Inc()
		return nil, Meta{Source: SourceCompute}, err
	}
	d := s.opts.Defaults
	rr := req.resolve(d)
	opts := plinger.MatterPowerOptions{
		KMin: rr.KMin, KMax: rr.KMax, NK: rr.NK, Amp: rr.Amp,
	}
	key := req.Key(d)
	if err := opts.Validate(); err != nil {
		s.requests.Inc()
		s.errCount.Inc()
		return nil, Meta{Key: key, Source: SourceCompute}, err
	}
	var fwd *peerForward
	if s.cluster != nil && req.PeerHop == 0 {
		wire := rr
		wire.DeadlineMS = 0
		wire.PeerHop = 1
		if body, merr := json.Marshal(wire); merr == nil {
			fwd = &peerForward{endpoint: "/v1/peer/pk", kind: "pk", body: body, decode: decodePkResult}
		}
	}
	v, meta, err := s.lookup(ctx, "pk", key, req.deadline(), fwd, func(tr *obs.Trace) (any, error) {
		sp := tr.Start("model_acquire")
		m, release, err := s.models.acquire(*rr.Config)
		sp.End()
		if err != nil {
			return nil, err
		}
		defer release()
		opts.Trace = tr
		mp, err := m.MatterPower(opts)
		if err != nil {
			return nil, err
		}
		return &PkResponse{K: mp.K, T: mp.T, P: mp.P, Sigma8: mp.Sigma8}, nil
	})
	s.latPk.Observe(meta.Elapsed.Seconds())
	if err != nil {
		return nil, meta, err
	}
	return v.(*PkResponse), meta, nil
}

// Stats is the /v1/stats document.
type Stats struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Requests      uint64  `json:"requests"`
	Hits          uint64  `json:"hits"`
	Misses        uint64  `json:"misses"`
	Coalesced     uint64  `json:"coalesced"`
	Rejected      uint64  `json:"rejected"`
	Errors        uint64  `json:"errors"`
	Sweeps        uint64  `json:"sweeps"`
	// Timeouts counts requests whose deadline expired before the sweep
	// finished; StaleServed counts responses answered from the stale LRU
	// after a timeout or a failed recompute.
	Timeouts     uint64     `json:"timeouts"`
	StaleServed  uint64     `json:"stale_served"`
	AvgHitMS     float64    `json:"avg_hit_ms"`
	AvgMissMS    float64    `json:"avg_miss_ms"`
	InFlightKeys int        `json:"in_flight_keys"`
	Cache        CacheStats `json:"cache"`
	Stale        CacheStats `json:"stale"`
	Models       ModelStats `json:"models"`
	Queue        QueueStats `json:"queue"`
	Defaults     Defaults   `json:"defaults"`
	Workers      int        `json:"workers"`
	// BesselTables is the current size of the process-wide spherical-
	// Bessel kernel cache — bounded by the same LRU discipline as the
	// model registry, so a daemon churning through resolutions can watch
	// that it stays capped.
	BesselTables int `json:"bessel_tables"`
	// LatencyCl and LatencyPk are the per-endpoint latency distributions
	// (cache hits included), read from the same histograms /metrics exposes.
	LatencyCl LatencyStats `json:"latency_cl"`
	LatencyPk LatencyStats `json:"latency_pk"`
	// Traces is the number of sweep traces currently in the /v1/trace ring.
	Traces int `json:"traces"`
	// Farm is the worker-fleet roster and supervision counters — per-host
	// RunStats aggregates included — when the service computes over a farm
	// (absent on in-process pool deployments).
	Farm *farm.Status `json:"farm,omitempty"`
	// Cluster is the sharded-cache fleet view — the peering roster plus
	// this node's serving-side forwarding counters — when the daemon runs
	// with -peers (absent on single-node deployments).
	Cluster *ClusterStats `json:"cluster,omitempty"`
}

// ClusterStats is the /v1/stats view of the sharded cache fleet: the
// peering layer's roster and counters (cluster.Status) plus the serving
// side of the contract — how often this node's misses were owned
// elsewhere, answered by a peer, hedged, or degraded to local serving.
type ClusterStats struct {
	cluster.Status
	PeerRequests   uint64 `json:"peer_requests"`
	PeerServed     uint64 `json:"peer_served"`
	Hedged         uint64 `json:"hedged"`
	LocalFallback  uint64 `json:"local_fallback"`
	OffersAccepted uint64 `json:"offers_accepted"`
}

// LatencyStats summarizes one latency histogram for /v1/stats. Quantiles
// are bucket-interpolated (see obs.HistSnapshot.Quantile).
type LatencyStats struct {
	Count uint64  `json:"count"`
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
	MaxMS float64 `json:"max_ms"`
}

// latencyStats reads the quantile summary off a histogram.
func latencyStats(h *obs.Histogram) LatencyStats {
	s := h.Snapshot()
	return LatencyStats{
		Count: s.Count,
		P50MS: s.Quantile(0.50) * 1e3,
		P95MS: s.Quantile(0.95) * 1e3,
		P99MS: s.Quantile(0.99) * 1e3,
		MaxMS: s.Max * 1e3,
	}
}

// Stats snapshots the serving counters.
func (s *Service) Stats() Stats {
	st := Stats{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Requests:      s.requests.Value(),
		Hits:          s.hits.Value(),
		Misses:        s.misses.Value(),
		Coalesced:     s.coalesced.Value(),
		Rejected:      s.rejected.Value(),
		Errors:        s.errCount.Value(),
		Sweeps:        s.sweeps.Value(),
		Timeouts:      s.timeouts.Value(),
		StaleServed:   s.staleServed.Value(),
		InFlightKeys:  s.flights.InFlight(),
		Cache:         s.cache.Stats(),
		Stale:         s.stale.Stats(),
		Models:        s.models.Stats(),
		Queue:         s.adm.Stats(),
		Defaults:      s.opts.Defaults,
		Workers:       s.opts.Workers,
		BesselTables:  specfunc.BesselCacheLen(),
		LatencyCl:     latencyStats(s.latCl),
		LatencyPk:     latencyStats(s.latPk),
		Traces:        s.traces.Len(),
	}
	if st.Hits > 0 {
		st.AvgHitMS = float64(s.hitNs.Load()) / 1e6 / float64(st.Hits)
	}
	if st.Misses > 0 {
		st.AvgMissMS = float64(s.missNs.Load()) / 1e6 / float64(st.Misses)
	}
	if s.opts.Farm != nil {
		fs := s.opts.Farm.Status()
		st.Farm = &fs
	}
	if s.cluster != nil {
		st.Cluster = &ClusterStats{
			Status:         s.cluster.Status(),
			PeerRequests:   s.peerRequests.Value(),
			PeerServed:     s.peerServed.Value(),
			Hedged:         s.hedged.Value(),
			LocalFallback:  s.localFallback.Value(),
			OffersAccepted: s.offersAccepted.Value(),
		}
	}
	return st
}

// Sweeps returns the number of spectrum computations completed
// successfully — the coalescing tests' witness (failed computations and
// rejected requests never count).
func (s *Service) Sweeps() uint64 { return s.sweeps.Value() }

// Traces returns snapshots of up to n recent sweep traces, newest first.
func (s *Service) Traces(n int) []obs.TraceSnapshot { return s.traces.Last(n) }

// String identifies the service configuration in logs.
func (s *Service) String() string {
	return fmt.Sprintf("serve.Service{workers=%d cache=%d models=%d concurrent=%d queue=%d}",
		s.opts.Workers, s.opts.CacheSize, s.opts.ModelCacheSize, s.opts.MaxConcurrent, s.opts.MaxQueue)
}
