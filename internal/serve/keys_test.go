package serve

import (
	"testing"

	"plinger"
)

// TestGoldenKeys pins the wire-stable cache keys: equal physics must map to
// the same key in every process and across restarts. If this test fails
// because the key format deliberately changed, bump keyVersion and repin.
func TestGoldenKeys(t *testing.T) {
	d := DefaultDefaults()
	cfg := plinger.SCDM()
	golden := []struct {
		name string
		key  string
		want string
	}{
		{"cl zero request", ClRequest{}.Key(d), "cl-7b28a5a5e6d909d2"},
		{"cl explicit defaults", ClRequest{Config: &cfg, LMaxCl: 150, NK: 130, KRefine: 6}.Key(d), "cl-7b28a5a5e6d909d2"},
		{"cl qcobe", ClRequest{QCOBEMicroK: 18}.Key(d), "cl-387a016fd9f7a6e1"},
		{"pk zero request", PkRequest{}.Key(d), "pk-982b56d139f2fce6"},
		{"pk explicit defaults", PkRequest{Config: &cfg, KMin: 2e-4, KMax: 0.5, NK: 40}.Key(d), "pk-982b56d139f2fce6"},
	}
	for _, g := range golden {
		if g.key != g.want {
			t.Errorf("%s: key %s, want %s", g.name, g.key, g.want)
		}
	}
}

// TestKeyExcludesRoutingMetadata pins the fleet invariant behind the
// sharded cache: PeerHop and DeadlineMS are routing/serving metadata, not
// physics, and must never reach the key. If a forwarded request (PeerHop=1,
// deadline stripped) keyed differently from the client's original, every
// forward would recompute and cross-node hits could never happen.
func TestKeyExcludesRoutingMetadata(t *testing.T) {
	d := DefaultDefaults()
	golden := []struct {
		name string
		key  string
		want string
	}{
		{"cl forwarded zero request", ClRequest{PeerHop: 1}.Key(d), "cl-7b28a5a5e6d909d2"},
		{"cl forwarded with deadline", ClRequest{PeerHop: 1, DeadlineMS: 250}.Key(d), "cl-7b28a5a5e6d909d2"},
		{"pk forwarded zero request", PkRequest{PeerHop: 1}.Key(d), "pk-982b56d139f2fce6"},
		{"pk forwarded with deadline", PkRequest{PeerHop: 1, DeadlineMS: 250}.Key(d), "pk-982b56d139f2fce6"},
	}
	for _, g := range golden {
		if g.key != g.want {
			t.Errorf("%s: key %s, want %s", g.name, g.key, g.want)
		}
	}

	// The hop counter is bounded wire input: only 0 (client) and 1 (one
	// peer forward) are meaningful, anything else is a malformed request.
	for _, hop := range []int{-1, 2} {
		if err := (ClRequest{PeerHop: hop}).Validate(); err == nil {
			t.Errorf("ClRequest PeerHop=%d passed validation", hop)
		}
		if err := (PkRequest{PeerHop: hop}).Validate(); err == nil {
			t.Errorf("PkRequest PeerHop=%d passed validation", hop)
		}
	}
}

// TestKeyEqualPhysics checks quantization: parameter differences far below
// the pipeline accuracy collapse onto one key.
func TestKeyEqualPhysics(t *testing.T) {
	d := DefaultDefaults()
	base := ClRequest{}.Key(d)

	cfg := plinger.SCDM()
	cfg.H += 1e-9
	cfg.OmegaB += 1e-10
	cfg.TCMB += 1e-8
	if got := (ClRequest{Config: &cfg}).Key(d); got != base {
		t.Errorf("sub-quantum perturbation changed the key: %s vs %s", got, base)
	}

	// Zero-valued and explicitly spelled-out defaults are the same request.
	if got := (ClRequest{LMaxCl: d.LMaxCl, NK: d.NK, KRefine: d.KRefine}).Key(d); got != base {
		t.Errorf("explicit defaults keyed differently: %s vs %s", got, base)
	}

	// A partial config resolves its zero fields to SCDM: spelling out only
	// the (default) Hubble constant is still the default cosmology.
	partial := plinger.Config{H: 0.5}
	if got := (ClRequest{Config: &partial}).Key(d); got != base {
		t.Errorf("partial SCDM config keyed differently: %s vs %s", got, base)
	}
}

// TestKeyDistinctPhysics checks that physically meaningful changes key
// separately — in the cosmology, the product parameters, and the product
// kind.
func TestKeyDistinctPhysics(t *testing.T) {
	d := DefaultDefaults()
	base := ClRequest{}.Key(d)
	seen := map[string]string{base: "base"}
	distinct := func(name string, key string) {
		t.Helper()
		if prev, ok := seen[key]; ok {
			t.Errorf("%s collides with %s: %s", name, prev, key)
		}
		seen[key] = name
	}

	h := plinger.SCDM()
	h.H = 0.51
	distinct("H=0.51", ClRequest{Config: &h}.Key(d))
	ob := plinger.SCDM()
	ob.OmegaB = 0.06
	distinct("OmegaB=0.06", ClRequest{Config: &ob}.Key(d))
	n := plinger.SCDM()
	n.SpectralIndex = 0.95
	distinct("n=0.95", ClRequest{Config: &n}.Key(d))
	mdm := plinger.MDM(7)
	distinct("MDM", ClRequest{Config: &mdm}.Key(d))

	distinct("lmax 60", ClRequest{LMaxCl: 60}.Key(d))
	distinct("nk 99", ClRequest{NK: 99}.Key(d))
	distinct("exact", ClRequest{Exact: true}.Key(d))
	distinct("krefine 3", ClRequest{KRefine: 3}.Key(d))
	distinct("qcobe", ClRequest{QCOBEMicroK: 18}.Key(d))

	distinct("pk", PkRequest{}.Key(d))
	distinct("pk kmax", PkRequest{KMax: 0.3}.Key(d))
	distinct("pk amp", PkRequest{Amp: 2e-9}.Key(d))
}

// TestKeyIndependentOfDefaultsWhenExplicit ensures a fully spelled-out
// request keys identically under different service defaults (only
// zero-valued fields depend on them).
func TestKeyIndependentOfDefaultsWhenExplicit(t *testing.T) {
	cfg := plinger.SCDM()
	r := ClRequest{Config: &cfg, LMaxCl: 80, NK: 90, KRefine: 2}
	d1 := DefaultDefaults()
	d2 := Defaults{LMaxCl: 40, NK: 50, KRefine: 9, PkNK: 10}
	if r.Key(d1) != r.Key(d2) {
		t.Error("explicit request key depends on service defaults")
	}
	if (ClRequest{}).Key(d1) == (ClRequest{}).Key(d2) {
		t.Error("zero request should follow the service defaults")
	}
}
