// Package serve is the serving subsystem: a long-running spectrum service
// that amortizes everything the one-shot pipeline rebuilds per call — the
// background/thermodynamics model, the dispatch worker pool, the warm
// spherical-Bessel kernel tables, and the computed spectra themselves —
// across many requests. The paper made one C_l computation fast; this layer
// makes the millionth request nearly free.
//
// The pieces:
//
//   - keys.go — canonical parameter quantization: physically equal requests
//     map to one stable cache key, across processes and restarts;
//   - cache.go — a small LRU over computed responses;
//   - coalesce.go — singleflight request coalescing, so N concurrent
//     identical cold requests cost one sweep;
//   - queue.go — bounded admission, so overload degrades to fast 503s
//     instead of an unbounded pile-up of sweeps;
//   - models.go — a refcounted registry of built models, each with a
//     long-lived shared dispatch pool;
//   - service.go / handlers.go — the compute paths and the HTTP JSON API
//     (/v1/cl, /v1/pk, /v1/stats) that cmd/plingerd exposes;
//   - peer.go — the sharded-fleet routing over internal/cluster: cache
//     misses whose key another replica owns are fetched over the peer
//     protocol (/v1/peer/cl, /v1/peer/pk), and every peer failure degrades
//     to local compute with an asynchronous back-fill to the owner;
//   - warmup.go — startup precomputation so the hot path begins warm.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"plinger"
)

// Physical quantization steps: two requests whose parameters agree to
// better than these are the same physics at far below the pipeline's own
// accuracy (the fast path tracks the reference to ~1e-3 in C_l), so they
// share a cache entry. The steps are part of the wire-stable key format —
// changing any of them is a cache-schema change and must bump keyVersion.
const (
	keyVersion = "v1"

	stepH     = 1e-4 // Hubble constant, units of 100 km/s/Mpc
	stepOmega = 1e-5 // density parameters
	stepTCMB  = 1e-4 // kelvin
	stepYHe   = 1e-4 // helium mass fraction
	stepNNu   = 1e-3 // massless neutrino count
	stepMNu   = 1e-4 // eV
	stepIndex = 1e-4 // spectral index
	stepQCOBE = 1e-3 // COBE quadrupole, microkelvin
	stepLnK   = 1e-4 // ln of wavenumbers and amplitudes
)

// qfix quantizes x onto multiples of step, returning the integer count —
// the canonical representation, immune to float formatting differences.
func qfix(x, step float64) int64 {
	return int64(math.Round(x / step))
}

// qln canonicalizes a positive scale-free quantity (wavenumber, amplitude)
// by quantizing its natural log; zero stays zero (the "use the default"
// marker).
func qln(x float64) int64 {
	if x == 0 {
		return 0
	}
	return qfix(math.Log(x), stepLnK)
}

// canonicalConfig renders the quantized cosmology, one field per token.
func canonicalConfig(c plinger.Config) string {
	flat := 0
	if c.Flatten {
		flat = 1
	}
	return fmt.Sprintf("h=%d,oc=%d,ob=%d,ol=%d,t=%d,y=%d,nnl=%d,nnm=%d,mnu=%d,n=%d,flat=%d",
		qfix(c.H, stepH),
		qfix(c.OmegaC, stepOmega),
		qfix(c.OmegaB, stepOmega),
		qfix(c.OmegaLambda, stepOmega),
		qfix(c.TCMB, stepTCMB),
		qfix(c.YHe, stepYHe),
		qfix(c.NNuMassless, stepNNu),
		int64(c.NNuMassive),
		qfix(c.MNuEV, stepMNu),
		qfix(c.SpectralIndex, stepIndex),
		flat)
}

// hashKey turns a canonical string into the served key: a short prefix
// naming the product plus a truncated SHA-256 of the canonical form. The
// hash input is wire-stable, so keys survive process restarts (the golden
// tests pin them).
func hashKey(kind, canon string) string {
	sum := sha256.Sum256([]byte(canon))
	return kind + "-" + hex.EncodeToString(sum[:8])
}

// defaultConfig fills zero-valued cosmology fields with the paper's SCDM
// values, mirroring the zero-means-default convention of the product
// fields: a partial config like {"H": 0.55, "Flatten": true} is a valid
// request. (A literal zero for a physical field — e.g. a baryonless model —
// is not expressible over the wire; vary the explicit fields instead.)
func defaultConfig(c plinger.Config) plinger.Config {
	d := plinger.SCDM()
	if c.H == 0 {
		c.H = d.H
	}
	if c.OmegaC == 0 {
		c.OmegaC = d.OmegaC
	}
	if c.OmegaB == 0 {
		c.OmegaB = d.OmegaB
	}
	if c.TCMB == 0 {
		c.TCMB = d.TCMB
	}
	if c.YHe == 0 {
		c.YHe = d.YHe
	}
	if c.NNuMassless == 0 {
		c.NNuMassless = d.NNuMassless
	}
	if c.SpectralIndex == 0 {
		c.SpectralIndex = d.SpectralIndex
	}
	return c
}

// ClRequest is one angular-power-spectrum request. The zero value asks for
// the service defaults: the SCDM cosmology of the paper and the daemon's
// configured resolution, computed by the fast line-of-sight engine.
type ClRequest struct {
	// Config selects the cosmology; nil means plinger.SCDM(), and
	// zero-valued fields of a partial config take their SCDM defaults.
	Config *plinger.Config `json:"config,omitempty"`
	// LMaxCl and NK set the resolution (0: service defaults).
	LMaxCl int `json:"lmax_cl,omitempty"`
	NK     int `json:"nk,omitempty"`
	// Exact disables the fast engine (FastEvolve + FastLOS + KRefine) and
	// runs the reference line-of-sight pipeline.
	Exact bool `json:"exact,omitempty"`
	// KRefine overrides the coarse-to-fine refinement factor (0: service
	// default; ignored when Exact).
	KRefine int `json:"krefine,omitempty"`
	// QCOBEMicroK, when positive, normalizes the spectrum to the COBE
	// quadrupole (microkelvin). Part of the cache key.
	QCOBEMicroK float64 `json:"qcobe_uk,omitempty"`
	// DeadlineMS, when positive, bounds this request's wait in
	// milliseconds: past it the service answers with a stale cached
	// response if one exists, else 504 — while the computation continues
	// and fills the cache for the next caller. An execution knob like
	// workers or transport, it never enters the cache key.
	DeadlineMS int `json:"deadline_ms,omitempty"`
	// PeerHop marks a request forwarded by another fleet member (the peer
	// client sets it to 1); peer endpoints never re-forward it, so a
	// forward travels at most one hop even when membership views disagree.
	// Routing metadata like DeadlineMS, it never enters the cache key: a
	// peer-forwarded request and a locally arriving one share one entry.
	PeerHop int `json:"peer_hop,omitempty"`
}

// Validate rejects wire values the resolve step would otherwise silently
// clamp to defaults: negatives everywhere, and a positive COBE quadrupole
// too small for the key quantum (it would key like "no normalization"
// while normalizing). The facade validates the resolved options again;
// this layer only guards the zero-means-default wire convention.
func (r ClRequest) Validate() error {
	if r.LMaxCl < 0 {
		return fmt.Errorf("serve: lmax_cl = %d is negative (0 or omitted selects the default)", r.LMaxCl)
	}
	if r.NK < 0 {
		return fmt.Errorf("serve: nk = %d is negative (0 or omitted selects the default)", r.NK)
	}
	if r.KRefine < 0 {
		return fmt.Errorf("serve: krefine = %d is negative (0 or omitted selects the default)", r.KRefine)
	}
	if r.QCOBEMicroK < 0 {
		return fmt.Errorf("serve: qcobe_uk = %g is negative (0 or omitted skips normalization)", r.QCOBEMicroK)
	}
	if r.QCOBEMicroK > 0 && r.QCOBEMicroK < stepQCOBE {
		return fmt.Errorf("serve: qcobe_uk = %g is below the %g microkelvin key quantum", r.QCOBEMicroK, stepQCOBE)
	}
	if r.DeadlineMS < 0 {
		return fmt.Errorf("serve: deadline_ms = %d is negative (0 or omitted waits for the sweep)", r.DeadlineMS)
	}
	if r.PeerHop < 0 || r.PeerHop > 1 {
		return fmt.Errorf("serve: peer_hop = %d is invalid (only the peer client sets it, to 1)", r.PeerHop)
	}
	return nil
}

// deadline converts the wire field to the lookup bound (0: no bound).
func (r ClRequest) deadline() time.Duration {
	return time.Duration(r.DeadlineMS) * time.Millisecond
}

// resolve fills service defaults into a copy of the request, so physically
// identical requests — spelled with zeros or with explicit defaults —
// canonicalize identically.
func (r ClRequest) resolve(d Defaults) ClRequest {
	if r.Config == nil {
		cfg := plinger.SCDM()
		r.Config = &cfg
	} else {
		cfg := defaultConfig(*r.Config)
		r.Config = &cfg
	}
	if r.LMaxCl <= 0 {
		r.LMaxCl = d.LMaxCl
	}
	if r.NK <= 0 {
		r.NK = d.NK
	}
	if r.KRefine <= 0 {
		r.KRefine = d.KRefine
	}
	if r.Exact {
		r.KRefine = 1
	}
	return r
}

// canonical renders the resolved request. Only physics and product
// parameters enter — execution knobs (workers, transport, schedule) are
// excluded by construction, since the dispatch determinism contract makes
// the result independent of them.
func (r ClRequest) canonical(d Defaults) string {
	rr := r.resolve(d)
	exact := 0
	if rr.Exact {
		exact = 1
	}
	var b strings.Builder
	b.WriteString(keyVersion)
	b.WriteString("|cl|")
	b.WriteString(canonicalConfig(*rr.Config))
	b.WriteString("|lmax_cl=")
	b.WriteString(strconv.Itoa(rr.LMaxCl))
	b.WriteString(",nk=")
	b.WriteString(strconv.Itoa(rr.NK))
	b.WriteString(",exact=")
	b.WriteString(strconv.Itoa(exact))
	b.WriteString(",krefine=")
	b.WriteString(strconv.Itoa(rr.KRefine))
	b.WriteString(",qcobe=")
	b.WriteString(strconv.FormatInt(qfix(rr.QCOBEMicroK, stepQCOBE), 10))
	return b.String()
}

// Key returns the stable cache key of the request under the given service
// defaults.
func (r ClRequest) Key(d Defaults) string {
	return hashKey("cl", r.canonical(d))
}

// PkRequest is one matter-power-spectrum request. The zero value asks for
// the SCDM cosmology on the default logarithmic k grid.
type PkRequest struct {
	// Config selects the cosmology; nil means plinger.SCDM(), and
	// zero-valued fields of a partial config take their SCDM defaults.
	Config *plinger.Config `json:"config,omitempty"`
	// KMin, KMax and NK set the logarithmic grid (0: library defaults).
	KMin float64 `json:"kmin,omitempty"`
	KMax float64 `json:"kmax,omitempty"`
	NK   int     `json:"nk,omitempty"`
	// Amp is the primordial amplitude (0: unit amplitude).
	Amp float64 `json:"amp,omitempty"`
	// DeadlineMS bounds this request's wait in milliseconds; see
	// ClRequest.DeadlineMS. Never part of the cache key.
	DeadlineMS int `json:"deadline_ms,omitempty"`
	// PeerHop marks a peer-forwarded request; see ClRequest.PeerHop.
	// Never part of the cache key.
	PeerHop int `json:"peer_hop,omitempty"`
}

// Validate is the PkRequest analogue of ClRequest.Validate.
func (r PkRequest) Validate() error {
	if r.KMin < 0 {
		return fmt.Errorf("serve: kmin = %g is negative (0 or omitted selects the default)", r.KMin)
	}
	if r.KMax < 0 {
		return fmt.Errorf("serve: kmax = %g is negative (0 or omitted selects the default)", r.KMax)
	}
	if r.NK < 0 {
		return fmt.Errorf("serve: nk = %d is negative (0 or omitted selects the default)", r.NK)
	}
	if r.Amp < 0 {
		return fmt.Errorf("serve: amp = %g is negative (0 or omitted means unit amplitude)", r.Amp)
	}
	if r.DeadlineMS < 0 {
		return fmt.Errorf("serve: deadline_ms = %d is negative (0 or omitted waits for the sweep)", r.DeadlineMS)
	}
	if r.PeerHop < 0 || r.PeerHop > 1 {
		return fmt.Errorf("serve: peer_hop = %d is invalid (only the peer client sets it, to 1)", r.PeerHop)
	}
	return nil
}

// deadline converts the wire field to the lookup bound (0: no bound).
func (r PkRequest) deadline() time.Duration {
	return time.Duration(r.DeadlineMS) * time.Millisecond
}

func (r PkRequest) resolve(d Defaults) PkRequest {
	if r.Config == nil {
		cfg := plinger.SCDM()
		r.Config = &cfg
	} else {
		cfg := defaultConfig(*r.Config)
		r.Config = &cfg
	}
	if r.KMin <= 0 {
		r.KMin = 2e-4
	}
	if r.KMax <= 0 {
		r.KMax = 0.5
	}
	if r.NK <= 0 {
		r.NK = d.PkNK
	}
	return r
}

func (r PkRequest) canonical(d Defaults) string {
	rr := r.resolve(d)
	var b strings.Builder
	b.WriteString(keyVersion)
	b.WriteString("|pk|")
	b.WriteString(canonicalConfig(*rr.Config))
	b.WriteString("|kmin=")
	b.WriteString(strconv.FormatInt(qln(rr.KMin), 10))
	b.WriteString(",kmax=")
	b.WriteString(strconv.FormatInt(qln(rr.KMax), 10))
	b.WriteString(",nk=")
	b.WriteString(strconv.Itoa(rr.NK))
	b.WriteString(",amp=")
	b.WriteString(strconv.FormatInt(qln(rr.Amp), 10))
	return b.String()
}

// Key returns the stable cache key of the request under the given service
// defaults.
func (r PkRequest) Key(d Defaults) string {
	return hashKey("pk", r.canonical(d))
}

// modelKey is the cosmology part alone — the model-registry key, shared by
// every product of one cosmology.
func modelKey(c plinger.Config) string {
	return hashKey("mdl", keyVersion+"|"+canonicalConfig(c))
}
