package serve

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrBusy is returned when the admission queue is full: the service is
// already computing its maximum of concurrent sweeps and the waiting line
// has reached its bound. Handlers map it to 503 so overload degrades to
// fast rejections instead of an unbounded pile-up.
var ErrBusy = errors.New("serve: compute queue full")

// admission is the bounded queue in front of the compute path: at most
// `slots` sweeps run concurrently (they share the dispatch pool, so this
// bounds memory and latency, not just CPU), and at most maxWait further
// requests may block waiting for a slot. Cache hits and coalesced followers
// never enter the queue.
type admission struct {
	slots   chan struct{}
	waiting atomic.Int64
	maxWait int64
}

func newAdmission(concurrent, maxWait int) *admission {
	if concurrent < 1 {
		concurrent = 1
	}
	if maxWait < 0 {
		maxWait = 0
	}
	return &admission{slots: make(chan struct{}, concurrent), maxWait: int64(maxWait)}
}

// acquire takes a compute slot, waiting in the bounded line if necessary.
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.slots <- struct{}{}: // free slot, no waiting
		return nil
	default:
	}
	if a.waiting.Add(1) > a.maxWait {
		a.waiting.Add(-1)
		return ErrBusy
	}
	defer a.waiting.Add(-1)
	select {
	case a.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (a *admission) release() { <-a.slots }

// QueueStats is the /v1/stats view of the admission queue.
type QueueStats struct {
	MaxConcurrent int   `json:"max_concurrent"`
	MaxWaiting    int   `json:"max_waiting"`
	Computing     int   `json:"computing"`
	Waiting       int64 `json:"waiting"`
}

func (a *admission) Stats() QueueStats {
	return QueueStats{
		MaxConcurrent: cap(a.slots),
		MaxWaiting:    int(a.maxWait),
		Computing:     len(a.slots),
		Waiting:       a.waiting.Load(),
	}
}
