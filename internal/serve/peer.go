package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// This file is the serving side of the sharded cache fleet (tentpole of
// the resilience work; the peering substrate lives in internal/cluster).
// Every wire-stable cache key has exactly one owner in the peer ring. On
// a cache miss for a remote-owned key, the flight leader forwards the
// fully resolved request to the owner over the peer protocol:
//
//	POST /v1/peer/cl     resolved ClRequest (PeerHop=1)  -> envelope
//	POST /v1/peer/pk     resolved PkRequest (PeerHop=1)  -> envelope
//	POST /v1/peer/offer  {key, kind, result}             -> back-fill
//	GET  /v1/peer/ping                                   -> membership probe
//
// The degradation contract, in order:
//
//  1. owner answers inside the hedge window        -> source "peer"
//  2. owner slow: race forward vs local compute    -> first success wins
//  3. forward fails (dead, open breaker, timeout):
//     stale copy on hand                           -> source "stale", instantly
//     otherwise                                    -> local compute
//
// Degraded responses are pushed back to the owner asynchronously (Offer)
// so the ring's canonical copy lands where future requests will look for
// it. Peer-originated requests (PeerHop=1) never re-forward, so a forward
// travels at most one hop even when membership views disagree — a wrong
// ownership view costs one extra sweep, never correctness.

// peerForward is a prepared forward of one request to its owning peer.
// The body is the fully resolved request — defaults filled in, DeadlineMS
// zeroed, PeerHop set — so the owner derives the identical cache key even
// when its configured defaults differ from ours.
type peerForward struct {
	endpoint string // /v1/peer/cl or /v1/peer/pk
	kind     string // "cl" or "pk", the offer payload tag
	body     []byte
	decode   func(json.RawMessage) (any, error)
}

// localRes is the outcome of one admitted local compute. It carries its
// trace id instead of writing the flight's shared state because a hedged
// run may settle after the flight already adopted the peer's answer.
type localRes struct {
	v     any
	err   error
	trace string
}

func decodeClResult(raw json.RawMessage) (any, error) {
	out := new(ClResponse)
	if err := json.Unmarshal(raw, out); err != nil {
		return nil, err
	}
	return out, nil
}

func decodePkResult(raw json.RawMessage) (any, error) {
	out := new(PkResponse)
	if err := json.Unmarshal(raw, out); err != nil {
		return nil, err
	}
	return out, nil
}

// peerServe routes one cache miss through the fleet. handled=false means
// this node owns the key and the ordinary local path should run. The
// leader-only flightOut fields (src, peer, traceID) are written here —
// never from the hedge goroutines.
func (s *Service) peerServe(ctx context.Context, key string, fwd *peerForward, runLocal func() localRes, out *flightOut) (any, error, bool) {
	owner, remote := s.cluster.Owner(key)
	if !remote {
		return nil, nil, false
	}
	s.peerRequests.Inc()
	v, lr, ferr := s.peerFetch(ctx, owner, key, fwd, runLocal)
	switch {
	case v != nil:
		// The owner answered. Keep a local copy so the next request for
		// this key is an ordinary cache hit — the cross-node hit becomes a
		// zero-hop hit from here on.
		s.peerServed.Inc()
		out.src = SourcePeer
		out.peer = owner
		s.cache.Add(key, v)
		s.stale.Add(key, v)
		return v, nil, true
	case lr != nil:
		// A hedged local run settled and was adopted (the forward was slow
		// or failed after the hedge fired).
		out.traceID = lr.trace
		if lr.err == nil {
			s.offerAsync(owner, fwd, key, lr.v)
		}
		return lr.v, lr.err, true
	}
	// The forward failed fast — dead member, open breaker, exhausted
	// retries — and nothing ran locally yet. Degrade, cheapest first: a
	// stale copy on hand answers immediately (responses are deterministic,
	// so stale is bitwise-identical to fresh), only then pay a sweep.
	s.localFallback.Inc()
	s.logger.Warn("peer fetch failed; degrading to local", "peer", owner, "key", key, "err", ferr)
	if sv, ok := s.stale.Get(key); ok {
		s.staleServed.Inc()
		out.src = SourceStale
		s.offerAsync(owner, fwd, key, sv)
		return sv, nil, true
	}
	lres := runLocal()
	out.traceID = lres.trace
	if lres.err == nil {
		s.offerAsync(owner, fwd, key, lres.v)
	}
	return lres.v, lres.err, true
}

// fetchRes is one forward attempt's outcome.
type fetchRes struct {
	v   any
	err error
}

// peerFetch forwards the request to the owner and, when the forward is
// slow, hedges it against a local compute. Exactly one of the returns is
// meaningful: v (the peer answered), lr (a local run settled and must be
// adopted, success or failure), or err (the forward failed and nothing
// ran locally). Like the compute path, the fetch is decoupled from the
// leader's own cancellation — coalesced followers depend on it — and
// bounded instead by the peering layer's per-hop timeout and retry budget.
func (s *Service) peerFetch(ctx context.Context, owner, key string, fwd *peerForward, runLocal func() localRes) (any, *localRes, error) {
	fetchCh := make(chan fetchRes, 1)
	go func() {
		b, err := s.cluster.Fetch(context.WithoutCancel(ctx), owner, fwd.endpoint, fwd.body)
		if err != nil {
			fetchCh <- fetchRes{err: err}
			return
		}
		v, err := decodePeerEnvelope(b, key, fwd.decode)
		fetchCh <- fetchRes{v: v, err: err}
	}()
	hedge := s.cluster.HedgeAfter()
	if hedge <= 0 {
		fr := <-fetchCh
		return fr.v, nil, fr.err
	}
	timer := time.NewTimer(hedge)
	defer timer.Stop()
	select {
	case fr := <-fetchCh:
		return fr.v, nil, fr.err
	case <-timer.C:
	}
	// The forward outlived the hedge window: race it against a local
	// compute and adopt the first success. The loser's work is not wasted
	// — a late peer response is dropped, a late local sweep still fills
	// the cache.
	s.hedged.Inc()
	localCh := make(chan localRes, 1)
	go func() { localCh <- runLocal() }()
	var failedLocal *localRes
	for {
		select {
		case fr := <-fetchCh:
			if fr.err == nil {
				return fr.v, nil, nil
			}
			if failedLocal != nil {
				return nil, failedLocal, nil
			}
			lr := <-localCh
			return nil, &lr, nil
		case lr := <-localCh:
			if lr.err == nil {
				return nil, &lr, nil
			}
			// Local failed (admission overflow, compute error): the slow
			// forward is now the best remaining hope — keep waiting on it.
			failedLocal = &lr
		}
	}
}

// peerEnvelope is the owner's reply as read by the forwarding node: the
// standard response envelope with the payload left raw for the typed
// decode.
type peerEnvelope struct {
	Key    string          `json:"key"`
	Source Source          `json:"source"`
	Result json.RawMessage `json:"result"`
}

// decodePeerEnvelope unwraps a forwarded response. The key check guards
// version or quantization skew: a peer that derives a different key for
// the same resolved request must not fill our cache under ours.
func decodePeerEnvelope(b []byte, key string, decode func(json.RawMessage) (any, error)) (any, error) {
	var env peerEnvelope
	if err := json.Unmarshal(b, &env); err != nil {
		return nil, fmt.Errorf("serve: bad peer envelope: %w", err)
	}
	if env.Key != key {
		return nil, fmt.Errorf("serve: peer answered key %s for %s (key-schema skew)", env.Key, key)
	}
	return decode(env.Result)
}

// peerOffer is the back-fill wire form (POST /v1/peer/offer).
type peerOffer struct {
	Key    string          `json:"key"`
	Kind   string          `json:"kind"`
	Result json.RawMessage `json:"result"`
}

// offerAsync pushes a locally produced response to the key's owner,
// asynchronously and best-effort: the serving path never waits on it, and
// a failed offer only means the owner stays cold until its own first miss.
func (s *Service) offerAsync(owner string, fwd *peerForward, key string, v any) {
	raw, err := json.Marshal(v)
	if err != nil {
		return
	}
	body, err := json.Marshal(peerOffer{Key: key, Kind: fwd.kind, Result: raw})
	if err != nil {
		return
	}
	go func() {
		if err := s.cluster.Offer(owner, "/v1/peer/offer", body); err != nil {
			s.logger.Debug("peer back-fill failed", "peer", owner, "key", key, "err", err)
		}
	}()
}

// peerRoutes registers the peer protocol on the daemon mux. The endpoints
// are available on every node (clustered or not): a single-node daemon
// answering /v1/peer/cl is just a slightly verbose /v1/cl.
func (s *Service) peerRoutes(mux *http.ServeMux) {
	mux.HandleFunc("/v1/peer/cl", func(w http.ResponseWriter, r *http.Request) {
		var req ClRequest
		if !decodeRequest(w, r, &req) {
			return
		}
		// Peer requests never re-forward, whatever the body says: the hop
		// bound is enforced by the receiver, not trusted from the wire.
		req.PeerHop = 1
		resp, meta, err := s.ComputeCl(r.Context(), req)
		annotate(r, meta)
		s.writeResponse(w, resp, meta, err)
	})
	mux.HandleFunc("/v1/peer/pk", func(w http.ResponseWriter, r *http.Request) {
		var req PkRequest
		if !decodeRequest(w, r, &req) {
			return
		}
		req.PeerHop = 1
		resp, meta, err := s.ComputePk(r.Context(), req)
		annotate(r, meta)
		s.writeResponse(w, resp, meta, err)
	})
	mux.HandleFunc("/v1/peer/offer", func(w http.ResponseWriter, r *http.Request) {
		var off peerOffer
		if !decodeRequest(w, r, &off) {
			return
		}
		var v any
		var err error
		switch off.Kind {
		case "cl":
			v, err = decodeClResult(off.Result)
		case "pk":
			v, err = decodePkResult(off.Result)
		default:
			httpError(w, http.StatusBadRequest, fmt.Sprintf("unknown offer kind %q", off.Kind))
			return
		}
		if err != nil || off.Key == "" {
			httpError(w, http.StatusBadRequest, "malformed offer payload")
			return
		}
		s.cache.Add(off.Key, v)
		s.stale.Add(off.Key, v)
		s.offersAccepted.Inc()
		writeJSON(w, http.StatusOK, map[string]any{"accepted": true})
	})
	mux.HandleFunc("/v1/peer/ping", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
}
