package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// Handler returns the daemon's HTTP API:
//
//	POST /v1/cl    {"config": {...}, "lmax_cl": 150, ...}  -> C_l JSON
//	POST /v1/pk    {"config": {...}, "nk": 40, ...}        -> P(k) JSON
//	GET  /v1/stats                                         -> serving counters
//	GET  /healthz                                          -> 200 ok
//
// Responses carry the cache key, the source (cache/compute/coalesced/stale)
// and the serving latency alongside the science payload; the same metadata
// is mirrored in the X-Plinger-Source header. Overload returns 503, bad
// requests 400 with the facade's validation message, and a request whose
// deadline_ms expires with no stale response available returns 504.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/cl", func(w http.ResponseWriter, r *http.Request) {
		var req ClRequest
		if !decodeRequest(w, r, &req) {
			return
		}
		resp, meta, err := s.ComputeCl(r.Context(), req)
		writeResponse(w, resp, meta, err)
	})
	mux.HandleFunc("/v1/pk", func(w http.ResponseWriter, r *http.Request) {
		var req PkRequest
		if !decodeRequest(w, r, &req) {
			return
		}
		resp, meta, err := s.ComputePk(r.Context(), req)
		writeResponse(w, resp, meta, err)
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// decodeRequest parses the JSON body into req; an empty body is the zero
// request (the service defaults). Returns false after writing an error.
func decodeRequest(w http.ResponseWriter, r *http.Request, req any) bool {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST a JSON request body")
		return false
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading body: "+err.Error())
		return false
	}
	if len(body) == 0 {
		return true
	}
	if err := json.Unmarshal(body, req); err != nil {
		httpError(w, http.StatusBadRequest, "parsing request: "+err.Error())
		return false
	}
	return true
}

// envelope is the wire form: the science payload plus serving metadata.
type envelope struct {
	Key       string  `json:"key"`
	Source    Source  `json:"source"`
	ElapsedMS float64 `json:"elapsed_ms"`
	Result    any     `json:"result"`
}

func writeResponse(w http.ResponseWriter, result any, meta Meta, err error) {
	if err != nil {
		switch {
		case errors.Is(err, ErrBusy):
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusServiceUnavailable, err.Error())
		case errors.Is(err, ErrDeadline):
			// Before isBadRequest: the sentinel's "serve:" prefix would
			// otherwise classify a timeout as a client error. The sweep is
			// still running and will fill the cache, so retrying helps.
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusGatewayTimeout, err.Error())
		case isBadRequest(err):
			httpError(w, http.StatusBadRequest, err.Error())
		default:
			httpError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	w.Header().Set("X-Plinger-Source", string(meta.Source))
	w.Header().Set("X-Plinger-Key", meta.Key)
	writeJSON(w, http.StatusOK, envelope{
		Key:       meta.Key,
		Source:    meta.Source,
		ElapsedMS: float64(meta.Elapsed.Nanoseconds()) / 1e6,
		Result:    result,
	})
}

// isBadRequest classifies validation failures: the serving layer's own
// wire checks ("serve:"), the facade's option validators ("plinger:") and
// config construction ("cosmology:").
func isBadRequest(err error) bool {
	for e := err; e != nil; e = errors.Unwrap(e) {
		msg := e.Error()
		for _, prefix := range []string{"serve:", "plinger:", "cosmology:"} {
			if len(msg) >= len(prefix) && msg[:len(prefix)] == prefix {
				return true
			}
		}
	}
	return false
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]any{"error": msg, "status": status})
}
