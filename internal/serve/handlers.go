package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"time"

	"plinger/internal/obs"
)

// Handler returns the daemon's HTTP API:
//
//	POST /v1/cl    {"config": {...}, "lmax_cl": 150, ...}  -> C_l JSON
//	POST /v1/pk    {"config": {...}, "nk": 40, ...}        -> P(k) JSON
//	GET  /v1/stats                                         -> serving counters
//	GET  /v1/trace?last=N                                  -> recent sweep traces
//	GET  /metrics                                          -> Prometheus text
//	GET  /healthz                                          -> 200 ok
//
// plus the fleet peer protocol (/v1/peer/cl, /v1/peer/pk, /v1/peer/offer,
// /v1/peer/ping — see peer.go).
//
// Responses carry the cache key, the source (cache/compute/coalesced/stale)
// and the serving latency alongside the science payload; the same metadata
// is mirrored in the X-Plinger-Source header, and a request that led a cold
// computation additionally carries its sweep trace id in X-Plinger-Trace.
// Overload returns 503, bad requests 400 with the facade's validation
// message, and a request whose deadline_ms expires with no stale response
// available returns 504. Every request is logged through Options.Logger
// with a per-request id; requests slower than Options.SlowRequest get an
// extra warning line carrying the trace id.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/cl", func(w http.ResponseWriter, r *http.Request) {
		var req ClRequest
		if !decodeRequest(w, r, &req) {
			return
		}
		resp, meta, err := s.ComputeCl(r.Context(), req)
		annotate(r, meta)
		s.writeResponse(w, resp, meta, err)
	})
	mux.HandleFunc("/v1/pk", func(w http.ResponseWriter, r *http.Request) {
		var req PkRequest
		if !decodeRequest(w, r, &req) {
			return
		}
		resp, meta, err := s.ComputePk(r.Context(), req)
		annotate(r, meta)
		s.writeResponse(w, resp, meta, err)
	})
	s.peerRoutes(mux)
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("/v1/trace", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		n := 16
		if q := r.URL.Query().Get("last"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 1 {
				httpError(w, http.StatusBadRequest, "last must be a positive integer")
				return
			}
			n = v
		}
		writeJSON(w, http.StatusOK, map[string]any{"traces": s.Traces(n)})
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// Per-service serving metrics first, then the peering layer's
		// (breaker states, membership, forward counters) when clustered,
		// then the process-wide engine metrics (sweeps, fault ledger,
		// table builds, Go runtime).
		s.reg.WritePrometheus(w)
		if s.cluster != nil {
			s.cluster.Registry().WritePrometheus(w)
		}
		obs.Default.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return s.logging(mux)
}

// traceNote carries serving metadata from the compute handlers out to the
// logging middleware through the request context.
type traceNote struct {
	source Source
	key    string
	trace  string
}

type traceNoteKey struct{}

// annotate records the request's serving metadata for the access log.
func annotate(r *http.Request, meta Meta) {
	if note, ok := r.Context().Value(traceNoteKey{}).(*traceNote); ok {
		note.source, note.key, note.trace = meta.Source, meta.Key, meta.Trace
	}
}

// statusWriter captures the response status for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// logging wraps the API mux with structured request logging: one INFO line
// per request (id, method, path, status, elapsed, cache source, sweep trace
// id when a computation ran) and a WARN line when the request exceeded the
// slow-request threshold.
func (s *Service) logging(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := fmt.Sprintf("r-%06d", s.reqSeq.Add(1))
		note := &traceNote{}
		r = r.WithContext(context.WithValue(r.Context(), traceNoteKey{}, note))
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		elapsed := time.Since(start)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		args := []any{
			"req", id,
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"elapsed_ms", float64(elapsed.Nanoseconds()) / 1e6,
		}
		if note.source != "" {
			args = append(args, "source", string(note.source), "key", note.key)
		}
		if note.trace != "" {
			args = append(args, "trace", note.trace)
		}
		s.logger.Info("request", args...)
		if elapsed > s.opts.SlowRequest {
			s.logger.Warn("slow request", args...)
		}
	})
}

// decodeRequest parses the JSON body into req; an empty body is the zero
// request (the service defaults). Returns false after writing an error.
func decodeRequest(w http.ResponseWriter, r *http.Request, req any) bool {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST a JSON request body")
		return false
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading body: "+err.Error())
		return false
	}
	if len(body) == 0 {
		return true
	}
	if err := json.Unmarshal(body, req); err != nil {
		httpError(w, http.StatusBadRequest, "parsing request: "+err.Error())
		return false
	}
	return true
}

// envelope is the wire form: the science payload plus serving metadata.
type envelope struct {
	Key       string  `json:"key"`
	Source    Source  `json:"source"`
	ElapsedMS float64 `json:"elapsed_ms"`
	TraceID   string  `json:"trace_id,omitempty"`
	// Peer is the owning fleet member that served the response when
	// Source is "peer".
	Peer   string `json:"peer,omitempty"`
	Result any    `json:"result"`
}

// retryAfter derives the Retry-After hint written on 503 (queue full) and
// 504 (deadline expired) responses. Units are SECONDS — the RFC 9110
// delay-seconds form, never an HTTP-date. The hint estimates when the
// present backlog will have drained rather than asserting a bare
// constant: the waiting line forms waiting/max_concurrent compute
// batches ahead of the retrier, plus one for the batch in flight, each
// costing about one average cold sweep. Clamped to [1, 30] so an idle or
// just-started daemon (no miss history yet) still asks for a polite 1s
// pause, and a swamped one never pushes clients out more than half a
// minute.
func (s *Service) retryAfter() string {
	avgSweep := 1.0
	if m := s.misses.Value(); m > 0 {
		if a := float64(s.missNs.Load()) / 1e9 / float64(m); a > avgSweep {
			avgSweep = a
		}
	}
	q := s.adm.Stats()
	batches := float64(q.Waiting)/float64(q.MaxConcurrent) + 1
	sec := int(math.Ceil(batches * avgSweep))
	if sec < 1 {
		sec = 1
	}
	if sec > 30 {
		sec = 30
	}
	return strconv.Itoa(sec)
}

func (s *Service) writeResponse(w http.ResponseWriter, result any, meta Meta, err error) {
	if err != nil {
		switch {
		case errors.Is(err, ErrBusy):
			w.Header().Set("Retry-After", s.retryAfter())
			httpError(w, http.StatusServiceUnavailable, err.Error())
		case errors.Is(err, ErrDeadline):
			// Before isBadRequest: the sentinel's "serve:" prefix would
			// otherwise classify a timeout as a client error. The sweep is
			// still running and will fill the cache, so retrying helps.
			w.Header().Set("Retry-After", s.retryAfter())
			httpError(w, http.StatusGatewayTimeout, err.Error())
		case isBadRequest(err):
			httpError(w, http.StatusBadRequest, err.Error())
		default:
			httpError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	w.Header().Set("X-Plinger-Source", string(meta.Source))
	w.Header().Set("X-Plinger-Key", meta.Key)
	if meta.Trace != "" {
		w.Header().Set("X-Plinger-Trace", meta.Trace)
	}
	if meta.Peer != "" {
		w.Header().Set("X-Plinger-Peer", meta.Peer)
	}
	writeJSON(w, http.StatusOK, envelope{
		Key:       meta.Key,
		Source:    meta.Source,
		ElapsedMS: float64(meta.Elapsed.Nanoseconds()) / 1e6,
		TraceID:   meta.Trace,
		Peer:      meta.Peer,
		Result:    result,
	})
}

// isBadRequest classifies validation failures: the serving layer's own
// wire checks ("serve:"), the facade's option validators ("plinger:") and
// config construction ("cosmology:").
func isBadRequest(err error) bool {
	for e := err; e != nil; e = errors.Unwrap(e) {
		msg := e.Error()
		for _, prefix := range []string{"serve:", "plinger:", "cosmology:"} {
			if len(msg) >= len(prefix) && msg[:len(prefix)] == prefix {
				return true
			}
		}
	}
	return false
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]any{"error": msg, "status": status})
}
