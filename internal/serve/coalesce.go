package serve

import "sync"

// flightGroup is request coalescing (the singleflight pattern): while one
// goroutine computes the value for a key, every other goroutine asking for
// the same key waits for that one computation instead of starting its own.
// N concurrent identical cold requests therefore cost exactly one sweep.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	val  any
	err  error
	dups int
}

// Do runs fn once per key at a time. The leader executes fn; followers
// block until it finishes and receive the same value and error. coalesced
// is true for followers.
func (g *flightGroup) Do(key string, fn func() (any, error)) (val any, err error, coalesced bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		c.dups++
		g.mu.Unlock()
		<-c.done
		return c.val, c.err, true
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, c.err, false
}

// InFlight returns the number of keys currently being computed.
func (g *flightGroup) InFlight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.m)
}
