package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"plinger/internal/obs"
)

// LoadReport is the load generator's summary: sustained throughput and the
// client-side latency distribution, split by how the daemon served each
// request (cache hit / computed miss / coalesced). cmd/plingerd -loadgen
// prints it; cmd/benchjson embeds it into the benchmark JSON. The quantiles
// come from the same sharded histogram type the daemon exposes on /metrics,
// so the client-side and server-side distributions are directly comparable.
type LoadReport struct {
	Clients     int     `json:"clients"`
	Seconds     float64 `json:"seconds"`
	Requests    int64   `json:"requests"`
	Errors      int64   `json:"errors"`
	RequestsSec float64 `json:"requests_per_sec"`
	Hits        int64   `json:"hits"`
	Misses      int64   `json:"misses"`
	Coalesced   int64   `json:"coalesced"`
	P50MS       float64 `json:"p50_ms"`
	P95MS       float64 `json:"p95_ms"`
	P99MS       float64 `json:"p99_ms"`
	MaxMS       float64 `json:"max_ms"`
	HitMeanMS   float64 `json:"hit_mean_ms"`
	MissMeanMS  float64 `json:"miss_mean_ms"`
}

// RunLoadgen hammers POST {base}/v1/cl with identical `body` requests from
// `clients` concurrent goroutines for the duration and aggregates
// client-side latency into one sharded histogram (each client owns a shard,
// so the hot loop records without contention). The daemon classifies each
// response via the X-Plinger-Source header, so the report separates
// hot-path and cold-path behaviour without server cooperation.
func RunLoadgen(base string, clients int, d time.Duration, body string) (*LoadReport, error) {
	var (
		lat     = obs.NewHistogram("loadgen", "", obs.DefBuckets(), clients)
		hits    atomic.Int64
		misses  atomic.Int64
		coal    atomic.Int64
		hitNs   atomic.Int64
		missNs  atomic.Int64
		errs    atomic.Int64
		stop    = make(chan struct{})
		wg      sync.WaitGroup
		payload = []byte(body)
	)
	client := &http.Client{Timeout: 30 * time.Second}
	// Fail fast on an unreachable daemon before spawning the fleet.
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return nil, fmt.Errorf("daemon unreachable: %w", err)
	}
	resp.Body.Close()

	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				t0 := time.Now()
				resp, err := client.Post(base+"/v1/cl", "application/json", bytes.NewReader(payload))
				ns := time.Since(t0).Nanoseconds()
				if err != nil {
					errs.Add(1)
					continue
				}
				source := resp.Header.Get("X-Plinger-Source")
				_ = resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					// Rejections and failures are errors, not latency
					// samples — a 503 must not masquerade as a
					// sub-millisecond "miss" in the report.
					errs.Add(1)
					continue
				}
				lat.ObserveShard(shard, float64(ns)/1e9)
				switch source {
				case string(SourceCache):
					hits.Add(1)
					hitNs.Add(ns)
				case string(SourceCoalesced):
					coal.Add(1)
				default:
					misses.Add(1)
					missNs.Add(ns)
				}
			}
		}(c)
	}
	time.Sleep(d)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	rep := &LoadReport{
		Clients: clients, Seconds: elapsed, Errors: errs.Load(),
		Hits: hits.Load(), Misses: misses.Load(), Coalesced: coal.Load(),
	}
	snap := lat.Snapshot()
	if snap.Count == 0 {
		return rep, fmt.Errorf("no requests completed")
	}
	rep.Requests = int64(snap.Count)
	rep.RequestsSec = float64(snap.Count) / elapsed
	rep.P50MS = snap.Quantile(0.50) * 1e3
	rep.P95MS = snap.Quantile(0.95) * 1e3
	rep.P99MS = snap.Quantile(0.99) * 1e3
	rep.MaxMS = snap.Max * 1e3
	if n := rep.Hits; n > 0 {
		rep.HitMeanMS = float64(hitNs.Load()) / 1e6 / float64(n)
	}
	if n := rep.Misses; n > 0 {
		rep.MissMeanMS = float64(missNs.Load()) / 1e6 / float64(n)
	}
	return rep, nil
}
