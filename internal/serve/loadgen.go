package serve

import (
	"bytes"
	"fmt"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// LoadReport is the load generator's summary: sustained throughput and the
// client-side latency distribution, split by how the daemon served each
// request (cache hit / computed miss / coalesced). cmd/plingerd -loadgen
// prints it; cmd/benchjson embeds it into BENCH_PR3.json.
type LoadReport struct {
	Clients     int     `json:"clients"`
	Seconds     float64 `json:"seconds"`
	Requests    int64   `json:"requests"`
	Errors      int64   `json:"errors"`
	RequestsSec float64 `json:"requests_per_sec"`
	Hits        int64   `json:"hits"`
	Misses      int64   `json:"misses"`
	Coalesced   int64   `json:"coalesced"`
	P50MS       float64 `json:"p50_ms"`
	P99MS       float64 `json:"p99_ms"`
	HitMeanMS   float64 `json:"hit_mean_ms"`
	MissMeanMS  float64 `json:"miss_mean_ms"`
}

// RunLoadgen hammers POST {base}/v1/cl with identical `body` requests from
// `clients` concurrent goroutines for the duration and aggregates
// client-side latency. The daemon classifies each response via the
// X-Plinger-Source header, so the report separates hot-path and cold-path
// behaviour without server cooperation.
func RunLoadgen(base string, clients int, d time.Duration, body string) (*LoadReport, error) {
	type obs struct {
		ns     int64
		source string
	}
	var (
		mu      sync.Mutex
		all     []obs
		errs    atomic.Int64
		stop    = make(chan struct{})
		wg      sync.WaitGroup
		payload = []byte(body)
	)
	client := &http.Client{Timeout: 30 * time.Second}
	// Fail fast on an unreachable daemon before spawning the fleet.
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return nil, fmt.Errorf("daemon unreachable: %w", err)
	}
	resp.Body.Close()

	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local []obs
			for {
				select {
				case <-stop:
					mu.Lock()
					all = append(all, local...)
					mu.Unlock()
					return
				default:
				}
				t0 := time.Now()
				resp, err := client.Post(base+"/v1/cl", "application/json", bytes.NewReader(payload))
				ns := time.Since(t0).Nanoseconds()
				if err != nil {
					errs.Add(1)
					continue
				}
				source := resp.Header.Get("X-Plinger-Source")
				_ = resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					// Rejections and failures are errors, not latency
					// samples — a 503 must not masquerade as a
					// sub-millisecond "miss" in the report.
					errs.Add(1)
					continue
				}
				local = append(local, obs{ns: ns, source: source})
			}
		}()
	}
	time.Sleep(d)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	rep := &LoadReport{Clients: clients, Seconds: elapsed, Errors: errs.Load()}
	if len(all) == 0 {
		return rep, fmt.Errorf("no requests completed")
	}
	lat := make([]float64, 0, len(all))
	var hitNs, missNs, hitN, missN int64
	for _, o := range all {
		lat = append(lat, float64(o.ns)/1e6)
		switch o.source {
		case string(SourceCache):
			rep.Hits++
			hitNs += o.ns
			hitN++
		case string(SourceCoalesced):
			rep.Coalesced++
		default:
			rep.Misses++
			missNs += o.ns
			missN++
		}
	}
	sort.Float64s(lat)
	rep.Requests = int64(len(all))
	rep.RequestsSec = float64(len(all)) / elapsed
	rep.P50MS = percentile(lat, 0.50)
	rep.P99MS = percentile(lat, 0.99)
	if hitN > 0 {
		rep.HitMeanMS = float64(hitNs) / 1e6 / float64(hitN)
	}
	if missN > 0 {
		rep.MissMeanMS = float64(missNs) / 1e6 / float64(missN)
	}
	return rep, nil
}

// percentile reads the p-quantile off an ascending latency slice.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
