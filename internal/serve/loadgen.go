package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"plinger/internal/obs"
)

// LoadReport is the load generator's summary: sustained throughput and the
// client-side latency distribution, split by how the daemon served each
// request (cache hit / computed miss / coalesced). cmd/plingerd -loadgen
// prints it; cmd/benchjson embeds it into the benchmark JSON. The quantiles
// come from the same sharded histogram type the daemon exposes on /metrics,
// so the client-side and server-side distributions are directly comparable.
type LoadReport struct {
	Clients     int     `json:"clients"`
	Nodes       int     `json:"nodes"`
	Seconds     float64 `json:"seconds"`
	Requests    int64   `json:"requests"`
	Errors      int64   `json:"errors"`
	RequestsSec float64 `json:"requests_per_sec"`
	Hits        int64   `json:"hits"`
	Misses      int64   `json:"misses"`
	Coalesced   int64   `json:"coalesced"`
	// PeerServed and StaleServed count fleet-mode outcomes: responses a
	// node fetched from the key's owning replica, and last-known-good
	// answers served on a degraded path.
	PeerServed  int64   `json:"peer_served"`
	StaleServed int64   `json:"stale_served"`
	P50MS       float64 `json:"p50_ms"`
	P95MS       float64 `json:"p95_ms"`
	P99MS       float64 `json:"p99_ms"`
	MaxMS       float64 `json:"max_ms"`
	HitMeanMS   float64 `json:"hit_mean_ms"`
	MissMeanMS  float64 `json:"miss_mean_ms"`
}

// RunLoadgen hammers POST {base}/v1/cl with identical `body` requests from
// `clients` concurrent goroutines for the duration and aggregates
// client-side latency into one sharded histogram (each client owns a shard,
// so the hot loop records without contention). The daemon classifies each
// response via the X-Plinger-Source header, so the report separates
// hot-path and cold-path behaviour without server cooperation.
//
// Fleet mode: base may be a comma-separated list of daemon URLs — clients
// are assigned round-robin across the nodes, so the report measures the
// sharded fleet as one system (cross-node peer serves and degraded stale
// serves are counted separately).
func RunLoadgen(base string, clients int, d time.Duration, body string) (*LoadReport, error) {
	var (
		lat     = obs.NewHistogram("loadgen", "", obs.DefBuckets(), clients)
		hits    atomic.Int64
		misses  atomic.Int64
		coal    atomic.Int64
		peer    atomic.Int64
		staled  atomic.Int64
		hitNs   atomic.Int64
		missNs  atomic.Int64
		errs    atomic.Int64
		stop    = make(chan struct{})
		wg      sync.WaitGroup
		payload = []byte(body)
	)
	var bases []string
	for _, b := range strings.Split(base, ",") {
		if b = strings.TrimSpace(strings.TrimRight(b, "/")); b != "" {
			bases = append(bases, b)
		}
	}
	if len(bases) == 0 {
		return nil, fmt.Errorf("no daemon URL given")
	}
	client := &http.Client{Timeout: 30 * time.Second}
	// Fail fast on any unreachable node before spawning the fleet.
	for _, b := range bases {
		resp, err := client.Get(b + "/healthz")
		if err != nil {
			return nil, fmt.Errorf("daemon %s unreachable: %w", b, err)
		}
		resp.Body.Close()
	}

	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			node := bases[shard%len(bases)]
			for {
				select {
				case <-stop:
					return
				default:
				}
				t0 := time.Now()
				resp, err := client.Post(node+"/v1/cl", "application/json", bytes.NewReader(payload))
				ns := time.Since(t0).Nanoseconds()
				if err != nil {
					errs.Add(1)
					continue
				}
				source := resp.Header.Get("X-Plinger-Source")
				_ = resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					// Rejections and failures are errors, not latency
					// samples — a 503 must not masquerade as a
					// sub-millisecond "miss" in the report.
					errs.Add(1)
					continue
				}
				lat.ObserveShard(shard, float64(ns)/1e9)
				switch source {
				case string(SourceCache):
					hits.Add(1)
					hitNs.Add(ns)
				case string(SourceCoalesced):
					coal.Add(1)
				case string(SourcePeer):
					// A cross-node cache hit: the fleet had the answer even
					// though this node did not. Counted with the hits in the
					// ratio (no sweep ran) but tracked separately.
					peer.Add(1)
					hitNs.Add(ns)
				case string(SourceStale):
					staled.Add(1)
				default:
					misses.Add(1)
					missNs.Add(ns)
				}
			}
		}(c)
	}
	time.Sleep(d)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	rep := &LoadReport{
		Clients: clients, Nodes: len(bases), Seconds: elapsed, Errors: errs.Load(),
		Hits: hits.Load(), Misses: misses.Load(), Coalesced: coal.Load(),
		PeerServed: peer.Load(), StaleServed: staled.Load(),
	}
	snap := lat.Snapshot()
	if snap.Count == 0 {
		return rep, fmt.Errorf("no requests completed")
	}
	rep.Requests = int64(snap.Count)
	rep.RequestsSec = float64(snap.Count) / elapsed
	rep.P50MS = snap.Quantile(0.50) * 1e3
	rep.P95MS = snap.Quantile(0.95) * 1e3
	rep.P99MS = snap.Quantile(0.99) * 1e3
	rep.MaxMS = snap.Max * 1e3
	if n := rep.Hits + rep.PeerServed; n > 0 {
		rep.HitMeanMS = float64(hitNs.Load()) / 1e6 / float64(n)
	}
	if n := rep.Misses; n > 0 {
		rep.MissMeanMS = float64(missNs.Load()) / 1e6 / float64(n)
	}
	return rep, nil
}
