package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"plinger/internal/obs"
)

// scrapeMetrics GETs /metrics and parses the exposition text.
func scrapeMetrics(t *testing.T, client *http.Client, base string) []obs.Sample {
	t.Helper()
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	samples, err := obs.ParsePrometheus(resp.Body)
	if err != nil {
		t.Fatalf("parsing /metrics: %v", err)
	}
	return samples
}

// TestMetricsDuringLoad is the CI-reachable scrape check: while concurrent
// requests are in flight, /metrics must stay parseable and must expose the
// cache, latency, sweep, fault-ledger and runtime series.
func TestMetricsDuringLoad(t *testing.T) {
	s := testService()
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	client := srv.Client()

	// Concurrent load: one cold key computed once, then hammered for hits,
	// with /metrics scraped in the middle of it.
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				resp, err := client.Post(srv.URL+"/v1/cl", "application/json",
					bytes.NewReader([]byte(`{}`)))
				if err == nil {
					resp.Body.Close()
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 3; j++ {
			scrapeMetrics(t, client, srv.URL)
		}
	}()
	wg.Wait()

	samples := scrapeMetrics(t, client, srv.URL)
	// Counters with known floors after 30 requests on one key.
	req := obs.FindSample(samples, "plinger_serve_requests_total", nil)
	if req == nil || req.Value < 30 {
		t.Fatalf("requests_total = %v, want >= 30", req)
	}
	hits := obs.FindSample(samples, "plinger_serve_cache_hits_total", nil)
	if hits == nil || hits.Value < 1 {
		t.Fatalf("cache_hits_total = %v, want >= 1", hits)
	}
	modes := obs.FindSample(samples, "plinger_sweep_modes_total", nil)
	if modes == nil || modes.Value < 1 {
		t.Fatalf("sweep_modes_total = %v, want >= 1", modes)
	}
	// Presence checks: per-endpoint latency histogram, queue gauge, fault
	// ledger, sweep-phase timing, runtime gauges.
	for _, probe := range []struct {
		name   string
		labels map[string]string
	}{
		{"plinger_serve_request_seconds_count", map[string]string{"endpoint": "cl"}},
		{"plinger_serve_request_seconds_bucket", map[string]string{"endpoint": "cl"}},
		{"plinger_serve_queue_wait_seconds_count", nil},
		{"plinger_serve_queue_computing", nil},
		{"plinger_sweeps_total", nil},
		{"plinger_sweep_seconds_count", nil},
		{"plinger_sweep_mode_seconds_count", nil},
		{"plinger_core_tablebuilds_total", nil},
		{"plinger_fault_worker_failures_total", nil},
		{"plinger_fault_reassignments_total", nil},
		{"plinger_fault_deadline_misses_total", nil},
		{"plinger_go_goroutines", nil},
		{"plinger_go_heap_alloc_bytes", nil},
	} {
		if obs.FindSample(samples, probe.name, probe.labels) == nil {
			t.Errorf("missing series %s%v", probe.name, probe.labels)
		}
	}
	if g := obs.FindSample(samples, "plinger_go_goroutines", nil); g != nil && g.Value < 1 {
		t.Errorf("goroutines gauge = %v", g.Value)
	}
}

// wireTraces is the /v1/trace response body.
type wireTraces struct {
	Traces []obs.TraceSnapshot `json:"traces"`
}

// TestTraceCoverage is the acceptance-criterion check: a recorded cold-miss
// trace must account for >= 95% of the request's wall time across its named
// top-level phases.
func TestTraceCoverage(t *testing.T) {
	s := testService()
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	client := srv.Client()

	resp, err := client.Post(srv.URL+"/v1/cl", "application/json", bytes.NewReader([]byte(`{}`)))
	if err != nil {
		t.Fatal(err)
	}
	traceID := resp.Header.Get("X-Plinger-Trace")
	var env struct {
		TraceID string `json:"trace_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if traceID == "" || env.TraceID != traceID {
		t.Fatalf("cold miss: header trace %q, body trace %q", traceID, env.TraceID)
	}

	tresp, err := client.Get(srv.URL + "/v1/trace?last=8")
	if err != nil {
		t.Fatal(err)
	}
	var wire wireTraces
	if err := json.NewDecoder(tresp.Body).Decode(&wire); err != nil {
		t.Fatal(err)
	}
	tresp.Body.Close()

	var trace *obs.TraceSnapshot
	for i := range wire.Traces {
		if wire.Traces[i].ID == traceID {
			trace = &wire.Traces[i]
		}
	}
	if trace == nil {
		t.Fatalf("trace %s not in /v1/trace ring", traceID)
	}
	if trace.TotalMS <= 0 {
		t.Fatalf("trace %s has no total", traceID)
	}

	// The non-overlapping top-level phases of a cl request. Nested detail
	// (eval_tables, modes, bessel_tables) overlaps evolve and is excluded.
	topLevel := map[string]bool{
		"queue_wait": true, "model_acquire": true, "evolve": true,
		"source_spline": true, "project": true, "lspline": true,
		"assemble": true,
	}
	var covered float64
	for _, sp := range trace.Spans {
		if topLevel[sp.Name] {
			covered += sp.DurMS
		}
	}
	if covered < 0.95*trace.TotalMS {
		t.Fatalf("trace %s: top-level spans cover %.3f ms of %.3f ms (%.1f%%), want >= 95%%\nspans: %+v",
			traceID, covered, trace.TotalMS, 100*covered/trace.TotalMS, trace.Spans)
	}
	// Sanity on the phase names a cold cl sweep must record.
	for _, want := range []string{"evolve", "project", "model_acquire"} {
		found := false
		for _, sp := range trace.Spans {
			if sp.Name == want {
				found = true
			}
		}
		if !found {
			t.Errorf("trace %s missing span %q (spans %+v)", traceID, want, trace.Spans)
		}
	}

	// A hot repeat must not create a new trace.
	before := s.Traces(64)
	resp2, err := client.Post(srv.URL+"/v1/cl", "application/json", bytes.NewReader([]byte(`{}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if h := resp2.Header.Get("X-Plinger-Trace"); h != "" {
		t.Fatalf("cache hit carried trace header %q", h)
	}
	if after := s.Traces(64); len(after) != len(before) {
		t.Fatalf("cache hit grew the trace ring: %d -> %d", len(before), len(after))
	}
}

// TestStatsGoldenFields pins the /v1/stats wire contract: the top-level
// field set and the latency sub-object shape. Additions must extend this
// list deliberately; removals are breaking.
func TestStatsGoldenFields(t *testing.T) {
	s := testService()
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"avg_hit_ms", "avg_miss_ms", "bessel_tables", "cache", "coalesced",
		"defaults", "errors", "hits", "in_flight_keys", "latency_cl",
		"latency_pk", "misses", "models", "queue", "rejected", "requests",
		"stale", "stale_served", "sweeps", "timeouts", "traces",
		"uptime_seconds", "workers",
	}
	got := make([]string, 0, len(m))
	for k := range m {
		got = append(got, k)
	}
	sort.Strings(got)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("/v1/stats fields changed:\n got %v\nwant %v", got, want)
	}
	var lat map[string]json.RawMessage
	if err := json.Unmarshal(m["latency_cl"], &lat); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"count", "p50_ms", "p95_ms", "p99_ms", "max_ms"} {
		if _, ok := lat[k]; !ok {
			t.Errorf("latency_cl missing %q (got %v)", k, lat)
		}
	}
}

// TestLatencyQuantilesInStats checks the histogram-backed quantiles move
// once requests flow.
func TestLatencyQuantilesInStats(t *testing.T) {
	s := testService()
	defer s.Close()
	if _, _, err := s.ComputeCl(t.Context(), ClRequest{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, _, err := s.ComputeCl(t.Context(), ClRequest{}); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.LatencyCl.Count != 5 {
		t.Fatalf("latency count %d, want 5", st.LatencyCl.Count)
	}
	if st.LatencyCl.MaxMS <= 0 || st.LatencyCl.P50MS <= 0 {
		t.Fatalf("latency quantiles did not move: %+v", st.LatencyCl)
	}
	if st.LatencyCl.P50MS > st.LatencyCl.MaxMS+1e-9 {
		t.Fatalf("p50 %v above max %v", st.LatencyCl.P50MS, st.LatencyCl.MaxMS)
	}
	if st.Traces != 1 {
		t.Fatalf("traces = %d, want 1 (one cold leader)", st.Traces)
	}
}

// TestSlowRequestLog drives a request through a service whose slow-request
// threshold is one nanosecond and asserts the structured warning fires with
// the request id and sweep trace id attached.
func TestSlowRequestLog(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	lockedWriter := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	s := New(Options{
		Defaults: testDefaults(), Workers: 1, CacheSize: 8, ModelCacheSize: 2,
		MaxConcurrent: 2, MaxQueue: 32,
		Logger:      slog.New(slog.NewTextHandler(lockedWriter, nil)),
		SlowRequest: time.Nanosecond,
	})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := srv.Client().Post(srv.URL+"/v1/cl", "application/json", bytes.NewReader([]byte(`{}`)))
	if err != nil {
		t.Fatal(err)
	}
	traceID := resp.Header.Get("X-Plinger-Trace")
	resp.Body.Close()

	mu.Lock()
	logText := buf.String()
	mu.Unlock()
	if !strings.Contains(logText, `msg=request`) {
		t.Fatalf("no access log line:\n%s", logText)
	}
	if !strings.Contains(logText, `msg="slow request"`) {
		t.Fatalf("no slow-request warning:\n%s", logText)
	}
	if !strings.Contains(logText, "req=r-") {
		t.Fatalf("no request id in log:\n%s", logText)
	}
	if traceID == "" || !strings.Contains(logText, "trace="+traceID) {
		t.Fatalf("slow log missing trace id %q:\n%s", traceID, logText)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestLoadgenReport exercises RunLoadgen against a live test daemon and
// checks the histogram-backed percentiles are ordered and populated.
func TestLoadgenReport(t *testing.T) {
	s := testService()
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	rep, err := RunLoadgen(srv.URL, 4, 400*time.Millisecond, `{}`)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests < 1 {
		t.Fatalf("no requests: %+v", rep)
	}
	if rep.P50MS <= 0 || rep.P95MS < rep.P50MS || rep.P99MS < rep.P95MS || rep.MaxMS < rep.P99MS-1e-9 {
		t.Fatalf("quantiles out of order: %+v", rep)
	}
	if rep.Hits+rep.Misses+rep.Coalesced != rep.Requests {
		t.Fatalf("source split %d+%d+%d != %d",
			rep.Hits, rep.Misses, rep.Coalesced, rep.Requests)
	}
}
