package serve

import (
	"container/list"
	"sync"

	"plinger"
	"plinger/internal/farm"
)

// modelCache is the refcounted registry of built models. Building a model
// (background integrals + recombination + opacity tables) costs tens of
// milliseconds and each model carries a long-lived shared dispatch pool, so
// the daemon keeps a bounded LRU of them keyed by quantized cosmology.
// Builds are coalesced like spectrum requests. Eviction is refcounted: a
// model's pool is only closed once the last in-flight request using it has
// released it, so eviction can never yank a pool out from under a sweep.
type modelCache struct {
	capacity int
	workers  int              // shared-pool size per model
	farm     *farm.Supervisor // non-nil: sweeps route over the fleet instead

	mu sync.Mutex
	m  map[string]*modelEntry
	ll *list.List // front = most recent; holds *modelEntry

	builds    uint64
	evictions uint64
}

type modelEntry struct {
	key   string
	elem  *list.Element
	ready chan struct{} // closed when built (or failed)

	model *plinger.Model
	err   error

	refs    int
	evicted bool
}

func newModelCache(capacity, workers int, f *farm.Supervisor) *modelCache {
	if capacity < 1 {
		capacity = 1
	}
	return &modelCache{
		capacity: capacity,
		workers:  workers,
		farm:     f,
		m:        make(map[string]*modelEntry),
		ll:       list.New(),
	}
}

// acquire returns the model for cfg (building it on first use) and a
// release function the caller must invoke when done with it.
func (c *modelCache) acquire(cfg plinger.Config) (*plinger.Model, func(), error) {
	key := modelKey(cfg)

	c.mu.Lock()
	if e, ok := c.m[key]; ok {
		e.refs++
		c.ll.MoveToFront(e.elem)
		c.mu.Unlock()
		<-e.ready
		if e.err != nil {
			c.release(e)
			return nil, nil, e.err
		}
		return e.model, func() { c.release(e) }, nil
	}
	e := &modelEntry{key: key, ready: make(chan struct{}), refs: 1}
	e.elem = c.ll.PushFront(e)
	c.m[key] = e
	c.builds++
	c.evictOverflowLocked()
	c.mu.Unlock()

	m, err := plinger.New(cfg)
	if err == nil {
		if c.farm != nil {
			// The fleet is shared across all models; workers build and cache
			// their own replica from the sweep's model specification.
			m.EnableFarm(c.farm)
		} else {
			m.EnableSharedPool(c.workers)
		}
	}
	e.model, e.err = m, err
	close(e.ready)
	if err != nil {
		c.mu.Lock()
		c.dropLocked(e)
		c.mu.Unlock()
		c.release(e)
		return nil, nil, err
	}
	return m, func() { c.release(e) }, nil
}

// release decrements the refcount and closes the pool of an evicted entry
// once nobody is using it.
func (c *modelCache) release(e *modelEntry) {
	c.mu.Lock()
	e.refs--
	closeNow := e.evicted && e.refs == 0 && e.model != nil
	c.mu.Unlock()
	if closeNow {
		e.model.CloseSharedPool()
	}
}

// dropLocked removes a (failed) entry from the index so the next request
// retries the build.
func (c *modelCache) dropLocked(e *modelEntry) {
	if !e.evicted {
		e.evicted = true
		c.ll.Remove(e.elem)
		delete(c.m, e.key)
	}
}

// evictOverflowLocked trims the LRU tail beyond capacity.
func (c *modelCache) evictOverflowLocked() {
	for c.ll.Len() > c.capacity {
		last := c.ll.Back()
		e := last.Value.(*modelEntry)
		e.evicted = true
		c.ll.Remove(last)
		delete(c.m, e.key)
		c.evictions++
		if e.refs == 0 && e.model != nil {
			e.model.CloseSharedPool()
		}
	}
}

// close evicts everything; called on service shutdown.
func (c *modelCache) close() {
	c.mu.Lock()
	var idle []*plinger.Model
	for _, e := range c.m {
		e.evicted = true
		if e.refs == 0 && e.model != nil {
			idle = append(idle, e.model)
		}
	}
	c.m = make(map[string]*modelEntry)
	c.ll.Init()
	c.mu.Unlock()
	for _, m := range idle {
		m.CloseSharedPool()
	}
}

// ModelStats is the /v1/stats view of the model registry.
type ModelStats struct {
	Size      int    `json:"size"`
	Capacity  int    `json:"capacity"`
	Builds    uint64 `json:"builds"`
	Evictions uint64 `json:"evictions"`
}

func (c *modelCache) Stats() ModelStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ModelStats{Size: c.ll.Len(), Capacity: c.capacity, Builds: c.builds, Evictions: c.evictions}
}
