package serve

import (
	"container/list"
	"sync"
)

// lru is a small mutex-guarded LRU over computed responses. Values are
// treated as immutable once inserted (handlers serialize them concurrently),
// and the counters feed /v1/stats.
type lru struct {
	mu        sync.Mutex
	capacity  int
	ll        *list.List // front = most recent
	m         map[string]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
}

type lruEntry struct {
	key string
	val any
}

func newLRU(capacity int) *lru {
	if capacity < 1 {
		capacity = 1
	}
	return &lru{capacity: capacity, ll: list.New(), m: make(map[string]*list.Element)}
}

// Get returns the cached value and promotes it.
func (c *lru) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[key]; ok {
		c.ll.MoveToFront(e)
		c.hits++
		return e.Value.(*lruEntry).val, true
	}
	c.misses++
	return nil, false
}

// Add inserts (or refreshes) a value, evicting the least recent entry when
// over capacity.
func (c *lru) Add(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[key]; ok {
		e.Value.(*lruEntry).val = val
		c.ll.MoveToFront(e)
		return
	}
	c.m[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	for c.ll.Len() > c.capacity {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.m, last.Value.(*lruEntry).key)
		c.evictions++
	}
}

// CacheStats is the /v1/stats view of one cache.
type CacheStats struct {
	Size      int    `json:"size"`
	Capacity  int    `json:"capacity"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

func (c *lru) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Size: c.ll.Len(), Capacity: c.capacity,
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
	}
}
