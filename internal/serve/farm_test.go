package serve

// Service-over-farm integration: the daemon's serving layer computing its
// spectra across out-of-process workers must answer exactly what the
// in-process pool answers, and /v1/stats must carry the fleet roster.

import (
	"context"
	"net"
	"reflect"
	"testing"
	"time"

	"plinger/internal/core"
	"plinger/internal/farm"
)

// testFarm starts a supervisor with n in-process workers serving on
// goroutines (no child processes: this pins the serve wiring, not the
// process supervision, which internal/farm's chaos suite covers).
func testFarm(t *testing.T, n int) *farm.Supervisor {
	t.Helper()
	f, err := farm.New(farm.Options{
		MinWorkers:  n,
		WaitWorkers: 10 * time.Second,
		Heartbeat:   100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	models := farm.NewModelCache()
	for i := 0; i < n; i++ {
		conn, err := net.Dial("tcp", f.Addr())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { conn.Close() })
		go func() {
			_ = farm.ServeWorker(conn, farm.WorkerOptions{Models: models, Scratch: core.NewScratch()})
		}()
	}
	deadline := time.Now().Add(10 * time.Second)
	for f.Alive() < n && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if f.Alive() < n {
		t.Fatalf("only %d of %d workers joined", f.Alive(), n)
	}
	return f
}

func TestServiceOverFarmMatchesPool(t *testing.T) {
	fleet := testFarm(t, 2)
	overFarm := New(Options{Defaults: testDefaults(), Workers: 1, Farm: fleet})
	defer overFarm.Close()
	overPool := testService()
	defer overPool.Close()
	ctx := context.Background()

	for _, req := range []ClRequest{{}, {LMaxCl: 30, QCOBEMicroK: 18}} {
		got, _, err := overFarm.ComputeCl(ctx, req)
		if err != nil {
			t.Fatalf("farm compute %+v: %v", req, err)
		}
		want, _, err := overPool.ComputeCl(ctx, req)
		if err != nil {
			t.Fatalf("pool compute %+v: %v", req, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("farm and pool responses differ for %+v", req)
		}
	}
	pkGot, _, err := overFarm.ComputePk(ctx, PkRequest{})
	if err != nil {
		t.Fatal(err)
	}
	pkWant, _, err := overPool.ComputePk(ctx, PkRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pkGot, pkWant) {
		t.Fatal("farm and pool P(k) responses differ")
	}

	st := overFarm.Stats()
	if st.Farm == nil {
		t.Fatal("farm-backed service exposes no farm stats")
	}
	if st.Farm.Alive != 2 || st.Farm.Sweeps < 1 {
		t.Fatalf("farm stats: %+v", st.Farm)
	}
	var modes int64
	for _, w := range st.Farm.Workers {
		modes += w.Modes
	}
	if modes < 1 {
		t.Fatalf("per-host stats recorded no modes: %+v", st.Farm.Workers)
	}
	if poolStats := overPool.Stats(); poolStats.Farm != nil {
		t.Fatal("pool-backed service must not expose farm stats")
	}
}
