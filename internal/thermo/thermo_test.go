package thermo

import (
	"math"
	"testing"

	"plinger/internal/cosmology"
	"plinger/internal/recomb"
)

func setup(t *testing.T) *Thermo {
	t.Helper()
	bg, err := cosmology.New(cosmology.SCDM())
	if err != nil {
		t.Fatal(err)
	}
	th, err := New(bg, recomb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return th
}

func TestOpacityScalesBeforeRecombination(t *testing.T) {
	th := setup(t)
	// While fully ionized, kappa-dot ~ a^-2.
	r := th.Opacity(1e-6) / th.Opacity(2e-6)
	if math.Abs(r-4.0) > 0.01 {
		t.Fatalf("opacity ratio %g, want 4", r)
	}
}

func TestOpacityDropsThroughRecombination(t *testing.T) {
	th := setup(t)
	before := th.Opacity(1.0 / 1300.0)
	after := th.Opacity(1.0 / 500.0)
	if after > 1e-2*before {
		t.Fatalf("opacity should collapse through recombination: %g -> %g", before, after)
	}
}

func TestOpticalDepthHugeEarlySmallLate(t *testing.T) {
	th := setup(t)
	if k := th.OpticalDepth(1e-5); k < 100 {
		t.Fatalf("optical depth at a=1e-5 is %g, want >> 1", k)
	}
	if k := th.OpticalDepth(0.5); k > 0.1 {
		t.Fatalf("optical depth at a=0.5 is %g, want << 1 (no reionization)", k)
	}
	if k := th.OpticalDepth(1.0); k != math.Exp(th.depth.Eval(th.lnAMax)) {
		_ = k // value covered above; here we only require no panic at the edge
	}
}

func TestOpticalDepthMonotone(t *testing.T) {
	th := setup(t)
	prev := math.Inf(1)
	for _, a := range []float64{1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.9} {
		k := th.OpticalDepth(a)
		if k >= prev {
			t.Fatalf("optical depth not decreasing at a=%g", a)
		}
		prev = k
	}
}

func TestVisibilityPeaksAtRecombination(t *testing.T) {
	th := setup(t)
	zRec := 1.0/th.ARec() - 1.0
	if zRec < 1000 || zRec > 1300 {
		t.Fatalf("visibility peaks at z=%g, want ~1100", zRec)
	}
	// The paper's movie ends "shortly after recombination, at conformal
	// time 250 Mpc"; the visibility peak should sit near there.
	if th.TauRec() < 200 || th.TauRec() > 320 {
		t.Fatalf("tau_rec = %g Mpc, want ~250", th.TauRec())
	}
}

func TestVisibilityNormalization(t *testing.T) {
	// integral g dtau over all time = 1 - e^-kappa(start) ~= 1.
	th := setup(t)
	bg := th.BG
	n := 4000
	lnAMin, lnAMax := math.Log(1e-8), 0.0
	dl := (lnAMax - lnAMin) / float64(n)
	sum := 0.0
	for i := 0; i <= n; i++ {
		l := lnAMin + float64(i)*dl
		a := math.Exp(l)
		w := 1.0
		if i == 0 || i == n {
			w = 0.5
		}
		// dtau = dlna / (aH)
		sum += w * th.Visibility(a) / bg.HConf(a) * dl
	}
	if math.Abs(sum-1.0) > 0.01 {
		t.Fatalf("integral g dtau = %g, want 1", sum)
	}
}

func TestVisibilityWidth(t *testing.T) {
	// The visibility function is narrow: its FWHM in conformal time is
	// a small fraction of tau_rec.
	th := setup(t)
	gMax := th.Visibility(th.ARec())
	// Scan for half-maximum crossings in a.
	var aLo, aHi float64
	for z := 2000.0; z > 600; z-- {
		a := 1.0 / (1.0 + z)
		if aLo == 0 && th.Visibility(a) > gMax/2 {
			aLo = a
		}
		if aLo != 0 && aHi == 0 && th.Visibility(a) > gMax/2 {
			aHi = a // keeps updating until it drops again
		}
		if th.Visibility(a) > gMax/2 {
			aHi = a
		}
	}
	dTau := th.BG.Tau(aHi) - th.BG.Tau(aLo)
	if dTau <= 0 || dTau > 0.5*th.TauRec() {
		t.Fatalf("visibility FWHM = %g Mpc vs tau_rec %g", dTau, th.TauRec())
	}
}

func TestSoundSpeedTightCouplingValue(t *testing.T) {
	th := setup(t)
	// While T_b = T_gamma and the gas is ionized H+He:
	// c_s^2 = (kT/mu m_H c^2)(1 - 1/3 dlnT/dlna) with dlnT/dlna = -1, so
	// c_s^2 = (4/3) kT/(mu m_H c^2). Check at a = 1e-5.
	a := 1e-5
	tg := th.BG.P.TCMB / a
	fHe := th.Hist.FHe
	xe := 1.0 + 2.0*fHe
	mu := (1.0 + 4.0*fHe) / (1.0 + fHe + xe)
	want := 4.0 / 3.0 * 1.380649e-23 * tg / (mu * 1.6735575e-27 * 2.99792458e8 * 2.99792458e8)
	got := th.Cs2(a)
	if math.Abs(got-want) > 0.02*want {
		t.Fatalf("c_s^2(1e-5) = %g, want %g", got, want)
	}
}

func TestSoundSpeedNonNegativeEverywhere(t *testing.T) {
	th := setup(t)
	for z := 0.0; z < 1e6; z = z*1.3 + 1 {
		a := 1.0 / (1.0 + z)
		if th.Cs2(a) < 0 {
			t.Fatalf("negative c_s^2 at z=%g", z)
		}
	}
}

func TestSoundSpeedDropsAfterDecoupling(t *testing.T) {
	th := setup(t)
	// After thermal decoupling T_b ~ a^-2 so c_s^2 falls faster than the
	// tightly-coupled a^-1 scaling.
	early := th.Cs2(1.0/1101.0) * (1.0 / 1101.0)
	late := th.Cs2(1.0/31.0) * (1.0 / 31.0)
	if late > early {
		t.Fatalf("c_s^2 * a should decrease after decoupling: %g -> %g", early, late)
	}
}

func TestClampOutsideTable(t *testing.T) {
	th := setup(t)
	// Far outside the table, values clamp to the edges without panic.
	if v := th.Opacity(1e-12); !(v > 0) {
		t.Fatalf("Opacity clamp: %g", v)
	}
	if v := th.Cs2(2.0); v < 0 {
		t.Fatalf("Cs2 clamp: %g", v)
	}
}
