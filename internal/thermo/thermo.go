// Package thermo assembles the thermodynamic history needed by the
// perturbation equations from the ionization history: the Thomson opacity
// kappa-dot = a n_e sigma_T (per unit conformal time), the optical depth and
// visibility function, and the baryon sound speed. These are tabulated once
// per model and interpolated from the per-k right-hand sides, which is where
// essentially all of LINGER's CPU time is spent.
package thermo

import (
	"fmt"
	"math"

	"plinger/internal/constants"
	"plinger/internal/cosmology"
	"plinger/internal/recomb"
	"plinger/internal/spline"
)

// Thermo holds the tabulated thermodynamic history for one model.
type Thermo struct {
	BG   *cosmology.Background
	Hist *recomb.History

	opac  *spline.Spline // ln(kappa-dot) vs ln a
	depth *spline.Spline // ln(optical depth) vs ln a  (kappa from a to 1)
	cs2   *spline.Spline // baryon sound speed squared vs ln a

	lnAMin, lnAMax float64
	// lnADepthMax ends the depth spline where kappa underflows (see build).
	lnADepthMax float64

	tauRec float64 // conformal time of peak visibility
	aRec   float64 // scale factor of peak visibility
}

// New computes the thermodynamic history for the background.
func New(bg *cosmology.Background, opt recomb.Options) (*Thermo, error) {
	hist, err := recomb.Compute(bg, opt)
	if err != nil {
		return nil, err
	}
	th := &Thermo{BG: bg, Hist: hist}
	if err := th.build(); err != nil {
		return nil, err
	}
	return th, nil
}

func (th *Thermo) build() error {
	h := th.Hist
	n := len(h.LnA)
	th.lnAMin, th.lnAMax = h.LnA[0], h.LnA[n-1]

	// Opacity kappa-dot(a) = x_e n_H0 sigma_T / a^2 in Mpc^-1 (n_H0 is
	// comoving, so physical n_e = x_e n_H0/a^3 and the conformal-time
	// opacity is a n_e sigma_T = x_e n_H0 sigma_T / a^2).
	lnOp := make([]float64, n)
	cs2 := make([]float64, n)
	fHe := h.FHe
	for i := 0; i < n; i++ {
		a := math.Exp(h.LnA[i])
		xe := math.Max(h.Xe[i], 1e-12)
		op := xe * h.NH0 * constants.SigmaThomsonMpc2 / (a * a)
		lnOp[i] = math.Log(op)

		// Sound speed c_s^2 = (k T_b / mu m_H c^2)(1 - (1/3) dlnT/dlna).
		var dlnT float64
		switch {
		case i == 0:
			dlnT = (math.Log(h.TBaryon[1]) - math.Log(h.TBaryon[0])) / (h.LnA[1] - h.LnA[0])
		case i == n-1:
			dlnT = (math.Log(h.TBaryon[n-1]) - math.Log(h.TBaryon[n-2])) / (h.LnA[n-1] - h.LnA[n-2])
		default:
			dlnT = (math.Log(h.TBaryon[i+1]) - math.Log(h.TBaryon[i-1])) / (h.LnA[i+1] - h.LnA[i-1])
		}
		mu := (1.0 + 4.0*fHe) / (1.0 + fHe + h.Xe[i])
		kT := constants.KBoltzmann * h.TBaryon[i]
		mc2 := mu * constants.HydrogenMassKg * constants.CLight * constants.CLight
		c := kT / mc2 * (1.0 - dlnT/3.0)
		if c < 0 {
			c = 0
		}
		cs2[i] = c
	}
	var err error
	th.opac, err = spline.New(h.LnA, lnOp)
	if err != nil {
		return err
	}
	th.cs2, err = spline.New(h.LnA, cs2)
	if err != nil {
		return err
	}

	// Optical depth kappa(a) = integral_a^1 kappa-dot dtau
	//             = integral kappa-dot/(aH) dln a, accumulated backwards.
	depth := make([]float64, n)
	f := make([]float64, n)
	for i := 0; i < n; i++ {
		a := math.Exp(h.LnA[i])
		f[i] = math.Exp(lnOp[i]) / th.BG.HConf(a)
	}
	depth[n-1] = 0
	for i := n - 2; i >= 0; i-- {
		dl := h.LnA[i+1] - h.LnA[i]
		depth[i] = depth[i+1] + 0.5*dl*(f[i]+f[i+1])
	}
	// The depth spline works in ln kappa, and kappa -> 0 at the last knot:
	// a raw ln would put a ~ -700 cliff there and the cubic would
	// oscillate by tens of e-folds across the final intervals (optical
	// depths of 1e+13 where the truth is 1e-8). End the spline at the last
	// knot with kappa > 1e-30 instead — beyond it e^-kappa is 1 to machine
	// precision for every consumer, so clamping the lookup there is exact.
	m := n - 1
	for m > 0 && depth[m] <= 1e-30 {
		m--
	}
	if m < 2 {
		return fmt.Errorf("thermo: optical depth table collapsed (%d usable knots)", m+1)
	}
	lnDepth := make([]float64, m+1)
	for i := 0; i <= m; i++ {
		lnDepth[i] = math.Log(depth[i])
	}
	th.lnADepthMax = h.LnA[m]
	th.depth, err = spline.New(h.LnA[:m+1], lnDepth)
	if err != nil {
		return err
	}

	// Peak of the visibility function g = kappa-dot e^-kappa.
	best, bestG := 0, -1.0
	for i := 0; i < n; i++ {
		g := math.Exp(lnOp[i]) * math.Exp(-depth[i])
		if g > bestG {
			bestG, best = g, i
		}
	}
	if best == 0 || best == n-1 {
		return fmt.Errorf("thermo: visibility peak at grid edge (index %d)", best)
	}
	th.aRec = math.Exp(h.LnA[best])
	th.tauRec = th.BG.Tau(th.aRec)
	return nil
}

// Opacity returns kappa-dot = a n_e sigma_T in Mpc^-1 at scale factor a.
func (th *Thermo) Opacity(a float64) float64 {
	l := clamp(math.Log(a), th.lnAMin, th.lnAMax)
	return math.Exp(th.opac.Eval(l))
}

// OpticalDepth returns the Thomson optical depth from a to the present.
func (th *Thermo) OpticalDepth(a float64) float64 {
	l := clamp(math.Log(a), th.lnAMin, th.lnADepthMax)
	return math.Exp(th.depth.Eval(l))
}

// Visibility returns g(a) = kappa-dot e^-kappa (per unit conformal time).
// The log/clamp of the abscissa is shared between the two spline lookups
// and the product is fused into a single exponential of
// ln(kappa-dot) - kappa, instead of the three transcendental round-trips
// of calling Opacity and OpticalDepth separately.
func (th *Thermo) Visibility(a float64) float64 {
	l := math.Log(a)
	_, _, _, vis := th.AtLnA(l)
	return vis
}

// AtLnA is the fused single-lookup fast path of the thermodynamic history:
// for one (unclamped) ln a it returns the opacity kappa-dot, the baryon
// sound speed squared, the optical depth kappa and the visibility
// kappa-dot e^-kappa, sharing the clamped abscissa across the spline
// evaluations and the exponentials across the outputs. The flattened
// evolution tables are built from it.
func (th *Thermo) AtLnA(lnA float64) (kd, cs2, kappa, vis float64) {
	l := clamp(lnA, th.lnAMin, th.lnAMax)
	lnOp := th.opac.Eval(l)
	kd = math.Exp(lnOp)
	cs2 = th.cs2.Eval(l)
	if cs2 < 0 {
		cs2 = 0
	}
	ld := l
	if ld > th.lnADepthMax {
		ld = th.lnADepthMax
	}
	kappa = math.Exp(th.depth.Eval(ld))
	vis = math.Exp(lnOp - kappa)
	return kd, cs2, kappa, vis
}

// Cs2 returns the baryon sound speed squared (c=1 units) at scale factor a.
func (th *Thermo) Cs2(a float64) float64 {
	l := clamp(math.Log(a), th.lnAMin, th.lnAMax)
	c := th.cs2.Eval(l)
	if c < 0 {
		return 0
	}
	return c
}

// ARec returns the scale factor of peak visibility (recombination).
func (th *Thermo) ARec() float64 { return th.aRec }

// TauRec returns the conformal time of peak visibility (Mpc).
func (th *Thermo) TauRec() float64 { return th.tauRec }

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
