package cluster

import (
	"sync"
	"time"
)

// Breaker states, exposed as the plinger_cluster_breaker_state gauge and
// the /v1/stats roster.
const (
	breakerClosed   = 0
	breakerHalfOpen = 1
	breakerOpen     = 2
)

func breakerStateName(s int) string {
	switch s {
	case breakerHalfOpen:
		return "half-open"
	case breakerOpen:
		return "open"
	default:
		return "closed"
	}
}

// breaker is a per-peer circuit breaker: `threshold` consecutive failures
// open it, and while open every allow() rejects instantly — a dead peer
// costs the fleet microseconds instead of timeouts. After `cooldown` a
// single half-open probe is admitted; its success closes the circuit, its
// failure re-opens it for another cooldown. Self-locking so callers never
// hold a membership lock across the network operation they are gating.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	failures  int // consecutive
	openUntil time.Time
	probing   bool // a half-open probe is in flight
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether an attempt may go out now. In the half-open
// window exactly one caller wins the probe slot; everyone else keeps
// failing fast until that probe settles.
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.failures < b.threshold {
		return true
	}
	if now.Before(b.openUntil) {
		return false
	}
	if b.probing {
		return false
	}
	b.probing = true
	return true
}

// success closes the circuit.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.probing = false
}

// failure records one failed attempt; the return value reports a
// closed->open transition (for logging).
func (b *breaker) failure(now time.Time) (opened bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	wasOpen := b.failures >= b.threshold
	b.probing = false
	b.failures++
	if b.failures >= b.threshold {
		b.openUntil = now.Add(b.cooldown)
	}
	return !wasOpen && b.failures >= b.threshold
}

// state is the gauge view: closed / half-open / open.
func (b *breaker) state() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case b.failures < b.threshold:
		return breakerClosed
	case time.Now().Before(b.openUntil):
		return breakerOpen
	default:
		return breakerHalfOpen
	}
}
