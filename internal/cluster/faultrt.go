package cluster

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
)

// ErrInjected is the transport error produced by scripted kill and
// partition faults — the HTTP analogue of faultmp.ErrInjected.
var ErrInjected = errors.New("cluster: injected peer fault")

// FaultOptions scripts deterministic HTTP-level faults for the chaos
// matrix, in the spirit of internal/mp/faultmp: all probabilistic
// decisions derive from Seed, and the count-triggered faults fire at
// exact request ordinals, so a fixed (options, request sequence) pair
// replays the identical disturbance every run.
type FaultOptions struct {
	// Seed drives the per-transport fault generator.
	Seed int64

	// Err5xx is the probability a request is answered with an injected
	// 503 instead of reaching the peer — an overloaded or crashing
	// replica. Exactly one generator draw per request when configured,
	// so the pattern is independent of which other faults fire.
	Err5xx float64

	// KillAfter, when > 0, makes every request after the Nth fail with
	// ErrInjected — the peer process is gone (connection refused).
	KillAfter int

	// HangAfter, when > 0, makes every request after the Nth block until
	// its context is done — a wedged peer, the failure only a per-hop
	// timeout can detect. Hang makes every request block from the start.
	HangAfter int
	Hang      bool

	// Partition marks destination hosts unreachable: requests whose URL
	// host it matches fail immediately with ErrInjected. A symmetric
	// network partition is two transports whose Partition functions
	// point at each other's side.
	Partition func(host string) bool

	// Match limits the faults to matching requests (nil: all). Lets a
	// test break the forward path while leaving back-fill offers or
	// heartbeats clean.
	Match func(req *http.Request) bool
}

// FaultStats counts the faults actually injected, for test assertions.
type FaultStats struct {
	Requests    int
	Killed      int
	Hung        int
	Errored5xx  int
	Partitioned int
}

// FaultTransport wraps an http.RoundTripper with scripted fault
// injection. Safe for concurrent use.
type FaultTransport struct {
	base http.RoundTripper
	opts FaultOptions

	mu    sync.Mutex
	rng   *rand.Rand
	n     int
	stats FaultStats
}

// NewFaultTransport scripts opts around base (nil base:
// http.DefaultTransport).
func NewFaultTransport(base http.RoundTripper, opts FaultOptions) *FaultTransport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &FaultTransport{base: base, opts: opts, rng: rand.New(rand.NewSource(opts.Seed))}
}

// Stats snapshots the injected-fault counters.
func (t *FaultTransport) Stats() FaultStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// RoundTrip applies the scripted faults in a fixed order — partition,
// kill, hang, 5xx — then forwards to the wrapped transport.
func (t *FaultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.opts.Match != nil && !t.opts.Match(req) {
		return t.base.RoundTrip(req)
	}
	t.mu.Lock()
	t.n++
	t.stats.Requests++
	n := t.n
	partitioned := t.opts.Partition != nil && t.opts.Partition(req.URL.Host)
	killed := t.opts.KillAfter > 0 && n > t.opts.KillAfter
	hung := t.opts.Hang || (t.opts.HangAfter > 0 && n > t.opts.HangAfter)
	// One draw per request whenever the probabilistic class is configured,
	// regardless of whether an earlier fault preempts it — the faultmp
	// discipline that keeps the sequence deterministic.
	err5 := false
	if t.opts.Err5xx > 0 {
		err5 = t.rng.Float64() < t.opts.Err5xx
	}
	switch {
	case partitioned:
		t.stats.Partitioned++
	case killed:
		t.stats.Killed++
	case hung:
		t.stats.Hung++
	case err5:
		t.stats.Errored5xx++
	}
	t.mu.Unlock()

	switch {
	case partitioned:
		return nil, fmt.Errorf("%w: partitioned from %s", ErrInjected, req.URL.Host)
	case killed:
		return nil, fmt.Errorf("%w: peer killed", ErrInjected)
	case hung:
		<-req.Context().Done()
		return nil, req.Context().Err()
	case err5:
		return &http.Response{
			StatusCode: http.StatusServiceUnavailable,
			Status:     "503 injected",
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:  make(http.Header),
			Body:    io.NopCloser(strings.NewReader(`{"error":"injected 503"}`)),
			Request: req,
		}, nil
	}
	return t.base.RoundTrip(req)
}
