package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func doGet(t *testing.T, c *http.Client, url string) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c.Do(req)
}

// The same seed must replay the same 5xx pattern — that is what makes the
// chaos matrix reproducible.
func TestFaultTransportDeterministic5xx(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	pattern := func() []int {
		ft := NewFaultTransport(nil, FaultOptions{Seed: 7, Err5xx: 0.4})
		c := &http.Client{Transport: ft}
		var codes []int
		for i := 0; i < 40; i++ {
			resp, err := doGet(t, c, srv.URL)
			if err != nil {
				t.Fatalf("request %d: %v", i, err)
			}
			resp.Body.Close()
			codes = append(codes, resp.StatusCode)
		}
		if st := ft.Stats(); st.Errored5xx == 0 || st.Errored5xx == st.Requests {
			t.Fatalf("degenerate 5xx pattern: %+v", st)
		}
		return codes
	}
	a, b := pattern(), pattern()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d: run A got %d, run B got %d — not deterministic", i, a[i], b[i])
		}
	}
}

func TestFaultTransportKillAfter(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()
	ft := NewFaultTransport(nil, FaultOptions{KillAfter: 2})
	c := &http.Client{Transport: ft}
	for i := 1; i <= 2; i++ {
		resp, err := doGet(t, c, srv.URL)
		if err != nil {
			t.Fatalf("request %d before the kill failed: %v", i, err)
		}
		resp.Body.Close()
	}
	for i := 3; i <= 5; i++ {
		if _, err := doGet(t, c, srv.URL); err == nil || !strings.Contains(err.Error(), ErrInjected.Error()) {
			t.Fatalf("request %d after the kill: err=%v, want injected", i, err)
		}
	}
	if st := ft.Stats(); st.Killed != 3 {
		t.Fatalf("killed=%d, want 3", st.Killed)
	}
}

// A hung transport must release the caller the moment its context is done
// — the per-hop timeout is the only defense against a wedged peer.
func TestFaultTransportHangHonorsContext(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()
	ft := NewFaultTransport(nil, FaultOptions{Hang: true})
	c := &http.Client{Transport: ft}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	start := time.Now()
	_, err := c.Do(req)
	if err == nil {
		t.Fatal("hung request succeeded")
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("hung request took %s to release after context expiry", el)
	}
}

func TestFaultTransportPartitionAndMatch(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()
	host := strings.TrimPrefix(srv.URL, "http://")
	ft := NewFaultTransport(nil, FaultOptions{
		Partition: func(h string) bool { return h == host },
		Match:     func(req *http.Request) bool { return strings.HasSuffix(req.URL.Path, "/blocked") },
	})
	c := &http.Client{Transport: ft}
	if _, err := doGet(t, c, srv.URL+"/blocked"); err == nil {
		t.Fatal("partitioned matching request got through")
	}
	resp, err := doGet(t, c, srv.URL+"/open")
	if err != nil {
		t.Fatalf("non-matching request faulted: %v", err)
	}
	resp.Body.Close()
	st := ft.Stats()
	if st.Partitioned != 1 || st.Requests != 1 {
		t.Fatalf("stats %+v: Match should exempt non-matching requests entirely", st)
	}
}
