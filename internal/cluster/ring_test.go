package cluster

import (
	"fmt"
	"testing"
)

func fleet(n int) []string {
	m := make([]string, n)
	for i := range m {
		m[i] = fmt.Sprintf("http://10.0.0.%d:8787", i+1)
	}
	return m
}

func keys(n int) []string {
	ks := make([]string, n)
	for i := range ks {
		// The shape of real cache keys: kind prefix + hex hash.
		ks[i] = fmt.Sprintf("cl-%016x", i*2654435761)
	}
	return ks
}

// Ownership is a pure function of (key, membership): stable across calls
// and independent of member order.
func TestRendezvousDeterministic(t *testing.T) {
	members := fleet(4)
	shuffled := []string{members[2], members[0], members[3], members[1]}
	for _, k := range keys(50) {
		a := rendezvousOwner(k, members)
		b := rendezvousOwner(k, shuffled)
		if a != b {
			t.Fatalf("owner of %s depends on member order: %s vs %s", k, a, b)
		}
		if a != rendezvousOwner(k, members) {
			t.Fatalf("owner of %s unstable across calls", k)
		}
	}
	if got := rendezvousOwner("cl-abc", members[:1]); got != members[0] {
		t.Fatalf("single-member ring owner %s", got)
	}
}

// Rendezvous balances without virtual nodes: over many keys every member
// owns a reasonable share (within a factor ~2 of fair at these counts).
func TestRendezvousBalance(t *testing.T) {
	members := fleet(4)
	counts := make(map[string]int)
	ks := keys(4000)
	for _, k := range ks {
		counts[rendezvousOwner(k, members)]++
	}
	fair := len(ks) / len(members)
	for _, m := range members {
		if c := counts[m]; c < fair/2 || c > 2*fair {
			t.Fatalf("member %s owns %d of %d keys (fair %d): unbalanced", m, c, len(ks), fair)
		}
	}
}

// Minimal disruption — the property the failure detector leans on: when a
// member leaves, only the keys it owned change owner; when it rejoins,
// exactly the original map comes back.
func TestRendezvousMinimalDisruption(t *testing.T) {
	members := fleet(4)
	gone := members[1]
	reduced := append(append([]string(nil), members[:1]...), members[2:]...)
	moved := 0
	for _, k := range keys(2000) {
		before := rendezvousOwner(k, members)
		after := rendezvousOwner(k, reduced)
		if before != gone && after != before {
			t.Fatalf("key %s moved %s -> %s although its owner never left", k, before, after)
		}
		if before == gone {
			moved++
			if after == gone {
				t.Fatalf("key %s still owned by the departed member", k)
			}
		}
		if back := rendezvousOwner(k, members); back != before {
			t.Fatalf("key %s did not return to %s on rejoin", k, before)
		}
	}
	if moved == 0 {
		t.Fatal("departed member owned no keys: balance test should have caught this")
	}
}
