package cluster

import (
	"context"
	"net/http"
	"sync"
	"time"
)

// monitor is the heartbeat membership loop: every PingInterval it probes
// all peers concurrently and applies the miss budget. It is deliberately
// gossip-free — the static fleet list is the membership universe, the
// monitor only decides liveness *within* it, and a wrong answer is never
// a correctness problem: marking a live peer dead just means this node
// computes locally (one extra sweep); holding a dead peer alive costs one
// breaker trip. Forward successes also feed the view (see succeed), so a
// busy fleet notices rejoins faster than the probe cadence.
func (p *Peering) monitor() {
	defer p.wg.Done()
	t := time.NewTicker(p.opts.PingInterval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
		}
		var wg sync.WaitGroup
		for _, addr := range p.peerAddrs() {
			wg.Add(1)
			go func(addr string) {
				defer wg.Done()
				p.probe(addr)
			}(addr)
		}
		wg.Wait()
	}
}

// peerAddrs snapshots the full membership universe (alive or not — dead
// peers keep being probed so they can rejoin).
func (p *Peering) peerAddrs() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return append([]string(nil), p.order...)
}

// probe sends one heartbeat (GET /v1/peer/ping) and applies the result to
// the membership view: any success revives the peer immediately, the miss
// budget must be exhausted consecutively before it is declared dead.
func (p *Peering) probe(addr string) {
	p.probes.Inc()
	ctx, cancel := context.WithTimeout(context.Background(), p.opts.PingTimeout)
	defer cancel()
	ok := false
	if req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/v1/peer/ping", nil); err == nil {
		if resp, err := p.client.Do(req); err == nil {
			resp.Body.Close()
			ok = resp.StatusCode == http.StatusOK
		}
	}
	if !ok {
		p.probeMisses.Inc()
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	pr := p.peers[addr]
	if pr == nil {
		return
	}
	if ok {
		if !pr.alive {
			p.rejoins.Inc()
			p.opts.Logf("cluster: peer %s rejoined (heartbeat answered)", addr)
		}
		pr.alive = true
		pr.misses = 0
		pr.lastSeen = time.Now()
		return
	}
	pr.misses++
	if pr.alive && pr.misses >= p.opts.PingMisses {
		pr.alive = false
		p.opts.Logf("cluster: peer %s dead (%d consecutive heartbeat misses)", addr, pr.misses)
	}
}
