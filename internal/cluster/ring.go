package cluster

import (
	"crypto/sha256"
	"encoding/binary"
)

// rendezvousOwner maps a cache key to one member via highest-random-weight
// (rendezvous) hashing: every member scores hash(member, key) and the
// highest score owns the key.
//
// Why rendezvous rather than a consistent-hash ring with virtual nodes:
// the fleet here is a handful of replicas, and rendezvous gives exactly
// the two properties the sharded cache needs with zero tuning — (1) the
// key space splits essentially evenly at any member count (a vnode ring
// needs hundreds of virtual nodes per member to approximate this), and
// (2) minimal disruption: when a member leaves, only the keys whose
// argmax it was move (to their second-highest scorer); every other key
// keeps its owner, so failure detection never stampedes warm keys onto
// new owners. Its O(members) cost per lookup is irrelevant at fleet
// sizes — one SHA-256 per member against a ~92 ms cold sweep.
//
// The hash input is the member's normalized address joined to the
// wire-stable cache key (internal/serve/keys.go), so every replica — and
// every restart — derives the same ownership map from the same fleet
// list. Ties (astronomically unlikely with 64-bit scores) break toward
// the lexicographically largest address, keeping the map total.
func rendezvousOwner(key string, members []string) string {
	var (
		best  string
		score uint64
		first = true
	)
	for _, m := range members {
		s := rendezvousScore(m, key)
		if first || s > score || (s == score && m > best) {
			best, score, first = m, s, false
		}
	}
	return best
}

// rendezvousScore is the member's weight for the key: the first 8 bytes
// of SHA-256(member NUL key). SHA-256 keeps the score independent and
// wire-stable across architectures and Go versions (no seeded runtime
// hash), matching the discipline of the cache keys themselves.
func rendezvousScore(member, key string) uint64 {
	h := sha256.New()
	h.Write([]byte(member))
	h.Write([]byte{0})
	h.Write([]byte(key))
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return binary.BigEndian.Uint64(sum[:8])
}
