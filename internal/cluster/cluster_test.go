package cluster

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// testPeering builds a Peering around one httptest peer with fast,
// monitor-free settings; tests that want heartbeats override PingInterval.
func testPeering(t *testing.T, peerURL string, mutate func(*Options)) *Peering {
	t.Helper()
	opts := Options{
		Self:         "http://self.test:1",
		Peers:        []string{peerURL},
		HopTimeout:   500 * time.Millisecond,
		Backoff:      time.Millisecond,
		PingInterval: -1,
	}
	if mutate != nil {
		mutate(&opts)
	}
	p, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func TestNewNormalizesAndFiltersSelf(t *testing.T) {
	p, err := New(Options{
		Self:         "HTTP://self.test:1/",
		Peers:        []string{"self.test:1", "peer-a:2/", "http://peer-a:2", "peer-b:3"},
		PingInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	want := []string{"http://peer-a:2", "http://peer-b:3", "http://self.test:1"}
	got := p.Members()
	if len(got) != len(want) {
		t.Fatalf("members %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("members %v, want %v", got, want)
		}
	}
	if _, err := New(Options{Self: "self:1", Peers: []string{"ftp://peer:2"}}); err == nil {
		t.Fatal("ftp peer address accepted")
	}
	if _, err := New(Options{Peers: []string{"peer:2"}}); err == nil {
		t.Fatal("missing self accepted with non-empty peer list")
	}
}

// A transient 5xx is retried within the same Fetch and the caller never
// sees the blip.
func TestFetchRetriesTransient5xx(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			http.Error(w, "transient", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	defer srv.Close()
	p := testPeering(t, srv.URL, nil)
	b, err := p.Fetch(context.Background(), srv.URL, "/v1/peer/cl", []byte(`{}`))
	if err != nil {
		t.Fatalf("fetch after transient 503: %v", err)
	}
	if string(b) != `{"ok":true}`+"\n" && string(b) != `{"ok":true}` {
		t.Fatalf("body %q", b)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("peer saw %d calls, want 2 (original + one retry)", n)
	}
}

// 4xx means protocol disagreement, not a sick peer: no retry.
func TestFetchDoesNotRetry4xx(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "bad request", http.StatusBadRequest)
	}))
	defer srv.Close()
	p := testPeering(t, srv.URL, nil)
	if _, err := p.Fetch(context.Background(), srv.URL, "/v1/peer/cl", nil); err == nil {
		t.Fatal("fetch of a 400 succeeded")
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("peer saw %d calls, want 1 (4xx is non-retriable)", n)
	}
}

// Once the breaker opens, fetches fail in microseconds with ErrPeerDown
// instead of burning a timeout per request — the heart of degrade-to-local.
func TestBreakerOpensThenFailsFast(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()
	p := testPeering(t, srv.URL, func(o *Options) {
		o.Retries = -1 // isolate: one attempt per Fetch
		o.BreakerThreshold = 3
		o.BreakerCooldown = time.Hour
	})
	for i := 0; i < 3; i++ {
		if _, err := p.Fetch(context.Background(), srv.URL, "/x", nil); err == nil {
			t.Fatalf("fetch %d of a 500 succeeded", i)
		}
	}
	start := time.Now()
	_, err := p.Fetch(context.Background(), srv.URL, "/x", nil)
	if !errors.Is(err, ErrPeerDown) {
		t.Fatalf("err=%v, want ErrPeerDown from the open breaker", err)
	}
	if el := time.Since(start); el > 100*time.Millisecond {
		t.Fatalf("open-breaker fetch took %s, want instant", el)
	}
	if st := p.Status(); st.Peers[0].Breaker != "open" {
		t.Fatalf("breaker state %q, want open", st.Peers[0].Breaker)
	}
}

// The heartbeat monitor demotes a killed peer off the ring (ownership
// re-shards to the survivors) and re-admits it when it answers again.
func TestMembershipDeathAndRejoin(t *testing.T) {
	var down atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			http.Error(w, "dying", http.StatusInternalServerError)
			return
		}
		w.Write([]byte("pong"))
	}))
	defer srv.Close()
	p := testPeering(t, srv.URL, func(o *Options) {
		o.PingInterval = 10 * time.Millisecond
		o.PingTimeout = 100 * time.Millisecond
		o.PingMisses = 2
	})
	if !p.Alive(srv.URL) {
		t.Fatal("peer not optimistically alive at start")
	}
	down.Store(true)
	deadline := time.Now().Add(5 * time.Second)
	for p.Alive(srv.URL) {
		if time.Now().After(deadline) {
			t.Fatal("monitor never declared the failing peer dead")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if owner, remote := p.Owner("cl-deadbeef"); remote {
		t.Fatalf("key still owned by dead peer %s", owner)
	}
	down.Store(false)
	for !p.Alive(srv.URL) {
		if time.Now().After(deadline) {
			t.Fatal("monitor never re-admitted the recovered peer")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := p.Status(); st.Rejoins == 0 {
		t.Fatal("rejoin not counted")
	}
}

func TestOfferBestEffort(t *testing.T) {
	var gotBody atomic.Value
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b := make([]byte, r.ContentLength)
		r.Body.Read(b)
		gotBody.Store(string(b))
	}))
	defer srv.Close()
	p := testPeering(t, srv.URL, nil)
	if err := p.Offer(srv.URL, "/v1/peer/offer", []byte(`{"key":"cl-1"}`)); err != nil {
		t.Fatalf("offer: %v", err)
	}
	if got, _ := gotBody.Load().(string); !strings.Contains(got, "cl-1") {
		t.Fatalf("peer received %q", got)
	}
	if st := p.Status(); st.Backfills != 1 {
		t.Fatalf("backfills=%d, want 1", st.Backfills)
	}

	// Against an open breaker the offer is skipped, not attempted.
	srv.Close()
	for i := 0; i < 3; i++ {
		p.Fetch(context.Background(), srv.URL, "/x", nil)
	}
	if err := p.Offer(srv.URL, "/v1/peer/offer", nil); !errors.Is(err, ErrPeerDown) {
		t.Fatalf("offer to open breaker: err=%v, want ErrPeerDown", err)
	}
}

// A Fetch through a hanging peer respects the per-hop timeout — the wall
// bound (hop timeout x attempts) that the degradation contract promises.
func TestFetchHopTimeoutBoundsHangingPeer(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()
	ft := NewFaultTransport(nil, FaultOptions{Hang: true})
	p := testPeering(t, srv.URL, func(o *Options) {
		o.Transport = ft
		o.HopTimeout = 100 * time.Millisecond
		o.Retries = 1
	})
	start := time.Now()
	_, err := p.Fetch(context.Background(), srv.URL, "/x", nil)
	el := time.Since(start)
	if err == nil {
		t.Fatal("fetch through a hung transport succeeded")
	}
	// Two attempts x 100ms hop + ~ms backoff; generous CI margin.
	if el > 2*time.Second {
		t.Fatalf("hung fetch took %s, hop timeout not enforced", el)
	}
}
