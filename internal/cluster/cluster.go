// Package cluster shards the daemon's response cache across a fleet of
// plingerd replicas: every node still computes everything (correctness
// never depends on the fleet), but each wire-stable cache key has exactly
// one *owner* in the peer ring, so the Planck-style parameter-scan
// workload pays one cold sweep per fleet instead of one per replica.
//
// The design is robustness-first — the peering layer must never make a
// request worse than single-node local compute:
//
//   - ring.go — rendezvous (highest-random-weight) hashing over the
//     membership view. Rendezvous needs no virtual-node tuning, balances
//     perfectly at small fleet sizes, and has the minimal-disruption
//     property consistent hashing is usually chosen for: when a member
//     leaves, only the keys it owned move, every other key keeps its
//     owner. Joins and leaves therefore re-shard only *ownership*, never
//     correctness — any node can compute any key.
//   - breaker.go — a per-peer circuit breaker: consecutive forward
//     failures open the circuit, a cooldown later one half-open probe may
//     try again. An open breaker fails peer fetches instantly, so a dead
//     or misbehaving owner costs microseconds, not timeouts.
//   - health.go — heartbeat membership: a monitor goroutine probes every
//     peer's /v1/peer/ping on an interval; a miss budget marks it dead
//     (excluded from the ring), a later success re-admits it. The static
//     -peers list is the membership universe; liveness within it is
//     gossip-free and needs no coordination.
//   - faultrt.go — a deterministic fault-injection http.RoundTripper in
//     the spirit of internal/mp/faultmp: scripted peer kill / hang / 5xx
//     / partition for the chaos matrix, seeded so every run replays the
//     same disturbance.
//
// The serving layer (internal/serve) consults Owner per cache miss,
// fetches remote-owned keys over the small peer HTTP protocol via Fetch
// (strict per-hop timeouts, bounded retry with jittered backoff), and on
// *any* failure — dead member, open breaker, exhausted retries — degrades
// to local compute and asynchronously back-fills the owner via Offer. The
// fleet's worst case is one peer timeout ahead of today's single-node
// behavior; its best case is a fleet-wide shared cache.
package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"plinger/internal/obs"
)

// ErrPeerDown is returned by Fetch and Offer when the target peer is not
// worth a network round-trip right now: its membership entry is dead or
// its circuit breaker is open. Callers treat it exactly like a failed
// fetch — degrade to local compute — but it costs microseconds instead of
// a timeout.
var ErrPeerDown = errors.New("cluster: peer unavailable")

// maxPeerResponse bounds how much of a peer response body Fetch will read
// (a C_l or P(k) envelope is a few kilobytes; 32 MiB is paranoia).
const maxPeerResponse = 32 << 20

// Options configures a Peering.
type Options struct {
	// Self is this node's advertised base URL — the spelling under which
	// it appears in every other replica's Peers list. Required when Peers
	// is non-empty.
	Self string
	// Peers are the other replicas' base URLs. Self is filtered out, so
	// operators can pass one identical fleet list to every node.
	Peers []string
	// Transport performs the peer HTTP requests (nil: http.DefaultTransport).
	// The chaos tests inject a deterministic FaultTransport here.
	Transport http.RoundTripper
	// HopTimeout bounds every single peer request — forward attempt, retry
	// attempt, or back-fill offer (<= 0: 2s). This is the "peer timeout" of
	// the degradation contract: a hung owner costs at most
	// HopTimeout*(1+Retries) before local compute takes over.
	HopTimeout time.Duration
	// Retries is how many extra forward attempts follow a retriable
	// failure (transport error or 5xx); 0 picks the default 1, negative
	// disables retries.
	Retries int
	// Backoff is the base of the jittered exponential backoff between
	// retry attempts (<= 0: 25ms).
	Backoff time.Duration
	// HedgeAfter is how long the serving layer lets a forward run before
	// hedging it with a local compute (0: 500ms default; negative
	// disables hedging). Exposed here so fleet configuration lives in one
	// place; the race itself happens in serve, which owns local compute.
	HedgeAfter time.Duration
	// BreakerThreshold consecutive forward failures open a peer's circuit
	// (<= 0: 3).
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit rejects instantly before
	// allowing one half-open probe (<= 0: 5s).
	BreakerCooldown time.Duration
	// PingInterval spaces the membership heartbeat probes (0: 1s;
	// negative disables the monitor — peers then stay optimistically
	// alive and only breakers gate forwarding).
	PingInterval time.Duration
	// PingTimeout bounds one heartbeat probe (<= 0: 500ms).
	PingTimeout time.Duration
	// PingMisses consecutive failed probes mark a peer dead (<= 0: 3).
	PingMisses int
	// Logf receives membership transitions and breaker trips (nil: silent).
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Transport == nil {
		o.Transport = http.DefaultTransport
	}
	if o.HopTimeout <= 0 {
		o.HopTimeout = 2 * time.Second
	}
	if o.Retries == 0 {
		o.Retries = 1
	}
	if o.Retries < 0 {
		o.Retries = 0
	}
	if o.Backoff <= 0 {
		o.Backoff = 25 * time.Millisecond
	}
	if o.HedgeAfter == 0 {
		o.HedgeAfter = 500 * time.Millisecond
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 3
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 5 * time.Second
	}
	if o.PingInterval == 0 {
		o.PingInterval = time.Second
	}
	if o.PingTimeout <= 0 {
		o.PingTimeout = 500 * time.Millisecond
	}
	if o.PingMisses <= 0 {
		o.PingMisses = 3
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// peer is one remote member of the ring. All mutable state is guarded by
// Peering.mu; the breaker carries its own lock so Fetch can consult it
// without holding the membership lock across a network call.
type peer struct {
	addr     string
	breaker  *breaker
	alive    bool
	misses   int
	lastSeen time.Time
	forwards uint64
	failures uint64
}

// Peering is one node's view of the replica fleet: the membership list,
// per-peer breakers and the forwarding client. Safe for concurrent use;
// create with New and Close when done (Close stops the heartbeat monitor).
type Peering struct {
	opts   Options
	self   string
	client *http.Client
	reg    *obs.Registry

	mu    sync.RWMutex
	peers map[string]*peer
	order []string // stable peer iteration order

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	forwards     *obs.Counter
	forwardErrs  *obs.Counter
	backfills    *obs.Counter
	backfillErrs *obs.Counter
	probes       *obs.Counter
	probeMisses  *obs.Counter
	rejoins      *obs.Counter
}

// New builds a Peering over the advertised membership. URLs are
// normalized (scheme defaulted to http, trailing slash stripped) and
// deduplicated; Self is removed from the peer list so one fleet list can
// be passed to every node verbatim.
func New(opts Options) (*Peering, error) {
	o := opts.withDefaults()
	self, err := normalizeAddr(o.Self)
	if err != nil && len(o.Peers) > 0 {
		return nil, fmt.Errorf("cluster: bad self address %q: %w", o.Self, err)
	}
	p := &Peering{
		opts:   o,
		self:   self,
		client: &http.Client{Transport: o.Transport},
		reg:    obs.NewRegistry(),
		peers:  make(map[string]*peer),
		stop:   make(chan struct{}),
	}
	for _, raw := range o.Peers {
		addr, err := normalizeAddr(raw)
		if err != nil {
			return nil, fmt.Errorf("cluster: bad peer address %q: %w", raw, err)
		}
		if addr == self {
			continue
		}
		if _, ok := p.peers[addr]; ok {
			continue
		}
		p.peers[addr] = &peer{
			addr:    addr,
			breaker: newBreaker(o.BreakerThreshold, o.BreakerCooldown),
			// Optimistically alive: the first requests after startup may
			// forward immediately; a dead peer costs one breaker trip.
			alive:    true,
			lastSeen: time.Now(),
		}
		p.order = append(p.order, addr)
	}
	sort.Strings(p.order)

	r := p.reg
	p.forwards = r.Counter("plinger_cluster_forwards_total", `result="ok"`, "peer cache fetches answered by the owner")
	p.forwardErrs = r.Counter("plinger_cluster_forwards_total", `result="error"`, "peer cache fetch attempts that failed (timeouts, 5xx, transport errors)")
	p.backfills = r.Counter("plinger_cluster_backfills_total", `result="ok"`, "locally computed responses pushed to their owning peer")
	p.backfillErrs = r.Counter("plinger_cluster_backfills_total", `result="error"`, "back-fill offers that failed or were skipped (peer down)")
	p.probes = r.Counter("plinger_cluster_probes_total", "", "membership heartbeat probes sent")
	p.probeMisses = r.Counter("plinger_cluster_probe_misses_total", "", "heartbeat probes that failed")
	p.rejoins = r.Counter("plinger_cluster_rejoins_total", "", "peers re-admitted to the ring after being marked dead")
	r.GaugeFunc("plinger_cluster_peers", `state="alive"`, "remote peers currently in the ring", func() float64 {
		return float64(len(p.alivePeers()))
	})
	r.GaugeFunc("plinger_cluster_peers", `state="dead"`, "remote peers currently excluded from the ring", func() float64 {
		p.mu.RLock()
		defer p.mu.RUnlock()
		dead := 0
		for _, pr := range p.peers {
			if !pr.alive {
				dead++
			}
		}
		return float64(dead)
	})
	for _, addr := range p.order {
		pr := p.peers[addr]
		r.GaugeFunc("plinger_cluster_breaker_state", fmt.Sprintf("peer=%q", addr),
			"per-peer circuit breaker: 0 closed, 1 half-open, 2 open",
			func() float64 { return float64(pr.breaker.state()) })
	}

	if len(p.peers) > 0 && o.PingInterval > 0 {
		p.wg.Add(1)
		go p.monitor()
	}
	return p, nil
}

// Close stops the membership monitor. It never touches in-flight fetches.
func (p *Peering) Close() {
	p.stopOnce.Do(func() { close(p.stop) })
	p.wg.Wait()
}

// Self returns the node's normalized advertised address.
func (p *Peering) Self() string { return p.self }

// Registry exposes the peering metrics for the daemon's /metrics scrape.
func (p *Peering) Registry() *obs.Registry { return p.reg }

// HedgeAfter is the configured hedge delay for the serving layer
// (non-positive: hedging disabled).
func (p *Peering) HedgeAfter() time.Duration {
	if p.opts.HedgeAfter < 0 {
		return 0
	}
	return p.opts.HedgeAfter
}

// alivePeers snapshots the remote members currently in the ring.
func (p *Peering) alivePeers() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]string, 0, len(p.order))
	for _, addr := range p.order {
		if p.peers[addr].alive {
			out = append(out, addr)
		}
	}
	return out
}

// Members returns the current ring membership: alive peers plus self,
// sorted.
func (p *Peering) Members() []string {
	m := append(p.alivePeers(), p.self)
	sort.Strings(m)
	return m
}

// Owner resolves a cache key to its owning member over the current
// membership view; remote is false when this node owns the key (or is the
// only member left). Different nodes may transiently disagree during a
// membership change — both then compute locally, which is correct, just
// one sweep more expensive.
func (p *Peering) Owner(key string) (addr string, remote bool) {
	owner := rendezvousOwner(key, p.Members())
	return owner, owner != p.self
}

// Alive reports the membership view of one peer.
func (p *Peering) Alive(addr string) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	pr, ok := p.peers[addr]
	return ok && pr.alive
}

// Fetch asks a peer for a response: POST body to addr+path with a strict
// per-hop timeout per attempt and a bounded, jitter-backed retry on
// retriable failures (transport errors and 5xx). A dead member or an open
// breaker fails instantly with ErrPeerDown. Success feeds the membership
// view (the peer is clearly alive) and the breaker; every failed attempt
// feeds the breaker.
func (p *Peering) Fetch(ctx context.Context, addr, path string, body []byte) ([]byte, error) {
	pr := p.lookup(addr)
	if pr == nil {
		return nil, fmt.Errorf("cluster: unknown peer %s", addr)
	}
	var lastErr error
	for attempt := 0; attempt <= p.opts.Retries; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(backoffDelay(p.opts.Backoff, attempt)):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		// The gate is re-checked before every attempt: a concurrent
		// failure storm may have opened the breaker, or the monitor may
		// have declared the peer dead, between attempts.
		if !p.admit(pr) {
			if lastErr != nil {
				return nil, lastErr
			}
			return nil, ErrPeerDown
		}
		b, retriable, err := p.do(ctx, addr+path, body)
		if err == nil {
			p.succeed(pr)
			p.forwards.Inc()
			return b, nil
		}
		p.fail(pr)
		p.forwardErrs.Inc()
		lastErr = err
		if !retriable {
			break
		}
	}
	return nil, lastErr
}

// Offer pushes a locally computed response to its owning peer: one
// attempt, per-hop timeout, best effort. The serving layer calls it
// asynchronously after a degraded local compute so the ring's canonical
// copy lands where future requests will look for it.
func (p *Peering) Offer(addr, path string, body []byte) error {
	pr := p.lookup(addr)
	if pr == nil {
		return fmt.Errorf("cluster: unknown peer %s", addr)
	}
	if !p.admit(pr) {
		p.backfillErrs.Inc()
		return ErrPeerDown
	}
	_, _, err := p.do(context.Background(), addr+path, body)
	if err != nil {
		p.fail(pr)
		p.backfillErrs.Inc()
		return err
	}
	p.succeed(pr)
	p.backfills.Inc()
	return nil
}

// do performs one bounded HTTP attempt. retriable distinguishes failures
// worth a backoff-retry (transport errors, 5xx — the peer may recover)
// from ones that will not improve (4xx: protocol or version skew).
func (p *Peering) do(ctx context.Context, url string, body []byte) (b []byte, retriable bool, err error) {
	hctx, cancel := context.WithTimeout(ctx, p.opts.HopTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(hctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, true, err
	}
	defer resp.Body.Close()
	b, err = io.ReadAll(io.LimitReader(resp.Body, maxPeerResponse))
	if err != nil {
		return nil, true, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, resp.StatusCode >= 500, fmt.Errorf("cluster: %s: status %d", url, resp.StatusCode)
	}
	return b, false, nil
}

// lookup finds a peer's membership entry.
func (p *Peering) lookup(addr string) *peer {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.peers[addr]
}

// admit decides whether a network attempt against the peer is worthwhile:
// the membership view must hold it alive and the breaker must allow it.
func (p *Peering) admit(pr *peer) bool {
	p.mu.RLock()
	alive := pr.alive
	p.mu.RUnlock()
	return alive && pr.breaker.allow(time.Now())
}

// succeed records a successful round-trip: the breaker closes and the
// membership view learns the peer is alive regardless of probe history.
func (p *Peering) succeed(pr *peer) {
	pr.breaker.success()
	p.mu.Lock()
	if !pr.alive {
		p.rejoins.Inc()
		p.opts.Logf("cluster: peer %s back (forward succeeded)", pr.addr)
	}
	pr.alive = true
	pr.misses = 0
	pr.lastSeen = time.Now()
	pr.forwards++
	p.mu.Unlock()
}

// fail records a failed attempt against the breaker and the roster.
func (p *Peering) fail(pr *peer) {
	opened := pr.breaker.failure(time.Now())
	p.mu.Lock()
	pr.failures++
	p.mu.Unlock()
	if opened {
		p.opts.Logf("cluster: breaker open for peer %s (cooldown %s)", pr.addr, p.opts.BreakerCooldown)
	}
}

// normalizeAddr canonicalizes a member URL: scheme defaulted to http://,
// trailing slashes stripped, host required. The normalized string is the
// member's ring identity, so every node must spell the fleet identically
// up to these cosmetics.
func normalizeAddr(raw string) (string, error) {
	s := strings.TrimSpace(raw)
	if s == "" {
		return "", errors.New("empty address")
	}
	if !strings.Contains(s, "://") {
		s = "http://" + s
	}
	u, err := url.Parse(s)
	if err != nil {
		return "", err
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("unsupported scheme %q", u.Scheme)
	}
	if u.Host == "" {
		return "", errors.New("missing host")
	}
	u.Path = strings.TrimRight(u.Path, "/")
	u.RawQuery, u.Fragment = "", ""
	return u.String(), nil
}

// backoffDelay is the jittered exponential backoff before retry attempt
// n (n >= 1): base*2^(n-1) capped at one second, drawn uniformly from
// [half, full) so synchronized retry storms decorrelate.
func backoffDelay(base time.Duration, attempt int) time.Duration {
	d := base << (attempt - 1)
	if d > time.Second {
		d = time.Second
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// PeerStatus is one roster row of Status.
type PeerStatus struct {
	Addr  string `json:"addr"`
	Alive bool   `json:"alive"`
	// Breaker is "closed", "half-open" or "open".
	Breaker string `json:"breaker"`
	// Forwards and Failures count this node's round-trips against the peer.
	Forwards uint64 `json:"forwards"`
	Failures uint64 `json:"failures"`
	// LastSeenAgoS is how long ago the peer last answered anything.
	LastSeenAgoS float64 `json:"last_seen_ago_s"`
}

// Status is the /v1/stats view of the peering layer.
type Status struct {
	Self string `json:"self"`
	// Members is the current ring size (alive peers plus self).
	Members       int          `json:"members"`
	Peers         []PeerStatus `json:"peers"`
	Forwards      uint64       `json:"forwards"`
	ForwardErrors uint64       `json:"forward_errors"`
	Backfills     uint64       `json:"backfills"`
	BackfillErrs  uint64       `json:"backfill_errors"`
	Probes        uint64       `json:"probes"`
	ProbeMisses   uint64       `json:"probe_misses"`
	Rejoins       uint64       `json:"rejoins"`
}

// Status snapshots the roster and the peering counters.
func (p *Peering) Status() Status {
	st := Status{
		Self:          p.self,
		Members:       len(p.Members()),
		Forwards:      p.forwards.Value(),
		ForwardErrors: p.forwardErrs.Value(),
		Backfills:     p.backfills.Value(),
		BackfillErrs:  p.backfillErrs.Value(),
		Probes:        p.probes.Value(),
		ProbeMisses:   p.probeMisses.Value(),
		Rejoins:       p.rejoins.Value(),
	}
	now := time.Now()
	p.mu.RLock()
	defer p.mu.RUnlock()
	for _, addr := range p.order {
		pr := p.peers[addr]
		st.Peers = append(st.Peers, PeerStatus{
			Addr:         pr.addr,
			Alive:        pr.alive,
			Breaker:      breakerStateName(pr.breaker.state()),
			Forwards:     pr.forwards,
			Failures:     pr.failures,
			LastSeenAgoS: now.Sub(pr.lastSeen).Seconds(),
		})
	}
	return st
}
