package cluster

import (
	"testing"
	"time"
)

func TestBreakerOpensAndRecovers(t *testing.T) {
	now := time.Now()
	b := newBreaker(3, time.Minute)
	for i := 0; i < 3; i++ {
		if !b.allow(now) {
			t.Fatalf("closed breaker rejected attempt %d", i)
		}
		opened := b.failure(now)
		if want := i == 2; opened != want {
			t.Fatalf("failure %d: opened=%v, want %v", i, opened, want)
		}
	}
	if b.state() != breakerOpen {
		t.Fatalf("state %d after threshold failures, want open", b.state())
	}
	if b.allow(now.Add(time.Second)) {
		t.Fatal("open breaker admitted a request inside the cooldown")
	}

	// Cooldown over: exactly one half-open probe wins; a second concurrent
	// caller keeps failing fast until the probe settles.
	after := now.Add(2 * time.Minute)
	if !b.allow(after) {
		t.Fatal("half-open breaker rejected the probe")
	}
	if b.allow(after) {
		t.Fatal("two concurrent half-open probes admitted")
	}
	b.success()
	if b.state() != breakerClosed {
		t.Fatal("probe success did not close the breaker")
	}
	if !b.allow(after) {
		t.Fatal("closed breaker rejecting after recovery")
	}

	// A failed probe re-opens for another full cooldown.
	for i := 0; i < 3; i++ {
		b.failure(after)
	}
	probeAt := after.Add(2 * time.Minute)
	if !b.allow(probeAt) {
		t.Fatal("second half-open probe rejected")
	}
	b.failure(probeAt)
	if b.allow(probeAt.Add(30 * time.Second)) {
		t.Fatal("failed probe did not re-open the breaker")
	}
}

func TestBreakerSuccessResetsConsecutiveCount(t *testing.T) {
	b := newBreaker(3, time.Minute)
	now := time.Now()
	b.failure(now)
	b.failure(now)
	b.success()
	b.failure(now)
	b.failure(now)
	if b.state() != breakerClosed {
		t.Fatal("non-consecutive failures opened the breaker")
	}
}
