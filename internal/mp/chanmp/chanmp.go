// Package chanmp is the in-process transport: every "node" is a goroutine
// and message delivery is a direct push into the destination's mailbox.
// It is the shared-memory analogue of running MPI on one SMP node and the
// default transport for the scaling benchmarks (Figure 1).
package chanmp

import (
	"fmt"
	"sync/atomic"
	"time"

	"plinger/internal/mp"
)

// World is a set of connected in-process endpoints.
type World struct {
	eps   []*endpoint
	bytes atomic.Int64 // payload bytes moved, for the message-size table
}

type endpoint struct {
	w    *World
	rank int
	q    *mp.Queue
}

// New creates a world of n endpoints; rank 0 is the master.
func New(n int) (*World, []mp.Endpoint, error) {
	if n < 1 {
		return nil, nil, fmt.Errorf("chanmp: need at least one process, got %d", n)
	}
	w := &World{eps: make([]*endpoint, n)}
	out := make([]mp.Endpoint, n)
	for i := 0; i < n; i++ {
		w.eps[i] = &endpoint{w: w, rank: i, q: mp.NewQueue()}
		out[i] = w.eps[i]
	}
	return w, out, nil
}

// BytesMoved returns the cumulative payload bytes delivered, reproducing
// the paper's message-size accounting (150 bytes to 80 kbyte per k mode).
func (w *World) BytesMoved() int64 { return w.bytes.Load() }

func (e *endpoint) Rank() int   { return e.rank }
func (e *endpoint) Size() int   { return len(e.w.eps) }
func (e *endpoint) Master() int { return 0 }

func (e *endpoint) deliver(dst int, m mp.Message) error {
	if dst < 0 || dst >= len(e.w.eps) {
		return fmt.Errorf("chanmp: destination %d out of range [0,%d)", dst, len(e.w.eps))
	}
	// Copy the payload: the paper's semantics are by-value buffers.
	cp := m
	cp.Data = append([]float64(nil), m.Data...)
	e.w.bytes.Add(int64(8 * len(m.Data)))
	return e.w.eps[dst].q.Push(cp)
}

func (e *endpoint) Bcast(tag int, data []float64) error {
	for i := range e.w.eps {
		if i == e.rank {
			continue
		}
		if err := e.deliver(i, mp.Message{Tag: tag, Source: e.rank, Data: data}); err != nil {
			return err
		}
	}
	return nil
}

func (e *endpoint) Send(dst, tag int, data []float64) error {
	return e.deliver(dst, mp.Message{Tag: tag, Source: e.rank, Data: data})
}

func (e *endpoint) Probe(tag, source int) (int, int, error) {
	return e.q.Probe(tag, source)
}

// ProbeTimeout implements mp.DeadlineProber.
func (e *endpoint) ProbeTimeout(tag, source int, d time.Duration) (int, int, bool, error) {
	return e.q.ProbeTimeout(tag, source, d)
}

func (e *endpoint) Recv(tag, source int) (mp.Message, error) {
	return e.q.Recv(tag, source)
}

func (e *endpoint) Close() error {
	e.q.Close()
	return nil
}
