// Package fifomp is the strict arrival-order transport. Section 4 of the
// paper notes: "On the SP2, MPL requires that messages be received in the
// order in which they arrive, but this does not create difficulties."
// This transport enforces exactly that restriction — probes and receives
// may only match the message at the head of the mailbox — so the test
// suite can prove the PLINGER protocol is compatible with MPL semantics.
package fifomp

import (
	"fmt"
	"sync/atomic"
	"time"

	"plinger/internal/mp"
)

// World is a set of connected strict-FIFO endpoints.
type World struct {
	eps   []*endpoint
	bytes atomic.Int64
}

type endpoint struct {
	w    *World
	rank int
	q    *mp.Queue
}

// New creates a world of n strict-FIFO endpoints; rank 0 is the master.
func New(n int) (*World, []mp.Endpoint, error) {
	if n < 1 {
		return nil, nil, fmt.Errorf("fifomp: need at least one process, got %d", n)
	}
	w := &World{eps: make([]*endpoint, n)}
	out := make([]mp.Endpoint, n)
	for i := 0; i < n; i++ {
		w.eps[i] = &endpoint{w: w, rank: i, q: mp.NewStrictFIFOQueue()}
		out[i] = w.eps[i]
	}
	return w, out, nil
}

// BytesMoved returns cumulative payload bytes delivered.
func (w *World) BytesMoved() int64 { return w.bytes.Load() }

func (e *endpoint) Rank() int   { return e.rank }
func (e *endpoint) Size() int   { return len(e.w.eps) }
func (e *endpoint) Master() int { return 0 }

func (e *endpoint) deliver(dst int, m mp.Message) error {
	if dst < 0 || dst >= len(e.w.eps) {
		return fmt.Errorf("fifomp: destination %d out of range [0,%d)", dst, len(e.w.eps))
	}
	cp := m
	cp.Data = append([]float64(nil), m.Data...)
	e.w.bytes.Add(int64(8 * len(m.Data)))
	return e.w.eps[dst].q.Push(cp)
}

func (e *endpoint) Bcast(tag int, data []float64) error {
	for i := range e.w.eps {
		if i == e.rank {
			continue
		}
		if err := e.deliver(i, mp.Message{Tag: tag, Source: e.rank, Data: data}); err != nil {
			return err
		}
	}
	return nil
}

func (e *endpoint) Send(dst, tag int, data []float64) error {
	return e.deliver(dst, mp.Message{Tag: tag, Source: e.rank, Data: data})
}

func (e *endpoint) Probe(tag, source int) (int, int, error) {
	return e.q.Probe(tag, source)
}

// ProbeTimeout implements mp.DeadlineProber; the strict-FIFO matching rule
// applies to the timed probe exactly as to the blocking one.
func (e *endpoint) ProbeTimeout(tag, source int, d time.Duration) (int, int, bool, error) {
	return e.q.ProbeTimeout(tag, source, d)
}

func (e *endpoint) Recv(tag, source int) (mp.Message, error) {
	return e.q.Recv(tag, source)
}

func (e *endpoint) Close() error {
	e.q.Close()
	return nil
}
