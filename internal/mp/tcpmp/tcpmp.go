// Package tcpmp is the distributed transport: a small rendezvous daemon
// (the Hub, playing the role of the PVM daemon) accepts one TCP connection
// per process, assigns ranks in connection order (the first connection —
// by convention the master — gets rank 0), and routes tagged frames
// between processes. Endpoints may live in one OS process (tests) or in
// many (cmd/plinger -role master|worker), which is how the paper's code ran
// across the nodes of the SP2 and the C90/T3D pairing.
package tcpmp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"plinger/internal/mp"
)

// ErrDial marks a failure in the dial phase of Connect — the only phase a
// caller may safely retry. A handshake failure is NOT retryable: the hub has
// already counted the connection toward its world size, so dialing again
// would claim a second slot.
var ErrDial = errors.New("tcpmp: dial failed")

// ErrTimeout marks an i/o deadline expiry on an endpoint: a peer that went
// silent past the configured read window, or a send that could not drain
// within the write window. It is the transport-level signature of a dead or
// wedged peer — a *liveness* failure — and deliberately distinct from
// ErrProtocol so fault ledgers can count heartbeat-style misses separately
// from corrupted traffic.
var ErrTimeout = errors.New("tcpmp: i/o deadline exceeded")

// ErrProtocol marks a frame-level protocol violation: an impossible frame
// length, a bad magic word — traffic from a peer that is alive but speaking
// garbage. Recovery policy differs from ErrTimeout (a violating peer should
// be dropped outright, never waited for), which is why the two are typed.
var ErrProtocol = errors.New("tcpmp: protocol violation")

const magic = 0x504c4e47 // "PLNG"

// maxFrameDoubles bounds a single message (16 Mi doubles = 128 MiB).
const maxFrameDoubles = 16 << 20

// hubMagicTimeout bounds how long the hub waits for a freshly accepted
// connection to present the magic word. Without it, one process that dials
// in and then wedges before writing anything holds the accept loop hostage
// and the whole rendezvous never completes — a silent connection must cost
// only its own slot, never the world's. Variable so the hardening test can
// shrink it.
var hubMagicTimeout = 5 * time.Second

// Hub is the rendezvous/routing daemon.
type Hub struct {
	ln    net.Listener
	n     int
	mu    sync.Mutex
	conns []net.Conn
	wmu   []sync.Mutex // per-connection write locks
	bytes atomic.Int64
	done  chan struct{}
	err   atomic.Value
}

// NewHub starts a hub for n processes listening on addr (use
// "127.0.0.1:0" for an ephemeral test port).
func NewHub(addr string, n int) (*Hub, error) {
	if n < 1 {
		return nil, fmt.Errorf("tcpmp: need at least one process, got %d", n)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcpmp: listen: %w", err)
	}
	h := &Hub{ln: ln, n: n, done: make(chan struct{})}
	go h.accept()
	return h, nil
}

// Addr returns the hub's listen address for workers to dial.
func (h *Hub) Addr() string { return h.ln.Addr().String() }

// BytesMoved returns the cumulative payload bytes routed.
func (h *Hub) BytesMoved() int64 { return h.bytes.Load() }

// Close shuts the hub down.
func (h *Hub) Close() error {
	select {
	case <-h.done:
	default:
		close(h.done)
	}
	err := h.ln.Close()
	h.mu.Lock()
	for _, c := range h.conns {
		if c != nil {
			c.Close()
		}
	}
	h.mu.Unlock()
	return err
}

func (h *Hub) accept() {
	conns := make([]net.Conn, 0, h.n)
	for len(conns) < h.n {
		c, err := h.ln.Accept()
		if err != nil {
			h.err.Store(err)
			return
		}
		var m uint32
		c.SetReadDeadline(time.Now().Add(hubMagicTimeout))
		if err := binary.Read(c, binary.LittleEndian, &m); err != nil || m != magic {
			c.Close()
			continue
		}
		c.SetReadDeadline(time.Time{})
		conns = append(conns, c)
	}
	h.mu.Lock()
	h.conns = conns
	h.wmu = make([]sync.Mutex, h.n)
	h.mu.Unlock()
	// Handshake: tell each process its rank and the world size. A process
	// that died between Accept and here has already claimed its slot, so the
	// write to it may fail — that costs only the dead slot: the survivors
	// still get their ranks and their route loops, and the master's
	// assignment deadlines fail the silent rank like any other casualty.
	// (Storing the error and bailing here used to kill the hub for everyone.)
	for rank, c := range conns {
		hdr := [2]int32{int32(rank), int32(h.n)}
		if err := binary.Write(c, binary.LittleEndian, hdr[:]); err != nil {
			c.Close()
			h.mu.Lock()
			h.conns[rank] = nil
			h.mu.Unlock()
		}
	}
	for rank := range conns {
		if h.connAt(rank) != nil {
			go h.route(rank)
		}
	}
}

func (h *Hub) connAt(rank int) net.Conn {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.conns[rank]
}

// route forwards frames arriving from one process to their destinations.
func (h *Hub) route(rank int) {
	src := h.connAt(rank)
	if src == nil {
		return
	}
	for {
		var hdr [3]int32 // dst, tag, n
		if err := binary.Read(src, binary.LittleEndian, hdr[:]); err != nil {
			return // EOF: process left
		}
		dst, tag, n := int(hdr[0]), int(hdr[1]), int(hdr[2])
		if n < 0 || n > maxFrameDoubles {
			return
		}
		payload := make([]byte, 8*n)
		if _, err := io.ReadFull(src, payload); err != nil {
			return
		}
		if dst < 0 || dst >= h.n {
			continue
		}
		h.bytes.Add(int64(8 * n))
		dc := h.connAt(dst)
		if dc == nil {
			continue // destination lost its slot during handshake
		}
		out := [3]int32{int32(rank), int32(tag), int32(n)}
		h.wmu[dst].Lock()
		err1 := binary.Write(dc, binary.LittleEndian, out[:])
		var err2 error
		if err1 == nil {
			_, err2 = dc.Write(payload)
		}
		h.wmu[dst].Unlock()
		if err1 != nil || err2 != nil {
			// The destination died. Drop the frame but keep routing for the
			// rest of the world — killing this loop would silence the sender
			// toward every process, turning one dead worker into a dead run.
			// The sender learns of the loss through its deadlines, like a PVM
			// task whose peer vanished.
			continue
		}
	}
}

// endpoint is one process's connection to the hub.
type endpoint struct {
	conn net.Conn
	rank int
	size int
	q    *mp.Queue
	wmu  sync.Mutex

	// readTO/writeTO are optional per-frame i/o deadlines in nanoseconds
	// (0: none). Atomics because SetIOTimeouts races with the reader
	// goroutine by construction.
	readTO  atomic.Int64
	writeTO atomic.Int64
	closed  atomic.Bool  // local Close: reader exit is expected, not a fault
	ioErr   atomic.Value // error: why the reader stopped, classified
}

// SetIOTimeouts arms per-frame deadlines on a tcpmp endpoint: each inbound
// frame must start arriving within read, each Send must drain within write
// (0 leaves that direction unbounded). Expiry surfaces as ErrTimeout —
// from Send directly, and from Err after the receive side shuts down — so a
// fault ledger can file the peer under "went silent" instead of "spoke
// garbage" (ErrProtocol). Returns false when ep is not a tcpmp endpoint.
// A read timeout only suits callers with steady traffic or heartbeats;
// an idle-by-design master link should leave read at 0.
func SetIOTimeouts(ep mp.Endpoint, read, write time.Duration) bool {
	e, ok := ep.(*endpoint)
	if !ok {
		return false
	}
	e.readTO.Store(int64(read))
	e.writeTO.Store(int64(write))
	return true
}

// Err reports why the endpoint's receive side stopped: nil while healthy or
// after a local Close, ErrTimeout-wrapped after a read-deadline expiry,
// ErrProtocol-wrapped after a malformed frame, the raw transport error
// otherwise. Returns false when ep is not a tcpmp endpoint.
func Err(ep mp.Endpoint) (error, bool) {
	e, ok := ep.(*endpoint)
	if !ok {
		return nil, false
	}
	err, _ := e.ioErr.Load().(error)
	return err, true
}

// classify maps a transport error to the typed sentinels: net timeouts
// become ErrTimeout, everything else passes through untouched.
func classify(err error) error {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return fmt.Errorf("%w: %v", ErrTimeout, err)
	}
	return err
}

// Connect joins the world at the hub address; it blocks until all
// processes have connected and returns the ranked endpoint.
func Connect(addr string) (mp.Endpoint, error) {
	return ConnectTimeout(addr, 0)
}

// ConnectTimeout is Connect with a bound on the whole rendezvous: the dial
// and the rank handshake must both finish within timeout (0: wait forever,
// the paper's behavior). The handshake only completes once every process
// has dialed in, so the bound is what lets a caller detect a worker that
// never joins instead of hanging on it.
func ConnectTimeout(addr string, timeout time.Duration) (mp.Endpoint, error) {
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrDial, addr, err)
	}
	if !deadline.IsZero() {
		if err := c.SetDeadline(deadline); err != nil {
			c.Close()
			return nil, err
		}
	}
	if err := binary.Write(c, binary.LittleEndian, uint32(magic)); err != nil {
		c.Close()
		return nil, err
	}
	var hdr [2]int32
	if err := binary.Read(c, binary.LittleEndian, hdr[:]); err != nil {
		c.Close()
		return nil, fmt.Errorf("tcpmp: handshake: %w", err)
	}
	if !deadline.IsZero() {
		if err := c.SetDeadline(time.Time{}); err != nil {
			c.Close()
			return nil, err
		}
	}
	e := &endpoint{conn: c, rank: int(hdr[0]), size: int(hdr[1]), q: mp.NewQueue()}
	go e.reader()
	return e, nil
}

func (e *endpoint) reader() {
	fail := func(err error) {
		if !e.closed.Load() {
			e.ioErr.Store(err)
		}
		e.q.Close()
	}
	for {
		if to := e.readTO.Load(); to > 0 {
			e.conn.SetReadDeadline(time.Now().Add(time.Duration(to)))
		} else {
			e.conn.SetReadDeadline(time.Time{})
		}
		var hdr [3]int32 // src, tag, n
		if err := binary.Read(e.conn, binary.LittleEndian, hdr[:]); err != nil {
			fail(classify(err))
			return
		}
		n := int(hdr[2])
		if n < 0 || n > maxFrameDoubles {
			fail(fmt.Errorf("%w: frame of %d doubles from rank %d", ErrProtocol, n, hdr[0]))
			e.conn.Close() // a violating peer is dropped, not waited out
			return
		}
		buf := make([]byte, 8*n)
		if _, err := io.ReadFull(e.conn, buf); err != nil {
			fail(classify(err))
			return
		}
		data := make([]float64, n)
		for i := 0; i < n; i++ {
			data[i] = bitsToFloat(binary.LittleEndian.Uint64(buf[8*i:]))
		}
		e.q.Push(mp.Message{Tag: int(hdr[1]), Source: int(hdr[0]), Data: data})
	}
}

func (e *endpoint) Rank() int   { return e.rank }
func (e *endpoint) Size() int   { return e.size }
func (e *endpoint) Master() int { return 0 }

func (e *endpoint) Send(dst, tag int, data []float64) error {
	e.wmu.Lock()
	defer e.wmu.Unlock()
	if to := e.writeTO.Load(); to > 0 {
		e.conn.SetWriteDeadline(time.Now().Add(time.Duration(to)))
	} else {
		e.conn.SetWriteDeadline(time.Time{})
	}
	hdr := [3]int32{int32(dst), int32(tag), int32(len(data))}
	if err := binary.Write(e.conn, binary.LittleEndian, hdr[:]); err != nil {
		return classify(err)
	}
	buf := make([]byte, 8*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint64(buf[8*i:], floatToBits(v))
	}
	_, err := e.conn.Write(buf)
	return classify(err)
}

func (e *endpoint) Bcast(tag int, data []float64) error {
	for i := 0; i < e.size; i++ {
		if i == e.rank {
			continue
		}
		if err := e.Send(i, tag, data); err != nil {
			return err
		}
	}
	return nil
}

func (e *endpoint) Probe(tag, source int) (int, int, error) {
	return e.q.Probe(tag, source)
}

// ProbeTimeout implements mp.DeadlineProber.
func (e *endpoint) ProbeTimeout(tag, source int, d time.Duration) (int, int, bool, error) {
	return e.q.ProbeTimeout(tag, source, d)
}

func (e *endpoint) Recv(tag, source int) (mp.Message, error) {
	return e.q.Recv(tag, source)
}

func (e *endpoint) Close() error {
	e.closed.Store(true)
	e.q.Close()
	return e.conn.Close()
}
