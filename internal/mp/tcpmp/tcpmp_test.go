package tcpmp

// Hardening tests for the hub rendezvous and the typed endpoint errors:
// a worker lost between Accept and handshake must cost only its own slot,
// and i/o deadline expiries must surface as ErrTimeout — distinguishable
// from ErrProtocol — so fault ledgers can separate silence from garbage.

import (
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"plinger/internal/mp"
)

// TestRendezvousSurvivesPartialHandshakeLoss kills one worker between
// Accept and the rank handshake: it dials, presents the magic word (so
// the hub counts its slot), and dies with an RST before receiving its
// rank. The two survivors must still complete the rendezvous and route
// traffic; before the hardening, the hub stored the handshake-write error
// and abandoned the whole world.
func TestRendezvousSurvivesPartialHandshakeLoss(t *testing.T) {
	hub, err := NewHub("127.0.0.1:0", 3)
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()

	// The doomed worker claims the first slot (rank 0) and vanishes.
	c, err := net.Dial("tcp", hub.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := binary.Write(c, binary.LittleEndian, uint32(magic)); err != nil {
		t.Fatal(err)
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetLinger(0) // die with an RST, not a graceful FIN
	}
	c.Close()

	var wg sync.WaitGroup
	eps := make([]mp.Endpoint, 2)
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			eps[i], errs[i] = ConnectTimeout(hub.Addr(), 10*time.Second)
		}(i)
	}
	wg.Wait()
	for i := 0; i < 2; i++ {
		if errs[i] != nil {
			t.Fatalf("survivor %d rendezvous: %v", i, errs[i])
		}
		defer eps[i].Close()
		if eps[i].Size() != 3 {
			t.Fatalf("survivor %d: world size %d, want 3", i, eps[i].Size())
		}
	}
	// The survivors can talk to each other across the hub.
	a, b := eps[0], eps[1]
	want := []float64{1.5, -2.25, 3.125}
	if err := a.Send(b.Rank(), 7, want); err != nil {
		t.Fatal(err)
	}
	msg, err := b.Recv(7, a.Rank())
	if err != nil {
		t.Fatal(err)
	}
	if len(msg.Data) != len(want) || msg.Data[0] != want[0] || msg.Data[2] != want[2] {
		t.Fatalf("routed frame corrupted: %v", msg.Data)
	}
}

// TestHubMagicDeadlineFreesAcceptLoop dials in a connection that never
// speaks: the hub must time it out instead of letting it hold the accept
// loop hostage, so the real workers still rendezvous.
func TestHubMagicDeadlineFreesAcceptLoop(t *testing.T) {
	old := hubMagicTimeout
	hubMagicTimeout = 100 * time.Millisecond
	defer func() { hubMagicTimeout = old }()

	hub, err := NewHub("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()

	mute, err := net.Dial("tcp", hub.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer mute.Close() // never writes anything

	var wg sync.WaitGroup
	eps := make([]mp.Endpoint, 2)
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			eps[i], errs[i] = ConnectTimeout(hub.Addr(), 10*time.Second)
		}(i)
	}
	wg.Wait()
	for i := 0; i < 2; i++ {
		if errs[i] != nil {
			t.Fatalf("rendezvous behind a mute dialer: %v", errs[i])
		}
		eps[i].Close()
	}
}

// fakeHub speaks just enough of the hub protocol to hand one endpoint a
// rank and then feed it arbitrary bytes — the lever for exercising the
// endpoint's typed error paths.
func fakeHub(t *testing.T, serve func(c net.Conn)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		var m uint32
		if binary.Read(c, binary.LittleEndian, &m) != nil {
			c.Close()
			return
		}
		hdr := [2]int32{1, 2} // you are rank 1 of 2
		if binary.Write(c, binary.LittleEndian, hdr[:]) != nil {
			c.Close()
			return
		}
		serve(c)
	}()
	return ln.Addr().String()
}

// TestReadDeadlineSurfacesErrTimeout arms a read deadline on an endpoint
// whose peer goes silent: the reader must stop with an ErrTimeout-wrapped
// error (not ErrProtocol, not a bare transport error) and close the queue.
func TestReadDeadlineSurfacesErrTimeout(t *testing.T) {
	addr := fakeHub(t, func(c net.Conn) { /* silent forever */ })
	ep, err := ConnectTimeout(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	if !SetIOTimeouts(ep, 50*time.Millisecond, 0) {
		t.Fatal("SetIOTimeouts rejected a tcpmp endpoint")
	}
	if _, err := ep.Recv(1, mp.AnySource); !errors.Is(err, mp.ErrClosed) {
		t.Fatalf("Recv after silence: %v, want ErrClosed", err)
	}
	cause, ok := Err(ep)
	if !ok {
		t.Fatal("Err rejected a tcpmp endpoint")
	}
	if !errors.Is(cause, ErrTimeout) {
		t.Fatalf("cause = %v, want ErrTimeout", cause)
	}
	if errors.Is(cause, ErrProtocol) {
		t.Fatal("a silent peer must not read as a protocol violation")
	}
}

// TestMalformedFrameSurfacesErrProtocol feeds the endpoint an impossible
// frame length: the reader must stop with ErrProtocol — a peer speaking
// garbage is a different failure class than one that went silent.
func TestMalformedFrameSurfacesErrProtocol(t *testing.T) {
	addr := fakeHub(t, func(c net.Conn) {
		bad := [3]int32{0, 5, -7} // negative payload length
		_ = binary.Write(c, binary.LittleEndian, bad[:])
	})
	ep, err := ConnectTimeout(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	if _, err := ep.Recv(5, mp.AnySource); !errors.Is(err, mp.ErrClosed) {
		t.Fatalf("Recv after garbage: %v, want ErrClosed", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		cause, _ := Err(ep)
		if cause != nil {
			if !errors.Is(cause, ErrProtocol) {
				t.Fatalf("cause = %v, want ErrProtocol", cause)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("endpoint never recorded the protocol violation")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestLocalCloseIsNotAFault: an endpoint the caller closed must report a
// nil cause — shutting down on purpose is not a peer failure.
func TestLocalCloseIsNotAFault(t *testing.T) {
	addr := fakeHub(t, func(c net.Conn) { /* idle */ })
	ep, err := ConnectTimeout(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ep.Close()
	time.Sleep(20 * time.Millisecond) // let the reader observe the close
	if cause, _ := Err(ep); cause != nil {
		t.Fatalf("local close recorded a fault: %v", cause)
	}
}

type notTCP struct{ mp.Endpoint }

// TestTypedHelpersRejectForeignEndpoints pins the ok=false contract.
func TestTypedHelpersRejectForeignEndpoints(t *testing.T) {
	if SetIOTimeouts(notTCP{}, time.Second, time.Second) {
		t.Fatal("SetIOTimeouts accepted a non-tcpmp endpoint")
	}
	if _, ok := Err(notTCP{}); ok {
		t.Fatal("Err accepted a non-tcpmp endpoint")
	}
}
