package mp_test

import (
	"fmt"
	"sync"
	"testing"

	"plinger/internal/mp"
	"plinger/internal/mp/chanmp"
	"plinger/internal/mp/fifomp"
	"plinger/internal/mp/tcpmp"
)

// worlds returns constructors for every transport so each behavioural test
// runs against all of them — the paper's "choice of library" axis.
func worlds(t *testing.T) map[string]func(n int) []mp.Endpoint {
	t.Helper()
	return map[string]func(n int) []mp.Endpoint{
		"chanmp": func(n int) []mp.Endpoint {
			_, eps, err := chanmp.New(n)
			if err != nil {
				t.Fatal(err)
			}
			return eps
		},
		"fifomp": func(n int) []mp.Endpoint {
			_, eps, err := fifomp.New(n)
			if err != nil {
				t.Fatal(err)
			}
			return eps
		},
		"tcpmp": func(n int) []mp.Endpoint {
			hub, err := tcpmp.NewHub("127.0.0.1:0", n)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { hub.Close() })
			eps := make([]mp.Endpoint, n)
			var wg sync.WaitGroup
			var mu sync.Mutex
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					ep, err := tcpmp.Connect(hub.Addr())
					if err != nil {
						t.Error(err)
						return
					}
					mu.Lock()
					eps[ep.Rank()] = ep
					mu.Unlock()
				}()
			}
			wg.Wait()
			return eps
		},
	}
}

func TestRankAndSize(t *testing.T) {
	for name, mk := range worlds(t) {
		t.Run(name, func(t *testing.T) {
			eps := mk(4)
			seen := map[int]bool{}
			for _, e := range eps {
				if e.Size() != 4 {
					t.Fatalf("size %d", e.Size())
				}
				if e.Master() != 0 {
					t.Fatalf("master %d", e.Master())
				}
				seen[e.Rank()] = true
			}
			for r := 0; r < 4; r++ {
				if !seen[r] {
					t.Fatalf("missing rank %d", r)
				}
			}
		})
	}
}

func TestSendRecvRoundTrip(t *testing.T) {
	for name, mk := range worlds(t) {
		t.Run(name, func(t *testing.T) {
			eps := mk(2)
			payload := []float64{3.14, -2.71, 0, 1e300, -1e-300}
			done := make(chan error, 1)
			go func() {
				m, err := eps[1].Recv(7, 0)
				if err != nil {
					done <- err
					return
				}
				if len(m.Data) != len(payload) {
					done <- fmt.Errorf("len %d", len(m.Data))
					return
				}
				for i := range payload {
					if m.Data[i] != payload[i] {
						done <- fmt.Errorf("payload[%d] = %g", i, m.Data[i])
						return
					}
				}
				done <- nil
			}()
			if err := eps[0].Send(1, 7, payload); err != nil {
				t.Fatal(err)
			}
			if err := <-done; err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestBroadcastReachesAllWorkers(t *testing.T) {
	for name, mk := range worlds(t) {
		t.Run(name, func(t *testing.T) {
			eps := mk(5)
			var wg sync.WaitGroup
			errs := make(chan error, 4)
			for i := 1; i < 5; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					m, err := eps[i].Recv(1, 0)
					if err != nil {
						errs <- err
						return
					}
					if m.Data[0] != 99 {
						errs <- fmt.Errorf("rank %d: got %g", i, m.Data[0])
					}
				}(i)
			}
			if err := eps[0].Bcast(1, []float64{99}); err != nil {
				t.Fatal(err)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
		})
	}
}

func TestProbeIdentifiesSender(t *testing.T) {
	for name, mk := range worlds(t) {
		t.Run(name, func(t *testing.T) {
			eps := mk(3)
			if err := eps[2].Send(0, 4, []float64{1, 2}); err != nil {
				t.Fatal(err)
			}
			tag, src, err := eps[0].Probe(mp.AnyTag, mp.AnySource)
			if err != nil {
				t.Fatal(err)
			}
			if tag != 4 || src != 2 {
				t.Fatalf("probe = (%d, %d)", tag, src)
			}
			m, err := eps[0].Recv(tag, src)
			if err != nil || len(m.Data) != 2 {
				t.Fatalf("recv after probe: %v %v", m, err)
			}
		})
	}
}

// The paper's master loop probes for any message, then receives by the
// revealed (tag, source). Exercise that exact pattern under concurrency.
func TestMasterWorkerProbePattern(t *testing.T) {
	for name, mk := range worlds(t) {
		t.Run(name, func(t *testing.T) {
			const nw = 4
			eps := mk(nw + 1)
			var wg sync.WaitGroup
			for w := 1; w <= nw; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for j := 0; j < 10; j++ {
						if err := eps[w].Send(0, 2, []float64{float64(w), float64(j)}); err != nil {
							t.Error(err)
							return
						}
						// Wait for the ack before sending again (the
						// PLINGER worker always alternates).
						if _, err := eps[w].Recv(3, 0); err != nil {
							t.Error(err)
							return
						}
					}
				}(w)
			}
			counts := map[int]int{}
			for recvd := 0; recvd < nw*10; recvd++ {
				tag, src, err := eps[0].Probe(mp.AnyTag, mp.AnySource)
				if err != nil {
					t.Fatal(err)
				}
				m, err := eps[0].Recv(tag, src)
				if err != nil {
					t.Fatal(err)
				}
				if int(m.Data[0]) != src {
					t.Fatalf("message claims worker %g but came from %d", m.Data[0], src)
				}
				counts[src]++
				if err := eps[0].Send(src, 3, []float64{1}); err != nil {
					t.Fatal(err)
				}
			}
			wg.Wait()
			for w := 1; w <= nw; w++ {
				if counts[w] != 10 {
					t.Fatalf("worker %d: %d messages", w, counts[w])
				}
			}
		})
	}
}

func TestSingleProcessWorldIsValid(t *testing.T) {
	for name, mk := range worlds(t) {
		t.Run(name, func(t *testing.T) {
			eps := mk(1)
			if eps[0].Rank() != 0 || eps[0].Size() != 1 {
				t.Fatal("degenerate world broken")
			}
			// Bcast to nobody must succeed.
			if err := eps[0].Bcast(1, []float64{1}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestBytesAccounting(t *testing.T) {
	w, eps, err := chanmp.New(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := eps[0].Send(1, 1, make([]float64, 100)); err != nil {
		t.Fatal(err)
	}
	if got := w.BytesMoved(); got != 800 {
		t.Fatalf("BytesMoved = %d, want 800", got)
	}
}

func TestChanmpInvalidDestination(t *testing.T) {
	_, eps, err := chanmp.New(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := eps[0].Send(5, 1, nil); err == nil {
		t.Fatal("want error for out-of-range destination")
	}
	if _, _, err := chanmp.New(0); err == nil {
		t.Fatal("want error for empty world")
	}
	if _, _, err := fifomp.New(0); err == nil {
		t.Fatal("want error for empty fifo world")
	}
}

func TestTCPLargePayload(t *testing.T) {
	hub, err := tcpmp.NewHub("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	var eps [2]mp.Endpoint
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ep, err := tcpmp.Connect(hub.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			eps[ep.Rank()] = ep
		}()
	}
	wg.Wait()
	// 80 kB is the paper's largest message; send 10x that.
	data := make([]float64, 100000)
	for i := range data {
		data[i] = float64(i) * 0.5
	}
	go func() {
		if err := eps[0].Send(1, 5, data); err != nil {
			t.Error(err)
		}
	}()
	m, err := eps[1].Recv(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if m.Data[i] != data[i] {
			t.Fatalf("large payload corrupted at %d", i)
		}
	}
	if hub.BytesMoved() != 800000 {
		t.Fatalf("hub bytes %d", hub.BytesMoved())
	}
}
