package faultmp_test

import (
	"errors"
	"testing"
	"time"

	"plinger/internal/mp"
	"plinger/internal/mp/chanmp"
	"plinger/internal/mp/faultmp"
)

var _ mp.Endpoint = (*faultmp.Endpoint)(nil)
var _ mp.DeadlineProber = (*faultmp.Endpoint)(nil)

// world builds a two-node chanmp world: [master, worker].
func world(t *testing.T) (mp.Endpoint, mp.Endpoint) {
	t.Helper()
	_, eps, err := chanmp.New(2)
	if err != nil {
		t.Fatal(err)
	}
	return eps[0], eps[1]
}

// drain counts the messages waiting at ep, using the timed probe so an
// empty mailbox terminates the count instead of blocking it.
func drain(t *testing.T, ep mp.Endpoint) int {
	t.Helper()
	p := ep.(mp.DeadlineProber)
	n := 0
	for {
		tag, src, ok, err := p.ProbeTimeout(mp.AnyTag, mp.AnySource, 20*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return n
		}
		if _, err := ep.Recv(tag, src); err != nil {
			t.Fatal(err)
		}
		n++
	}
}

// The seed contract: a fixed (Options, operation sequence) pair injects an
// identical fault pattern on every run, and every fired fault is visible in
// Stats — drops silently succeed, errors fail with ErrInjected, and the
// survivors all arrive.
func TestSendFaultsDeterministic(t *testing.T) {
	const sends = 200
	opts := faultmp.Options{Seed: 7, DropSend: 0.3, ErrSend: 0.2, DelaySend: 0.1, SendDelay: time.Microsecond}
	run := func() (faultmp.Stats, int) {
		master, workerEP := world(t)
		defer master.Close()
		defer workerEP.Close()
		f := faultmp.Wrap(master, opts)
		failed := 0
		for i := 0; i < sends; i++ {
			if err := f.Send(1, 9, []float64{float64(i)}); err != nil {
				if !errors.Is(err, faultmp.ErrInjected) {
					t.Fatalf("send %d: %v", i, err)
				}
				failed++
			}
		}
		st := f.Stats()
		if failed != st.Errors {
			t.Fatalf("%d sends failed but Stats counts %d errors", failed, st.Errors)
		}
		if got := drain(t, workerEP); got != sends-st.Drops-st.Errors {
			t.Fatalf("%d messages arrived, want %d (= %d sends - %d drops - %d errors)",
				got, sends-st.Drops-st.Errors, sends, st.Drops, st.Errors)
		}
		return st, failed
	}
	st1, _ := run()
	st2, _ := run()
	if st1 != st2 {
		t.Fatalf("same seed, different fault patterns: %+v vs %+v", st1, st2)
	}
	if st1.Drops == 0 || st1.Errors == 0 || st1.Delays == 0 {
		t.Fatalf("fault classes never fired over %d sends: %+v", sends, st1)
	}
}

// CrashAfterAssigns delivers the fatal assignment, then turns the endpoint
// into a dead process: every later operation fails with ErrInjected.
func TestCrashAfterAssign(t *testing.T) {
	master, workerEP := world(t)
	defer master.Close()
	f := faultmp.Wrap(workerEP, faultmp.Options{Seed: 1, CrashAfterAssigns: 2})
	for i := 0; i < 2; i++ {
		if err := master.Send(1, 3, []float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
		m, err := f.Recv(3, 0)
		if err != nil {
			t.Fatalf("assignment %d must still be delivered: %v", i, err)
		}
		if m.Data[0] != float64(i) {
			t.Fatalf("assignment %d payload %v", i, m.Data)
		}
	}
	if !f.Stats().Crashed {
		t.Fatal("Stats.Crashed not set after the second assignment")
	}
	if err := f.Send(0, 4, []float64{1}); !errors.Is(err, faultmp.ErrInjected) {
		t.Fatalf("send on crashed endpoint: %v", err)
	}
	if _, _, err := f.Probe(mp.AnyTag, mp.AnySource); !errors.Is(err, faultmp.ErrInjected) {
		t.Fatalf("probe on crashed endpoint: %v", err)
	}
	if _, _, _, err := f.ProbeTimeout(mp.AnyTag, mp.AnySource, time.Millisecond); !errors.Is(err, faultmp.ErrInjected) {
		t.Fatalf("timed probe on crashed endpoint: %v", err)
	}
	if _, err := f.Recv(mp.AnyTag, mp.AnySource); !errors.Is(err, faultmp.ErrInjected) {
		t.Fatalf("recv on crashed endpoint: %v", err)
	}
	// The crash closed the wrapped endpoint too: the dead process left the
	// world, so peers delivering to it see a transport error.
	if err := master.Send(1, 3, []float64{9}); err == nil {
		t.Fatal("send to crashed process succeeded")
	}
}

// HangAfterAssigns wedges every later Send until Close — the failure mode
// only a deadline can detect, since no error ever surfaces.
func TestHangAfterAssign(t *testing.T) {
	master, workerEP := world(t)
	defer master.Close()
	f := faultmp.Wrap(workerEP, faultmp.Options{Seed: 1, HangAfterAssigns: 1})
	if err := master.Send(1, 3, []float64{0}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Recv(3, 0); err != nil {
		t.Fatal(err)
	}
	sent := make(chan error, 1)
	go func() { sent <- f.Send(0, 4, []float64{1}) }()
	select {
	case err := <-sent:
		t.Fatalf("send on hung endpoint returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	if !f.Stats().Hung {
		t.Fatal("Stats.Hung not set")
	}
	f.Close()
	select {
	case err := <-sent:
		if !errors.Is(err, mp.ErrClosed) {
			t.Fatalf("hung send after Close: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("hung send not released by Close")
	}
}

// plainEndpoint is a minimal transport without ProbeTimeout, to pin the
// degraded path: the wrapper falls back to the blocking probe.
type plainEndpoint struct{ q *mp.Queue }

func (p *plainEndpoint) Rank() int                            { return 1 }
func (p *plainEndpoint) Size() int                            { return 2 }
func (p *plainEndpoint) Master() int                          { return 0 }
func (p *plainEndpoint) Send(int, int, []float64) error       { return nil }
func (p *plainEndpoint) Bcast(int, []float64) error           { return nil }
func (p *plainEndpoint) Probe(tag, src int) (int, int, error) { return p.q.Probe(tag, src) }
func (p *plainEndpoint) Recv(tag, src int) (mp.Message, error) {
	return p.q.Recv(tag, src)
}
func (p *plainEndpoint) Close() error { p.q.Close(); return nil }

func TestProbeTimeoutDegradesToBlocking(t *testing.T) {
	plain := &plainEndpoint{q: mp.NewQueue()}
	if err := plain.q.Push(mp.Message{Tag: 5, Source: 0}); err != nil {
		t.Fatal(err)
	}
	f := faultmp.Wrap(plain, faultmp.Options{Seed: 1})
	tag, src, ok, err := f.ProbeTimeout(mp.AnyTag, mp.AnySource, time.Millisecond)
	if err != nil || !ok || tag != 5 || src != 0 {
		t.Fatalf("degraded probe: tag=%d src=%d ok=%v err=%v", tag, src, ok, err)
	}
}
