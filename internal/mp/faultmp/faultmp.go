// Package faultmp is the deterministic fault-injection transport: an
// mp.Endpoint wrapper that loses, delays or fails messages and crashes or
// hangs the wrapped process at scripted points, all driven by a seeded
// generator so a chaos test replays the exact same disturbance every run.
// It wraps any transport — chan, fifo or tcp — which is how the recovery
// tests prove the fault-tolerant master is transport-agnostic: the paper's
// protocol ("this has no fault tolerance"; a lost worker stalls the run)
// is exercised against precisely the failures a multi-host sweep farm must
// survive.
package faultmp

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"plinger/internal/mp"
)

// ErrInjected is the transport error produced by scripted Send failures
// and by operations on a crashed endpoint.
var ErrInjected = errors.New("faultmp: injected transport fault")

// Options scripts the faults for one wrapped endpoint. All probabilistic
// decisions derive from Seed, so a fixed (Options, operation sequence)
// pair injects an identical fault pattern on every run.
type Options struct {
	// Seed drives the per-endpoint fault generator.
	Seed int64

	// DropSend is the probability an outgoing Send is silently lost: the
	// caller sees success, nothing arrives.
	DropSend float64
	// ErrSend is the probability an outgoing Send fails with ErrInjected.
	ErrSend float64
	// DelaySend is the probability an outgoing Send sleeps SendDelay
	// before delivery (a slow link).
	DelaySend float64
	// SendDelay is the injected latency for delayed sends.
	SendDelay time.Duration

	// CrashAfterAssigns, when > 0, kills the endpoint after the Nth
	// received message with AssignTag: that assignment is still delivered,
	// then every later operation fails with ErrInjected and the wrapped
	// endpoint is closed — a worker dying mid-assignment, with its k-modes
	// in flight.
	CrashAfterAssigns int
	// HangAfterAssigns, when > 0, makes every Send after the Nth received
	// AssignTag block until Close: a hung worker, the failure only a
	// deadline (never an error) can detect.
	HangAfterAssigns int
	// AssignTag is the received tag counted by the two triggers
	// (0: plinger's assignment tag, 3).
	AssignTag int
}

// Stats counts the faults actually injected, for test assertions.
type Stats struct {
	Drops   int
	Errors  int
	Delays  int
	Crashed bool
	Hung    bool
}

// Endpoint wraps an mp.Endpoint with fault injection. It implements
// mp.Endpoint and mp.DeadlineProber (forwarding the timed probe when the
// wrapped transport supports it).
type Endpoint struct {
	ep   mp.Endpoint
	opts Options

	mu      sync.Mutex
	rng     *rand.Rand
	assigns int
	crashed bool
	hung    bool
	stats   Stats

	closed    chan struct{}
	closeOnce sync.Once
}

// Wrap scripts opts around ep.
func Wrap(ep mp.Endpoint, opts Options) *Endpoint {
	if opts.AssignTag == 0 {
		opts.AssignTag = 3
	}
	return &Endpoint{
		ep:     ep,
		opts:   opts,
		rng:    rand.New(rand.NewSource(opts.Seed)),
		closed: make(chan struct{}),
	}
}

// Stats snapshots the injected-fault counters.
func (e *Endpoint) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

func (e *Endpoint) Rank() int   { return e.ep.Rank() }
func (e *Endpoint) Size() int   { return e.ep.Size() }
func (e *Endpoint) Master() int { return e.ep.Master() }

// sendFault rolls the scripted send faults; exactly one generator draw per
// configured fault class keeps the sequence deterministic regardless of
// which faults fire.
type sendFault int

const (
	sendOK sendFault = iota
	sendDropped
	sendErrored
	sendDelayed
	sendCrashed
	sendHung
)

func (e *Endpoint) rollSend() sendFault {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crashed {
		return sendCrashed
	}
	if e.hung {
		e.stats.Hung = true
		return sendHung
	}
	f := sendOK
	if e.opts.ErrSend > 0 && e.rng.Float64() < e.opts.ErrSend {
		f = sendErrored
		e.stats.Errors++
	}
	if e.opts.DropSend > 0 && e.rng.Float64() < e.opts.DropSend && f == sendOK {
		f = sendDropped
		e.stats.Drops++
	}
	if e.opts.DelaySend > 0 && e.rng.Float64() < e.opts.DelaySend && f == sendOK {
		f = sendDelayed
		e.stats.Delays++
	}
	return f
}

func (e *Endpoint) dispatchSend(f sendFault, deliver func() error) error {
	switch f {
	case sendCrashed:
		return ErrInjected
	case sendHung:
		<-e.closed
		return mp.ErrClosed
	case sendErrored:
		return ErrInjected
	case sendDropped:
		return nil
	case sendDelayed:
		select {
		case <-time.After(e.opts.SendDelay):
		case <-e.closed:
			return mp.ErrClosed
		}
	}
	return deliver()
}

func (e *Endpoint) Send(dst, tag int, data []float64) error {
	return e.dispatchSend(e.rollSend(), func() error { return e.ep.Send(dst, tag, data) })
}

func (e *Endpoint) Bcast(tag int, data []float64) error {
	return e.dispatchSend(e.rollSend(), func() error { return e.ep.Bcast(tag, data) })
}

func (e *Endpoint) dead() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.crashed
}

func (e *Endpoint) Probe(tag, source int) (int, int, error) {
	if e.dead() {
		return 0, 0, ErrInjected
	}
	return e.ep.Probe(tag, source)
}

// ProbeTimeout implements mp.DeadlineProber by forwarding to the wrapped
// transport; a transport without the capability degrades to a blocking
// probe (the caller's deadline then rests on the other endpoints).
func (e *Endpoint) ProbeTimeout(tag, source int, d time.Duration) (int, int, bool, error) {
	if e.dead() {
		return 0, 0, false, ErrInjected
	}
	if p, ok := e.ep.(mp.DeadlineProber); ok {
		return p.ProbeTimeout(tag, source, d)
	}
	t, s, err := e.ep.Probe(tag, source)
	return t, s, err == nil, err
}

func (e *Endpoint) Recv(tag, source int) (mp.Message, error) {
	if e.dead() {
		return mp.Message{}, ErrInjected
	}
	m, err := e.ep.Recv(tag, source)
	if err != nil {
		return m, err
	}
	if m.Tag == e.opts.AssignTag {
		e.onAssign()
	}
	return m, nil
}

// onAssign advances the crash/hang triggers after an assignment has been
// delivered, so the scripted failure strikes mid-assignment: the work is in
// the worker's hands when the worker dies.
func (e *Endpoint) onAssign() {
	e.mu.Lock()
	e.assigns++
	crash := e.opts.CrashAfterAssigns > 0 && e.assigns == e.opts.CrashAfterAssigns
	if crash {
		e.crashed = true
		e.stats.Crashed = true
	}
	if e.opts.HangAfterAssigns > 0 && e.assigns == e.opts.HangAfterAssigns {
		e.hung = true
	}
	e.mu.Unlock()
	if crash {
		// The crashed process leaves the world: peers sending to it get
		// transport errors, exactly like a dead PVM task.
		e.ep.Close()
	}
}

func (e *Endpoint) Close() error {
	e.closeOnce.Do(func() { close(e.closed) })
	return e.ep.Close()
}
