package mp

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestQueueMatchByTagAndSource(t *testing.T) {
	q := NewQueue()
	q.Push(Message{Tag: 1, Source: 7, Data: []float64{1}})
	q.Push(Message{Tag: 2, Source: 8, Data: []float64{2}})
	q.Push(Message{Tag: 1, Source: 8, Data: []float64{3}})

	// Specific tag+source skips earlier non-matching messages.
	m, err := q.Recv(1, 8)
	if err != nil || m.Data[0] != 3 {
		t.Fatalf("Recv(1,8) = %v, %v", m, err)
	}
	// Wildcard source takes first matching tag.
	m, err = q.Recv(1, AnySource)
	if err != nil || m.Data[0] != 1 {
		t.Fatalf("Recv(1,any) = %v, %v", m, err)
	}
	// Full wildcard drains the rest.
	m, err = q.Recv(AnyTag, AnySource)
	if err != nil || m.Data[0] != 2 {
		t.Fatalf("Recv(any,any) = %v, %v", m, err)
	}
	if q.Len() != 0 {
		t.Fatalf("queue not drained: %d", q.Len())
	}
}

func TestQueueFIFOPerSourceTag(t *testing.T) {
	q := NewQueue()
	for i := 0; i < 10; i++ {
		q.Push(Message{Tag: 5, Source: 3, Data: []float64{float64(i)}})
	}
	for i := 0; i < 10; i++ {
		m, err := q.Recv(5, 3)
		if err != nil {
			t.Fatal(err)
		}
		if m.Data[0] != float64(i) {
			t.Fatalf("out of order: got %g want %d", m.Data[0], i)
		}
	}
}

func TestProbeDoesNotConsume(t *testing.T) {
	q := NewQueue()
	q.Push(Message{Tag: 4, Source: 2})
	tag, src, err := q.Probe(AnyTag, AnySource)
	if err != nil || tag != 4 || src != 2 {
		t.Fatalf("Probe = (%d,%d,%v)", tag, src, err)
	}
	if q.Len() != 1 {
		t.Fatal("probe consumed the message")
	}
	if _, err := q.Recv(tag, src); err != nil {
		t.Fatal(err)
	}
}

func TestBlockingRecvWakesOnPush(t *testing.T) {
	q := NewQueue()
	got := make(chan Message, 1)
	go func() {
		m, err := q.Recv(9, AnySource)
		if err == nil {
			got <- m
		}
	}()
	time.Sleep(10 * time.Millisecond)
	q.Push(Message{Tag: 9, Source: 1, Data: []float64{42}})
	select {
	case m := <-got:
		if m.Data[0] != 42 {
			t.Fatalf("wrong payload %v", m.Data)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked receive never woke")
	}
}

func TestCloseWakesWaiters(t *testing.T) {
	q := NewQueue()
	errc := make(chan error, 1)
	go func() {
		_, err := q.Recv(1, 1)
		errc <- err
	}()
	time.Sleep(5 * time.Millisecond)
	q.Close()
	select {
	case err := <-errc:
		if err != ErrClosed {
			t.Fatalf("want ErrClosed, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("close did not wake waiter")
	}
	if err := q.Push(Message{}); err != ErrClosed {
		t.Fatalf("push after close: %v", err)
	}
}

func TestStrictFIFOMatchesOnlyHead(t *testing.T) {
	q := NewStrictFIFOQueue()
	q.Push(Message{Tag: 1, Source: 0})
	q.Push(Message{Tag: 2, Source: 0})
	// Probing for tag 2 while tag 1 is at the head is an MPL ordering
	// violation and must error, not silently match.
	if _, _, err := q.Probe(2, AnySource); err == nil {
		t.Fatal("strict FIFO probe skipped the head")
	}
	if _, err := q.Recv(2, AnySource); err == nil {
		t.Fatal("strict FIFO recv skipped the head")
	}
	// Matching the head works.
	if _, err := q.Recv(1, AnySource); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Recv(2, AnySource); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentProducersConsumers(t *testing.T) {
	q := NewQueue()
	const n = 200
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				q.Push(Message{Tag: 1, Source: p, Data: []float64{float64(i)}})
			}
		}(p)
	}
	var mu sync.Mutex
	counts := map[int]int{}
	var cg sync.WaitGroup
	for c := 0; c < 4; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			for {
				m, err := q.Recv(1, AnySource)
				if err != nil {
					return
				}
				mu.Lock()
				counts[m.Source]++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	// Wait for drain then close.
	for q.Len() > 0 {
		time.Sleep(time.Millisecond)
	}
	q.Close()
	cg.Wait()
	for p := 0; p < 4; p++ {
		if counts[p] != n {
			t.Fatalf("source %d delivered %d/%d", p, counts[p], n)
		}
	}
}

// Property: a random interleaving of pushes with distinct (tag, source)
// pairs is fully drainable by wildcard receive in arrival order.
func TestQuickArrivalOrder(t *testing.T) {
	f := func(tags []uint8) bool {
		q := NewQueue()
		for i, tg := range tags {
			q.Push(Message{Tag: int(tg % 8), Source: i})
		}
		for i := range tags {
			m, err := q.Recv(AnyTag, AnySource)
			if err != nil || m.Source != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
