// Package mp provides the message-passing substrate of PLINGER. The paper
// isolates all communication behind a small set of wrapper routines —
// initpass, endpass, mybcastreal, mysendreal, mycheckany, mycheckone,
// mychecktid and myrecvreal — implemented on PVM, MPI, MPL and PVMe. This
// package defines the same abstraction as the Endpoint interface, with the
// same probe/receive semantics (blocking probes that match on message tag
// and/or source, FIFO delivery per (source, tag) pair, exactly MPI_PROBE +
// MPI_RECV), over interchangeable transports:
//
//   - chanmp: in-process goroutine "nodes" (shared-memory MPI analogue)
//   - tcpmp:  a PVM-daemon-style TCP hub routing frames between OS
//     processes (or in-process endpoints, for tests)
//   - fifomp: a strict arrival-order transport modelling the MPL
//     restriction noted in Section 4 ("MPL requires that messages be
//     received in the order in which they arrive")
//
// The paper's observation — that for this computation the choice of library
// has no effect on efficiency — is reproduced as a benchmark.
package mp

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// AnyTag matches any message tag in probe/receive operations.
const AnyTag = -1

// AnySource matches any sender in probe/receive operations.
const AnySource = -1

// Message is one tagged message of float64 payload, mirroring the paper's
// "length double precision numbers starting at position buffer".
type Message struct {
	Tag    int
	Source int
	Data   []float64
}

// Endpoint is one process's connection to the message-passing world: the
// Go rendering of the paper's wrapper routines. Implementations must be
// safe for use by one goroutine per endpoint (the PLINGER pattern); Probe
// and Recv block until a matching message arrives.
type Endpoint interface {
	// Rank returns this process's ID (the paper's mytid).
	Rank() int
	// Size returns the number of processes.
	Size() int
	// Master returns the master's rank (the paper's mastid).
	Master() int

	// Bcast sends data with the given tag to every other process
	// (mybcastreal). Only meaningful on the master.
	Bcast(tag int, data []float64) error
	// Send sends data with the given tag to one process (mysendreal).
	Send(dst, tag int, data []float64) error
	// Probe blocks until a message matching (tag, source) is available and
	// returns its actual tag and source without consuming it. Use AnyTag
	// and AnySource for wildcards; this single routine realizes
	// mycheckany (AnyTag, AnySource), mycheckone (tag, src) and
	// mychecktid (AnyTag, src).
	Probe(tag, source int) (gotTag, gotSource int, err error)
	// Recv consumes and returns the first message matching (tag, source)
	// (myrecvreal).
	Recv(tag, source int) (Message, error)
	// Close leaves the message-passing world (endpass).
	Close() error
}

// ErrClosed is returned by operations on a closed endpoint.
var ErrClosed = errors.New("mp: endpoint closed")

// DeadlineProber is the optional endpoint capability behind fault-tolerant
// mastering: a probe that gives up after a timeout instead of blocking
// forever. The paper's wrappers have no such call — and its protocol
// therefore has no fault tolerance — so the capability is an extension
// interface rather than part of Endpoint. All transports in this repository
// implement it (their mailboxes share Queue).
type DeadlineProber interface {
	// ProbeTimeout behaves like Probe but returns ok=false once d has
	// elapsed with no matching message. err is reserved for real failures
	// (closed endpoint, strict-FIFO mismatch); a timeout is not an error.
	ProbeTimeout(tag, source int, d time.Duration) (gotTag, gotSource int, ok bool, err error)
}

// Queue is a blocking mailbox with MPI matching semantics: messages are
// kept in arrival order and probes/receives select the first message whose
// (tag, source) matches, preserving FIFO order per (source, tag) pair.
// It is the shared matching engine of all transports.
type Queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	msgs   []Message
	closed bool

	// strictFIFO restricts matching to the head of the queue, modelling
	// MPL's arrival-order receive.
	strictFIFO bool
}

// NewQueue returns an empty mailbox.
func NewQueue() *Queue {
	q := &Queue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// NewStrictFIFOQueue returns a mailbox that only matches the head message,
// as MPL requires.
func NewStrictFIFOQueue() *Queue {
	q := NewQueue()
	q.strictFIFO = true
	return q
}

// Push delivers a message to the mailbox.
func (q *Queue) Push(m Message) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	q.msgs = append(q.msgs, m)
	q.cond.Broadcast()
	return nil
}

// Close wakes all waiters with ErrClosed.
func (q *Queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

func match(m Message, tag, source int) bool {
	if tag != AnyTag && m.Tag != tag {
		return false
	}
	if source != AnySource && m.Source != source {
		return false
	}
	return true
}

// Probe blocks until a matching message is present, returning its tag and
// source without removing it.
func (q *Queue) Probe(tag, source int) (int, int, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.strictFIFO {
			if len(q.msgs) > 0 {
				m := q.msgs[0]
				if !match(m, tag, source) {
					return 0, 0, fmt.Errorf("mp: strict-FIFO transport: head message (tag %d from %d) does not match probe (tag %d, src %d)",
						m.Tag, m.Source, tag, source)
				}
				return m.Tag, m.Source, nil
			}
		} else {
			for _, m := range q.msgs {
				if match(m, tag, source) {
					return m.Tag, m.Source, nil
				}
			}
		}
		if q.closed {
			return 0, 0, ErrClosed
		}
		q.cond.Wait()
	}
}

// ProbeTimeout is Probe with a deadline: it returns ok=false when d elapses
// before a matching message arrives. The timeout wakes the wait through the
// queue's own condition variable, so no polling loop spins while waiting.
func (q *Queue) ProbeTimeout(tag, source int, d time.Duration) (int, int, bool, error) {
	deadline := time.Now().Add(d)
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.strictFIFO {
			if len(q.msgs) > 0 {
				m := q.msgs[0]
				if !match(m, tag, source) {
					return 0, 0, false, fmt.Errorf("mp: strict-FIFO transport: head message (tag %d from %d) does not match probe (tag %d, src %d)",
						m.Tag, m.Source, tag, source)
				}
				return m.Tag, m.Source, true, nil
			}
		} else {
			for _, m := range q.msgs {
				if match(m, tag, source) {
					return m.Tag, m.Source, true, nil
				}
			}
		}
		if q.closed {
			return 0, 0, false, ErrClosed
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return 0, 0, false, nil
		}
		t := time.AfterFunc(remaining, func() {
			q.mu.Lock()
			q.cond.Broadcast()
			q.mu.Unlock()
		})
		q.cond.Wait()
		t.Stop()
	}
}

// Recv blocks until a matching message is present and removes it.
func (q *Queue) Recv(tag, source int) (Message, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.strictFIFO {
			if len(q.msgs) > 0 {
				m := q.msgs[0]
				if !match(m, tag, source) {
					return Message{}, fmt.Errorf("mp: strict-FIFO transport: head message (tag %d from %d) does not match recv (tag %d, src %d)",
						m.Tag, m.Source, tag, source)
				}
				q.msgs = q.msgs[1:]
				return m, nil
			}
		} else {
			for i, m := range q.msgs {
				if match(m, tag, source) {
					q.msgs = append(q.msgs[:i], q.msgs[i+1:]...)
					return m, nil
				}
			}
		}
		if q.closed {
			return Message{}, ErrClosed
		}
		q.cond.Wait()
	}
}

// Len reports the number of queued messages (for tests and stats).
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.msgs)
}
