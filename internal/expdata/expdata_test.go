package expdata

import "testing"

func TestPointsWellFormed(t *testing.T) {
	pts := Points()
	if len(pts) < 10 {
		t.Fatalf("only %d points; the Figure 2 compilation has more", len(pts))
	}
	prev := 0.0
	for _, p := range pts {
		if p.Experiment == "" {
			t.Fatal("unnamed experiment")
		}
		if p.LEff < prev {
			t.Fatalf("points not ordered by multipole at %s", p.Experiment)
		}
		prev = p.LEff
		if p.DT <= 0 || p.ErrUp <= 0 || p.ErrDown <= 0 {
			t.Fatalf("non-positive values for %s", p.Experiment)
		}
		if p.DT < 10 || p.DT > 100 {
			t.Fatalf("%s band power %g uK outside the plausible 1995 range", p.Experiment, p.DT)
		}
	}
}

func TestCOBEAnchor(t *testing.T) {
	// The two leftmost points are COBE, as the paper says.
	pts := Points()
	if pts[0].Experiment[:4] != "COBE" || pts[1].Experiment[:4] != "COBE" {
		t.Fatal("first two points must be COBE")
	}
	if pts[0].LEff > 20 {
		t.Fatal("COBE probes ten-degree scales (low multipoles)")
	}
	if COBEQrmsPS != 18.0 {
		t.Fatal("paper's Figure 2 normalization is Q = 18 uK")
	}
}
