// Package expdata bundles the mid-1990s CMB anisotropy measurements plotted
// as the points of the paper's Figure 2. The paper took them from the
// COSAPP band-power compilation of Dave & Steinhardt (University of
// Pennsylvania); that exact file is no longer distributed, so this table
// collects the published values from the era's experiments — COBE DMR,
// Tenerife, South Pole (SP91/SP94), Python, ARGO, MAX, MSAM, Saskatoon and
// CAT — which are the same measurements the compilation contained. Values
// are band powers dT_l = sqrt(l(l+1)C_l/2pi) T_0 in microkelvin at an
// effective multipole.
package expdata

// BandPower is one experimental measurement.
type BandPower struct {
	// Experiment names the instrument/flight.
	Experiment string
	// LEff is the effective multipole of the window function.
	LEff float64
	// DT is the band power in microkelvin.
	DT float64
	// ErrUp and ErrDown are the one-sigma errors (microkelvin).
	ErrUp, ErrDown float64
}

// Points returns the Figure 2 compilation, ordered by effective multipole.
func Points() []BandPower {
	return []BandPower{
		// COBE DMR first- and second-year data, ten-degree scales.
		{"COBE DMR (yr 1)", 4, 27.0, 7.0, 7.0},
		{"COBE DMR (yr 2)", 10, 30.0, 5.0, 5.0},
		{"Tenerife", 20, 32.5, 10.1, 8.5},
		{"SP91", 60, 30.2, 8.9, 5.5},
		{"SP94", 68, 36.3, 13.6, 6.1},
		{"Saskatoon 94", 69, 41.0, 11.0, 9.0},
		{"Python", 91, 37.8, 12.0, 8.9},
		{"ARGO", 98, 39.1, 8.7, 8.7},
		{"MSAM (2-beam)", 143, 49.0, 12.0, 11.0},
		{"MAX GUM", 145, 54.5, 16.4, 10.9},
		{"MAX ID", 145, 46.3, 21.8, 13.6},
		{"Saskatoon 95", 172, 49.0, 10.0, 10.0},
		{"MSAM (3-beam)", 249, 47.0, 14.0, 13.0},
		{"CAT", 396, 51.8, 13.6, 13.6},
	}
}

// COBEQrmsPS is the COBE Q_rms-PS normalization in microkelvin used to
// anchor the theory curve in Figure 2.
const COBEQrmsPS = 18.0
