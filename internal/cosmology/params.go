// Package cosmology defines the cosmological model parameters and the
// homogeneous (background) evolution that the linear perturbation equations
// are solved on top of: the Friedmann equation including photons, massless
// and massive neutrinos, baryons, cold dark matter and a cosmological
// constant, and the conformal-time <-> scale-factor mapping.
//
// Conventions (Ma & Bertschinger 1995): c = 1, lengths in Mpc, conformal
// time tau in Mpc, a = 1 today. "grho" quantities are 8 pi G a^2 rho in
// Mpc^-2, so the conformal Hubble rate is aH = sqrt(grho/3).
package cosmology

import (
	"fmt"

	"plinger/internal/constants"
)

// Params specifies a cosmological model. The zero value is not usable; use
// one of the constructors or fill all fields.
type Params struct {
	// H is the Hubble constant in units of 100 km/s/Mpc (little h).
	H float64
	// OmegaC is the cold-dark-matter density parameter today.
	OmegaC float64
	// OmegaB is the baryon density parameter today.
	OmegaB float64
	// OmegaLambda is the cosmological-constant density parameter.
	OmegaLambda float64
	// TCMB is the CMB temperature today in kelvin.
	TCMB float64
	// YHe is the primordial helium mass fraction.
	YHe float64
	// NNuMassless is the effective number of massless two-component
	// neutrino species.
	NNuMassless float64
	// NNuMassive is the number of degenerate massive neutrino species
	// (0 or more); each has mass MNuEV.
	NNuMassive int
	// MNuEV is the massive-neutrino mass in eV.
	MNuEV float64

	// SpectralIndex is the primordial spectral index n (n=1 is
	// scale-invariant Harrison-Zel'dovich, the paper's "standard CDM").
	SpectralIndex float64
}

// SCDM returns the standard Cold Dark Matter model used for the paper's
// Figure 2 and Figure 3: Omega = 1, h = 0.5, Omega_b = 0.05, three massless
// neutrino species, scale-invariant initial conditions, COBE-normalized.
// OmegaC is chosen so the model is exactly flat including radiation.
func SCDM() Params {
	p := Params{
		H:             0.5,
		OmegaB:        0.05,
		OmegaLambda:   0.0,
		TCMB:          constants.TCMBDefault,
		YHe:           constants.YHeDefault,
		NNuMassless:   3.0,
		NNuMassive:    0,
		MNuEV:         0.0,
		SpectralIndex: 1.0,
	}
	p.OmegaC = 1.0 - p.OmegaB - p.OmegaGamma() - p.OmegaNuMassless()
	return p
}

// MDM returns a mixed dark matter variant (one massive neutrino species),
// exercising the massive-neutrino phase-space integration of Section 2.
func MDM(mnuEV float64) Params {
	p := SCDM()
	p.NNuMassless = 2.0
	p.NNuMassive = 1
	p.MNuEV = mnuEV
	// Flatness is restored by New (massive-nu density needs the momentum
	// integrals); leave OmegaC to be adjusted there.
	return p
}

// OmegaGamma returns the photon density parameter derived from TCMB and H.
func (p Params) OmegaGamma() float64 {
	return constants.RadiationDensity(p.TCMB) / (p.H * p.H)
}

// OmegaNuMassless returns the massless-neutrino density parameter.
func (p Params) OmegaNuMassless() float64 {
	return p.NNuMassless * constants.NuPerGamma * p.OmegaGamma()
}

// Validate reports structural problems with the parameter set.
func (p Params) Validate() error {
	switch {
	case p.H <= 0 || p.H > 2:
		return fmt.Errorf("cosmology: h = %g out of range (0, 2]", p.H)
	case p.OmegaB <= 0:
		return fmt.Errorf("cosmology: Omega_b = %g must be positive", p.OmegaB)
	case p.OmegaC < 0:
		return fmt.Errorf("cosmology: Omega_c = %g must be non-negative", p.OmegaC)
	case p.TCMB <= 0:
		return fmt.Errorf("cosmology: TCMB = %g must be positive", p.TCMB)
	case p.YHe < 0 || p.YHe > 0.5:
		return fmt.Errorf("cosmology: YHe = %g out of range [0, 0.5]", p.YHe)
	case p.NNuMassless < 0:
		return fmt.Errorf("cosmology: N_nu = %g must be non-negative", p.NNuMassless)
	case p.NNuMassive < 0:
		return fmt.Errorf("cosmology: N_nu_massive = %d must be non-negative", p.NNuMassive)
	case p.NNuMassive > 0 && p.MNuEV <= 0:
		return fmt.Errorf("cosmology: massive neutrinos require m_nu > 0, got %g", p.MNuEV)
	}
	return nil
}
