package cosmology

import (
	"math"
	"testing"
)

func scdm(t *testing.T) *Background {
	t.Helper()
	bg, err := New(SCDM())
	if err != nil {
		t.Fatal(err)
	}
	return bg
}

func TestSCDMIsFlat(t *testing.T) {
	bg := scdm(t)
	if k := bg.OmegaK(); math.Abs(k) > 1e-12 {
		t.Fatalf("Omega_K = %g, want 0", k)
	}
}

func TestValidateCatchesBadInputs(t *testing.T) {
	bad := []Params{
		{},
		{H: -1, OmegaB: 0.05, TCMB: 2.7},
		{H: 0.5, OmegaB: -0.1, TCMB: 2.7},
		{H: 0.5, OmegaB: 0.05, TCMB: 0},
		{H: 0.5, OmegaB: 0.05, TCMB: 2.7, YHe: 0.9},
		{H: 0.5, OmegaB: 0.05, TCMB: 2.7, YHe: 0.24, NNuMassive: 1, MNuEV: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: want validation error", i)
		}
	}
}

func TestNonFlatRejected(t *testing.T) {
	p := SCDM()
	p.OmegaC = 0.3
	if _, err := New(p); err == nil {
		t.Fatal("want error for open model")
	}
	// But NewFlattened should absorb it.
	if _, err := NewFlattened(p); err != nil {
		t.Fatalf("NewFlattened: %v", err)
	}
}

func TestConformalAgeSCDM(t *testing.T) {
	// Einstein-de Sitter with h=0.5: tau_0 = 2/H0 = 11991 Mpc, slightly
	// reduced by the radiation era. Expect ~11700-12000 Mpc.
	bg := scdm(t)
	tau0 := bg.Tau0()
	if tau0 < 11000 || tau0 > 12100 {
		t.Fatalf("tau0 = %g Mpc, want ~11700-12000", tau0)
	}
}

func TestEdSAnalyticLimit(t *testing.T) {
	// For matter+radiation with Omega_m ~ 1 the conformal time is analytic:
	// tau(a) = 2/(H0 sqrt(Om)) [sqrt(a+aeq) - sqrt(aeq)]. Check the ratio
	// tau(0.25)/tau(0.04) against that formula to 1%.
	bg := scdm(t)
	aeq := bg.MatterRadiationEqualityA()
	f := func(a float64) float64 { return math.Sqrt(a+aeq) - math.Sqrt(aeq) }
	want := f(0.25) / f(0.04)
	r := bg.Tau(0.25) / bg.Tau(0.04)
	if math.Abs(r-want) > 0.01*want {
		t.Fatalf("tau ratio %g, want ~%g", r, want)
	}
}

func TestRadiationDominatedLimit(t *testing.T) {
	// Deep in the radiation era tau is proportional to a.
	bg := scdm(t)
	r := bg.Tau(2e-7) / bg.Tau(1e-7)
	if math.Abs(r-2.0) > 0.01 {
		t.Fatalf("tau ratio %g, want ~2 in RD", r)
	}
}

func TestTauAofTauRoundTrip(t *testing.T) {
	bg := scdm(t)
	for _, a := range []float64{1e-8, 1e-6, 1e-4, 1e-3, 0.01, 0.1, 0.5, 1.0} {
		tau := bg.Tau(a)
		back := bg.AofTau(tau)
		if math.Abs(back-a) > 1e-5*a {
			t.Fatalf("round trip a=%g -> tau=%g -> %g", a, tau, back)
		}
	}
}

func TestHConfMonotoneDecreasing(t *testing.T) {
	// aH decreases with a until Lambda domination; SCDM has no Lambda.
	bg := scdm(t)
	prev := math.Inf(1)
	for _, a := range []float64{1e-8, 1e-6, 1e-4, 1e-2, 0.1, 1.0} {
		h := bg.HConf(a)
		if h >= prev {
			t.Fatalf("HConf not decreasing at a=%g", a)
		}
		prev = h
	}
}

func TestHubbleToday(t *testing.T) {
	bg := scdm(t)
	// aH at a=1 equals H0 = 0.5/2997.92 Mpc^-1 (up to flatness fudge).
	want := 0.5 / 2997.92458
	got := bg.HConf(1.0)
	if math.Abs(got-want) > 1e-4*want {
		t.Fatalf("H0 = %g, want %g", got, want)
	}
}

func TestFriedmannClosure(t *testing.T) {
	// Components in Grho must sum to Total.
	bg := scdm(t)
	var g Grho
	for _, a := range []float64{1e-7, 1e-4, 1e-2, 1} {
		bg.Eval(a, &g)
		sum := g.C + g.B + g.G + g.Nu + g.HNu + g.Lambda
		if math.Abs(sum-g.Total) > 1e-12*g.Total {
			t.Fatalf("closure at a=%g: %g vs %g", a, sum, g.Total)
		}
	}
}

func TestMatterRadiationEquality(t *testing.T) {
	bg := scdm(t)
	aeq := bg.MatterRadiationEqualityA()
	// Omega_r = Omega_gamma(1+3*0.2271), h=0.5 => a_eq ~ 1.66e-4 / 0.9963.
	if aeq < 1.5e-4 || aeq > 1.9e-4 {
		t.Fatalf("a_eq = %g, want ~1.7e-4", aeq)
	}
	var g Grho
	bg.Eval(aeq, &g)
	matter := g.C + g.B
	rad := g.G + g.Nu
	if math.Abs(matter-rad) > 1e-10*rad {
		t.Fatalf("at a_eq matter %g != radiation %g", matter, rad)
	}
}

func TestRecombinationEraTau(t *testing.T) {
	// The paper's psi movie ends "shortly after recombination, at conformal
	// time 250 Mpc (1/a = 1028)". Check tau(a=1/1028) ~ 240-260 Mpc.
	bg := scdm(t)
	tau := bg.Tau(1.0 / 1028.0)
	if tau < 230 || tau > 270 {
		t.Fatalf("tau(recombination) = %g Mpc, paper says ~250", tau)
	}
}

func TestHConfDotMatchesNumericalDerivative(t *testing.T) {
	bg := scdm(t)
	for _, a := range []float64{1e-6, 1e-4, 1e-2, 0.3} {
		// dH/dtau = dH/da * da/dtau = dH/da * a^2 H / a... da/dtau = a*Hconf.
		eps := 1e-4 * a
		num := (bg.HConf(a+eps) - bg.HConf(a-eps)) / (2 * eps) * a * bg.HConf(a)
		got := bg.HConfDot(a)
		if math.Abs(got-num) > 2e-3*math.Abs(num) {
			t.Fatalf("HConfDot(a=%g) = %g, numeric %g", a, got, num)
		}
	}
}

func TestMassiveNeutrinoDensityToday(t *testing.T) {
	// Omega_nu h^2 ~= m_nu / 93.1 eV for one species.
	bg, err := NewFlattened(MDM(1.0))
	if err != nil {
		t.Fatal(err)
	}
	onuh2 := bg.OmegaHNu * bg.P.H * bg.P.H
	want := 1.0 / 93.1
	if math.Abs(onuh2-want) > 0.02*want {
		t.Fatalf("Omega_nu h^2 = %g, want ~%g", onuh2, want)
	}
}

func TestMassiveNeutrinoLimits(t *testing.T) {
	bg, err := NewFlattened(MDM(1.0))
	if err != nil {
		t.Fatal(err)
	}
	// Relativistic limit: rho factor -> 1, pressure factor -> 1.
	r, p := bg.RhoNuMassive(1e-10)
	if math.Abs(r-1) > 1e-3 || math.Abs(p-1) > 1e-3 {
		t.Fatalf("relativistic limit: rho=%g p=%g, want 1,1", r, p)
	}
	// Non-relativistic: pressure/rho -> 0, rho grows linearly with a.
	r1, p1 := bg.RhoNuMassive(0.5)
	r2, p2 := bg.RhoNuMassive(1.0)
	if p1/r1 < p2/r2 {
		t.Fatal("equation of state should decrease with a")
	}
	if math.Abs(r2/r1-2.0) > 0.05 {
		t.Fatalf("NR rho should scale as a: ratio %g", r2/r1)
	}
	if p2/r2 > 0.01 {
		t.Fatalf("NR pressure fraction %g too large", p2/r2)
	}
}

func TestMassiveNeutrinoMonotone(t *testing.T) {
	bg, err := NewFlattened(MDM(0.3))
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, a := range []float64{1e-8, 1e-6, 1e-4, 1e-2, 0.1, 1} {
		r, _ := bg.RhoNuMassive(a)
		if r < prev {
			t.Fatalf("rho factor decreased at a=%g", a)
		}
		prev = r
	}
}

func TestMasslessVsMassiveBudget(t *testing.T) {
	// SCDM (3 massless) and MDM (2 massless + 1 massive) must have the same
	// radiation density deep in the radiation era.
	bgS := scdm(t)
	bgM, err := NewFlattened(MDM(1.0))
	if err != nil {
		t.Fatal(err)
	}
	var gs, gm Grho
	a := 1e-9
	bgS.Eval(a, &gs)
	bgM.Eval(a, &gm)
	radS := gs.Nu + gs.HNu
	radM := gm.Nu + gm.HNu
	if math.Abs(radS-radM) > 1e-3*radS {
		t.Fatalf("early neutrino density differs: %g vs %g", radS, radM)
	}
}

func TestDlnF0DlnQ(t *testing.T) {
	bg, err := NewFlattened(MDM(1.0))
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range bg.Q {
		// f0 = 1/(e^q+1): dln f0/dln q = -q e^q/(e^q+1).
		want := -q * math.Exp(q) / (math.Exp(q) + 1.0)
		if math.Abs(bg.DlnF0DlnQ[i]-want) > 1e-12*math.Abs(want) {
			t.Fatalf("dlnf0/dlnq node %d: %g want %g", i, bg.DlnF0DlnQ[i], want)
		}
	}
}
