package cosmology

import (
	"fmt"
	"math"

	"plinger/internal/constants"
	"plinger/internal/specfunc"
	"plinger/internal/spline"
)

// NQDefault is the default number of momentum-grid points for the massive
// neutrino phase-space integration. The paper integrates the full momentum
// dependence of the massive-neutrino distribution with no free-streaming
// approximation; Gauss-Laguerre nodes make that integral spectrally accurate.
const NQDefault = 16

// Grho collects the background source terms of the Einstein equations at a
// given scale factor: each field (except A and HConf) is 8 pi G a^2 rho_i in
// Mpc^-2.
type Grho struct {
	A      float64
	Total  float64 // all species
	C      float64 // cold dark matter
	B      float64 // baryons
	G      float64 // photons
	Nu     float64 // massless neutrinos (all species)
	HNu    float64 // massive neutrinos (all species)
	PHNu3  float64 // 3 * 8 pi G a^2 P of massive neutrinos
	Lambda float64
	HConf  float64 // conformal Hubble rate aH = a'/a in Mpc^-1
}

// Background tabulates the homogeneous cosmology for a parameter set.
type Background struct {
	P Params

	// Grhom is 8 pi G rho_crit / c^2 = 3 H0^2 in Mpc^-2; Grhog and Grhor1
	// are the photon and single-massless-neutrino radiation coefficients
	// (8 pi G a^2 rho = Grho_x / a^2 for radiation).
	Grhom, Grhog, Grhor1 float64

	// MassQ is m_nu c^2/(k T_nu0): the neutrino mass in units of the
	// momentum-grid variable (am = a*MassQ enters the energy
	// eps = sqrt(q^2 + am^2)).
	MassQ float64
	// Q and W are the Gauss-Laguerre momentum nodes and weights such that
	// Integral dq q^2 f0(q) g(q) = sum W_i g(Q_i).
	Q, W []float64
	// DlnF0DlnQ holds dln f0/dln q = -q/(1+e^-q) at the nodes.
	DlnF0DlnQ []float64

	// OmegaHNu is the massive-neutrino density parameter today.
	OmegaHNu float64

	rhoNu *spline.Spline // ln(rho-factor) vs ln(am)
	pNu   *spline.Spline // ln(p-factor) vs ln(am)

	tauOfLnA *spline.Spline
	lnAOfTau *spline.Spline
	tau0     float64
	aMin     float64

	// normalization of the massless momentum integral: Integral q^3 f0 dq.
	q3Norm float64
}

// New builds the background tables. The model must be spatially flat to the
// tolerance required by the (flat-space) perturbation equations; use
// NewFlattened to absorb any residual into OmegaC.
func New(p Params) (*Background, error) {
	bg, err := newBackground(p)
	if err != nil {
		return nil, err
	}
	if k := bg.OmegaK(); math.Abs(k) > 1e-5 {
		return nil, fmt.Errorf("cosmology: model not flat (Omega_K = %g); the linear equations assume K=0 (use NewFlattened)", k)
	}
	return bg, nil
}

// NewFlattened adjusts OmegaC so the model is exactly flat (including the
// radiation and massive-neutrino contributions) and then builds the tables.
func NewFlattened(p Params) (*Background, error) {
	bg, err := newBackground(p)
	if err != nil {
		return nil, err
	}
	adjusted := p
	adjusted.OmegaC += bg.OmegaK()
	if adjusted.OmegaC < 0 {
		return nil, fmt.Errorf("cosmology: flattening requires Omega_c = %g < 0", adjusted.OmegaC)
	}
	return newBackground(adjusted)
}

func newBackground(p Params) (*Background, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	bg := &Background{P: p}
	h0 := constants.HubbleInvMpc(p.H)
	bg.Grhom = 3.0 * h0 * h0
	bg.Grhog = bg.Grhom * p.OmegaGamma()
	bg.Grhor1 = bg.Grhom * constants.NuPerGamma * p.OmegaGamma()

	if p.NNuMassive > 0 {
		q, w, err := specfunc.FermiDiracMomentumGrid(NQDefault)
		if err != nil {
			return nil, err
		}
		bg.Q, bg.W = q, w
		bg.DlnF0DlnQ = make([]float64, len(q))
		for i, qi := range q {
			bg.DlnF0DlnQ[i] = -qi / (1.0 + math.Exp(-qi))
		}
		bg.q3Norm = 0.0
		for i := range q {
			bg.q3Norm += w[i] * q[i]
		}
		bg.MassQ = constants.NeutrinoMassToQ(p.MNuEV, p.TCMB)
		if err := bg.buildNuSplines(); err != nil {
			return nil, err
		}
		bg.OmegaHNu = float64(p.NNuMassive) * constants.NuPerGamma *
			p.OmegaGamma() * bg.rhoNuFactor(bg.MassQ)
	}

	if err := bg.buildTauTable(); err != nil {
		return nil, err
	}
	return bg, nil
}

// OmegaK returns the curvature density parameter implied by the inputs.
func (bg *Background) OmegaK() float64 {
	p := bg.P
	return 1.0 - p.OmegaC - p.OmegaB - p.OmegaLambda -
		p.OmegaGamma() - p.OmegaNuMassless() - bg.OmegaHNu
}

// buildNuSplines tabulates the massive-neutrino energy-density and pressure
// factors (relative to one massless species) against ln(am).
func (bg *Background) buildNuSplines() error {
	const (
		lnAmMin = -12.0
		lnAmMax = 23.0 // am up to ~1e10
		n       = 700
	)
	lnAm := make([]float64, n)
	lnRho := make([]float64, n)
	lnP := make([]float64, n)
	for i := 0; i < n; i++ {
		lnAm[i] = lnAmMin + (lnAmMax-lnAmMin)*float64(i)/float64(n-1)
		am := math.Exp(lnAm[i])
		rho, pr := bg.nuIntegrals(am)
		lnRho[i] = math.Log(rho)
		lnP[i] = math.Log(pr)
	}
	var err error
	bg.rhoNu, err = spline.New(lnAm, lnRho)
	if err != nil {
		return err
	}
	bg.pNu, err = spline.New(lnAm, lnP)
	return err
}

// nuIntegrals evaluates the dimensionless energy and pressure factors by
// direct quadrature: rho = Int q^2 eps f0 / Int q^3 f0 and
// p = Int (q^4/eps) f0 / Int q^3 f0 (so rho -> 1 and p -> 1/3 * 3 = ...
// p is normalized so that p -> 1 as am -> 0, i.e. P = rho/3 for massless).
func (bg *Background) nuIntegrals(am float64) (rho, p float64) {
	var sr, sp float64
	for i := range bg.Q {
		q := bg.Q[i]
		eps := math.Sqrt(q*q + am*am)
		sr += bg.W[i] * eps
		sp += bg.W[i] * q * q / eps
	}
	return sr / bg.q3Norm, sp / bg.q3Norm
}

// rhoNuFactor returns rho_massive / rho_one_massless at dimensionless mass
// am = a m/(k T_nu0).
func (bg *Background) rhoNuFactor(am float64) float64 {
	if bg.rhoNu == nil {
		return 1.0
	}
	if am <= 0 {
		return 1.0
	}
	l := math.Log(am)
	if l < bg.rhoNu.Xmin() {
		return 1.0
	}
	return math.Exp(bg.rhoNu.Eval(l))
}

// pNuFactor returns 3 P_massive / rho_one_massless (so it equals 1 for a
// massless species).
func (bg *Background) pNuFactor(am float64) float64 {
	if bg.pNu == nil {
		return 1.0
	}
	if am <= 0 {
		return 1.0
	}
	l := math.Log(am)
	if l < bg.pNu.Xmin() {
		return 1.0
	}
	return math.Exp(bg.pNu.Eval(l))
}

// RhoNuMassive returns the massive-neutrino (rho, 3P) factors relative to
// one massless species at scale factor a; both are 1 in the relativistic
// limit.
func (bg *Background) RhoNuMassive(a float64) (rhoFac, p3Fac float64) {
	am := a * bg.MassQ
	return bg.rhoNuFactor(am), bg.pNuFactor(am)
}

// Eval fills g with the background densities at scale factor a.
// It performs no allocation and is safe for concurrent use.
func (bg *Background) Eval(a float64, g *Grho) {
	p := bg.P
	g.A = a
	g.C = bg.Grhom * p.OmegaC / a
	g.B = bg.Grhom * p.OmegaB / a
	a2 := a * a
	g.G = bg.Grhog / a2
	g.Nu = bg.Grhor1 * p.NNuMassless / a2
	if p.NNuMassive > 0 {
		am := a * bg.MassQ
		g.HNu = bg.Grhor1 * float64(p.NNuMassive) * bg.rhoNuFactor(am) / a2
		g.PHNu3 = bg.Grhor1 * float64(p.NNuMassive) * bg.pNuFactor(am) / a2
	} else {
		g.HNu, g.PHNu3 = 0, 0
	}
	g.Lambda = bg.Grhom * p.OmegaLambda * a2
	g.Total = g.C + g.B + g.G + g.Nu + g.HNu + g.Lambda
	g.HConf = math.Sqrt(g.Total / 3.0)
}

// HConf returns the conformal Hubble rate a'/a in Mpc^-1. It is the
// single-field fast path of Eval: the total density is accumulated in the
// same order (so the value is bitwise identical), but the per-species
// struct fills and — decisively — the massive-neutrino pressure spline are
// skipped. The tau-table and thermodynamic-history builders evaluate it
// thousands of times per model.
func (bg *Background) HConf(a float64) float64 {
	p := bg.P
	a2 := a * a
	var hnu float64
	if p.NNuMassive > 0 {
		hnu = bg.Grhor1 * float64(p.NNuMassive) * bg.rhoNuFactor(a*bg.MassQ) / a2
	}
	total := bg.Grhom*p.OmegaC/a + bg.Grhom*p.OmegaB/a
	total += bg.Grhog / a2
	total += bg.Grhor1 * p.NNuMassless / a2
	total += hnu
	total += bg.Grhom * p.OmegaLambda * a2
	return math.Sqrt(total / 3.0)
}

// buildTauTable integrates dtau = dln a / (aH) on a dense logarithmic grid.
func (bg *Background) buildTauTable() error {
	const (
		lnAMin = -23.0 // a = 1e-10
		n      = 4097
	)
	bg.aMin = math.Exp(lnAMin)
	lnA := make([]float64, n)
	tau := make([]float64, n)
	f := func(l float64) float64 { return 1.0 / bg.HConf(math.Exp(l)) }
	// Radiation-dominated analytic start: tau(aMin) = 1/(aH)(aMin).
	lnA[0] = lnAMin
	tau[0] = 1.0 / bg.HConf(bg.aMin)
	h := (0.0 - lnAMin) / float64(n-1)
	for i := 1; i < n; i++ {
		l0 := lnAMin + float64(i-1)*h
		l1 := l0 + h
		lnA[i] = l1
		// Simpson within the interval: O(h^5) local error.
		tau[i] = tau[i-1] + h/6.0*(f(l0)+4.0*f(0.5*(l0+l1))+f(l1))
	}
	var err error
	bg.tauOfLnA, err = spline.New(lnA, tau)
	if err != nil {
		return err
	}
	bg.lnAOfTau, err = spline.New(tau, lnA)
	if err != nil {
		return err
	}
	bg.tau0 = tau[n-1]
	return nil
}

// Tau returns the conformal time at scale factor a (Mpc).
func (bg *Background) Tau(a float64) float64 {
	if a < bg.aMin {
		// Deep radiation domination: tau proportional to a.
		return bg.tauOfLnA.Eval(math.Log(bg.aMin)) * a / bg.aMin
	}
	return bg.tauOfLnA.Eval(math.Log(a))
}

// AofTau returns the scale factor at conformal time tau.
func (bg *Background) AofTau(tau float64) float64 {
	return math.Exp(bg.lnAOfTau.Eval(tau))
}

// Tau0 returns the conformal age of the universe (Mpc).
func (bg *Background) Tau0() float64 { return bg.tau0 }

// GrhoPrimeLnA returns d(8 pi G a^2 rho_total)/d ln a, used for the
// conformal Hubble derivative H' = dH/dtau = GrhoPrimeLnA/6 evaluated at a.
func (bg *Background) GrhoPrimeLnA(a float64) float64 {
	p := bg.P
	a2 := a * a
	d := -bg.Grhom*(p.OmegaC+p.OmegaB)/a -
		2.0*bg.Grhog/a2 -
		2.0*bg.Grhor1*p.NNuMassless/a2 +
		2.0*bg.Grhom*p.OmegaLambda*a2
	if p.NNuMassive > 0 {
		am := a * bg.MassQ
		rho := bg.rhoNuFactor(am)
		// d/dlna [rho(am)/a^2] = [dln rho/dln am - 2] * rho/a^2
		var slope float64
		if am > 0 && math.Log(am) > bg.rhoNu.Xmin() {
			slope = bg.rhoNu.Deriv(math.Log(am))
		}
		d += bg.Grhor1 * float64(p.NNuMassive) * (slope - 2.0) * rho / a2
	}
	return d
}

// HConfDot returns dH_conf/dtau at scale factor a.
func (bg *Background) HConfDot(a float64) float64 {
	return bg.GrhoPrimeLnA(a) / 6.0
}

// MatterRadiationEqualityA returns the scale factor where the matter and
// radiation (photons + massless neutrinos) densities are equal.
func (bg *Background) MatterRadiationEqualityA() float64 {
	p := bg.P
	om := p.OmegaC + p.OmegaB
	or := p.OmegaGamma() + p.OmegaNuMassless()
	return or / om
}
