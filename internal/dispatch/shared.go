package dispatch

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"plinger/internal/core"
	"plinger/internal/obs"
)

// SharedPool is the long-lived variant of Pool for serving workloads: the
// worker goroutines start once and then serve every Run call for the life
// of the pool, so a daemon handling many spectrum requests pays the pool
// spin-up once per process instead of once per request, and concurrent
// sweeps interleave their wavenumbers onto the same workers (a natural
// admission batcher — two half-idle sweeps fill each other's gaps instead
// of oversubscribing the machine with two full pools).
//
// Run is safe for concurrent callers; each call gets its own results and
// telemetry. Close drains the workers; Run after Close returns an error.
type SharedPool struct {
	model   *core.Model
	workers int
	// Schedule is the per-run hand-out order (zero value: largest-first).
	// Set it before the pool is shared between goroutines.
	Schedule Schedule
	// AdaptLMax reduces the hierarchy cutoff per wavenumber via PerKLMax.
	AdaptLMax bool

	jobs chan sharedJob
	quit chan struct{}

	closeOnce sync.Once
}

// sharedJob is one assignment: the run it belongs to and a contiguous
// chunk of schedule-order indices into its grid (see handOutChunks).
type sharedJob struct {
	run  *sharedRun
	idxs []int
}

// sharedRun is the per-Run state the workers report into. Timings live in
// one padded slot per worker rank, so workers book completed modes without
// a lock and without false sharing; only the first error takes the mutex.
type sharedRun struct {
	ks      []float64
	mode    core.Params
	perk    []int
	results []*core.Result
	// blocks, when non-nil, switches the run to batched hand-out: job
	// indices name [lo, hi) grid-index blocks instead of single modes.
	blocks [][2]int

	ctx    context.Context
	cancel context.CancelFunc

	timings []paddedTiming // indexed by rank-1

	mu  sync.Mutex
	err error
	wg  sync.WaitGroup
}

// fail records the first error and cancels the rest of the run.
func (r *sharedRun) fail(err error) {
	r.mu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.mu.Unlock()
	r.cancel()
}

// record books one completed mode against the worker that ran it.
func (r *sharedRun) record(rank int, res *core.Result) {
	t := &r.timings[rank-1].WorkerTiming
	t.Rank = rank
	t.Modes++
	t.Seconds += res.Seconds
	t.Flops += res.Flops
	observeMode(rank, res.Seconds)
}

// NewSharedPool starts a persistent pool of workers (<= 0: GOMAXPROCS)
// evolving modes of the given model.
func NewSharedPool(model *core.Model, workers int) *SharedPool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &SharedPool{
		model:   model,
		workers: workers,
		jobs:    make(chan sharedJob),
		quit:    make(chan struct{}),
	}
	for w := 0; w < workers; w++ {
		go p.worker(w + 1)
	}
	return p
}

// Workers returns the pool size.
func (p *SharedPool) Workers() int { return p.workers }

func (p *SharedPool) worker(rank int) {
	// The worker's arena lives as long as the pool: every mode of every
	// run this goroutine serves reuses one set of evolution buffers.
	sc := core.NewScratch()
	for {
		var job sharedJob
		select {
		case job = <-p.jobs:
		case <-p.quit:
			return
		}
		if !p.serveJob(rank, job, sc) {
			// The panic may have left the arena's buffers half-written;
			// retire it so later runs start from clean state.
			sc = core.NewScratch()
		}
		job.run.wg.Done()
	}
}

// serveJob runs one assignment; it reports false when the job panicked, in
// which case the run has been failed (with the worker rank and grid index)
// and the worker goroutine — which must outlive any single run — carries on.
func (p *SharedPool) serveJob(rank int, job sharedJob, sc *core.Scratch) (ok bool) {
	run := job.run
	cur := -1
	defer func() {
		if r := recover(); r != nil {
			run.fail(fmt.Errorf("dispatch: shared worker %d panicked on mode index %d: %v", rank, cur, r))
			ok = false
		}
	}()
	ok = true
	for _, idx := range job.idxs {
		if run.ctx.Err() != nil {
			break
		}
		if run.blocks != nil {
			lo, hi := run.blocks[idx][0], run.blocks[idx][1]
			cur = lo
			var perkSub []int
			if run.perk != nil {
				perkSub = run.perk[lo:hi]
			}
			rs, err := p.model.EvolveBatchWith(run.ks[lo:hi], run.mode, perkSub, sc)
			if err != nil {
				run.fail(fmt.Errorf("dispatch: batch k=%g..%g: %w", run.ks[lo], run.ks[hi-1], err))
				break
			}
			for j, r := range rs {
				run.results[lo+j] = r
				run.record(rank, r)
			}
			continue
		}
		cur = idx
		pm := run.mode
		pm.K = run.ks[idx]
		if run.perk != nil {
			pm.LMax = run.perk[idx]
		}
		res, err := p.model.EvolveWith(pm, sc)
		if err != nil {
			run.fail(fmt.Errorf("dispatch: k=%g: %w", pm.K, err))
			break
		}
		run.results[idx] = res
		run.record(rank, res)
	}
	return ok
}

// Run implements Dispatcher: it enqueues the wavenumbers onto the shared
// workers (in Schedule order, batched into contiguous chunks — see
// handOutChunks) and waits for the sweep to finish. Multiple concurrent
// Run calls interleave fairly at chunk granularity.
func (p *SharedPool) Run(ctx context.Context, ks []float64, mode core.Params) (*Sweep, *RunStats, error) {
	if p.model == nil {
		return nil, nil, fmt.Errorf("dispatch: shared pool has no model")
	}
	if len(ks) == 0 {
		return nil, nil, fmt.Errorf("dispatch: empty wavenumber grid")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-p.quit:
		return nil, nil, fmt.Errorf("dispatch: shared pool is closed")
	default:
	}

	tr := obs.TraceFrom(ctx)
	tau0 := sweepTau0(p.model, mode)
	spTables := tr.Start("eval_tables")
	prebuildEvalTables(p.model, mode)
	spTables.End()
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	run := &sharedRun{
		ks:      ks,
		mode:    mode,
		perk:    perKLMaxTable(ks, tau0, mode.LMax, p.AdaptLMax),
		results: make([]*core.Result, len(ks)),
		ctx:     rctx,
		cancel:  cancel,
		timings: make([]paddedTiming, p.workers),
	}
	order := p.Schedule.Order(ks)
	if mode.KBatch > 1 && len(ks) > 1 {
		run.blocks = batchBlocks(len(ks), mode.KBatch)
		order = blockOrder(p.Schedule, ks, run.blocks)
	}
	chunks := handOutChunks(order, p.workers)

	spModes := tr.Start("modes")
	start := time.Now()
	run.wg.Add(len(chunks))
	enqueued, closed := 0, false
	for _, c := range chunks {
		select {
		case p.jobs <- sharedJob{run: run, idxs: c}:
			enqueued++
		case <-rctx.Done():
		case <-p.quit:
			closed = true
		}
		if closed || rctx.Err() != nil {
			break
		}
	}
	// Balance the Add for chunks never handed to a worker.
	for n := enqueued; n < len(chunks); n++ {
		run.wg.Done()
	}
	run.wg.Wait()
	spModes.End()

	run.mu.Lock()
	err := run.err
	run.mu.Unlock()
	if err != nil {
		return nil, nil, err
	}
	if closed {
		return nil, nil, fmt.Errorf("dispatch: shared pool closed during run")
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}

	st := &RunStats{
		Backend:   "pool/shared",
		Schedule:  p.Schedule,
		NWorkers:  p.workers,
		NProc:     p.workers,
		Wallclock: time.Since(start).Seconds(),
	}
	for i := range run.timings {
		if t := run.timings[i].WorkerTiming; t.Modes > 0 {
			st.Workers = append(st.Workers, t)
		}
	}
	st.finalize()
	recordRunStats(st)
	sw := &Sweep{
		KValues: append([]float64(nil), ks...),
		Results: run.results,
		Tau0:    tau0,
	}
	return sw, st, nil
}

// Close stops the workers. In-flight Run calls finish modes already handed
// to a worker and then return an error; Close does not wait for them.
func (p *SharedPool) Close() {
	p.closeOnce.Do(func() { close(p.quit) })
}
