package dispatch

import (
	"sync/atomic"
	"testing"
)

// TestParallelFor: every index runs exactly once, for worker counts below,
// at and above the item count, including the serial fast path.
func TestParallelFor(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		const n = 137
		var counts [n]int32
		ParallelFor(workers, n, func(i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
	ParallelFor(4, 0, func(int) { t.Fatal("body called for n=0") })
}

// TestPoolPrebuild: the hook must have completed by the time Run returns.
func TestPoolPrebuild(t *testing.T) {
	m := model(t)
	var done atomic.Bool
	p := &Pool{Model: m, Workers: 2, Prebuild: func() { done.Store(true) }}
	if _, _, err := p.Run(nil, testKs(), smallMode()); err != nil {
		t.Fatal(err)
	}
	if !done.Load() {
		t.Fatal("pool returned before the prebuild hook finished")
	}
	d, cleanup, err := NewMP(m, "chan", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	done.Store(false)
	d.Prebuild = func() { done.Store(true) }
	if _, _, err := d.Run(nil, testKs(), smallMode()); err != nil {
		t.Fatal(err)
	}
	if !done.Load() {
		t.Fatal("mp returned before the prebuild hook finished")
	}
}
