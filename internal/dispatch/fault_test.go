package dispatch

import (
	"context"
	"net"
	"reflect"
	"strings"
	"testing"
	"time"

	"plinger/internal/core"
	"plinger/internal/mp"
	"plinger/internal/mp/chanmp"
	"plinger/internal/mp/faultmp"
	"plinger/internal/mp/fifomp"
	"plinger/internal/mp/tcpmp"
)

// chaosMode keeps the recovery sweeps fast while still exercising the full
// three-message result protocol (sources ride on tag 7, so reassignment
// must preserve them bitwise too).
func chaosMode() core.Params {
	return core.Params{LMax: 10, Gauge: core.Synchronous, TauEnd: 300, KeepSources: true}
}

// chaosDeadline bounds each assignment round trip in the recovery tests:
// generous against CI scheduling noise (a healthy mode takes milliseconds),
// short enough that a hung worker costs one beat, not the test budget.
const chaosDeadline = 800 * time.Millisecond

// chaosWorld builds an n-endpoint world of the named transport so the tests
// can wrap individual worker endpoints in faultmp before handing them to MP.
func chaosWorld(t *testing.T, transport string, n int) ([]mp.Endpoint, func()) {
	t.Helper()
	closeAll := func(eps []mp.Endpoint) func() {
		return func() {
			for _, ep := range eps {
				ep.Close()
			}
		}
	}
	switch transport {
	case "chan":
		_, eps, err := chanmp.New(n)
		if err != nil {
			t.Fatal(err)
		}
		return eps, closeAll(eps)
	case "fifo":
		_, eps, err := fifomp.New(n)
		if err != nil {
			t.Fatal(err)
		}
		return eps, closeAll(eps)
	case "tcp":
		hub, err := tcpmp.NewHub("127.0.0.1:0", n)
		if err != nil {
			t.Fatal(err)
		}
		eps, _, err := connectAll(hub.Addr(), n, 10*time.Second)
		if err != nil {
			hub.Close()
			t.Fatal(err)
		}
		closeEps := closeAll(eps)
		return eps, func() { closeEps(); hub.Close() }
	}
	t.Fatalf("unknown transport %q", transport)
	return nil, nil
}

// checkRecovered asserts the fault-tolerance acceptance criterion: a
// recovered sweep is bitwise-identical to the undisturbed reference —
// sources included — and no mode is lost or double-counted.
func checkRecovered(t *testing.T, label string, ref, sw *Sweep, st *RunStats, nModes int) {
	t.Helper()
	for i := range ref.Results {
		sameResult(t, label, ref.Results[i], sw.Results[i])
		if !reflect.DeepEqual(ref.Results[i].Sources, sw.Results[i].Sources) {
			t.Fatalf("%s: sources of mode %d differ from the undisturbed reference", label, i)
		}
	}
	if st.Modes != nModes {
		t.Fatalf("%s: %d modes in stats, want %d", label, st.Modes, nModes)
	}
	modes := 0
	for _, w := range st.Workers {
		modes += w.Modes
	}
	if modes != nModes {
		t.Fatalf("%s: worker timings credit %d modes, want %d (duplicates must be first-wins)", label, modes, nModes)
	}
}

// TestChaosMatrix is the tentpole acceptance test: one worker per run is
// scripted to crash mid-assignment, hang, or randomly lose messages —
// across every transport — and the sweep must still complete with results
// bitwise-identical to an undisturbed run.
func TestChaosMatrix(t *testing.T) {
	m := model(t)
	ks := testKs()
	mode := chaosMode()
	ref, _, err := (&Pool{Model: m, Workers: 2}).Run(context.Background(), ks, mode)
	if err != nil {
		t.Fatal(err)
	}
	faults := []struct {
		name string
		opts faultmp.Options
		// orphan: the fault strikes with a block in flight, so recovery must
		// reassign or locally recompute it. A drop-faulted worker may instead
		// lose its start-up request and die having never held work.
		orphan bool
	}{
		// Crash: the assignment is delivered, then the worker dies with the
		// block in flight. Detected out-of-band or by transport errors.
		{"kill", faultmp.Options{Seed: 11, CrashAfterAssigns: 1}, true},
		// Hang: the worker wedges silently after its first assignment. Only
		// the deadline can see this one.
		{"hang", faultmp.Options{Seed: 12, HangAfterAssigns: 1}, true},
		// Lossy link: half the worker's messages vanish; the master sees
		// protocol violations or silence and fails the worker.
		{"drop", faultmp.Options{Seed: 13, DropSend: 0.5}, false},
	}
	for _, tr := range []string{"chan", "fifo", "tcp"} {
		for _, f := range faults {
			label := tr + "/" + f.name
			eps, cleanup := chaosWorld(t, tr, 4)
			eps[1] = faultmp.Wrap(eps[1], f.opts)
			d := &MP{Model: m, Endpoints: eps, Transport: tr, AssignDeadline: chaosDeadline}
			sw, st, err := d.Run(context.Background(), ks, mode)
			cleanup()
			if err != nil {
				t.Fatalf("%s: recovery failed: %v", label, err)
			}
			if st.WorkerFailures == 0 {
				t.Fatalf("%s: fault injected but no worker failure recorded", label)
			}
			if f.orphan && st.Reassignments+st.LocalModes == 0 {
				t.Fatalf("%s: failed worker's block neither reassigned nor recomputed: %+v", label, st)
			}
			if f.name == "hang" && st.DeadlineMisses == 0 {
				t.Fatalf("%s: hung worker recovered without a deadline miss", label)
			}
			checkRecovered(t, label, ref, sw, st, len(ks))
		}
	}
}

// Killing every worker but one mid-sweep must degrade to a slower but
// bitwise-identical run on the survivor.
func TestChaosKillAllButOne(t *testing.T) {
	m := model(t)
	ks := testKs()
	mode := chaosMode()
	ref, _, err := (&Pool{Model: m, Workers: 2}).Run(context.Background(), ks, mode)
	if err != nil {
		t.Fatal(err)
	}
	eps, cleanup := chaosWorld(t, "chan", 4)
	defer cleanup()
	eps[1] = faultmp.Wrap(eps[1], faultmp.Options{Seed: 21, CrashAfterAssigns: 1})
	eps[2] = faultmp.Wrap(eps[2], faultmp.Options{Seed: 22, CrashAfterAssigns: 1})
	d := &MP{Model: m, Endpoints: eps, Transport: "chan", AssignDeadline: chaosDeadline}
	sw, st, err := d.Run(context.Background(), ks, mode)
	if err != nil {
		t.Fatal(err)
	}
	if st.WorkerFailures != 2 {
		t.Fatalf("worker failures %d, want 2", st.WorkerFailures)
	}
	checkRecovered(t, "kill-all-but-one", ref, sw, st, len(ks))
}

// With every worker lost the master must finish the sweep itself — the
// degradation path the paper's "this has no fault tolerance" protocol
// lacked — and still match the undisturbed run bitwise.
func TestChaosAllWorkersLost(t *testing.T) {
	m := model(t)
	ks := testKs()
	mode := chaosMode()
	ref, _, err := (&Pool{Model: m, Workers: 2}).Run(context.Background(), ks, mode)
	if err != nil {
		t.Fatal(err)
	}
	eps, cleanup := chaosWorld(t, "chan", 3)
	defer cleanup()
	// Both workers die on their first result send: no worker result ever
	// reaches the master.
	eps[1] = faultmp.Wrap(eps[1], faultmp.Options{Seed: 31, CrashAfterAssigns: 1})
	eps[2] = faultmp.Wrap(eps[2], faultmp.Options{Seed: 32, CrashAfterAssigns: 1})
	d := &MP{Model: m, Endpoints: eps, Transport: "chan", AssignDeadline: chaosDeadline}
	sw, st, err := d.Run(context.Background(), ks, mode)
	if err != nil {
		t.Fatal(err)
	}
	if st.WorkerFailures != 2 {
		t.Fatalf("worker failures %d, want 2", st.WorkerFailures)
	}
	if st.LocalModes != len(ks) {
		t.Fatalf("master recomputed %d modes locally, want all %d", st.LocalModes, len(ks))
	}
	master := false
	for _, w := range st.Workers {
		if w.Rank == 0 && w.Modes == len(ks) {
			master = true
		}
	}
	if !master {
		t.Fatalf("master's local recompute missing from the timings: %+v", st.Workers)
	}
	checkRecovered(t, "all-workers-lost", ref, sw, st, len(ks))
}

// A context deadline on Run arms the fault-tolerant master even without an
// explicit AssignDeadline: the same crash that aborts a plain run is
// recovered under a deadline-carrying context.
func TestChaosContextDeadlineArmsRecovery(t *testing.T) {
	m := model(t)
	ks := testKs()
	mode := chaosMode()
	ref, _, err := (&Pool{Model: m, Workers: 2}).Run(context.Background(), ks, mode)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	eps, cleanup := chaosWorld(t, "chan", 3)
	defer cleanup()
	eps[1] = faultmp.Wrap(eps[1], faultmp.Options{Seed: 41, CrashAfterAssigns: 1})
	d := &MP{Model: m, Endpoints: eps, Transport: "chan"}
	sw, st, err := d.Run(ctx, ks, mode)
	if err != nil {
		t.Fatalf("context deadline did not arm recovery: %v", err)
	}
	if st.WorkerFailures != 1 {
		t.Fatalf("worker failures %d, want 1", st.WorkerFailures)
	}
	checkRecovered(t, "ctx-deadline", ref, sw, st, len(ks))
}

// A lockstep batch block must be re-run WHOLE on reassignment — its
// trajectories depend on every member — so a recovered batched sweep stays
// bitwise-identical at fixed KBatch.
func TestChaosBatchedBlockReassignment(t *testing.T) {
	m := model(t)
	ks := testKs()
	mode := chaosMode()
	mode.KBatch = 3
	ref, _, err := (&Pool{Model: m, Workers: 2}).Run(context.Background(), ks, mode)
	if err != nil {
		t.Fatal(err)
	}
	eps, cleanup := chaosWorld(t, "chan", 3)
	defer cleanup()
	eps[1] = faultmp.Wrap(eps[1], faultmp.Options{Seed: 51, CrashAfterAssigns: 1})
	d := &MP{Model: m, Endpoints: eps, Transport: "chan", AssignDeadline: chaosDeadline}
	sw, st, err := d.Run(context.Background(), ks, mode)
	if err != nil {
		t.Fatal(err)
	}
	if st.WorkerFailures != 1 {
		t.Fatalf("worker failures %d, want 1", st.WorkerFailures)
	}
	checkRecovered(t, "batched-reassign", ref, sw, st, len(ks))
}

// connectAll with a rendezvous timeout must fail fast when a worker never
// joins the world, instead of blocking NewMP forever (the old behavior).
func TestConnectAllHandshakeTimeout(t *testing.T) {
	hub, err := tcpmp.NewHub("127.0.0.1:0", 3)
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	start := time.Now()
	// Only 2 of the hub's 3 expected processes dial in: the rank handshake
	// can never complete.
	_, _, err = connectAll(hub.Addr(), 2, 400*time.Millisecond)
	if err == nil {
		t.Fatal("partial rendezvous reported success")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("rendezvous timeout took %v, want well under the old forever", elapsed)
	}
}

// Dial failures inside the rendezvous budget are retried with backoff, so a
// hub that comes up moments after its workers still forms a world.
func TestConnectAllRetriesDial(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // reserve the port, then free it for the late hub
	hubCh := make(chan *tcpmp.Hub, 1)
	hubErr := make(chan error, 1)
	go func() {
		time.Sleep(150 * time.Millisecond)
		hub, err := tcpmp.NewHub(addr, 2)
		if err != nil {
			hubErr <- err
			return
		}
		hubCh <- hub
	}()
	eps, retries, err := connectAll(addr, 2, 5*time.Second)
	if err != nil {
		select {
		case herr := <-hubErr:
			t.Fatalf("late hub failed to start (port reuse race): %v", herr)
		default:
		}
		t.Fatal(err)
	}
	if retries == 0 {
		t.Fatal("hub started late but no dial was retried")
	}
	for _, ep := range eps {
		ep.Close()
	}
	(<-hubCh).Close()
}

// Worker panics must surface as per-worker errors naming the rank and mode,
// not crash the process: the pool sweeps and the non-fault-tolerant MP run
// abort with the panic as root cause.
func TestWorkerPanicRecovery(t *testing.T) {
	broken := core.NewModel(nil, nil) // every evolution panics on the nil background
	ks := testKs()[:3]
	mode := smallMode()
	if _, _, err := (&Pool{Model: broken, Workers: 2}).Run(context.Background(), ks, mode); err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("pool worker panic: %v", err)
	}
	sp := NewSharedPool(broken, 2)
	_, _, err := sp.Run(context.Background(), ks, mode)
	sp.Close()
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("shared pool worker panic: %v", err)
	}
	eps, cleanup := chaosWorld(t, "chan", 3)
	defer cleanup()
	d := &MP{Model: broken, Endpoints: eps, Transport: "chan"}
	if _, _, err := d.Run(context.Background(), ks, mode); err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("mp worker panic: %v", err)
	}
}

// The master's own degradation path carries the same guard: when the local
// recompute panics, the run fails with an error instead of the process.
func TestLocalRecomputePanicGuard(t *testing.T) {
	broken := core.NewModel(nil, nil)
	eps, cleanup := chaosWorld(t, "chan", 2)
	defer cleanup()
	d := &MP{Model: broken, Endpoints: eps, Transport: "chan", AssignDeadline: 2 * time.Second}
	_, _, err := d.Run(context.Background(), testKs()[:2], smallMode())
	if err == nil || !strings.Contains(err.Error(), "local recompute") {
		t.Fatalf("local recompute panic: %v", err)
	}
}
