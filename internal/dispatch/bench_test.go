package dispatch

import (
	"context"
	"testing"

	"plinger/internal/core"
)

// BenchmarkPoolSchedule is the Section 5.2 ablation on the pool backend:
// on a skewed k grid (many cheap small-k modes, a few expensive large-k
// ones) handing the largest wavenumbers out first shrinks the end-of-run
// idle tail, and the per-k adaptive hierarchy removes work outright —
// largest-first + adaptive must beat input-order wall clock.
func BenchmarkPoolSchedule(b *testing.B) {
	m := model(b)
	var ks []float64
	for i := 0; i < 12; i++ {
		ks = append(ks, 0.001+0.001*float64(i))
	}
	ks = append(ks, 0.06, 0.08, 0.1)
	mode := core.Params{LMax: 300, Gauge: core.Synchronous, TauEnd: 300}
	for _, cfg := range []struct {
		name  string
		sched Schedule
		adapt bool
	}{
		{"input-order", InputOrder, false},
		{"largest-first", LargestFirst, false},
		{"largest-first+adaptive", LargestFirst, true},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := &Pool{Model: m, Workers: 4, Schedule: cfg.sched, AdaptLMax: cfg.adapt}
				_, st, err := p.Run(context.Background(), ks, mode)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(100*st.Efficiency, "eff%")
				b.ReportMetric(st.Wallclock*1e3, "ms-wall")
			}
		})
	}
}
