package dispatch

import (
	"context"
	"sync"
	"testing"
)

// TestSharedPoolMatchesPool asserts the long-lived pool reproduces the
// per-run Pool bitwise (the Dispatcher determinism contract), across two
// consecutive sweeps on the same workers.
func TestSharedPoolMatchesPool(t *testing.T) {
	m := model(t)
	ks := testKs()
	mode := smallMode()

	ref, _, err := (&Pool{Model: m, Workers: 2}).Run(context.Background(), ks, mode)
	if err != nil {
		t.Fatal(err)
	}

	p := NewSharedPool(m, 2)
	defer p.Close()
	for pass := 0; pass < 2; pass++ {
		sw, st, err := p.Run(context.Background(), ks, mode)
		if err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		if st.Backend != "pool/shared" || st.Modes != len(ks) {
			t.Fatalf("pass %d: bad stats %+v", pass, st)
		}
		for i := range ks {
			sameResult(t, "shared vs pool", sw.Results[i], ref.Results[i])
		}
	}
}

// TestSharedPoolConcurrentRuns interleaves several sweeps on one pool and
// checks each gets its own correct, complete result set.
func TestSharedPoolConcurrentRuns(t *testing.T) {
	m := model(t)
	ks := testKs()
	mode := smallMode()

	ref, _, err := (&Pool{Model: m, Workers: 2}).Run(context.Background(), ks, mode)
	if err != nil {
		t.Fatal(err)
	}

	p := NewSharedPool(m, 2)
	defer p.Close()
	const runs = 4
	var wg sync.WaitGroup
	errs := make([]error, runs)
	sweeps := make([]*Sweep, runs)
	for r := 0; r < runs; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			sweeps[r], _, errs[r] = p.Run(context.Background(), ks, mode)
		}(r)
	}
	wg.Wait()
	for r := 0; r < runs; r++ {
		if errs[r] != nil {
			t.Fatalf("run %d: %v", r, errs[r])
		}
		for i := range ks {
			sameResult(t, "concurrent shared run", sweeps[r].Results[i], ref.Results[i])
		}
	}
}

func TestSharedPoolClose(t *testing.T) {
	m := model(t)
	p := NewSharedPool(m, 1)
	p.Close()
	p.Close() // idempotent
	if _, _, err := p.Run(context.Background(), testKs(), smallMode()); err == nil {
		t.Fatal("Run on a closed pool succeeded")
	}
}

func TestSharedPoolPropagatesErrors(t *testing.T) {
	m := model(t)
	p := NewSharedPool(m, 2)
	defer p.Close()
	ks := []float64{0.01, -1.0, 0.02} // negative k fails validation in Evolve
	if _, _, err := p.Run(context.Background(), ks, smallMode()); err == nil {
		t.Fatal("bad wavenumber did not fail the run")
	}
	// The pool must still be usable afterwards.
	if _, _, err := p.Run(context.Background(), testKs(), smallMode()); err != nil {
		t.Fatalf("pool unusable after failed run: %v", err)
	}
}
