// Package dispatch is the parallel-execution subsystem: every fan-out over
// independent k modes in the repository runs through a Dispatcher. The
// paper's central observation (Section 3) is that the per-k linear GR
// computation parallelizes embarrassingly and that three concerns are
// separable:
//
//   - scheduling — which wavenumber is handed out next (the paper's
//     largest-k-first trick, Section 5.2), expressed by Schedule;
//   - transport — shared memory versus message passing over PVM/MPI/MPL,
//     expressed by the two Dispatcher backends, Pool (shared-memory worker
//     pool, the Cray Autotasking analogue) and MP (the Appendix A
//     master/worker protocol over any mp.Endpoint transport);
//   - accounting — wallclock, per-worker busy time, parallel efficiency and
//     flop rate (Figure 1 / Section 5.1), expressed by RunStats and
//     populated identically by both backends.
//
// Higher layers (spectra sweeps, the facade's ComputeSpectrum, MatterPower
// and RunParallel, the cmd/ drivers) choose a Dispatcher and never touch
// goroutines or endpoints themselves.
package dispatch

import (
	"context"

	"plinger/internal/core"
	runner "plinger/internal/plinger"
)

// Dispatcher evolves every wavenumber in ks with the template parameters
// mode (mode.K is overwritten per assignment) and returns the results in
// input order together with the run telemetry. Implementations must be
// deterministic: the Results depend only on (ks, mode), never on worker
// count, schedule or transport.
type Dispatcher interface {
	Run(ctx context.Context, ks []float64, mode core.Params) (*Sweep, *RunStats, error)
}

// Sweep is the raw outcome of a dispatched run: one result per wavenumber,
// ordered like ks. The science post-processing (C_l assembly, transfer
// functions) lives in package spectra, which wraps this type.
type Sweep struct {
	KValues []float64
	Results []*core.Result
	// Tau0 is the final conformal time of the sweep (the conformal age
	// unless mode.TauEnd cut the evolution short).
	Tau0 float64
}

// PerKLMax returns the hierarchy cutoff actually needed for wavenumber k:
// moments beyond ~ k tau_0 receive no power, so small k can run with far
// smaller hierarchies. This is why the paper's per-mode messages vary from
// 150 bytes to 80 kbyte and why CPU time grows with k. Both backends use it
// when adaptive hierarchies are enabled.
func PerKLMax(k, tau0 float64, lmaxGlobal int) int {
	l := int(1.5*k*tau0) + 60
	if l > lmaxGlobal {
		return lmaxGlobal
	}
	if l < 8 {
		l = 8
	}
	return l
}

// StartPrebuild launches a precomputation concurrently with whatever the
// caller does next and returns the wait function to defer — the caller-side
// equivalent of the Pool/MP Prebuild hook, for dispatchers (like the shared
// pool) whose hooks cannot be set per run.
func StartPrebuild(fn func()) func() { return runPrebuild(fn) }

// runPrebuild launches a backend's prebuild hook concurrently with the
// sweep and returns the wait function the backend defers: whichever of the
// sweep and the precomputation finishes first, Run returns only when both
// are done.
func runPrebuild(fn func()) func() {
	if fn == nil {
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	return func() { <-done }
}

// sweepTau0 returns the final conformal time of a run.
func sweepTau0(model *core.Model, mode core.Params) float64 {
	if mode.TauEnd > 0 {
		return mode.TauEnd
	}
	return model.BG.Tau0()
}

// Chunked hand-out: on fine wavenumber grids the per-mode channel
// rendezvous between the feeder and the workers becomes measurable next to
// the (cheap, arena-backed) mode evolutions, so both pool backends hand out
// contiguous runs of the schedule order instead of single indices. The
// chunk size splits every worker's fair share chunkDivisor ways — small
// enough that the largest-first end-of-run tail still balances, large
// enough that a 5000-mode sweep does ~400 channel operations instead of
// 5000 — and is capped so pathological grids cannot serialize a worker.
// Chunking is pure hand-out mechanics: the schedule order, the results and
// the telemetry are identical to per-mode hand-out.
const (
	chunkDivisor = 8
	maxChunk     = 16
)

// handOutChunks splits a schedule order into the contiguous chunks the
// feeder sends; every chunk is a subslice, so no copying happens.
func handOutChunks(order []int, workers int) [][]int {
	n := len(order)
	size := n / (workers * chunkDivisor)
	if size < 1 {
		size = 1
	}
	if size > maxChunk {
		size = maxChunk
	}
	chunks := make([][]int, 0, (n+size-1)/size)
	for lo := 0; lo < n; lo += size {
		hi := min(lo+size, n)
		chunks = append(chunks, order[lo:hi:hi])
	}
	return chunks
}

// Batched hand-out: when mode.KBatch > 1 the unit of work is no longer a
// single wavenumber but a lockstep block of KBatch neighbouring grid
// indices (core.EvolveBatchWith). The decomposition is the one canonical
// one — runner.BatchBlocks — shared with the message-passing master, so
// every backend evolves bitwise-identical batches and the results depend
// only on (ks, mode), exactly as the Dispatcher contract demands.

// batchBlocks splits an nk-point grid into consecutive [lo, hi) index
// blocks of size b (the last possibly short).
func batchBlocks(nk, b int) [][2]int { return runner.BatchBlocks(nk, b) }

// blockOrder schedules blocks the way Schedule schedules wavenumbers, by
// representing each block with its largest member: largest-first then
// still retires the most expensive batches first (the block's cost is set
// by its largest k, which drives the unified hierarchy cutoff and the
// tight-coupling window).
func blockOrder(s Schedule, ks []float64, blocks [][2]int) []int {
	reps := make([]float64, len(blocks))
	for j, blk := range blocks {
		rep := ks[blk[0]]
		for _, k := range ks[blk[0]+1 : blk[1]] {
			if k > rep {
				rep = k
			}
		}
		reps[j] = rep
	}
	return s.Order(reps)
}

// perKLMaxTable precomputes the per-index hierarchy cutoffs for a run, or
// returns nil when the global cutoff applies to every mode.
func perKLMaxTable(ks []float64, tau0 float64, lmaxGlobal int, adapt bool) []int {
	if !adapt {
		return nil
	}
	t := make([]int, len(ks))
	for i, k := range ks {
		t[i] = PerKLMax(k, tau0, lmaxGlobal)
	}
	return t
}
