package dispatch

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"plinger/internal/core"
	"plinger/internal/obs"
)

// Pool is the shared-memory backend: a fixed set of worker goroutines
// pulling wavenumbers from a scheduled queue, the analogue of the Cray
// Autotasking parallelism of Section 3. It honours the same scheduling
// policies as the message-passing backend (the queue is fed in Schedule
// order, so largest-first still shrinks the end-of-run idle tail on a
// skewed grid) and the same per-k adaptive hierarchy cutoff.
type Pool struct {
	Model *core.Model
	// Workers bounds the goroutine pool (<= 0: GOMAXPROCS).
	Workers int
	// Schedule is the hand-out order (zero value: largest-first).
	Schedule Schedule
	// AdaptLMax reduces the hierarchy cutoff per wavenumber via PerKLMax,
	// with mode.LMax as the global cap.
	AdaptLMax bool
	// Prebuild, when set, runs once concurrently with the sweep — the hook
	// the fast C_l engine uses to warm the spherical-Bessel table cache
	// while the ODE evolutions are still going. Run waits for it before
	// returning.
	Prebuild func()
}

// NewPool returns a pool dispatcher with the paper's default schedule.
func NewPool(model *core.Model, workers int) *Pool {
	return &Pool{Model: model, Workers: workers}
}

// Run implements Dispatcher.
func (p *Pool) Run(ctx context.Context, ks []float64, mode core.Params) (*Sweep, *RunStats, error) {
	if p.Model == nil {
		return nil, nil, fmt.Errorf("dispatch: pool has no model")
	}
	if len(ks) == 0 {
		return nil, nil, fmt.Errorf("dispatch: empty wavenumber grid")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	tau0 := sweepTau0(p.Model, mode)
	perk := perKLMaxTable(ks, tau0, mode.LMax, p.AdaptLMax)
	order := p.Schedule.Order(ks)
	// Batched hand-out: the schedule orders blocks instead of single
	// modes, and every queue index below names a block.
	var blocks [][2]int
	if mode.KBatch > 1 && len(ks) > 1 {
		blocks = batchBlocks(len(ks), mode.KBatch)
		order = blockOrder(p.Schedule, ks, blocks)
	}

	tr := obs.TraceFrom(ctx)
	spTables := tr.Start("eval_tables")
	prebuildEvalTables(p.Model, mode)
	spTables.End()
	defer runPrebuild(p.Prebuild)()

	spModes := tr.Start("modes")
	start := time.Now()
	results := make([]*core.Result, len(ks))
	timings := make([]paddedTiming, workers)
	chunks := make(chan []int)
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// The worker's arena: every mode this goroutine evolves
			// reuses one set of state buffers and one integrator.
			sc := core.NewScratch()
			t := &timings[w].WorkerTiming
			t.Rank = w + 1
			cur := -1
			// A panicking evolution must fail the sweep like any other
			// per-mode error — with the worker rank and grid index — not
			// kill the process.
			defer func() {
				if r := recover(); r != nil {
					errs <- fmt.Errorf("dispatch: pool worker %d panicked on mode index %d: %v", w+1, cur, r)
				}
			}()
			for chunk := range chunks {
				for _, i := range chunk {
					if blocks != nil {
						lo, hi := blocks[i][0], blocks[i][1]
						cur = lo
						var perkSub []int
						if perk != nil {
							perkSub = perk[lo:hi]
						}
						rs, err := p.Model.EvolveBatchWith(ks[lo:hi], mode, perkSub, sc)
						if err != nil {
							errs <- fmt.Errorf("dispatch: batch k=%g..%g: %w", ks[lo], ks[hi-1], err)
							return
						}
						for j, r := range rs {
							results[lo+j] = r
							t.Modes++
							t.Seconds += r.Seconds
							t.Flops += r.Flops
							observeMode(t.Rank, r.Seconds)
						}
						continue
					}
					cur = i
					pm := mode
					pm.K = ks[i]
					if perk != nil {
						pm.LMax = perk[i]
					}
					r, err := p.Model.EvolveWith(pm, sc)
					if err != nil {
						errs <- fmt.Errorf("dispatch: k=%g: %w", ks[i], err)
						return
					}
					results[i] = r
					t.Modes++
					t.Seconds += r.Seconds
					t.Flops += r.Flops
					observeMode(t.Rank, r.Seconds)
				}
			}
		}(w)
	}
	for _, c := range handOutChunks(order, workers) {
		select {
		case err := <-errs:
			close(chunks)
			wg.Wait()
			return nil, nil, err
		case <-ctx.Done():
			close(chunks)
			wg.Wait()
			return nil, nil, ctx.Err()
		case chunks <- c:
		}
	}
	close(chunks)
	wg.Wait()
	select {
	case err := <-errs:
		return nil, nil, err
	default:
	}
	// The last modes may still have been evolving when the context was
	// cancelled; honour the cancellation like the MP backend does.
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}

	spModes.End()
	st := &RunStats{
		Backend:   "pool",
		Schedule:  p.Schedule,
		NWorkers:  workers,
		NProc:     workers,
		Wallclock: time.Since(start).Seconds(),
		Workers:   unpadTimings(timings),
	}
	st.finalize()
	recordRunStats(st)
	sw := &Sweep{
		KValues: append([]float64(nil), ks...),
		Results: results,
		Tau0:    tau0,
	}
	return sw, st, nil
}
