package dispatch

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"plinger/internal/core"
	"plinger/internal/cosmology"
	"plinger/internal/recomb"
	"plinger/internal/thermo"
)

var (
	mdlOnce sync.Once
	mdl     *core.Model
	mdlErr  error
)

func model(t testing.TB) *core.Model {
	t.Helper()
	mdlOnce.Do(func() {
		bg, err := cosmology.New(cosmology.SCDM())
		if err != nil {
			mdlErr = err
			return
		}
		th, err := thermo.New(bg, recomb.Options{})
		if err != nil {
			mdlErr = err
			return
		}
		mdl = core.NewModel(bg, th)
	})
	if mdlErr != nil {
		t.Fatal(mdlErr)
	}
	return mdl
}

func testKs() []float64 { return []float64{0.002, 0.012, 0.03, 0.05, 0.075, 0.02, 0.008} }

func smallMode() core.Params {
	return core.Params{LMax: 10, Gauge: core.Synchronous, TauEnd: 300}
}

// sameResult asserts bitwise equality of every deterministic field; only
// wallclock timing may differ between backends.
func sameResult(t *testing.T, label string, a, b *core.Result) {
	t.Helper()
	if a == nil || b == nil {
		t.Fatalf("%s: missing result", label)
	}
	if a.K != b.K || a.Tau != b.Tau || a.A != b.A || a.Gauge != b.Gauge || a.LMax != b.LMax {
		t.Fatalf("%s: header differs: %+v vs %+v", label, a, b)
	}
	if a.DeltaC != b.DeltaC || a.DeltaB != b.DeltaB || a.DeltaG != b.DeltaG ||
		a.DeltaNu != b.DeltaNu || a.DeltaHNu != b.DeltaHNu ||
		a.ThetaC != b.ThetaC || a.ThetaB != b.ThetaB {
		t.Fatalf("%s: fluid perturbations differ", label)
	}
	if a.Phi != b.Phi || a.Psi != b.Psi || a.Eta != b.Eta || a.HDot != b.HDot {
		t.Fatalf("%s: metric perturbations differ", label)
	}
	if a.MaxConstraintResidual != b.MaxConstraintResidual || a.Flops != b.Flops {
		t.Fatalf("%s: diagnostics differ", label)
	}
	if a.Stats.Steps != b.Stats.Steps || a.Stats.Evals != b.Stats.Evals {
		t.Fatalf("%s: integrator stats differ", label)
	}
	if !reflect.DeepEqual(a.ThetaL, b.ThetaL) || !reflect.DeepEqual(a.ThetaPL, b.ThetaPL) {
		t.Fatalf("%s: multipoles differ", label)
	}
}

func checkStats(t *testing.T, label string, st *RunStats, nModes, nWorkers int) {
	t.Helper()
	if st.Modes != nModes {
		t.Fatalf("%s: %d modes in stats, want %d", label, st.Modes, nModes)
	}
	if st.NWorkers != nWorkers {
		t.Fatalf("%s: %d workers, want %d", label, st.NWorkers, nWorkers)
	}
	if st.Wallclock <= 0 || st.TotalCPU <= 0 || st.Efficiency <= 0 || st.TotalFlops <= 0 || st.FlopRate <= 0 {
		t.Fatalf("%s: degenerate stats: %+v", label, st)
	}
	modes := 0
	var cpu float64
	for _, w := range st.Workers {
		modes += w.Modes
		cpu += w.Seconds
	}
	if modes != nModes {
		t.Fatalf("%s: worker timings cover %d modes, want %d", label, modes, nModes)
	}
	if cpu != st.TotalCPU {
		t.Fatalf("%s: TotalCPU %g != sum of worker seconds %g", label, st.TotalCPU, cpu)
	}
}

// The decisive property of the subsystem: the same k grid through the
// pool and through the master/worker protocol over every transport yields
// bitwise-identical results under every schedule, with consistent
// telemetry.
func TestDispatcherEquivalence(t *testing.T) {
	m := model(t)
	ks := testKs()
	mode := smallMode()
	const workers = 3
	for _, sched := range []Schedule{LargestFirst, InputOrder, SmallestFirst} {
		pool := &Pool{Model: m, Workers: workers, Schedule: sched}
		ref, refSt, err := pool.Run(context.Background(), ks, mode)
		if err != nil {
			t.Fatal(err)
		}
		if refSt.Backend != "pool" {
			t.Fatalf("pool backend label %q", refSt.Backend)
		}
		checkStats(t, "pool/"+sched.String(), refSt, len(ks), workers)
		for _, tr := range []string{"chan", "fifo", "tcp"} {
			label := tr + "/" + sched.String()
			d, cleanup, err := NewMP(m, tr, workers)
			if err != nil {
				t.Fatal(err)
			}
			d.Schedule = sched
			sw, st, err := d.Run(context.Background(), ks, mode)
			cleanup()
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if st.Backend != "mp/"+tr {
				t.Fatalf("%s: backend label %q", label, st.Backend)
			}
			if st.NProc != workers+1 {
				t.Fatalf("%s: NProc %d", label, st.NProc)
			}
			if st.BytesMoved == 0 {
				t.Fatalf("%s: no bytes moved", label)
			}
			checkStats(t, label, st, len(ks), workers)
			for i := range ks {
				sameResult(t, label, ref.Results[i], sw.Results[i])
			}
		}
	}
}

// TestArenaSweepEquivalence: every backend worker now threads a persistent
// core.Scratch arena through its evolutions, so this is the guard against
// scratch state leaking between modes or between workers (run it under
// -race via make test-race). The workload deliberately stresses the arena:
// FastEvolve grows and shrinks the hierarchies (resize ping-pong buffers),
// KeepSources records samples (which must outlive the arena's next mode),
// and per-k adaptive cutoffs vary the layout mode to mode. Results —
// sources included — must be bitwise-equal to scratch-free sequential
// evolution across Pool, SharedPool and MP, under both schedule families.
func TestArenaSweepEquivalence(t *testing.T) {
	m := model(t)
	ks := testKs()
	mode := core.Params{LMax: 40, Gauge: core.ConformalNewtonian, TauEnd: 400,
		KeepSources: true, FastEvolve: true}

	// Scratch-free reference: one private arena per mode.
	ref := make([]*core.Result, len(ks))
	for i, k := range ks {
		pm := mode
		pm.K = k
		pm.LMax = PerKLMax(k, 400, mode.LMax)
		r, err := m.Evolve(pm)
		if err != nil {
			t.Fatal(err)
		}
		ref[i] = r
	}

	check := func(label string, sw *Sweep) {
		t.Helper()
		for i := range ks {
			sameResult(t, label, ref[i], sw.Results[i])
			if !reflect.DeepEqual(ref[i].Sources, sw.Results[i].Sources) {
				t.Fatalf("%s: sources of mode %d differ from the scratch-free reference", label, i)
			}
		}
	}

	for _, sched := range []Schedule{LargestFirst, InputOrder} {
		pool := &Pool{Model: m, Workers: 3, Schedule: sched, AdaptLMax: true}
		sw, _, err := pool.Run(context.Background(), ks, mode)
		if err != nil {
			t.Fatal(err)
		}
		check("pool/"+sched.String(), sw)

		shared := NewSharedPool(m, 3)
		shared.Schedule = sched
		shared.AdaptLMax = true
		sw, _, err = shared.Run(context.Background(), ks, mode)
		shared.Close()
		if err != nil {
			t.Fatal(err)
		}
		check("shared/"+sched.String(), sw)

		d, cleanup, err := NewMP(m, "chan", 3)
		if err != nil {
			t.Fatal(err)
		}
		d.Schedule = sched
		d.AdaptLMax = true
		sw, _, err = d.Run(context.Background(), ks, mode)
		cleanup()
		if err != nil {
			t.Fatal(err)
		}
		check("mp/"+sched.String(), sw)
	}
}

// The per-k adaptive hierarchy must be applied identically by both
// backends: the pool trims LMax locally, the MP master ships the override
// in the assignment message.
func TestAdaptiveLMaxEquivalence(t *testing.T) {
	m := model(t)
	ks := testKs()
	mode := core.Params{LMax: 200, Gauge: core.Synchronous, TauEnd: 300}

	pool := &Pool{Model: m, Workers: 2, AdaptLMax: true}
	ref, _, err := pool.Run(context.Background(), ks, mode)
	if err != nil {
		t.Fatal(err)
	}
	sawTrim := false
	for i, r := range ref.Results {
		want := PerKLMax(ks[i], 300, 200)
		if r.LMax != want {
			t.Fatalf("k=%g ran with lmax %d, want %d", ks[i], r.LMax, want)
		}
		if want < 200 {
			sawTrim = true
		}
	}
	if !sawTrim {
		t.Fatal("adaptive cutoff never engaged; test grid too easy")
	}

	d, cleanup, err := NewMP(m, "chan", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	d.AdaptLMax = true
	sw, _, err := d.Run(context.Background(), ks, mode)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ks {
		sameResult(t, "adaptive", ref.Results[i], sw.Results[i])
	}
}

// Line-of-sight sources must survive the wire (tag 7) so a CMBFAST-style
// C_l can be assembled from an MP run exactly as from a pool run.
func TestSourcesEquivalence(t *testing.T) {
	m := model(t)
	ks := testKs()[:4]
	mode := core.Params{LMax: 10, Gauge: core.ConformalNewtonian, TauEnd: 300, KeepSources: true}

	pool := &Pool{Model: m, Workers: 2}
	ref, _, err := pool.Run(context.Background(), ks, mode)
	if err != nil {
		t.Fatal(err)
	}
	d, cleanup, err := NewMP(m, "chan", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	sw, _, err := d.Run(context.Background(), ks, mode)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ks {
		if len(sw.Results[i].Sources) == 0 {
			t.Fatalf("mode %d arrived without sources", i)
		}
		if !reflect.DeepEqual(ref.Results[i].Sources, sw.Results[i].Sources) {
			t.Fatalf("mode %d sources differ between backends", i)
		}
	}
}

func TestScheduleOrder(t *testing.T) {
	ks := []float64{3, 1, 2, 1}
	cases := []struct {
		s    Schedule
		want []int
	}{
		{LargestFirst, []int{0, 2, 1, 3}},
		{InputOrder, []int{0, 1, 2, 3}},
		{SmallestFirst, []int{1, 3, 2, 0}},
	}
	for _, c := range cases {
		if got := c.s.Order(ks); !reflect.DeepEqual(got, c.want) {
			t.Fatalf("%v: order %v, want %v", c.s, got, c.want)
		}
	}
}

func TestParseSchedule(t *testing.T) {
	for name, want := range map[string]Schedule{
		"": LargestFirst, "largest-first": LargestFirst,
		"input-order": InputOrder, "smallest-first": SmallestFirst,
	} {
		got, err := ParseSchedule(name)
		if err != nil || got != want {
			t.Fatalf("ParseSchedule(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseSchedule("fastest-first"); err == nil {
		t.Fatal("bogus schedule accepted")
	}
	if LargestFirst.String() == "" || InputOrder.String() == "" ||
		SmallestFirst.String() == "" || Schedule(9).String() == "" {
		t.Fatal("schedule names")
	}
}

func TestDispatcherErrors(t *testing.T) {
	m := model(t)
	if _, _, err := (&Pool{Model: m}).Run(context.Background(), nil, smallMode()); err == nil {
		t.Fatal("empty grid accepted by pool")
	}
	if _, _, err := (&Pool{}).Run(context.Background(), testKs(), smallMode()); err == nil {
		t.Fatal("model-less pool accepted")
	}
	if _, _, err := (&MP{Model: m}).Run(context.Background(), testKs(), smallMode()); err == nil {
		t.Fatal("endpoint-less mp dispatcher accepted")
	}
	if _, _, err := NewMP(m, "carrier-pigeon", 2); err == nil {
		t.Fatal("unknown transport accepted")
	}
	// Evolution errors propagate (negative k is rejected by core).
	if _, _, err := (&Pool{Model: m, Workers: 2}).Run(context.Background(), []float64{-1}, smallMode()); err == nil {
		t.Fatal("bad wavenumber accepted")
	}
	// A failing worker must abort the MP run with its error, not hang the
	// master (the worker never reports a failure over the protocol).
	d, cleanup, err := NewMP(m, "chan", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	done := make(chan error, 1)
	go func() {
		_, _, err := d.Run(context.Background(), []float64{0.01, -1, 0.02}, smallMode())
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("mp run with bad wavenumber reported success")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("mp run with failing worker hung")
	}
}

func TestContextCancellation(t *testing.T) {
	m := model(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := (&Pool{Model: m, Workers: 2}).Run(ctx, testKs(), smallMode()); err != context.Canceled {
		t.Fatalf("pool under canceled context: %v", err)
	}
	d, cleanup, err := NewMP(m, "chan", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	if _, _, err := d.Run(ctx, testKs(), smallMode()); err != context.Canceled {
		t.Fatalf("mp under canceled context: %v", err)
	}
}

// TestBatchedSweepEquivalence: with mode.KBatch > 1 every backend hands out
// the same canonical grid-index blocks (runner.BatchBlocks) and evolves
// them in lockstep through EvolveBatchWith, so — at a fixed KBatch — the
// results must stay bitwise-identical across Pool, SharedPool and MP and
// across schedules, sources included, exactly like the scalar sweep. The
// reference is a sequential mirror of the worker body with fresh arenas;
// KBatch accuracy against the scalar path itself is a core/spectra
// contract (TestBatchAgreesWithScalar, the <1e-3 C_l golden), not a
// dispatch one. Run under -race via make test-race.
func TestBatchedSweepEquivalence(t *testing.T) {
	m := model(t)
	ks := testKs()
	for _, b := range []int{1, 4, 8} {
		mode := core.Params{LMax: 40, Gauge: core.ConformalNewtonian, TauEnd: 400,
			KeepSources: true, FastEvolve: true, KBatch: b}
		perk := perKLMaxTable(ks, 400, mode.LMax, true)

		ref := make([]*core.Result, len(ks))
		if b > 1 {
			for _, blk := range batchBlocks(len(ks), b) {
				lo, hi := blk[0], blk[1]
				rs, err := m.EvolveBatchWith(ks[lo:hi], mode, perk[lo:hi], nil)
				if err != nil {
					t.Fatal(err)
				}
				copy(ref[lo:hi], rs)
			}
		} else {
			for i, k := range ks {
				pm := mode
				pm.K = k
				pm.LMax = perk[i]
				r, err := m.Evolve(pm)
				if err != nil {
					t.Fatal(err)
				}
				ref[i] = r
			}
		}

		check := func(label string, sw *Sweep) {
			t.Helper()
			for i := range ks {
				sameResult(t, label, ref[i], sw.Results[i])
				if !reflect.DeepEqual(ref[i].Sources, sw.Results[i].Sources) {
					t.Fatalf("%s: sources of mode %d differ from the sequential reference", label, i)
				}
			}
		}

		for _, sched := range []Schedule{LargestFirst, InputOrder} {
			label := func(backend string) string {
				return backend + "/" + sched.String() + "/b=" + itoa(b)
			}
			pool := &Pool{Model: m, Workers: 3, Schedule: sched, AdaptLMax: true}
			sw, st, err := pool.Run(context.Background(), ks, mode)
			if err != nil {
				t.Fatal(err)
			}
			if st.Modes != len(ks) {
				t.Fatalf("%s: %d modes in stats, want %d", label("pool"), st.Modes, len(ks))
			}
			check(label("pool"), sw)

			shared := NewSharedPool(m, 3)
			shared.Schedule = sched
			shared.AdaptLMax = true
			sw, st, err = shared.Run(context.Background(), ks, mode)
			shared.Close()
			if err != nil {
				t.Fatal(err)
			}
			if st.Modes != len(ks) {
				t.Fatalf("%s: %d modes in stats, want %d", label("shared"), st.Modes, len(ks))
			}
			check(label("shared"), sw)

			d, cleanup, err := NewMP(m, "chan", 3)
			if err != nil {
				t.Fatal(err)
			}
			d.Schedule = sched
			d.AdaptLMax = true
			sw, st, err = d.Run(context.Background(), ks, mode)
			cleanup()
			if err != nil {
				t.Fatal(err)
			}
			if st.Modes != len(ks) {
				t.Fatalf("%s: %d modes in stats, want %d", label("mp"), st.Modes, len(ks))
			}
			check(label("mp"), sw)
		}
	}
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }
