package dispatch

import "plinger/internal/obs"

// Process-wide sweep metrics. Every backend reports through the same series,
// so the daemon's /metrics view of "sweeps run, modes evolved, fault ledger"
// is backend-agnostic, exactly like RunStats. Per-mode busy time is the hot
// one: workers observe it rank-sharded (obs.Histogram.ObserveShard), so the
// cost per mode is a handful of uncontended atomics — the same budget as the
// paddedTiming accounting that already runs there.
var (
	obsSweeps = obs.Default.Counter("plinger_sweeps_total", "",
		"completed dispatch sweeps (any backend)")
	obsSweepModes = obs.Default.Counter("plinger_sweep_modes_total", "",
		"wavenumber modes evolved across all sweeps")
	obsSweepSeconds = obs.Default.Histogram("plinger_sweep_seconds", "",
		"wall time of one dispatched sweep", obs.DefBuckets(), 4)
	obsModeSeconds = obs.Default.Histogram("plinger_sweep_mode_seconds", "",
		"busy seconds per evolved mode (rank-sharded)", obs.ModeBuckets(), 16)

	// The fault ledger, exported cumulatively (RunStats carries the same
	// numbers per run).
	obsFaultFailures = obs.Default.Counter("plinger_fault_worker_failures_total", "",
		"workers declared dead during sweeps")
	obsFaultReassign = obs.Default.Counter("plinger_fault_reassignments_total", "",
		"orphaned k-blocks handed to surviving workers")
	obsFaultDeadline = obs.Default.Counter("plinger_fault_deadline_misses_total", "",
		"assignment/start-up deadline expiries")
	obsFaultLocal = obs.Default.Counter("plinger_fault_local_modes_total", "",
		"modes the master recomputed after losing all workers")
	obsFaultRetries = obs.Default.Counter("plinger_fault_retries_total", "",
		"transport connect attempts beyond the first")
)

// observeMode books one evolved mode's busy time into the process-wide
// histogram, sharded by worker rank.
func observeMode(rank int, seconds float64) {
	obsModeSeconds.ObserveShard(rank-1, seconds)
}

// recordRunStats folds one finished run into the process-wide series.
func recordRunStats(st *RunStats) {
	obsSweeps.Inc()
	obsSweepModes.Add(uint64(st.Modes))
	obsSweepSeconds.Observe(st.Wallclock)
	obsFaultFailures.Add(uint64(st.WorkerFailures))
	obsFaultReassign.Add(uint64(st.Reassignments))
	obsFaultDeadline.Add(uint64(st.DeadlineMisses))
	obsFaultLocal.Add(uint64(st.LocalModes))
	obsFaultRetries.Add(uint64(st.Retries))
}
