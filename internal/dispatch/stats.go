package dispatch

import "sort"

// WorkerTiming is the per-worker accounting used for Figure 1, extended with
// the fault ledger. For the MP backend Rank is the endpoint rank (1..n); the
// Pool backend numbers its goroutines the same way so the two reports line
// up. The field layout mirrors plinger.WorkerTiming exactly so the two
// convert directly.
type WorkerTiming struct {
	Rank    int
	Modes   int     // k values computed
	Seconds float64 // busy seconds (the paper's etime)
	Flops   float64 // model flop count
	// DeadlineMisses counts assignment deadlines this worker blew before
	// being declared failed (always zero for the shared-memory backends).
	DeadlineMisses int
}

// paddedTiming is the in-flight per-worker accounting slot: WorkerTiming is
// 40 bytes, so three adjacent slots would share a cache line and every
// per-mode counter update by one worker would invalidate the line under
// the others' feet (false sharing). The pad spreads the slots to 128
// bytes — two lines, covering the adjacent-line prefetcher — which keeps
// each worker's counters core-local; the slots collapse to plain
// WorkerTiming values when the run finishes.
type paddedTiming struct {
	WorkerTiming
	_ [88]byte
}

// unpadTimings copies the in-flight slots into the final RunStats form.
func unpadTimings(padded []paddedTiming) []WorkerTiming {
	out := make([]WorkerTiming, len(padded))
	for i := range padded {
		out[i] = padded[i].WorkerTiming
	}
	return out
}

// RunStats is the unified run telemetry, reproducing the quantities plotted
// in Figure 1 and tabulated in Section 5. Both backends populate every
// field with the same semantics, so schedules and transports can be
// compared directly.
type RunStats struct {
	// Backend names the dispatcher that produced the run: "pool", or
	// "mp/<transport>" for a master/worker run.
	Backend string
	// Schedule is the hand-out order used.
	Schedule Schedule
	// NWorkers is the number of computing workers; NProc additionally
	// counts the master for MP runs (the paper's "processors").
	NWorkers, NProc int
	// Modes is the number of wavenumbers evolved.
	Modes int

	Wallclock  float64 // seconds
	TotalCPU   float64 // sum of busy seconds over workers
	Efficiency float64 // TotalCPU / (Wallclock * NWorkers)
	TotalFlops float64
	FlopRate   float64 // flop/s = TotalFlops / Wallclock

	// BytesMoved is the message payload volume (zero for the shared-memory
	// pool, where no bytes cross a transport).
	BytesMoved int64

	Workers []WorkerTiming

	// Fault-tolerance ledger (all zero on an undisturbed run; only the MP
	// backend with an assignment deadline can populate it).
	WorkerFailures int // workers declared dead during the run
	Reassignments  int // orphaned k-blocks handed to surviving workers
	DeadlineMisses int // assignment/start-up deadline expiries
	LocalModes     int // modes the master recomputed after losing all workers
	Retries        int // transport connect attempts beyond the first

	// Phases is the per-phase wall-time breakdown of the request that ran
	// this sweep (evolve, source spline, projection, ...), folded in from the
	// sweep trace when one was attached. Empty when tracing was off.
	Phases []Phase
}

// Phase is one named phase of the run with its wall time in seconds.
type Phase struct {
	Name    string
	Seconds float64
}

// finalize derives the aggregate quantities from the per-worker timings,
// the single formula shared by both backends.
func (st *RunStats) finalize() {
	sort.Slice(st.Workers, func(a, b int) bool {
		return st.Workers[a].Rank < st.Workers[b].Rank
	})
	st.TotalCPU, st.TotalFlops, st.Modes = 0, 0, 0
	for _, w := range st.Workers {
		st.TotalCPU += w.Seconds
		st.TotalFlops += w.Flops
		st.Modes += w.Modes
	}
	n := st.NWorkers
	if n < 1 {
		n = 1
	}
	if st.Wallclock > 0 {
		st.Efficiency = st.TotalCPU / (st.Wallclock * float64(n))
		st.FlopRate = st.TotalFlops / st.Wallclock
	}
}
