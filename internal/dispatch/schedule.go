package dispatch

import (
	"fmt"
	"sort"
)

// Schedule selects the order in which wavenumbers are handed to workers.
// It is purely a wall-clock concern: results are identical under every
// schedule, only the end-of-run idle tail changes.
type Schedule int

const (
	// LargestFirst is the paper's policy: "Since larger wavenumbers
	// require greater computation, one simple method by which we minimized
	// this idle time was to compute the largest k first."
	LargestFirst Schedule = iota
	// InputOrder hands wavenumbers out as given (the ablation baseline).
	InputOrder
	// SmallestFirst is the adversarial ordering for the ablation.
	SmallestFirst
)

// String implements fmt.Stringer.
func (s Schedule) String() string {
	switch s {
	case LargestFirst:
		return "largest-first"
	case InputOrder:
		return "input-order"
	case SmallestFirst:
		return "smallest-first"
	default:
		return fmt.Sprintf("Schedule(%d)", int(s))
	}
}

// ParseSchedule maps the command-line / facade spelling to a Schedule; the
// empty string selects the paper's default, largest-first.
func ParseSchedule(name string) (Schedule, error) {
	switch name {
	case "", "largest-first":
		return LargestFirst, nil
	case "input-order":
		return InputOrder, nil
	case "smallest-first":
		return SmallestFirst, nil
	default:
		return 0, fmt.Errorf("dispatch: unknown schedule %q", name)
	}
}

// Order returns the hand-out order as a permutation of indices into ks.
// Ties keep input order (stable sort) so the permutation is deterministic.
func (s Schedule) Order(ks []float64) []int {
	order := make([]int, len(ks))
	for i := range order {
		order[i] = i
	}
	switch s {
	case LargestFirst:
		sort.SliceStable(order, func(a, b int) bool {
			return ks[order[a]] > ks[order[b]]
		})
	case SmallestFirst:
		sort.SliceStable(order, func(a, b int) bool {
			return ks[order[a]] < ks[order[b]]
		})
	case InputOrder:
		// as given
	}
	return order
}
