package dispatch

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"plinger/internal/core"
	"plinger/internal/mp"
	"plinger/internal/mp/chanmp"
	"plinger/internal/mp/fifomp"
	"plinger/internal/mp/tcpmp"
	runner "plinger/internal/plinger"
)

// MP is the message-passing backend: the paper's Appendix A master/worker
// protocol over any mp.Endpoint transport. The dispatcher owns scheduling
// (it hands the protocol engine an explicit hand-out order) and telemetry;
// the wire protocol itself lives in internal/plinger.
type MP struct {
	Model *core.Model
	// Endpoints[0] is the master's endpoint; a worker goroutine is
	// spawned for every further endpoint. Remote workers in other OS
	// processes join the same run by calling RunWorker on their own
	// endpoints, in which case Endpoints holds only the master.
	Endpoints []mp.Endpoint
	// Schedule is the hand-out order (zero value: largest-first).
	Schedule Schedule
	// AdaptLMax reduces the hierarchy cutoff per wavenumber via PerKLMax;
	// the per-mode cutoff rides along in the assignment message.
	AdaptLMax bool
	// ASCIIOut and BinaryOut receive the unit_1/unit_2 style outputs.
	ASCIIOut, BinaryOut io.Writer
	// Transport labels RunStats.Backend (e.g. "chan", "fifo", "tcp").
	Transport string
	// BytesMoved, when set, reports the transport-level payload counter
	// (e.g. chanmp.World.BytesMoved, which also sees master-to-worker
	// traffic); otherwise the master's received-byte count is used.
	BytesMoved func() int64
	// Prebuild, when set, runs once concurrently with the sweep (see
	// Pool.Prebuild); Run waits for it before returning.
	Prebuild func()
}

// Run implements Dispatcher.
func (d *MP) Run(ctx context.Context, ks []float64, mode core.Params) (*Sweep, *RunStats, error) {
	if d.Model == nil {
		return nil, nil, fmt.Errorf("dispatch: mp dispatcher has no model")
	}
	if len(d.Endpoints) == 0 {
		return nil, nil, fmt.Errorf("dispatch: mp dispatcher has no endpoints")
	}
	if len(ks) == 0 {
		return nil, nil, fmt.Errorf("dispatch: empty wavenumber grid")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	tau0 := sweepTau0(d.Model, mode)
	// Batched hand-out: the master decomposes the grid with the same
	// runner.BatchBlocks, so the order must enumerate blocks, not modes.
	order := d.Schedule.Order(ks)
	if mode.KBatch > 1 && len(ks) > 1 {
		order = blockOrder(d.Schedule, ks, batchBlocks(len(ks), mode.KBatch))
	}
	cfg := runner.Config{
		KValues:   ks,
		Mode:      mode,
		Order:     order,
		PerKLMax:  perKLMaxTable(ks, tau0, mode.LMax, d.AdaptLMax),
		ASCIIOut:  d.ASCIIOut,
		BinaryOut: d.BinaryOut,
	}

	prebuildEvalTables(d.Model, mode)
	defer runPrebuild(d.Prebuild)()

	// Cancellation: blocking probes cannot watch a context, so closing
	// the endpoints is the abort path — every pending Probe/Recv then
	// returns mp.ErrClosed.
	runDone := make(chan struct{})
	defer close(runDone)
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				for _, ep := range d.Endpoints {
					ep.Close()
				}
			case <-runDone:
			}
		}()
	}

	nLocal := len(d.Endpoints) - 1
	errCh := make(chan error, nLocal)
	for _, ep := range d.Endpoints[1:] {
		go func(ep mp.Endpoint) {
			errCh <- runner.Worker(ep, d.Model, ks, mode)
		}(ep)
	}
	// A failed worker never reports back over the protocol, so the master
	// would block forever waiting for its result. Watch the local workers
	// concurrently and abort the whole world on the first failure.
	var wmu sync.Mutex
	var workerErr error
	workersDone := make(chan struct{})
	go func() {
		defer close(workersDone)
		for i := 0; i < nLocal; i++ {
			if werr := <-errCh; werr != nil {
				wmu.Lock()
				if workerErr == nil {
					workerErr = werr
					for _, ep := range d.Endpoints {
						ep.Close()
					}
				}
				wmu.Unlock()
			}
		}
	}()
	res, err := runner.Master(d.Endpoints[0], d.Model, cfg)
	if err != nil {
		// Unblock any local workers still probing, then collect them.
		for _, ep := range d.Endpoints {
			ep.Close()
		}
		<-workersDone
		if ctx.Err() != nil {
			return nil, nil, ctx.Err()
		}
		wmu.Lock()
		werr := workerErr
		wmu.Unlock()
		// Prefer the root cause: a genuine worker failure beats the
		// master's probe fallout, but a worker's bare ErrClosed is
		// itself fallout from the master failing first.
		if werr != nil && !errors.Is(werr, mp.ErrClosed) {
			return nil, nil, werr
		}
		return nil, nil, err
	}
	<-workersDone
	if workerErr != nil {
		return nil, nil, workerErr
	}

	st := &RunStats{
		Backend:   "mp/" + d.transportName(),
		Schedule:  d.Schedule,
		NProc:     res.NProc,
		NWorkers:  res.NProc - 1,
		Wallclock: res.Wallclock,
	}
	if st.NWorkers < 1 {
		st.NWorkers = 1
	}
	for _, w := range res.Workers {
		st.Workers = append(st.Workers, WorkerTiming(w))
	}
	if d.BytesMoved != nil {
		st.BytesMoved = d.BytesMoved()
	} else {
		st.BytesMoved = res.BytesReceived
	}
	st.finalize()
	sw := &Sweep{
		KValues: append([]float64(nil), ks...),
		Results: res.Mode,
		Tau0:    tau0,
	}
	return sw, st, nil
}

func (d *MP) transportName() string {
	if d.Transport == "" {
		return "unknown"
	}
	return d.Transport
}

// RunWorker joins an MP run from the worker side: remote processes (e.g.
// cmd/plinger -role worker) call it on their own endpoint while the master
// process runs MP.Run with only the master endpoint.
func RunWorker(ep mp.Endpoint, model *core.Model, ks []float64, mode core.Params) error {
	return runner.Worker(ep, model, ks, mode)
}

// NewMP builds an MP dispatcher over a freshly created in-process world of
// the named transport — "chan" (in-process goroutine nodes, the default),
// "fifo" (the strict arrival-order MPL model) or "tcp" (a loopback
// PVM-style hub) — with the given number of workers (<= 0: one). The
// returned cleanup closes the endpoints (and hub) and must be called after
// the final Run.
func NewMP(model *core.Model, transport string, workers int) (*MP, func(), error) {
	if workers <= 0 {
		workers = 1
	}
	n := workers + 1
	var eps []mp.Endpoint
	var bytes func() int64
	closeHub := func() {}
	name := transport
	switch transport {
	case "", "chan":
		name = "chan"
		world, e, err := chanmp.New(n)
		if err != nil {
			return nil, nil, err
		}
		eps, bytes = e, world.BytesMoved
	case "fifo":
		world, e, err := fifomp.New(n)
		if err != nil {
			return nil, nil, err
		}
		eps, bytes = e, world.BytesMoved
	case "tcp":
		hub, err := tcpmp.NewHub("127.0.0.1:0", n)
		if err != nil {
			return nil, nil, err
		}
		eps, err = connectAll(hub, n)
		if err != nil {
			hub.Close()
			return nil, nil, err
		}
		bytes = hub.BytesMoved
		closeHub = func() { hub.Close() }
	default:
		return nil, nil, fmt.Errorf("dispatch: unknown transport %q", transport)
	}
	cleanup := func() {
		for _, ep := range eps {
			ep.Close()
		}
		closeHub()
	}
	d := &MP{Model: model, Endpoints: eps, Transport: name, BytesMoved: bytes}
	return d, cleanup, nil
}

// connectAll joins n loopback endpoints to the hub. Connections must be
// made concurrently: the hub completes the rank handshake only once all n
// processes have dialed in.
func connectAll(hub *tcpmp.Hub, n int) ([]mp.Endpoint, error) {
	eps := make([]mp.Endpoint, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	var mu sync.Mutex
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ep, err := tcpmp.Connect(hub.Addr())
			if err != nil {
				errs[i] = err
				return
			}
			mu.Lock()
			eps[ep.Rank()] = ep
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for rank, ep := range eps {
		if ep == nil {
			return nil, fmt.Errorf("dispatch: no endpoint claimed rank %d", rank)
		}
	}
	return eps, nil
}
