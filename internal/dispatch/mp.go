package dispatch

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"plinger/internal/core"
	"plinger/internal/mp"
	"plinger/internal/mp/chanmp"
	"plinger/internal/mp/fifomp"
	"plinger/internal/mp/tcpmp"
	"plinger/internal/obs"
	runner "plinger/internal/plinger"
)

// MP is the message-passing backend: the paper's Appendix A master/worker
// protocol over any mp.Endpoint transport. The dispatcher owns scheduling
// (it hands the protocol engine an explicit hand-out order) and telemetry;
// the wire protocol itself lives in internal/plinger.
type MP struct {
	Model *core.Model
	// Endpoints[0] is the master's endpoint; a worker goroutine is
	// spawned for every further endpoint. Remote workers in other OS
	// processes join the same run by calling RunWorker on their own
	// endpoints, in which case Endpoints holds only the master.
	Endpoints []mp.Endpoint
	// Schedule is the hand-out order (zero value: largest-first).
	Schedule Schedule
	// AdaptLMax reduces the hierarchy cutoff per wavenumber via PerKLMax;
	// the per-mode cutoff rides along in the assignment message.
	AdaptLMax bool
	// ASCIIOut and BinaryOut receive the unit_1/unit_2 style outputs.
	ASCIIOut, BinaryOut io.Writer
	// Transport labels RunStats.Backend (e.g. "chan", "fifo", "tcp").
	Transport string
	// BytesMoved, when set, reports the transport-level payload counter
	// (e.g. chanmp.World.BytesMoved, which also sees master-to-worker
	// traffic); otherwise the master's received-byte count is used.
	BytesMoved func() int64
	// Prebuild, when set, runs once concurrently with the sweep (see
	// Pool.Prebuild); Run waits for it before returning.
	Prebuild func()
	// AssignDeadline, when > 0, turns on the fault-tolerant master: each
	// assignment round trip (and each worker's start-up) is bounded, dead
	// or hung workers have their blocks reassigned, and the master
	// recomputes locally if every worker is lost. A context deadline on Run
	// also activates it (the tighter of the two budgets wins).
	AssignDeadline time.Duration
	// ConnectRetries is filled in by NewMP: transport connect attempts
	// beyond the first (reported as RunStats.Retries).
	ConnectRetries int
}

// Run implements Dispatcher.
func (d *MP) Run(ctx context.Context, ks []float64, mode core.Params) (*Sweep, *RunStats, error) {
	if d.Model == nil {
		return nil, nil, fmt.Errorf("dispatch: mp dispatcher has no model")
	}
	if len(d.Endpoints) == 0 {
		return nil, nil, fmt.Errorf("dispatch: mp dispatcher has no endpoints")
	}
	if len(ks) == 0 {
		return nil, nil, fmt.Errorf("dispatch: empty wavenumber grid")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	tau0 := sweepTau0(d.Model, mode)
	// Batched hand-out: the master decomposes the grid with the same
	// runner.BatchBlocks, so the order must enumerate blocks, not modes.
	order := d.Schedule.Order(ks)
	if mode.KBatch > 1 && len(ks) > 1 {
		order = blockOrder(d.Schedule, ks, batchBlocks(len(ks), mode.KBatch))
	}
	// Deadline propagation: an explicit AssignDeadline or a context
	// deadline (whichever is tighter) arms the fault-tolerant master.
	assignDL := d.AssignDeadline
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); rem > 0 && (assignDL == 0 || rem < assignDL) {
			assignDL = rem
		}
	}
	ft := assignDL > 0
	nLocal := len(d.Endpoints) - 1
	var workerDown chan int
	if ft && nLocal > 0 {
		workerDown = make(chan int, nLocal)
	}
	cfg := runner.Config{
		KValues:        ks,
		Mode:           mode,
		Order:          order,
		PerKLMax:       perKLMaxTable(ks, tau0, mode.LMax, d.AdaptLMax),
		ASCIIOut:       d.ASCIIOut,
		BinaryOut:      d.BinaryOut,
		AssignDeadline: assignDL,
		WorkerDown:     workerDown,
	}

	tr := obs.TraceFrom(ctx)
	spTables := tr.Start("eval_tables")
	prebuildEvalTables(d.Model, mode)
	spTables.End()
	defer runPrebuild(d.Prebuild)()

	// Cancellation: blocking probes cannot watch a context, so closing
	// the endpoints is the abort path — every pending Probe/Recv then
	// returns mp.ErrClosed.
	runDone := make(chan struct{})
	defer close(runDone)
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				for _, ep := range d.Endpoints {
					ep.Close()
				}
			case <-runDone:
			}
		}()
	}

	errCh := make(chan error, nLocal)
	for _, wep := range d.Endpoints[1:] {
		go func(wep mp.Endpoint) {
			rank := wep.Rank()
			werr := func() (err error) {
				// A panicking worker must look to the master exactly like a
				// crashed one: recover, report, let reassignment handle it.
				defer func() {
					if r := recover(); r != nil {
						err = fmt.Errorf("dispatch: mp worker %d panicked: %v", rank, r)
					}
				}()
				return runner.Worker(wep, d.Model, ks, mode)
			}()
			if werr != nil && workerDown != nil {
				// Out-of-band death report: lets the fault-tolerant master
				// orphan this worker's block before the deadline expires.
				select {
				case workerDown <- rank:
				default:
				}
			}
			errCh <- werr
		}(wep)
	}
	// A failed worker never reports back over the protocol. Without fault
	// tolerance the master would block forever waiting for its result, so
	// watch the local workers concurrently and abort the whole world on the
	// first failure. With fault tolerance armed the master survives worker
	// loss by design, so the world stays up and recovery runs instead.
	var wmu sync.Mutex
	var workerErr error
	workersDone := make(chan struct{})
	go func() {
		defer close(workersDone)
		for i := 0; i < nLocal; i++ {
			if werr := <-errCh; werr != nil {
				wmu.Lock()
				if workerErr == nil {
					workerErr = werr
					if !ft {
						for _, ep := range d.Endpoints {
							ep.Close()
						}
					}
				}
				wmu.Unlock()
			}
		}
	}()
	spModes := tr.Start("modes")
	res, err := runner.Master(d.Endpoints[0], d.Model, cfg)
	spModes.End()
	if err != nil {
		// Unblock any local workers still probing, then collect them.
		for _, ep := range d.Endpoints {
			ep.Close()
		}
		<-workersDone
		if ctx.Err() != nil {
			return nil, nil, ctx.Err()
		}
		wmu.Lock()
		werr := workerErr
		wmu.Unlock()
		// Prefer the root cause: a genuine worker failure beats the
		// master's probe fallout, but a worker's bare ErrClosed is
		// itself fallout from the master failing first. Under fault
		// tolerance the preference flips — worker casualties are expected
		// and recovered, so a master error is the authoritative failure.
		if werr != nil && !ft && !errors.Is(werr, mp.ErrClosed) {
			return nil, nil, werr
		}
		return nil, nil, err
	}
	if ft && res.WorkerFailures > 0 {
		// Casualties may be wedged in a probe for an assignment that will
		// never come, or in a hung send; closing the world releases their
		// goroutines. A recovered run's endpoints are spent either way.
		for _, ep := range d.Endpoints {
			ep.Close()
		}
	}
	<-workersDone
	if workerErr != nil && !ft {
		return nil, nil, workerErr
	}

	st := &RunStats{
		Backend:        "mp/" + d.transportName(),
		Schedule:       d.Schedule,
		NProc:          res.NProc,
		NWorkers:       res.NProc - 1,
		Wallclock:      res.Wallclock,
		WorkerFailures: res.WorkerFailures,
		Reassignments:  res.Reassignments,
		DeadlineMisses: res.DeadlineMisses,
		LocalModes:     res.LocalModes,
		Retries:        d.ConnectRetries,
	}
	if st.NWorkers < 1 {
		st.NWorkers = 1
	}
	for _, w := range res.Workers {
		st.Workers = append(st.Workers, WorkerTiming(w))
	}
	if d.BytesMoved != nil {
		st.BytesMoved = d.BytesMoved()
	} else {
		st.BytesMoved = res.BytesReceived
	}
	st.finalize()
	recordRunStats(st)
	sw := &Sweep{
		KValues: append([]float64(nil), ks...),
		Results: res.Mode,
		Tau0:    tau0,
	}
	return sw, st, nil
}

func (d *MP) transportName() string {
	if d.Transport == "" {
		return "unknown"
	}
	return d.Transport
}

// RunWorker joins an MP run from the worker side: remote processes (e.g.
// cmd/plinger -role worker) call it on their own endpoint while the master
// process runs MP.Run with only the master endpoint.
func RunWorker(ep mp.Endpoint, model *core.Model, ks []float64, mode core.Params) error {
	return runner.Worker(ep, model, ks, mode)
}

// NewMP builds an MP dispatcher over a freshly created in-process world of
// the named transport — "chan" (in-process goroutine nodes, the default),
// "fifo" (the strict arrival-order MPL model) or "tcp" (a loopback
// PVM-style hub) — with the given number of workers (<= 0: one). The
// returned cleanup closes the endpoints (and hub) and must be called after
// the final Run.
func NewMP(model *core.Model, transport string, workers int) (*MP, func(), error) {
	if workers <= 0 {
		workers = 1
	}
	n := workers + 1
	var eps []mp.Endpoint
	var bytes func() int64
	closeHub := func() {}
	connectRetries := 0
	name := transport
	switch transport {
	case "", "chan":
		name = "chan"
		world, e, err := chanmp.New(n)
		if err != nil {
			return nil, nil, err
		}
		eps, bytes = e, world.BytesMoved
	case "fifo":
		world, e, err := fifomp.New(n)
		if err != nil {
			return nil, nil, err
		}
		eps, bytes = e, world.BytesMoved
	case "tcp":
		hub, err := tcpmp.NewHub("127.0.0.1:0", n)
		if err != nil {
			return nil, nil, err
		}
		var retries int
		eps, retries, err = connectAll(hub.Addr(), n, tcpConnectTimeout)
		connectRetries = retries
		if err != nil {
			hub.Close()
			return nil, nil, err
		}
		bytes = hub.BytesMoved
		closeHub = func() { hub.Close() }
	default:
		return nil, nil, fmt.Errorf("dispatch: unknown transport %q", transport)
	}
	cleanup := func() {
		for _, ep := range eps {
			ep.Close()
		}
		closeHub()
	}
	d := &MP{Model: model, Endpoints: eps, Transport: name, BytesMoved: bytes, ConnectRetries: connectRetries}
	return d, cleanup, nil
}

// tcpConnectTimeout bounds the whole loopback rendezvous in NewMP; a
// package variable so the tests can tighten it.
var tcpConnectTimeout = 10 * time.Second

// connectAll joins n loopback endpoints to the hub at addr. Connections
// must be made concurrently: the hub completes the rank handshake only once
// all n processes have dialed in. The rendezvous is bounded by timeout (0:
// wait forever, the old behavior); dial failures are retried with doubling
// backoff inside the budget, while a handshake timeout — a worker that
// never joined the world — is a hard error, since the hub has already
// counted the half-open connection. Returns the endpoints and the number
// of retried dials.
func connectAll(addr string, n int, timeout time.Duration) ([]mp.Endpoint, int, error) {
	eps := make([]mp.Endpoint, n)
	errs := make([]error, n)
	retries := 0
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			backoff := 10 * time.Millisecond
			for {
				remaining := time.Duration(0)
				if !deadline.IsZero() {
					remaining = time.Until(deadline)
					if remaining <= 0 {
						errs[i] = fmt.Errorf("dispatch: tcp connect: rendezvous deadline (%v) exceeded", timeout)
						return
					}
				}
				ep, err := tcpmp.ConnectTimeout(addr, remaining)
				if err == nil {
					mu.Lock()
					eps[ep.Rank()] = ep
					mu.Unlock()
					return
				}
				if deadline.IsZero() || !errors.Is(err, tcpmp.ErrDial) || time.Until(deadline) <= backoff {
					errs[i] = err
					return
				}
				time.Sleep(backoff)
				backoff *= 2
				mu.Lock()
				retries++
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, retries, err
		}
	}
	for rank, ep := range eps {
		if ep == nil {
			return nil, retries, fmt.Errorf("dispatch: no endpoint claimed rank %d", rank)
		}
	}
	return eps, retries, nil
}
