package dispatch

import (
	"runtime"
	"sync"
	"sync/atomic"

	"plinger/internal/core"
)

// ParallelFor runs body(i) for every i in [0, n) across up to workers
// goroutines (<= 0: GOMAXPROCS) and returns when all calls finish. Indices
// are handed out dynamically, so skewed per-index costs balance the same
// way the mode scheduler balances skewed wavenumbers. It is the light-weight
// fan-out for CPU-bound precomputations that are not k-mode evolutions —
// e.g. the spherical-Bessel table build of the fast C_l engine — keeping
// every parallel loop in the repository inside the dispatch subsystem.
// prebuildEvalTables builds the model's flattened evaluation tables across
// the pool's workers before a fast-engine sweep hands out its first mode
// (a no-op when the mode is not FastEvolve or the tables are already
// cached). Every dispatcher backend calls it, so the per-model table build
// is always a single parallel pass rather than a serial build inside
// whichever worker happens to evolve the first mode.
func prebuildEvalTables(m *core.Model, mode core.Params) {
	if mode.FastEvolve {
		m.EnsureEvalTables(ParallelFor)
	}
}

func ParallelFor(workers, n int, body func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				body(i)
			}
		}()
	}
	wg.Wait()
}
