package dispatch

import (
	"plinger/internal/core"
)

// This file exports the scheduling/telemetry glue an out-of-package
// long-lived MP backend (internal/farm) shares with the in-package MP
// dispatcher, so both compute hand-out orders, per-k cutoffs, and RunStats
// from one formula. The farm cannot live in this package — it sits above
// the dispatcher (serve configures it, the facade routes to it) — and
// dispatch must not import it, so the shared pieces are exported here
// instead of duplicated there.

// SweepTau0 exposes the sweep's conformal-time horizon for external
// backends (Sweep.Tau0 must be filled the same way on every backend).
func SweepTau0(model *core.Model, mode core.Params) float64 {
	return sweepTau0(model, mode)
}

// HandOutOrder computes the hand-out order an MP master should be given:
// a permutation of mode indices, or of batch blocks when kbatch > 1 —
// exactly what MP.Run hands runner.Master.
func HandOutOrder(s Schedule, ks []float64, kbatch int) []int {
	if kbatch > 1 && len(ks) > 1 {
		return blockOrder(s, ks, batchBlocks(len(ks), kbatch))
	}
	return s.Order(ks)
}

// PerKLMaxTable exposes the adaptive per-wavenumber hierarchy cutoff table
// (nil when adapt is false), as ridden along in assignment messages.
func PerKLMaxTable(ks []float64, tau0 float64, lmaxGlobal int, adapt bool) []int {
	return perKLMaxTable(ks, tau0, lmaxGlobal, adapt)
}

// PrebuildEvalTables warms the model's shared evaluation tables exactly as
// the in-package backends do before a FastEvolve sweep.
func PrebuildEvalTables(m *core.Model, mode core.Params) {
	prebuildEvalTables(m, mode)
}

// FinishRunStats derives the aggregate columns (parallel efficiency, flop
// rate) and folds the run into the process-wide dispatch metrics — the
// final step of every backend's Run.
func FinishRunStats(st *RunStats) {
	st.finalize()
	recordRunStats(st)
}
