package plinger

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"plinger/internal/core"
	"plinger/internal/cosmology"
	"plinger/internal/mp"
	"plinger/internal/mp/chanmp"
	"plinger/internal/mp/fifomp"
	"plinger/internal/mp/tcpmp"
	"plinger/internal/recomb"
	"plinger/internal/thermo"
)

var (
	mdlOnce sync.Once
	mdl     *core.Model
)

func model(t *testing.T) *core.Model {
	t.Helper()
	mdlOnce.Do(func() {
		bg, err := cosmology.New(cosmology.SCDM())
		if err != nil {
			t.Fatal(err)
		}
		th, err := thermo.New(bg, recomb.Options{})
		if err != nil {
			t.Fatal(err)
		}
		mdl = core.NewModel(bg, th)
	})
	return mdl
}

func fakeResult(k float64, lmax int) *core.Result {
	r := &core.Result{
		K: k, Tau: 11000, A: 1, Gauge: core.Synchronous, LMax: lmax,
		DeltaC: -5, DeltaB: -4.5, DeltaG: 0.1, DeltaNu: 0.05, DeltaHNu: 0.01,
		ThetaC: 0, ThetaB: 0.2, Eta: 1.5, HDot: 0.4,
		MaxConstraintResidual: 1e-4, Seconds: 0.5, Flops: 1e6,
		ThetaL:  make([]float64, lmax+1),
		ThetaPL: make([]float64, lmax+1),
	}
	for l := range r.ThetaL {
		r.ThetaL[l] = math.Sin(float64(l)+k) / float64(l+1)
		r.ThetaPL[l] = math.Cos(float64(l)*k) / float64(l+3)
	}
	r.Stats.Steps = 100
	r.Stats.Evals = 800
	return r
}

func TestPackUnpackRoundTrip(t *testing.T) {
	r := fakeResult(0.05, 17)
	sum := packSummary(3, r)
	mom := packMoments(3, r)
	if len(sum) != 21 {
		t.Fatalf("summary block length %d, want the paper's 21", len(sum))
	}
	if len(mom) != 8+2*(17+1) {
		t.Fatalf("moment block length %d, want 8+2(lmax+1)", len(mom))
	}
	ik, got, err := unpackResult(sum, mom)
	if err != nil {
		t.Fatal(err)
	}
	if ik != 3 {
		t.Fatalf("ik = %d", ik)
	}
	if got.K != r.K || got.DeltaC != r.DeltaC || got.Eta != r.Eta ||
		got.Stats.Evals != r.Stats.Evals || got.LMax != r.LMax {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	for l := range r.ThetaL {
		if got.ThetaL[l] != r.ThetaL[l] || got.ThetaPL[l] != r.ThetaPL[l] {
			t.Fatalf("moment %d mismatch", l)
		}
	}
}

func TestUnpackRejectsCorruptBlocks(t *testing.T) {
	r := fakeResult(0.1, 8)
	sum := packSummary(1, r)
	mom := packMoments(2, r) // mismatched ik
	if _, _, err := unpackResult(sum, mom); err == nil {
		t.Fatal("ik mismatch accepted")
	}
	if _, _, err := unpackResult(sum[:5], packMoments(1, r)); err == nil {
		t.Fatal("short summary accepted")
	}
	if _, _, err := unpackResult(sum, mom[:3]); err == nil {
		t.Fatal("short moments accepted")
	}
}

// Property: pack/unpack is the identity for any finite payload.
func TestQuickPackUnpack(t *testing.T) {
	f := func(kRaw float64, ikRaw uint16) bool {
		k := math.Mod(math.Abs(kRaw), 10.0) + 1e-4
		if math.IsNaN(k) || math.IsInf(k, 0) {
			return true
		}
		ik := int(ikRaw%1000) + 1
		r := fakeResult(k, 12)
		gotIK, got, err := unpackResult(packSummary(ik, r), packMoments(ik, r))
		if err != nil || gotIK != ik {
			return false
		}
		return got.K == r.K && got.HDot == r.HDot
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// runParallel executes a full master/worker run over the given endpoints.
func runParallel(t *testing.T, eps []mp.Endpoint, ks []float64, cfg Config) *Results {
	t.Helper()
	m := model(t)
	cfg.KValues = ks
	var wg sync.WaitGroup
	for w := 1; w < len(eps); w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if err := Worker(eps[w], m, ks, cfg.Mode); err != nil {
				t.Errorf("worker %d: %v", w, err)
			}
		}(w)
	}
	res, err := Master(eps[0], m, cfg)
	if err != nil {
		t.Fatalf("master: %v", err)
	}
	wg.Wait()
	return res
}

func testKs() []float64 { return []float64{0.002, 0.012, 0.03, 0.05, 0.075, 0.02, 0.008} }

func smallMode() core.Params {
	return core.Params{LMax: 10, Gauge: core.Synchronous, TauEnd: 300}
}

func TestMasterWorkerChanTransport(t *testing.T) {
	_, eps, err := chanmp.New(4) // 1 master + 3 workers
	if err != nil {
		t.Fatal(err)
	}
	ks := testKs()
	res := runParallel(t, eps, ks, Config{Mode: smallMode()})
	for i, r := range res.Mode {
		if r == nil {
			t.Fatalf("missing result %d", i)
		}
		if r.K != ks[i] {
			t.Fatalf("result %d has k=%g want %g", i, r.K, ks[i])
		}
	}
	if res.NProc != 4 || res.Wallclock <= 0 || res.BytesReceived == 0 {
		t.Fatalf("telemetry: %+v", res)
	}
	if len(res.Workers) == 0 {
		t.Fatal("no worker timings")
	}
	modes := 0
	var cpu, flops float64
	for _, w := range res.Workers {
		modes += w.Modes
		cpu += w.Seconds
		flops += w.Flops
	}
	if modes != len(ks) {
		t.Fatalf("workers computed %d modes, want %d", modes, len(ks))
	}
	if cpu <= 0 || flops <= 0 {
		t.Fatalf("busy time %g s, %g flops", cpu, flops)
	}
}

// The same protocol must run unchanged over the strict arrival-order (MPL)
// transport — the compatibility the paper asserts in Section 4.
func TestMasterWorkerFIFOTransport(t *testing.T) {
	_, eps, err := fifomp.New(3)
	if err != nil {
		t.Fatal(err)
	}
	res := runParallel(t, eps, testKs(), Config{Mode: smallMode()})
	for i, r := range res.Mode {
		if r == nil {
			t.Fatalf("missing result %d", i)
		}
	}
}

func TestMasterWorkerTCPTransport(t *testing.T) {
	hub, err := tcpmp.NewHub("127.0.0.1:0", 3)
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	eps := make([]mp.Endpoint, 3)
	var wg sync.WaitGroup
	var mu sync.Mutex
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ep, err := tcpmp.Connect(hub.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			eps[ep.Rank()] = ep
			mu.Unlock()
		}()
	}
	wg.Wait()
	res := runParallel(t, eps, testKs()[:4], Config{Mode: smallMode()})
	for i, r := range res.Mode {
		if r == nil {
			t.Fatalf("missing result %d", i)
		}
	}
	if hub.BytesMoved() == 0 {
		t.Fatal("no bytes routed")
	}
}

// Results must be byte-identical regardless of transport and worker count —
// determinism of the physics under the parallel decomposition.
func TestParallelDeterminism(t *testing.T) {
	ks := testKs()
	run := func(nproc int) *Results {
		_, eps, err := chanmp.New(nproc)
		if err != nil {
			t.Fatal(err)
		}
		return runParallel(t, eps, ks, Config{Mode: smallMode()})
	}
	a := run(2)
	b := run(5)
	for i := range ks {
		if a.Mode[i].DeltaC != b.Mode[i].DeltaC {
			t.Fatalf("delta_c differs with worker count at k=%g: %g vs %g",
				ks[i], a.Mode[i].DeltaC, b.Mode[i].DeltaC)
		}
		for l := range a.Mode[i].ThetaL {
			if a.Mode[i].ThetaL[l] != b.Mode[i].ThetaL[l] {
				t.Fatalf("Theta_%d differs with worker count", l)
			}
		}
	}
}

func TestHandOutOrders(t *testing.T) {
	// Any permutation must produce complete results in input order; the
	// dispatch layer computes the actual schedule.
	ks := testKs()
	for _, order := range [][]int{nil, {6, 5, 4, 3, 2, 1, 0}, {4, 3, 5, 0, 6, 2, 1}} {
		_, eps, err := chanmp.New(3)
		if err != nil {
			t.Fatal(err)
		}
		res := runParallel(t, eps, ks, Config{Mode: smallMode(), Order: order})
		for i, r := range res.Mode {
			if r == nil {
				t.Fatalf("order %v: missing result %d", order, i)
			}
			if r.K != ks[i] {
				t.Fatalf("order %v: result %d has k=%g want %g", order, i, r.K, ks[i])
			}
		}
	}
	// Malformed orders are rejected before any message is sent.
	for _, bad := range [][]int{{0, 1}, {0, 0, 1, 2, 3, 4, 5}, {0, 1, 2, 3, 4, 5, 9}} {
		_, eps, err := chanmp.New(1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Master(eps[0], model(t), Config{KValues: ks, Mode: smallMode(), Order: bad}); err == nil {
			t.Fatalf("order %v accepted", bad)
		}
	}
}

func TestPerKLMaxAssignment(t *testing.T) {
	// The per-k cutoff rides in the assignment message and overrides the
	// broadcast global.
	ks := testKs()[:3]
	perk := []int{8, 12, 16}
	_, eps, err := chanmp.New(3)
	if err != nil {
		t.Fatal(err)
	}
	res := runParallel(t, eps, ks, Config{Mode: smallMode(), PerKLMax: perk})
	for i, r := range res.Mode {
		if r.LMax != perk[i] {
			t.Fatalf("mode %d ran with lmax %d, want %d", i, r.LMax, perk[i])
		}
	}
	_, eps, err = chanmp.New(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Master(eps[0], model(t), Config{KValues: ks, Mode: smallMode(), PerKLMax: []int{8}}); err == nil {
		t.Fatal("short per-k lmax table accepted")
	}
}

func TestMasterWorkerWithSources(t *testing.T) {
	// With KeepSources the tag-7 block ships the line-of-sight samples,
	// bitwise identical to a direct serial evolution.
	m := model(t)
	mode := smallMode()
	mode.Gauge = core.ConformalNewtonian
	mode.KeepSources = true
	ks := testKs()[:3]
	_, eps, err := chanmp.New(3)
	if err != nil {
		t.Fatal(err)
	}
	res := runParallel(t, eps, ks, Config{Mode: mode})
	for i, r := range res.Mode {
		if r == nil || len(r.Sources) == 0 {
			t.Fatalf("mode %d arrived without sources", i)
		}
		p := mode
		p.K = ks[i]
		direct, err := m.Evolve(p)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r.Sources, direct.Sources) {
			t.Fatalf("mode %d sources differ from serial evolution", i)
		}
	}
}

func TestOutputFiles(t *testing.T) {
	_, eps, err := chanmp.New(3)
	if err != nil {
		t.Fatal(err)
	}
	var ascii bytes.Buffer
	var bin bytes.Buffer
	ks := testKs()[:4]
	runParallel(t, eps, ks, Config{Mode: smallMode(), ASCIIOut: &ascii, BinaryOut: &bin})
	lines := strings.Split(strings.TrimSpace(ascii.String()), "\n")
	if len(lines) != len(ks) {
		t.Fatalf("ascii lines %d, want %d", len(lines), len(ks))
	}
	for _, ln := range lines {
		if got := len(strings.Fields(ln)); got != 20 {
			t.Fatalf("ascii record has %d fields, want the paper's 20", got)
		}
	}
	recs, err := ReadBinaryRecords(&bin)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(ks) {
		t.Fatalf("binary records %d, want %d", len(recs), len(ks))
	}
	for _, rec := range recs {
		if len(rec) < momentsHeaderLen {
			t.Fatal("truncated binary record")
		}
	}
}

func TestSingleWorkerMatchesSerial(t *testing.T) {
	// PLINGER with one worker must equal a direct core evolution.
	m := model(t)
	ks := []float64{0.03}
	_, eps, err := chanmp.New(2)
	if err != nil {
		t.Fatal(err)
	}
	res := runParallel(t, eps, ks, Config{Mode: smallMode()})
	p := smallMode()
	p.K = 0.03
	direct, err := m.Evolve(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode[0].DeltaC != direct.DeltaC || res.Mode[0].Eta != direct.Eta {
		t.Fatalf("parallel result differs from serial: %g vs %g",
			res.Mode[0].DeltaC, direct.DeltaC)
	}
}

func TestMasterRejectsEmptyWork(t *testing.T) {
	_, eps, err := chanmp.New(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Master(eps[0], model(t), Config{}); err == nil {
		t.Fatal("empty k list accepted")
	}
}

func TestSourcesRoundTrip(t *testing.T) {
	r := fakeResult(0.05, 9)
	r.Sources = []core.Sample{
		{Tau: 1, A: 0.01, Theta0: 0.1, Psi: -0.2, VB: 0.3, Kdot: 2, DeltaC: -1, Residual: 1e-5},
		{Tau: 2, Eta: 0.5, HDot: -0.1, EtaDot: 0.02, Alpha: 0.3, Pi: 0.01, Kappa: 4, DeltaB: -0.5},
	}
	y := packSources(4, r)
	got, err := unpackSources(4, y)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, r.Sources) {
		t.Fatalf("sources round trip mismatch: %+v", got)
	}
	if _, err := unpackSources(5, y); err == nil {
		t.Fatal("ik mismatch accepted")
	}
	if _, err := unpackSources(4, y[:len(y)-1]); err == nil {
		t.Fatal("truncated block accepted")
	}
	y[2] = 5
	if _, err := unpackSources(4, y); err == nil {
		t.Fatal("field-count skew accepted")
	}
}

func TestWriteASCIIRecordValidates(t *testing.T) {
	var buf bytes.Buffer
	if err := writeASCIIRecord(&buf, make([]float64, 7)); err == nil {
		t.Fatal("short summary block accepted")
	}
	if buf.Len() != 0 {
		t.Fatal("short block partially written")
	}
	if err := writeASCIIRecord(&buf, packSummary(1, fakeResult(0.05, 8))); err != nil {
		t.Fatal(err)
	}
	if got := len(strings.Fields(buf.String())); got != asciiRecordLen {
		t.Fatalf("ascii record has %d fields, want %d", got, asciiRecordLen)
	}
}

func TestMessageSizesMatchPaper(t *testing.T) {
	// "the results are gathered as a single message of roughly 150 bytes
	// ... to a maximum of 80 kbyte": the tag-5 block is 8*(8+2(lmax+1))
	// bytes. With lmax ~ 10 (small k) that is ~240 bytes; with the paper's
	// lmax = 5000 it is ~80 kB. Verify the formula at both ends.
	small := packMoments(1, fakeResult(0.001, 10))
	if got := 8 * len(small); got > 400 {
		t.Fatalf("small-k message %d bytes, want a few hundred", got)
	}
	big := packMoments(1, fakeResult(0.5, 5000))
	if got := 8 * len(big); got < 75000 || got > 90000 {
		t.Fatalf("production-lmax message %d bytes, want ~80 kB as in the paper", got)
	}
}
