// Package plinger implements the wire protocol of the paper's parallel
// code: the master/worker decomposition over independent k modes, using
// exactly the message-passing algorithm of Appendix A. The master
// broadcasts the run parameters (tag 1), workers request wavenumbers
// (tag 2), the master assigns them (tag 3), workers return a 21-double
// summary block (tag 4) followed by the full multipole block of
// 8+2(lmax+1) doubles (tag 5), and the master answers each result with the
// next wavenumber or a stop message (tag 6). The master writes an ASCII
// summary file and a binary moment file, like the original's
// unit_1/unit_2.
//
// Scheduling policy (the paper's largest-k-first trick) and run telemetry
// live one layer up, in internal/dispatch: the master receives an explicit
// hand-out order and returns raw per-worker tallies.
package plinger

import (
	"fmt"

	"plinger/internal/core"
)

// Message tags 1-6 exactly as tabulated in Appendix A of the paper; tag 7
// is this port's extension for shipping line-of-sight source samples so a
// CMBFAST-style spectrum can be assembled at the master.
const (
	// TagInit is the first message from master to workers.
	TagInit = 1
	// TagRequest is sent by a worker asking for a wavenumber.
	TagRequest = 2
	// TagAssign carries a wavenumber index from master to worker.
	TagAssign = 3
	// TagSummary carries the worker's first data block (21 doubles + lmax).
	TagSummary = 4
	// TagMoments carries the worker's second block (8 + 2(lmax+1) doubles).
	TagMoments = 5
	// TagStop tells a worker to exit.
	TagStop = 6
	// TagSources carries the recorded line-of-sight source samples; it is
	// only sent when the run requests KeepSources.
	TagSources = 7
)

// initBlockLen is the length of the tag-1 broadcast: the paper's 5 doubles
// of run parameters plus the keep-sources flag.
const initBlockLen = 6

// summaryBlockLen is the length of the tag-4 block: the paper's master
// receives 21 doubles (20 summary values plus lmax).
const summaryBlockLen = 21

// Summary block layout (the paper prints y(1..20) to the ASCII file and
// keeps y(21) = lmax).
const (
	sumIK       = 0  // wavenumber index (1-based, as in the Fortran)
	sumK        = 1  // k in Mpc^-1
	sumTau      = 2  // final conformal time
	sumA        = 3  // final scale factor
	sumDeltaC   = 4  // CDM density contrast
	sumDeltaB   = 5  // baryon density contrast
	sumDeltaG   = 6  // photon density contrast
	sumDeltaNu  = 7  // massless neutrino density contrast
	sumDeltaHNu = 8  // massive neutrino density contrast
	sumThetaC   = 9  // CDM velocity divergence
	sumThetaB   = 10 // baryon velocity divergence
	sumPhi      = 11 // Newtonian potential phi (or 0)
	sumPsi      = 12 // Newtonian potential psi (or 0)
	sumEta      = 13 // synchronous eta (or 0)
	sumHDot     = 14 // synchronous h-dot (or 0)
	sumResidual = 15 // max Einstein constraint residual
	sumSeconds  = 16 // worker CPU seconds for this mode
	sumFlops    = 17 // model flop count for this mode
	sumSteps    = 18 // accepted integrator steps
	sumEvals    = 19 // right-hand-side evaluations
	sumLMax     = 20 // hierarchy cutoff (the paper's y(21))
)

// momentsHeaderLen is the 8-double header preceding the two moment arrays
// in the tag-5 block.
const momentsHeaderLen = 8

// packSummary flattens a Result into the paper's tag-4 block.
func packSummary(ik int, r *core.Result) []float64 {
	y := make([]float64, summaryBlockLen)
	y[sumIK] = float64(ik)
	y[sumK] = r.K
	y[sumTau] = r.Tau
	y[sumA] = r.A
	y[sumDeltaC] = r.DeltaC
	y[sumDeltaB] = r.DeltaB
	y[sumDeltaG] = r.DeltaG
	y[sumDeltaNu] = r.DeltaNu
	y[sumDeltaHNu] = r.DeltaHNu
	y[sumThetaC] = r.ThetaC
	y[sumThetaB] = r.ThetaB
	y[sumPhi] = r.Phi
	y[sumPsi] = r.Psi
	y[sumEta] = r.Eta
	y[sumHDot] = r.HDot
	y[sumResidual] = r.MaxConstraintResidual
	y[sumSeconds] = r.Seconds
	y[sumFlops] = r.Flops
	y[sumSteps] = float64(r.Stats.Steps)
	y[sumEvals] = float64(r.Stats.Evals)
	y[sumLMax] = float64(r.LMax)
	return y
}

// packMoments flattens the multipoles into the paper's tag-5 block:
// an 8-double header, then Theta_l (temperature), then ThetaP_l
// (polarization), each of length lmax+1.
func packMoments(ik int, r *core.Result) []float64 {
	l1 := len(r.ThetaL)
	y := make([]float64, momentsHeaderLen+2*l1)
	y[0] = float64(ik)
	y[1] = r.K
	y[2] = float64(l1 - 1)
	y[3] = r.Tau
	y[4] = float64(r.Gauge)
	y[5] = r.MaxConstraintResidual
	y[6] = r.Seconds
	y[7] = r.Flops
	copy(y[momentsHeaderLen:], r.ThetaL)
	copy(y[momentsHeaderLen+l1:], r.ThetaPL)
	return y
}

// sourcesHeaderLen is the 3-double header (ik, sample count, fields per
// sample) preceding the flattened samples in the tag-7 block.
const sourcesHeaderLen = 3

// sourceFieldLen is the number of doubles per line-of-sight sample; the
// field count travels in the header so a mismatch is detected, not
// misparsed.
const sourceFieldLen = 17

// packSources flattens the recorded line-of-sight samples into the tag-7
// block.
func packSources(ik int, r *core.Result) []float64 {
	y := make([]float64, sourcesHeaderLen+sourceFieldLen*len(r.Sources))
	y[0] = float64(ik)
	y[1] = float64(len(r.Sources))
	y[2] = sourceFieldLen
	o := sourcesHeaderLen
	for _, s := range r.Sources {
		y[o+0] = s.Tau
		y[o+1] = s.A
		y[o+2] = s.Theta0
		y[o+3] = s.Psi
		y[o+4] = s.Phi
		y[o+5] = s.PhiDot
		y[o+6] = s.Eta
		y[o+7] = s.HDot
		y[o+8] = s.EtaDot
		y[o+9] = s.Alpha
		y[o+10] = s.VB
		y[o+11] = s.Pi
		y[o+12] = s.Kdot
		y[o+13] = s.Kappa
		y[o+14] = s.DeltaC
		y[o+15] = s.DeltaB
		y[o+16] = s.Residual
		o += sourceFieldLen
	}
	return y
}

// unpackSources reconstructs the line-of-sight samples from a tag-7 block.
func unpackSources(ik int, y []float64) ([]core.Sample, error) {
	if len(y) < sourcesHeaderLen {
		return nil, fmt.Errorf("plinger: sources block length %d", len(y))
	}
	if int(y[0]) != ik {
		return nil, fmt.Errorf("plinger: sources block for ik=%d arrived with result for ik=%d", int(y[0]), ik)
	}
	if int(y[2]) != sourceFieldLen {
		return nil, fmt.Errorf("plinger: sources block has %d fields per sample, want %d", int(y[2]), sourceFieldLen)
	}
	n := int(y[1])
	if n < 0 || len(y) != sourcesHeaderLen+n*sourceFieldLen {
		return nil, fmt.Errorf("plinger: sources block length %d for %d samples", len(y), n)
	}
	out := make([]core.Sample, n)
	o := sourcesHeaderLen
	for i := range out {
		out[i] = core.Sample{
			Tau: y[o+0], A: y[o+1], Theta0: y[o+2],
			Psi: y[o+3], Phi: y[o+4], PhiDot: y[o+5],
			Eta: y[o+6], HDot: y[o+7], EtaDot: y[o+8], Alpha: y[o+9],
			VB: y[o+10], Pi: y[o+11],
			Kdot: y[o+12], Kappa: y[o+13],
			DeltaC: y[o+14], DeltaB: y[o+15],
			Residual: y[o+16],
		}
		o += sourceFieldLen
	}
	return out, nil
}

// unpackResult reconstructs a Result (the master's view) from the two
// blocks.
func unpackResult(sum, mom []float64) (ik int, r *core.Result, err error) {
	if len(sum) != summaryBlockLen {
		return 0, nil, fmt.Errorf("plinger: summary block length %d, want %d", len(sum), summaryBlockLen)
	}
	lmax := int(sum[sumLMax])
	l1 := lmax + 1
	if len(mom) != momentsHeaderLen+2*l1 {
		return 0, nil, fmt.Errorf("plinger: moment block length %d, want %d", len(mom), momentsHeaderLen+2*l1)
	}
	ik = int(sum[sumIK])
	if int(mom[0]) != ik {
		return 0, nil, fmt.Errorf("plinger: moment block for ik=%d arrived with summary for ik=%d", int(mom[0]), ik)
	}
	r = &core.Result{
		K:                     sum[sumK],
		Tau:                   sum[sumTau],
		A:                     sum[sumA],
		Gauge:                 core.Gauge(int(mom[4])),
		LMax:                  lmax,
		DeltaC:                sum[sumDeltaC],
		DeltaB:                sum[sumDeltaB],
		DeltaG:                sum[sumDeltaG],
		DeltaNu:               sum[sumDeltaNu],
		DeltaHNu:              sum[sumDeltaHNu],
		ThetaC:                sum[sumThetaC],
		ThetaB:                sum[sumThetaB],
		Phi:                   sum[sumPhi],
		Psi:                   sum[sumPsi],
		Eta:                   sum[sumEta],
		HDot:                  sum[sumHDot],
		MaxConstraintResidual: sum[sumResidual],
		Seconds:               sum[sumSeconds],
		Flops:                 sum[sumFlops],
		ThetaL:                append([]float64(nil), mom[momentsHeaderLen:momentsHeaderLen+l1]...),
		ThetaPL:               append([]float64(nil), mom[momentsHeaderLen+l1:]...),
	}
	r.Stats.Steps = int(sum[sumSteps])
	r.Stats.Evals = int(sum[sumEvals])
	return ik, r, nil
}
