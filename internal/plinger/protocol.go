// Package plinger implements the parallel code of the paper: the
// master/worker decomposition over independent k modes, using exactly the
// message-passing algorithm of Appendix A. The master broadcasts the run
// parameters (tag 1), workers request wavenumbers (tag 2), the master
// assigns them (tag 3), workers return a 21-double summary block (tag 4)
// followed by the full multipole block of 8+2(lmax+1) doubles (tag 5), and
// the master answers each result with the next wavenumber or a stop message
// (tag 6). Wavenumbers are handed out largest-k-first, the paper's trick
// for minimizing end-of-run idle time, and the master writes an ASCII
// summary file and a binary moment file, like the original's unit_1/unit_2.
package plinger

import (
	"fmt"

	"plinger/internal/core"
)

// Message tags, exactly as tabulated in Appendix A of the paper.
const (
	// TagInit is the first message from master to workers.
	TagInit = 1
	// TagRequest is sent by a worker asking for a wavenumber.
	TagRequest = 2
	// TagAssign carries a wavenumber index from master to worker.
	TagAssign = 3
	// TagSummary carries the worker's first data block (21 doubles + lmax).
	TagSummary = 4
	// TagMoments carries the worker's second block (8 + 2(lmax+1) doubles).
	TagMoments = 5
	// TagStop tells a worker to exit.
	TagStop = 6
)

// initBlockLen is the length of the tag-1 broadcast: the paper sends 5
// doubles of run parameters.
const initBlockLen = 5

// summaryBlockLen is the length of the tag-4 block: the paper's master
// receives 21 doubles (20 summary values plus lmax).
const summaryBlockLen = 21

// Summary block layout (the paper prints y(1..20) to the ASCII file and
// keeps y(21) = lmax).
const (
	sumIK       = 0  // wavenumber index (1-based, as in the Fortran)
	sumK        = 1  // k in Mpc^-1
	sumTau      = 2  // final conformal time
	sumA        = 3  // final scale factor
	sumDeltaC   = 4  // CDM density contrast
	sumDeltaB   = 5  // baryon density contrast
	sumDeltaG   = 6  // photon density contrast
	sumDeltaNu  = 7  // massless neutrino density contrast
	sumDeltaHNu = 8  // massive neutrino density contrast
	sumThetaC   = 9  // CDM velocity divergence
	sumThetaB   = 10 // baryon velocity divergence
	sumPhi      = 11 // Newtonian potential phi (or 0)
	sumPsi      = 12 // Newtonian potential psi (or 0)
	sumEta      = 13 // synchronous eta (or 0)
	sumHDot     = 14 // synchronous h-dot (or 0)
	sumResidual = 15 // max Einstein constraint residual
	sumSeconds  = 16 // worker CPU seconds for this mode
	sumFlops    = 17 // model flop count for this mode
	sumSteps    = 18 // accepted integrator steps
	sumEvals    = 19 // right-hand-side evaluations
	sumLMax     = 20 // hierarchy cutoff (the paper's y(21))
)

// momentsHeaderLen is the 8-double header preceding the two moment arrays
// in the tag-5 block.
const momentsHeaderLen = 8

// packSummary flattens a Result into the paper's tag-4 block.
func packSummary(ik int, r *core.Result) []float64 {
	y := make([]float64, summaryBlockLen)
	y[sumIK] = float64(ik)
	y[sumK] = r.K
	y[sumTau] = r.Tau
	y[sumA] = r.A
	y[sumDeltaC] = r.DeltaC
	y[sumDeltaB] = r.DeltaB
	y[sumDeltaG] = r.DeltaG
	y[sumDeltaNu] = r.DeltaNu
	y[sumDeltaHNu] = r.DeltaHNu
	y[sumThetaC] = r.ThetaC
	y[sumThetaB] = r.ThetaB
	y[sumPhi] = r.Phi
	y[sumPsi] = r.Psi
	y[sumEta] = r.Eta
	y[sumHDot] = r.HDot
	y[sumResidual] = r.MaxConstraintResidual
	y[sumSeconds] = r.Seconds
	y[sumFlops] = r.Flops
	y[sumSteps] = float64(r.Stats.Steps)
	y[sumEvals] = float64(r.Stats.Evals)
	y[sumLMax] = float64(r.LMax)
	return y
}

// packMoments flattens the multipoles into the paper's tag-5 block:
// an 8-double header, then Theta_l (temperature), then ThetaP_l
// (polarization), each of length lmax+1.
func packMoments(ik int, r *core.Result) []float64 {
	l1 := len(r.ThetaL)
	y := make([]float64, momentsHeaderLen+2*l1)
	y[0] = float64(ik)
	y[1] = r.K
	y[2] = float64(l1 - 1)
	y[3] = r.Tau
	y[4] = float64(r.Gauge)
	y[5] = r.MaxConstraintResidual
	y[6] = r.Seconds
	y[7] = r.Flops
	copy(y[momentsHeaderLen:], r.ThetaL)
	copy(y[momentsHeaderLen+l1:], r.ThetaPL)
	return y
}

// unpackResult reconstructs a Result (the master's view) from the two
// blocks.
func unpackResult(sum, mom []float64) (ik int, r *core.Result, err error) {
	if len(sum) != summaryBlockLen {
		return 0, nil, fmt.Errorf("plinger: summary block length %d, want %d", len(sum), summaryBlockLen)
	}
	lmax := int(sum[sumLMax])
	l1 := lmax + 1
	if len(mom) != momentsHeaderLen+2*l1 {
		return 0, nil, fmt.Errorf("plinger: moment block length %d, want %d", len(mom), momentsHeaderLen+2*l1)
	}
	ik = int(sum[sumIK])
	if int(mom[0]) != ik {
		return 0, nil, fmt.Errorf("plinger: moment block for ik=%d arrived with summary for ik=%d", int(mom[0]), ik)
	}
	r = &core.Result{
		K:                     sum[sumK],
		Tau:                   sum[sumTau],
		A:                     sum[sumA],
		Gauge:                 core.Gauge(int(mom[4])),
		LMax:                  lmax,
		DeltaC:                sum[sumDeltaC],
		DeltaB:                sum[sumDeltaB],
		DeltaG:                sum[sumDeltaG],
		DeltaNu:               sum[sumDeltaNu],
		DeltaHNu:              sum[sumDeltaHNu],
		ThetaC:                sum[sumThetaC],
		ThetaB:                sum[sumThetaB],
		Phi:                   sum[sumPhi],
		Psi:                   sum[sumPsi],
		Eta:                   sum[sumEta],
		HDot:                  sum[sumHDot],
		MaxConstraintResidual: sum[sumResidual],
		Seconds:               sum[sumSeconds],
		Flops:                 sum[sumFlops],
		ThetaL:                append([]float64(nil), mom[momentsHeaderLen:momentsHeaderLen+l1]...),
		ThetaPL:               append([]float64(nil), mom[momentsHeaderLen+l1:]...),
	}
	r.Stats.Steps = int(sum[sumSteps])
	r.Stats.Evals = int(sum[sumEvals])
	return ik, r, nil
}
