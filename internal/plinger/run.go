package plinger

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"plinger/internal/core"
	"plinger/internal/mp"
	"plinger/internal/obs"
)

// obsModeSeconds is the process-wide per-mode busy-time histogram, the same
// series the dispatch backends observe into (get-or-create on obs.Default
// resolves both registrations to one histogram). The MP worker loop books
// here because its evolutions happen on the worker side of the wire, outside
// any dispatch accounting; the master does not book received modes again.
var obsModeSeconds = obs.Default.Histogram("plinger_sweep_mode_seconds", "",
	"busy seconds per evolved mode (rank-sharded)", obs.ModeBuckets(), 16)

// Config describes one parallel run. Scheduling policy is not decided
// here: internal/dispatch computes the hand-out order and this package only
// speaks the wire protocol.
type Config struct {
	// KValues are the wavenumbers to evolve (Mpc^-1).
	KValues []float64
	// Mode holds the per-k evolution parameters (K is overwritten).
	Mode core.Params
	// Order is the hand-out order as a permutation of indices into
	// KValues (nil: input order). When Mode.KBatch > 1 it is instead a
	// permutation of indices into BatchBlocks(len(KValues), Mode.KBatch):
	// the unit of hand-out becomes one consecutive index block.
	Order []int
	// PerKLMax optionally overrides the hierarchy cutoff per wavenumber
	// (entries <= 0 fall back to the broadcast Mode.LMax); the override
	// rides along in the tag-3 assignment message.
	PerKLMax []int
	// ASCIIOut, if non-nil, receives the unit_1-style text summary lines.
	ASCIIOut io.Writer
	// BinaryOut, if non-nil, receives the unit_2-style binary moment
	// records.
	BinaryOut io.Writer
	// AssignDeadline, when > 0, turns on the fault-tolerant master: it
	// bounds each assignment's round trip (and each worker's start-up).
	// A worker that blows the deadline — or is reported dead through
	// WorkerDown, or violates the protocol — is declared failed, its
	// in-flight block is reassigned to a surviving worker, and with no
	// survivors left the master recomputes the orphans itself. Every mode
	// is a pure function of (k, mode, lmax), so a recovered sweep is
	// bitwise-identical to an undisturbed one. Zero keeps the paper's
	// original semantics: no fault tolerance, one lost worker stalls the
	// run.
	AssignDeadline time.Duration
	// WorkerDown, when non-nil, delivers ranks of workers known to have
	// died out-of-band (e.g. a local worker goroutine returning an error),
	// so the master can orphan their work before the deadline expires.
	// Only consumed when AssignDeadline > 0.
	WorkerDown <-chan int
}

// WorkerTiming is the per-worker accounting used for Figure 1, extended
// with the fault ledger.
type WorkerTiming struct {
	Rank    int
	Modes   int     // k values computed
	Seconds float64 // busy seconds (the paper's etime)
	Flops   float64 // model flop count
	// DeadlineMisses counts assignment (or start-up) deadlines this worker
	// blew before being declared failed.
	DeadlineMisses int
}

// Results is the master's collected output, ordered like KValues, plus the
// raw run telemetry. Derived quantities (parallel efficiency, flop rate)
// are computed by internal/dispatch so that the pool and message-passing
// backends share one formula.
type Results struct {
	Mode    []*core.Result
	KValues []float64
	// NProc is the world size (workers plus master).
	NProc int
	// Wallclock is the master's elapsed seconds.
	Wallclock float64
	// BytesReceived is the protocol payload volume at the master.
	BytesReceived int64
	// Workers holds the per-worker tallies, sorted by rank. On a run that
	// degraded to local recomputation the master itself appears under its
	// own rank.
	Workers []WorkerTiming

	// Fault-tolerance ledger; all zero on an undisturbed run.
	WorkerFailures int // workers declared dead (crash, hang, protocol violation)
	Reassignments  int // orphaned blocks handed to surviving workers
	DeadlineMisses int // total assignment/start-up deadline expiries
	LocalModes     int // modes recomputed by the master's degradation path
	// FailedRanks lists the ranks declared dead, in declaration order. A
	// long-lived caller (the farm supervisor) uses it to retire exactly the
	// casualties' connections while keeping the survivors attached.
	FailedRanks []int
}

// BatchBlocks splits nk grid indices into consecutive [lo, hi) blocks of up
// to b members each — the unit of hand-out for lockstep batched evolution.
// Blocks follow the input order of the grid (block j covers indices
// [j*b, min((j+1)*b, nk))), so the decomposition — and with it every
// batched trajectory — depends only on (nk, b), never on schedule or
// transport. b <= 1 yields one block per index. The single definition here
// serves both the dispatch backends and the wire protocol's master, which
// must agree on it exactly.
func BatchBlocks(nk, b int) [][2]int {
	if b < 1 {
		b = 1
	}
	blocks := make([][2]int, 0, (nk+b-1)/b)
	for lo := 0; lo < nk; lo += b {
		blocks = append(blocks, [2]int{lo, min(lo+b, nk)})
	}
	return blocks
}

// handOutOrder validates cfg.Order (or builds the identity order) as a
// permutation of 0..nk-1.
func handOutOrder(cfg Config, nk int) ([]int, error) {
	if cfg.Order == nil {
		order := make([]int, nk)
		for i := range order {
			order[i] = i
		}
		return order, nil
	}
	if len(cfg.Order) != nk {
		return nil, fmt.Errorf("plinger: hand-out order has %d entries for %d wavenumbers", len(cfg.Order), nk)
	}
	seen := make([]bool, nk)
	for _, ik := range cfg.Order {
		if ik < 0 || ik >= nk || seen[ik] {
			return nil, fmt.Errorf("plinger: hand-out order is not a permutation of 0..%d", nk-1)
		}
		seen[ik] = true
	}
	return cfg.Order, nil
}

// workerFaultError marks an error caused by one worker's data or behavior
// (a protocol violation, a corrupt block) rather than by the master itself.
// The fault-tolerant master converts it into a worker failure; the paper's
// original protocol aborts the run with the inner error.
type workerFaultError struct{ err error }

func (e workerFaultError) Error() string { return e.err.Error() }
func (e workerFaultError) Unwrap() error { return e.err }

// Master runs the master subroutine of Appendix A over the endpoint. It
// returns when every wavenumber has been received and every worker stopped.
//
// With cfg.AssignDeadline > 0 the master additionally detects worker
// failures (crashes, hangs, protocol violations, out-of-band death reports)
// and recovers: orphaned blocks are reassigned to survivors, and with no
// survivors the master recomputes them itself. Recovery always re-runs the
// WHOLE original block — a block's lockstep trajectories depend on every
// member, so partial re-batching would change bits — and duplicate results
// are resolved first-wins, keeping recovered sweeps bitwise-identical to
// undisturbed ones.
func Master(ep mp.Endpoint, model *core.Model, cfg Config) (*Results, error) {
	nk := len(cfg.KValues)
	if nk == 0 {
		return nil, fmt.Errorf("plinger: no wavenumbers to distribute")
	}
	blocks := BatchBlocks(nk, cfg.Mode.KBatch)
	order, err := handOutOrder(cfg, len(blocks))
	if err != nil {
		return nil, err
	}
	if cfg.PerKLMax != nil && len(cfg.PerKLMax) != nk {
		return nil, fmt.Errorf("plinger: per-k lmax table has %d entries for %d wavenumbers", len(cfg.PerKLMax), nk)
	}
	start := time.Now()

	// Broadcast initial data (tag 1): end time, lmax, nk, gauge, rtol,
	// keep-sources flag.
	tauEnd := cfg.Mode.TauEnd
	if tauEnd <= 0 {
		tauEnd = model.BG.Tau0()
	}
	keep := 0.0
	if cfg.Mode.KeepSources {
		keep = 1.0
	}
	init := []float64{tauEnd, float64(cfg.Mode.LMax), float64(nk),
		float64(cfg.Mode.Gauge), cfg.Mode.RTol, keep}
	if len(init) != initBlockLen {
		panic("plinger: init block length drifted from the protocol")
	}
	ft := cfg.AssignDeadline > 0
	prober, hasProber := ep.(mp.DeadlineProber)
	if err := ep.Bcast(TagInit, init); err != nil {
		// Under fault tolerance a worker unreachable at broadcast time is a
		// worker failure, not a run failure: whoever missed the init never
		// requests work and falls to the start-up deadline below.
		if !ft {
			return nil, fmt.Errorf("plinger: broadcast: %w", err)
		}
	}

	res := &Results{
		Mode:    make([]*core.Result, nk),
		KValues: append([]float64(nil), cfg.KValues...),
	}
	workers := map[int]*WorkerTiming{}
	var bytes int64

	next := 0 // position in order
	done := 0
	stopped := map[int]bool{}
	// left counts a worker's outstanding members of its current block, so a
	// batched assignment triggers exactly one follow-up hand-out — after its
	// last member completes, not after every one.
	left := map[int]int{}

	// Fault-tolerance state. Every live worker owes the master a message
	// before its deadlineAt entry expires: first the start-up request, then
	// per-assignment progress. orphans holds blocks whose owner died; they
	// are handed out ahead of fresh work. computing counts live workers with
	// an assigned block still outstanding.
	failed := map[int]bool{}
	assignedBlock := map[int]int{}
	deadlineAt := map[int]time.Time{}
	var orphans []int
	computing := 0
	if ft {
		for rank := 0; rank < ep.Size(); rank++ {
			if rank != ep.Master() {
				deadlineAt[rank] = start.Add(cfg.AssignDeadline)
			}
		}
	}

	touch := func(src int) *WorkerTiming {
		w := workers[src]
		if w == nil {
			w = &WorkerTiming{Rank: src}
			workers[src] = w
		}
		return w
	}

	// A mode's result arrives as two or three messages (summary, moments,
	// optionally sources). Messages from different workers interleave
	// arbitrarily — and a strict arrival-order (MPL-style) transport can
	// only ever deliver the head of the queue — so the master consumes
	// every message in arrival order and assembles records per source.
	type inflight struct {
		sum, mom []float64
	}
	pending := map[int]*inflight{}

	// failWorker declares a live worker dead: its half-assembled record is
	// discarded and its in-flight block joins the orphan queue for a full
	// re-run (the lockstep batch ties every trajectory to the whole block,
	// so resuming mid-block would change bits).
	failWorker := func(rank int) {
		if !ft || failed[rank] || stopped[rank] {
			return
		}
		failed[rank] = true
		res.WorkerFailures++
		res.FailedRanks = append(res.FailedRanks, rank)
		delete(deadlineAt, rank)
		delete(pending, rank)
		if left[rank] > 0 {
			computing--
			left[rank] = 0
			orphans = append(orphans, assignedBlock[rank])
			delete(assignedBlock, rank)
		}
	}

	blockLMax := func(lo, hi int) float64 {
		lmax := 0.0
		if cfg.PerKLMax != nil {
			// The block runs at the largest cutoff among its members
			// (the lockstep batch unifies the hierarchy anyway).
			for ik := lo; ik < hi; ik++ {
				if l := cfg.PerKLMax[ik]; l > 0 && float64(l) > lmax {
					lmax = float64(l)
				}
			}
		}
		return lmax
	}

	assign := func(dst int) error {
		blockIdx := -1
		if ft && len(orphans) > 0 {
			blockIdx = orphans[0]
			orphans = orphans[1:]
			res.Reassignments++
		} else if next < len(order) {
			blockIdx = order[next]
			next++
		}
		if blockIdx < 0 {
			if !stopped[dst] {
				stopped[dst] = true
				delete(deadlineAt, dst)
				if err := ep.Send(dst, TagStop, []float64{0}); err != nil {
					if ft {
						return nil // unreachable and already stopped: moot
					}
					return err
				}
			}
			return nil
		}
		lo, hi := blocks[blockIdx][0], blocks[blockIdx][1]
		lmax := blockLMax(lo, hi)
		left[dst] = hi - lo
		assignedBlock[dst] = blockIdx
		computing++
		if ft {
			deadlineAt[dst] = time.Now().Add(cfg.AssignDeadline)
		}
		var payload []float64
		if hi-lo == 1 {
			// The Fortran sends the 1-based wavenumber index; the
			// optional second value is the per-k hierarchy cutoff.
			payload = []float64{float64(lo + 1), lmax}
		} else {
			// Batched assignment: 1-based first index, unified cutoff, and
			// the block size as the third value.
			payload = []float64{float64(lo + 1), lmax, float64(hi - lo)}
		}
		if err := ep.Send(dst, TagAssign, payload); err != nil {
			if ft {
				// The transport already knows this worker is gone; orphan
				// the block for the next live requester.
				failWorker(dst)
				return nil
			}
			return err
		}
		return nil
	}

	complete := func(src int, fl *inflight, srcBlock []float64) error {
		delete(pending, src)
		ik1, r, err := unpackResult(fl.sum, fl.mom)
		if err != nil {
			return workerFaultError{err}
		}
		ik := ik1 - 1
		if ik < 0 || ik >= nk {
			return workerFaultError{fmt.Errorf("plinger: wavenumber index %d out of range", ik1)}
		}
		if srcBlock != nil {
			samples, err := unpackSources(ik1, srcBlock)
			if err != nil {
				return workerFaultError{err}
			}
			r.Sources = samples
		}
		if res.Mode[ik] == nil {
			// First-wins: a reassigned block re-runs members its dead owner
			// already delivered, and only the first copy of each mode counts
			// (identical bits either way — a mode is a pure function of k).
			res.Mode[ik] = r
			done++
			w := touch(src)
			w.Modes++
			w.Seconds += r.Seconds
			w.Flops += r.Flops
			if cfg.ASCIIOut != nil {
				if err := writeASCIIRecord(cfg.ASCIIOut, fl.sum); err != nil {
					return err
				}
			}
			if cfg.BinaryOut != nil {
				if err := writeBinaryRecord(cfg.BinaryOut, fl.mom); err != nil {
					return err
				}
			}
		}
		left[src]--
		if left[src] > 0 {
			return nil // more members of this worker's block are in flight
		}
		computing--
		delete(assignedBlock, src)
		return assign(src)
	}

	// live counts workers that could still produce results or requests.
	live := func() int {
		n := 0
		for rank := 0; rank < ep.Size(); rank++ {
			if rank != ep.Master() && !failed[rank] && !stopped[rank] {
				n++
			}
		}
		return n
	}

	// drainDown consumes out-of-band death reports without blocking.
	drainDown := func() {
		if !ft || cfg.WorkerDown == nil {
			return
		}
		for {
			select {
			case rank := <-cfg.WorkerDown:
				failWorker(rank)
			default:
				return
			}
		}
	}

	// expire fails every worker whose deadline has passed.
	expire := func(now time.Time) {
		for rank, dl := range deadlineAt {
			if !dl.After(now) {
				res.DeadlineMisses++
				touch(rank).DeadlineMisses++
				failWorker(rank)
			}
		}
	}

	// probeNext waits for the next message, bounded by the earliest live
	// deadline under fault tolerance. ok=false reports a deadline expiry
	// instead of a message.
	probeNext := func() (int, int, bool, error) {
		if ft && hasProber && len(deadlineAt) > 0 {
			earliest := time.Time{}
			for _, dl := range deadlineAt {
				if earliest.IsZero() || dl.Before(earliest) {
					earliest = dl
				}
			}
			wait := time.Until(earliest)
			if wait <= 0 {
				return 0, 0, false, nil
			}
			return prober.ProbeTimeout(mp.AnyTag, mp.AnySource, wait)
		}
		tag, src, err := ep.Probe(mp.AnyTag, mp.AnySource)
		return tag, src, err == nil, err
	}

	// recomputeLocal is the last-resort degradation: with every worker lost,
	// the master evolves the remaining blocks itself, mirroring the worker's
	// exact evolution call so the results stay bitwise-identical.
	recomputeLocal := func() error {
		rem := append([]int(nil), orphans...)
		orphans = orphans[:0]
		for ; next < len(order); next++ {
			rem = append(rem, order[next])
		}
		if len(rem) == 0 {
			return nil
		}
		scratch := core.NewScratch()
		self := ep.Rank()
		for _, bi := range rem {
			lo, hi := blocks[bi][0], blocks[bi][1]
			p := cfg.Mode
			p.TauEnd = tauEnd
			p.K = cfg.KValues[lo]
			if lm := blockLMax(lo, hi); lm > 0 {
				p.LMax = int(lm)
			}
			rs, err := func() (rs []*core.Result, err error) {
				// The degradation path runs on the master's own stack; a
				// panicking evolution must fail the run, not the process —
				// symmetric with the worker goroutines' recovery.
				defer func() {
					if r := recover(); r != nil {
						err = fmt.Errorf("panic: %v", r)
					}
				}()
				return model.EvolveBatchWith(cfg.KValues[lo:hi], p, nil, scratch)
			}()
			if err != nil {
				return fmt.Errorf("plinger: local recompute (ik=%d+%d): %w", lo+1, hi-lo, err)
			}
			for j, r := range rs {
				ik := lo + j
				if res.Mode[ik] != nil {
					continue // first-wins against results received earlier
				}
				res.Mode[ik] = r
				done++
				res.LocalModes++
				w := touch(self)
				w.Modes++
				w.Seconds += r.Seconds
				w.Flops += r.Flops
				obsModeSeconds.ObserveShard(self, r.Seconds)
				if cfg.ASCIIOut != nil {
					if err := writeASCIIRecord(cfg.ASCIIOut, packSummary(ik+1, r)); err != nil {
						return err
					}
				}
				if cfg.BinaryOut != nil {
					if err := writeBinaryRecord(cfg.BinaryOut, packMoments(ik+1, r)); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}

	// Under fault tolerance the loop also waits out live workers still
	// holding a block past done == nk — possible when a reassigned block's
	// members were all first-won by its dead previous owner — so that every
	// live worker ends the loop stopped. Without fault tolerance computing
	// can never outlast done == nk and the condition is the paper's.
	for done < nk || computing > 0 {
		if ft {
			drainDown()
			if live() == 0 {
				// Nobody left to compute or request: finish the sweep
				// locally rather than stall (the paper: "this has no fault
				// tolerance" — this path is precisely what it lacked).
				if err := recomputeLocal(); err != nil {
					return nil, err
				}
				break
			}
		}
		tag, src, ok, err := probeNext()
		if err != nil {
			return nil, fmt.Errorf("plinger: master probe: %w", err)
		}
		if !ok {
			expire(time.Now())
			continue
		}
		m, err := ep.Recv(tag, src)
		if err != nil {
			return nil, err
		}
		bytes += int64(8 * len(m.Data))
		if ft && failed[src] {
			// A worker declared dead may still be alive (a blown deadline on
			// a slow link). Its work was reassigned; discard the duplicates
			// and, if it asks for more, tell it to exit.
			if tag == TagRequest {
				_ = ep.Send(src, TagStop, []float64{0})
			}
			continue
		}
		if ft && left[src] > 0 {
			// Any message is progress: the deadline bounds silence, so a
			// worker grinding through a long block stays alive as long as
			// its members keep arriving.
			deadlineAt[src] = time.Now().Add(cfg.AssignDeadline)
		}
		switch tag {
		case TagRequest:
			touch(src)
			if err := assign(src); err != nil {
				return nil, err
			}
		case TagSummary:
			if pending[src] != nil {
				if ft {
					failWorker(src)
					continue
				}
				return nil, fmt.Errorf("plinger: worker %d sent a new summary before completing a mode", src)
			}
			pending[src] = &inflight{sum: m.Data}
		case TagMoments:
			fl := pending[src]
			if fl == nil || fl.mom != nil {
				if ft {
					failWorker(src)
					continue
				}
				return nil, fmt.Errorf("plinger: worker %d sent moments without a summary", src)
			}
			fl.mom = m.Data
			if !cfg.Mode.KeepSources {
				if err := complete(src, fl, nil); err != nil {
					var wf workerFaultError
					if errors.As(err, &wf) {
						if ft {
							failWorker(src)
							continue
						}
						return nil, wf.err
					}
					return nil, err
				}
			}
		case TagSources:
			fl := pending[src]
			if fl == nil || fl.mom == nil {
				if ft {
					failWorker(src)
					continue
				}
				return nil, fmt.Errorf("plinger: worker %d sent sources without moments", src)
			}
			if err := complete(src, fl, m.Data); err != nil {
				var wf workerFaultError
				if errors.As(err, &wf) {
					if ft {
						failWorker(src)
						continue
					}
					return nil, wf.err
				}
				return nil, err
			}
		default:
			if ft {
				failWorker(src)
				continue
			}
			return nil, fmt.Errorf("plinger: master got unexpected tag %d from %d", tag, src)
		}
	}

	// Late-starting workers may not have asked for work yet. Every worker
	// sends exactly one request after the init broadcast, so wait for each
	// outstanding one — in arrival order, as MPL-style transports require —
	// and answer it with a stop. Like the paper's protocol the plain path
	// has no fault tolerance: a remote worker that joined the world but died
	// before its first request stalls this wait. Under fault tolerance the
	// wait is deadline-bounded and a worker that never shows is failed.
	countRemaining := func() int {
		n := 0
		for rank := 0; rank < ep.Size(); rank++ {
			if rank != ep.Master() && !stopped[rank] && !failed[rank] {
				n++
			}
		}
		return n
	}
	for countRemaining() > 0 {
		if ft {
			drainDown()
			if countRemaining() == 0 {
				break
			}
		}
		tag, src, ok, err := probeNext()
		if err != nil {
			return nil, fmt.Errorf("plinger: master drain probe: %w", err)
		}
		if !ok {
			expire(time.Now())
			continue
		}
		m, err := ep.Recv(tag, src)
		if err != nil {
			return nil, err
		}
		if tag != TagRequest || stopped[src] || (ft && failed[src]) {
			if ft {
				// Stragglers may deliver duplicates of reassigned work while
				// the run winds down; they are not failures, just late.
				if tag == TagRequest {
					_ = ep.Send(src, TagStop, []float64{0})
				}
				continue
			}
			return nil, fmt.Errorf("plinger: master got unexpected tag %d from %d while draining", tag, src)
		}
		bytes += int64(8 * len(m.Data))
		touch(src)
		stopped[src] = true
		delete(deadlineAt, src)
		if err := ep.Send(src, TagStop, []float64{0}); err != nil {
			if !ft {
				return nil, err
			}
		}
	}

	res.NProc = ep.Size()
	res.Wallclock = time.Since(start).Seconds()
	res.BytesReceived = bytes
	for _, w := range workers {
		res.Workers = append(res.Workers, *w)
	}
	sort.Slice(res.Workers, func(a, b int) bool { return res.Workers[a].Rank < res.Workers[b].Rank })
	return res, nil
}

// Worker runs the worker subroutine of Appendix A: receive the initial
// broadcast, then alternate between requesting work and returning results
// until a stop message arrives.
func Worker(ep mp.Endpoint, model *core.Model, kValues []float64, mode core.Params) error {
	return WorkerWith(ep, model, kValues, mode, nil)
}

// WorkerWith is Worker with a caller-owned evolution arena: a long-lived
// worker process (cmd/plingerw) hands the same scratch to every sweep it
// serves, so the state buffers and the pooled integrator stay warm across
// sweeps instead of being rebuilt per run. A nil scratch allocates a fresh
// one, which is exactly Worker.
func WorkerWith(ep mp.Endpoint, model *core.Model, kValues []float64, mode core.Params, scratch *core.Scratch) error {
	master := ep.Master()
	// Receive initial data (tag 1).
	if _, _, err := ep.Probe(TagInit, master); err != nil {
		return fmt.Errorf("plinger: worker init probe: %w", err)
	}
	init, err := ep.Recv(TagInit, master)
	if err != nil {
		return fmt.Errorf("plinger: worker init: %w", err)
	}
	if len(init.Data) != initBlockLen {
		return fmt.Errorf("plinger: init block length %d", len(init.Data))
	}
	mode.TauEnd = init.Data[0]
	if lm := int(init.Data[1]); lm > 0 {
		mode.LMax = lm
	}
	mode.Gauge = core.Gauge(int(init.Data[3]))
	if rt := init.Data[4]; rt > 0 {
		mode.RTol = rt
	}
	mode.KeepSources = init.Data[5] != 0

	// Ask for the first wavenumber (tag 2).
	if err := ep.Send(master, TagRequest, []float64{0}); err != nil {
		return err
	}
	// One evolution arena for (at least) the worker's whole run: every
	// assigned mode reuses the same state buffers and integrator.
	if scratch == nil {
		scratch = core.NewScratch()
	}
	for {
		// Receive next assignment or stop (mychecktid pattern: any tag
		// from the master).
		tag, _, err := ep.Probe(mp.AnyTag, master)
		if err != nil {
			return err
		}
		m, err := ep.Recv(tag, master)
		if err != nil {
			return err
		}
		if tag == TagStop {
			return nil
		}
		if tag != TagAssign {
			return fmt.Errorf("plinger: worker got unexpected tag %d", tag)
		}
		ik1 := int(m.Data[0])
		bsize := 1
		if len(m.Data) > 2 && m.Data[2] > 1 {
			bsize = int(m.Data[2])
		}
		if ik1 < 1 || ik1+bsize-1 > len(kValues) {
			return fmt.Errorf("plinger: assigned index block %d+%d out of range", ik1, bsize)
		}
		p := mode
		p.K = kValues[ik1-1]
		if len(m.Data) > 1 && m.Data[1] > 0 {
			p.LMax = int(m.Data[1])
		}
		// The worker is batch-agnostic: the block size rides in each
		// assignment, a one-mode block is the scalar path bitwise, and the
		// per-member result triplets go back in member order.
		rs, err := model.EvolveBatchWith(kValues[ik1-1:ik1-1+bsize], p, nil, scratch)
		if err != nil {
			return fmt.Errorf("plinger: worker evolve (ik=%d+%d, k=%g): %w", ik1, bsize, p.K, err)
		}
		for j, r := range rs {
			obsModeSeconds.ObserveShard(ep.Rank()-1, r.Seconds)
			if err := ep.Send(master, TagSummary, packSummary(ik1+j, r)); err != nil {
				return err
			}
			if err := ep.Send(master, TagMoments, packMoments(ik1+j, r)); err != nil {
				return err
			}
			if mode.KeepSources {
				if err := ep.Send(master, TagSources, packSources(ik1+j, r)); err != nil {
					return err
				}
			}
		}
	}
}

// asciiRecordLen is the number of summary values printed per ASCII line
// (the paper's "WRITE(unit_1,*) (y(i),i=1,20)").
const asciiRecordLen = 20

// writeASCIIRecord prints the 20 summary values, one line per mode.
func writeASCIIRecord(w io.Writer, sum []float64) error {
	if len(sum) < asciiRecordLen {
		return fmt.Errorf("plinger: summary block has %d values, need %d for the ASCII record", len(sum), asciiRecordLen)
	}
	for i := 0; i < asciiRecordLen; i++ {
		sep := " "
		if i == asciiRecordLen-1 {
			sep = "\n"
		}
		if _, err := fmt.Fprintf(w, "%.10e%s", sum[i], sep); err != nil {
			return err
		}
	}
	return nil
}

// writeBinaryRecord writes the moment block as little-endian float64s with
// a length prefix, the Go rendering of the unformatted Fortran record
// "WRITE(unit_2) ...".
func writeBinaryRecord(w io.Writer, mom []float64) error {
	if err := binary.Write(w, binary.LittleEndian, int64(len(mom))); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, mom)
}

// ReadBinaryRecords parses a unit_2-style stream back into moment blocks.
func ReadBinaryRecords(r io.Reader) ([][]float64, error) {
	var out [][]float64
	for {
		var n int64
		err := binary.Read(r, binary.LittleEndian, &n)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		if n < 0 || n > 1<<26 {
			return nil, fmt.Errorf("plinger: corrupt record length %d", n)
		}
		rec := make([]float64, n)
		if err := binary.Read(r, binary.LittleEndian, rec); err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}
