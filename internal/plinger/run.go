package plinger

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"time"

	"plinger/internal/core"
	"plinger/internal/mp"
)

// Config describes one parallel run. Scheduling policy is not decided
// here: internal/dispatch computes the hand-out order and this package only
// speaks the wire protocol.
type Config struct {
	// KValues are the wavenumbers to evolve (Mpc^-1).
	KValues []float64
	// Mode holds the per-k evolution parameters (K is overwritten).
	Mode core.Params
	// Order is the hand-out order as a permutation of indices into
	// KValues (nil: input order). When Mode.KBatch > 1 it is instead a
	// permutation of indices into BatchBlocks(len(KValues), Mode.KBatch):
	// the unit of hand-out becomes one consecutive index block.
	Order []int
	// PerKLMax optionally overrides the hierarchy cutoff per wavenumber
	// (entries <= 0 fall back to the broadcast Mode.LMax); the override
	// rides along in the tag-3 assignment message.
	PerKLMax []int
	// ASCIIOut, if non-nil, receives the unit_1-style text summary lines.
	ASCIIOut io.Writer
	// BinaryOut, if non-nil, receives the unit_2-style binary moment
	// records.
	BinaryOut io.Writer
}

// WorkerTiming is the per-worker accounting used for Figure 1.
type WorkerTiming struct {
	Rank    int
	Modes   int     // k values computed
	Seconds float64 // busy seconds (the paper's etime)
	Flops   float64 // model flop count
}

// Results is the master's collected output, ordered like KValues, plus the
// raw run telemetry. Derived quantities (parallel efficiency, flop rate)
// are computed by internal/dispatch so that the pool and message-passing
// backends share one formula.
type Results struct {
	Mode    []*core.Result
	KValues []float64
	// NProc is the world size (workers plus master).
	NProc int
	// Wallclock is the master's elapsed seconds.
	Wallclock float64
	// BytesReceived is the protocol payload volume at the master.
	BytesReceived int64
	// Workers holds the per-worker tallies, sorted by rank.
	Workers []WorkerTiming
}

// BatchBlocks splits nk grid indices into consecutive [lo, hi) blocks of up
// to b members each — the unit of hand-out for lockstep batched evolution.
// Blocks follow the input order of the grid (block j covers indices
// [j*b, min((j+1)*b, nk))), so the decomposition — and with it every
// batched trajectory — depends only on (nk, b), never on schedule or
// transport. b <= 1 yields one block per index. The single definition here
// serves both the dispatch backends and the wire protocol's master, which
// must agree on it exactly.
func BatchBlocks(nk, b int) [][2]int {
	if b < 1 {
		b = 1
	}
	blocks := make([][2]int, 0, (nk+b-1)/b)
	for lo := 0; lo < nk; lo += b {
		blocks = append(blocks, [2]int{lo, min(lo+b, nk)})
	}
	return blocks
}

// handOutOrder validates cfg.Order (or builds the identity order) as a
// permutation of 0..nk-1.
func handOutOrder(cfg Config, nk int) ([]int, error) {
	if cfg.Order == nil {
		order := make([]int, nk)
		for i := range order {
			order[i] = i
		}
		return order, nil
	}
	if len(cfg.Order) != nk {
		return nil, fmt.Errorf("plinger: hand-out order has %d entries for %d wavenumbers", len(cfg.Order), nk)
	}
	seen := make([]bool, nk)
	for _, ik := range cfg.Order {
		if ik < 0 || ik >= nk || seen[ik] {
			return nil, fmt.Errorf("plinger: hand-out order is not a permutation of 0..%d", nk-1)
		}
		seen[ik] = true
	}
	return cfg.Order, nil
}

// Master runs the master subroutine of Appendix A over the endpoint. It
// returns when every wavenumber has been received and every worker stopped.
func Master(ep mp.Endpoint, model *core.Model, cfg Config) (*Results, error) {
	nk := len(cfg.KValues)
	if nk == 0 {
		return nil, fmt.Errorf("plinger: no wavenumbers to distribute")
	}
	blocks := BatchBlocks(nk, cfg.Mode.KBatch)
	order, err := handOutOrder(cfg, len(blocks))
	if err != nil {
		return nil, err
	}
	if cfg.PerKLMax != nil && len(cfg.PerKLMax) != nk {
		return nil, fmt.Errorf("plinger: per-k lmax table has %d entries for %d wavenumbers", len(cfg.PerKLMax), nk)
	}
	start := time.Now()

	// Broadcast initial data (tag 1): end time, lmax, nk, gauge, rtol,
	// keep-sources flag.
	tauEnd := cfg.Mode.TauEnd
	if tauEnd <= 0 {
		tauEnd = model.BG.Tau0()
	}
	keep := 0.0
	if cfg.Mode.KeepSources {
		keep = 1.0
	}
	init := []float64{tauEnd, float64(cfg.Mode.LMax), float64(nk),
		float64(cfg.Mode.Gauge), cfg.Mode.RTol, keep}
	if len(init) != initBlockLen {
		panic("plinger: init block length drifted from the protocol")
	}
	if err := ep.Bcast(TagInit, init); err != nil {
		return nil, fmt.Errorf("plinger: broadcast: %w", err)
	}

	res := &Results{
		Mode:    make([]*core.Result, nk),
		KValues: append([]float64(nil), cfg.KValues...),
	}
	workers := map[int]*WorkerTiming{}
	var bytes int64

	next := 0 // position in order
	done := 0
	stopped := map[int]bool{}
	// left counts a worker's outstanding members of its current block, so a
	// batched assignment triggers exactly one follow-up hand-out — after its
	// last member completes, not after every one.
	left := map[int]int{}

	assign := func(dst int) error {
		if next < len(order) {
			lo, hi := blocks[order[next]][0], blocks[order[next]][1]
			next++
			lmax := 0.0
			if cfg.PerKLMax != nil {
				// The block runs at the largest cutoff among its members
				// (the lockstep batch unifies the hierarchy anyway).
				for ik := lo; ik < hi; ik++ {
					if l := cfg.PerKLMax[ik]; l > 0 && float64(l) > lmax {
						lmax = float64(l)
					}
				}
			}
			left[dst] = hi - lo
			if hi-lo == 1 {
				// The Fortran sends the 1-based wavenumber index; the
				// optional second value is the per-k hierarchy cutoff.
				return ep.Send(dst, TagAssign, []float64{float64(lo + 1), lmax})
			}
			// Batched assignment: 1-based first index, unified cutoff, and
			// the block size as the third value.
			return ep.Send(dst, TagAssign, []float64{float64(lo + 1), lmax, float64(hi - lo)})
		}
		if !stopped[dst] {
			stopped[dst] = true
			return ep.Send(dst, TagStop, []float64{0})
		}
		return nil
	}

	touch := func(src int) *WorkerTiming {
		w := workers[src]
		if w == nil {
			w = &WorkerTiming{Rank: src}
			workers[src] = w
		}
		return w
	}

	// A mode's result arrives as two or three messages (summary, moments,
	// optionally sources). Messages from different workers interleave
	// arbitrarily — and a strict arrival-order (MPL-style) transport can
	// only ever deliver the head of the queue — so the master consumes
	// every message in arrival order and assembles records per source.
	type inflight struct {
		sum, mom []float64
	}
	pending := map[int]*inflight{}

	complete := func(src int, fl *inflight, srcBlock []float64) error {
		delete(pending, src)
		ik1, r, err := unpackResult(fl.sum, fl.mom)
		if err != nil {
			return err
		}
		ik := ik1 - 1
		if ik < 0 || ik >= nk {
			return fmt.Errorf("plinger: wavenumber index %d out of range", ik1)
		}
		if srcBlock != nil {
			samples, err := unpackSources(ik1, srcBlock)
			if err != nil {
				return err
			}
			r.Sources = samples
		}
		res.Mode[ik] = r
		done++
		w := touch(src)
		w.Modes++
		w.Seconds += r.Seconds
		w.Flops += r.Flops
		if cfg.ASCIIOut != nil {
			if err := writeASCIIRecord(cfg.ASCIIOut, fl.sum); err != nil {
				return err
			}
		}
		if cfg.BinaryOut != nil {
			if err := writeBinaryRecord(cfg.BinaryOut, fl.mom); err != nil {
				return err
			}
		}
		left[src]--
		if left[src] > 0 {
			return nil // more members of this worker's block are in flight
		}
		return assign(src)
	}

	for done < nk {
		tag, src, err := ep.Probe(mp.AnyTag, mp.AnySource)
		if err != nil {
			return nil, fmt.Errorf("plinger: master probe: %w", err)
		}
		m, err := ep.Recv(tag, src)
		if err != nil {
			return nil, err
		}
		bytes += int64(8 * len(m.Data))
		switch tag {
		case TagRequest:
			touch(src)
			if err := assign(src); err != nil {
				return nil, err
			}
		case TagSummary:
			if pending[src] != nil {
				return nil, fmt.Errorf("plinger: worker %d sent a new summary before completing a mode", src)
			}
			pending[src] = &inflight{sum: m.Data}
		case TagMoments:
			fl := pending[src]
			if fl == nil || fl.mom != nil {
				return nil, fmt.Errorf("plinger: worker %d sent moments without a summary", src)
			}
			fl.mom = m.Data
			if !cfg.Mode.KeepSources {
				if err := complete(src, fl, nil); err != nil {
					return nil, err
				}
			}
		case TagSources:
			fl := pending[src]
			if fl == nil || fl.mom == nil {
				return nil, fmt.Errorf("plinger: worker %d sent sources without moments", src)
			}
			if err := complete(src, fl, m.Data); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("plinger: master got unexpected tag %d from %d", tag, src)
		}
	}

	// Late-starting workers may not have asked for work yet. Every worker
	// sends exactly one request after the init broadcast, so wait for each
	// outstanding one — in arrival order, as MPL-style transports require —
	// and answer it with a stop. Like the paper's protocol this has no
	// fault tolerance: a remote worker that joined the world but died
	// before its first request stalls this wait, just as one dying
	// mid-compute stalls the main loop above.
	remaining := 0
	for rank := 0; rank < ep.Size(); rank++ {
		if rank != ep.Master() && !stopped[rank] {
			remaining++
		}
	}
	for remaining > 0 {
		tag, src, err := ep.Probe(mp.AnyTag, mp.AnySource)
		if err != nil {
			return nil, fmt.Errorf("plinger: master drain probe: %w", err)
		}
		m, err := ep.Recv(tag, src)
		if err != nil {
			return nil, err
		}
		if tag != TagRequest || stopped[src] {
			return nil, fmt.Errorf("plinger: master got unexpected tag %d from %d while draining", tag, src)
		}
		bytes += int64(8 * len(m.Data))
		touch(src)
		stopped[src] = true
		if err := ep.Send(src, TagStop, []float64{0}); err != nil {
			return nil, err
		}
		remaining--
	}

	res.NProc = ep.Size()
	res.Wallclock = time.Since(start).Seconds()
	res.BytesReceived = bytes
	for _, w := range workers {
		res.Workers = append(res.Workers, *w)
	}
	sort.Slice(res.Workers, func(a, b int) bool { return res.Workers[a].Rank < res.Workers[b].Rank })
	return res, nil
}

// Worker runs the worker subroutine of Appendix A: receive the initial
// broadcast, then alternate between requesting work and returning results
// until a stop message arrives.
func Worker(ep mp.Endpoint, model *core.Model, kValues []float64, mode core.Params) error {
	master := ep.Master()
	// Receive initial data (tag 1).
	if _, _, err := ep.Probe(TagInit, master); err != nil {
		return fmt.Errorf("plinger: worker init probe: %w", err)
	}
	init, err := ep.Recv(TagInit, master)
	if err != nil {
		return fmt.Errorf("plinger: worker init: %w", err)
	}
	if len(init.Data) != initBlockLen {
		return fmt.Errorf("plinger: init block length %d", len(init.Data))
	}
	mode.TauEnd = init.Data[0]
	if lm := int(init.Data[1]); lm > 0 {
		mode.LMax = lm
	}
	mode.Gauge = core.Gauge(int(init.Data[3]))
	if rt := init.Data[4]; rt > 0 {
		mode.RTol = rt
	}
	mode.KeepSources = init.Data[5] != 0

	// Ask for the first wavenumber (tag 2).
	if err := ep.Send(master, TagRequest, []float64{0}); err != nil {
		return err
	}
	// One evolution arena for the worker's whole life: every assigned mode
	// reuses the same state buffers and integrator.
	scratch := core.NewScratch()
	for {
		// Receive next assignment or stop (mychecktid pattern: any tag
		// from the master).
		tag, _, err := ep.Probe(mp.AnyTag, master)
		if err != nil {
			return err
		}
		m, err := ep.Recv(tag, master)
		if err != nil {
			return err
		}
		if tag == TagStop {
			return nil
		}
		if tag != TagAssign {
			return fmt.Errorf("plinger: worker got unexpected tag %d", tag)
		}
		ik1 := int(m.Data[0])
		bsize := 1
		if len(m.Data) > 2 && m.Data[2] > 1 {
			bsize = int(m.Data[2])
		}
		if ik1 < 1 || ik1+bsize-1 > len(kValues) {
			return fmt.Errorf("plinger: assigned index block %d+%d out of range", ik1, bsize)
		}
		p := mode
		p.K = kValues[ik1-1]
		if len(m.Data) > 1 && m.Data[1] > 0 {
			p.LMax = int(m.Data[1])
		}
		// The worker is batch-agnostic: the block size rides in each
		// assignment, a one-mode block is the scalar path bitwise, and the
		// per-member result triplets go back in member order.
		rs, err := model.EvolveBatchWith(kValues[ik1-1:ik1-1+bsize], p, nil, scratch)
		if err != nil {
			return fmt.Errorf("plinger: worker evolve (ik=%d+%d, k=%g): %w", ik1, bsize, p.K, err)
		}
		for j, r := range rs {
			if err := ep.Send(master, TagSummary, packSummary(ik1+j, r)); err != nil {
				return err
			}
			if err := ep.Send(master, TagMoments, packMoments(ik1+j, r)); err != nil {
				return err
			}
			if mode.KeepSources {
				if err := ep.Send(master, TagSources, packSources(ik1+j, r)); err != nil {
					return err
				}
			}
		}
	}
}

// asciiRecordLen is the number of summary values printed per ASCII line
// (the paper's "WRITE(unit_1,*) (y(i),i=1,20)").
const asciiRecordLen = 20

// writeASCIIRecord prints the 20 summary values, one line per mode.
func writeASCIIRecord(w io.Writer, sum []float64) error {
	if len(sum) < asciiRecordLen {
		return fmt.Errorf("plinger: summary block has %d values, need %d for the ASCII record", len(sum), asciiRecordLen)
	}
	for i := 0; i < asciiRecordLen; i++ {
		sep := " "
		if i == asciiRecordLen-1 {
			sep = "\n"
		}
		if _, err := fmt.Fprintf(w, "%.10e%s", sum[i], sep); err != nil {
			return err
		}
	}
	return nil
}

// writeBinaryRecord writes the moment block as little-endian float64s with
// a length prefix, the Go rendering of the unformatted Fortran record
// "WRITE(unit_2) ...".
func writeBinaryRecord(w io.Writer, mom []float64) error {
	if err := binary.Write(w, binary.LittleEndian, int64(len(mom))); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, mom)
}

// ReadBinaryRecords parses a unit_2-style stream back into moment blocks.
func ReadBinaryRecords(r io.Reader) ([][]float64, error) {
	var out [][]float64
	for {
		var n int64
		err := binary.Read(r, binary.LittleEndian, &n)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		if n < 0 || n > 1<<26 {
			return nil, fmt.Errorf("plinger: corrupt record length %d", n)
		}
		rec := make([]float64, n)
		if err := binary.Read(r, binary.LittleEndian, rec); err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}
