package plinger

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"time"

	"plinger/internal/core"
	"plinger/internal/mp"
)

// Schedule selects the order in which the master hands out wavenumbers.
type Schedule int

const (
	// LargestFirst is the paper's policy: "Since larger wavenumbers require
	// greater computation, one simple method by which we minimized this
	// idle time was to compute the largest k first."
	LargestFirst Schedule = iota
	// InputOrder hands wavenumbers out as given (the ablation baseline).
	InputOrder
	// SmallestFirst is the adversarial ordering for the ablation.
	SmallestFirst
)

// String implements fmt.Stringer.
func (s Schedule) String() string {
	switch s {
	case LargestFirst:
		return "largest-first"
	case InputOrder:
		return "input-order"
	case SmallestFirst:
		return "smallest-first"
	default:
		return fmt.Sprintf("Schedule(%d)", int(s))
	}
}

// Config describes one parallel run.
type Config struct {
	// KValues are the wavenumbers to evolve (Mpc^-1).
	KValues []float64
	// Mode holds the per-k evolution parameters (K is overwritten).
	Mode core.Params
	// Schedule is the hand-out order (default LargestFirst).
	Schedule Schedule
	// ASCIIOut, if non-nil, receives the unit_1-style text summary lines.
	ASCIIOut io.Writer
	// BinaryOut, if non-nil, receives the unit_2-style binary moment
	// records.
	BinaryOut io.Writer
}

// WorkerTiming is the per-worker accounting used for Figure 1.
type WorkerTiming struct {
	Rank    int
	Modes   int     // k values computed
	Seconds float64 // busy seconds (the paper's etime)
	Flops   float64 // model flop count
}

// RunStats aggregates a parallel run, reproducing the quantities plotted in
// Figure 1 and tabulated in Section 5.
type RunStats struct {
	NProc         int
	Wallclock     float64 // seconds
	TotalCPU      float64 // sum of busy seconds over workers
	Efficiency    float64 // TotalCPU / (Wallclock * workers)
	TotalFlops    float64
	FlopRate      float64 // flop/s = TotalFlops / Wallclock
	BytesReceived int64   // protocol payload volume at the master
	Workers       []WorkerTiming
}

// Results is the master's collected output, ordered like KValues.
type Results struct {
	Mode    []*core.Result
	Stats   RunStats
	KValues []float64
}

// Master runs the master subroutine of Appendix A over the endpoint. It
// returns when every wavenumber has been received and every worker stopped.
func Master(ep mp.Endpoint, model *core.Model, cfg Config) (*Results, error) {
	nk := len(cfg.KValues)
	if nk == 0 {
		return nil, fmt.Errorf("plinger: no wavenumbers to distribute")
	}
	start := time.Now()

	// Broadcast initial data (tag 1): end time, lmax, nk, gauge, rtol.
	tauEnd := cfg.Mode.TauEnd
	if tauEnd <= 0 {
		tauEnd = model.BG.Tau0()
	}
	init := []float64{tauEnd, float64(cfg.Mode.LMax), float64(nk),
		float64(cfg.Mode.Gauge), cfg.Mode.RTol}
	if len(init) != initBlockLen {
		panic("plinger: init block length drifted from the protocol")
	}
	if err := ep.Bcast(TagInit, init); err != nil {
		return nil, fmt.Errorf("plinger: broadcast: %w", err)
	}

	// Build the hand-out order.
	order := make([]int, nk)
	for i := range order {
		order[i] = i
	}
	switch cfg.Schedule {
	case LargestFirst:
		sort.Slice(order, func(a, b int) bool {
			return cfg.KValues[order[a]] > cfg.KValues[order[b]]
		})
	case SmallestFirst:
		sort.Slice(order, func(a, b int) bool {
			return cfg.KValues[order[a]] < cfg.KValues[order[b]]
		})
	case InputOrder:
		// as given
	}

	res := &Results{
		Mode:    make([]*core.Result, nk),
		KValues: append([]float64(nil), cfg.KValues...),
	}
	workers := map[int]*WorkerTiming{}
	var bytes int64

	next := 0 // position in order
	done := 0
	stopped := map[int]bool{}

	assign := func(dst int) error {
		if next < nk {
			ik := order[next]
			next++
			// The Fortran sends the 1-based wavenumber index.
			return ep.Send(dst, TagAssign, []float64{float64(ik + 1)})
		}
		if !stopped[dst] {
			stopped[dst] = true
			return ep.Send(dst, TagStop, []float64{0})
		}
		return nil
	}

	for done < nk {
		tag, src, err := ep.Probe(mp.AnyTag, mp.AnySource)
		if err != nil {
			return nil, fmt.Errorf("plinger: master probe: %w", err)
		}
		switch tag {
		case TagRequest:
			// Dispose of the request (it carries no data) and reply.
			m, err := ep.Recv(TagRequest, src)
			if err != nil {
				return nil, err
			}
			bytes += int64(8 * len(m.Data))
			if w := workers[src]; w == nil {
				workers[src] = &WorkerTiming{Rank: src}
			}
			if err := assign(src); err != nil {
				return nil, err
			}
		case TagSummary:
			sum, err := ep.Recv(TagSummary, src)
			if err != nil {
				return nil, err
			}
			// The moment block follows from the same worker (tag 5); the
			// paper waits for it explicitly with mycheckone.
			if _, _, err := ep.Probe(TagMoments, src); err != nil {
				return nil, err
			}
			mom, err := ep.Recv(TagMoments, src)
			if err != nil {
				return nil, err
			}
			bytes += int64(8 * (len(sum.Data) + len(mom.Data)))
			ik1, r, err := unpackResult(sum.Data, mom.Data)
			if err != nil {
				return nil, err
			}
			ik := ik1 - 1
			if ik < 0 || ik >= nk {
				return nil, fmt.Errorf("plinger: wavenumber index %d out of range", ik1)
			}
			res.Mode[ik] = r
			done++
			w := workers[src]
			if w == nil {
				w = &WorkerTiming{Rank: src}
				workers[src] = w
			}
			w.Modes++
			w.Seconds += r.Seconds
			w.Flops += r.Flops
			if cfg.ASCIIOut != nil {
				writeASCIIRecord(cfg.ASCIIOut, sum.Data)
			}
			if cfg.BinaryOut != nil {
				if err := writeBinaryRecord(cfg.BinaryOut, mom.Data); err != nil {
					return nil, err
				}
			}
			if err := assign(src); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("plinger: master got unexpected tag %d from %d", tag, src)
		}
	}

	// Stop any workers that never got a stop (they may still be asking).
	for rank := range workers {
		if !stopped[rank] {
			// They will send a request or are idle; flush pending requests.
			for {
				tag, src, err := ep.Probe(mp.AnyTag, rank)
				if err != nil || tag != TagRequest || src != rank {
					break
				}
				if _, err := ep.Recv(TagRequest, rank); err != nil {
					break
				}
				break
			}
			stopped[rank] = true
			if err := ep.Send(rank, TagStop, []float64{0}); err != nil {
				return nil, err
			}
		}
	}

	st := &res.Stats
	st.NProc = ep.Size()
	st.Wallclock = time.Since(start).Seconds()
	for _, w := range workers {
		st.Workers = append(st.Workers, *w)
		st.TotalCPU += w.Seconds
		st.TotalFlops += w.Flops
	}
	sort.Slice(st.Workers, func(a, b int) bool { return st.Workers[a].Rank < st.Workers[b].Rank })
	nWorkers := ep.Size() - 1
	if nWorkers < 1 {
		nWorkers = 1
	}
	if st.Wallclock > 0 {
		st.Efficiency = st.TotalCPU / (st.Wallclock * float64(nWorkers))
		st.FlopRate = st.TotalFlops / st.Wallclock
	}
	st.BytesReceived = bytes
	return res, nil
}

// Worker runs the worker subroutine of Appendix A: receive the initial
// broadcast, then alternate between requesting work and returning results
// until a stop message arrives.
func Worker(ep mp.Endpoint, model *core.Model, kValues []float64, mode core.Params) error {
	master := ep.Master()
	// Receive initial data (tag 1).
	if _, _, err := ep.Probe(TagInit, master); err != nil {
		return fmt.Errorf("plinger: worker init probe: %w", err)
	}
	init, err := ep.Recv(TagInit, master)
	if err != nil {
		return fmt.Errorf("plinger: worker init: %w", err)
	}
	if len(init.Data) != initBlockLen {
		return fmt.Errorf("plinger: init block length %d", len(init.Data))
	}
	mode.TauEnd = init.Data[0]
	if lm := int(init.Data[1]); lm > 0 {
		mode.LMax = lm
	}
	mode.Gauge = core.Gauge(int(init.Data[3]))
	if rt := init.Data[4]; rt > 0 {
		mode.RTol = rt
	}

	// Ask for the first wavenumber (tag 2).
	if err := ep.Send(master, TagRequest, []float64{0}); err != nil {
		return err
	}
	for {
		// Receive next assignment or stop (mychecktid pattern: any tag
		// from the master).
		tag, _, err := ep.Probe(mp.AnyTag, master)
		if err != nil {
			return err
		}
		m, err := ep.Recv(tag, master)
		if err != nil {
			return err
		}
		if tag == TagStop {
			return nil
		}
		if tag != TagAssign {
			return fmt.Errorf("plinger: worker got unexpected tag %d", tag)
		}
		ik1 := int(m.Data[0])
		if ik1 < 1 || ik1 > len(kValues) {
			return fmt.Errorf("plinger: assigned index %d out of range", ik1)
		}
		p := mode
		p.K = kValues[ik1-1]
		r, err := model.Evolve(p)
		if err != nil {
			return fmt.Errorf("plinger: worker evolve (ik=%d, k=%g): %w", ik1, p.K, err)
		}
		if err := ep.Send(master, TagSummary, packSummary(ik1, r)); err != nil {
			return err
		}
		if err := ep.Send(master, TagMoments, packMoments(ik1, r)); err != nil {
			return err
		}
	}
}

// writeASCIIRecord prints the 20 summary values, one line per mode, like
// the paper's "WRITE(unit_1,*) (y(i),i=1,20)".
func writeASCIIRecord(w io.Writer, sum []float64) {
	for i := 0; i < 20; i++ {
		sep := " "
		if i == 19 {
			sep = "\n"
		}
		fmt.Fprintf(w, "%.10e%s", sum[i], sep)
	}
}

// writeBinaryRecord writes the moment block as little-endian float64s with
// a length prefix, the Go rendering of the unformatted Fortran record
// "WRITE(unit_2) ...".
func writeBinaryRecord(w io.Writer, mom []float64) error {
	if err := binary.Write(w, binary.LittleEndian, int64(len(mom))); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, mom)
}

// ReadBinaryRecords parses a unit_2-style stream back into moment blocks.
func ReadBinaryRecords(r io.Reader) ([][]float64, error) {
	var out [][]float64
	for {
		var n int64
		err := binary.Read(r, binary.LittleEndian, &n)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		if n < 0 || n > 1<<26 {
			return nil, fmt.Errorf("plinger: corrupt record length %d", n)
		}
		rec := make([]float64, n)
		if err := binary.Read(r, binary.LittleEndian, rec); err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}
