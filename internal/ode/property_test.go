package ode

import (
	"math"
	"testing"
	"testing/quick"
)

// Property: for the linear test equation y' = a*y with a < 0, the DVERK
// solution matches exp(a t) for randomized decay rates and horizons.
func TestQuickLinearDecay(t *testing.T) {
	f := func(aRaw, tRaw float64) bool {
		if math.IsNaN(aRaw) || math.IsInf(aRaw, 0) || math.IsNaN(tRaw) || math.IsInf(tRaw, 0) {
			return true
		}
		a := -math.Mod(math.Abs(aRaw), 5.0) - 0.01
		tEnd := math.Mod(math.Abs(tRaw), 8.0) + 0.1
		in := NewDVERK(1e-8, 1e-12)
		y := []float64{1}
		if _, err := in.Integrate(func(_ float64, y, dy []float64) {
			dy[0] = a * y[0]
		}, 0, tEnd, y); err != nil {
			return false
		}
		want := math.Exp(a * tEnd)
		return math.Abs(y[0]-want) <= 1e-6*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: integrating in two legs equals integrating in one leg.
func TestQuickAdditivity(t *testing.T) {
	rhs := func(tm float64, y, dy []float64) {
		dy[0] = y[1]
		dy[1] = -2.5*y[0] - 0.1*y[1] + math.Sin(tm)
	}
	f := func(splitRaw float64) bool {
		if math.IsNaN(splitRaw) || math.IsInf(splitRaw, 0) {
			return true
		}
		split := math.Mod(math.Abs(splitRaw), 0.8) + 0.1 // in (0.1, 0.9)
		one := []float64{1, 0}
		in1 := NewDVERK(1e-10, 1e-13)
		if _, err := in1.Integrate(rhs, 0, 5, one); err != nil {
			return false
		}
		two := []float64{1, 0}
		in2 := NewDVERK(1e-10, 1e-13)
		if _, err := in2.Integrate(rhs, 0, 5*split, two); err != nil {
			return false
		}
		if _, err := in2.Integrate(rhs, 5*split, 5, two); err != nil {
			return false
		}
		return math.Abs(one[0]-two[0]) < 1e-7 && math.Abs(one[1]-two[1]) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Steps: 1, Rejected: 2, Evals: 3}
	a.Add(Stats{Steps: 10, Rejected: 20, Evals: 30})
	if a.Steps != 11 || a.Rejected != 22 || a.Evals != 33 {
		t.Fatalf("Add: %+v", a)
	}
}

// The controller must reject steps on a problem with a kink and still get
// the answer right.
func TestRejectionsHappenAndRecover(t *testing.T) {
	kink := func(tm float64, y, dy []float64) {
		if tm < 1 {
			dy[0] = 1
		} else {
			dy[0] = -50 * (y[0] - 1)
		}
	}
	in := NewDVERK(1e-8, 1e-12)
	in.InitialStep = 0.5
	y := []float64{0}
	st, err := in.Integrate(kink, 0, 3, y)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rejected == 0 {
		t.Fatal("expected step rejections across the kink")
	}
	if math.Abs(y[0]-1.0) > 1e-4 {
		t.Fatalf("y(3) = %g, want ~1", y[0])
	}
}

// MaxStep must be honored exactly.
func TestMaxStepHonored(t *testing.T) {
	in := NewDVERK(1e-6, 1e-9)
	in.MaxStep = 0.01
	var largest float64
	prev := 0.0
	in.OnStep = func(tm float64, y []float64) {
		if tm-prev > largest {
			largest = tm - prev
		}
		prev = tm
	}
	y := []float64{1}
	if _, err := in.Integrate(expDecay, 0, 1, y); err != nil {
		t.Fatal(err)
	}
	if largest > 0.010000001 {
		t.Fatalf("step %g exceeded MaxStep", largest)
	}
}
