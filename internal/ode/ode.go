// Package ode provides the time integrators for the Einstein-Boltzmann
// system. The paper integrates each k mode with DVERK, the Verner 6(5)
// Runge-Kutta pair obtained from netlib; this package implements that exact
// tableau with adaptive step-size control, together with the classic
// Fehlberg 4(5) pair and fixed-step RK4 as comparators for the ablation
// benchmarks.
//
// The integrators also keep operation statistics (steps, rejections,
// right-hand-side evaluations) that feed the flop-rate model used to
// reproduce the paper's Mflop/Gflop tables: on 1995 hardware flop rates were
// the natural throughput metric, and the paper derives the T3D rate "by
// comparison with the C90", i.e. from an operation count, exactly as done
// here.
package ode

import (
	"errors"
	"fmt"
	"math"
)

// Func is the right-hand side of the ODE system y' = f(t, y); it must fill
// dydt and may not retain either slice.
type Func func(t float64, y, dydt []float64)

// Stats reports the work performed by an integration.
type Stats struct {
	Steps    int // accepted steps
	Rejected int // rejected (re-tried) steps
	Evals    int // right-hand-side evaluations
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Steps += other.Steps
	s.Rejected += other.Rejected
	s.Evals += other.Evals
}

// Integrator advances an ODE system from t0 to t1 in place.
type Integrator interface {
	// Integrate advances y from t0 to t1, returning work statistics.
	Integrate(f Func, t0, t1 float64, y []float64) (Stats, error)
	// Name identifies the method for benchmark tables.
	Name() string
}

// StepObserver is the optional step-callback contract: an integrator that
// can report every accepted step (time and state) implements it. Callers
// that must see the trajectory — core.Evolve recording line-of-sight
// sources, the constraint monitor — require this interface and reject
// integrators that silently drop the callback. Both integrators in this
// package implement it.
type StepObserver interface {
	// SetOnStep installs fn to be called after every accepted step with
	// the new time and state; nil removes the callback.
	SetOnStep(fn func(t float64, y []float64))
}

// ErrMaxSteps is returned when the step budget is exhausted before reaching
// the requested end time (typically a sign of unresolved stiffness).
var ErrMaxSteps = errors.New("ode: maximum number of steps exceeded")

// ErrStepUnderflow is returned when the controller drives the step size
// below the floor.
var ErrStepUnderflow = errors.New("ode: step size underflow")

// tableau holds an explicit embedded Runge-Kutta pair.
type tableau struct {
	name   string
	stages int
	order  float64 // order of the propagating solution (for step control)
	c      []float64
	a      [][]float64 // a[i] has i entries (strictly lower triangular)
	b      []float64   // high-order weights (propagated)
	bhat   []float64   // embedded lower-order weights (error estimate)

	// derived coefficient lists, see derive: the non-zero entries of each
	// a row, of b, and of b - bhat (the error-estimate weights).
	anz  [][]nzc
	bnz  []nzc
	dbnz []nzc
}

// nzc is one non-zero tableau coefficient and the stage it weights.
type nzc struct {
	j int
	c float64
}

func nonzeros(w []float64) []nzc {
	var nz []nzc
	for j, c := range w {
		if c != 0 {
			nz = append(nz, nzc{j, c})
		}
	}
	return nz
}

// derive fills the non-zero coefficient lists on first use (each Adaptive
// carries its own tableau copy, so the cache is per-integrator). The step
// kernel iterates these instead of testing every coefficient of every
// stage against zero in its inner loops.
func (tab *tableau) derive() {
	if tab.anz != nil {
		return
	}
	tab.anz = make([][]nzc, tab.stages)
	for s := 1; s < tab.stages; s++ {
		tab.anz[s] = nonzeros(tab.a[s])
	}
	tab.bnz = nonzeros(tab.b)
	db := make([]float64, tab.stages)
	for s := range db {
		db[s] = tab.b[s] - tab.bhat[s]
	}
	tab.dbnz = nonzeros(db)
}

// accum computes dst = base + h * sum_j c_j k_j as a single fused pass for
// the small stage counts of embedded RK pairs (dst == base is allowed and
// accumulates in place). One pass with all stage slices held in locals is
// substantially faster than a saxpy sweep per stage: the state vectors of
// the Einstein-Boltzmann hierarchies are wide, and every avoided pass over
// them is bandwidth saved.
func accum(dst, base []float64, h float64, nz []nzc, k [][]float64) {
	n := len(dst)
	base = base[:n]
	switch len(nz) {
	case 1:
		c0 := h * nz[0].c
		k0 := k[nz[0].j][:n]
		for i := range dst {
			dst[i] = base[i] + c0*k0[i]
		}
	case 2:
		c0, c1 := h*nz[0].c, h*nz[1].c
		k0, k1 := k[nz[0].j][:n], k[nz[1].j][:n]
		for i := range dst {
			dst[i] = base[i] + c0*k0[i] + c1*k1[i]
		}
	case 3:
		c0, c1, c2 := h*nz[0].c, h*nz[1].c, h*nz[2].c
		k0, k1, k2 := k[nz[0].j][:n], k[nz[1].j][:n], k[nz[2].j][:n]
		for i := range dst {
			dst[i] = base[i] + c0*k0[i] + c1*k1[i] + c2*k2[i]
		}
	case 4:
		c0, c1, c2, c3 := h*nz[0].c, h*nz[1].c, h*nz[2].c, h*nz[3].c
		k0, k1, k2, k3 := k[nz[0].j][:n], k[nz[1].j][:n], k[nz[2].j][:n], k[nz[3].j][:n]
		for i := range dst {
			dst[i] = base[i] + c0*k0[i] + c1*k1[i] + c2*k2[i] + c3*k3[i]
		}
	case 5:
		c0, c1, c2, c3, c4 := h*nz[0].c, h*nz[1].c, h*nz[2].c, h*nz[3].c, h*nz[4].c
		k0, k1, k2, k3, k4 := k[nz[0].j][:n], k[nz[1].j][:n], k[nz[2].j][:n], k[nz[3].j][:n], k[nz[4].j][:n]
		for i := range dst {
			dst[i] = base[i] + c0*k0[i] + c1*k1[i] + c2*k2[i] + c3*k3[i] + c4*k4[i]
		}
	case 6:
		c0, c1, c2, c3, c4, c5 := h*nz[0].c, h*nz[1].c, h*nz[2].c, h*nz[3].c, h*nz[4].c, h*nz[5].c
		k0, k1, k2, k3, k4, k5 := k[nz[0].j][:n], k[nz[1].j][:n], k[nz[2].j][:n], k[nz[3].j][:n], k[nz[4].j][:n], k[nz[5].j][:n]
		for i := range dst {
			dst[i] = base[i] + c0*k0[i] + c1*k1[i] + c2*k2[i] + c3*k3[i] + c4*k4[i] + c5*k5[i]
		}
	case 7:
		c0, c1, c2, c3, c4, c5, c6 := h*nz[0].c, h*nz[1].c, h*nz[2].c, h*nz[3].c, h*nz[4].c, h*nz[5].c, h*nz[6].c
		k0, k1, k2, k3, k4, k5, k6 := k[nz[0].j][:n], k[nz[1].j][:n], k[nz[2].j][:n], k[nz[3].j][:n], k[nz[4].j][:n], k[nz[5].j][:n], k[nz[6].j][:n]
		for i := range dst {
			dst[i] = base[i] + c0*k0[i] + c1*k1[i] + c2*k2[i] + c3*k3[i] + c4*k4[i] + c5*k5[i] + c6*k6[i]
		}
	default:
		if &dst[0] != &base[0] {
			copy(dst, base)
		}
		for _, t := range nz {
			c := h * t.c
			kj := k[t.j][:n]
			for i, v := range kj {
				dst[i] += c * v
			}
		}
	}
}

// verner65 is the 8-stage 6(5) pair of J.H. Verner used by the netlib DVERK
// code of Hull, Enright & Jackson — the integrator named in Section 2 of
// the paper.
var verner65 = tableau{
	name:   "DVERK (Verner 6(5))",
	stages: 8,
	order:  6,
	c:      []float64{0, 1.0 / 6.0, 4.0 / 15.0, 2.0 / 3.0, 5.0 / 6.0, 1.0, 1.0 / 15.0, 1.0},
	a: [][]float64{
		{},
		{1.0 / 6.0},
		{4.0 / 75.0, 16.0 / 75.0},
		{5.0 / 6.0, -8.0 / 3.0, 5.0 / 2.0},
		{-165.0 / 64.0, 55.0 / 6.0, -425.0 / 64.0, 85.0 / 96.0},
		{12.0 / 5.0, -8.0, 4015.0 / 612.0, -11.0 / 36.0, 88.0 / 255.0},
		{-8263.0 / 15000.0, 124.0 / 75.0, -643.0 / 680.0, -81.0 / 250.0, 2484.0 / 10625.0, 0.0},
		{3501.0 / 1720.0, -300.0 / 43.0, 297275.0 / 52632.0, -319.0 / 2322.0, 24068.0 / 84065.0, 0.0, 3850.0 / 26703.0},
	},
	b:    []float64{3.0 / 40.0, 0.0, 875.0 / 2244.0, 23.0 / 72.0, 264.0 / 1955.0, 0.0, 125.0 / 11592.0, 43.0 / 616.0},
	bhat: []float64{13.0 / 160.0, 0.0, 2375.0 / 5984.0, 5.0 / 16.0, 12.0 / 85.0, 3.0 / 44.0, 0.0, 0.0},
}

// fehlberg45 is the classic RKF4(5) pair, used as the baseline integrator in
// the ablation benchmarks.
var fehlberg45 = tableau{
	name:   "RKF4(5)",
	stages: 6,
	order:  5,
	c:      []float64{0, 1.0 / 4.0, 3.0 / 8.0, 12.0 / 13.0, 1.0, 1.0 / 2.0},
	a: [][]float64{
		{},
		{1.0 / 4.0},
		{3.0 / 32.0, 9.0 / 32.0},
		{1932.0 / 2197.0, -7200.0 / 2197.0, 7296.0 / 2197.0},
		{439.0 / 216.0, -8.0, 3680.0 / 513.0, -845.0 / 4104.0},
		{-8.0 / 27.0, 2.0, -3544.0 / 2565.0, 1859.0 / 4104.0, -11.0 / 40.0},
	},
	b:    []float64{16.0 / 135.0, 0.0, 6656.0 / 12825.0, 28561.0 / 56430.0, -9.0 / 50.0, 2.0 / 55.0},
	bhat: []float64{25.0 / 216.0, 0.0, 1408.0 / 2565.0, 2197.0 / 4104.0, -1.0 / 5.0, 0.0},
}

// Adaptive is an adaptive embedded Runge-Kutta integrator.
type Adaptive struct {
	tab tableau

	// RTol and ATol are the relative and absolute error tolerances.
	RTol, ATol float64
	// InitialStep is the first trial step (a heuristic is used if zero).
	InitialStep float64
	// MaxStep caps the step size (no cap if zero).
	MaxStep float64
	// MinStep is the underflow floor (defaults to 16*eps*|t|).
	MinStep float64
	// MaxSteps bounds the number of accepted+rejected steps (default 10^7).
	MaxSteps int
	// OnStep, if non-nil, is called after every accepted step with the new
	// time and state; used to capture line-of-sight sources.
	OnStep func(t float64, y []float64)
	// PI enables proportional-integral (Gustafsson) step-size control on
	// accepted steps: the next step size uses both the current and the
	// previous error norm, damping the accept/reject oscillation of the
	// elementary controller and cutting the rejected-step fraction. Off by
	// default (the elementary controller is the reference behaviour).
	PI bool
	// CarryStep makes each Integrate call resume from the final controller
	// step size of the previous call instead of restarting from
	// InitialStep. The fast evolution engine integrates one mode as many
	// short segments (hierarchy-growth events, the tight-coupling switch),
	// and without carrying the step every segment would pay a fresh
	// ramp-up from the tiny initial step. Off by default.
	CarryStep bool

	// controller state carried across calls when CarryStep is set
	lastH   float64
	prevErr float64

	// scratch buffers reused across calls; ensure grows them monotonically
	// and re-slices, so an integrator pooled across systems of varying
	// dimension (the arena of a sweep worker, or one mode's hierarchy
	// resize events) stops allocating once it has seen its largest system.
	k    [][]float64
	ytmp []float64
	yerr []float64
	ynew []float64
}

// NewDVERK returns the paper's integrator: Verner's 6(5) pair with the
// given tolerances.
func NewDVERK(rtol, atol float64) *Adaptive {
	return &Adaptive{tab: verner65, RTol: rtol, ATol: atol}
}

// NewRKF45 returns the Fehlberg 4(5) comparator.
func NewRKF45(rtol, atol float64) *Adaptive {
	return &Adaptive{tab: fehlberg45, RTol: rtol, ATol: atol}
}

// Name implements Integrator.
func (ad *Adaptive) Name() string { return ad.tab.name }

// SetOnStep implements StepObserver.
func (ad *Adaptive) SetOnStep(fn func(t float64, y []float64)) { ad.OnStep = fn }

// Reset clears every run-specific control setting — carried step size, PI
// history, step caps, budgets, tolerances and the step callback — returning
// the integrator to its freshly constructed state while keeping the scratch
// buffers. A pooled integrator Reset between modes produces bitwise the
// same trajectory as a newly constructed one: the buffers are fully
// overwritten before being read on every step, so only the control state
// carries history.
func (ad *Adaptive) Reset() {
	ad.RTol, ad.ATol = 0, 0
	ad.InitialStep = 0
	ad.MaxStep = 0
	ad.MinStep = 0
	ad.MaxSteps = 0
	ad.OnStep = nil
	ad.PI = false
	ad.CarryStep = false
	ad.lastH = 0
	ad.prevErr = 0
}

func (ad *Adaptive) ensure(n int) {
	if ad.k == nil {
		ad.k = make([][]float64, ad.tab.stages)
	}
	if cap(ad.ytmp) < n {
		for i := range ad.k {
			ad.k[i] = make([]float64, n)
		}
		ad.ytmp = make([]float64, n)
		ad.yerr = make([]float64, n)
		ad.ynew = make([]float64, n)
		return
	}
	for i := range ad.k {
		ad.k[i] = ad.k[i][:n]
	}
	ad.ytmp = ad.ytmp[:n]
	ad.yerr = ad.yerr[:n]
	ad.ynew = ad.ynew[:n]
}

// Integrate advances y from t0 to t1 (t1 > t0) in place.
func (ad *Adaptive) Integrate(f Func, t0, t1 float64, y []float64) (Stats, error) {
	var st Stats
	if t1 == t0 {
		return st, nil
	}
	if t1 < t0 {
		return st, fmt.Errorf("ode: backwards integration not supported (t0=%g > t1=%g)", t0, t1)
	}
	n := len(y)
	ad.ensure(n)
	rtol, atol := ad.RTol, ad.ATol
	if rtol <= 0 {
		rtol = 1e-6
	}
	if atol <= 0 {
		atol = 1e-12
	}
	maxSteps := ad.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 10000000
	}
	h := ad.InitialStep
	if ad.CarryStep && ad.lastH > 0 {
		h = ad.lastH
	} else {
		ad.prevErr = 0
	}
	if h <= 0 {
		h = (t1 - t0) * 1e-4
	}
	if ad.MaxStep > 0 && h > ad.MaxStep {
		h = ad.MaxStep
	}
	t := t0
	order := ad.tab.order
	for iter := 0; ; iter++ {
		if iter >= maxSteps {
			return st, fmt.Errorf("%w (t=%g of [%g,%g], %d steps)", ErrMaxSteps, t, t0, t1, iter)
		}
		if t >= t1 {
			ad.lastH = h
			return st, nil
		}
		// hTry is the trial step actually taken; h stays the controller's
		// step so a clamped final segment does not shrink the carried step.
		hTry := h
		last := false
		if t+hTry >= t1 {
			hTry = t1 - t
			last = true
		}
		minStep := ad.MinStep
		if minStep <= 0 {
			minStep = 16.0 * 2.220446049250313e-16 * math.Max(math.Abs(t), math.Abs(t1))
		}
		// One embedded RK step of size hTry.
		errNorm := ad.step(f, t, hTry, y, &st)
		if math.IsNaN(errNorm) || math.IsInf(errNorm, 0) {
			// Retry with a much smaller step.
			st.Rejected++
			h = hTry * 0.1
			if h < minStep {
				return st, fmt.Errorf("%w at t=%g (NaN in error estimate)", ErrStepUnderflow, t)
			}
			continue
		}
		if errNorm <= 1.0 {
			// Accept.
			copy(y, ad.ynew)
			t += hTry
			st.Steps++
			if ad.OnStep != nil {
				ad.OnStep(t, y)
			}
			if last && t >= t1 {
				ad.lastH = h
				return st, nil
			}
			var fac float64
			if ad.PI && ad.prevErr > 0 {
				// PI controller (Hairer's dopri convention): damp the next
				// step with the previous error norm as well, so a
				// near-threshold accept is not followed by an overconfident
				// growth and reject. The exponents split 1/order into a
				// proportional and an integral part; the raised safety
				// factor compensates the controller's lower steady-state
				// error norm (0.9 here would settle at err ~ 0.9^20 = 0.12
				// and take ~20% more steps than the elementary controller).
				e := errNorm
				if e < 1e-12 {
					e = 1e-12
				}
				fac = 0.97 * math.Pow(e, -0.7/order) * math.Pow(ad.prevErr, 0.4/order)
			} else {
				fac = 0.9 * math.Pow(errNorm+1e-300, -1.0/order)
			}
			if fac > 5.0 {
				fac = 5.0
			}
			if ad.PI {
				ad.prevErr = errNorm
				if ad.prevErr < 1e-12 {
					ad.prevErr = 1e-12
				}
			}
			h = hTry * fac
			if ad.MaxStep > 0 && h > ad.MaxStep {
				h = ad.MaxStep
			}
		} else {
			st.Rejected++
			fac := 0.9 * math.Pow(errNorm, -1.0/order)
			if fac < 0.1 {
				fac = 0.1
			}
			h = hTry * fac
			if h < minStep {
				return st, fmt.Errorf("%w at t=%g (h=%g)", ErrStepUnderflow, t, h)
			}
		}
	}
}

// step performs a single trial step of size h from (t, y), leaving the
// candidate solution in ad.ynew and returning the scaled error norm.
//
// Each stage state and the final combination are produced by one fused
// accumulation pass over the non-zero tableau coefficients (see accum),
// rather than a per-component dot product with zero tests over all stages:
// for the wide Einstein-Boltzmann systems this combination work is where
// most of an evolution's time outside the right-hand side itself goes.
func (ad *Adaptive) step(f Func, t, h float64, y []float64, st *Stats) float64 {
	tab := &ad.tab
	tab.derive()
	n := len(y)
	k := ad.k
	// Stage 0.
	f(t, y, k[0])
	st.Evals++
	for s := 1; s < tab.stages; s++ {
		yt := ad.ytmp[:n]
		accum(yt, y, h, tab.anz[s], k)
		f(t+tab.c[s]*h, yt, k[s])
		st.Evals++
	}
	// Combine: ynew = y + h sum b_s k_s, yerr = h sum (b-bhat)_s k_s.
	yn := ad.ynew[:n]
	accum(yn, y, h, tab.bnz, k)
	ye := ad.yerr[:n]
	for i := range ye {
		ye[i] = 0
	}
	accum(ye, ye, h, tab.dbnz, k)
	rtol, atol := ad.RTol, ad.ATol
	if rtol <= 0 {
		rtol = 1e-6
	}
	if atol <= 0 {
		atol = 1e-12
	}
	var errSum float64
	for i := 0; i < n; i++ {
		ay := math.Abs(y[i])
		if an := math.Abs(yn[i]); an > ay {
			ay = an
		}
		r := ye[i] / (atol + rtol*ay)
		errSum += r * r
	}
	return math.Sqrt(errSum / float64(n))
}

// RK4 is the classical fixed-step fourth-order method, used to cross-check
// convergence orders and as the cheap fixed-cost baseline.
type RK4 struct {
	// Steps is the number of equal steps used across the interval.
	Steps int
	// OnStep, if non-nil, is called after every step with the new time and
	// state (see StepObserver).
	OnStep func(t float64, y []float64)

	k1, k2, k3, k4, ytmp []float64
}

// NewRK4 returns a fixed-step RK4 integrator with n steps per call.
func NewRK4(n int) *RK4 { return &RK4{Steps: n} }

// Name implements Integrator.
func (r *RK4) Name() string { return "RK4 (fixed step)" }

// SetOnStep implements StepObserver.
func (r *RK4) SetOnStep(fn func(t float64, y []float64)) { r.OnStep = fn }

// Integrate implements Integrator.
func (r *RK4) Integrate(f Func, t0, t1 float64, y []float64) (Stats, error) {
	var st Stats
	steps := r.Steps
	if steps <= 0 {
		steps = 100
	}
	n := len(y)
	if cap(r.k1) < n {
		r.k1 = make([]float64, n)
		r.k2 = make([]float64, n)
		r.k3 = make([]float64, n)
		r.k4 = make([]float64, n)
		r.ytmp = make([]float64, n)
	} else {
		r.k1, r.k2, r.k3 = r.k1[:n], r.k2[:n], r.k3[:n]
		r.k4, r.ytmp = r.k4[:n], r.ytmp[:n]
	}
	h := (t1 - t0) / float64(steps)
	t := t0
	for s := 0; s < steps; s++ {
		f(t, y, r.k1)
		for i := 0; i < n; i++ {
			r.ytmp[i] = y[i] + 0.5*h*r.k1[i]
		}
		f(t+0.5*h, r.ytmp, r.k2)
		for i := 0; i < n; i++ {
			r.ytmp[i] = y[i] + 0.5*h*r.k2[i]
		}
		f(t+0.5*h, r.ytmp, r.k3)
		for i := 0; i < n; i++ {
			r.ytmp[i] = y[i] + h*r.k3[i]
		}
		f(t+h, r.ytmp, r.k4)
		for i := 0; i < n; i++ {
			y[i] += h / 6.0 * (r.k1[i] + 2.0*r.k2[i] + 2.0*r.k3[i] + r.k4[i])
		}
		t += h
		st.Steps++
		st.Evals += 4
		if r.OnStep != nil {
			r.OnStep(t, y)
		}
	}
	return st, nil
}
