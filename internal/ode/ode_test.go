package ode

import (
	"errors"
	"math"
	"testing"
)

// expDecay: y' = -y, y(0)=1 => y(t) = e^-t.
func expDecay(t float64, y, dydt []float64) { dydt[0] = -y[0] }

// harmonic: y” = -w^2 y as a 2-system.
func harmonic(w float64) Func {
	return func(t float64, y, dydt []float64) {
		dydt[0] = y[1]
		dydt[1] = -w * w * y[0]
	}
}

func TestDVERKExponential(t *testing.T) {
	in := NewDVERK(1e-10, 1e-12)
	y := []float64{1}
	st, err := in.Integrate(expDecay, 0, 5, y)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Exp(-5)
	if math.Abs(y[0]-want) > 1e-9*want {
		t.Fatalf("y(5) = %g, want %g", y[0], want)
	}
	if st.Steps == 0 || st.Evals < 8*st.Steps {
		t.Fatalf("implausible stats %+v", st)
	}
}

func TestDVERKHarmonicOscillatorEnergy(t *testing.T) {
	in := NewDVERK(1e-9, 1e-12)
	w := 3.0
	y := []float64{1, 0}
	if _, err := in.Integrate(harmonic(w), 0, 20, y); err != nil {
		t.Fatal(err)
	}
	// Energy E = (y'^2 + w^2 y^2)/2 conserved to tolerance.
	e := 0.5 * (y[1]*y[1] + w*w*y[0]*y[0])
	if math.Abs(e-0.5*w*w) > 1e-6*w*w {
		t.Fatalf("energy drift: %g vs %g", e, 0.5*w*w)
	}
	// Phase check: y(20) = cos(60).
	if math.Abs(y[0]-math.Cos(60)) > 1e-6 {
		t.Fatalf("y(20) = %g, want %g", y[0], math.Cos(60))
	}
}

// Convergence order: with tolerances so tight the controller never rejects,
// halving a fixed step should reduce the local error by ~2^6 for Verner 6(5).
// We check global order ~6 via fixed-step integration through the guts of
// the adaptive machinery (MaxStep = InitialStep forces fixed h).
func orderEstimate(t *testing.T, mk func() *Adaptive, hs []float64) float64 {
	t.Helper()
	errs := make([]float64, len(hs))
	for i, h := range hs {
		in := mk()
		in.InitialStep = h
		in.MaxStep = h
		// Enormous tolerances so every step is accepted at exactly h.
		in.RTol = 1
		in.ATol = 1e10
		y := []float64{1, 0}
		if _, err := in.Integrate(harmonic(1), 0, 1, y); err != nil {
			t.Fatal(err)
		}
		errs[i] = math.Abs(y[0] - math.Cos(1))
	}
	// Fit order from the first and last step sizes.
	return math.Log(errs[0]/errs[len(errs)-1]) / math.Log(hs[0]/hs[len(hs)-1])
}

func TestDVERKOrderSix(t *testing.T) {
	p := orderEstimate(t, func() *Adaptive { return NewDVERK(0, 0) },
		[]float64{1.0 / 8, 1.0 / 16, 1.0 / 32})
	if p < 5.5 || p > 7.0 {
		t.Fatalf("DVERK observed order %.2f, want ~6", p)
	}
}

func TestRKF45OrderFive(t *testing.T) {
	// The propagated solution of RKF45 as implemented is the 5th-order one.
	p := orderEstimate(t, func() *Adaptive { return NewRKF45(0, 0) },
		[]float64{1.0 / 8, 1.0 / 16, 1.0 / 32})
	if p < 4.3 || p > 6.0 {
		t.Fatalf("RKF45 observed order %.2f, want ~5", p)
	}
}

func TestRK4OrderFour(t *testing.T) {
	errAt := func(n int) float64 {
		in := NewRK4(n)
		y := []float64{1, 0}
		if _, err := in.Integrate(harmonic(1), 0, 1, y); err != nil {
			t.Fatal(err)
		}
		return math.Abs(y[0] - math.Cos(1))
	}
	e1, e2 := errAt(8), errAt(16)
	p := math.Log(e1/e2) / math.Log(2)
	if p < 3.5 || p > 4.5 {
		t.Fatalf("RK4 observed order %.2f, want ~4", p)
	}
}

func TestToleranceControlsError(t *testing.T) {
	// Tighter tolerance must give a smaller global error and more steps.
	run := func(rtol float64) (float64, int) {
		in := NewDVERK(rtol, 1e-14)
		y := []float64{1, 0}
		st, err := in.Integrate(harmonic(2), 0, 10, y)
		if err != nil {
			t.Fatal(err)
		}
		return math.Abs(y[0] - math.Cos(20)), st.Steps
	}
	eLoose, nLoose := run(1e-4)
	eTight, nTight := run(1e-10)
	if eTight >= eLoose {
		t.Fatalf("tight tolerance error %g not below loose %g", eTight, eLoose)
	}
	if nTight <= nLoose {
		t.Fatalf("tight tolerance steps %d not above loose %d", nTight, nLoose)
	}
}

func TestStiffProblemNeedsManySteps(t *testing.T) {
	// y' = -1000(y - cos t) - sin t; solution settles to cos t. An explicit
	// method must take steps ~ 1/1000, so the step count reflects stiffness.
	stiff := func(t float64, y, dydt []float64) {
		dydt[0] = -1000.0*(y[0]-math.Cos(t)) - math.Sin(t)
	}
	in := NewDVERK(1e-6, 1e-9)
	y := []float64{2}
	st, err := in.Integrate(stiff, 0, 1, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(y[0]-math.Cos(1)) > 1e-4 {
		t.Fatalf("stiff solution %g, want %g", y[0], math.Cos(1))
	}
	if st.Steps < 100 {
		t.Fatalf("suspiciously few steps (%d) for a stiff problem", st.Steps)
	}
}

func TestMaxStepsRespected(t *testing.T) {
	in := NewDVERK(1e-12, 1e-14)
	in.MaxSteps = 5
	y := []float64{1, 0}
	_, err := in.Integrate(harmonic(50), 0, 100, y)
	if !errors.Is(err, ErrMaxSteps) {
		t.Fatalf("want ErrMaxSteps, got %v", err)
	}
}

func TestBackwardsRejected(t *testing.T) {
	in := NewDVERK(1e-6, 1e-9)
	y := []float64{1}
	if _, err := in.Integrate(expDecay, 1, 0, y); err == nil {
		t.Fatal("want error for backwards integration")
	}
}

func TestZeroLengthIntervalIsNoop(t *testing.T) {
	in := NewDVERK(1e-6, 1e-9)
	y := []float64{3}
	st, err := in.Integrate(expDecay, 2, 2, y)
	if err != nil || y[0] != 3 || st.Evals != 0 {
		t.Fatalf("no-op failed: y=%v st=%+v err=%v", y, st, err)
	}
}

func TestOnStepMonotoneTimes(t *testing.T) {
	in := NewDVERK(1e-8, 1e-10)
	var times []float64
	in.OnStep = func(tm float64, y []float64) { times = append(times, tm) }
	y := []float64{1, 0}
	if _, err := in.Integrate(harmonic(5), 0, 3, y); err != nil {
		t.Fatal(err)
	}
	if len(times) == 0 {
		t.Fatal("OnStep never called")
	}
	prev := 0.0
	for _, tm := range times {
		if tm <= prev {
			t.Fatalf("times not strictly increasing: %g after %g", tm, prev)
		}
		prev = tm
	}
	if math.Abs(times[len(times)-1]-3) > 1e-12 {
		t.Fatalf("final OnStep time %g != 3", times[len(times)-1])
	}
}

func TestLinearSystemExactness(t *testing.T) {
	// y' = A y for a rotation: exactly solvable; DVERK should track it to
	// the requested tolerance over many periods.
	in := NewDVERK(1e-11, 1e-13)
	y := []float64{0, 1}
	if _, err := in.Integrate(harmonic(1), 0, 8*math.Pi, y); err != nil {
		t.Fatal(err)
	}
	if math.Abs(y[0]) > 1e-7 || math.Abs(y[1]-1) > 1e-7 {
		t.Fatalf("after 4 periods: y = %v, want (0,1)", y)
	}
}

func TestRKF45MatchesDVERKOnSmoothProblem(t *testing.T) {
	run := func(in Integrator) float64 {
		y := []float64{1}
		if _, err := in.Integrate(expDecay, 0, 3, y); err != nil {
			t.Fatal(err)
		}
		return y[0]
	}
	a := run(NewDVERK(1e-9, 1e-12))
	b := run(NewRKF45(1e-9, 1e-12))
	if math.Abs(a-b) > 1e-7 {
		t.Fatalf("integrators disagree: %g vs %g", a, b)
	}
}

func TestNames(t *testing.T) {
	if NewDVERK(0, 0).Name() == "" || NewRKF45(0, 0).Name() == "" || NewRK4(1).Name() == "" {
		t.Fatal("integrators must be named for benchmark tables")
	}
}

// The tableau row-sum consistency conditions c_i = sum_j a_ij must hold for
// any Runge-Kutta method; this guards against transcription errors in the
// DVERK coefficients.
func TestTableauConsistency(t *testing.T) {
	for _, tab := range []tableau{verner65, fehlberg45} {
		for s := 1; s < tab.stages; s++ {
			sum := 0.0
			for _, a := range tab.a[s] {
				sum += a
			}
			if math.Abs(sum-tab.c[s]) > 1e-12 {
				t.Errorf("%s: row %d sums to %g, want c=%g", tab.name, s, sum, tab.c[s])
			}
		}
		bs, bh := 0.0, 0.0
		for s := 0; s < tab.stages; s++ {
			bs += tab.b[s]
			bh += tab.bhat[s]
		}
		if math.Abs(bs-1) > 1e-12 || math.Abs(bh-1) > 1e-12 {
			t.Errorf("%s: weight sums %g, %g, want 1", tab.name, bs, bh)
		}
	}
}

// TestPIControllerCutsRejections: on a problem with a sharply varying
// right-hand side the elementary controller oscillates between optimistic
// growth and rejection; the PI controller must cut the rejected fraction
// without losing accuracy.
func TestPIControllerCutsRejections(t *testing.T) {
	// y' = -lambda (y - sin t) + cos t with a stiff-ish pull toward sin t.
	f := func(tt float64, y, dy []float64) {
		dy[0] = -40.0*(y[0]-math.Sin(tt)) + math.Cos(tt)
	}
	run := func(pi bool) (Stats, float64) {
		ad := NewDVERK(1e-7, 1e-12)
		ad.PI = pi
		y := []float64{0}
		st, err := ad.Integrate(f, 0, 20, y)
		if err != nil {
			t.Fatal(err)
		}
		return st, y[0]
	}
	plain, yPlain := run(false)
	pi, yPI := run(true)
	if plain.Rejected > 5 && pi.Rejected >= plain.Rejected {
		t.Fatalf("PI rejected %d steps, elementary %d", pi.Rejected, plain.Rejected)
	}
	want := math.Sin(20.0)
	if math.Abs(yPI-want) > 1e-5 || math.Abs(yPlain-want) > 1e-5 {
		t.Fatalf("solutions drifted: plain %g, PI %g, want %g", yPlain, yPI, want)
	}
}

// TestCarryStepResumes: with CarryStep a follow-on Integrate call must not
// ramp up from InitialStep again — the second leg of a split interval
// should cost about as many steps as the same leg of an unsplit run.
func TestCarryStepResumes(t *testing.T) {
	f := func(tt float64, y, dy []float64) { dy[0] = -y[0] }
	count := func(carry bool) int {
		ad := NewDVERK(1e-8, 1e-12)
		ad.InitialStep = 1e-6
		ad.CarryStep = carry
		y := []float64{1}
		st1, err := ad.Integrate(f, 0, 5, y)
		if err != nil {
			t.Fatal(err)
		}
		st2, err := ad.Integrate(f, 5, 10, y)
		if err != nil {
			t.Fatal(err)
		}
		_ = st1
		return st2.Steps
	}
	carried := count(true)
	restarted := count(false)
	if carried >= restarted {
		t.Fatalf("carried second leg took %d steps, restart took %d", carried, restarted)
	}
}

// TestStepObserverContract: both integrators implement StepObserver and
// deliver every accepted step through SetOnStep.
func TestStepObserverContract(t *testing.T) {
	f := func(tt float64, y, dy []float64) { dy[0] = 1 }
	for _, integ := range []Integrator{NewDVERK(1e-6, 1e-12), NewRK4(32)} {
		obs, ok := integ.(StepObserver)
		if !ok {
			t.Fatalf("%s does not implement StepObserver", integ.Name())
		}
		var n int
		last := 0.0
		obs.SetOnStep(func(tt float64, y []float64) { n++; last = tt })
		y := []float64{0}
		st, err := integ.Integrate(f, 0, 1, y)
		if err != nil {
			t.Fatal(err)
		}
		if n != st.Steps {
			t.Fatalf("%s: observer saw %d steps, stats say %d", integ.Name(), n, st.Steps)
		}
		if last != 1.0 {
			t.Fatalf("%s: last observed time %g, want 1", integ.Name(), last)
		}
	}
}

// TestResetAndBufferReuse: a pooled integrator — Reset between runs and
// driven through systems of different dimension (a sweep worker's arena
// reuses one Adaptive across modes whose hierarchies grow, shrink and vary
// with k) — must produce bitwise the trajectories of freshly constructed
// integrators, and must stop allocating once it has seen its largest
// system.
func TestResetAndBufferReuse(t *testing.T) {
	runs := []struct {
		f    Func
		n    int
		t1   float64
		last float64
	}{
		{expDecay, 1, 2.0, 0},
		{harmonic(3.0), 2, 5.0, 0},
		{expDecay, 1, 1.0, 0},
	}
	// Fresh integrator per run: the reference trajectories.
	for i := range runs {
		ad := NewDVERK(1e-8, 1e-12)
		ad.PI = true
		y := make([]float64, runs[i].n)
		y[0] = 1
		if _, err := ad.Integrate(runs[i].f, 0, runs[i].t1, y); err != nil {
			t.Fatal(err)
		}
		runs[i].last = y[0]
	}
	// One pooled integrator, Reset between runs.
	pooled := NewDVERK(0, 0)
	for i, r := range runs {
		pooled.Reset()
		pooled.RTol, pooled.ATol = 1e-8, 1e-12
		pooled.PI = true
		y := make([]float64, r.n)
		y[0] = 1
		if _, err := pooled.Integrate(r.f, 0, r.t1, y); err != nil {
			t.Fatal(err)
		}
		if y[0] != r.last {
			t.Fatalf("run %d: pooled integrator differs bitwise: %g vs %g", i, y[0], r.last)
		}
	}
	// Once warm at the largest dimension, re-runs must not allocate.
	y := make([]float64, 2)
	h := harmonic(3.0)
	if n := testing.AllocsPerRun(10, func() {
		pooled.Reset()
		pooled.RTol, pooled.ATol = 1e-8, 1e-12
		y[0], y[1] = 1, 0
		if _, err := pooled.Integrate(h, 0, 5.0, y); err != nil {
			t.Fatal(err)
		}
	}); n > 0 {
		t.Fatalf("warm pooled integrator allocates %.0f/run, want 0", n)
	}
}
