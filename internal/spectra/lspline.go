package spectra

import (
	"fmt"
	"math"

	"plinger/internal/spline"
)

// Spline-in-l projection: the second half of the fast C_l recipe. The
// angular spectrum is smooth in l on the acoustic scale — l(l+1)C_l is a
// damped oscillation of period l_A (the projected inverse sound horizon at
// recombination) — so projecting every requested multipole is wasted work:
// the engine projects a coarse l ladder that resolves that oscillation,
// then cubic-splines l(l+1)C_l onto the full request. The projection loop
// and the Bessel-table footprint shrink by the same factor, which on a
// dense request is a multiple, on the default log-thinned ladder still a
// solid cut at high l where the thinning has flattened out.

// AcousticScaleL returns the acoustic angular scale l_A = pi * (tau0 -
// tauRec) / r_s with the tight-coupling sound horizon r_s ~ tauRec /
// sqrt(3): the period of the C_l acoustic oscillation in l, and hence the
// scale every coarse l grid must resolve. For the paper's SCDM model this
// is ~230, putting the first acoustic peak (at ~0.75 l_A) near l ~ 220.
func AcousticScaleL(tau0, tauRec float64) float64 {
	if tauRec <= 0 || tau0 <= tauRec {
		return 0
	}
	return math.Pi * math.Sqrt(3.0) * (tau0 - tauRec) / tauRec
}

// Coarse-grid shape parameters, all in units of the acoustic scale l_A:
// the base step between peaks, the finer step inside a peak window, and
// the window half-width around each peak center l_m ~ l_A (m - 1/4).
// A cubic spline sampling a period-P oscillation at step h carries a
// relative error ~ (2 pi h / P)^4 / 384, so h = l_A/9 sits near 6e-4 —
// inside the engine's 1e-3 budget — and the peak windows (where the C_l
// curvature peaks and accuracy matters most) run ~3x finer still.
const (
	lsplineStepFrac = 1.0 / 9.0
	lsplinePeakFrac = 1.0 / 14.0
	lsplinePeakHalf = 1.0 / 4.0
	// lsplineGrow is the geometric step ratio at low l, where C_l varies
	// on the scale of l itself rather than l_A.
	lsplineGrow = 0.30
)

// lsplineNearPeak reports whether multipole l falls inside the densified
// window of an acoustic peak l_m = lA (m - 1/4), m >= 1.
func lsplineNearPeak(l, lA float64) bool {
	m := math.Round(l/lA + 0.25)
	if m < 1 {
		m = 1
	}
	return math.Abs(l-lA*(m-0.25)) < lA*lsplinePeakHalf
}

// LSplineGrid returns the coarse projection ladder for requests spanning
// [lmin, lmax]: geometric steps at low l, capped at l_A/9 once the
// acoustic oscillation sets the smoothness scale, densified to l_A/14
// inside a half-width l_A/4 window around every acoustic peak. Both
// endpoints are always included so the spline never extrapolates.
func LSplineGrid(lmin, lmax int, tauRec, tau0 float64) []int {
	lA := AcousticScaleL(tau0, tauRec)
	if lA <= 0 || lmin >= lmax {
		return nil
	}
	var out []int
	for l := lmin; l < lmax; {
		out = append(out, l)
		step := float64(l) * lsplineGrow
		if cap := lA * lsplineStepFrac; step > cap {
			step = cap
		}
		if lsplineNearPeak(float64(l), lA) {
			if cap := lA * lsplinePeakFrac; step > cap {
				step = cap
			}
		}
		if step < 1 {
			step = 1
		}
		l += int(step)
	}
	// Fold a short last step into the endpoint instead of leaving a
	// sliver interval, which would wiggle the spline's end condition.
	if n := len(out); n > 1 && lmax-out[n-1] < 2 {
		out = out[:n-1]
	}
	return append(out, lmax)
}

// SafeLSpline is the engine's clamp on the spline-in-l optimisation, the
// analogue of SafeKRefine for the k direction: it returns the coarse
// projection ladder for the request ls, or nil when the optimisation
// cannot pay for itself or cannot meet the 1e-3 budget — too few
// requested multipoles to amortise a spline, a degenerate recombination
// epoch (no acoustic scale to set the coarse step), a non-increasing
// request (the spline abscissae must be strictly increasing), or a coarse
// ladder not at least 20% smaller than the request. A nil return means
// "project exactly"; callers degrade to the full ladder, never to an
// unsound spline.
func SafeLSpline(ls []int, tauRec, tau0 float64) []int {
	const minRequest = 12
	if len(ls) < minRequest {
		return nil
	}
	for i := 1; i < len(ls); i++ {
		if ls[i] <= ls[i-1] {
			return nil
		}
	}
	coarse := LSplineGrid(ls[0], ls[len(ls)-1], tauRec, tau0)
	if coarse == nil || len(coarse) < 4 {
		return nil
	}
	if 5*len(coarse) > 4*len(ls) { // not >= 20% smaller: not worth a spline
		return nil
	}
	return coarse
}

// SplineCl interpolates a coarse-ladder spectrum onto the full request
// ls. The interpolant is l(l+1)C_l versus l — the combination that is a
// pure damped oscillation, free of the steep l^-2 envelope that would
// bleed interpolation error across octaves — and the coarse ladder must
// span the request (SafeLSpline guarantees it by construction).
func SplineCl(coarse *ClSpectrum, ls []int) (*ClSpectrum, error) {
	nc := len(coarse.L)
	if nc < 4 {
		return nil, fmt.Errorf("spectra: coarse l ladder too short to spline (%d points)", nc)
	}
	if ls[0] < coarse.L[0] || ls[len(ls)-1] > coarse.L[nc-1] {
		return nil, fmt.Errorf("spectra: request [%d, %d] outside coarse ladder [%d, %d]",
			ls[0], ls[len(ls)-1], coarse.L[0], coarse.L[nc-1])
	}
	xs := make([]float64, nc)
	ys := make([]float64, nc)
	for i, l := range coarse.L {
		xs[i] = float64(l)
		ys[i] = float64(l*(l+1)) * coarse.Cl[i]
	}
	var sp spline.Spline
	if err := sp.Fit(xs, ys); err != nil {
		return nil, err
	}
	out := &ClSpectrum{L: append([]int(nil), ls...), Cl: make([]float64, len(ls)), TCMB: coarse.TCMB}
	hint := 0
	for j, l := range ls {
		out.Cl[j] = sp.EvalHint(float64(l), &hint) / float64(l*(l+1))
	}
	return out, nil
}
