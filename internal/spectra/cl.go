package spectra

import (
	"fmt"
	"math"

	"plinger/internal/constants"
)

// Primordial describes the initial perturbation spectrum: a power law
// P_C(k) = Amp (k/Pivot)^(n-1) in the dimensionless normalization constant
// C of MB95 eq. (96), the unit in which the transfer functions are
// computed.
type Primordial struct {
	// N is the spectral index (1 = scale-invariant, the paper's choice).
	N float64
	// Amp is the amplitude at the pivot.
	Amp float64
	// Pivot is the pivot wavenumber in Mpc^-1.
	Pivot float64
}

// DefaultPrimordial returns a scale-invariant spectrum of unit amplitude.
func DefaultPrimordial(n float64) Primordial {
	return Primordial{N: n, Amp: 1.0, Pivot: 0.01}
}

// At evaluates P_C(k).
func (p Primordial) At(k float64) float64 {
	n := p.N
	if n == 0 {
		n = 1
	}
	pivot := p.Pivot
	if pivot <= 0 {
		pivot = 0.01
	}
	amp := p.Amp
	if amp == 0 {
		amp = 1
	}
	return amp * math.Pow(k/pivot, n-1.0)
}

// DefaultLs returns the default multipole ladder for a C_l run up to
// lmaxCl: every l at the bottom, logarithmically thinning steps above.
// The facade and the command-line drivers share this so their spectra,
// ablations and Bessel-table cache entries line up.
func DefaultLs(lmaxCl int) []int {
	var ls []int
	for l := 2; l <= lmaxCl; {
		ls = append(ls, l)
		l += 1 + l/8
	}
	return ls
}

// ClSpectrum is an angular power spectrum with its normalization state.
type ClSpectrum struct {
	L  []int
	Cl []float64
	// TCMB (kelvin) converts to thermodynamic temperature units.
	TCMB float64
}

// Cl computes the temperature angular power spectrum at the requested
// multipoles by the brute-force LINGER method:
//
//	C_l = 4 pi Integral dlnk P_C(k) |Theta_l(k, tau0)|^2
//
// using trapezoidal quadrature over the sweep's k grid. Multipoles beyond a
// mode's hierarchy cutoff contribute zero (they carry no power anyway when
// the per-k cutoff respects PerKLMax).
func (s *Sweep) Cl(ls []int, prim Primordial, tcmb float64) (*ClSpectrum, error) {
	if len(s.KValues) < 3 {
		return nil, fmt.Errorf("spectra: need at least 3 wavenumbers, got %d", len(s.KValues))
	}
	out := &ClSpectrum{L: append([]int(nil), ls...), Cl: make([]float64, len(ls)), TCMB: tcmb}
	for j, l := range ls {
		var sum float64
		for i := range s.KValues {
			k := s.KValues[i]
			r := s.Results[i]
			var th float64
			if l < len(r.ThetaL) {
				th = r.ThetaL[l]
			}
			f := prim.At(k) * th * th / k // integrand of Integral dk
			w := trapWeight(s.KValues, i)
			sum += w * f
		}
		out.Cl[j] = 4.0 * math.Pi * sum
	}
	return out, nil
}

// ClPolarization computes the E-mode-like polarization spectrum from the
// G_l hierarchy (the 1995 convention, not the later E/B decomposition).
func (s *Sweep) ClPolarization(ls []int, prim Primordial, tcmb float64) (*ClSpectrum, error) {
	out := &ClSpectrum{L: append([]int(nil), ls...), Cl: make([]float64, len(ls)), TCMB: tcmb}
	for j, l := range ls {
		var sum float64
		for i := range s.KValues {
			k := s.KValues[i]
			r := s.Results[i]
			var th float64
			if l < len(r.ThetaPL) {
				th = r.ThetaPL[l]
			}
			sum += trapWeight(s.KValues, i) * prim.At(k) * th * th / k
		}
		out.Cl[j] = 4.0 * math.Pi * sum
	}
	return out, nil
}

func trapWeight(x []float64, i int) float64 {
	n := len(x)
	switch i {
	case 0:
		return 0.5 * (x[1] - x[0])
	case n - 1:
		return 0.5 * (x[n-1] - x[n-2])
	default:
		return 0.5 * (x[i+1] - x[i-1])
	}
}

// NormalizeCOBE rescales the spectrum (in place) so the quadrupole matches
// the COBE Q_rms-PS value (microkelvin), the normalization used for the
// paper's Figure 2: C_2 = (4 pi/5)(Q/T0)^2. It returns the scale factor
// applied, which also rescales the primordial amplitude and the matter
// power spectrum.
func (c *ClSpectrum) NormalizeCOBE(qRmsPSMicroK float64) (float64, error) {
	var c2 float64
	for i, l := range c.L {
		if l == 2 {
			c2 = c.Cl[i]
		}
	}
	if c2 <= 0 {
		return 0, fmt.Errorf("spectra: quadrupole missing or non-positive; include l=2 in the request")
	}
	t0 := c.TCMB
	if t0 <= 0 {
		t0 = constants.TCMBDefault
	}
	q := qRmsPSMicroK * 1e-6 / t0 // dimensionless Q/T0
	target := 4.0 * math.Pi / 5.0 * q * q
	scale := target / c2
	for i := range c.Cl {
		c.Cl[i] *= scale
	}
	return scale, nil
}

// BandPower returns the conventional band power dT_l = T0
// sqrt(l(l+1)C_l/2pi) in microkelvin at index i.
func (c *ClSpectrum) BandPower(i int) float64 {
	l := float64(c.L[i])
	t0 := c.TCMB
	if t0 <= 0 {
		t0 = constants.TCMBDefault
	}
	v := l * (l + 1.0) * c.Cl[i] / (2.0 * math.Pi)
	if v < 0 {
		return 0
	}
	return t0 * 1e6 * math.Sqrt(v)
}
