package spectra

import (
	"testing"

	"plinger/internal/core"
	"plinger/internal/specfunc"
)

// TestLOSProjectionAllocBudget pins the fast projection hot path at zero
// steady-state allocations: with a warm losScratch, assembling a mode's
// sources and projecting them against the shared kernel table must reuse
// every buffer (this is what lets ClLOSFast sweep hundreds of modes per
// request without feeding the garbage collector).
func TestLOSProjectionAllocBudget(t *testing.T) {
	m := model(t)
	tau0, tauRec := m.BG.Tau0(), m.TH.TauRec()
	r, err := m.Evolve(core.Params{K: 0.03, LMax: 24, Gauge: core.ConformalNewtonian, KeepSources: true})
	if err != nil {
		t.Fatal(err)
	}
	ls := []int{2, 5, 10, 20, 40, 60}
	tbl := specfunc.SharedBesselTable(ls, r.K*(tau0-r.Sources[0].Tau), nil)
	var sc losScratch
	out := make([]float64, len(ls))
	n := testing.AllocsPerRun(10, func() {
		if err := losAssemble(r, tau0, tauRec, &sc); err != nil {
			t.Fatal(err)
		}
		if err := projectThetaTable(r.K, tau0, &sc, ls, tbl, out); err != nil {
			t.Fatal(err)
		}
	})
	if n > 0 {
		t.Errorf("fast LOS assembly+projection: %.0f allocs/op with a warm scratch, want 0", n)
	}
}

// TestRefineKAllocBudget bounds the coarse-to-fine refinement: its output
// (one synthetic Result per fine wavenumber plus one shared sample backing
// array) is allocated by design, but the per-time-sample spline loop must
// stay allocation-free, so the total is pinned at nkFine plus a fixed
// overhead rather than growing with the time grid.
func TestRefineKAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("needs a real coarse sweep")
	}
	m := model(t)
	tauRec := m.TH.TauRec()
	ks := ClGrid(60, m.BG.Tau0(), 12)
	sw, err := RunSweep(m, core.Params{LMax: 12, Gauge: core.ConformalNewtonian, KeepSources: true}, ks, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	const nkFine = 40
	n := testing.AllocsPerRun(3, func() {
		if _, err := sw.RefineK(nkFine, tauRec); err != nil {
			t.Fatal(err)
		}
	})
	if budget := float64(nkFine + 64); n > budget {
		t.Errorf("RefineK(%d): %.0f allocs/op, budget %.0f (output + fixed overhead)", nkFine, n, budget)
	}
}
