package spectra

import (
	"testing"

	"plinger/internal/core"
)

// Polarization spectrum physics: generated only through the visibility
// window, it is strongly suppressed relative to temperature at the
// multipoles the 1995 experiments probed.
func TestPolarizationSpectrum(t *testing.T) {
	if testing.Short() {
		t.Skip("full-hierarchy polarization sweep is expensive")
	}
	m := model(t)
	ks := ClGrid(40, m.BG.Tau0(), 80)
	sw, err := RunSweep(m, core.Params{LMax: 160, Gauge: core.Synchronous}, ks, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	ls := []int{5, 10, 20, 35}
	temp, err := sw.Cl(ls, DefaultPrimordial(1.0), m.BG.P.TCMB)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := sw.ClPolarization(ls, DefaultPrimordial(1.0), m.BG.P.TCMB)
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range ls {
		if pol.Cl[i] < 0 {
			t.Fatalf("negative polarization power at l=%d", l)
		}
		if pol.Cl[i] >= 0.05*temp.Cl[i] {
			t.Fatalf("polarization/temperature at l=%d: %g, want << 1",
				l, pol.Cl[i]/temp.Cl[i])
		}
	}
	// It must not be identically zero either.
	var total float64
	for _, c := range pol.Cl {
		total += c
	}
	if total == 0 {
		t.Fatal("polarization spectrum identically zero")
	}
}
