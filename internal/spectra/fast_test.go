package spectra

import (
	"math"
	"math/rand"
	"testing"

	"plinger/internal/core"
)

// TestThetaLOSFastMatchesReference: on one mode, the table-driven
// projection must reproduce the exact-recurrence reference multipole by
// multipole. The two paths share grid and sources, so the only differences
// are the cubic kernel interpolation (~1e-6) and the turning-point
// truncation (~1e-9) — far below the 1e-3 engine budget this pins.
func TestThetaLOSFastMatchesReference(t *testing.T) {
	m := model(t)
	tau0 := m.BG.Tau0()
	r, err := m.Evolve(core.Params{K: 0.03, LMax: 24, Gauge: core.ConformalNewtonian, KeepSources: true})
	if err != nil {
		t.Fatal(err)
	}
	ls := []int{2, 5, 10, 20, 40, 60}
	ref, err := ThetaLOS(r, 60, tau0, m.TH.TauRec())
	if err != nil {
		t.Fatal(err)
	}
	fast, err := ThetaLOSFast(r, ls, tau0, m.TH.TauRec())
	if err != nil {
		t.Fatal(err)
	}
	var scale float64
	for _, l := range ls {
		if a := math.Abs(ref[l]); a > scale {
			scale = a
		}
	}
	for j, l := range ls {
		if diff := math.Abs(fast[j] - ref[l]); diff > 1e-4*scale {
			t.Fatalf("l=%d: fast %g vs reference %g (scale %g)", l, fast[j], ref[l], scale)
		}
	}
}

// TestClLOSFastMatchesReference: the golden equivalence of the fast engine
// on a common sweep — identical quadrature, tabulated vs exact kernels.
func TestClLOSFastMatchesReference(t *testing.T) {
	m := model(t)
	ks := ClGrid(60, m.BG.Tau0(), 40)
	sw, err := RunSweep(m, core.Params{LMax: 24, Gauge: core.ConformalNewtonian, KeepSources: true}, ks, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	ls := []int{2, 4, 8, 15, 30, 60}
	ref, err := sw.ClLOS(ls, DefaultPrimordial(1.0), m.BG.P.TCMB, m.TH.TauRec())
	if err != nil {
		t.Fatal(err)
	}
	fast, err := sw.ClLOSFast(ls, DefaultPrimordial(1.0), m.BG.P.TCMB, m.TH.TauRec())
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range ls {
		rel := math.Abs(fast.Cl[i]-ref.Cl[i]) / ref.Cl[i]
		if rel > 1e-3 {
			t.Fatalf("C_%d: fast %g vs reference %g (rel %g)", l, fast.Cl[i], ref.Cl[i], rel)
		}
	}
}

// TestRefineKMatchesFullGrid is the golden check of the coarse-to-fine
// pipeline: evolving every 4th wavenumber and splining the sources in k
// must reproduce the fully evolved fine-grid spectrum to < 1e-3 — the
// CMBFAST premise that sources vary slowly in k.
func TestRefineKMatchesFullGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("two C_l sweeps are expensive")
	}
	m := model(t)
	tau0 := m.BG.Tau0()
	tauRec := m.TH.TauRec()
	nkFine := 57
	mode := core.Params{LMax: 24, Gauge: core.ConformalNewtonian, KeepSources: true}

	fineKs := ClGrid(60, tau0, nkFine)
	full, err := RunSweep(m, mode, fineKs, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := RunSweep(m, mode, RefineCoarseGrid(fineKs, 4), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	refined, err := coarse.RefineK(nkFine, tauRec)
	if err != nil {
		t.Fatal(err)
	}
	if len(refined.KValues) != nkFine {
		t.Fatalf("refined to %d modes, want %d", len(refined.KValues), nkFine)
	}
	for i, k := range refined.KValues {
		if math.Abs(k-full.KValues[i]) > 1e-12 {
			t.Fatalf("fine grid mismatch at %d: %g vs %g", i, k, full.KValues[i])
		}
	}

	ls := []int{2, 4, 8, 15, 30, 60}
	prim := DefaultPrimordial(1.0)
	want, err := full.ClLOS(ls, prim, m.BG.P.TCMB, tauRec)
	if err != nil {
		t.Fatal(err)
	}
	// The refined sweep feeds the reference projection (the pure RefineK
	// error) and the fast projection (the production pipeline).
	gotRef, err := refined.ClLOS(ls, prim, m.BG.P.TCMB, tauRec)
	if err != nil {
		t.Fatal(err)
	}
	gotFast, err := refined.ClLOSFast(ls, prim, m.BG.P.TCMB, tauRec)
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range ls {
		relR := math.Abs(gotRef.Cl[i]-want.Cl[i]) / want.Cl[i]
		relF := math.Abs(gotFast.Cl[i]-want.Cl[i]) / want.Cl[i]
		if relR > 1e-3 || relF > 1e-3 {
			t.Fatalf("C_%d: full %g, refined ref %g (rel %g), refined fast %g (rel %g)",
				l, want.Cl[i], gotRef.Cl[i], relR, gotFast.Cl[i], relF)
		}
	}
}

func TestRefineKValidation(t *testing.T) {
	m := model(t)
	sw, err := RunSweep(m, core.Params{LMax: 12, Gauge: core.ConformalNewtonian, KeepSources: true},
		[]float64{0.01, 0.02, 0.03, 0.04, 0.05}, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.RefineK(3, m.TH.TauRec()); err == nil {
		t.Fatal("coarser-than-input refinement accepted")
	}
	syncSw, err := RunSweep(m, core.Params{LMax: 12, Gauge: core.Synchronous, KeepSources: true},
		[]float64{0.01, 0.02, 0.03, 0.04}, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := syncSw.RefineK(16, m.TH.TauRec()); err == nil {
		t.Fatal("synchronous sweep accepted")
	}
	short := &Sweep{KValues: []float64{1, 2}, Results: sw.Results[:2], Tau0: sw.Tau0}
	if _, err := short.RefineK(9, m.TH.TauRec()); err == nil {
		t.Fatal("too-few coarse modes accepted")
	}
}

// TestSampleSeriesCursor: the monotone-cursor lookup must agree with plain
// bisection for monotone sweeps, repeated queries, and random access.
func TestSampleSeriesCursor(t *testing.T) {
	src := make([]core.Sample, 64)
	tau := 10.0
	rng := rand.New(rand.NewSource(7))
	for i := range src {
		src[i] = core.Sample{Tau: tau, Theta0: math.Sin(tau), Psi: math.Cos(tau)}
		tau += 0.5 + 10.0*rng.Float64()
	}
	ss := newSampleSeries(src)
	bisect := func(q float64) core.Sample {
		n := len(src)
		if q <= src[0].Tau {
			return src[0]
		}
		if q >= src[n-1].Tau {
			return src[n-1]
		}
		lo, hi := 0, n-1
		for hi-lo > 1 {
			mid := (lo + hi) / 2
			if src[mid].Tau <= q {
				lo = mid
			} else {
				hi = mid
			}
		}
		f := (q - src[lo].Tau) / (src[hi].Tau - src[lo].Tau)
		return core.Sample{
			Tau:    q,
			Theta0: src[lo].Theta0*(1-f) + src[hi].Theta0*f,
			Psi:    src[lo].Psi*(1-f) + src[hi].Psi*f,
		}
	}
	check := func(q float64) {
		got := ss.at(q)
		want := bisect(q)
		if got.Theta0 != want.Theta0 || got.Psi != want.Psi {
			t.Fatalf("at(%g): got (%g, %g), want (%g, %g)", q, got.Theta0, got.Psi, want.Theta0, want.Psi)
		}
	}
	// Monotone sweep (the hot-loop pattern), including exact knots.
	for q := 0.0; q < tau+5; q += 0.37 {
		check(q)
	}
	for i := range src {
		check(src[i].Tau)
	}
	// Random access must still be exact (cursor rewinds by bisection).
	for i := 0; i < 500; i++ {
		check(tau * rng.Float64())
	}
}

func TestRefineCoarseGrid(t *testing.T) {
	fine := ClGrid(150, 11500, 130)
	coarse := RefineCoarseGrid(fine, 6)
	if len(coarse) >= len(fine)/2 {
		t.Fatalf("coarse grid too big: %d of %d", len(coarse), len(fine))
	}
	if coarse[0] != fine[0] || coarse[len(coarse)-1] != fine[len(fine)-1] {
		t.Fatal("endpoints must be preserved")
	}
	for i := 1; i < len(coarse); i++ {
		if coarse[i] <= coarse[i-1] {
			t.Fatalf("coarse grid not increasing at %d", i)
		}
	}
	// The log head must put several wavenumbers inside the first fine
	// coarse interval (where mode entry sweeps through recombination).
	nHead := 0
	for _, k := range coarse {
		if k > fine[0] && k < fine[6] {
			nHead++
		}
	}
	if nHead < 8 {
		t.Fatalf("log head too sparse: %d points", nHead)
	}
	if got := RefineCoarseGrid(fine, 1); len(got) != len(fine) {
		t.Fatal("kRefine 1 must return the fine grid")
	}
}
