package spectra

import (
	"fmt"
	"math"

	"plinger/internal/core"
	"plinger/internal/spline"
)

// RefineK is the CMBFAST-style coarse-to-fine wavenumber pipeline: the
// expensive ODE evolutions are done only on this sweep's (coarse) k grid,
// and the recorded line-of-sight sources — which, unlike Theta_l(k), vary
// slowly with k — are resampled onto a shared conformal-time grid and
// cubic-splined in k onto a uniform grid of nkFine wavenumbers spanning the
// same range. The result is a synthetic Sweep whose modes carry
// interpolated sources: both the reference ClLOS and the fast ClLOSFast
// consume it unchanged, so a Figure-2-quality spectrum costs ~nkFine/nk
// fewer evolutions. tauRec (the visibility peak) shapes the shared grid
// exactly as it shapes the per-mode LOS quadrature grid.
//
// Modes enter the evolution at k tau = const, so each wavenumber's sources
// begin at tau_start(k) = C/k: the shared grid starts at the earliest
// coarse start, every synthetic mode is truncated to its own tau_start,
// and each time sample is splined only across the coarse modes that have
// begun by then — exactly mirroring what a full fine-grid evolution would
// record.
//
// Only source-level fields are interpolated (the final-time hierarchy
// read-off Theta_l is not, since it oscillates rapidly in k); the synthetic
// results are for line-of-sight use.
func (s *Sweep) RefineK(nkFine int, tauRec float64) (*Sweep, error) {
	nc := len(s.KValues)
	if nc < 4 {
		return nil, fmt.Errorf("spectra: RefineK needs at least 4 coarse modes, got %d", nc)
	}
	if nkFine <= nc {
		return nil, fmt.Errorf("spectra: RefineK target %d not finer than the %d-mode sweep", nkFine, nc)
	}
	for i := 1; i < nc; i++ {
		if s.KValues[i] <= s.KValues[i-1] {
			return nil, fmt.Errorf("spectra: RefineK needs a strictly increasing k grid")
		}
	}
	starts := make([]float64, nc)
	base := 0
	for i, r := range s.Results {
		if r == nil || r.Gauge != core.ConformalNewtonian {
			return nil, fmt.Errorf("spectra: RefineK requires conformal Newtonian modes with sources")
		}
		if len(r.Sources) < 10 {
			return nil, fmt.Errorf("spectra: mode k=%g has no recorded sources (set KeepSources)", s.KValues[i])
		}
		starts[i] = r.Sources[0].Tau
		if starts[i] < starts[base] {
			base = i
		}
	}

	// Shared conformal-time grid, from the earliest coarse start (the
	// largest k enters first). Unlike the per-mode LOS quadrature grid it
	// only has to represent the sources — dense through the visibility
	// peak, moderate elsewhere — because every consumer rebuilds its own
	// oscillation-resolving quadrature grid from these samples.
	tau0 := s.Tau0
	grid := sourceGrid(starts[base], tauRec, tau0)
	nt := len(grid)
	eps := 1e-9 * tau0

	// The interpolated source fields, resampled per coarse mode onto the
	// shared grid (flat [t*nc + c] matrices, so each fixed-time k column
	// is contiguous for the spline pass; entries before a mode's start are
	// clamped to its first sample and never used by the splines). Only the
	// fields the line-of-sight integrand consumes are interpolated. The
	// opacity history (Kdot, Kappa) is physically k-independent, but each
	// mode records it at its own adaptive step times and the reference
	// projection integrates exactly that per-mode piecewise resampling —
	// so it is interpolated in k like the perturbations, which keeps the
	// refined sweep consistent with a true full fine-grid run.
	fields := []struct {
		get func(s *core.Sample) float64
		set func(s *core.Sample, v float64)
	}{
		{func(s *core.Sample) float64 { return s.Kdot }, func(s *core.Sample, v float64) { s.Kdot = v }},
		{func(s *core.Sample) float64 { return s.Kappa }, func(s *core.Sample, v float64) { s.Kappa = v }},
		{func(s *core.Sample) float64 { return s.Theta0 }, func(s *core.Sample, v float64) { s.Theta0 = v }},
		{func(s *core.Sample) float64 { return s.Psi }, func(s *core.Sample, v float64) { s.Psi = v }},
		{func(s *core.Sample) float64 { return s.PhiDot }, func(s *core.Sample, v float64) { s.PhiDot = v }},
		{func(s *core.Sample) float64 { return s.VB }, func(s *core.Sample, v float64) { s.VB = v }},
		{func(s *core.Sample) float64 { return s.Pi }, func(s *core.Sample, v float64) { s.Pi = v }},
	}
	nf := len(fields)
	// Knot-major per time sample: coarse[t*nc*nf + c*nf + f], so the
	// fixed-time block feeds the multi-spline (shared tridiagonal fit and
	// bracket across all fields) without any transpose.
	coarse := make([]float64, nt*nc*nf)
	bgA := make([]float64, nt) // scale factor: metadata, k-independent
	var ss sampleSeries
	var smp core.Sample
	for c := 0; c < nc; c++ {
		ss.init(s.Results[c].Sources, ss.tau)
		for t, tau := range grid {
			ss.atInto(tau, &smp)
			row := coarse[t*nc*nf+c*nf:]
			for f := range fields {
				row[f] = fields[f].get(&smp)
			}
			if c == base {
				bgA[t] = smp.A
			}
		}
	}

	// Uniform fine grid over the same span; each fine mode starts where a
	// real evolution would: at k tau = C (from the earliest-starting
	// coarse mode, which is never capped), but no later than the
	// radiation-era cap that every small-k coarse mode exhibits.
	ksFine := make([]float64, nkFine)
	k0, k1 := s.KValues[0], s.KValues[nc-1]
	for i := range ksFine {
		ksFine[i] = k0 + (k1-k0)*float64(i)/float64(nkFine-1)
	}
	cStart := s.KValues[base] * starts[base]
	tCap := starts[0]
	for _, st := range starts {
		if st > tCap {
			tCap = st
		}
	}
	fineT0 := make([]int, nkFine) // first shared-grid index of mode i
	results := make([]*core.Result, nkFine)
	// One backing array for every synthetic mode's samples: the refined
	// sweep is by far the largest allocation of a fast pipeline run, and a
	// single block keeps it to one allocation instead of nkFine.
	total := 0
	for i := range results {
		tStart := cStart / ksFine[i]
		if tStart > tCap {
			tStart = tCap
		}
		t0 := 0
		for t0 < nt-1 && grid[t0] < tStart-eps {
			t0++
		}
		fineT0[i] = t0
		total += nt - t0
	}
	backing := make([]core.Sample, total)
	for i := range results {
		t0 := fineT0[i]
		src := backing[: nt-t0 : nt-t0]
		backing = backing[nt-t0:]
		for t := range src {
			src[t].Tau = grid[t0+t]
			src[t].A = bgA[t0+t]
		}
		results[i] = &core.Result{
			K:       ksFine[i],
			Tau:     grid[nt-1],
			A:       bgA[nt-1],
			Gauge:   core.ConformalNewtonian,
			LMax:    s.Results[base].LMax,
			Sources: src,
		}
	}

	// Spline each field across k at every time sample, over the coarse
	// modes that have begun by then (a suffix of the k grid: start falls
	// with k). The fine grid is swept monotonically, so spline lookups
	// reduce to cursor steps.
	mu := spline.NewMulti(nf)
	vals := make([]float64, nf)
	c0 := nc - 1 // earliest-started suffix; grows downward as tau advances
	i0 := nkFine - 1
	for t := 0; t < nt; t++ {
		tau := grid[t]
		for c0 > 0 && starts[c0-1] <= tau+eps {
			c0--
		}
		for i0 > 0 && fineT0[i0-1] <= t {
			i0--
		}
		nv := nc - c0
		hint := 0
		if nv >= 2 {
			if err := mu.Fit(s.KValues[c0:], coarse[(t*nc+c0)*nf:(t*nc+nc)*nf]); err != nil {
				return nil, err
			}
		}
		for i := i0; i < nkFine; i++ {
			smp := &results[i].Sources[t-fineT0[i]]
			if nv >= 2 {
				// All fields share the coarse k abscissae: one bracket and
				// one weight set serve the whole knot-major block.
				mu.EvalHint(ksFine[i], &hint, vals)
				for f := range fields {
					fields[f].set(smp, vals[f])
				}
			} else {
				for f := range fields {
					fields[f].set(smp, coarse[(t*nc+c0)*nf+f])
				}
			}
		}
	}
	return &Sweep{KValues: ksFine, Results: results, Tau0: tau0}, nil
}

// sourceGrid is the shared conformal-time sampling of RefineK: the same
// visibility window and dense-peak spacing as the LOS quadrature grid
// (losGrid's constants), but a doubled free-streaming stride — it only has
// to represent the slowly varying sources, not resolve the Bessel
// oscillation, which is the per-mode quadrature grid's job when it is
// rebuilt from these samples.
func sourceGrid(tauStart, tauRec, tau0 float64) []float64 {
	var grid []float64
	t1 := math.Max(tauStart, tauRec-losVisBefore)
	t2 := math.Min(tauRec+losVisAfter, tau0)
	grid = losSeg(grid, tauStart, t1, losDtPre)
	grid = losSeg(grid, t1, t2, losDtVis)
	grid = losSeg(grid, t2, tau0, 2.0*losDtFree)
	grid = append(grid, tau0)
	return grid
}

// SafeKRefine caps a requested refinement factor so the coarse grid still
// resolves the acoustic oscillation of the sources in k: at fixed tau the
// sources oscillate with period ~ 2 pi sqrt(3)/tauRec (the inverse sound
// horizon at recombination), and the cubic k splines need ~16 points per
// period. Requests beyond that cap would push interpolation errors past
// the 1e-3 engine budget, so they are clamped rather than honoured.
func SafeKRefine(kRefine, nk int, kmin, kmax, tauRec float64) int {
	if kRefine <= 1 || nk < 2 || tauRec <= 0 || kmax <= kmin {
		return kRefine
	}
	maxSpacing := 2.0 * math.Pi * math.Sqrt(3.0) / 16.0 / tauRec
	span := kmax - kmin
	if spacing := span * float64(kRefine) / float64(nk); spacing > maxSpacing {
		kRefine = int(maxSpacing * float64(nk) / span)
		if kRefine < 1 {
			kRefine = 1
		}
	}
	return kRefine
}

// RefineCoarseGrid builds the coarse evolution grid for a RefineK run
// targeting the fine grid ks: every kRefine-th fine wavenumber (endpoints
// always included), densified logarithmically across the lowest coarse
// interval. The densification matters because modes enter the evolution at
// k tau = const: across the lowest decade of k the entry time sweeps
// through recombination, the sources' k-validity boundary moves, and a
// single wide interval there would force the k splines to extrapolate.
// The extra wavenumbers are the cheapest in the sweep (slow dynamics,
// few integrator steps), so they cost almost nothing next to the
// (nkFine/kRefine)x evolution saving.
func RefineCoarseGrid(ks []float64, kRefine int) []float64 {
	n := len(ks)
	if kRefine <= 1 || n < 2 {
		return append([]float64(nil), ks...)
	}
	idx := map[int]bool{0: true, n - 1: true}
	for i := 0; i < n; i += kRefine {
		idx[i] = true
	}
	// Half-spacing through the first two uniform intervals above the log
	// head: the lowest multipoles peak exactly there (k ~ l/tau0 just past
	// the head) and their C_l budget needs the extra source resolution.
	for _, i := range []int{kRefine + (kRefine+1)/2, 2*kRefine + (kRefine+1)/2} {
		if i < n {
			idx[i] = true
		}
	}
	coarse := make([]float64, 0, len(idx))
	for i := 0; i < n; i++ {
		if idx[i] {
			coarse = append(coarse, ks[i])
		}
	}
	// Log-spaced head across the first coarse interval.
	lo := ks[0]
	hi := ks[min(kRefine, n-1)]
	if lo > 0 && hi > lo*1.5 {
		const nLog = 22
		ratio := hi / lo
		head := make([]float64, 0, nLog-1)
		for j := 1; j < nLog; j++ {
			v := lo * math.Pow(ratio, float64(j)/nLog)
			if v > lo*1.0000001 && v < hi*0.9999999 {
				head = append(head, v)
			}
		}
		merged := make([]float64, 0, len(coarse)+len(head))
		merged = append(merged, coarse[0])
		merged = append(merged, head...)
		merged = append(merged, coarse[1:]...)
		coarse = merged
	}
	return coarse
}
