package spectra

import (
	"math"
	"testing"

	"plinger/internal/core"
)

// TestLSplineGridShape pins the coarse-ladder construction: endpoints
// kept, strictly increasing, geometric at low l, and — the property the
// 1e-3 budget leans on — densified around the acoustic peaks, where the
// C_l curvature is largest.
func TestLSplineGridShape(t *testing.T) {
	m := model(t)
	tau0, tauRec := m.BG.Tau0(), m.TH.TauRec()
	lA := AcousticScaleL(tau0, tauRec)
	if lA < 150 || lA > 350 {
		t.Fatalf("acoustic scale l_A = %g outside the SCDM ballpark", lA)
	}

	lmax := int(1.2 * lA) // past the first peak
	grid := LSplineGrid(2, lmax, tauRec, tau0)
	if grid[0] != 2 || grid[len(grid)-1] != lmax {
		t.Fatalf("endpoints not preserved: %v", grid)
	}
	for i := 1; i < len(grid); i++ {
		if grid[i] <= grid[i-1] {
			t.Fatalf("coarse ladder not strictly increasing at %d: %v", i, grid)
		}
	}
	// Spacing inside the first peak window must be tighter than the
	// inter-peak cap — the densification actually engaging.
	peak1 := lA * 0.75
	peakStep, baseStep := 0, 0
	for i := 1; i < len(grid); i++ {
		mid := float64(grid[i]+grid[i-1]) / 2
		d := grid[i] - grid[i-1]
		switch {
		case math.Abs(mid-peak1) < lA*lsplinePeakHalf/2:
			if d > peakStep {
				peakStep = d
			}
		case mid > lA*0.33 && mid < peak1-lA*lsplinePeakHalf:
			if d > baseStep {
				baseStep = d
			}
		}
	}
	if peakStep == 0 || baseStep == 0 {
		t.Fatalf("test windows empty: %v", grid)
	}
	if peakStep >= baseStep {
		t.Fatalf("no densification near the first acoustic peak: step %d inside vs %d outside (grid %v)",
			peakStep, baseStep, grid)
	}
	if float64(peakStep) > lA*lsplinePeakFrac+1 {
		t.Fatalf("peak-window step %d exceeds the l_A/14 target (l_A = %g)", peakStep, lA)
	}
}

// TestSafeLSplineClamps pins the degrade-to-exact contract, mirroring
// SafeKRefine: every pathological request must come back nil rather than
// as an unsound coarse ladder.
func TestSafeLSplineClamps(t *testing.T) {
	m := model(t)
	tau0, tauRec := m.BG.Tau0(), m.TH.TauRec()

	if g := SafeLSpline([]int{2, 4, 8, 16, 32, 64}, tauRec, tau0); g != nil {
		t.Fatalf("short request accepted: %v", g)
	}
	unsorted := []int{2, 3, 4, 5, 6, 8, 10, 13, 17, 22, 29, 25, 38}
	if g := SafeLSpline(unsorted, tauRec, tau0); g != nil {
		t.Fatalf("non-increasing request accepted: %v", g)
	}
	if g := SafeLSpline(DefaultLs(240), 0, tau0); g != nil {
		t.Fatalf("degenerate recombination epoch accepted: %v", g)
	}
	// A request already coarser than the spline ladder: the 20%
	// amortisation clamp must reject it (the "spline" would project MORE
	// multipoles than it saves).
	sparse := []int{2, 3, 5, 8, 12, 18, 27, 41, 62, 93, 140, 210}
	if g := SafeLSpline(sparse, tauRec, tau0); g != nil {
		t.Fatalf("spline engaged on a ladder it cannot shrink: %v", g)
	}
	// A dense request spanning the first peak must engage with a real cut.
	dense := make([]int, 0, 239)
	for l := 2; l <= 240; l++ {
		dense = append(dense, l)
	}
	g := SafeLSpline(dense, tauRec, tau0)
	if g == nil {
		t.Fatal("spline refused a dense request it should accelerate")
	}
	if 5*len(g) > 4*len(dense) {
		t.Fatalf("coarse ladder %d points for a %d-point request: clamp arithmetic broken", len(g), len(dense))
	}
	if g[0] != 2 || g[len(g)-1] != 240 {
		t.Fatalf("coarse ladder does not span the request: %v", g)
	}
}

// TestClLSplineMatchesExact is the golden accuracy contract of the
// spline-in-l projection: on one shared sweep spanning the first acoustic
// peak, projecting the coarse ladder and splining l(l+1)C_l onto a dense
// request must track the exactly projected spectrum to < 1e-3 relative at
// every multipole. Both paths share sources and k quadrature, so the
// measured deviation is purely the spline-in-l error this pins — but only
// on a quadrature dense enough that the exact C_l is itself smooth in l
// (the nk below is past the convergence knee; an under-resolved k grid
// carries aliasing noise in l that no consistent l interpolation could or
// should reproduce).
func TestClLSplineMatchesExact(t *testing.T) {
	if testing.Short() {
		t.Skip("peak-resolving C_l sweep is expensive")
	}
	m := model(t)
	tau0, tauRec := m.BG.Tau0(), m.TH.TauRec()
	const lmaxCl = 240 // past the first acoustic peak at ~0.75 l_A
	ks := ClGrid(lmaxCl, tau0, 400)
	sw, err := RunSweep(m, core.Params{LMax: 24, Gauge: core.ConformalNewtonian,
		KeepSources: true, FastEvolve: true}, ks, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	ls := make([]int, 0, lmaxCl-1)
	for l := 2; l <= lmaxCl; l++ {
		ls = append(ls, l)
	}
	prim := DefaultPrimordial(1.0)
	exact, err := sw.ClLOSFast(ls, prim, m.BG.P.TCMB, tauRec)
	if err != nil {
		t.Fatal(err)
	}
	coarse := SafeLSpline(ls, tauRec, tau0)
	if coarse == nil {
		t.Fatal("SafeLSpline refused the dense request")
	}
	coarseCl, err := sw.ClLOSFast(coarse, prim, m.BG.P.TCMB, tauRec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SplineCl(coarseCl, ls)
	if err != nil {
		t.Fatal(err)
	}
	worst, worstL := 0.0, 0
	for j, l := range ls {
		rel := math.Abs(got.Cl[j]-exact.Cl[j]) / exact.Cl[j]
		if rel > worst {
			worst, worstL = rel, l
		}
	}
	t.Logf("spline-in-l: %d coarse points for %d multipoles, worst rel dev %.2e at l=%d",
		len(coarse), len(ls), worst, worstL)
	if worst > 1e-3 {
		t.Fatalf("worst relative C_l deviation %.3e at l=%d exceeds the 1e-3 contract", worst, worstL)
	}
}
