package spectra

import (
	"fmt"
	"math"

	"plinger/internal/core"
	"plinger/internal/specfunc"
)

// The line-of-sight method (Seljak & Zaldarriaga 1996, published the year
// after this paper) replaces the brute-force hierarchy read-off by an
// integral of sources against spherical Bessel kernels. Deriving the
// projection directly from the real moment hierarchy used by this code
// (writing the Thomson source as S0 + S1 mu + S2 P2(mu) and expanding the
// free-streaming plane wave) gives, with y = k(tau0 - tau):
//
//	Theta_l(tau0) = Integral dtau {
//	    [g (Theta0 + psi) + e^-kappa (phi' + psi')] j_l(y)
//	  +  g v_b                                      j_l'(y)
//	  +  g Pi/8 * (3 j_l''(y) + j_l(y))             }
//
// where Pi = F_gamma2 + G_gamma0 + G_gamma2 (F-units, = 4 Pi_Theta) and
// v_b = theta_b/k. It needs only a short hierarchy, so it serves both as an
// independent cross-check of the brute-force method and as the cheap engine
// for the shape tests.

// losGrid builds the integration grid in conformal time: dense through the
// (narrow) visibility peak, and elsewhere fine enough to resolve both the
// Bessel oscillation 2 pi/k and the integrated Sachs-Wolfe evolution.
func losGrid(tauStart, tauRec, tau0, k float64) []float64 {
	seg := func(grid []float64, lo, hi, dt float64) []float64 {
		if hi <= lo {
			return grid
		}
		n := int((hi-lo)/dt) + 1
		for i := 0; i < n; i++ {
			grid = append(grid, lo+(hi-lo)*float64(i)/float64(n))
		}
		return grid
	}
	// Spacing that resolves j_l(k(tau0-tau)) comfortably.
	hOsc := 2.0 * math.Pi / k / 24.0
	var grid []float64
	t1 := math.Max(tauStart, tauRec-120.0)
	t2 := math.Min(tauRec+180.0, tau0)
	grid = seg(grid, tauStart, t1, math.Min(10.0, hOsc)) // pre-recombination
	grid = seg(grid, t1, t2, math.Min(0.6, hOsc))        // visibility peak
	grid = seg(grid, t2, tau0, math.Min(12.0, hOsc))     // free streaming + ISW
	grid = append(grid, tau0)
	return grid
}

// sampleSeries linearly interpolates the recorded source samples.
type sampleSeries struct {
	tau []float64
	src []core.Sample
}

func newSampleSeries(src []core.Sample) *sampleSeries {
	tau := make([]float64, len(src))
	for i := range src {
		tau[i] = src[i].Tau
	}
	return &sampleSeries{tau: tau, src: src}
}

func (ss *sampleSeries) at(tau float64) core.Sample {
	n := len(ss.tau)
	if tau <= ss.tau[0] {
		return ss.src[0]
	}
	if tau >= ss.tau[n-1] {
		return ss.src[n-1]
	}
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if ss.tau[mid] <= tau {
			lo = mid
		} else {
			hi = mid
		}
	}
	f := (tau - ss.tau[lo]) / (ss.tau[hi] - ss.tau[lo])
	a, b := ss.src[lo], ss.src[hi]
	mix := func(x, y float64) float64 { return x*(1-f) + y*f }
	return core.Sample{
		Tau:    tau,
		A:      mix(a.A, b.A),
		Theta0: mix(a.Theta0, b.Theta0),
		Psi:    mix(a.Psi, b.Psi),
		Phi:    mix(a.Phi, b.Phi),
		PhiDot: mix(a.PhiDot, b.PhiDot),
		VB:     mix(a.VB, b.VB),
		Pi:     mix(a.Pi, b.Pi),
		Kdot:   mix(a.Kdot, b.Kdot),
		Kappa:  mix(a.Kappa, b.Kappa),
	}
}

// ThetaLOS computes Theta_l(k) for l = 0..lmax by the line-of-sight
// integral from the recorded sources of one mode (conformal Newtonian
// gauge required).
func ThetaLOS(r *core.Result, lmax int, tau0, tauRec float64) ([]float64, error) {
	if r.Gauge != core.ConformalNewtonian {
		return nil, fmt.Errorf("spectra: line of sight requires the conformal Newtonian gauge, got %v", r.Gauge)
	}
	if len(r.Sources) < 10 {
		return nil, fmt.Errorf("spectra: mode k=%g has no recorded sources (set KeepSources)", r.K)
	}
	k := r.K
	ss := newSampleSeries(r.Sources)
	grid := losGrid(r.Sources[0].Tau, tauRec, tau0, k)

	n := len(grid)
	srcA := make([]float64, n) // monopole kernel j_l
	srcB := make([]float64, n) // dipole kernel j_l'
	srcC := make([]float64, n) // quadrupole kernel (3 j_l'' + j_l)/2
	psiT := make([]float64, n)
	eKap := make([]float64, n)
	for i, tau := range grid {
		s := ss.at(tau)
		g := s.Kdot * math.Exp(-s.Kappa)
		eKap[i] = math.Exp(-s.Kappa)
		psiT[i] = s.Psi
		srcA[i] = g*(s.Theta0+s.Psi) + eKap[i]*s.PhiDot
		srcB[i] = g * s.VB
		srcC[i] = g * s.Pi / 4.0 // Pi in Theta units; kernel carries the 1/2
	}
	// psi-dot from the resampled series completes the ISW term.
	psiDot := deriv(grid, psiT)
	for i := range grid {
		srcA[i] += eKap[i] * psiDot[i]
	}

	theta := make([]float64, lmax+1)
	jl := make([]float64, lmax+2)
	for i, tau := range grid {
		y := k * (tau0 - tau)
		if y < 0 {
			y = 0
		}
		jl = specfunc.SphericalBesselJArray(lmax+1, y, jl)
		w := trapWeight(grid, i)
		for l := 0; l <= lmax; l++ {
			j := jl[l]
			// j_l'(y) = j_{l-1}(y) - (l+1)/y j_l(y); at y=0 only l=1 has
			// a non-zero derivative (1/3).
			var jp, jpp float64
			if y > 1e-8 {
				var jm float64
				if l > 0 {
					jm = jl[l-1]
				} else {
					jm = -jl[1] // j_{-1}' relation: j_0'(y) = -j_1(y)
				}
				if l == 0 {
					jp = -jl[1]
				} else {
					jp = jm - float64(l+1)/y*j
				}
				jpp = (float64(l*(l+1))/(y*y)-1.0)*j - 2.0/y*jp
			} else {
				if l == 1 {
					jp = 1.0 / 3.0
				}
				if l == 0 {
					jpp = -1.0 / 3.0
				}
				if l == 2 {
					jpp = 2.0 / 15.0
				}
			}
			q := 0.5 * (3.0*jpp + j)
			theta[l] += w * (srcA[i]*j + srcB[i]*jp + srcC[i]*q)
		}
	}
	return theta, nil
}

// deriv returns the centered finite-difference derivative of y on grid x.
func deriv(x, y []float64) []float64 {
	n := len(x)
	d := make([]float64, n)
	for i := range x {
		switch i {
		case 0:
			d[i] = (y[1] - y[0]) / (x[1] - x[0])
		case n - 1:
			d[i] = (y[n-1] - y[n-2]) / (x[n-1] - x[n-2])
		default:
			d[i] = (y[i+1] - y[i-1]) / (x[i+1] - x[i-1])
		}
	}
	return d
}

// ClLOS computes the angular power spectrum with the line-of-sight method
// from a sweep whose modes kept their sources.
func (s *Sweep) ClLOS(ls []int, prim Primordial, tcmb, tauRec float64) (*ClSpectrum, error) {
	lmax := 0
	for _, l := range ls {
		if l > lmax {
			lmax = l
		}
	}
	out := &ClSpectrum{L: append([]int(nil), ls...), Cl: make([]float64, len(ls)), TCMB: tcmb}
	for i := range s.KValues {
		k := s.KValues[i]
		theta, err := ThetaLOS(s.Results[i], lmax, s.Tau0, tauRec)
		if err != nil {
			return nil, err
		}
		w := trapWeight(s.KValues, i)
		for j, l := range ls {
			out.Cl[j] += 4.0 * math.Pi * w * prim.At(k) * theta[l] * theta[l] / k
		}
	}
	return out, nil
}
