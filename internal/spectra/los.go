package spectra

import (
	"fmt"
	"math"

	"plinger/internal/core"
	"plinger/internal/specfunc"
)

// The line-of-sight method (Seljak & Zaldarriaga 1996, published the year
// after this paper) replaces the brute-force hierarchy read-off by an
// integral of sources against spherical Bessel kernels. Deriving the
// projection directly from the real moment hierarchy used by this code
// (writing the Thomson source as S0 + S1 mu + S2 P2(mu) and expanding the
// free-streaming plane wave) gives, with y = k(tau0 - tau):
//
//	Theta_l(tau0) = Integral dtau {
//	    [g (Theta0 + psi) + e^-kappa (phi' + psi')] j_l(y)
//	  +  g v_b                                      j_l'(y)
//	  +  g Pi/8 * (3 j_l''(y) + j_l(y))             }
//
// where Pi = F_gamma2 + G_gamma0 + G_gamma2 (F-units, = 4 Pi_Theta) and
// v_b = theta_b/k. It needs only a short hierarchy, so it serves both as an
// independent cross-check of the brute-force method and as the cheap engine
// for the shape tests.
//
// Two code paths share the source assembly below. ThetaLOS/ClLOS evaluate
// the kernels exactly (recurrences at every quadrature point) and are the
// reference implementation; the fast engine in fastlos.go consumes the
// shared specfunc.BesselTable instead and, combined with Sweep.RefineK,
// reproduces the reference C_l to < 1e-3 at a fraction of the cost.

// The conformal-time windows and spacings shared by the LOS quadrature
// grid and RefineK's source-representation grid: the visibility peak is
// sampled densely over [tauRec - losVisBefore, tauRec + losVisAfter], the
// opaque pre-recombination era and the free-streaming/ISW era coarsely.
const (
	losVisBefore = 120.0
	losVisAfter  = 180.0
	losDtPre     = 10.0
	losDtVis     = 1.0
	losDtFree    = 12.0
	// losOscSamples is the quadrature density per Bessel oscillation
	// 2 pi / k. Convergence of Theta_l against a doubled density puts the
	// 16-point error at ~5e-5 of the peak multipole (24 points: ~2.5e-5)
	// — far inside the 1e-3 engine budget, and the free-streaming grid of
	// the largest wavenumbers is a third shorter than at 24.
	losOscSamples = 16.0
)

// losSeg appends an evenly spaced segment covering [lo, hi) with spacing
// at most dt.
func losSeg(grid []float64, lo, hi, dt float64) []float64 {
	if hi <= lo {
		return grid
	}
	n := int((hi-lo)/dt) + 1
	for i := 0; i < n; i++ {
		grid = append(grid, lo+(hi-lo)*float64(i)/float64(n))
	}
	return grid
}

// losSegW is losSeg with composite-Simpson quadrature weights: the segment
// [lo, hi] gets an even number of uniform intervals, weights h/3 {1, 4, 2,
// ..., 4, 1} are accumulated onto w (adding, so a shared endpoint between
// segments receives both closing and opening contributions), and the
// closing weight of the last interval is returned as carry for the next
// appended point.
func losSegW(grid, w []float64, lo, hi, dt, carry float64) ([]float64, []float64, float64) {
	if hi <= lo {
		return grid, w, carry
	}
	n := int((hi-lo)/dt) + 1
	n += n % 2 // Simpson needs an even interval count
	h := (hi - lo) / float64(n)
	third := h / 3.0
	for i := 0; i < n; i++ {
		grid = append(grid, lo+(hi-lo)*float64(i)/float64(n))
		wi := carry
		carry = 0
		switch {
		case i == 0:
			wi += third
		case i%2 == 1:
			wi += 4.0 * third
		default:
			wi += 2.0 * third
		}
		w = append(w, wi)
	}
	return grid, w, third
}

// losGrid appends the integration grid in conformal time to dst and its
// quadrature weights to wdst: dense through the (narrow) visibility peak,
// elsewhere fine enough to resolve both the Bessel oscillation 2 pi/k and
// the integrated Sachs-Wolfe evolution. Weights are composite Simpson
// within each uniform segment — fourth-order, so the visibility window
// affords a coarser stride than the trapezoid rule needed at equal
// accuracy, and every consumer (reference and fast projection alike)
// inherits the same quadrature.
func losGrid(dst, wdst []float64, tauStart, tauRec, tau0, k float64) ([]float64, []float64) {
	// Spacing that resolves j_l(k(tau0-tau)) comfortably.
	hOsc := 2.0 * math.Pi / k / losOscSamples
	grid, w := dst[:0], wdst[:0]
	carry := 0.0
	t1 := math.Max(tauStart, tauRec-losVisBefore)
	t2 := math.Min(tauRec+losVisAfter, tau0)
	grid, w, carry = losSegW(grid, w, tauStart, t1, math.Min(losDtPre, hOsc), carry) // pre-recombination
	grid, w, carry = losSegW(grid, w, t1, t2, math.Min(losDtVis, hOsc), carry)       // visibility peak
	grid, w, carry = losSegW(grid, w, t2, tau0, math.Min(losDtFree, hOsc), carry)    // free streaming + ISW
	grid = append(grid, tau0)
	w = append(w, carry)
	return grid, w
}

// sampleSeries linearly interpolates the recorded source samples. Lookups
// carry a monotone cursor: the LOS resampling sweeps tau strictly forward,
// so the bracket for each query is almost always the cached one or its
// right neighbour, and the per-sample binary search of the original
// implementation disappears from the hot loop (non-monotone queries still
// fall back to bisection).
type sampleSeries struct {
	tau    []float64
	src    []core.Sample
	cursor int
}

// init readies the series over src, reusing tauBuf for the abscissae.
func (ss *sampleSeries) init(src []core.Sample, tauBuf []float64) {
	tau := tauBuf[:0]
	for i := range src {
		tau = append(tau, src[i].Tau)
	}
	ss.tau = tau
	ss.src = src
	ss.cursor = 0
}

// losPoint is the subset of sample fields the line-of-sight integrand
// consumes, resampled onto one quadrature point.
type losPoint struct {
	theta0, psi, phiDot, vb, pi, kdot, eKap float64
}

// atLOS interpolates only the LOS fields at tau into p — no full Sample
// copy in the per-point loop. The opacity suppression is exponentiated
// from the interpolated optical depth (exact for locally linear kappa;
// interpolating e^-kappa itself would sag badly across the steep
// recombination onset where kappa falls by e-folds between samples).
func (ss *sampleSeries) atLOS(tau float64, p *losPoint) {
	n := len(ss.tau)
	lo := 0
	f := 0.0
	switch {
	case tau <= ss.tau[0]:
	case tau >= ss.tau[n-1]:
		lo = n - 2
		f = 1.0
	default:
		lo = ss.locate(tau)
		f = (tau - ss.tau[lo]) / (ss.tau[lo+1] - ss.tau[lo])
	}
	a, b := &ss.src[lo], &ss.src[lo+1]
	g := 1.0 - f
	p.theta0 = g*a.Theta0 + f*b.Theta0
	p.psi = g*a.Psi + f*b.Psi
	p.phiDot = g*a.PhiDot + f*b.PhiDot
	p.vb = g*a.VB + f*b.VB
	p.pi = g*a.Pi + f*b.Pi
	p.kdot = g*a.Kdot + f*b.Kdot
	// Deep in the opaque era e^-kappa underflows every source threshold;
	// skip the exponential outright (kappa < 60 everywhere it matters).
	if kap := g*a.Kappa + f*b.Kappa; kap > 60 {
		p.eKap = 0
	} else {
		p.eKap = math.Exp(-kap)
	}
}

func newSampleSeries(src []core.Sample) *sampleSeries {
	ss := &sampleSeries{}
	ss.init(src, nil)
	return ss
}

// locate returns i such that tau[i] <= tau < tau[i+1] (rightmost bracket,
// matching the original bisection), starting from the cursor.
func (ss *sampleSeries) locate(tau float64) int {
	n := len(ss.tau)
	i := ss.cursor
	if i > n-2 {
		i = n - 2
	}
	if tau >= ss.tau[i] {
		// Walk forward; monotone callers advance O(1) per query.
		for i < n-2 && tau >= ss.tau[i+1] {
			i++
		}
	} else {
		// Cursor overshot: bisect [0, i].
		lo, hi := 0, i
		for hi-lo > 1 {
			mid := (lo + hi) / 2
			if ss.tau[mid] <= tau {
				lo = mid
			} else {
				hi = mid
			}
		}
		i = lo
	}
	ss.cursor = i
	return i
}

func (ss *sampleSeries) at(tau float64) core.Sample {
	var out core.Sample
	ss.atInto(tau, &out)
	return out
}

// atInto is at without the struct-copy return: callers resampling many
// points pass one scratch Sample.
func (ss *sampleSeries) atInto(tau float64, out *core.Sample) {
	n := len(ss.tau)
	if tau <= ss.tau[0] {
		*out = ss.src[0]
		return
	}
	if tau >= ss.tau[n-1] {
		*out = ss.src[n-1]
		return
	}
	lo := ss.locate(tau)
	hi := lo + 1
	f := (tau - ss.tau[lo]) / (ss.tau[hi] - ss.tau[lo])
	a, b := &ss.src[lo], &ss.src[hi]
	mix := func(x, y float64) float64 { return x*(1-f) + y*f }
	*out = core.Sample{
		Tau:    tau,
		A:      mix(a.A, b.A),
		Theta0: mix(a.Theta0, b.Theta0),
		Psi:    mix(a.Psi, b.Psi),
		Phi:    mix(a.Phi, b.Phi),
		PhiDot: mix(a.PhiDot, b.PhiDot),
		VB:     mix(a.VB, b.VB),
		Pi:     mix(a.Pi, b.Pi),
		Kdot:   mix(a.Kdot, b.Kdot),
		Kappa:  mix(a.Kappa, b.Kappa),
	}
}

// losScratch carries every buffer the LOS engine needs for one mode, so
// sweeps over hundreds of modes reuse a single allocation set instead of
// re-making per call (the benchmarks report allocs/op to keep it that way).
type losScratch struct {
	ss               sampleSeries
	tauBuf           []float64
	grid             []float64
	srcA, srcB, srcC []float64
	psiT, eKap, dPsi []float64
	w                []float64
	jl               []float64
	theta            []float64
	// Fast-projection state: the Bessel arguments, the trapezoid-folded
	// sources and the shared interpolation stencil.
	ys, wA, wB, wC []float64
	stencil        specfunc.BesselStencil
	// Active ranges for the fast projection (the exact reference path
	// always integrates the full grid): iFirst is the first index where
	// any source is non-negligible (before it e^-kappa underflows), and
	// iVisEnd ends the visibility-coupled region — beyond it the dipole
	// and quadrupole sources vanish and only the ISW monopole term
	// survives.
	iFirst, iVisEnd int
}

func grow(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// losAssemble validates a mode, builds its integration grid and fills the
// three source arrays (monopole, dipole, quadrupole) plus the trapezoid
// weights into the scratch. The returned slices alias the scratch.
func losAssemble(r *core.Result, tau0, tauRec float64, sc *losScratch) error {
	if r.Gauge != core.ConformalNewtonian {
		return fmt.Errorf("spectra: line of sight requires the conformal Newtonian gauge, got %v", r.Gauge)
	}
	if len(r.Sources) < 10 {
		return fmt.Errorf("spectra: mode k=%g has no recorded sources (set KeepSources)", r.K)
	}
	k := r.K
	sc.ss.init(r.Sources, sc.tauBuf)
	sc.tauBuf = sc.ss.tau
	sc.grid, sc.w = losGrid(sc.grid, sc.w, r.Sources[0].Tau, tauRec, tau0, k)
	grid := sc.grid

	n := len(grid)
	sc.srcA = grow(sc.srcA, n) // monopole kernel j_l
	sc.srcB = grow(sc.srcB, n) // dipole kernel j_l'
	sc.srcC = grow(sc.srcC, n) // quadrupole kernel (3 j_l'' + j_l)/2
	sc.psiT = grow(sc.psiT, n)
	sc.eKap = grow(sc.eKap, n)
	var p losPoint
	for i, tau := range grid {
		sc.ss.atLOS(tau, &p)
		g := p.kdot * p.eKap
		sc.eKap[i] = p.eKap
		sc.psiT[i] = p.psi
		sc.srcA[i] = g*(p.theta0+p.psi) + p.eKap*p.phiDot
		sc.srcB[i] = g * p.vb
		sc.srcC[i] = g * p.pi / 4.0 // Pi in Theta units; kernel carries the 1/2
	}
	// psi-dot from the resampled series completes the ISW term.
	sc.dPsi = grow(sc.dPsi, n)
	derivInto(grid, sc.psiT, sc.dPsi)
	for i := range grid {
		sc.srcA[i] += sc.eKap[i] * sc.dPsi[i]
	}
	// Quadrature weights were built alongside the grid (Simpson within
	// each uniform segment, see losGrid).

	// Active ranges (see the losScratch comment). Thresholds are relative,
	// 1e-12 of the per-source peak, so dropped terms are far below the
	// 1e-3 C_l budget.
	var maxA, maxBC float64
	for i := range grid {
		if a := math.Abs(sc.srcA[i]); a > maxA {
			maxA = a
		}
		if v := math.Abs(sc.srcB[i]); v > maxBC {
			maxBC = v
		}
		if v := math.Abs(sc.srcC[i]); v > maxBC {
			maxBC = v
		}
	}
	thrA, thrBC := 1e-12*maxA, 1e-12*maxBC
	sc.iFirst = 0
	for sc.iFirst < n-1 &&
		math.Abs(sc.srcA[sc.iFirst]) <= thrA &&
		math.Abs(sc.srcB[sc.iFirst]) <= thrBC &&
		math.Abs(sc.srcC[sc.iFirst]) <= thrBC {
		sc.iFirst++
	}
	sc.iVisEnd = n
	for sc.iVisEnd > sc.iFirst &&
		math.Abs(sc.srcB[sc.iVisEnd-1]) <= thrBC &&
		math.Abs(sc.srcC[sc.iVisEnd-1]) <= thrBC {
		sc.iVisEnd--
	}
	return nil
}

// thetaLOSInto is the exact-kernel reference projection: Theta_l for
// l = 0..lmax from the assembled sources, with the spherical Bessel
// recurrences evaluated at every quadrature point.
func thetaLOSInto(r *core.Result, lmax int, tau0, tauRec float64, sc *losScratch) ([]float64, error) {
	if err := losAssemble(r, tau0, tauRec, sc); err != nil {
		return nil, err
	}
	k := r.K
	grid, srcA, srcB, srcC := sc.grid, sc.srcA, sc.srcB, sc.srcC

	sc.theta = grow(sc.theta, lmax+1)
	theta := sc.theta
	for l := range theta {
		theta[l] = 0
	}
	sc.jl = grow(sc.jl, lmax+2)
	jl := sc.jl
	for i, tau := range grid {
		y := k * (tau0 - tau)
		if y < 0 {
			y = 0
		}
		jl = specfunc.SphericalBesselJArray(lmax+1, y, jl)
		w := sc.w[i]
		for l := 0; l <= lmax; l++ {
			j := jl[l]
			// j_l'(y) = j_{l-1}(y) - (l+1)/y j_l(y); at y=0 only l=1 has
			// a non-zero derivative (1/3).
			var jp, jpp float64
			if y > 1e-8 {
				var jm float64
				if l > 0 {
					jm = jl[l-1]
				} else {
					jm = -jl[1] // j_{-1}' relation: j_0'(y) = -j_1(y)
				}
				if l == 0 {
					jp = -jl[1]
				} else {
					jp = jm - float64(l+1)/y*j
				}
				jpp = (float64(l*(l+1))/(y*y)-1.0)*j - 2.0/y*jp
			} else {
				if l == 1 {
					jp = 1.0 / 3.0
				}
				if l == 0 {
					jpp = -1.0 / 3.0
				}
				if l == 2 {
					jpp = 2.0 / 15.0
				}
			}
			q := 0.5 * (3.0*jpp + j)
			theta[l] += w * (srcA[i]*j + srcB[i]*jp + srcC[i]*q)
		}
	}
	return theta, nil
}

// ThetaLOS computes Theta_l(k) for l = 0..lmax by the line-of-sight
// integral from the recorded sources of one mode (conformal Newtonian
// gauge required). This is the exact reference path; the table-driven fast
// path is ThetaLOSFast.
func ThetaLOS(r *core.Result, lmax int, tau0, tauRec float64) ([]float64, error) {
	var sc losScratch
	theta, err := thetaLOSInto(r, lmax, tau0, tauRec, &sc)
	if err != nil {
		return nil, err
	}
	return append([]float64(nil), theta...), nil
}

// derivInto writes the centered finite-difference derivative of y on grid x
// into d (len(d) == len(x)).
func derivInto(x, y, d []float64) {
	n := len(x)
	for i := range x {
		switch i {
		case 0:
			d[i] = (y[1] - y[0]) / (x[1] - x[0])
		case n - 1:
			d[i] = (y[n-1] - y[n-2]) / (x[n-1] - x[n-2])
		default:
			d[i] = (y[i+1] - y[i-1]) / (x[i+1] - x[i-1])
		}
	}
}

// ClLOS computes the angular power spectrum with the line-of-sight method
// from a sweep whose modes kept their sources, using the exact reference
// projection (one scratch set shared across the whole sweep). The fast
// table-driven variant is ClLOSFast.
func (s *Sweep) ClLOS(ls []int, prim Primordial, tcmb, tauRec float64) (*ClSpectrum, error) {
	lmax := 0
	for _, l := range ls {
		if l > lmax {
			lmax = l
		}
	}
	out := &ClSpectrum{L: append([]int(nil), ls...), Cl: make([]float64, len(ls)), TCMB: tcmb}
	var sc losScratch
	for i := range s.KValues {
		k := s.KValues[i]
		theta, err := thetaLOSInto(s.Results[i], lmax, s.Tau0, tauRec, &sc)
		if err != nil {
			return nil, err
		}
		w := trapWeight(s.KValues, i)
		for j, l := range ls {
			out.Cl[j] += 4.0 * math.Pi * w * prim.At(k) * theta[l] * theta[l] / k
		}
	}
	return out, nil
}
