package spectra

import (
	"math"
	"sync"
	"testing"

	"plinger/internal/core"
	"plinger/internal/cosmology"
	"plinger/internal/recomb"
	"plinger/internal/thermo"
)

var (
	mdlOnce sync.Once
	mdl     *core.Model
)

func model(t *testing.T) *core.Model {
	t.Helper()
	mdlOnce.Do(func() {
		bg, err := cosmology.New(cosmology.SCDM())
		if err != nil {
			t.Fatal(err)
		}
		th, err := thermo.New(bg, recomb.Options{})
		if err != nil {
			t.Fatal(err)
		}
		mdl = core.NewModel(bg, th)
	})
	return mdl
}

func TestGrids(t *testing.T) {
	ks := ClGrid(300, 12000, 100)
	if len(ks) != 100 {
		t.Fatalf("grid length %d", len(ks))
	}
	if ks[0] <= 0 || ks[99] <= ks[0] {
		t.Fatal("grid not increasing")
	}
	if ks[99] < 300.0/12000.0 {
		t.Fatalf("kmax %g cannot support l=300", ks[99])
	}
	lg := LogGrid(1e-4, 1, 31)
	ratio := lg[1] / lg[0]
	for i := 1; i < len(lg); i++ {
		if math.Abs(lg[i]/lg[i-1]-ratio) > 1e-9 {
			t.Fatal("log grid not geometric")
		}
	}
}

func TestPerKLMax(t *testing.T) {
	if PerKLMax(1e-4, 12000, 1000) >= PerKLMax(0.05, 12000, 1000) {
		t.Fatal("per-k lmax should grow with k")
	}
	if PerKLMax(1.0, 12000, 300) != 300 {
		t.Fatal("per-k lmax must respect the global cap")
	}
	if PerKLMax(1e-9, 12000, 1000) < 8 {
		t.Fatal("per-k lmax floor")
	}
}

func TestPrimordial(t *testing.T) {
	p := DefaultPrimordial(1.0)
	if p.At(0.001) != p.At(0.1) {
		t.Fatal("n=1 must be scale-invariant")
	}
	p2 := Primordial{N: 0.9, Amp: 2, Pivot: 0.05}
	if p2.At(0.05) != 2 {
		t.Fatalf("amplitude at pivot: %g", p2.At(0.05))
	}
	if p2.At(0.5) >= p2.At(0.05) {
		t.Fatal("red spectrum must fall with k")
	}
}

func TestRunSweepErrors(t *testing.T) {
	if _, err := RunSweep(model(t), core.Params{LMax: 8}, nil, 1, false); err == nil {
		t.Fatal("empty grid accepted")
	}
	if _, err := FromResults([]float64{1, 2}, make([]*core.Result, 1), 100); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := FromResults([]float64{1}, make([]*core.Result, 1), 100); err == nil {
		t.Fatal("nil result accepted")
	}
}

// The decisive cross-check: the line-of-sight integral and the brute-force
// hierarchy read-off are computed by entirely different code paths from the
// same evolution equations — they must agree.
func TestLOSMatchesBruteForce(t *testing.T) {
	m := model(t)
	k := 0.03
	tau0 := m.BG.Tau0()
	// Brute force: hierarchy large enough that truncation reflections
	// cannot pollute the low multipoles (k tau0 ~ 355).
	brute, err := m.Evolve(core.Params{K: k, LMax: 520, Gauge: core.ConformalNewtonian})
	if err != nil {
		t.Fatal(err)
	}
	// Line of sight: short hierarchy, sources recorded.
	los, err := m.Evolve(core.Params{K: k, LMax: 24, Gauge: core.ConformalNewtonian, KeepSources: true})
	if err != nil {
		t.Fatal(err)
	}
	theta, err := ThetaLOS(los, 60, tau0, m.TH.TauRec())
	if err != nil {
		t.Fatal(err)
	}
	// Compare at multipoles where the signal is appreciable.
	var rms float64
	for l := 5; l <= 60; l++ {
		rms += brute.ThetaL[l] * brute.ThetaL[l]
	}
	rms = math.Sqrt(rms / 56.0)
	for _, l := range []int{10, 20, 30, 45, 60} {
		diff := math.Abs(theta[l] - brute.ThetaL[l])
		if diff > 0.1*rms {
			t.Fatalf("l=%d: LOS %g vs brute %g (rms %g)", l, theta[l], brute.ThetaL[l], rms)
		}
	}
}

func TestLOSRequiresSourcesAndGauge(t *testing.T) {
	m := model(t)
	r, err := m.Evolve(core.Params{K: 0.01, LMax: 12, Gauge: core.ConformalNewtonian})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ThetaLOS(r, 20, m.BG.Tau0(), m.TH.TauRec()); err == nil {
		t.Fatal("missing sources accepted")
	}
	r2, err := m.Evolve(core.Params{K: 0.01, LMax: 12, Gauge: core.Synchronous, KeepSources: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ThetaLOS(r2, 20, m.BG.Tau0(), m.TH.TauRec()); err == nil {
		t.Fatal("synchronous gauge accepted")
	}
}

// clSweep computes a reduced-resolution C_l via the line-of-sight engine;
// shared by the shape tests below.
func clSweep(t *testing.T, lmaxCl, nk int) (*Sweep, *ClSpectrum) {
	t.Helper()
	m := model(t)
	ks := ClGrid(lmaxCl, m.BG.Tau0(), nk)
	sw, err := RunSweep(m, core.Params{LMax: 24, Gauge: core.ConformalNewtonian, KeepSources: true}, ks, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	ls := []int{2, 3, 4, 6, 8, 10, 15, 20, 30, 50, 80, 110, 140, 170, 200, 220, 240, 270, 300}
	cl, err := sw.ClLOS(ls, DefaultPrimordial(1.0), m.BG.P.TCMB, m.TH.TauRec())
	if err != nil {
		t.Fatal(err)
	}
	return sw, cl
}

func TestClShapeAndCOBENormalization(t *testing.T) {
	if testing.Short() {
		t.Skip("C_l sweep is expensive")
	}
	_, cl := clSweep(t, 300, 260)

	// All positive.
	for i, v := range cl.Cl {
		if v <= 0 {
			t.Fatalf("C_%d = %g", cl.L[i], v)
		}
	}
	// Sachs-Wolfe plateau: l(l+1)C_l roughly flat from l=4..20 (slow rise
	// allowed: ISW and beam into the peak).
	band := func(l int) float64 {
		for i, ll := range cl.L {
			if ll == l {
				return float64(l*(l+1)) * cl.Cl[i]
			}
		}
		t.Fatalf("l=%d missing", l)
		return 0
	}
	if r := band(20) / band(4); r < 0.6 || r > 2.0 {
		t.Fatalf("SW plateau ratio l=20/l=4: %g", r)
	}
	// First acoustic peak near l ~ 220 for SCDM: the peak region must rise
	// well above the plateau.
	if r := band(220) / band(10); r < 2.0 {
		t.Fatalf("first peak contrast %g, want > 2", r)
	}
	// The peak is near 220, so l=220 should exceed both l=110 and l=300.
	if band(220) <= band(110) || band(220) <= band(300) {
		t.Fatalf("peak not near l=220: %g %g %g", band(110), band(220), band(300))
	}

	// COBE normalization: Q = 18 uK makes the low-l band power ~ 28 uK.
	if _, err := cl.NormalizeCOBE(18.0); err != nil {
		t.Fatal(err)
	}
	got := cl.BandPower(0) // l=2
	want := 2.726e6 * math.Sqrt(6.0/(2.0*math.Pi)*4.0*math.Pi/5.0) * 18.0 / 2.726e6
	_ = want
	// After normalization the quadrupole band power is exactly
	// sqrt(l(l+1)/2pi * 4pi/5) * Q = sqrt(12/5) ... evaluate directly:
	exact := math.Sqrt(6.0/(2.0*math.Pi)*(4.0*math.Pi/5.0)) * 18.0
	if math.Abs(got-exact) > 1e-6*exact {
		t.Fatalf("quadrupole band power %g, want %g", got, exact)
	}
	// Low-l band powers in the COBE ballpark (~25-35 uK).
	for i, l := range cl.L {
		if l >= 4 && l <= 20 {
			bp := cl.BandPower(i)
			if bp < 18 || bp > 45 {
				t.Fatalf("band power at l=%d is %g uK, outside the COBE ballpark", l, bp)
			}
		}
	}
}

func TestBruteForceClAgreesWithLOS(t *testing.T) {
	if testing.Short() {
		t.Skip("brute-force sweep is expensive")
	}
	m := model(t)
	// Low multipoles only: small k grid, moderate hierarchy.
	ks := ClGrid(40, m.BG.Tau0(), 90)
	sw, err := RunSweep(m, core.Params{LMax: 260, Gauge: core.ConformalNewtonian, KeepSources: true}, ks, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	ls := []int{5, 10, 20, 35}
	brute, err := sw.Cl(ls, DefaultPrimordial(1.0), m.BG.P.TCMB)
	if err != nil {
		t.Fatal(err)
	}
	los, err := sw.ClLOS(ls, DefaultPrimordial(1.0), m.BG.P.TCMB, m.TH.TauRec())
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range ls {
		if brute.Cl[i] <= 0 || los.Cl[i] <= 0 {
			t.Fatalf("non-positive C_%d", l)
		}
		r := brute.Cl[i] / los.Cl[i]
		if r < 0.85 || r > 1.18 {
			t.Fatalf("brute/LOS C_%d ratio %g", l, r)
		}
	}
}

func TestMatterTransferAndPower(t *testing.T) {
	m := model(t)
	ks := LogGrid(2e-4, 0.3, 22)
	sw, err := RunSweep(m, core.Params{LMax: 24, Gauge: core.Synchronous}, ks, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	p := m.BG.P
	tf, err := sw.MatterTransfer(p.OmegaC, p.OmegaB)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tf.T[0]-1.0) > 1e-9 {
		t.Fatalf("T(kmin) = %g, want 1", tf.T[0])
	}
	// T(k) decreases towards small scales and is heavily suppressed at
	// k = 0.3 for SCDM.
	for i := 1; i < len(tf.T); i++ {
		if tf.T[i] > tf.T[i-1]*1.02 {
			t.Fatalf("transfer function not monotone at k=%g", tf.K[i])
		}
	}
	last := tf.T[len(tf.T)-1]
	if last > 0.1 || last <= 0 {
		t.Fatalf("T(0.3) = %g, want strong suppression", last)
	}

	pk, err := sw.PowerSpectrum(DefaultPrimordial(1.0), p.OmegaC, p.OmegaB)
	if err != nil {
		t.Fatal(err)
	}
	// P(k) peaks near the equality scale k_eq ~ 0.02/Mpc for SCDM h=0.5.
	best, bestK := 0.0, 0.0
	for i, v := range pk {
		if v > best {
			best, bestK = v, ks[i]
		}
	}
	if bestK < 0.005 || bestK > 0.06 {
		t.Fatalf("P(k) turnover at k=%g, want ~0.02", bestK)
	}

	s8, err := sw.Sigma8(pk, p.H)
	if err != nil {
		t.Fatal(err)
	}
	if s8 <= 0 {
		t.Fatalf("sigma8 = %g", s8)
	}
}

func TestSigma8COBENormalizedSCDM(t *testing.T) {
	if testing.Short() {
		t.Skip("requires both a Cl and a transfer sweep")
	}
	m := model(t)
	p := m.BG.P

	// COBE scale from a low-l Cl computation.
	ks := ClGrid(30, m.BG.Tau0(), 70)
	swCl, err := RunSweep(m, core.Params{LMax: 20, Gauge: core.ConformalNewtonian, KeepSources: true}, ks, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := swCl.ClLOS([]int{2, 4, 8}, DefaultPrimordial(1.0), p.TCMB, m.TH.TauRec())
	if err != nil {
		t.Fatal(err)
	}
	scale, err := cl.NormalizeCOBE(18.0)
	if err != nil {
		t.Fatal(err)
	}

	kst := LogGrid(2e-4, 0.5, 26)
	swT, err := RunSweep(m, core.Params{LMax: 24, Gauge: core.Synchronous}, kst, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	prim := DefaultPrimordial(1.0)
	prim.Amp = scale
	pk, err := swT.PowerSpectrum(prim, p.OmegaC, p.OmegaB)
	if err != nil {
		t.Fatal(err)
	}
	s8, err := swT.Sigma8(pk, p.H)
	if err != nil {
		t.Fatal(err)
	}
	// The famous result: COBE-normalized standard CDM gives sigma8 ~ 1.2
	// (the excess over the observed ~0.6 was a leading argument against
	// SCDM). Accept a generous band around it.
	if s8 < 0.7 || s8 > 1.9 {
		t.Fatalf("sigma8 = %g, want ~1.2 for COBE-normalized SCDM", s8)
	}
}
