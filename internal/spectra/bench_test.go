package spectra

import (
	"sync"
	"testing"

	"plinger/internal/core"
	"plinger/internal/cosmology"
	"plinger/internal/recomb"
	"plinger/internal/thermo"
)

var (
	benchOnce sync.Once
	benchMdl  *core.Model
	benchMode *core.Result
	benchErr  error
)

// benchSetup evolves one sourced mode shared by the projection benchmarks.
func benchSetup(b *testing.B) (*core.Model, *core.Result) {
	b.Helper()
	benchOnce.Do(func() {
		bg, err := cosmology.New(cosmology.SCDM())
		if err != nil {
			benchErr = err
			return
		}
		th, err := thermo.New(bg, recomb.Options{})
		if err != nil {
			benchErr = err
			return
		}
		benchMdl = core.NewModel(bg, th)
		benchMode, benchErr = benchMdl.Evolve(core.Params{
			K: 0.02, LMax: 24, Gauge: core.ConformalNewtonian, KeepSources: true,
		})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchMdl, benchMode
}

var benchLs = []int{2, 3, 4, 5, 6, 7, 9, 11, 13, 16, 20, 25, 31, 38, 47, 58,
	72, 81, 92, 104, 117, 131, 150}

// BenchmarkThetaLOSReference is the exact projection of one mode: Bessel
// recurrences at every (tau, l) quadrature point, all multipoles 0..150.
func BenchmarkThetaLOSReference(b *testing.B) {
	m, r := benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	var sc losScratch
	for i := 0; i < b.N; i++ {
		if _, err := thetaLOSInto(r, 150, m.BG.Tau0(), m.TH.TauRec(), &sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkThetaLOSFast is the table-driven projection of the same mode at
// the multipoles a C_l run actually requests.
func BenchmarkThetaLOSFast(b *testing.B) {
	m, r := benchSetup(b)
	tau0 := m.BG.Tau0()
	tbl := PrewarmBesselTable(benchLs, r.K, tau0)
	out := make([]float64, len(benchLs))
	b.ReportAllocs()
	b.ResetTimer()
	var sc losScratch
	for i := 0; i < b.N; i++ {
		if err := losAssemble(r, tau0, m.TH.TauRec(), &sc); err != nil {
			b.Fatal(err)
		}
		if err := projectThetaTable(r.K, tau0, &sc, benchLs, tbl, out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRefineK measures the coarse-to-fine source interpolation that
// replaces ~5/6 of the ODE evolutions in the fast pipeline.
func BenchmarkRefineK(b *testing.B) {
	m, _ := benchSetup(b)
	fineKs := ClGrid(150, m.BG.Tau0(), 130)
	sw, err := RunSweep(m, core.Params{LMax: 24, Gauge: core.ConformalNewtonian, KeepSources: true},
		RefineCoarseGrid(fineKs, 6), 0, false)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sw.RefineK(130, m.TH.TauRec()); err != nil {
			b.Fatal(err)
		}
	}
}
