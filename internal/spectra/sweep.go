// Package spectra assembles the paper's science outputs from per-k
// evolutions: the CMB anisotropy power spectrum C_l (Figure 2), the matter
// transfer functions and power spectrum, the COBE Q_rms-PS normalization,
// and a CMBFAST-style line-of-sight comparator (the "future work" check on
// the brute-force hierarchy method).
//
// The brute-force method is LINGER's: evolve the full moment hierarchy for
// every k to the present and read Theta_l(k, tau_0) directly off the state,
// with no free-streaming approximation, then quadrature over k. The paper's
// production runs used up to 10000 moments and 5000 wavenumbers; the same
// code paths here run at configurable resolution.
package spectra

import (
	"context"
	"fmt"
	"math"

	"plinger/internal/core"
	"plinger/internal/dispatch"
	"plinger/internal/obs"
)

// Sweep holds the results of evolving a set of k modes.
type Sweep struct {
	KValues []float64
	Results []*core.Result
	// Tau0 is the conformal age used for the sweep.
	Tau0 float64
}

// ClGrid builds the uniform wavenumber grid for a C_l computation up to
// multipole lmaxCl: brute-force read-off needs k up to about
// (lmaxCl + buffer)/tau_0, and spacing fine enough to resolve the
// oscillations of Theta_l(k) (period ~ pi/tau_0).
func ClGrid(lmaxCl int, tau0 float64, nk int) []float64 {
	kmin := 0.3 / tau0
	kmax := (float64(lmaxCl) + 200.0) / tau0
	ks := make([]float64, nk)
	for i := range ks {
		ks[i] = kmin + (kmax-kmin)*float64(i)/float64(nk-1)
	}
	return ks
}

// LogGrid builds a logarithmic k grid (for transfer functions).
func LogGrid(kmin, kmax float64, nk int) []float64 {
	ks := make([]float64, nk)
	for i := range ks {
		f := float64(i) / float64(nk-1)
		ks[i] = kmin * math.Pow(kmax/kmin, f)
	}
	return ks
}

// PerKLMax returns the hierarchy cutoff actually needed for wavenumber k:
// moments beyond ~ k tau_0 receive no power, so small k can run with far
// smaller hierarchies. It forwards to the dispatch subsystem, which applies
// the same adaptation in both execution backends.
func PerKLMax(k, tau0 float64, lmaxGlobal int) int {
	return dispatch.PerKLMax(k, tau0, lmaxGlobal)
}

// RunSweep evolves every k in ks with the given template parameters on the
// shared-memory pool dispatcher (the analogue of the Cray Autotasking
// parallelism of Section 3; message-passing runs go through
// dispatch.MP instead). If adaptLMax is true the hierarchy cutoff is
// reduced per k via PerKLMax. For dispatcher choice and run telemetry use
// RunSweepWith.
func RunSweep(mdl *core.Model, mode core.Params, ks []float64, workers int, adaptLMax bool) (*Sweep, error) {
	sw, _, err := RunSweepWith(&dispatch.Pool{
		Model: mdl, Workers: workers, AdaptLMax: adaptLMax,
	}, ks, mode)
	return sw, err
}

// RunSweepWith evolves the grid on any dispatcher and wraps the results for
// science post-processing, returning the run telemetry alongside.
func RunSweepWith(d dispatch.Dispatcher, ks []float64, mode core.Params) (*Sweep, *dispatch.RunStats, error) {
	return RunSweepTraced(nil, d, ks, mode)
}

// RunSweepTraced is RunSweepWith with a sweep trace attached: the trace rides
// down to the dispatcher through the run context (obs.TraceFrom), so the
// backends record their eval-table and mode-evolution phases as spans. A nil
// trace is the no-op sink and makes this identical to RunSweepWith.
func RunSweepTraced(tr *obs.Trace, d dispatch.Dispatcher, ks []float64, mode core.Params) (*Sweep, *dispatch.RunStats, error) {
	dsw, st, err := d.Run(obs.ContextWithTrace(context.Background(), tr), ks, mode)
	if err != nil {
		return nil, nil, err
	}
	if tr != nil && st != nil {
		// Fold the spans recorded so far (eval_tables, modes, a finished
		// bessel_tables prewarm) into the run telemetry, summed by name in
		// first-seen order.
		snap := tr.Snapshot()
		idx := make(map[string]int, len(snap.Spans))
		for _, sp := range snap.Spans {
			i, ok := idx[sp.Name]
			if !ok {
				i = len(st.Phases)
				idx[sp.Name] = i
				st.Phases = append(st.Phases, dispatch.Phase{Name: sp.Name})
			}
			st.Phases[i].Seconds += sp.DurMS / 1e3
		}
	}
	sw, err := FromResults(dsw.KValues, dsw.Results, dsw.Tau0)
	if err != nil {
		return nil, nil, err
	}
	return sw, st, nil
}

// FromResults builds a Sweep from externally computed results (e.g. a
// PLINGER parallel run).
func FromResults(ks []float64, res []*core.Result, tau0 float64) (*Sweep, error) {
	if len(ks) != len(res) {
		return nil, fmt.Errorf("spectra: %d wavenumbers but %d results", len(ks), len(res))
	}
	for i, r := range res {
		if r == nil {
			return nil, fmt.Errorf("spectra: missing result for k=%g", ks[i])
		}
	}
	return &Sweep{KValues: append([]float64(nil), ks...), Results: res, Tau0: tau0}, nil
}
