// Package spectra assembles the paper's science outputs from per-k
// evolutions: the CMB anisotropy power spectrum C_l (Figure 2), the matter
// transfer functions and power spectrum, the COBE Q_rms-PS normalization,
// and a CMBFAST-style line-of-sight comparator (the "future work" check on
// the brute-force hierarchy method).
//
// The brute-force method is LINGER's: evolve the full moment hierarchy for
// every k to the present and read Theta_l(k, tau_0) directly off the state,
// with no free-streaming approximation, then quadrature over k. The paper's
// production runs used up to 10000 moments and 5000 wavenumbers; the same
// code paths here run at configurable resolution.
package spectra

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"plinger/internal/core"
)

// Sweep holds the results of evolving a set of k modes.
type Sweep struct {
	KValues []float64
	Results []*core.Result
	// Tau0 is the conformal age used for the sweep.
	Tau0 float64
}

// ClGrid builds the uniform wavenumber grid for a C_l computation up to
// multipole lmaxCl: brute-force read-off needs k up to about
// (lmaxCl + buffer)/tau_0, and spacing fine enough to resolve the
// oscillations of Theta_l(k) (period ~ pi/tau_0).
func ClGrid(lmaxCl int, tau0 float64, nk int) []float64 {
	kmin := 0.3 / tau0
	kmax := (float64(lmaxCl) + 200.0) / tau0
	ks := make([]float64, nk)
	for i := range ks {
		ks[i] = kmin + (kmax-kmin)*float64(i)/float64(nk-1)
	}
	return ks
}

// LogGrid builds a logarithmic k grid (for transfer functions).
func LogGrid(kmin, kmax float64, nk int) []float64 {
	ks := make([]float64, nk)
	for i := range ks {
		f := float64(i) / float64(nk-1)
		ks[i] = kmin * math.Pow(kmax/kmin, f)
	}
	return ks
}

// PerKLMax returns the hierarchy cutoff actually needed for wavenumber k:
// moments beyond ~ k tau_0 receive no power, so small k can run with far
// smaller hierarchies. This is why the paper's per-mode messages vary from
// 150 bytes to 80 kbyte and why CPU time grows with k.
func PerKLMax(k, tau0 float64, lmaxGlobal int) int {
	l := int(1.5*k*tau0) + 60
	if l > lmaxGlobal {
		return lmaxGlobal
	}
	if l < 8 {
		l = 8
	}
	return l
}

// RunSweep evolves every k in ks with the given template parameters using a
// shared-memory worker pool (the analogue of the Cray Autotasking
// parallelism of Section 3; the message-passing version lives in package
// plinger). If adaptLMax is true the hierarchy cutoff is reduced per k via
// PerKLMax.
func RunSweep(mdl *core.Model, mode core.Params, ks []float64, workers int, adaptLMax bool) (*Sweep, error) {
	if len(ks) == 0 {
		return nil, fmt.Errorf("spectra: empty wavenumber grid")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sw := &Sweep{
		KValues: append([]float64(nil), ks...),
		Results: make([]*core.Result, len(ks)),
		Tau0:    mdl.BG.Tau0(),
	}
	if mode.TauEnd > 0 {
		sw.Tau0 = mode.TauEnd
	}
	idx := make(chan int)
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				p := mode
				p.K = ks[i]
				if adaptLMax {
					p.LMax = PerKLMax(ks[i], sw.Tau0, mode.LMax)
				}
				r, err := mdl.Evolve(p)
				if err != nil {
					errs <- fmt.Errorf("spectra: k=%g: %w", ks[i], err)
					return
				}
				sw.Results[i] = r
			}
		}()
	}
	for i := range ks {
		select {
		case err := <-errs:
			close(idx)
			wg.Wait()
			return nil, err
		case idx <- i:
		}
	}
	close(idx)
	wg.Wait()
	select {
	case err := <-errs:
		return nil, err
	default:
	}
	return sw, nil
}

// FromResults builds a Sweep from externally computed results (e.g. a
// PLINGER parallel run).
func FromResults(ks []float64, res []*core.Result, tau0 float64) (*Sweep, error) {
	if len(ks) != len(res) {
		return nil, fmt.Errorf("spectra: %d wavenumbers but %d results", len(ks), len(res))
	}
	for i, r := range res {
		if r == nil {
			return nil, fmt.Errorf("spectra: missing result for k=%g", ks[i])
		}
	}
	return &Sweep{KValues: append([]float64(nil), ks...), Results: res, Tau0: tau0}, nil
}
