package spectra

import (
	"math"
	"testing"

	"plinger/internal/core"
)

// The per-k hierarchy adaptation is the reason the paper's per-mode CPU
// times (2 minutes to half an hour) and message lengths (150 bytes to
// 80 kbyte) both grow with k. Ablation: the adaptive sweep must reproduce
// the fixed-lmax C_l while doing substantially less work.
func TestAdaptiveLMaxAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("two brute-force sweeps")
	}
	m := model(t)
	ks := ClGrid(30, m.BG.Tau0(), 60)
	mode := core.Params{LMax: 260, Gauge: core.Synchronous}

	fixed, err := RunSweep(m, mode, ks, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := RunSweep(m, mode, ks, 0, true)
	if err != nil {
		t.Fatal(err)
	}

	ls := []int{5, 10, 20, 30}
	clF, err := fixed.Cl(ls, DefaultPrimordial(1.0), m.BG.P.TCMB)
	if err != nil {
		t.Fatal(err)
	}
	clA, err := adaptive.Cl(ls, DefaultPrimordial(1.0), m.BG.P.TCMB)
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range ls {
		r := clA.Cl[i] / clF.Cl[i]
		if r < 0.97 || r > 1.03 {
			t.Fatalf("adaptive C_%d off by %g", l, r)
		}
	}

	var evalsF, evalsA int
	for i := range ks {
		evalsF += fixed.Results[i].Stats.Evals * (fixed.Results[i].LMax + 1)
		evalsA += adaptive.Results[i].Stats.Evals * (adaptive.Results[i].LMax + 1)
	}
	// At this small demo grid the adaptive cutoff trims ~10% of the work;
	// the fraction grows with LMaxCl as more of the k grid sits far below
	// the global cutoff.
	if float64(evalsA) > 0.95*float64(evalsF) {
		t.Fatalf("adaptive hierarchy saved too little work: %d vs %d", evalsA, evalsF)
	}

	// And the per-mode "message length" (the tag-5 block) grows with k in
	// the adaptive sweep, as the paper reports.
	first := adaptive.Results[0].LMax
	last := adaptive.Results[len(ks)-1].LMax
	if last <= first {
		t.Fatalf("per-mode hierarchy (and message size) should grow with k: %d -> %d", first, last)
	}
	_ = math.Pi
}
