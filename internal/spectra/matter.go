package spectra

import (
	"fmt"
	"math"
)

// TransferFunction is the normalized matter transfer function T(k) with
// T -> 1 as k -> 0, plus the raw per-k density contrasts.
type TransferFunction struct {
	K      []float64
	T      []float64
	DeltaC []float64
	DeltaB []float64
}

// MatterTransfer builds T(k) from a (log-spaced) sweep. The density used is
// the mass-weighted CDM+baryon contrast at the final time; the k->0
// normalization divides out the k^2 growth of the synchronous-gauge
// contrast using the smallest k in the sweep.
func (s *Sweep) MatterTransfer(omegaC, omegaB float64) (*TransferFunction, error) {
	n := len(s.KValues)
	if n < 2 {
		return nil, fmt.Errorf("spectra: transfer needs at least 2 wavenumbers")
	}
	tf := &TransferFunction{
		K:      append([]float64(nil), s.KValues...),
		T:      make([]float64, n),
		DeltaC: make([]float64, n),
		DeltaB: make([]float64, n),
	}
	wc := omegaC / (omegaC + omegaB)
	wb := omegaB / (omegaC + omegaB)
	ref := 0.0
	for i := 0; i < n; i++ {
		r := s.Results[i]
		tf.DeltaC[i] = r.DeltaC
		tf.DeltaB[i] = r.DeltaB
		dm := wc*r.DeltaC + wb*r.DeltaB
		scaled := dm / (s.KValues[i] * s.KValues[i])
		if i == 0 {
			ref = scaled
		}
		tf.T[i] = scaled / ref
	}
	return tf, nil
}

// PowerSpectrum evaluates the linear matter power spectrum
// P(k) = (2 pi^2/k^3) P_C(k) |delta_m(k)|^2 on the sweep grid, in Mpc^3,
// per unit primordial amplitude (use the COBE scale from NormalizeCOBE to
// set Amp).
func (s *Sweep) PowerSpectrum(prim Primordial, omegaC, omegaB float64) ([]float64, error) {
	n := len(s.KValues)
	if n < 2 {
		return nil, fmt.Errorf("spectra: power spectrum needs at least 2 wavenumbers")
	}
	wc := omegaC / (omegaC + omegaB)
	wb := omegaB / (omegaC + omegaB)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		k := s.KValues[i]
		dm := wc*s.Results[i].DeltaC + wb*s.Results[i].DeltaB
		out[i] = 2.0 * math.Pi * math.Pi / (k * k * k) * prim.At(k) * dm * dm
	}
	return out, nil
}

// Sigma8 computes the rms mass fluctuation in spheres of radius 8/h Mpc
// from a power spectrum sampled on the sweep grid:
//
//	sigma_R^2 = Integral dlnk  k^3 P(k)/(2 pi^2) W^2(kR),
//	W(x) = 3 (sin x - x cos x)/x^3.
func (s *Sweep) Sigma8(pk []float64, h float64) (float64, error) {
	if len(pk) != len(s.KValues) {
		return 0, fmt.Errorf("spectra: power spectrum length %d != grid %d", len(pk), len(s.KValues))
	}
	r := 8.0 / h
	var sum float64
	for i, k := range s.KValues {
		x := k * r
		var w float64
		if x < 1e-3 {
			w = 1.0 - x*x/10.0
		} else {
			w = 3.0 * (math.Sin(x) - x*math.Cos(x)) / (x * x * x)
		}
		integrand := k * k * k * pk[i] / (2.0 * math.Pi * math.Pi) * w * w
		sum += trapWeight(s.KValues, i) * integrand / k // dlnk = dk/k
	}
	if sum < 0 {
		return 0, fmt.Errorf("spectra: negative sigma8^2 = %g", sum)
	}
	return math.Sqrt(sum), nil
}
