package sky

import (
	"bytes"
	"math"
	"testing"

	"plinger/internal/core"
)

// flatSpectrum returns a Sachs-Wolfe-like l(l+1)C_l = const spectrum.
func flatSpectrum(lmax int, amp float64) *Spectrum {
	var ls []int
	var cl []float64
	for l := 2; l <= lmax; l += 1 {
		ls = append(ls, l)
		cl = append(cl, amp/float64(l*(l+1)))
	}
	return &Spectrum{L: ls, Cl: cl, TCMB: 2.726}
}

func TestFullSkyVarianceMatchesTheory(t *testing.T) {
	spec := flatSpectrum(40, 1e-10)
	want, err := TheoryRMS(spec, 2, 40)
	if err != nil {
		t.Fatal(err)
	}
	// Average over several realizations: the sample rms fluctuates by
	// ~1/sqrt(Nalm) per map.
	var got float64
	const nreal = 6
	for s := int64(0); s < nreal; s++ {
		m, err := FullSky(spec, 40, 64, 1000+s)
		if err != nil {
			t.Fatal(err)
		}
		_, _, rms := m.Stats()
		got += rms * rms
	}
	got = math.Sqrt(got / nreal)
	// Note: equirectangular rows oversample the poles, so the pixel rms is
	// not exactly the sky rms; accept 25%.
	if math.Abs(got-want) > 0.25*want {
		t.Fatalf("map rms %g uK vs theory %g uK", got, want)
	}
}

func TestFullSkyDeterministicSeed(t *testing.T) {
	spec := flatSpectrum(20, 1e-10)
	a, err := FullSky(spec, 20, 32, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FullSky(spec, 20, 32, 7)
	if err != nil {
		t.Fatal(err)
	}
	for j := range a.Pix {
		for i := range a.Pix[j] {
			if a.Pix[j][i] != b.Pix[j][i] {
				t.Fatal("same seed must give the same map")
			}
		}
	}
	c, err := FullSky(spec, 20, 32, 8)
	if err != nil {
		t.Fatal(err)
	}
	if c.Pix[5][5] == a.Pix[5][5] {
		t.Fatal("different seeds should differ")
	}
}

func TestFlatPatchVariance(t *testing.T) {
	// For l(l+1)C_l = A flat, the variance integral
	// integral dl^2 C_l/(2pi)^2 between the patch's lmin and lmax is
	// A/(2 pi) ln(lmax/lmin) approximately; just verify the rms is within
	// a factor ~2 of TheoryRMS over the patch's multipole window.
	spec := flatSpectrum(3000, 1e-10)
	n := 128
	sizeDeg := 32.0
	var rms2 float64
	const nreal = 4
	for s := int64(0); s < nreal; s++ {
		m, err := FlatPatch(spec, n, sizeDeg, 99+s)
		if err != nil {
			t.Fatal(err)
		}
		_, _, rms := m.Stats()
		rms2 += rms * rms
	}
	got := math.Sqrt(rms2 / nreal)
	lmin := int(360.0 / sizeDeg)
	lmax := int(360.0 / sizeDeg * float64(n) / 2)
	if lmax > 3000 {
		lmax = 3000
	}
	want, err := TheoryRMS(spec, lmin, lmax)
	if err != nil {
		t.Fatal(err)
	}
	if got < 0.5*want || got > 2.0*want {
		t.Fatalf("patch rms %g uK vs theory %g uK [l in %d..%d]", got, want, lmin, lmax)
	}
}

func TestFlatPatchRejectsBadSize(t *testing.T) {
	spec := flatSpectrum(100, 1e-10)
	if _, err := FlatPatch(spec, 100, 10, 1); err == nil {
		t.Fatal("non-power-of-two accepted")
	}
	if _, err := FullSky(spec, 1, 16, 1); err == nil {
		t.Fatal("lmax<2 accepted")
	}
	if _, err := FullSky(&Spectrum{L: []int{2}, Cl: []float64{1}}, 10, 16, 1); err == nil {
		t.Fatal("single-point spectrum accepted")
	}
}

func TestWritePGM(t *testing.T) {
	spec := flatSpectrum(20, 1e-10)
	m, err := FullSky(spec, 20, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WritePGM(&buf, 0); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if !bytes.HasPrefix(b, []byte("P5\n32 16\n255\n")) {
		t.Fatalf("bad PGM header: %q", b[:16])
	}
	if len(b) != len("P5\n32 16\n255\n")+32*16 {
		t.Fatalf("PGM size %d", len(b))
	}
}

func fakeSources(psi0 func(tau float64) float64) []core.Sample {
	var out []core.Sample
	for tau := 1.0; tau < 300; tau += 2 {
		out = append(out, core.Sample{Tau: tau, Psi: psi0(tau)})
	}
	return out
}

func TestPsiFieldEvolves(t *testing.T) {
	// Two k modes whose psi decays at different rates; frames at later
	// times must have smaller amplitude.
	ks := []float64{0.05, 1.0}
	mk := func(rate float64) *core.Result {
		return &core.Result{
			Gauge:   core.ConformalNewtonian,
			Sources: fakeSources(func(tau float64) float64 { return math.Exp(-tau * rate) }),
		}
	}
	res := []*core.Result{mk(0.005), mk(0.01)}
	pf, err := NewPsiField(ks, res, 32, 100.0, 1.0, 42)
	if err != nil {
		t.Fatal(err)
	}
	early, err := pf.Frame(10)
	if err != nil {
		t.Fatal(err)
	}
	late, err := pf.Frame(250)
	if err != nil {
		t.Fatal(err)
	}
	_, _, rmsE := early.Stats()
	_, _, rmsL := late.Stats()
	if rmsL >= rmsE {
		t.Fatalf("decaying potential should shrink: rms %g -> %g", rmsE, rmsL)
	}
	// Same phases: the maps must be strongly correlated.
	var dot, na, nb float64
	for j := range early.Pix {
		for i := range early.Pix[j] {
			dot += early.Pix[j][i] * late.Pix[j][i]
			na += early.Pix[j][i] * early.Pix[j][i]
			nb += late.Pix[j][i] * late.Pix[j][i]
		}
	}
	corr := dot / math.Sqrt(na*nb)
	if corr < 0.9 {
		t.Fatalf("frames decorrelated: r=%g", corr)
	}
}

func TestPsiFieldValidation(t *testing.T) {
	good := &core.Result{Gauge: core.ConformalNewtonian,
		Sources: fakeSources(func(float64) float64 { return 1 })}
	badGauge := &core.Result{Gauge: core.Synchronous,
		Sources: fakeSources(func(float64) float64 { return 1 })}
	if _, err := NewPsiField([]float64{0.1, 0.2}, []*core.Result{good, badGauge}, 16, 100, 1, 1); err == nil {
		t.Fatal("synchronous sources accepted")
	}
	if _, err := NewPsiField([]float64{0.1}, []*core.Result{good}, 16, 100, 1, 1); err == nil {
		t.Fatal("single k accepted")
	}
	if _, err := NewPsiField([]float64{0.1, 0.2}, []*core.Result{good, good}, 17, 100, 1, 1); err == nil {
		t.Fatal("non-power-of-two grid accepted")
	}
}
