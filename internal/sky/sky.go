// Package sky synthesizes CMB temperature maps from angular power spectra —
// the paper's Figure 3 ("a simulated sky map, analogous to the COBE sky
// map ... the angular resolution is one-half degree ... maximum temperature
// differences are +/- 200 micro-K") — and the conformal-Newtonian potential
// movie (psi on a comoving 100 Mpc square through recombination).
//
// Two synthesis paths are provided: an exact low-l full-sky spherical
// harmonic synthesis (COBE-like, ten-degree scales) and a flat-sky FFT
// patch for the half-degree map.
package sky

import (
	"fmt"
	"math"
	"math/rand"

	"plinger/internal/fourier"
	"plinger/internal/specfunc"
	"plinger/internal/spline"
)

// Spectrum is the minimal view of an angular power spectrum needed for
// synthesis: C_l in (Delta T/T)^2 units at integer multipoles, plus the
// temperature scale.
type Spectrum struct {
	L    []int
	Cl   []float64
	TCMB float64
}

// interpolator returns a function C(l) valid between the sampled
// multipoles, interpolating l(l+1)C_l linearly in ln l (the natural
// variable for CMB spectra).
func (s *Spectrum) interpolator() (func(l float64) float64, error) {
	if len(s.L) < 2 {
		return nil, fmt.Errorf("sky: need at least two multipoles")
	}
	x := make([]float64, len(s.L))
	y := make([]float64, len(s.L))
	for i, l := range s.L {
		if l < 1 {
			return nil, fmt.Errorf("sky: multipole %d < 1", l)
		}
		x[i] = math.Log(float64(l))
		y[i] = float64(l*(l+1)) * s.Cl[i]
	}
	sp, err := spline.New(x, y)
	if err != nil {
		return nil, err
	}
	lmin, lmax := float64(s.L[0]), float64(s.L[len(s.L)-1])
	return func(l float64) float64 {
		if l > lmax {
			// No power is invented beyond the computed spectrum: maps are
			// band-limited by the resolution of the C_l run.
			return 0
		}
		if l < lmin {
			l = lmin
		}
		v := sp.Eval(math.Log(l)) / (l * (l + 1.0))
		if v < 0 {
			return 0
		}
		return v
	}, nil
}

// Map is a synthesized temperature map in microkelvin.
type Map struct {
	// Pix holds rows of pixels (row-major).
	Pix  [][]float64
	NX   int
	NY   int
	Desc string
}

// Stats returns the minimum, maximum and rms of the map.
func (m *Map) Stats() (min, max, rms float64) {
	min, max = math.Inf(1), math.Inf(-1)
	var sum, sum2 float64
	n := 0
	for _, row := range m.Pix {
		for _, v := range row {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
			sum += v
			sum2 += v * v
			n++
		}
	}
	mean := sum / float64(n)
	rms = math.Sqrt(sum2/float64(n) - mean*mean)
	return min, max, rms
}

// FullSky synthesizes an equirectangular full-sky map (nx = 2*ny grid) from
// the spectrum up to lmax, with a Gaussian realization seeded by seed.
// Suitable for COBE-like resolutions (lmax of order tens).
func FullSky(spec *Spectrum, lmax, ny int, seed int64) (*Map, error) {
	cOf, err := spec.interpolator()
	if err != nil {
		return nil, err
	}
	if lmax < 2 {
		return nil, fmt.Errorf("sky: lmax = %d < 2", lmax)
	}
	rng := rand.New(rand.NewSource(seed))
	// Draw a_lm: index [l][m], m >= 0. Real and imaginary parts are
	// independent N(0, C_l/2) for m > 0; a_l0 is real N(0, C_l).
	re := make([][]float64, lmax+1)
	im := make([][]float64, lmax+1)
	for l := 2; l <= lmax; l++ {
		cl := cOf(float64(l))
		re[l] = make([]float64, l+1)
		im[l] = make([]float64, l+1)
		re[l][0] = rng.NormFloat64() * math.Sqrt(cl)
		for m := 1; m <= l; m++ {
			re[l][m] = rng.NormFloat64() * math.Sqrt(cl/2)
			im[l][m] = rng.NormFloat64() * math.Sqrt(cl/2)
		}
	}
	nx := 2 * ny
	mp := &Map{NX: nx, NY: ny, Pix: make([][]float64, ny),
		Desc: fmt.Sprintf("full sky, lmax=%d", lmax)}
	t0uK := spec.TCMB * 1e6
	plm := make([]float64, lmax+1)
	for j := 0; j < ny; j++ {
		theta := math.Pi * (float64(j) + 0.5) / float64(ny)
		x := math.Cos(theta)
		row := make([]float64, nx)
		// Accumulate per-m Fourier coefficients along the ring.
		cosAmp := make([]float64, lmax+1)
		sinAmp := make([]float64, lmax+1)
		for m := 0; m <= lmax; m++ {
			plm = specfunc.AssociatedLegendreCol(lmax, m, x, plm)
			var cr, ci float64
			for l := 2; l <= lmax; l++ {
				if m > l {
					continue
				}
				cr += re[l][m] * plm[l]
				ci += im[l][m] * plm[l]
			}
			if m == 0 {
				cosAmp[0] = cr
				sinAmp[0] = 0
			} else {
				// a_lm Y_lm + a_l,-m Y_l,-m = 2[Re a_lm cos m phi
				//                              - Im a_lm sin m phi] N P_lm
				cosAmp[m] = 2 * cr
				sinAmp[m] = -2 * ci
			}
		}
		for i := 0; i < nx; i++ {
			phi := 2 * math.Pi * float64(i) / float64(nx)
			var v float64
			for m := 0; m <= lmax; m++ {
				if cosAmp[m] == 0 && sinAmp[m] == 0 {
					continue
				}
				v += cosAmp[m]*math.Cos(float64(m)*phi) + sinAmp[m]*math.Sin(float64(m)*phi)
			}
			row[i] = v * t0uK
		}
		mp.Pix[j] = row
	}
	return mp, nil
}

// FlatPatch synthesizes a square flat-sky patch of side sizeDeg degrees
// with n x n pixels (n a power of two) — the half-degree resolution map of
// Figure 3 uses sizeDeg/n ~ 0.5 degrees or finer.
func FlatPatch(spec *Spectrum, n int, sizeDeg float64, seed int64) (*Map, error) {
	if !fourier.IsPowerOfTwo(n) {
		return nil, fmt.Errorf("sky: patch size %d is not a power of two", n)
	}
	cOf, err := spec.interpolator()
	if err != nil {
		return nil, err
	}
	lrad := sizeDeg * math.Pi / 180.0
	rng := rand.New(rand.NewSource(seed))
	grid := make([]complex128, n*n)
	// Fill Fourier modes with Hermitian symmetry so the field is real:
	// generate all modes independently, then symmetrize by construction:
	// a(-k) = conj(a(k)). Simplest robust approach: synthesize a complex
	// field and keep the real part, doubling the variance draw.
	for jy := 0; jy < n; jy++ {
		for jx := 0; jx < n; jx++ {
			// Signed mode numbers.
			mx, my := jx, jy
			if mx > n/2 {
				mx -= n
			}
			if my > n/2 {
				my -= n
			}
			if mx == 0 && my == 0 {
				continue // mean removed
			}
			ell := 2 * math.Pi * math.Sqrt(float64(mx*mx+my*my)) / lrad
			cl := cOf(ell)
			sigma := math.Sqrt(cl) / lrad
			grid[jy*n+jx] = complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
		}
	}
	if err := fourier.FFT2D(grid, n); err != nil {
		return nil, err
	}
	mp := &Map{NX: n, NY: n, Pix: make([][]float64, n),
		Desc: fmt.Sprintf("flat patch %gx%g deg, %d px", sizeDeg, sizeDeg, n)}
	t0uK := spec.TCMB * 1e6
	// Real part of a complex Gaussian field with doubled variance is the
	// target real field (divide by sqrt(2)).
	norm := t0uK / math.Sqrt2
	for j := 0; j < n; j++ {
		row := make([]float64, n)
		for i := 0; i < n; i++ {
			row[i] = real(grid[j*n+i]) * norm
		}
		mp.Pix[j] = row
	}
	return mp, nil
}

// TheoryRMS returns the expected map rms in microkelvin implied by the
// spectrum between lmin and lmax: sigma^2 = sum (2l+1) C_l / 4pi.
func TheoryRMS(spec *Spectrum, lmin, lmax int) (float64, error) {
	cOf, err := spec.interpolator()
	if err != nil {
		return 0, err
	}
	var sum float64
	for l := lmin; l <= lmax; l++ {
		sum += (2.0*float64(l) + 1.0) * cOf(float64(l)) / (4.0 * math.Pi)
	}
	return spec.TCMB * 1e6 * math.Sqrt(sum), nil
}
