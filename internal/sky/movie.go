package sky

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"plinger/internal/core"
	"plinger/internal/fourier"
)

// PsiField realizes the conformal-Newtonian potential psi(x, tau) on a
// two-dimensional comoving slice, reproducing the paper's MPEG movie: "the
// square is a comoving 100 Mpc across ... the movie ends shortly after
// recombination, at conformal time 250 Mpc ... The potential oscillates at
// early times due to the acoustic oscillations of the photon-baryon fluid."
//
// The field is built from the evolved transfer functions psi(k, tau) of a
// set of k modes (interpolated in ln k) with frozen random phases, so
// successive frames show the same realization evolving in time.
type PsiField struct {
	n    int
	box  float64 // comoving side length in Mpc
	kLn  []float64
	srcs []*kSeries
	amp  []float64 // sqrt of primordial power per mode
	phRe []float64 // frozen Gaussian amplitudes (real part)
	phIm []float64
	spec float64 // spectral index
}

type kSeries struct {
	tau []float64
	psi []float64
}

func newKSeries(samples []core.Sample) *kSeries {
	ks := &kSeries{}
	for _, s := range samples {
		ks.tau = append(ks.tau, s.Tau)
		ks.psi = append(ks.psi, s.Psi)
	}
	return ks
}

func (ks *kSeries) at(tau float64) float64 {
	n := len(ks.tau)
	if tau <= ks.tau[0] {
		return ks.psi[0]
	}
	if tau >= ks.tau[n-1] {
		return ks.psi[n-1]
	}
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if ks.tau[mid] <= tau {
			lo = mid
		} else {
			hi = mid
		}
	}
	f := (tau - ks.tau[lo]) / (ks.tau[hi] - ks.tau[lo])
	return ks.psi[lo]*(1-f) + ks.psi[hi]*f
}

// NewPsiField prepares a realization. The results must come from conformal
// Newtonian gauge evolutions with KeepSources, covering the k range of the
// box (2 pi/box up to pi*n/box); n must be a power of two.
func NewPsiField(ks []float64, res []*core.Result, n int, boxMpc, spectralIndex float64, seed int64) (*PsiField, error) {
	if !fourier.IsPowerOfTwo(n) {
		return nil, fmt.Errorf("sky: grid %d is not a power of two", n)
	}
	if len(ks) != len(res) || len(ks) < 2 {
		return nil, fmt.Errorf("sky: need matching k values and results")
	}
	pf := &PsiField{n: n, box: boxMpc, spec: spectralIndex}
	for i := range ks {
		if res[i].Gauge != core.ConformalNewtonian {
			return nil, fmt.Errorf("sky: psi movie requires the conformal Newtonian gauge")
		}
		if len(res[i].Sources) < 10 {
			return nil, fmt.Errorf("sky: mode k=%g has no sources", ks[i])
		}
		pf.kLn = append(pf.kLn, math.Log(ks[i]))
		pf.srcs = append(pf.srcs, newKSeries(res[i].Sources))
	}
	rng := rand.New(rand.NewSource(seed))
	pf.amp = make([]float64, n*n)
	pf.phRe = make([]float64, n*n)
	pf.phIm = make([]float64, n*n)
	for j := 0; j < n*n; j++ {
		pf.phRe[j] = rng.NormFloat64()
		pf.phIm[j] = rng.NormFloat64()
	}
	return pf, nil
}

// psiAt interpolates psi(k, tau)/C in ln k.
func (pf *PsiField) psiAt(k, tau float64) float64 {
	lk := math.Log(k)
	n := len(pf.kLn)
	if lk <= pf.kLn[0] {
		return pf.srcs[0].at(tau)
	}
	if lk >= pf.kLn[n-1] {
		return pf.srcs[n-1].at(tau)
	}
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if pf.kLn[mid] <= lk {
			lo = mid
		} else {
			hi = mid
		}
	}
	f := (lk - pf.kLn[lo]) / (pf.kLn[hi] - pf.kLn[lo])
	return pf.srcs[lo].at(tau)*(1-f) + pf.srcs[hi].at(tau)*f
}

// Frame renders psi(x) at conformal time tau. Units are arbitrary (the
// movie shows relative oscillations); the amplitude follows the primordial
// spectrum P_C(k) ~ k^(n-4) in 3D, projected onto the slice.
func (pf *PsiField) Frame(tau float64) (*Map, error) {
	n := pf.n
	grid := make([]complex128, n*n)
	for jy := 0; jy < n; jy++ {
		for jx := 0; jx < n; jx++ {
			mx, my := jx, jy
			if mx > n/2 {
				mx -= n
			}
			if my > n/2 {
				my -= n
			}
			if mx == 0 && my == 0 {
				continue
			}
			k := 2 * math.Pi * math.Sqrt(float64(mx*mx+my*my)) / pf.box
			// 3D dimensionless power ~ k^(n-1); the mode amplitude in the
			// slice goes as sqrt(P_3D(k) k^3)/k ~ k^((n-1)/2)/k ... keep the
			// conventional flat-sky weight sqrt(P_C(k))/k.
			amp := math.Pow(k, 0.5*(pf.spec-1.0)) / k
			tr := pf.psiAt(k, tau)
			idx := jy*n + jx
			grid[idx] = complex(pf.phRe[idx]*amp*tr, pf.phIm[idx]*amp*tr)
		}
	}
	if err := fourier.FFT2D(grid, n); err != nil {
		return nil, err
	}
	mp := &Map{NX: n, NY: n, Pix: make([][]float64, n),
		Desc: fmt.Sprintf("psi slice at tau=%.1f Mpc", tau)}
	for j := 0; j < n; j++ {
		row := make([]float64, n)
		for i := 0; i < n; i++ {
			row[i] = real(grid[j*n+i]) / math.Sqrt2
		}
		mp.Pix[j] = row
	}
	return mp, nil
}

// WritePGM emits the map as a binary 8-bit PGM image scaled to the given
// symmetric range (+-scale); pass scale <= 0 to auto-scale to the extrema.
func (m *Map) WritePGM(w io.Writer, scale float64) error {
	if scale <= 0 {
		mn, mx, _ := m.Stats()
		scale = math.Max(math.Abs(mn), math.Abs(mx))
		if scale == 0 {
			scale = 1
		}
	}
	if _, err := fmt.Fprintf(w, "P5\n%d %d\n255\n", m.NX, m.NY); err != nil {
		return err
	}
	buf := make([]byte, m.NX)
	for _, row := range m.Pix {
		for i, v := range row {
			g := 127.5 + 127.5*v/scale
			if g < 0 {
				g = 0
			}
			if g > 255 {
				g = 255
			}
			buf[i] = byte(g)
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}
