package specfunc

import (
	"math"
	"sync"
)

// BesselTable is the shared spherical-Bessel kernel table of the fast
// line-of-sight engine (the CMBFAST precomputation): for a set of multipoles
// l it tabulates, on a single uniform x grid,
//
//	j_l(x),   j_l'(x),   q_l(x) = (3 j_l''(x) + j_l(x)) / 2
//
// — exactly the three kernels of the LOS integral (monopole, dipole and
// quadrupole/polarization terms). The recurrences that the exact path pays
// at every (tau, l) quadrature point are paid here once per x node, for all
// l at a time, and evaluation becomes a four-point cubic interpolation
// (O(h^4) accurate; h = 1/16 keeps the kernel error below ~1e-6, far inside
// the 1e-3 C_l budget). Tables are immutable after construction and safe
// for concurrent readers.
type BesselTable struct {
	// LMax is the largest tabulated multipole; Xmax the largest argument
	// the grid covers; H the node spacing.
	LMax int
	Xmax float64
	H    float64

	rows  []besselRow // indexed by l; data == nil means "not tabulated"
	ls    []int       // sorted multipoles actually tabulated
	nodes int         // x-grid node count, shared by every row
}

// besselRow is the per-l storage: j, j', q interleaved per node, plus the
// negligibility threshold used to truncate integrals below the turning
// point.
type besselRow struct {
	data []float64 // 3*n values: data[3i..3i+2] = j, j', q at x = i*h
	xlow float64
}

// BesselRow is a borrowed, immutable view of one multipole's table for hot
// loops: fetch it once per mode, then Eval per quadrature point.
type BesselRow struct {
	data []float64
	invH float64
	n    int
	// XLow is the argument below which all three kernels are negligible
	// (< ~1e-9 of the row peak): j_l is exponentially small below the
	// turning point x ~ l, so LOS integrals can skip x < XLow outright.
	XLow float64
}

// DefaultBesselH is the default node spacing: the kernels oscillate with
// period 2 pi, so 1/16 gives ~100 nodes per oscillation and interpolation
// errors near 1e-6.
const DefaultBesselH = 1.0 / 16.0

// NewBesselTable tabulates the LOS kernels for the multipoles in ls (nil:
// every l in 0..lmax) on the uniform grid [0, xmax]. When par is non-nil
// the node sweep is fanned out through it (the dispatch subsystem's
// ParallelFor slots in here); par must run body(i) exactly once for every
// i in [0, n).
func NewBesselTable(lmax int, ls []int, xmax, h float64, par func(n int, body func(i int))) *BesselTable {
	if lmax < 0 {
		lmax = 0
	}
	if h <= 0 {
		h = DefaultBesselH
	}
	if xmax < h {
		xmax = h
	}
	if ls == nil {
		ls = make([]int, lmax+1)
		for l := range ls {
			ls[l] = l
		}
	} else {
		ls = sortedUniqueLs(ls)
		if n := len(ls); n > 0 && ls[n-1] > lmax {
			lmax = ls[n-1]
		}
	}
	// Nodes 0..n-1 cover [0, xmax] with two spare nodes so the four-point
	// stencil never runs off the end for x <= xmax.
	n := int(math.Ceil(xmax/h)) + 3
	t := &BesselTable{LMax: lmax, Xmax: xmax, H: h, rows: make([]besselRow, lmax+1), ls: ls, nodes: n}
	for _, l := range ls {
		t.rows[l].data = make([]float64, 3*n)
	}

	// One backward recurrence per node fills every tabulated l at once.
	// Chunk the nodes so each parallel body amortizes its scratch buffer.
	const chunk = 256
	nchunks := (n + chunk - 1) / chunk
	body := func(c int) {
		lo, hi := c*chunk, (c+1)*chunk
		if hi > n {
			hi = n
		}
		var jl []float64
		for i := lo; i < hi; i++ {
			x := float64(i) * h
			jl = SphericalBesselJArray(lmax+1, x, jl)
			for _, l := range ls {
				j, jp, jpp := besselKernels(jl, l, x)
				row := t.rows[l].data
				row[3*i] = j
				row[3*i+1] = jp
				row[3*i+2] = 0.5 * (3.0*jpp + j)
			}
		}
	}
	if par != nil && nchunks > 1 {
		par(nchunks, body)
	} else {
		for c := 0; c < nchunks; c++ {
			body(c)
		}
	}

	// Negligibility thresholds: j_l dies exponentially below the turning
	// point, so record where each row first becomes non-negligible.
	for _, l := range ls {
		t.rows[l].xlow = rowXLow(t.rows[l].data, h)
	}
	return t
}

// besselKernels computes (j_l, j_l', j_l”) from a filled j array at
// argument x, with the same small-argument limit branches as the exact LOS
// path (j_1'(0) = 1/3, j_0”(0) = -1/3, j_2”(0) = 2/15).
func besselKernels(jl []float64, l int, x float64) (j, jp, jpp float64) {
	j = jl[l]
	if x > 1e-8 {
		if l == 0 {
			jp = -jl[1]
		} else {
			jp = jl[l-1] - float64(l+1)/x*j
		}
		jpp = (float64(l*(l+1))/(x*x)-1.0)*j - 2.0/x*jp
		return j, jp, jpp
	}
	switch l {
	case 0:
		jpp = -1.0 / 3.0
	case 1:
		jp = 1.0 / 3.0
	case 2:
		jpp = 2.0 / 15.0
	}
	return j, jp, jpp
}

// rowXLow scans a row for the first node where any kernel exceeds 1e-9 of
// the row peak and returns the x two nodes before it (0 when the row is
// live from the origin, as for small l).
func rowXLow(data []float64, h float64) float64 {
	var peak float64
	for _, v := range data {
		if a := math.Abs(v); a > peak {
			peak = a
		}
	}
	if peak == 0 {
		return 0
	}
	thresh := 1e-9 * peak
	n := len(data) / 3
	for i := 0; i < n; i++ {
		if math.Abs(data[3*i]) > thresh ||
			math.Abs(data[3*i+1]) > thresh ||
			math.Abs(data[3*i+2]) > thresh {
			if i < 3 {
				return 0
			}
			return float64(i-2) * h
		}
	}
	return float64(n-1) * h
}

// Has reports whether multipole l is tabulated.
func (t *BesselTable) Has(l int) bool {
	return l >= 0 && l < len(t.rows) && t.rows[l].data != nil
}

// Ls returns the tabulated multipoles in increasing order.
func (t *BesselTable) Ls() []int { return append([]int(nil), t.ls...) }

// Row returns the hot-loop view of multipole l. ok is false when l is not
// tabulated.
func (t *BesselTable) Row(l int) (BesselRow, bool) {
	if !t.Has(l) {
		return BesselRow{}, false
	}
	r := t.rows[l]
	return BesselRow{data: r.data, invH: 1.0 / t.H, n: len(r.data) / 3, XLow: r.xlow}, true
}

// Eval interpolates the three LOS kernels at x >= 0 with a four-point
// cubic through the bracketing nodes. Arguments beyond the table range are
// clamped to the boundary stencil (callers size Xmax to cover their run).
func (r BesselRow) Eval(x float64) (j, jp, q float64) {
	t := x * r.invH
	i := int(t)
	if i < 1 {
		i = 1
	} else if i > r.n-3 {
		i = r.n - 3
	}
	f := t - float64(i)
	if f > 2 {
		f = 2 // clamp out-of-range arguments to the last stencil
	}
	// Cubic Lagrange weights on the uniform nodes i-1, i, i+1, i+2.
	a, b, c := f-1.0, f-2.0, f+1.0
	w0 := -f * a * b / 6.0
	w1 := a * b * c / 2.0
	w2 := -f * b * c / 2.0
	w3 := f * a * c / 6.0
	d := r.data[3*(i-1) : 3*(i-1)+12 : 3*(i-1)+12]
	j = w0*d[0] + w1*d[3] + w2*d[6] + w3*d[9]
	jp = w0*d[1] + w1*d[4] + w2*d[7] + w3*d[10]
	q = w0*d[2] + w1*d[5] + w2*d[8] + w3*d[11]
	return j, jp, q
}

// BesselStencil is a precomputed interpolation stencil: the node index and
// four cubic weights for a set of arguments. All rows of a table share the
// same x grid, so a projection loop computes the stencil once per mode and
// reuses it for every multipole — the per-point work collapses to a
// 12-float (or 4-float) dot product.
type BesselStencil struct {
	off []int32      // data offset of the first stencil node, 3*(i-1)
	w   [][4]float64 // cubic Lagrange weights
}

// Len returns the number of stenciled arguments.
func (st *BesselStencil) Len() int { return len(st.off) }

// Stencil fills st with the interpolation stencil for the arguments xs
// (negative values are clamped to zero), reusing its storage.
func (t *BesselTable) Stencil(xs []float64, st *BesselStencil) {
	n := len(xs)
	if cap(st.off) < n {
		st.off = make([]int32, n)
		st.w = make([][4]float64, n)
	}
	st.off = st.off[:n]
	st.w = st.w[:n]
	invH := 1.0 / t.H
	nn := t.nodes
	for p, x := range xs {
		if x < 0 {
			x = 0
		}
		tt := x * invH
		i := int(tt)
		if i < 1 {
			i = 1
		} else if i > nn-3 {
			i = nn - 3
		}
		f := tt - float64(i)
		if f > 2 {
			f = 2
		}
		a, b, c := f-1.0, f-2.0, f+1.0
		st.off[p] = int32(3 * (i - 1))
		st.w[p] = [4]float64{-f * a * b / 6.0, a * b * c / 2.0, -f * b * c / 2.0, f * a * c / 6.0}
	}
}

// EvalStencil interpolates all three kernels at stencil point p.
func (r BesselRow) EvalStencil(st *BesselStencil, p int) (j, jp, q float64) {
	o := st.off[p]
	w := &st.w[p]
	d := r.data[o : o+12 : o+12]
	j = w[0]*d[0] + w[1]*d[3] + w[2]*d[6] + w[3]*d[9]
	jp = w[0]*d[1] + w[1]*d[4] + w[2]*d[7] + w[3]*d[10]
	q = w[0]*d[2] + w[1]*d[5] + w[2]*d[8] + w[3]*d[11]
	return j, jp, q
}

// EvalJStencil interpolates only j_l at stencil point p — for integrand
// regions where the dipole and quadrupole sources vanish (outside the
// visibility peak the LOS integrand reduces to the ISW term against j_l).
func (r BesselRow) EvalJStencil(st *BesselStencil, p int) float64 {
	o := st.off[p]
	w := &st.w[p]
	d := r.data[o : o+12 : o+12]
	return w[0]*d[0] + w[1]*d[3] + w[2]*d[6] + w[3]*d[9]
}

// AccumStencil sums sA[p] j + sB[p] j' + sC[p] q over stencil points
// [lo, hi) — the LOS integral's visibility-coupled region in one call, so
// the per-point work is a branch-free fused dot product.
func (r BesselRow) AccumStencil(st *BesselStencil, lo, hi int, sA, sB, sC []float64) float64 {
	var sum float64
	data := r.data
	for p := lo; p < hi; p++ {
		o := st.off[p]
		w := &st.w[p]
		d := data[o : o+12 : o+12]
		j := w[0]*d[0] + w[1]*d[3] + w[2]*d[6] + w[3]*d[9]
		jp := w[0]*d[1] + w[1]*d[4] + w[2]*d[7] + w[3]*d[10]
		q := w[0]*d[2] + w[1]*d[5] + w[2]*d[8] + w[3]*d[11]
		sum += sA[p]*j + sB[p]*jp + sC[p]*q
	}
	return sum
}

// AccumJStencil sums sA[p] j over stencil points [lo, hi) — the ISW tail,
// monopole kernel only.
func (r BesselRow) AccumJStencil(st *BesselStencil, lo, hi int, sA []float64) float64 {
	var sum float64
	data := r.data
	for p := lo; p < hi; p++ {
		o := st.off[p]
		w := &st.w[p]
		d := data[o : o+12 : o+12]
		sum += sA[p] * (w[0]*d[0] + w[1]*d[3] + w[2]*d[6] + w[3]*d[9])
	}
	return sum
}

// sortedUniqueLs returns a sorted copy of ls without duplicates or
// negative entries.
func sortedUniqueLs(ls []int) []int {
	seen := make(map[int]bool, len(ls))
	out := make([]int, 0, len(ls))
	for _, l := range ls {
		if l >= 0 && !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// The process-wide table cache. C_l pipelines across a process ask for the
// same (multipole set, argument range) over and over; building costs
// milliseconds but evaluation happens billions of times, so tables are
// built once behind a mutex and shared. Keys are bucketed so nearby
// requests (xmax differing by the start-time offset, say) hit the same
// entry.
//
// The cache is bounded: entries carry a last-use stamp and the map is
// pruned to DefaultBesselCacheLimit least-recently-used-first, the same
// bounded-LRU discipline as the serving layer's model registry. Without
// the cap a daemon whose clients churn through resolutions (every distinct
// LMaxCl bucket and k-range bucket is a fresh key, each worth several MB)
// would leak tables for the life of the process. Evicted tables stay valid
// for any reader still holding them — they are immutable; eviction only
// drops the cache's reference.
var besselCache = struct {
	sync.Mutex
	m     map[besselCacheKey]*besselCacheEntry
	tick  uint64
	limit int
}{m: map[besselCacheKey]*besselCacheEntry{}, limit: DefaultBesselCacheLimit}

// besselCacheEntry pairs a cached table with its recency stamp.
type besselCacheEntry struct {
	t       *BesselTable
	lastUse uint64
}

// DefaultBesselCacheLimit bounds the shared table cache. Eight buckets
// cover every distinct (multipole cap, argument range) combination a
// realistic serving mix requests; at ~3 MB per production table the cache
// stays under ~25 MB where it previously grew without bound.
const DefaultBesselCacheLimit = 8

// SetBesselCacheLimit changes the shared-cache bound (n < 1 is treated as
// 1), pruning immediately, and returns the previous limit. It exists for
// tests and for daemons that want a different memory/raciness trade-off.
func SetBesselCacheLimit(n int) int {
	if n < 1 {
		n = 1
	}
	besselCache.Lock()
	defer besselCache.Unlock()
	old := besselCache.limit
	besselCache.limit = n
	pruneBesselCacheLocked()
	return old
}

// BesselCacheLen reports the number of cached tables (for tests and
// telemetry).
func BesselCacheLen() int {
	besselCache.Lock()
	defer besselCache.Unlock()
	return len(besselCache.m)
}

// pruneBesselCacheLocked evicts least-recently-used entries until the
// cache respects its limit. Caller holds the lock.
func pruneBesselCacheLocked() {
	for len(besselCache.m) > besselCache.limit {
		var oldest besselCacheKey
		first := true
		for k, e := range besselCache.m {
			if first || e.lastUse < besselCache.m[oldest].lastUse {
				oldest, first = k, false
			}
		}
		delete(besselCache.m, oldest)
	}
}

type besselCacheKey struct {
	lmax  int
	nodes int // xmax bucket expressed in nodes, so H changes miss cleanly
}

// besselXBucket rounds xmax up to a multiple of 64 so slightly different
// ranges share a table.
func besselXBucket(xmax float64) float64 {
	if xmax < 1 {
		xmax = 1
	}
	return 64.0 * math.Ceil(xmax/64.0)
}

// SharedBesselTable returns the cached table covering the multipoles ls and
// arguments [0, xmax], building (or extending) it on first use. The build
// fans out through par when non-nil. Safe for concurrent use; returned
// tables are immutable.
func SharedBesselTable(ls []int, xmax float64, par func(n int, body func(i int))) *BesselTable {
	ls = sortedUniqueLs(ls)
	lmax := 0
	if len(ls) > 0 {
		lmax = ls[len(ls)-1]
	}
	// Bucket the multipole cap too, so requests differing only in their
	// largest l share an entry (the table then simply grows rows).
	lb := 64 * int(math.Ceil(float64(lmax+1)/64.0))
	xb := besselXBucket(xmax)
	key := besselCacheKey{lmax: lb, nodes: int(math.Ceil(xb / DefaultBesselH))}

	besselCache.Lock()
	defer besselCache.Unlock()
	besselCache.tick++
	if e, ok := besselCache.m[key]; ok {
		e.lastUse = besselCache.tick
		missing := false
		for _, l := range ls {
			if !e.t.Has(l) {
				missing = true
				break
			}
		}
		if !missing {
			return e.t
		}
		// Extend: rebuild with the union of the tabulated and requested
		// multipoles. Builds are cheap next to evaluation, and readers of
		// the old table are unaffected (tables are immutable).
		ls = sortedUniqueLs(append(e.t.Ls(), ls...))
	}
	// Build at the key's bucketed cap, not the request's own lmax: the
	// backward recurrence's starting order depends on the build lmax, so
	// the low-order j_l bits would otherwise depend on which request
	// happened to build (or union-extend) the entry first. Pinning the
	// build to lb makes every row a pure function of (key, l) — the same
	// bits no matter the request history, in this process or any other
	// (the farm's cross-process bitwise contract rests on this).
	t := NewBesselTable(lb, ls, xb, DefaultBesselH, par)
	besselCache.m[key] = &besselCacheEntry{t: t, lastUse: besselCache.tick}
	pruneBesselCacheLocked()
	return t
}
