package specfunc

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol*(1.0+math.Abs(want)) {
		t.Fatalf("%s: got %g, want %g (tol %g)", msg, got, want, tol)
	}
}

func TestLegendreLowOrders(t *testing.T) {
	for _, x := range []float64{-1, -0.5, 0, 0.3, 0.99, 1} {
		approx(t, LegendreP(0, x), 1, 1e-14, "P0")
		approx(t, LegendreP(1, x), x, 1e-14, "P1")
		approx(t, LegendreP(2, x), 0.5*(3*x*x-1), 1e-13, "P2")
		approx(t, LegendreP(3, x), 0.5*(5*x*x*x-3*x), 1e-13, "P3")
		approx(t, LegendreP(4, x), (35*x*x*x*x-30*x*x+3)/8, 1e-12, "P4")
	}
}

func TestLegendreEndpoints(t *testing.T) {
	for l := 0; l <= 50; l++ {
		approx(t, LegendreP(l, 1), 1, 1e-10, "P_l(1)")
		want := 1.0
		if l%2 == 1 {
			want = -1.0
		}
		approx(t, LegendreP(l, -1), want, 1e-10, "P_l(-1)")
	}
}

func TestLegendreAllMatchesScalar(t *testing.T) {
	p := LegendreAll(30, 0.37, nil)
	for l := 0; l <= 30; l++ {
		approx(t, p[l], LegendreP(l, 0.37), 1e-13, "LegendreAll")
	}
}

// Orthogonality: integral_-1^1 P_l P_m dx = 2/(2l+1) delta_lm, checked with
// Gauss-Legendre quadrature (exact for polynomials of degree <= 2n-1).
func TestLegendreOrthogonality(t *testing.T) {
	x, w, err := GaussLegendre(40, -1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l <= 10; l++ {
		for m := 0; m <= 10; m++ {
			sum := 0.0
			for i := range x {
				sum += w[i] * LegendreP(l, x[i]) * LegendreP(m, x[i])
			}
			want := 0.0
			if l == m {
				want = 2.0 / (2.0*float64(l) + 1.0)
			}
			if math.Abs(sum-want) > 1e-12 {
				t.Fatalf("orthogonality (%d,%d): %g want %g", l, m, sum, want)
			}
		}
	}
}

func TestGaussLegendreIntegratesPolynomials(t *testing.T) {
	x, w, err := GaussLegendre(8, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	// integral_0^2 x^7 dx = 2^8/8 = 32.
	sum := 0.0
	for i := range x {
		sum += w[i] * math.Pow(x[i], 7)
	}
	approx(t, sum, 32, 1e-12, "x^7 on [0,2]")
	// Weights sum to interval length.
	total := 0.0
	for _, wi := range w {
		total += wi
	}
	approx(t, total, 2, 1e-13, "weight sum")
}

func TestGaussLaguerre(t *testing.T) {
	x, w, err := GaussLaguerre(16)
	if err != nil {
		t.Fatal(err)
	}
	// integral_0^inf e^-x dx = 1
	sum := 0.0
	for i := range x {
		sum += w[i]
	}
	approx(t, sum, 1, 1e-10, "GL weights sum")
	// integral_0^inf e^-x x^3 dx = 6
	sum = 0.0
	for i := range x {
		sum += w[i] * x[i] * x[i] * x[i]
	}
	approx(t, sum, 6, 1e-10, "Gamma(4)")
	// integral_0^inf e^-x sin(x) dx = 1/2 (non-polynomial, needs many nodes)
	sum = 0.0
	for i := range x {
		sum += w[i] * math.Sin(x[i])
	}
	approx(t, sum, 0.5, 1e-6, "sin integral")
}

func TestFermiDiracMomentumGrid(t *testing.T) {
	q, w, err := FermiDiracMomentumGrid(24)
	if err != nil {
		t.Fatal(err)
	}
	// integral q^2/(e^q+1) dq = 3/2 zeta(3) = 1.8030853547...
	sum := 0.0
	for i := range q {
		sum += w[i]
	}
	approx(t, sum, 1.8030853547393952, 1e-9, "number integral")
	// integral q^3/(e^q+1) dq = 7 pi^4/120 = 5.6821969...
	sum = 0.0
	for i := range q {
		sum += w[i] * q[i]
	}
	approx(t, sum, 7.0*math.Pow(math.Pi, 4)/120.0, 1e-9, "energy integral")
	// Relativistic pressure integral: integral q^4/(3 eps)/(e^q+1), eps=q
	// equals 1/3 of the energy integral.
	sum = 0.0
	for i := range q {
		sum += w[i] * q[i] / 3.0
	}
	approx(t, sum, 7.0*math.Pow(math.Pi, 4)/360.0, 1e-9, "pressure integral")
}

func TestSphericalBesselLowOrders(t *testing.T) {
	for _, x := range []float64{0.1, 0.5, 1, 2, 5, 10, 40} {
		approx(t, SphericalBesselJ(0, x), math.Sin(x)/x, 1e-12, "j0")
		approx(t, SphericalBesselJ(1, x), math.Sin(x)/(x*x)-math.Cos(x)/x, 1e-12, "j1")
		j2 := (3.0/(x*x)-1.0)*math.Sin(x)/x - 3.0*math.Cos(x)/(x*x)
		approx(t, SphericalBesselJ(2, x), j2, 1e-10, "j2")
	}
}

func TestSphericalBesselKnownValues(t *testing.T) {
	// j_5(1) = 9.256115861125816e-05
	approx(t, SphericalBesselJ(5, 1), 9.256115861125816e-05, 1e-8, "j5(1)")
	// j_10(10) = 0.06460515449256426
	approx(t, SphericalBesselJ(10, 10), 0.06460515449256426, 1e-8, "j10(10)")
}

// Wronskian identity: j_{l+1}(x) y_l(x) - j_l(x) y_{l+1}(x) = 1/x^2.
// This is an independent exactness check that validates j_l deep in the
// x << l tunneling regime, where the backward recurrence is doing the work.
func TestSphericalBesselWronskian(t *testing.T) {
	for _, c := range []struct {
		l int
		x float64
	}{
		{0, 1}, {1, 0.3}, {5, 2}, {10, 3}, {25, 40}, {50, 20}, {100, 30}, {200, 150},
	} {
		jl := SphericalBesselJ(c.l, c.x)
		jl1 := SphericalBesselJ(c.l+1, c.x)
		yl := SphericalBesselY(c.l, c.x)
		yl1 := SphericalBesselY(c.l+1, c.x)
		w := jl1*yl - jl*yl1
		want := 1.0 / (c.x * c.x)
		if math.Abs(w-want) > 1e-8*math.Abs(want) {
			t.Fatalf("Wronskian(l=%d,x=%g) = %g, want %g", c.l, c.x, w, want)
		}
	}
}

func TestSphericalBesselZeroArgument(t *testing.T) {
	if SphericalBesselJ(0, 0) != 1 {
		t.Fatal("j0(0) != 1")
	}
	for l := 1; l < 10; l++ {
		if SphericalBesselJ(l, 0) != 0 {
			t.Fatalf("j%d(0) != 0", l)
		}
	}
}

func TestSphericalBesselArrayMatchesScalar(t *testing.T) {
	for _, x := range []float64{0.3, 3, 30, 120} {
		arr := SphericalBesselJArray(60, x, nil)
		for l := 0; l <= 60; l++ {
			want := SphericalBesselJ(l, x)
			if math.Abs(arr[l]-want) > 1e-10*(1+math.Abs(want)) {
				t.Fatalf("array j_%d(%g) = %g, scalar %g", l, x, arr[l], want)
			}
		}
	}
}

// Recurrence property: x(j_{l-1} + j_{l+1}) = (2l+1) j_l.
func TestSphericalBesselRecurrenceProperty(t *testing.T) {
	f := func(li uint8, xr float64) bool {
		l := int(li%40) + 1
		x := math.Mod(math.Abs(xr), 60.0) + 0.1
		jm := SphericalBesselJ(l-1, x)
		j := SphericalBesselJ(l, x)
		jp := SphericalBesselJ(l+1, x)
		lhs := x * (jm + jp)
		rhs := (2.0*float64(l) + 1.0) * j
		scale := math.Max(math.Abs(lhs), math.Abs(rhs))
		if scale < 1e-280 {
			return true
		}
		return math.Abs(lhs-rhs) <= 1e-8*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAssociatedLegendreM0MatchesLegendre(t *testing.T) {
	for l := 0; l <= 20; l++ {
		for _, x := range []float64{-0.9, -0.2, 0, 0.4, 0.95} {
			want := math.Sqrt((2.0*float64(l)+1.0)/(4.0*math.Pi)) * LegendreP(l, x)
			got := AssociatedLegendre(l, 0, x)
			if math.Abs(got-want) > 1e-11*(1+math.Abs(want)) {
				t.Fatalf("Plm(l=%d,m=0,%g) = %g want %g", l, x, got, want)
			}
		}
	}
}

// Spherical harmonic normalization: 2 pi integral_-1^1 [N P_lm]^2 dx = 1
// (the phi integral of cos^2/sin^2 contributes the 2 pi for m=0 and pi for
// m>0 under real conventions; here we check the m=0 and the general complex
// normalization integral = 1/(2 pi) factorized).
func TestAssociatedLegendreNormalization(t *testing.T) {
	x, w, err := GaussLegendre(64, -1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, lm := range [][2]int{{0, 0}, {1, 0}, {1, 1}, {5, 3}, {10, 10}, {20, 7}} {
		l, m := lm[0], lm[1]
		sum := 0.0
		for i := range x {
			p := AssociatedLegendre(l, m, x[i])
			sum += w[i] * p * p
		}
		// integral |Y_lm|^2 dOmega = 2 pi integral [N P_lm]^2 dcos = 1.
		if math.Abs(2.0*math.Pi*sum-1.0) > 1e-10 {
			t.Fatalf("norm (l=%d,m=%d): 2pi*int = %g", l, m, 2*math.Pi*sum)
		}
	}
}

func TestAssociatedLegendreColMatchesScalar(t *testing.T) {
	for _, m := range []int{0, 1, 4, 9} {
		col := AssociatedLegendreCol(25, m, 0.3, nil)
		for l := 0; l <= 25; l++ {
			want := AssociatedLegendre(l, m, 0.3)
			if math.Abs(col[l]-want) > 1e-11*(1+math.Abs(want)) {
				t.Fatalf("col (l=%d,m=%d) = %g want %g", l, m, col[l], want)
			}
		}
	}
}

func TestQuadratureErrors(t *testing.T) {
	if _, _, err := GaussLegendre(0, 0, 1); err == nil {
		t.Error("GaussLegendre(0) should error")
	}
	if _, _, err := GaussLaguerre(0); err == nil {
		t.Error("GaussLaguerre(0) should error")
	}
}
