package specfunc

import "testing"

// BenchmarkSphericalBesselJArray is the exact-recurrence kernel cost the
// reference LOS projection pays at every quadrature point.
func BenchmarkSphericalBesselJArray(b *testing.B) {
	b.ReportAllocs()
	var jl []float64
	x := 0.3
	for i := 0; i < b.N; i++ {
		jl = SphericalBesselJArray(151, x, jl)
		x += 1.7
		if x > 350 {
			x = 0.3
		}
	}
	_ = jl
}

// BenchmarkBesselTableEval is the fast path's replacement: one cubic
// interpolation returning all three LOS kernels.
func BenchmarkBesselTableEval(b *testing.B) {
	tbl := NewBesselTable(150, []int{2, 10, 50, 150}, 384, 0, nil)
	row, _ := tbl.Row(150)
	b.ReportAllocs()
	b.ResetTimer()
	x := 0.3
	var acc float64
	for i := 0; i < b.N; i++ {
		j, jp, q := row.Eval(x)
		acc += j + jp + q
		x += 1.7
		if x > 350 {
			x = 0.3
		}
	}
	_ = acc
}

// BenchmarkBesselTableBuild is the one-off table construction the process
// cache amortizes over every later projection.
func BenchmarkBesselTableBuild(b *testing.B) {
	ls := make([]int, 0, 30)
	for l := 2; l <= 150; l += 5 {
		ls = append(ls, l)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NewBesselTable(150, ls, 384, 0, nil)
	}
}
