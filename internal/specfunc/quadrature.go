package specfunc

import (
	"fmt"
	"math"
)

// GaussLegendre returns the nodes and weights of the n-point Gauss-Legendre
// rule on [a, b].
func GaussLegendre(n int, a, b float64) (x, w []float64, err error) {
	if n < 1 {
		return nil, nil, fmt.Errorf("specfunc: GaussLegendre n=%d < 1", n)
	}
	x = make([]float64, n)
	w = make([]float64, n)
	m := (n + 1) / 2
	xm := 0.5 * (b + a)
	xl := 0.5 * (b - a)
	for i := 0; i < m; i++ {
		// Initial guess from Chebyshev approximation of the roots.
		z := math.Cos(math.Pi * (float64(i) + 0.75) / (float64(n) + 0.5))
		var pp float64
		for iter := 0; iter < 100; iter++ {
			p1, p2 := 1.0, 0.0
			for j := 0; j < n; j++ {
				p1, p2 = ((2.0*float64(j)+1.0)*z*p1-float64(j)*p2)/float64(j+1), p1
			}
			pp = float64(n) * (z*p1 - p2) / (z*z - 1.0)
			z1 := z
			z = z1 - p1/pp
			if math.Abs(z-z1) < 1e-15 {
				break
			}
		}
		// Recompute p1 at the converged node for the weight.
		p1, p2 := 1.0, 0.0
		for j := 0; j < n; j++ {
			p1, p2 = ((2.0*float64(j)+1.0)*z*p1-float64(j)*p2)/float64(j+1), p1
		}
		pp = float64(n) * (z*p1 - p2) / (z*z - 1.0)
		x[i] = xm - xl*z
		x[n-1-i] = xm + xl*z
		w[i] = 2.0 * xl / ((1.0 - z*z) * pp * pp)
		w[n-1-i] = w[i]
	}
	return x, w, nil
}

// GaussLaguerre returns the nodes and weights of the n-point Gauss-Laguerre
// rule: integral_0^inf e^{-x} f(x) dx ~= sum w_i f(x_i).
func GaussLaguerre(n int) (x, w []float64, err error) {
	if n < 1 {
		return nil, nil, fmt.Errorf("specfunc: GaussLaguerre n=%d < 1", n)
	}
	x = make([]float64, n)
	w = make([]float64, n)
	var z float64
	for i := 0; i < n; i++ {
		switch i {
		case 0:
			z = 3.0 / (1.0 + 2.4*float64(n))
		case 1:
			z += 15.0 / (1.0 + 2.5*float64(n))
		default:
			ai := float64(i - 1)
			z += (1.0 + 2.55*ai) / (1.9 * ai) * (z - x[i-2])
		}
		var pp, p1 float64
		for iter := 0; iter < 200; iter++ {
			p1 = 1.0
			p2 := 0.0
			for j := 0; j < n; j++ {
				fj := float64(j)
				p1, p2 = ((2.0*fj+1.0-z)*p1-fj*p2)/(fj+1.0), p1
			}
			pp = float64(n) * (p1 - p2) / z
			z1 := z
			z = z1 - p1/pp
			if math.Abs(z-z1) <= 1e-14*math.Abs(z) {
				break
			}
		}
		x[i] = z
		w[i] = -1.0 / (pp * float64(n) * fermiP2(n, z))
	}
	return x, w, nil
}

// fermiP2 returns L_{n-1}(z), the value of p2 after the recurrence above
// converged; recomputed here to keep the weight formula readable:
// w_i = x_i / ((n+1)^2 [L_{n+1}(x_i)]^2) in one convention; we use
// w_i = -1/(pp * n * L_{n-1}(x_i)) following Numerical Recipes.
func fermiP2(n int, z float64) float64 {
	p1, p2 := 1.0, 0.0
	for j := 0; j < n; j++ {
		fj := float64(j)
		p1, p2 = ((2.0*fj+1.0-z)*p1-fj*p2)/(fj+1.0), p1
	}
	return p2
}

// FermiDiracMomentumGrid returns nodes q_i and weights W_i such that for a
// smooth g(q)
//
//	integral_0^inf dq q^2 f0(q) g(q) ~= sum_i W_i g(q_i),
//
// with the relativistic Fermi-Dirac kernel f0(q) = 1/(e^q + 1) (q measured
// in units of kT). This is the momentum grid used for the massive-neutrino
// phase-space integration; the paper integrates the full q dependence with
// no free-streaming approximation.
func FermiDiracMomentumGrid(n int) (q, w []float64, err error) {
	x, gw, err := GaussLaguerre(n)
	if err != nil {
		return nil, nil, err
	}
	q = x
	w = make([]float64, n)
	for i := range x {
		// integrand = e^{-q} * [q^2 g(q) e^q/(e^q+1)] => W = gw * q^2/(1+e^{-q})
		w[i] = gw[i] * x[i] * x[i] / (1.0 + math.Exp(-x[i]))
	}
	return q, w, nil
}
