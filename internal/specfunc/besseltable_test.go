package specfunc

import (
	"math"
	"testing"
)

// exactKernels evaluates (j_l, j_l', q_l) by the same recurrences the
// reference LOS path uses, for cross-checking the table.
func exactKernels(l int, x float64) (j, jp, q float64) {
	jl := SphericalBesselJArray(l+1, x, nil)
	j, jp, jpp := besselKernels(jl, l, x)
	return j, jp, 0.5 * (3.0*jpp + j)
}

// TestBesselTableMatchesDirect sweeps each tabulated multipole across the
// full argument range — through the turning point x ~ l where the upward
// and backward recurrences hand over — and checks the interpolated kernels
// against the direct evaluation. j_l is bounded by 1, so absolute
// tolerances are meaningful; the cubic interpolation error budget is ~1e-6.
func TestBesselTableMatchesDirect(t *testing.T) {
	ls := []int{0, 1, 2, 5, 10, 25, 60, 100, 150}
	tbl := NewBesselTable(150, ls, 400, 0, nil)
	for _, l := range ls {
		row, ok := tbl.Row(l)
		if !ok {
			t.Fatalf("l=%d missing", l)
		}
		fl := float64(l)
		// Dense probes around the turning point, plus a coarse sweep of
		// the oscillatory region; offsets avoid landing on table nodes.
		var xs []float64
		for dx := -8.0; dx <= 8.0; dx += 0.317 {
			if x := fl + dx; x > 0 {
				xs = append(xs, x)
			}
		}
		for x := 0.0137; x < 400; x += 3.713 {
			xs = append(xs, x)
		}
		for _, x := range xs {
			j, jp, q := row.Eval(x)
			ej, ejp, eq := exactKernels(l, x)
			if math.Abs(j-ej) > 2e-5 || math.Abs(jp-ejp) > 2e-5 || math.Abs(q-eq) > 1e-4 {
				t.Fatalf("l=%d x=%g: table (%g, %g, %g) vs exact (%g, %g, %g)",
					l, x, j, jp, q, ej, ejp, eq)
			}
		}
	}
}

// TestBesselTableSmallArgumentLimits pins the x -> 0 limit branches that
// the LOS integrand depends on: j_0(0) = 1, j_1'(0) = 1/3, and the
// quadrupole kernel q_2(0) = (3 * 2/15 + 0)/2 = 1/5.
func TestBesselTableSmallArgumentLimits(t *testing.T) {
	tbl := NewBesselTable(4, nil, 50, 0, nil)
	cases := []struct {
		l          int
		j, jp, q   float64
		name       string
		absJ, absD float64
	}{
		{l: 0, j: 1, jp: 0, q: 0, name: "monopole"},
		{l: 1, j: 0, jp: 1.0 / 3.0, q: 0, name: "dipole"},
		{l: 2, j: 0, jp: 0, q: 0.2, name: "quadrupole"},
	}
	for _, c := range cases {
		row, _ := tbl.Row(c.l)
		for _, x := range []float64{0, 1e-10, 1e-6} {
			j, jp, q := row.Eval(x)
			if math.Abs(j-c.j) > 1e-5 || math.Abs(jp-c.jp) > 1e-5 || math.Abs(q-c.q) > 1e-5 {
				t.Fatalf("%s at x=%g: (%g, %g, %g), want (%g, %g, %g)",
					c.name, x, j, jp, q, c.j, c.jp, c.q)
			}
		}
	}
}

// TestBesselTableXLow checks the truncation threshold: below XLow every
// kernel really is negligible, and XLow is meaningfully positive for large
// l (that is what pays for the per-multipole loop truncation).
func TestBesselTableXLow(t *testing.T) {
	tbl := NewBesselTable(150, []int{2, 60, 150}, 400, 0, nil)
	for _, l := range []int{60, 150} {
		row, _ := tbl.Row(l)
		if row.XLow < float64(l)/2 {
			t.Fatalf("l=%d: XLow=%g suspiciously small", l, row.XLow)
		}
		if row.XLow > float64(l) {
			t.Fatalf("l=%d: XLow=%g beyond the turning point", l, row.XLow)
		}
		for _, x := range []float64{row.XLow / 2, row.XLow * 0.9} {
			if j := SphericalBesselJ(l, x); math.Abs(j) > 1e-8 {
				t.Fatalf("l=%d: j(%g)=%g not negligible below XLow=%g", l, x, j, row.XLow)
			}
		}
	}
	if row, _ := tbl.Row(2); row.XLow != 0 {
		t.Fatalf("l=2 must be live from the origin, XLow=%g", row.XLow)
	}
}

// TestSharedBesselTableCache checks the process cache: same request, same
// table; widened multipole set, a rebuilt superset table under the same
// key.
func TestSharedBesselTableCache(t *testing.T) {
	a := SharedBesselTable([]int{2, 10, 30}, 333, nil)
	b := SharedBesselTable([]int{10, 2}, 330, nil)
	if a != b {
		t.Fatal("subset request rebuilt the table")
	}
	c := SharedBesselTable([]int{2, 10, 17, 30}, 333, nil)
	if c == a {
		t.Fatal("extension did not rebuild")
	}
	for _, l := range []int{2, 10, 17, 30} {
		if !c.Has(l) {
			t.Fatalf("extended table missing l=%d", l)
		}
	}
	if d := SharedBesselTable([]int{2, 17}, 331, nil); d != c {
		t.Fatal("extended table not cached")
	}
}

// TestBesselCachePrune: the shared cache is a bounded LRU — churning
// through distinct keys must never grow it past the limit, eviction must
// hit the least-recently-used entry first, and surviving entries must
// still be served from cache.
func TestBesselCachePrune(t *testing.T) {
	defer SetBesselCacheLimit(SetBesselCacheLimit(2))

	// Distinct lmax buckets (64 apart) give distinct keys at equal xmax.
	t10 := SharedBesselTable([]int{10}, 200, nil)
	t100 := SharedBesselTable([]int{100}, 200, nil)
	if n := BesselCacheLen(); n > 2 {
		t.Fatalf("cache holds %d entries with limit 2", n)
	}
	// Touch the first so the second becomes LRU, then insert a third.
	if tt := SharedBesselTable([]int{10}, 200, nil); tt != t10 {
		t.Fatal("cached table rebuilt on hit")
	}
	t200 := SharedBesselTable([]int{200}, 200, nil)
	if n := BesselCacheLen(); n != 2 {
		t.Fatalf("cache holds %d entries after pruning, want 2", n)
	}
	// The recently used and the new entry survive; the LRU one was evicted.
	if tt := SharedBesselTable([]int{10}, 200, nil); tt != t10 {
		t.Fatal("recently used entry was evicted")
	}
	if tt := SharedBesselTable([]int{200}, 200, nil); tt != t200 {
		t.Fatal("newest entry was evicted")
	}
	if tt := SharedBesselTable([]int{100}, 200, nil); tt == t100 {
		t.Fatal("least-recently-used entry survived past the limit")
	}
	// Evicted tables must remain readable (immutability contract).
	if row, ok := t100.Row(100); !ok {
		t.Fatal("evicted table lost its rows")
	} else if j, _, _ := row.Eval(120.0); j == 0 {
		t.Fatal("evicted table row unreadable")
	}
	// Limits below 1 clamp to 1.
	SetBesselCacheLimit(0)
	SharedBesselTable([]int{10}, 200, nil)
	SharedBesselTable([]int{100}, 200, nil)
	if n := BesselCacheLen(); n != 1 {
		t.Fatalf("cache holds %d entries with limit 1", n)
	}
}

// TestBesselTableParallelBuild: the dispatch-style fan-out and the serial
// build must produce identical tables.
func TestBesselTableParallelBuild(t *testing.T) {
	par := func(n int, body func(int)) {
		done := make(chan struct{})
		for i := 0; i < n; i++ {
			go func(i int) { body(i); done <- struct{}{} }(i)
		}
		for i := 0; i < n; i++ {
			<-done
		}
	}
	ser := NewBesselTable(80, []int{3, 40, 80}, 900, 0, nil)
	con := NewBesselTable(80, []int{3, 40, 80}, 900, 0, par)
	for _, l := range []int{3, 40, 80} {
		rs, _ := ser.Row(l)
		rc, _ := con.Row(l)
		for _, x := range []float64{0.1, 7.7, 39.9, 80.3, 555.5} {
			js, jps, qs := rs.Eval(x)
			jc, jpc, qc := rc.Eval(x)
			if js != jc || jps != jpc || qs != qc {
				t.Fatalf("l=%d x=%g: parallel build differs", l, x)
			}
		}
	}
}

// TestSharedBesselTableHistoryIndependent: rows served from the shared
// cache must be a pure function of (key, l) — the same bits whether the
// entry was built by a sparse request, by a wider one, or grown through a
// union extension. The build therefore always runs its recurrence at the
// key's bucketed cap, never at the request's own lmax; without that, a
// process whose first request topped out at l=38 would serve different
// j_l bits than a fresh process asking for l<=40 (the farm's
// cross-process bitwise contract breaks exactly there).
func TestSharedBesselTableHistoryIndependent(t *testing.T) {
	// Two lmax values in the same 64-bucket, like DefaultLs(40) (max 38)
	// vs a dense 2..40 request.
	sparse := []int{2, 10, 38}
	dense := []int{2, 10, 38, 40}
	const xmax = 300.0

	// The ground truth: what a fresh process building straight at the
	// bucket cap tabulates.
	direct := NewBesselTable(64, dense, besselXBucket(xmax), DefaultBesselH, nil)

	// A history-shaped cache: sparse first, then union-extended by the
	// dense request.
	old := SetBesselCacheLimit(1)
	defer SetBesselCacheLimit(old)
	SharedBesselTable([]int{500}, 100, nil) // evict whatever earlier tests cached
	SharedBesselTable(sparse, xmax, nil)
	grown := SharedBesselTable(dense, xmax, nil)

	for _, l := range dense {
		rg, ok := grown.Row(l)
		if !ok {
			t.Fatalf("grown table missing l=%d", l)
		}
		rd, _ := direct.Row(l)
		for _, x := range []float64{0.3, 5.5, 37.9, 123.4, 299.0} {
			jg, jpg, qg := rg.Eval(x)
			jd, jpd, qd := rd.Eval(x)
			if jg != jd || jpg != jpd || qg != qd {
				t.Fatalf("l=%d x=%g: union-grown row differs from fresh build", l, x)
			}
		}
	}
}
