package specfunc

import "math"

// SphericalBesselJ returns the spherical Bessel function j_l(x) for x >= 0.
// For x greater than l the stable upward recurrence is used; below the
// turning point Miller's backward recurrence with normalization against j_0
// is used (upward recursion is violently unstable there).
func SphericalBesselJ(l int, x float64) float64 {
	if l < 0 {
		return 0
	}
	if x == 0 {
		if l == 0 {
			return 1
		}
		return 0
	}
	if x < 0 {
		// j_l(-x) = (-1)^l j_l(x)
		v := SphericalBesselJ(l, -x)
		if l%2 == 1 {
			return -v
		}
		return v
	}
	j0 := math.Sin(x) / x
	if l == 0 {
		return j0
	}
	j1 := math.Sin(x)/(x*x) - math.Cos(x)/x
	if l == 1 {
		return j1
	}
	if x > float64(l)+0.5 {
		// Upward recurrence j_{n+1} = (2n+1)/x j_n - j_{n-1}.
		jm, j := j0, j1
		for n := 1; n < l; n++ {
			jm, j = j, (2.0*float64(n)+1.0)/x*j-jm
		}
		return j
	}
	// For very small arguments use the leading series term to avoid
	// underflow churn: j_l(x) ~ x^l / (2l+1)!!.
	if x < 1e-3*float64(l) || x < 1e-6 {
		v := 1.0
		for n := 1; n <= l; n++ {
			v *= x / (2.0*float64(n) + 1.0)
			if v == 0 {
				return 0
			}
		}
		// v = x^l/(2l+1)!!; include the (1 - x^2/(2(2l+3))) correction.
		return v * (1.0 - x*x/(2.0*(2.0*float64(l)+3.0)))
	}
	// Miller backward recurrence from a safely large starting order.
	start := l + int(math.Sqrt(40.0*float64(l))) + 20
	jp, j := 0.0, 1e-30
	var jl float64
	for n := start; n >= 1; n-- {
		jm := (2.0*float64(n)+1.0)/x*j - jp
		jp, j = j, jm
		if n-1 == l {
			jl = j
		}
		// Rescale to avoid overflow.
		if math.Abs(j) > 1e100 {
			j *= 1e-100
			jp *= 1e-100
			jl *= 1e-100
		}
	}
	// j now holds the unnormalized j_0; normalize with the analytic j_0.
	if j == 0 {
		return 0
	}
	return jl * (j0 / j)
}

// SphericalBesselY returns the spherical Bessel function of the second kind
// y_l(x) for x > 0 via the (stable) upward recurrence.
func SphericalBesselY(l int, x float64) float64 {
	y0 := -math.Cos(x) / x
	if l == 0 {
		return y0
	}
	y1 := -math.Cos(x)/(x*x) - math.Sin(x)/x
	if l == 1 {
		return y1
	}
	ym, y := y0, y1
	for n := 1; n < l; n++ {
		ym, y = y, (2.0*float64(n)+1.0)/x*y-ym
	}
	return y
}

// SphericalBesselJArray fills out[0..lmax] with j_l(x) using a single
// backward recurrence pass (much cheaper than lmax separate calls).
func SphericalBesselJArray(lmax int, x float64, out []float64) []float64 {
	if cap(out) < lmax+1 {
		out = make([]float64, lmax+1)
	}
	out = out[:lmax+1]
	if x == 0 {
		out[0] = 1
		for i := 1; i <= lmax; i++ {
			out[i] = 0
		}
		return out
	}
	j0 := math.Sin(x) / x
	out[0] = j0
	if lmax == 0 {
		return out
	}
	j1 := math.Sin(x)/(x*x) - math.Cos(x)/x
	out[1] = j1
	if lmax == 1 {
		return out
	}
	if x > float64(lmax)+0.5 {
		for n := 1; n < lmax; n++ {
			out[n+1] = (2.0*float64(n)+1.0)/x*out[n] - out[n-1]
		}
		return out
	}
	// Backward recurrence filling all orders, then normalize.
	start := lmax + int(math.Sqrt(40.0*float64(lmax))) + 20
	jp, j := 0.0, 1e-30
	for n := start; n >= 1; n-- {
		jm := (2.0*float64(n)+1.0)/x*j - jp
		jp, j = j, jm
		if n-1 <= lmax {
			out[n-1] = j
		}
		if math.Abs(j) > 1e100 {
			j *= 1e-100
			jp *= 1e-100
			for i := n - 1; i <= lmax; i++ {
				if i >= 0 {
					out[i] *= 1e-100
				}
			}
		}
	}
	scale := j0 / out[0]
	for i := 0; i <= lmax; i++ {
		out[i] *= scale
	}
	return out
}
