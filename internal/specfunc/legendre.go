// Package specfunc provides the special functions needed by the
// Einstein-Boltzmann solver and its post-processing: Legendre polynomials
// (angular expansion of the photon distribution), associated Legendre
// functions (sky-map synthesis), spherical Bessel functions (line-of-sight
// integration), and Gaussian quadrature rules (momentum integrals for
// massive neutrinos, C_l integrals).
package specfunc

import "math"

// LegendreP returns the Legendre polynomial P_l(x) via the standard upward
// recurrence (l+1)P_{l+1} = (2l+1)x P_l - l P_{l-1}.
func LegendreP(l int, x float64) float64 {
	switch l {
	case 0:
		return 1
	case 1:
		return x
	}
	pm, p := 1.0, x
	for ell := 1; ell < l; ell++ {
		pm, p = p, ((2*float64(ell)+1)*x*p-float64(ell)*pm)/float64(ell+1)
	}
	return p
}

// LegendreAll fills out[0..lmax] with P_l(x). It reuses out if it has
// sufficient capacity and returns the filled slice.
func LegendreAll(lmax int, x float64, out []float64) []float64 {
	if cap(out) < lmax+1 {
		out = make([]float64, lmax+1)
	}
	out = out[:lmax+1]
	out[0] = 1
	if lmax == 0 {
		return out
	}
	out[1] = x
	for ell := 1; ell < lmax; ell++ {
		out[ell+1] = ((2*float64(ell)+1)*x*out[ell] - float64(ell)*out[ell-1]) / float64(ell+1)
	}
	return out
}

// AssociatedLegendre returns the normalized associated Legendre function
//
//	N_lm P_lm(x),  N_lm = sqrt((2l+1)/(4 pi) (l-m)!/(l+m)!)
//
// i.e. the theta-part of the real spherical harmonic, for 0 <= m <= l.
// The normalized recursion avoids overflow for large l.
func AssociatedLegendre(l, m int, x float64) float64 {
	if m < 0 || m > l {
		return 0
	}
	// Normalized P_mm.
	pmm := math.Sqrt(1.0 / (4.0 * math.Pi))
	if m > 0 {
		s2 := (1.0 - x) * (1.0 + x)
		if s2 < 0 {
			s2 = 0
		}
		s := math.Sqrt(s2)
		for k := 1; k <= m; k++ {
			pmm *= -math.Sqrt((2.0*float64(k)+1.0)/(2.0*float64(k))) * s
		}
	} else {
		pmm = math.Sqrt(1.0/(4.0*math.Pi)) * 1.0
	}
	if l == m {
		// Multiply in sqrt(2m+1) normalization already accumulated above for
		// m>0; for m=0, P_00 normalized is sqrt(1/4pi).
		return pmm
	}
	// Normalized upward recursion in l.
	pm1 := pmm
	p := x * math.Sqrt(2.0*float64(m)+3.0) * pmm // l = m+1
	if l == m+1 {
		return p
	}
	for ell := m + 2; ell <= l; ell++ {
		fl, fm := float64(ell), float64(m)
		a := math.Sqrt((4.0*fl*fl - 1.0) / (fl*fl - fm*fm))
		b := math.Sqrt(((fl-1.0)*(fl-1.0) - fm*fm) / (4.0*(fl-1.0)*(fl-1.0) - 1.0))
		pm1, p = p, a*(x*p-b*pm1)
	}
	return p
}

// AssociatedLegendreCol fills out[l] for l in [m, lmax] with the normalized
// associated Legendre functions at fixed m (entries below m are zeroed).
// It reuses out when possible and returns the filled slice.
func AssociatedLegendreCol(lmax, m int, x float64, out []float64) []float64 {
	if cap(out) < lmax+1 {
		out = make([]float64, lmax+1)
	}
	out = out[:lmax+1]
	for i := 0; i < m && i <= lmax; i++ {
		out[i] = 0
	}
	if m > lmax {
		return out
	}
	pmm := math.Sqrt(1.0 / (4.0 * math.Pi))
	if m > 0 {
		s2 := (1.0 - x) * (1.0 + x)
		if s2 < 0 {
			s2 = 0
		}
		s := math.Sqrt(s2)
		for k := 1; k <= m; k++ {
			pmm *= -math.Sqrt((2.0*float64(k)+1.0)/(2.0*float64(k))) * s
		}
	}
	out[m] = pmm
	if m == lmax {
		return out
	}
	out[m+1] = x * math.Sqrt(2.0*float64(m)+3.0) * pmm
	for ell := m + 2; ell <= lmax; ell++ {
		fl, fm := float64(ell), float64(m)
		a := math.Sqrt((4.0*fl*fl - 1.0) / (fl*fl - fm*fm))
		b := math.Sqrt(((fl-1.0)*(fl-1.0) - fm*fm) / (4.0*(fl-1.0)*(fl-1.0) - 1.0))
		out[ell] = a * (x*out[ell-1] - b*out[ell-2])
	}
	return out
}
