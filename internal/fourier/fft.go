// Package fourier implements the fast Fourier transforms used for sky-map
// synthesis (Figure 3 of the paper) and for the conformal-Newtonian
// potential movie: an iterative radix-2 complex FFT and 2-D helpers.
// Only power-of-two lengths are supported; the map grids are chosen
// accordingly.
package fourier

import (
	"fmt"
	"math"
	"math/cmplx"
)

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool { return n > 0 && n&(n-1) == 0 }

// FFT performs an in-place forward DFT of x (length must be a power of two):
// X_k = sum_j x_j exp(-2 pi i jk/n).
func FFT(x []complex128) error { return transform(x, -1) }

// IFFT performs the in-place inverse DFT including the 1/n normalization.
func IFFT(x []complex128) error {
	if err := transform(x, +1); err != nil {
		return err
	}
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] /= n
	}
	return nil
}

func transform(x []complex128, sign int) error {
	n := len(x)
	if !IsPowerOfTwo(n) {
		return fmt.Errorf("fourier: length %d is not a power of two", n)
	}
	// Bit-reversal permutation.
	for i, j := 0, 0; i < n; i++ {
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
		mask := n >> 1
		for ; j&mask != 0; mask >>= 1 {
			j &^= mask
		}
		j |= mask
	}
	// Danielson-Lanczos butterflies.
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		theta := float64(sign) * 2.0 * math.Pi / float64(size)
		wstep := cmplx.Exp(complex(0, theta))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				u := x[start+k]
				v := x[start+k+half] * w
				x[start+k] = u + v
				x[start+k+half] = u - v
				w *= wstep
			}
		}
	}
	return nil
}

// FFT2D performs an in-place forward 2-D DFT on an n x n grid stored
// row-major in x.
func FFT2D(x []complex128, n int) error { return transform2D(x, n, FFT) }

// IFFT2D performs the in-place inverse 2-D DFT (normalized).
func IFFT2D(x []complex128, n int) error { return transform2D(x, n, IFFT) }

func transform2D(x []complex128, n int, f func([]complex128) error) error {
	if len(x) != n*n {
		return fmt.Errorf("fourier: grid length %d != %d^2", len(x), n)
	}
	// Rows.
	for r := 0; r < n; r++ {
		if err := f(x[r*n : (r+1)*n]); err != nil {
			return err
		}
	}
	// Columns via a scratch slice.
	col := make([]complex128, n)
	for c := 0; c < n; c++ {
		for r := 0; r < n; r++ {
			col[r] = x[r*n+c]
		}
		if err := f(col); err != nil {
			return err
		}
		for r := 0; r < n; r++ {
			x[r*n+c] = col[r]
		}
	}
	return nil
}
