package fourier

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFFTKnownTransform(t *testing.T) {
	// DFT of a delta function is flat.
	x := make([]complex128, 8)
	x[0] = 1
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("delta transform bin %d = %v", i, v)
		}
	}
}

func TestFFTSingleTone(t *testing.T) {
	n := 64
	k := 5
	x := make([]complex128, n)
	for j := range x {
		ph := 2 * math.Pi * float64(k*j) / float64(n)
		x[j] = cmplx.Exp(complex(0, ph))
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		want := complex(0, 0)
		if i == k {
			want = complex(float64(n), 0)
		}
		if cmplx.Abs(v-want) > 1e-9 {
			t.Fatalf("tone bin %d = %v, want %v", i, v, want)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 2, 4, 16, 128, 1024} {
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			orig[i] = x[i]
		}
		if err := FFT(x); err != nil {
			t.Fatal(err)
		}
		if err := IFFT(x); err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-10 {
				t.Fatalf("n=%d round trip failed at %d: %v vs %v", n, i, x[i], orig[i])
			}
		}
	}
}

func TestParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 256
	x := make([]complex128, n)
	sumT := 0.0
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
		sumT += real(x[i] * cmplx.Conj(x[i]))
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	sumF := 0.0
	for i := range x {
		sumF += real(x[i] * cmplx.Conj(x[i]))
	}
	if math.Abs(sumF/float64(n)-sumT) > 1e-8*sumT {
		t.Fatalf("Parseval violated: time %g freq/n %g", sumT, sumF/float64(n))
	}
}

func TestNonPowerOfTwoRejected(t *testing.T) {
	if err := FFT(make([]complex128, 12)); err == nil {
		t.Error("want error for n=12")
	}
	if err := IFFT(make([]complex128, 0)); err == nil {
		t.Error("want error for n=0")
	}
	if err := FFT2D(make([]complex128, 12), 4); err == nil {
		t.Error("want error for mismatched 2D grid")
	}
}

func TestFFT2DRoundTrip(t *testing.T) {
	n := 32
	rng := rand.New(rand.NewSource(3))
	x := make([]complex128, n*n)
	orig := make([]complex128, n*n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		orig[i] = x[i]
	}
	if err := FFT2D(x, n); err != nil {
		t.Fatal(err)
	}
	if err := IFFT2D(x, n); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
			t.Fatalf("2D round trip failed at %d", i)
		}
	}
}

func TestFFT2DPlaneWave(t *testing.T) {
	n := 16
	kx, ky := 3, 5
	x := make([]complex128, n*n)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			ph := 2 * math.Pi * (float64(kx*c) + float64(ky*r)) / float64(n)
			x[r*n+c] = cmplx.Exp(complex(0, ph))
		}
	}
	if err := FFT2D(x, n); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			want := complex(0, 0)
			if r == ky && c == kx {
				want = complex(float64(n*n), 0)
			}
			if cmplx.Abs(x[r*n+c]-want) > 1e-8 {
				t.Fatalf("plane wave bin (%d,%d) = %v", r, c, x[r*n+c])
			}
		}
	}
}

// Property: linearity of the transform.
func TestQuickLinearity(t *testing.T) {
	f := func(seed int64, ar, br float64) bool {
		if math.IsNaN(ar) || math.IsInf(ar, 0) || math.IsNaN(br) || math.IsInf(br, 0) {
			return true
		}
		a := complex(math.Mod(ar, 100), 0)
		b := complex(math.Mod(br, 100), 0)
		rng := rand.New(rand.NewSource(seed))
		n := 32
		x := make([]complex128, n)
		y := make([]complex128, n)
		z := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			y[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			z[i] = a*x[i] + b*y[i]
		}
		if FFT(x) != nil || FFT(y) != nil || FFT(z) != nil {
			return false
		}
		for i := range z {
			if cmplx.Abs(z[i]-(a*x[i]+b*y[i])) > 1e-8*(1+cmplx.Abs(z[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
