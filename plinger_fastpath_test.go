package plinger

import (
	"math"
	"reflect"
	"testing"
)

// fastBase is the established fast-path configuration (FastLOS + KRefine
// + FastEvolve) the LSpline/KBatch knobs compose on top of. NK is set past
// the k-quadrature convergence knee rather than at the production 130: at
// production resolution the exact path itself sits a few percent from the
// converged spectrum at low l (trapezoid aliasing of the oscillatory
// Theta_l^2 integrand), and that incoherent jitter — common to every
// projection of the same sweep but not interpolable across l — would mask
// the sub-1e-3 projection errors this test pins.
func fastBase() SpectrumOptions {
	return SpectrumOptions{LMaxCl: 150, NK: 400, FastLOS: true, FastEvolve: true, KRefine: 6}
}

// TestFastPathKnobsAccuracy: each new fast ingredient — spline-in-l
// projection and lockstep mode batching — and their composition must stay
// within the engine's 1e-3 relative C_l budget of the established fast
// path.
func TestFastPathKnobsAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("production-resolution sweeps are expensive")
	}
	m := scdmModel(t)
	ref, err := m.ComputeSpectrum(fastBase())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mod  func(*SpectrumOptions)
	}{
		{"lspline", func(o *SpectrumOptions) { o.LSpline = true }},
		{"kbatch", func(o *SpectrumOptions) { o.KBatch = 4 }},
		{"lspline+kbatch", func(o *SpectrumOptions) { o.LSpline = true; o.KBatch = 8 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			o := fastBase()
			c.mod(&o)
			got, err := m.ComputeSpectrum(o)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.L, ref.L) {
				t.Fatalf("multipole sets differ: %v vs %v", got.L, ref.L)
			}
			worst, worstL := 0.0, 0
			for i := range ref.Cl {
				rel := math.Abs(got.Cl[i]-ref.Cl[i]) / ref.Cl[i]
				if rel > worst {
					worst, worstL = rel, ref.L[i]
				}
			}
			t.Logf("worst relative C_l deviation %.2e at l=%d", worst, worstL)
			if worst > 1e-3 {
				t.Fatalf("worst relative C_l deviation %.3e at l=%d exceeds the 1e-3 contract", worst, worstL)
			}
		})
	}
}

// TestFastPathKnobsNoOp pins the degrade-to-identity contracts: KBatch 1
// is the scalar sweep bitwise, and LSpline on a request too small to
// amortise a spline is the exact projection bitwise (SafeLSpline clamps
// it to nil). Cheap enough to run in -short.
func TestFastPathKnobsNoOp(t *testing.T) {
	m := scdmModel(t)
	base := SpectrumOptions{LMaxCl: 40, NK: 60, Ls: []int{2, 5, 10, 20, 40},
		FastLOS: true, FastEvolve: true}
	ref, err := m.ComputeSpectrum(base)
	if err != nil {
		t.Fatal(err)
	}
	one := base
	one.KBatch = 1
	got, err := m.ComputeSpectrum(one)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref.Cl, got.Cl) {
		t.Fatal("KBatch = 1 is not bitwise the scalar sweep")
	}
	clamped := base
	clamped.LSpline = true // 5 requested multipoles: SafeLSpline must refuse
	got, err = m.ComputeSpectrum(clamped)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref.Cl, got.Cl) {
		t.Fatal("clamped LSpline is not bitwise the exact projection")
	}
}
