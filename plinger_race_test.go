package plinger

import (
	"sync"
	"testing"
)

// TestConcurrentRequestsOneModel exercises the Model concurrency contract
// the serving layer depends on: many goroutines computing spectra and
// matter power against one Model at once, through both the per-call pool
// and the long-lived shared pool, including the FastLOS path (which shares
// the process-wide Bessel kernel cache). Run it under -race; it also
// asserts the determinism contract by comparing every concurrent result
// against a sequential reference.
func TestConcurrentRequestsOneModel(t *testing.T) {
	m, err := New(SCDM())
	if err != nil {
		t.Fatal(err)
	}
	clOpts := SpectrumOptions{LMaxCl: 24, NK: 36, FastLOS: true, KRefine: 4}
	pkOpts := MatterPowerOptions{KMin: 1e-3, KMax: 0.1, NK: 8}

	refCl, err := m.ComputeSpectrum(clOpts)
	if err != nil {
		t.Fatal(err)
	}
	refPk, err := m.MatterPower(pkOpts)
	if err != nil {
		t.Fatal(err)
	}

	check := func(t *testing.T, workers int) {
		t.Helper()
		var wg sync.WaitGroup
		errs := make([]error, 2*workers)
		for g := 0; g < workers; g++ {
			wg.Add(2)
			go func(g int) {
				defer wg.Done()
				spec, err := m.ComputeSpectrum(clOpts)
				if err == nil {
					for i := range spec.Cl {
						if spec.Cl[i] != refCl.Cl[i] {
							t.Errorf("goroutine %d: C_l differs from the sequential reference at l=%d", g, spec.L[i])
							break
						}
					}
				}
				errs[2*g] = err
			}(g)
			go func(g int) {
				defer wg.Done()
				pk, err := m.MatterPower(pkOpts)
				if err == nil && pk.Sigma8 != refPk.Sigma8 {
					t.Errorf("goroutine %d: sigma8 %g != %g", g, pk.Sigma8, refPk.Sigma8)
				}
				errs[2*g+1] = err
			}(g)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
	}

	t.Run("per-call pools", func(t *testing.T) { check(t, 4) })

	m.EnableSharedPool(2)
	defer m.CloseSharedPool()
	t.Run("shared pool", func(t *testing.T) { check(t, 4) })
}
