// Package plinger is a Go reproduction of LINGER/PLINGER, the serial and
// parallel linear general-relativity codes of Bode & Bertschinger
// (Supercomputing '95): it integrates the coupled, linearized Einstein,
// Boltzmann and fluid equations that link the primeval fluctuations of the
// early universe to the cosmic microwave background anisotropies and the
// linear matter power spectrum observable today.
//
// The package exposes the high-level workflow of the paper:
//
//	cfg := plinger.SCDM()                  // standard Cold Dark Matter
//	m, err := plinger.New(cfg)             // background + thermodynamics
//	res, err := m.EvolveMode(plinger.ModeOptions{K: 0.05})
//	spec, err := m.ComputeSpectrum(plinger.SpectrumOptions{LMaxCl: 300})
//	spec.NormalizeCOBE(18)                 // Figure 2 normalization
//
// and the master/worker parallel decomposition over independent k modes:
//
//	run, err := m.RunParallel(plinger.ParallelOptions{Workers: 8, ...})
//
// The heavy lifting lives in the internal packages (core, cosmology,
// recomb, thermo, spectra, dispatch, mp, plinger, sky, serve); this facade
// re-exposes the stable subset an application needs. All parallel
// execution — shared-memory pool or master/worker message passing —
// routes through the dispatch subsystem. Model is safe for concurrent use
// (see its doc comment for the exact contract), which the serving daemon
// cmd/plingerd builds on. Command-line tools under cmd/ and runnable
// examples under examples/ exercise every part of it.
package plinger

import (
	"context"
	"fmt"
	"io"
	"runtime"

	"plinger/internal/core"
	"plinger/internal/cosmology"
	"plinger/internal/dispatch"
	"plinger/internal/expdata"
	"plinger/internal/farm"
	"plinger/internal/obs"
	"plinger/internal/recomb"
	"plinger/internal/sky"
	"plinger/internal/spectra"
	"plinger/internal/thermo"
)

// Trace is a sweep trace: a per-request recorder of named phase spans
// (evolve, source spline, projection, ...). Attach one via
// SpectrumOptions.Trace or MatterPowerOptions.Trace; a nil trace is the
// no-op sink, so instrumentation costs nothing when tracing is off. The
// serving daemon creates one per cold request and exposes recent traces at
// /v1/trace.
type Trace = obs.Trace

// NewTrace starts a trace; label names the request kind (e.g. "cl").
func NewTrace(label string) *Trace { return obs.NewTrace(label) }

// Config selects the cosmological model.
type Config struct {
	// H is the Hubble constant in units of 100 km/s/Mpc.
	H float64
	// OmegaC, OmegaB, OmegaLambda are the density parameters of cold dark
	// matter, baryons and the cosmological constant.
	OmegaC, OmegaB, OmegaLambda float64
	// TCMB is the CMB temperature in kelvin, YHe the helium mass fraction.
	TCMB, YHe float64
	// NNuMassless counts massless two-component neutrino species;
	// NNuMassive massive species of mass MNuEV (eV).
	NNuMassless float64
	NNuMassive  int
	MNuEV       float64
	// SpectralIndex is the primordial index n (1 = scale-invariant).
	SpectralIndex float64
	// Flatten absorbs any curvature into OmegaC (required for massive
	// neutrinos, whose density depends on the momentum integrals).
	Flatten bool
}

// SCDM returns the paper's standard Cold Dark Matter model
// (Omega = 1, h = 0.5, Omega_b = 0.05, n = 1).
func SCDM() Config {
	p := cosmology.SCDM()
	return Config{
		H: p.H, OmegaC: p.OmegaC, OmegaB: p.OmegaB, OmegaLambda: p.OmegaLambda,
		TCMB: p.TCMB, YHe: p.YHe, NNuMassless: p.NNuMassless,
		SpectralIndex: p.SpectralIndex,
	}
}

// MDM returns the mixed dark matter variant with one massive neutrino.
func MDM(massEV float64) Config {
	p := cosmology.MDM(massEV)
	return Config{
		H: p.H, OmegaC: p.OmegaC, OmegaB: p.OmegaB, OmegaLambda: p.OmegaLambda,
		TCMB: p.TCMB, YHe: p.YHe, NNuMassless: p.NNuMassless,
		NNuMassive: p.NNuMassive, MNuEV: p.MNuEV,
		SpectralIndex: p.SpectralIndex, Flatten: true,
	}
}

// Gauge selects the perturbation gauge.
type Gauge string

const (
	// Synchronous is the primary gauge of the original LINGER.
	Synchronous Gauge = "synchronous"
	// ConformalNewtonian is the longitudinal gauge.
	ConformalNewtonian Gauge = "newtonian"
)

func (g Gauge) internal() (core.Gauge, error) {
	switch g {
	case Synchronous, "":
		return core.Synchronous, nil
	case ConformalNewtonian:
		return core.ConformalNewtonian, nil
	default:
		return 0, fmt.Errorf("plinger: unknown gauge %q", string(g))
	}
}

// Model holds the precomputed background cosmology and thermodynamic
// history.
//
// Concurrency contract: a Model is immutable after New, and every compute
// method — EvolveMode, ComputeSpectrum, MatterPower, RunParallel — may be
// called concurrently from any number of goroutines. Sweep workers keep
// their per-mode integration state in worker-owned arenas inside the
// dispatch subsystem (never shared across goroutines); the shared
// substrate (background and thermodynamic spline tables, the process-wide
// bounded spherical-Bessel kernel cache) is either read-only or
// internally synchronized. The only
// configuration calls excluded from the contract are EnableSharedPool and
// CloseSharedPool, which install/tear down the long-lived dispatcher and
// must not race with in-flight compute calls. Results are deterministic:
// concurrent and sequential calls with equal options return bitwise-equal
// spectra (the dispatch subsystem's determinism contract).
type Model struct {
	cfg  Config
	prim spectra.Primordial
	core *core.Model
	// shared, when non-nil, is the long-lived pool every pool-transport
	// sweep routes through (see EnableSharedPool).
	shared *dispatch.SharedPool
	// farm, when non-nil, routes default-transport sweeps across the
	// multi-host worker fleet instead (see EnableFarm). It takes
	// precedence over shared.
	farm *farm.Supervisor
}

// New builds a model: Friedmann background (with massive-neutrino momentum
// integrals when requested), Saha+Peebles recombination, Thomson opacity
// and visibility tables.
func New(cfg Config) (*Model, error) {
	p := cosmology.Params{
		H: cfg.H, OmegaC: cfg.OmegaC, OmegaB: cfg.OmegaB,
		OmegaLambda: cfg.OmegaLambda, TCMB: cfg.TCMB, YHe: cfg.YHe,
		NNuMassless: cfg.NNuMassless, NNuMassive: cfg.NNuMassive,
		MNuEV: cfg.MNuEV, SpectralIndex: cfg.SpectralIndex,
	}
	var bg *cosmology.Background
	var err error
	if cfg.Flatten {
		bg, err = cosmology.NewFlattened(p)
	} else {
		bg, err = cosmology.New(p)
	}
	if err != nil {
		return nil, err
	}
	th, err := thermo.New(bg, recomb.Options{})
	if err != nil {
		return nil, err
	}
	n := cfg.SpectralIndex
	if n == 0 {
		n = 1
	}
	return &Model{cfg: cfg, prim: spectra.DefaultPrimordial(n), core: core.NewModel(bg, th)}, nil
}

// EnableSharedPool routes every subsequent pool-transport sweep (the
// default Transport) through one long-lived dispatch.SharedPool instead of
// spinning up a fresh worker pool per call: a long-running process serving
// many spectrum requests pays the pool start-up once, and concurrent sweeps
// interleave their wavenumbers onto the same workers instead of
// oversubscribing the machine. workers <= 0 uses GOMAXPROCS. While the
// shared pool is attached, the per-call Workers and Schedule options are
// ignored for pool-transport runs (message-passing transports are
// unaffected). Call it before the Model is shared between goroutines; it
// is not safe to race with in-flight compute calls.
func (m *Model) EnableSharedPool(workers int) {
	if m.shared == nil {
		m.shared = dispatch.NewSharedPool(m.core, workers)
	}
}

// CloseSharedPool stops the shared pool (if attached) and reverts to
// per-call pools. Like EnableSharedPool it must not race with in-flight
// compute calls.
func (m *Model) CloseSharedPool() {
	if m.shared != nil {
		m.shared.Close()
		m.shared = nil
	}
}

// EnableFarm routes every subsequent default-transport sweep across the
// given multi-host worker farm: the supervisor's plingerw fleet evolves
// the modes out of process, with PR 7 fault tolerance armed on every run.
// One supervisor serves any number of models (sweeps carry the model
// specification; workers cache per spec), so the farm is attached, not
// owned — the Model never closes it. Takes precedence over an attached
// shared pool. Like EnableSharedPool, call it before the Model is shared
// between goroutines.
func (m *Model) EnableFarm(f *farm.Supervisor) { m.farm = f }

// DisableFarm detaches the farm (without closing it) and reverts
// default-transport sweeps to the in-process pool.
func (m *Model) DisableFarm() { m.farm = nil }

// farmSpec is the wire form of this model's configuration, the key under
// which farm workers cache their replica of it.
func (m *Model) farmSpec() farm.ModelSpec {
	return farm.ModelSpec{
		H: m.cfg.H, OmegaC: m.cfg.OmegaC, OmegaB: m.cfg.OmegaB,
		OmegaLambda: m.cfg.OmegaLambda, TCMB: m.cfg.TCMB, YHe: m.cfg.YHe,
		NNuMassless: m.cfg.NNuMassless, NNuMassive: m.cfg.NNuMassive,
		MNuEV: m.cfg.MNuEV, SpectralIndex: m.cfg.SpectralIndex,
		Flatten: m.cfg.Flatten,
	}
}

// farmDispatcher adapts one (model, schedule) pair to the farm for a
// single sweep call; the Supervisor itself is model-agnostic.
type farmDispatcher struct {
	f     *farm.Supervisor
	spec  farm.ModelSpec
	model *core.Model
	sched dispatch.Schedule
	adapt bool
}

func (d *farmDispatcher) Run(ctx context.Context, ks []float64, mode core.Params) (*dispatch.Sweep, *dispatch.RunStats, error) {
	return d.f.Sweep(ctx, d.spec, d.model, ks, mode, d.sched, d.adapt)
}

// Tau0 returns the conformal age of the model in Mpc.
func (m *Model) Tau0() float64 { return m.core.BG.Tau0() }

// TauRecombination returns the conformal time of peak visibility (Mpc).
func (m *Model) TauRecombination() float64 { return m.core.TH.TauRec() }

// ModeOptions configures the evolution of one Fourier mode.
type ModeOptions struct {
	// K is the comoving wavenumber in Mpc^-1.
	K float64
	// LMax is the photon hierarchy cutoff (default 50).
	LMax int
	// Gauge selects synchronous (default) or conformal Newtonian.
	Gauge Gauge
	// RTol is the integrator's relative tolerance (default 1e-6).
	RTol float64
	// KeepSources records line-of-sight sources at every step.
	KeepSources bool
	// TauEnd stops the evolution early (default: the present).
	TauEnd float64
	// FastEvolve runs the fast evolution engine: the moment hierarchies
	// start small and grow with k*tau, the background and thermodynamics
	// come from flattened per-model tables, and the integrator uses PI
	// step control. Same accuracy contract as SpectrumOptions.FastEvolve.
	FastEvolve bool
}

func (o ModeOptions) internal() (core.Params, error) {
	g, err := o.Gauge.internal()
	if err != nil {
		return core.Params{}, err
	}
	lmax := o.LMax
	if lmax == 0 {
		lmax = 50
	}
	return core.Params{
		K: o.K, LMax: lmax, Gauge: g, RTol: o.RTol,
		KeepSources: o.KeepSources, TauEnd: o.TauEnd,
		FastEvolve: o.FastEvolve,
	}, nil
}

// ModeResult is the outcome of evolving one mode: the multipole transfer
// functions and fluid perturbations at the final time.
type ModeResult struct {
	K      float64
	Tau, A float64
	// ThetaL and ThetaPL are the temperature and polarization multipole
	// transfer functions Theta_l = F_l/4 per unit primordial amplitude.
	ThetaL, ThetaPL []float64
	// Density contrasts and velocities.
	DeltaC, DeltaB, DeltaG, DeltaNu, DeltaHNu float64
	ThetaB                                    float64
	// Metric potentials (gauge-dependent; Phi/Psi for Newtonian runs,
	// Eta/HDot for synchronous).
	Phi, Psi, Eta, HDot float64
	// ConstraintResidual is the worst relative violation of the unused
	// Einstein equation — the accuracy monitor.
	ConstraintResidual float64
	// Steps and Evals describe the integrator work; Flops applies the
	// operation-count model; Seconds is the wallclock cost.
	Steps, Evals int
	Flops        float64
	Seconds      float64
}

func wrapResult(r *core.Result) *ModeResult {
	return &ModeResult{
		K: r.K, Tau: r.Tau, A: r.A,
		ThetaL: r.ThetaL, ThetaPL: r.ThetaPL,
		DeltaC: r.DeltaC, DeltaB: r.DeltaB, DeltaG: r.DeltaG,
		DeltaNu: r.DeltaNu, DeltaHNu: r.DeltaHNu, ThetaB: r.ThetaB,
		Phi: r.Phi, Psi: r.Psi, Eta: r.Eta, HDot: r.HDot,
		ConstraintResidual: r.MaxConstraintResidual,
		Steps:              r.Stats.Steps, Evals: r.Stats.Evals,
		Flops: r.Flops, Seconds: r.Seconds,
	}
}

// EvolveMode integrates one k mode from the early radiation era to the
// present (the serial LINGER computation for a single wavenumber).
func (m *Model) EvolveMode(o ModeOptions) (*ModeResult, error) {
	p, err := o.internal()
	if err != nil {
		return nil, err
	}
	if p.FastEvolve {
		// Build the shared flattened tables in parallel on first use.
		m.core.EnsureEvalTables(dispatch.ParallelFor)
	}
	r, err := m.core.Evolve(p)
	if err != nil {
		return nil, err
	}
	return wrapResult(r), nil
}

// Spectrum is an angular power spectrum (thermodynamic temperature units
// after COBE normalization).
type Spectrum struct {
	L  []int
	Cl []float64

	inner *spectra.ClSpectrum
}

// BandPower returns dT_l = T0 sqrt(l(l+1)C_l/2pi) in microkelvin.
func (s *Spectrum) BandPower(i int) float64 { return s.inner.BandPower(i) }

// NormalizeCOBE rescales to the COBE Q_rms-PS quadrupole (microkelvin),
// returning the applied primordial amplitude.
func (s *Spectrum) NormalizeCOBE(qMicroK float64) (float64, error) {
	sc, err := s.inner.NormalizeCOBE(qMicroK)
	if err != nil {
		return 0, err
	}
	copy(s.Cl, s.inner.Cl)
	return sc, nil
}

// SpectrumOptions configures a C_l computation.
type SpectrumOptions struct {
	// LMaxCl is the largest multipole wanted (default 300).
	LMaxCl int
	// Ls lists the multipoles to evaluate (default: log-spaced 2..LMaxCl).
	Ls []int
	// NK is the wavenumber grid size (default 4 per multipole octave
	// resolution: LMaxCl + 200 points).
	NK int
	// Workers bounds the shared-memory parallelism (default GOMAXPROCS).
	Workers int
	// Method selects "los" (fast line-of-sight, default) or "brute"
	// (the paper's full-hierarchy read-off).
	Method string
	// LMax is the hierarchy cutoff: default 24 for los; for brute the
	// per-k cutoff adapts up to max(1.5 k tau0)+60.
	LMax int
	// Polarization computes the polarization spectrum from the G_l
	// hierarchy instead of temperature (brute method only; the paper's
	// Thomson treatment includes "two photon polarizations").
	Polarization bool
	// Transport selects the execution backend: "" or "pool" runs the
	// shared-memory worker pool; "chan", "fifo" or "tcp" runs a full
	// PLINGER master/worker decomposition over that mp transport. The
	// spectrum is identical in every case.
	Transport string
	// Schedule is the hand-out order: "largest-first" (default, the
	// paper's policy), "input-order" or "smallest-first".
	Schedule string
	// FastLOS switches the los method to the table-driven projection:
	// spherical Bessel kernels from the process-shared spline tables
	// (built in parallel and cached across calls), only the requested
	// multipoles evaluated, and each multipole's time integral truncated
	// at the kernel turning point. Agrees with the reference path to
	// < 1e-3 relative in C_l. Default off: the exact reference path runs.
	FastLOS bool
	// KRefine > 1 evolves the Boltzmann ODEs only on a coarse wavenumber
	// grid of ~NK/KRefine modes and cubic-splines the recorded sources in
	// k onto the full NK-point quadrature grid (the CMBFAST trick; the
	// sources vary slowly in k even though Theta_l(k) oscillates).
	// KRefine 6 cuts the evolution cost ~6x at < 1e-3 relative error in
	// C_l. 0 or 1 disables refinement. los method only.
	KRefine int
	// FastEvolve switches the per-mode Einstein-Boltzmann integration to
	// the fast evolution engine: the photon/polarization/neutrino moment
	// hierarchies start at a few moments and grow with k*tau, the
	// background and thermodynamic history come from flattened per-model
	// lookup tables, and the integrator runs PI step-size control. Like
	// FastLOS and KRefine it stays within the engine's 1e-3 relative C_l
	// budget (the measured full fast path deviates by a few 1e-4; the
	// golden tests enforce the bound) and is off by default: the exact
	// path remains the reference implementation. los method only.
	FastEvolve bool
	// LSpline projects the line-of-sight integral only on a coarse
	// multipole ladder that resolves the acoustic oscillation of C_l
	// (densified around the peaks) and cubic-splines l(l+1)C_l onto the
	// requested multipoles, shrinking the projection work and the Bessel
	// table footprint by the same factor. SafeLSpline degrades the run to
	// exact projection whenever the request is too small or too coarse for
	// the spline to pay for itself or to hold the engine's 1e-3 relative
	// C_l budget. Requires FastLOS; los method only; off by default.
	LSpline bool
	// KBatch > 1 evolves blocks of KBatch neighbouring wavenumbers in
	// lockstep per worker, sharing one background/thermodynamics lookup
	// per right-hand-side evaluation across the block. The blocks couple
	// the members through the shared step controller, so results shift at
	// the integrator-tolerance level (~1e-4 of the multipole scale), well
	// inside the 1e-3 budget; 0 or 1 disables batching and reproduces the
	// scalar sweep bitwise. los method only.
	KBatch int
	// Trace, when non-nil, records the computation's phases (evolve,
	// source_spline, project, lspline, bessel_tables plus the dispatch-level
	// eval_tables and modes) as spans. Nil costs nothing.
	Trace *Trace
}

// maxKBatch caps the lockstep batch width: beyond this the members' k
// ranges are too wide to share a tight-coupling window efficiently and
// the batch state stops fitting hot caches.
const maxKBatch = 32

// validTransport checks the execution-backend name shared by
// SpectrumOptions, MatterPowerOptions and ParallelOptions.
func validTransport(transport string) error {
	switch transport {
	case "", "pool", "chan", "fifo", "tcp":
		return nil
	default:
		return fmt.Errorf("plinger: unknown transport %q (want pool, chan, fifo or tcp)", transport)
	}
}

// Validate reports the first option that would request a meaningless
// computation. Zero values always validate (they select documented
// defaults); genuinely bad values — negative sizes, grids too small for the
// quadrature, unknown method/transport/schedule names, inconsistent method
// combinations — return errors instead of being silently clamped.
// ComputeSpectrum calls it first, so callers only need it to fail early.
func (o SpectrumOptions) Validate() error {
	if o.LMaxCl < 0 {
		return fmt.Errorf("plinger: LMaxCl = %d is negative (0 selects the default)", o.LMaxCl)
	}
	if o.NK < 0 {
		return fmt.Errorf("plinger: NK = %d is negative (0 selects the default)", o.NK)
	}
	if o.NK > 0 && o.NK < 3 {
		return fmt.Errorf("plinger: NK = %d is too small: the k quadrature needs at least 3 points", o.NK)
	}
	if o.LMax < 0 {
		return fmt.Errorf("plinger: LMax = %d is negative (0 selects the default)", o.LMax)
	}
	if o.Workers < 0 {
		return fmt.Errorf("plinger: Workers = %d is negative (0 uses GOMAXPROCS)", o.Workers)
	}
	if o.KRefine < 0 {
		return fmt.Errorf("plinger: KRefine = %d is negative (0 or 1 disables refinement)", o.KRefine)
	}
	if o.KBatch < 0 {
		return fmt.Errorf("plinger: KBatch = %d is negative (0 or 1 disables batching)", o.KBatch)
	}
	if o.KBatch > maxKBatch {
		return fmt.Errorf("plinger: KBatch = %d exceeds the cap of %d modes per lockstep batch", o.KBatch, maxKBatch)
	}
	// The quadrature, the spline-in-l ladder and the Bessel tables all
	// assume a strictly increasing multipole request; a duplicate or
	// out-of-order entry is a caller bug, not a preference.
	for i, l := range o.Ls {
		if l < 2 {
			return fmt.Errorf("plinger: requested multipole l = %d (C_l starts at the quadrupole, l = 2)", l)
		}
		if i > 0 && l == o.Ls[i-1] {
			return fmt.Errorf("plinger: duplicate multipole l = %d in Ls", l)
		}
		if i > 0 && l < o.Ls[i-1] {
			return fmt.Errorf("plinger: Ls must be strictly increasing (l = %d after l = %d)", l, o.Ls[i-1])
		}
	}
	// The k quadrature only resolves multipoles up to LMaxCl (its default
	// when unset included), so larger requests would silently come back
	// wrong rather than slow.
	lmaxCl := o.LMaxCl
	if lmaxCl == 0 {
		lmaxCl = 300
	}
	for _, l := range o.Ls {
		if l > lmaxCl {
			return fmt.Errorf("plinger: requested multipole l = %d exceeds LMaxCl = %d", l, lmaxCl)
		}
	}
	method := o.Method
	if method == "" {
		method = "los"
	}
	switch method {
	case "los":
		if o.Polarization {
			return fmt.Errorf("plinger: polarization requires Method \"brute\"")
		}
		if o.LSpline && !o.FastLOS {
			return fmt.Errorf("plinger: LSpline requires FastLOS (it splines the table-driven projection)")
		}
	case "brute":
		if o.FastLOS {
			return fmt.Errorf("plinger: FastLOS applies to Method \"los\" only")
		}
		if o.KRefine > 1 {
			return fmt.Errorf("plinger: KRefine applies to Method \"los\" only")
		}
		if o.FastEvolve {
			return fmt.Errorf("plinger: FastEvolve applies to Method \"los\" only")
		}
		if o.LSpline {
			return fmt.Errorf("plinger: LSpline applies to Method \"los\" only")
		}
		if o.KBatch > 1 {
			return fmt.Errorf("plinger: KBatch applies to Method \"los\" only")
		}
	default:
		return fmt.Errorf("plinger: unknown method %q (want los or brute)", o.Method)
	}
	if err := validTransport(o.Transport); err != nil {
		return err
	}
	if _, err := dispatch.ParseSchedule(o.Schedule); err != nil {
		return fmt.Errorf("plinger: unknown schedule %q", o.Schedule)
	}
	return nil
}

// Validate is the MatterPowerOptions analogue of SpectrumOptions.Validate:
// zero values select defaults, bad values return errors. MatterPower calls
// it first.
func (o MatterPowerOptions) Validate() error {
	if o.KMin < 0 {
		return fmt.Errorf("plinger: KMin = %g is negative (0 selects the default)", o.KMin)
	}
	if o.KMax < 0 {
		return fmt.Errorf("plinger: KMax = %g is negative (0 selects the default)", o.KMax)
	}
	if o.KMin > 0 && o.KMax > 0 && o.KMax <= o.KMin {
		return fmt.Errorf("plinger: KMax = %g does not exceed KMin = %g", o.KMax, o.KMin)
	}
	if o.NK < 0 {
		return fmt.Errorf("plinger: NK = %d is negative (0 selects the default)", o.NK)
	}
	if o.NK > 0 && o.NK < 3 {
		return fmt.Errorf("plinger: NK = %d is too small: the k grid needs at least 3 points", o.NK)
	}
	if o.Workers < 0 {
		return fmt.Errorf("plinger: Workers = %d is negative (0 uses GOMAXPROCS)", o.Workers)
	}
	if o.Amp < 0 {
		return fmt.Errorf("plinger: Amp = %g is negative (0 means unit amplitude)", o.Amp)
	}
	if err := validTransport(o.Transport); err != nil {
		return err
	}
	if _, err := dispatch.ParseSchedule(o.Schedule); err != nil {
		return fmt.Errorf("plinger: unknown schedule %q", o.Schedule)
	}
	return nil
}

// newDispatcher builds the execution backend for a sweep. The returned
// cleanup must be called after the run.
func (m *Model) newDispatcher(transport, schedule string, workers int, adaptLMax bool) (dispatch.Dispatcher, func(), error) {
	sched, err := dispatch.ParseSchedule(schedule)
	if err != nil {
		return nil, nil, fmt.Errorf("plinger: unknown schedule %q", schedule)
	}
	switch transport {
	case "", "pool":
		if m.farm != nil {
			return &farmDispatcher{
				f: m.farm, spec: m.farmSpec(), model: m.core,
				sched: sched, adapt: adaptLMax,
			}, func() {}, nil
		}
		if m.shared != nil && !adaptLMax {
			return m.shared, func() {}, nil
		}
		return &dispatch.Pool{
			Model: m.core, Workers: workers, Schedule: sched, AdaptLMax: adaptLMax,
		}, func() {}, nil
	case "chan", "fifo", "tcp":
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		d, cleanup, err := dispatch.NewMP(m.core, transport, workers)
		if err != nil {
			return nil, nil, err
		}
		d.Schedule = sched
		d.AdaptLMax = adaptLMax
		return d, cleanup, nil
	default:
		return nil, nil, fmt.Errorf("plinger: unknown transport %q", transport)
	}
}

// ComputeSpectrum runs the k sweep and assembles C_l. It validates o first
// (see SpectrumOptions.Validate) and is safe for concurrent callers.
func (m *Model) ComputeSpectrum(o SpectrumOptions) (*Spectrum, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if o.LMaxCl <= 0 {
		o.LMaxCl = 300
	}
	ls := o.Ls
	if len(ls) == 0 {
		ls = spectra.DefaultLs(o.LMaxCl)
	}
	nk := o.NK
	if nk <= 0 {
		nk = o.LMaxCl + 200
	}
	tau0 := m.Tau0()
	ks := spectra.ClGrid(o.LMaxCl, tau0, nk)
	method := o.Method
	if method == "" {
		method = "los"
	}
	switch method {
	case "los":
		lmax := o.LMax
		if lmax == 0 {
			lmax = 24
		}
		kRefine := o.KRefine
		if kRefine < 1 {
			kRefine = 1
		}
		// Coarse-to-fine: evolve the ODEs on ~NK/KRefine wavenumbers (plus
		// a cheap log-spaced head) and spline the sources in k onto the
		// full grid afterwards. The refined uniform grid is exactly ks.
		// SafeKRefine caps the factor where a small NK would leave the
		// coarse grid unable to resolve the sources' acoustic oscillation;
		// if the capped coarse grid (log head included) is not actually
		// smaller than the requested grid, refinement cannot pay for
		// itself and the run falls back to the plain NK-point sweep.
		tauRec := m.core.TH.TauRec()
		kRefine = spectra.SafeKRefine(kRefine, nk, ks[0], ks[len(ks)-1], tauRec)
		ksRun := ks
		if kRefine > 1 {
			if coarse := spectra.RefineCoarseGrid(ks, kRefine); len(coarse) < nk {
				ksRun = coarse
			} else {
				kRefine = 1
			}
		}
		// Spline-in-l: project only a coarse multipole ladder and spline
		// l(l+1)C_l onto the full request afterwards. SafeLSpline returns
		// nil — and the run projects exactly — whenever the coarse ladder
		// cannot pay for itself or hold the 1e-3 budget.
		lsProj := ls
		if o.LSpline {
			if coarse := spectra.SafeLSpline(ls, tauRec, tau0); coarse != nil {
				lsProj = coarse
			}
		}
		d, cleanup, err := m.newDispatcher(o.Transport, o.Schedule, o.Workers, false)
		if err != nil {
			return nil, err
		}
		defer cleanup()
		tr := o.Trace
		var besselWait func()
		if o.FastLOS {
			// Warm the shared Bessel kernel table concurrently with the
			// sweep, via the dispatcher's prebuild hook when it has one.
			// The shared pool serves concurrent runs, so its hooks cannot
			// be set per run; the facade warms caller-side instead. Under
			// LSpline only the coarse ladder's rows are ever needed.
			warm := func() {
				sp := tr.Start("bessel_tables")
				spectra.PrewarmBesselTable(lsProj, ks[len(ks)-1], tau0)
				sp.End()
			}
			switch dd := d.(type) {
			case *dispatch.Pool:
				dd.Prebuild = warm
			case *dispatch.MP:
				dd.Prebuild = warm
			default:
				besselWait = dispatch.StartPrebuild(warm)
				defer besselWait()
			}
		}
		// The evolve span covers the whole sweep including the concurrent
		// Bessel prewarm wait, so a cold request's wall time decomposes into
		// non-overlapping top-level spans (evolve, source_spline, project,
		// lspline); bessel_tables and the dispatch-level spans are nested
		// detail inside it.
		spEvolve := tr.Start("evolve")
		sw, _, err := spectra.RunSweepTraced(tr, d, ksRun, core.Params{
			LMax: lmax, Gauge: core.ConformalNewtonian, KeepSources: true,
			FastEvolve: o.FastEvolve, KBatch: o.KBatch,
		})
		if err != nil {
			return nil, err
		}
		if besselWait != nil {
			// The table-driven projection needs the warmed rows anyway;
			// waiting here books any remaining warm time under evolve
			// instead of leaving an unattributed tail after projection.
			besselWait()
		}
		spEvolve.End()
		if kRefine > 1 && len(ksRun) < nk {
			sp := tr.Start("source_spline")
			sw, err = sw.RefineK(nk, tauRec)
			sp.End()
			if err != nil {
				return nil, err
			}
		}
		var cl *spectra.ClSpectrum
		if o.FastLOS {
			sp := tr.Start("project")
			cl, err = sw.ClLOSFast(lsProj, m.prim, m.cfg.TCMB, tauRec)
			sp.End()
			if err == nil && len(lsProj) != len(ls) {
				sp := tr.Start("lspline")
				cl, err = spectra.SplineCl(cl, ls)
				sp.End()
			}
		} else {
			sp := tr.Start("project")
			cl, err = sw.ClLOS(ls, m.prim, m.cfg.TCMB, tauRec)
			sp.End()
		}
		if err != nil {
			return nil, err
		}
		return &Spectrum{L: cl.L, Cl: cl.Cl, inner: cl}, nil
	case "brute":
		lmax := o.LMax
		if lmax == 0 {
			lmax = int(1.5*ks[len(ks)-1]*tau0) + 60
		}
		d, cleanup, err := m.newDispatcher(o.Transport, o.Schedule, o.Workers, true)
		if err != nil {
			return nil, err
		}
		defer cleanup()
		tr := o.Trace
		spEvolve := tr.Start("evolve")
		sw, _, err := spectra.RunSweepTraced(tr, d, ks, core.Params{
			LMax: lmax, Gauge: core.Synchronous,
		})
		spEvolve.End()
		if err != nil {
			return nil, err
		}
		spProj := tr.Start("project")
		var cl *spectra.ClSpectrum
		if o.Polarization {
			cl, err = sw.ClPolarization(ls, m.prim, m.cfg.TCMB)
		} else {
			cl, err = sw.Cl(ls, m.prim, m.cfg.TCMB)
		}
		spProj.End()
		if err != nil {
			return nil, err
		}
		return &Spectrum{L: cl.L, Cl: cl.Cl, inner: cl}, nil
	default:
		return nil, fmt.Errorf("plinger: unknown method %q", method)
	}
}

// MatterPowerResult bundles the transfer function and power spectrum.
type MatterPowerResult struct {
	K      []float64
	T      []float64 // normalized transfer function
	P      []float64 // power spectrum, Mpc^3 (per primordial amplitude)
	Sigma8 float64
}

// MatterPowerOptions configures a matter power spectrum computation.
type MatterPowerOptions struct {
	// KMin and KMax bound the logarithmic k grid (defaults 2e-4, 0.5).
	KMin, KMax float64
	// NK is the number of grid points (default 40).
	NK int
	// Workers bounds the parallelism (default GOMAXPROCS).
	Workers int
	// Amp is the primordial amplitude, typically the value returned by
	// NormalizeCOBE (<= 0 means unit amplitude).
	Amp float64
	// Transport and Schedule select the execution backend, as in
	// SpectrumOptions.
	Transport, Schedule string
	// Trace, when non-nil, records the computation's phases (evolve,
	// postprocess) as spans. Nil costs nothing.
	Trace *Trace
}

// MatterPower computes the matter transfer function, power spectrum and
// sigma_8 on a logarithmic k grid. It validates o first (see
// MatterPowerOptions.Validate) and is safe for concurrent callers.
func (m *Model) MatterPower(o MatterPowerOptions) (*MatterPowerResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if o.KMin <= 0 {
		o.KMin = 2e-4
	}
	if o.KMax <= o.KMin {
		o.KMax = 0.5
	}
	if o.NK <= 0 {
		o.NK = 40
	}
	ks := spectra.LogGrid(o.KMin, o.KMax, o.NK)
	d, cleanup, err := m.newDispatcher(o.Transport, o.Schedule, o.Workers, false)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	tr := o.Trace
	spEvolve := tr.Start("evolve")
	sw, _, err := spectra.RunSweepTraced(tr, d, ks, core.Params{LMax: 24, Gauge: core.Synchronous})
	spEvolve.End()
	if err != nil {
		return nil, err
	}
	spPost := tr.Start("postprocess")
	defer spPost.End()
	tf, err := sw.MatterTransfer(m.cfg.OmegaC, m.cfg.OmegaB)
	if err != nil {
		return nil, err
	}
	prim := m.prim
	if o.Amp > 0 {
		prim.Amp = o.Amp
	}
	pk, err := sw.PowerSpectrum(prim, m.cfg.OmegaC, m.cfg.OmegaB)
	if err != nil {
		return nil, err
	}
	s8, err := sw.Sigma8(pk, m.cfg.H)
	if err != nil {
		return nil, err
	}
	return &MatterPowerResult{K: tf.K, T: tf.T, P: pk, Sigma8: s8}, nil
}

// ParallelOptions configures a PLINGER master/worker run.
type ParallelOptions struct {
	// KValues are the wavenumbers to distribute.
	KValues []float64
	// Workers is the number of worker processes (the master is extra).
	Workers int
	// LMax, Gauge, RTol as in ModeOptions.
	LMax  int
	Gauge Gauge
	RTol  float64
	// Schedule: "largest-first" (default, the paper's policy),
	// "input-order" or "smallest-first".
	Schedule string
	// Transport selects the mp transport: "chan" (default, in-process),
	// "fifo" (strict arrival-order, the MPL model) or "tcp" (a loopback
	// PVM-style hub).
	Transport string
	// AdaptLMax reduces the hierarchy cutoff per wavenumber via the
	// paper's k tau_0 criterion, shrinking both CPU time and messages
	// for small k.
	AdaptLMax bool
	// ASCIIOut and BinaryOut receive the unit_1/unit_2 style outputs.
	ASCIIOut, BinaryOut io.Writer
}

// WorkerLoad is the per-worker share of a parallel run (Figure 1).
type WorkerLoad struct {
	Rank        int
	Modes       int
	BusySeconds float64
	Flops       float64
}

// ParallelRun is the master's collected output plus the run telemetry.
type ParallelRun struct {
	Results []*ModeResult
	// Backend names the dispatcher used (e.g. "mp/chan").
	Backend string
	// Wallclock and TotalCPU in seconds; Efficiency is the paper's
	// (total CPU)/(wallclock x workers); FlopRate in flop/s.
	Wallclock, TotalCPU, Efficiency, FlopRate float64
	// BytesMoved is the message payload volume.
	BytesMoved int64
	// Workers is the per-worker accounting, sorted by rank.
	Workers []WorkerLoad
}

// RunParallel executes the paper's Appendix A algorithm: a master and
// Workers worker goroutines exchanging tagged messages over the chosen
// transport. Results are deterministic and independent of Workers,
// Schedule and Transport.
func (m *Model) RunParallel(o ParallelOptions) (*ParallelRun, error) {
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if len(o.KValues) == 0 {
		return nil, fmt.Errorf("plinger: no wavenumbers")
	}
	g, err := o.Gauge.internal()
	if err != nil {
		return nil, err
	}
	lmax := o.LMax
	if lmax == 0 {
		lmax = 50
	}
	sched, err := dispatch.ParseSchedule(o.Schedule)
	if err != nil {
		return nil, fmt.Errorf("plinger: unknown schedule %q", o.Schedule)
	}
	d, cleanup, err := dispatch.NewMP(m.core, o.Transport, o.Workers)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	d.Schedule = sched
	d.AdaptLMax = o.AdaptLMax
	d.ASCIIOut, d.BinaryOut = o.ASCIIOut, o.BinaryOut
	mode := core.Params{LMax: lmax, Gauge: g, RTol: o.RTol}
	sw, st, err := d.Run(context.Background(), o.KValues, mode)
	if err != nil {
		return nil, err
	}
	out := &ParallelRun{
		Backend:    st.Backend,
		Wallclock:  st.Wallclock,
		TotalCPU:   st.TotalCPU,
		Efficiency: st.Efficiency,
		FlopRate:   st.FlopRate,
		BytesMoved: st.BytesMoved,
	}
	for _, w := range st.Workers {
		out.Workers = append(out.Workers, WorkerLoad{
			Rank: w.Rank, Modes: w.Modes, BusySeconds: w.Seconds, Flops: w.Flops,
		})
	}
	for _, r := range sw.Results {
		out.Results = append(out.Results, wrapResult(r))
	}
	return out, nil
}

// SkyMap synthesizes a Gaussian temperature map from a spectrum: a full-sky
// COBE-like map when flat is false, or the paper's half-degree flat patch
// (Figure 3) when flat is true.
type SkyMapOptions struct {
	Flat bool
	// N is the pixel count (full sky: rows; flat: side, power of two).
	N int
	// SizeDeg is the flat patch side in degrees (default 32).
	SizeDeg float64
	// LMaxSynthesis caps the full-sky synthesis (default 60).
	LMaxSynthesis int
	Seed          int64
}

// SkyMapResult is a rendered map in microkelvin.
type SkyMapResult struct {
	Pix        [][]float64
	NX, NY     int
	Min, Max   float64
	RMS        float64
	Desc       string
	writeGuard *sky.Map
}

// WritePGM renders the map to an 8-bit PGM (scale <= 0 auto-scales).
func (r *SkyMapResult) WritePGM(w io.Writer, scale float64) error {
	return r.writeGuard.WritePGM(w, scale)
}

// MakeSkyMap realizes a map from the spectrum.
func MakeSkyMap(spec *Spectrum, tcmb float64, o SkyMapOptions) (*SkyMapResult, error) {
	in := &sky.Spectrum{L: spec.L, Cl: spec.Cl, TCMB: tcmb}
	var mp *sky.Map
	var err error
	if o.Flat {
		n := o.N
		if n == 0 {
			n = 128
		}
		size := o.SizeDeg
		if size == 0 {
			size = 32
		}
		mp, err = sky.FlatPatch(in, n, size, o.Seed)
	} else {
		n := o.N
		if n == 0 {
			n = 64
		}
		lmax := o.LMaxSynthesis
		if lmax == 0 {
			lmax = 60
		}
		mp, err = sky.FullSky(in, lmax, n, o.Seed)
	}
	if err != nil {
		return nil, err
	}
	mn, mx, rms := mp.Stats()
	return &SkyMapResult{
		Pix: mp.Pix, NX: mp.NX, NY: mp.NY,
		Min: mn, Max: mx, RMS: rms, Desc: mp.Desc, writeGuard: mp,
	}, nil
}

// BandPowerPoint is one experimental CMB measurement from the Figure 2
// compilation.
type BandPowerPoint struct {
	Experiment     string
	LEff           float64
	DT             float64 // microkelvin
	ErrUp, ErrDown float64
}

// ExperimentPoints returns the era's measured CMB band powers (the points
// of Figure 2).
func ExperimentPoints() []BandPowerPoint {
	var out []BandPowerPoint
	for _, p := range expdata.Points() {
		out = append(out, BandPowerPoint{
			Experiment: p.Experiment, LEff: p.LEff, DT: p.DT,
			ErrUp: p.ErrUp, ErrDown: p.ErrDown,
		})
	}
	return out
}
