package plinger

import (
	"strings"
	"testing"
)

func TestSpectrumOptionsValidate(t *testing.T) {
	cases := []struct {
		name string
		o    SpectrumOptions
		want string // "" means valid
	}{
		{"zero defaults", SpectrumOptions{}, ""},
		{"typical", SpectrumOptions{LMaxCl: 60, NK: 60, FastLOS: true, KRefine: 6}, ""},
		{"brute", SpectrumOptions{LMaxCl: 20, NK: 40, Method: "brute", Polarization: true}, ""},
		{"explicit ls", SpectrumOptions{LMaxCl: 30, Ls: []int{2, 10, 30}}, ""},
		{"all transports", SpectrumOptions{Transport: "tcp", Schedule: "smallest-first"}, ""},
		{"negative LMaxCl", SpectrumOptions{LMaxCl: -1}, "LMaxCl"},
		{"negative NK", SpectrumOptions{NK: -5}, "NK"},
		{"tiny NK", SpectrumOptions{NK: 2}, "NK"},
		{"negative LMax", SpectrumOptions{LMax: -3}, "LMax"},
		{"negative Workers", SpectrumOptions{Workers: -1}, "Workers"},
		{"negative KRefine", SpectrumOptions{KRefine: -2}, "KRefine"},
		{"monopole requested", SpectrumOptions{Ls: []int{0, 2}}, "quadrupole"},
		{"l beyond LMaxCl", SpectrumOptions{LMaxCl: 20, Ls: []int{2, 40}}, "exceeds"},
		{"unknown method", SpectrumOptions{Method: "magic"}, "method"},
		{"los polarization", SpectrumOptions{Polarization: true}, "polarization"},
		{"brute fastlos", SpectrumOptions{Method: "brute", FastLOS: true}, "FastLOS"},
		{"brute krefine", SpectrumOptions{Method: "brute", KRefine: 4}, "KRefine"},
		{"brute fastevolve", SpectrumOptions{Method: "brute", FastEvolve: true}, "FastEvolve"},
		{"los fastevolve", SpectrumOptions{FastEvolve: true, FastLOS: true, KRefine: 6}, ""},
		{"los lspline", SpectrumOptions{FastLOS: true, LSpline: true}, ""},
		{"los kbatch", SpectrumOptions{KBatch: 8, FastEvolve: true}, ""},
		{"duplicate ls", SpectrumOptions{LMaxCl: 30, Ls: []int{2, 10, 10, 30}}, "duplicate"},
		{"unsorted ls", SpectrumOptions{LMaxCl: 30, Ls: []int{2, 30, 10}}, "increasing"},
		{"l beyond default LMaxCl", SpectrumOptions{Ls: []int{2, 400}}, "exceeds"},
		{"negative kbatch", SpectrumOptions{KBatch: -2}, "KBatch"},
		{"kbatch beyond cap", SpectrumOptions{KBatch: 64}, "KBatch"},
		{"lspline without fastlos", SpectrumOptions{LSpline: true}, "FastLOS"},
		{"brute lspline", SpectrumOptions{Method: "brute", FastLOS: false, LSpline: true}, "LSpline"},
		{"brute kbatch", SpectrumOptions{Method: "brute", KBatch: 4}, "KBatch"},
		{"unknown transport", SpectrumOptions{Transport: "telegraph"}, "transport"},
		{"unknown schedule", SpectrumOptions{Schedule: "alphabetical"}, "schedule"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.o.Validate()
			if c.want == "" {
				if err != nil {
					t.Fatalf("valid options rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("bad options accepted: %+v", c.o)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestMatterPowerOptionsValidate(t *testing.T) {
	cases := []struct {
		name string
		o    MatterPowerOptions
		want string
	}{
		{"zero defaults", MatterPowerOptions{}, ""},
		{"typical", MatterPowerOptions{KMin: 1e-3, KMax: 0.3, NK: 24, Amp: 2e-9}, ""},
		{"negative KMin", MatterPowerOptions{KMin: -1e-3}, "KMin"},
		{"negative KMax", MatterPowerOptions{KMax: -0.5}, "KMax"},
		{"inverted range", MatterPowerOptions{KMin: 0.5, KMax: 0.1}, "KMax"},
		{"negative NK", MatterPowerOptions{NK: -1}, "NK"},
		{"tiny NK", MatterPowerOptions{NK: 2}, "NK"},
		{"negative Workers", MatterPowerOptions{Workers: -4}, "Workers"},
		{"negative Amp", MatterPowerOptions{Amp: -1}, "Amp"},
		{"unknown transport", MatterPowerOptions{Transport: "smoke"}, "transport"},
		{"unknown schedule", MatterPowerOptions{Schedule: "random"}, "schedule"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.o.Validate()
			if c.want == "" {
				if err != nil {
					t.Fatalf("valid options rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("bad options accepted: %+v", c.o)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

// TestComputeMethodsValidateFirst checks the compute entry points reject bad
// options before doing any work (the daemon depends on fast-fail here).
func TestComputeMethodsValidateFirst(t *testing.T) {
	m := scdmModel(t)
	if _, err := m.ComputeSpectrum(SpectrumOptions{LMaxCl: -7}); err == nil {
		t.Fatal("negative LMaxCl accepted")
	}
	if _, err := m.ComputeSpectrum(SpectrumOptions{NK: 1}); err == nil {
		t.Fatal("degenerate NK accepted")
	}
	if _, err := m.MatterPower(MatterPowerOptions{NK: -3}); err == nil {
		t.Fatal("negative NK accepted")
	}
	if _, err := m.MatterPower(MatterPowerOptions{KMin: 0.4, KMax: 0.2}); err == nil {
		t.Fatal("inverted k range accepted")
	}
}
