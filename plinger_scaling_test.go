package plinger

import "testing"

// TestSpectrumBitwiseAcrossWorkerCounts is the facade-level determinism
// guarantee behind the scaling benchmarks: the full fast C_l pipeline
// (arena-backed evolutions + coarse-to-fine k refinement + table-driven
// projection) must return bitwise-identical spectra at every worker count,
// through both the per-call pool and the long-lived shared pool — so the
// speedup and efficiency columns of BENCH_PR5.json compare runs whose
// outputs are exactly equal, not merely close.
func TestSpectrumBitwiseAcrossWorkerCounts(t *testing.T) {
	m, err := New(SCDM())
	if err != nil {
		t.Fatal(err)
	}
	opts := SpectrumOptions{LMaxCl: 24, NK: 36, FastLOS: true, FastEvolve: true, KRefine: 4}

	o1 := opts
	o1.Workers = 1
	ref, err := m.ComputeSpectrum(o1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4} {
		o := opts
		o.Workers = workers
		spec, err := m.ComputeSpectrum(o)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref.Cl {
			if spec.Cl[i] != ref.Cl[i] {
				t.Fatalf("workers=%d: C_l differs bitwise at l=%d: %g vs %g",
					workers, spec.L[i], spec.Cl[i], ref.Cl[i])
			}
		}
	}

	m.EnableSharedPool(3)
	defer m.CloseSharedPool()
	spec, err := m.ComputeSpectrum(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Cl {
		if spec.Cl[i] != ref.Cl[i] {
			t.Fatalf("shared pool: C_l differs bitwise at l=%d", spec.L[i])
		}
	}
}
