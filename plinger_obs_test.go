package plinger

import (
	"testing"
	"time"
)

// obsTestOptions is a small but complete fast-path spectrum: coarse-to-fine
// in k, fast LOS projection, table-driven evolution — every traced phase of
// a production request.
func obsTestOptions() SpectrumOptions {
	return SpectrumOptions{
		LMaxCl: 40, NK: 60, Ls: []int{2, 5, 10, 20, 40},
		FastLOS: true, FastEvolve: true, KRefine: 4,
	}
}

// TestTracedSpectrumSpans runs one traced spectrum and checks the pipeline
// phases land in the trace: the dispatch-level detail (eval_tables, modes),
// the facade's top-level phases (evolve, project) and the concurrent Bessel
// prewarm.
func TestTracedSpectrumSpans(t *testing.T) {
	m := scdmModel(t)
	o := obsTestOptions()
	tr := NewTrace("test")
	o.Trace = tr
	if _, err := m.ComputeSpectrum(o); err != nil {
		t.Fatal(err)
	}
	tr.Finish()
	snap := tr.Snapshot()
	if snap.ID == "" || snap.TotalMS <= 0 {
		t.Fatalf("bad trace snapshot: %+v", snap)
	}
	got := map[string]float64{}
	for _, sp := range snap.Spans {
		got[sp.Name] += sp.DurMS
	}
	for _, want := range []string{"evolve", "project", "eval_tables", "modes", "bessel_tables"} {
		if _, ok := got[want]; !ok {
			t.Errorf("missing span %q (got %v)", want, got)
		}
	}
	// The dispatch phases are nested inside evolve, so they cannot exceed it.
	if got["modes"] > got["evolve"]+1e-6 {
		t.Errorf("modes span %.3f ms exceeds evolve span %.3f ms", got["modes"], got["evolve"])
	}
	if got["evolve"] <= 0 || got["project"] <= 0 {
		t.Errorf("zero-duration phases: %v", got)
	}
}

// TestNoopTraceOverhead is the acceptance-criterion check on the no-op sink:
// with a nil trace the instrumented pipeline must run within 2% of itself,
// which we bound two ways. First, the primitive: a nil-trace Start/End pair
// must cost so little that even thousands per request stay under 2% of the
// request's wall time. Second, end to end: the same computation with a live
// trace (a strict superset of the nil-trace work) must land in the same
// ballpark, with interleaved runs and a generous margin absorbing scheduler
// noise — a wall-clock smoke guard, not the 2% assertion itself.
func TestNoopTraceOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("overhead measurement is timing-sensitive")
	}
	m := scdmModel(t)

	run := func(o SpectrumOptions) time.Duration {
		t0 := time.Now()
		if _, err := m.ComputeSpectrum(o); err != nil {
			t.Fatal(err)
		}
		return time.Since(t0)
	}

	// One warm-up pass so table builds and Bessel rows never land in a
	// measured iteration, then interleave nil/traced to share any drift.
	warm := obsTestOptions()
	run(warm)
	big := time.Duration(1<<63 - 1)
	nilWall, tracedWall := big, big
	for i := 0; i < 5; i++ {
		o := obsTestOptions()
		o.Trace = nil
		if d := run(o); d < nilWall {
			nilWall = d
		}
		o = obsTestOptions()
		o.Trace = NewTrace("bench")
		if d := run(o); d < tracedWall {
			tracedWall = d
		}
	}

	// Primitive bound: price one nil-trace span via the testing harness and
	// scale to a generous 10000 spans per request.
	res := testing.Benchmark(func(b *testing.B) {
		var tr *Trace
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sp := tr.Start("x")
			sp.End()
		}
	})
	if res.AllocsPerOp() != 0 {
		t.Fatalf("nil-trace span allocates: %d allocs/op", res.AllocsPerOp())
	}
	perSpan := time.Duration(res.NsPerOp())
	if overhead := 10000 * perSpan; overhead > nilWall/50 {
		t.Fatalf("no-op span too expensive: %v each, 10000 spans = %v against %v wall (>2%%)",
			perSpan, overhead, nilWall)
	}

	// End-to-end bound: live tracing does strictly more than the nil sink,
	// so the nil sink's overhead is below whatever this measures.
	if ratio := float64(tracedWall) / float64(nilWall); ratio > 1.25 {
		t.Fatalf("live tracing wall ratio %.3f (traced %v vs nil %v), want <= 1.25",
			ratio, tracedWall, nilWall)
	}
}
