package plinger

// Facade routing over the worker farm: EnableFarm must send every
// default-transport sweep across the fleet and produce spectra bitwise
// equal to the in-process pool's; DisableFarm must revert.

import (
	"net"
	"testing"
	"time"

	"plinger/internal/core"
	"plinger/internal/farm"
)

func TestEnableFarmRoutesSweepsBitwise(t *testing.T) {
	fleet, err := farm.New(farm.Options{
		MinWorkers:  2,
		WaitWorkers: 10 * time.Second,
		Heartbeat:   100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	models := farm.NewModelCache()
	for i := 0; i < 2; i++ {
		conn, err := net.Dial("tcp", fleet.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		go func() {
			_ = farm.ServeWorker(conn, farm.WorkerOptions{Models: models, Scratch: core.NewScratch()})
		}()
	}
	deadline := time.Now().Add(10 * time.Second)
	for fleet.Alive() < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if fleet.Alive() < 2 {
		t.Fatalf("only %d workers joined", fleet.Alive())
	}

	// A private model: EnableFarm mutates routing state, and scdmModel's
	// instance is shared across the package's tests.
	m, err := New(SCDM())
	if err != nil {
		t.Fatal(err)
	}
	opts := SpectrumOptions{LMaxCl: 12, NK: 24, Ls: []int{2, 4, 8, 12}}
	ref, err := m.ComputeSpectrum(opts)
	if err != nil {
		t.Fatal(err)
	}

	m.EnableFarm(fleet)
	got, err := m.ComputeSpectrum(opts)
	if err != nil {
		t.Fatalf("farm-routed spectrum: %v", err)
	}
	for i := range ref.Cl {
		if got.Cl[i] != ref.Cl[i] {
			t.Fatalf("C_%d = %g over the farm, %g over the pool", ref.L[i], got.Cl[i], ref.Cl[i])
		}
	}
	if st := fleet.Status(); st.Sweeps < 1 {
		t.Fatalf("farm saw no sweeps: %+v", st)
	}
	// The fast engine (adaptive lmax, batched evolution) routes through the
	// farm natively too.
	fast, err := m.ComputeSpectrum(SpectrumOptions{LMaxCl: 12, NK: 24, Ls: []int{2, 4, 8, 12},
		FastLOS: true, FastEvolve: true, KBatch: 3})
	if err != nil {
		t.Fatalf("farm-routed fast spectrum: %v", err)
	}
	if len(fast.Cl) != len(ref.Cl) {
		t.Fatal("fast spectrum truncated")
	}

	m.DisableFarm()
	sweepsBefore := fleet.Status().Sweeps
	back, err := m.ComputeSpectrum(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Cl {
		if back.Cl[i] != ref.Cl[i] {
			t.Fatal("post-disable spectrum differs")
		}
	}
	if fleet.Status().Sweeps != sweepsBefore {
		t.Fatal("DisableFarm left sweeps routing over the fleet")
	}
}
