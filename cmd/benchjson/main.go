// Command benchjson runs the key performance benchmarks of the repository
// and writes a machine-readable JSON report (ns/op, bytes/op, allocs/op,
// and the fast-vs-reference pipeline speedup plus its measured accuracy),
// seeding the performance trajectory that later PRs extend:
//
//	benchjson [-out BENCH_PR2.json] [-quick]
//
// The headline numbers are the Figure-2 C_l pipeline with the fast
// line-of-sight engine (shared spherical-Bessel tables + coarse-to-fine k
// refinement) against the exact reference pipeline at identical
// LMaxCl/NK settings, and the kernel-level microbenchmarks behind them.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"runtime"
	"testing"
	"time"

	"plinger"
	"plinger/internal/core"
	"plinger/internal/cosmology"
	"plinger/internal/recomb"
	"plinger/internal/specfunc"
	"plinger/internal/spectra"
	"plinger/internal/thermo"
)

// Entry is one benchmark row.
type Entry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Iterations  int     `json:"iterations"`
}

// Report is the written document.
type Report struct {
	Date          string  `json:"date"`
	GoVersion     string  `json:"go_version"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
	LMaxCl        int     `json:"lmax_cl"`
	NK            int     `json:"nk"`
	KRefine       int     `json:"krefine"`
	Entries       []Entry `json:"benchmarks"`
	SpeedupLOS    float64 `json:"speedup_los_pipeline"`
	SpeedupTheta  float64 `json:"speedup_theta_projection"`
	SpeedupBessel float64 `json:"speedup_bessel_kernel"`
	MaxRelClErr   float64 `json:"max_rel_cl_err_fast_vs_reference"`
}

func run(name string, f func(b *testing.B)) Entry {
	r := testing.Benchmark(f)
	e := Entry{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		Iterations:  r.N,
	}
	fmt.Printf("%-28s %14.0f ns/op %12d B/op %8d allocs/op (n=%d)\n",
		e.Name, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp, e.Iterations)
	return e
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	var (
		out   = flag.String("out", "BENCH_PR2.json", "output file")
		quick = flag.Bool("quick", false, "smaller pipeline settings (for smoke runs)")
	)
	flag.Parse()

	lmaxCl, nk, kRefine := 150, 130, 10
	if *quick {
		lmaxCl, nk = 60, 60
	}

	m, err := plinger.New(plinger.SCDM())
	if err != nil {
		log.Fatal(err)
	}
	bg, err := cosmology.New(cosmology.SCDM())
	if err != nil {
		log.Fatal(err)
	}
	th, err := thermo.New(bg, recomb.Options{})
	if err != nil {
		log.Fatal(err)
	}
	cm := core.NewModel(bg, th)

	// Record the EFFECTIVE refinement factor: ComputeSpectrum clamps the
	// request through SafeKRefine, and the report must describe the
	// configuration that actually ran.
	ksFine := spectra.ClGrid(lmaxCl, bg.Tau0(), nk)
	kRefine = spectra.SafeKRefine(kRefine, nk, ksFine[0], ksFine[len(ksFine)-1], th.TauRec())
	rep := &Report{
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		LMaxCl:     lmaxCl, NK: nk, KRefine: kRefine,
	}

	// The two pipelines at identical settings, plus the accuracy of the
	// fast one against the reference.
	refOpts := plinger.SpectrumOptions{LMaxCl: lmaxCl, NK: nk}
	fastOpts := refOpts
	fastOpts.FastLOS = true
	fastOpts.KRefine = kRefine
	refSpec, err := m.ComputeSpectrum(refOpts)
	if err != nil {
		log.Fatal(err)
	}
	fastSpec, err := m.ComputeSpectrum(fastOpts)
	if err != nil {
		log.Fatal(err)
	}
	for i := range refSpec.Cl {
		rel := math.Abs(fastSpec.Cl[i]-refSpec.Cl[i]) / refSpec.Cl[i]
		if rel > rep.MaxRelClErr {
			rep.MaxRelClErr = rel
		}
	}

	eFast := run("fig2_los_fast", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := m.ComputeSpectrum(fastOpts); err != nil {
				b.Fatal(err)
			}
		}
	})
	eRef := run("fig2_los_reference", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := m.ComputeSpectrum(refOpts); err != nil {
				b.Fatal(err)
			}
		}
	})
	rep.SpeedupLOS = eRef.NsPerOp / eFast.NsPerOp

	// Per-mode projection: exact recurrences vs kernel tables.
	mode, err := cm.Evolve(core.Params{K: 0.02, LMax: 24, Gauge: core.ConformalNewtonian, KeepSources: true})
	if err != nil {
		log.Fatal(err)
	}
	tau0, tauRec := bg.Tau0(), th.TauRec()
	ls := spectra.DefaultLs(lmaxCl)
	eThetaRef := run("theta_los_reference", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := spectra.ThetaLOS(mode, lmaxCl, tau0, tauRec); err != nil {
				b.Fatal(err)
			}
		}
	})
	eThetaFast := run("theta_los_table", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := spectra.ThetaLOSFast(mode, ls, tau0, tauRec); err != nil {
				b.Fatal(err)
			}
		}
	})
	rep.SpeedupTheta = eThetaRef.NsPerOp / eThetaFast.NsPerOp

	// Kernel level: one recurrence array fill vs one table interpolation.
	eBesselRef := run("bessel_recurrence", func(b *testing.B) {
		var jl []float64
		x := 0.3
		for i := 0; i < b.N; i++ {
			jl = specfunc.SphericalBesselJArray(lmaxCl+1, x, jl)
			x += 1.7
			if x > 350 {
				x = 0.3
			}
		}
	})
	tbl := specfunc.SharedBesselTable(ls, 384, nil)
	row, _ := tbl.Row(ls[len(ls)-1])
	eBesselTab := run("bessel_table_eval", func(b *testing.B) {
		x := 0.3
		var acc float64
		for i := 0; i < b.N; i++ {
			j, jp, q := row.Eval(x)
			acc += j + jp + q
			x += 1.7
			if x > 350 {
				x = 0.3
			}
		}
		_ = acc
	})
	rep.SpeedupBessel = eBesselRef.NsPerOp / eBesselTab.NsPerOp

	rep.Entries = []Entry{eFast, eRef, eThetaRef, eThetaFast, eBesselRef, eBesselTab}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npipeline speedup %.2fx, projection speedup %.2fx, kernel speedup %.2fx\n",
		rep.SpeedupLOS, rep.SpeedupTheta, rep.SpeedupBessel)
	fmt.Printf("max relative C_l deviation fast vs reference: %.3g\n", rep.MaxRelClErr)
	fmt.Printf("wrote %s\n", *out)
}
